// Cross-module integration tests: each one threads several packages
// together the way the curriculum threads its courses — the compiler
// feeds the assembler feeds the CPU feeds the pipeline model; the
// curriculum's Table I rows are checked against the lab implementations
// that exist in this repository; parallel engines are cross-validated
// against analytic models.
package repro

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/bomb"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/life"
	"repro/internal/metrics"
	"repro/internal/minicc"
	"repro/internal/mp"
	"repro/internal/pram"
	"repro/internal/psort"
	"repro/internal/sockets"
	"repro/internal/testutil"
)

// TestCompilerToPipelineFlow drives MiniC -> SWAT32 -> CPU -> pipeline,
// the CS75 -> CS31 -> Table II chain.
func TestCompilerToPipelineFlow(t *testing.T) {
	src := `
int gcd(int a, int b) {
    while (b != 0) {
        int tmp = a % b;
        a = b;
        b = tmp;
    }
    return a;
}
int main() {
    print(gcd(1071, 462));
    print(gcd(17, 5));
    return 0;
}`
	asm, err := minicc.Compile(src, true)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := isa.Assemble(asm)
	if err != nil {
		t.Fatal(err)
	}
	cpu := isa.NewCPU(prog)
	var trace []isa.TraceEntry
	cpu.Trace = func(te isa.TraceEntry) { trace = append(trace, te) }
	if err := cpu.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if got := cpu.Output.String(); got != "21\n1\n" {
		t.Fatalf("gcd output = %q", got)
	}
	// The compiled code must be disassemblable and pipeline-analyzable.
	if _, err := isa.Disassemble(prog.Code); err != nil {
		t.Fatal(err)
	}
	fwd := isa.SimulatePipeline(trace, isa.PipelineConfig{Forwarding: true, Branch: isa.PredictNotTaken})
	nofwd := isa.SimulatePipeline(trace, isa.PipelineConfig{Forwarding: false, Branch: isa.PredictNotTaken})
	if fwd.Cycles >= nofwd.Cycles {
		t.Errorf("forwarding should help compiled code too: %d vs %d", fwd.Cycles, nofwd.Cycles)
	}
	if fwd.Instructions != int(cpu.Steps) {
		t.Errorf("pipeline saw %d instructions, CPU executed %d", fwd.Instructions, cpu.Steps)
	}
}

// TestCurriculumLabsAreImplemented cross-references Table I in the
// curriculum model against the packages of this repository: every lab the
// paper lists must have a reproduction here.
func TestCurriculumLabsAreImplemented(t *testing.T) {
	cu, err := core.Swarthmore()
	if err != nil {
		t.Fatal(err)
	}
	cs31, err := cu.Course("CS31")
	if err != nil {
		t.Fatal(err)
	}
	implemented := map[string]string{
		"Data Representation":      "internal/bits",
		"Building an ALU":          "internal/logic",
		"Bit compare, Bit vectors": "internal/bits + internal/isa",
		"Binary Bomb":              "internal/bomb",
		"Game of Life":             "internal/life",
		"Python lists in C":        "internal/clist",
		"Unix Shell":               "internal/shell",
		"Parallel Game of Life":    "internal/life + internal/pthread",
	}
	if len(cs31.Labs) != len(implemented) {
		t.Fatalf("Table I has %d labs, map has %d", len(cs31.Labs), len(implemented))
	}
	for _, lab := range cs31.Labs {
		if _, ok := implemented[lab.Name]; !ok {
			t.Errorf("lab %q has no reproduction mapping", lab.Name)
		}
	}
}

// TestMergeSortThreeModelsAgree is the CS41 unifying example as an
// integration check: all three models sort the same input to the same
// result, and the analytic models rank the variants correctly.
func TestMergeSortThreeModelsAgree(t *testing.T) {
	xs := make([]int64, 4096)
	s := uint64(9)
	for i := range xs {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		xs[i] = int64(s % 10007)
	}
	ram, comps := psort.MergeSort(xs)
	par := psort.ParallelMergeSortPM(xs, 3)
	for i := range ram {
		if ram[i] != par[i] {
			t.Fatalf("RAM and parallel results differ at %d", i)
		}
	}
	if comps <= 0 {
		t.Fatal("no comparisons counted")
	}
	workS, spanS, err := psort.MergeSortDAG(4096, false)
	if err != nil {
		t.Fatal(err)
	}
	workP, spanP, err := psort.MergeSortDAG(4096, true)
	if err != nil {
		t.Fatal(err)
	}
	if spanP >= spanS {
		t.Errorf("parallel merge span %d should beat serial %d", spanP, spanS)
	}
	// Work should be within 2x between variants (same asymptotics).
	if workP > 2*workS || workS > 2*workP {
		t.Errorf("work mismatch: %d vs %d", workS, workP)
	}
}

// TestSpeedupLawsAgainstPRAM cross-validates Amdahl's law against the
// PRAM simulator: a program with a serial fraction (one processor doing
// extra steps) cannot beat the law's bound.
func TestSpeedupLawsAgainstPRAM(t *testing.T) {
	// PRAM sum of n values: T1 = n-1 sequential additions; Tp = measured
	// steps. Speedup must respect work/span: speedup <= work/span.
	n := 256
	xs := make([]int64, n)
	for i := range xs {
		xs[i] = 1
	}
	_, m, err := pram.Sum(pram.EREW, xs)
	if err != nil {
		t.Fatal(err)
	}
	t1 := float64(n - 1)     // sequential additions
	tp := float64(m.Steps()) // parallel steps
	speedup := t1 / tp
	maxUseful, err := (&dagParallelism{work: int64(t1), span: m.Steps()}).parallelism()
	if err != nil {
		t.Fatal(err)
	}
	if speedup > maxUseful+1e-9 {
		t.Errorf("measured speedup %.1f exceeds work/span bound %.1f", speedup, maxUseful)
	}
	// And Amdahl with f=0 at p = n/2 processors bounds it too.
	if speedup > metrics.AmdahlSpeedup(0, n/2)+1e-9 {
		t.Errorf("speedup %.1f beats Amdahl's perfect-parallel bound", speedup)
	}
}

type dagParallelism struct{ work, span int64 }

func (d *dagParallelism) parallelism() (float64, error) {
	return float64(d.work) / float64(d.span), nil
}

// TestLifeUnderMessagePassing runs a distributed Game of Life: the grid
// is row-partitioned across mp ranks which exchange halo rows each
// generation — the CS87 "MPI lab" version of the CS31 lab — and the
// result must match the shared-memory engine.
func TestLifeUnderMessagePassing(t *testing.T) {
	const (
		w, h  = 32, 24
		gens  = 8
		ranks = 4
	)
	ref, err := life.NewGrid(w, h, life.Torus)
	if err != nil {
		t.Fatal(err)
	}
	ref.Seed(0.35, 123)
	initial := ref.Clone()
	ref.StepN(gens)

	rowsPer := h / ranks
	results := make([][]int64, ranks)
	err = mp.Run(ranks, func(c *mp.Comm) error {
		r := c.Rank()
		// Each rank holds its band plus two halo rows in a local grid of
		// rowsPer+2 rows; torus neighbours are (r±1) mod ranks.
		band := make([]int64, rowsPer*w)
		for y := 0; y < rowsPer; y++ {
			for x := 0; x < w; x++ {
				if initial.Get(x, r*rowsPer+y) {
					band[y*w+x] = 1
				}
			}
		}
		up := (r - 1 + ranks) % ranks
		down := (r + 1) % ranks
		for g := 0; g < gens; g++ {
			// Exchange halos: send my top row up, bottom row down.
			top := append([]int64(nil), band[:w]...)
			bottom := append([]int64(nil), band[(rowsPer-1)*w:]...)
			mTop, err := c.SendRecv(up, 10, top, down, 10)
			if err != nil {
				return err
			}
			mBottom, err := c.SendRecv(down, 11, bottom, up, 11)
			if err != nil {
				return err
			}
			haloBelow := mTop.Data.([]int64) // from down: its top row
			haloAbove := mBottom.Data.([]int64)
			// Compute the next band.
			next := make([]int64, len(band))
			at := func(x, y int) int64 {
				x = (x + w) % w
				switch {
				case y < 0:
					return haloAbove[x]
				case y >= rowsPer:
					return haloBelow[x]
				default:
					return band[y*w+x]
				}
			}
			for y := 0; y < rowsPer; y++ {
				for x := 0; x < w; x++ {
					n := int64(0)
					for dy := -1; dy <= 1; dy++ {
						for dx := -1; dx <= 1; dx++ {
							if dx == 0 && dy == 0 {
								continue
							}
							n += at(x+dx, y+dy)
						}
					}
					alive := band[y*w+x] == 1
					if n == 3 || (alive && n == 2) {
						next[y*w+x] = 1
					}
				}
			}
			band = next
		}
		results[r] = band
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Reassemble and compare with the shared-memory result.
	for r := 0; r < ranks; r++ {
		for y := 0; y < rowsPer; y++ {
			for x := 0; x < w; x++ {
				want := ref.Get(x, r*rowsPer+y)
				got := results[r][y*w+x] == 1
				if got != want {
					t.Fatalf("distributed GoL diverges at rank %d (%d,%d)", r, x, y)
				}
			}
		}
	}
}

// TestBombSolvableByDisassembly solves phase 1 of a bomb using only its
// artifacts (disassembly + memory image), the way a student would.
func TestBombSolvableByDisassembly(t *testing.T) {
	b, err := newBombForIntegration()
	if err != nil {
		t.Fatal(err)
	}
	dis, err := b.Disassembly()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dis, "movb") {
		t.Error("expected byte-compare loops in the listing")
	}
	// The phase-1 secret lives in the data segment as the first asciz
	// after the fixed message strings; extract it from the program image
	// (what `x/s` in gdb would show) and defuse phase 1 with it.
	sol := b.Solutions()
	res, err := b.Run([]string{sol[0]})
	if err != nil {
		t.Fatal(err)
	}
	if res.PhasesDefused < 1 {
		t.Error("phase 1 should defuse with the extracted string")
	}
}

func newBombForIntegration() (*bomb.Bomb, error) {
	return bomb.New(3)
}

// TestKVSubstrateFaultTolerance threads the hardened sockets layer with
// the metrics instrumentation the way kvbench does: a sharded server
// serves a pooled client whose connections are killed mid-flight by the
// fault-injection hook (the socket-lab cousin of the MapReduce
// worker-crash experiment). Every request must still complete via
// retry, the retry count must be observable in Stats, and the
// server-side latency histogram must have seen every request.
func TestKVSubstrateFaultTolerance(t *testing.T) {
	leakBase := testutil.SettleGoroutines()
	s := testutil.StartKV(t, sockets.ServerConfig{Shards: 8})
	pool, err := sockets.NewPool(s.Addr(), sockets.PoolConfig{
		Size:        4,
		MaxAttempts: 4,
		// Kill the connection on the first attempt of every third
		// request; retry over a fresh dial must recover each one.
		FailConn: func(req, attempt int) bool { return req%3 == 0 && attempt == 1 },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	const workers, perWorker = 6, 10
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				key := fmt.Sprintf("w%d-i%d", w, i)
				if err := pool.Set(key, fmt.Sprintf("v%d", i)); err != nil {
					errs <- fmt.Errorf("set %s: %w", key, err)
					return
				}
				v, found, err := pool.Get(key)
				if err != nil || !found || v != fmt.Sprintf("v%d", i) {
					errs <- fmt.Errorf("get %s = %q %v %v", key, v, found, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := pool.Stats()
	if st.Requests != workers*perWorker*2 {
		t.Errorf("pool requests = %d, want %d", st.Requests, workers*perWorker*2)
	}
	if st.Retries == 0 {
		t.Error("fault injection produced no observable retries")
	}
	// KEYS sees every write, sorted, across all shards.
	keys, err := pool.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != workers*perWorker {
		t.Errorf("KEYS returned %d keys, want %d", len(keys), workers*perWorker)
	}
	if !sort.StringsAreSorted(keys) {
		t.Error("KEYS output is not sorted")
	}
	// The latency histogram observed exactly the served requests.
	srv := s.Stats()
	if got := s.Latency().Count(); got != srv.Requests {
		t.Errorf("latency histogram saw %d requests, server served %d", got, srv.Requests)
	}
	if srv.Errors != 0 {
		t.Errorf("server counted %d protocol errors on a clean workload", srv.Errors)
	}
	pool.Close()
	s.Close()
	testutil.CheckNoGoroutineLeak(t, leakBase, 2)
}
