// Command minicc is the CS75 compiler driver: it compiles MiniC source
// to SWAT32 assembly and optionally runs it.
//
// Usage:
//
//	minicc prog.c              compile and print assembly
//	minicc -O prog.c           with optimizations
//	minicc -run prog.c         compile and execute
//	minicc -size prog.c        report instruction counts with and without -O
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/minicc"
)

func main() {
	optimize := flag.Bool("O", false, "enable optimizations")
	runIt := flag.Bool("run", false, "execute after compiling")
	size := flag.Bool("size", false, "compare code size with and without -O")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: minicc [-O] [-run|-size] prog.c")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "minicc:", err)
		os.Exit(1)
	}
	if *size {
		_, plain, err := minicc.CompileToProgram(string(src), false)
		if err != nil {
			fmt.Fprintln(os.Stderr, "minicc:", err)
			os.Exit(1)
		}
		_, opt, err := minicc.CompileToProgram(string(src), true)
		if err != nil {
			fmt.Fprintln(os.Stderr, "minicc:", err)
			os.Exit(1)
		}
		fmt.Printf("instructions: %d unoptimized, %d with -O (%.1f%% smaller)\n",
			plain.Instructions, opt.Instructions,
			100*(1-float64(opt.Instructions)/float64(plain.Instructions)))
		return
	}
	if *runIt {
		out, exit, steps, err := minicc.Run(string(src), *optimize, 50_000_000)
		fmt.Print(out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "minicc:", err)
			os.Exit(1)
		}
		fmt.Printf("[exit %d, %d instructions executed]\n", exit, steps)
		return
	}
	asm, err := minicc.Compile(string(src), *optimize)
	if err != nil {
		fmt.Fprintln(os.Stderr, "minicc:", err)
		os.Exit(1)
	}
	fmt.Print(asm)
}
