// Command kvbench runs the CS87 socket lab's scalability study against
// the hardened KV server: for each concurrent-client count it drives a
// fixed total number of SET/GET pairs through a pooled client, then
// reduces the timings to the same speedup/efficiency/Karp-Flatt table
// lifebench prints, plus throughput per run and the server-side latency
// histogram of the largest run.
//
// Usage:
//
//	kvbench -clients 1,2,4,8 -shards 16 -ops 2000
//	kvbench -clients 1,8 -shards 1        # the single-lock baseline
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/metrics"
	"repro/internal/sockets"
)

func main() {
	clientsFlag := flag.String("clients", "1,2,4,8", "comma-separated concurrent client counts (must include 1)")
	shards := flag.Int("shards", 16, "store shards (1 = the single-lock server)")
	ops := flag.Int("ops", 2000, "total SET/GET pairs per run, split across clients")
	protoFlag := flag.String("proto", "text", "wire protocol: text (one request per connection turn) or binary (pipelined PDUs)")
	flag.Parse()

	proto, err := sockets.ParseProto(*protoFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kvbench:", err)
		os.Exit(2)
	}

	var clients []int
	hasBaseline := false
	for _, part := range strings.Split(*clientsFlag, ",") {
		c, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || c < 1 {
			fmt.Fprintf(os.Stderr, "kvbench: bad client count %q\n", part)
			os.Exit(2)
		}
		if c == 1 {
			hasBaseline = true
		}
		clients = append(clients, c)
	}
	if !hasBaseline {
		fmt.Fprintln(os.Stderr, "kvbench: client counts must include 1 (the speedup baseline)")
		os.Exit(2)
	}

	// Ctrl-C cancels the sweep: the in-flight run drains (workers stop at
	// the next request boundary) and the table covers the finished runs.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fmt.Printf("KV server scalability study: %d shards, %d SET/GET pairs per run, %s protocol\n\n", *shards, *ops, proto)
	var ms []metrics.Measurement
	var lastHist *metrics.Histogram
	var lastPool *metrics.CounterSet
	interrupted := false
	for _, nc := range clients {
		elapsed, hist, pool, err := run(ctx, *shards, nc, *ops, proto)
		if err != nil {
			if errors.Is(err, context.Canceled) {
				interrupted = true
				break
			}
			fmt.Fprintln(os.Stderr, "kvbench:", err)
			os.Exit(1)
		}
		ms = append(ms, metrics.Measurement{Workers: nc, Elapsed: elapsed})
		lastHist, lastPool = hist, pool
		retries, _ := pool.Get("pool.retries")
		opsSec := float64(2*(*ops)) / elapsed.Seconds()
		fmt.Printf("%3d clients: %12v  %10.0f ops/sec  (%.0f retries)\n",
			nc, elapsed.Round(time.Microsecond), opsSec, retries)
	}
	if interrupted {
		fmt.Println("\ninterrupted: reporting the runs that completed")
	}
	if len(ms) == 0 {
		fmt.Fprintln(os.Stderr, "kvbench: interrupted before any run completed")
		os.Exit(1)
	}
	tbl, err := metrics.BuildTable(ms)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kvbench:", err)
		os.Exit(1)
	}
	fmt.Println()
	fmt.Print(tbl)
	fmt.Printf("\nAmdahl fit from largest run: serial fraction f = %.4f (limit %.1fx)\n",
		tbl.FitF, metrics.AmdahlLimit(tbl.FitF))
	fmt.Println("\nServer request latency, largest run:")
	fmt.Print(lastHist)
	fmt.Println("\nClient pool counters, largest run:")
	fmt.Print(lastPool)
}

// run drives one measurement: nclients workers sharing a pool of the
// same size, splitting ops SET/GET pairs against a fresh server. The
// context bounds every request; cancellation drains the workers at the
// next request boundary and surfaces the wrapped ctx error.
func run(ctx context.Context, shards, nclients, ops int, proto sockets.Proto) (time.Duration, *metrics.Histogram, *metrics.CounterSet, error) {
	s, err := sockets.NewServerConfig("127.0.0.1:0", sockets.ServerConfig{Shards: shards})
	if err != nil {
		return 0, nil, nil, err
	}
	defer s.Close()
	p, err := sockets.NewPool(s.Addr(), sockets.PoolConfig{Size: nclients, Proto: proto})
	if err != nil {
		return 0, nil, nil, err
	}
	defer p.Close()

	per := ops / nclients
	if per == 0 {
		per = 1
	}
	errs := make(chan error, nclients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < nclients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				key := fmt.Sprintf("key-%d-%d", c, i%128)
				if err := p.SetCtx(ctx, key, "value"); err != nil {
					errs <- err
					return
				}
				if _, _, err := p.GetCtx(ctx, key); err != nil {
					errs <- err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	for err := range errs {
		return 0, nil, nil, err
	}
	return elapsed, s.Latency(), p.Counters(), nil
}
