// Command cachesim runs the CS31 memory-hierarchy experiments: the
// row-major versus column-major locality study, a cache-parameter sweep,
// and the page-replacement comparison.
//
// Usage:
//
//	cachesim -locality -n 64
//	cachesim -sweep
//	cachesim -paging
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/mem"
)

func main() {
	locality := flag.Bool("locality", false, "row vs column traversal miss rates")
	sweep := flag.Bool("sweep", false, "cache size/associativity sweep")
	paging := flag.Bool("paging", false, "page replacement comparison")
	n := flag.Int("n", 64, "matrix side for -locality")
	flag.Parse()

	ran := false
	if *locality {
		runLocality(*n)
		ran = true
	}
	if *sweep {
		runSweep()
		ran = true
	}
	if *paging {
		runPaging()
		ran = true
	}
	if !ran {
		fmt.Println("cachesim: pass -locality, -sweep, or -paging (see -h)")
	}
}

func mustCache(cfg mem.CacheConfig) *mem.Cache {
	c, err := mem.NewCache(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cachesim:", err)
		os.Exit(1)
	}
	return c
}

func runLocality(n int) {
	fmt.Printf("Matrix sum locality, %dx%d doubles, 4KB direct-mapped cache, 64B blocks\n", n, n)
	fmt.Printf("%-12s %10s %10s %9s\n", "traversal", "accesses", "misses", "miss%")
	for _, tc := range []struct {
		name  string
		trace []mem.Access
	}{
		{"row-major", mem.RowMajorTrace(n, 0)},
		{"col-major", mem.ColMajorTrace(n, 0)},
	} {
		c := mustCache(mem.CacheConfig{SizeBytes: 4096, BlockBytes: 64, Assoc: 1})
		mem.ReplayCache(c, tc.trace)
		s := c.Stats()
		fmt.Printf("%-12s %10d %10d %8.2f%%\n", tc.name, s.Accesses, s.Misses, 100*s.MissRate())
	}
}

func runSweep() {
	trace := mem.RandomTrace(200000, 1<<16, 0, 42)
	fmt.Println("Random 64KB working set, 200k accesses, 64B blocks, LRU")
	fmt.Printf("%-10s %6s %9s\n", "size", "assoc", "hit%")
	for _, size := range []int{1 << 10, 4 << 10, 16 << 10, 64 << 10} {
		for _, assoc := range []int{1, 2, 4} {
			c := mustCache(mem.CacheConfig{SizeBytes: size, BlockBytes: 64, Assoc: assoc})
			mem.ReplayCache(c, trace)
			fmt.Printf("%-10d %6d %8.2f%%\n", size, assoc, 100*c.Stats().HitRate())
		}
	}
}

func runPaging() {
	refs := []int{7, 0, 1, 2, 0, 3, 0, 4, 2, 3, 0, 3, 2, 1, 2, 0, 1, 7, 0, 1}
	fmt.Println("Reference string:", refs)
	fmt.Printf("%-8s", "frames")
	for _, p := range []mem.PageReplacement{mem.PageFIFO, mem.PageLRU, mem.PageClock} {
		fmt.Printf(" %8s", p)
	}
	fmt.Println()
	for frames := 1; frames <= 5; frames++ {
		fmt.Printf("%-8d", frames)
		for _, p := range []mem.PageReplacement{mem.PageFIFO, mem.PageLRU, mem.PageClock} {
			faults, err := mem.FaultCount(refs, frames, p)
			if err != nil {
				fmt.Fprintln(os.Stderr, "cachesim:", err)
				os.Exit(1)
			}
			fmt.Printf(" %8d", faults)
		}
		fmt.Println()
	}
}
