// Command lifebench runs the CS31 parallel Game of Life scalability study
// (Table I, final row): it times an n×n torus over g generations at each
// thread count and prints the speedup/efficiency/Karp-Flatt table the lab
// report requires, plus the Amdahl fit.
//
// Usage:
//
//	lifebench -n 512 -gens 20 -threads 1,2,4,8
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/life"
	"repro/internal/metrics"
)

func main() {
	n := flag.Int("n", 256, "grid side length")
	gens := flag.Int("gens", 10, "generations per run")
	threadsFlag := flag.String("threads", "1,2,4,8", "comma-separated thread counts (must include 1)")
	flag.Parse()

	var threads []int
	for _, part := range strings.Split(*threadsFlag, ",") {
		t, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || t < 1 {
			fmt.Fprintf(os.Stderr, "lifebench: bad thread count %q\n", part)
			os.Exit(2)
		}
		threads = append(threads, t)
	}

	fmt.Printf("Parallel Game of Life scalability study: %dx%d torus, %d generations\n\n", *n, *n, *gens)
	res, err := life.ScalabilityStudy(*n, *gens, threads)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lifebench:", err)
		os.Exit(1)
	}
	fmt.Print(res.Table)
	fmt.Printf("\nAmdahl fit from largest run: serial fraction f = %.4f (limit %.1fx)\n",
		res.Table.FitF, metrics.AmdahlLimit(res.Table.FitF))
	fmt.Println("\nNote: wall-clock speedup is bounded by the physical core count;")
	fmt.Println("on a 1-core host expect ~1x measured speedup — the Amdahl/Karp-Flatt")
	fmt.Println("columns still expose the algorithmic structure (see EXPERIMENTS.md).")
}
