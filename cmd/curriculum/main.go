// Command curriculum prints and validates the paper's curriculum model:
// it regenerates Tables I, II, and III, shows the Section II.B course
// groups, and checks the offering schedule's every-semester parallel
// coverage.
//
// Usage:
//
//	curriculum -table all          print Tables I, II, III
//	curriculum -table 2            print just Table II
//	curriculum -groups             print the upper-level groups
//	curriculum -schedule 8         print 8 semesters of offerings from Fall 2012
//	curriculum -audit              audit a sample student path
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/core"
)

func main() {
	table := flag.String("table", "", "print table: 1, 2, 3, or all")
	groups := flag.Bool("groups", false, "print upper-level course groups")
	schedule := flag.Int("schedule", 0, "print N semesters of offerings from Fall 2012")
	audit := flag.Bool("audit", false, "audit a sample student path")
	coverage := flag.Bool("coverage", false, "print the TCPP topic coverage matrix")
	flag.Parse()

	cu, err := core.Swarthmore()
	if err != nil {
		fmt.Fprintln(os.Stderr, "curriculum:", err)
		os.Exit(1)
	}
	if err := cu.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "curriculum: validation failed:", err)
		os.Exit(1)
	}
	ran := false

	printTable := func(f func() (string, error)) {
		s, err := f()
		if err != nil {
			fmt.Fprintln(os.Stderr, "curriculum:", err)
			os.Exit(1)
		}
		fmt.Println(s)
	}
	switch *table {
	case "1":
		printTable(cu.TableI)
		ran = true
	case "2":
		printTable(cu.TableII)
		ran = true
	case "3":
		printTable(cu.TableIII)
		ran = true
	case "all":
		printTable(cu.TableI)
		printTable(cu.TableII)
		printTable(cu.TableIII)
		ran = true
	case "":
	default:
		fmt.Fprintln(os.Stderr, "curriculum: unknown table", *table)
		os.Exit(2)
	}
	if *groups {
		fmt.Println(cu.GroupsReport())
		ran = true
	}
	if *schedule > 0 {
		fmt.Println(cu.ScheduleReport(core.Semester{Fall: true, Year: 2012}, *schedule))
		ran = true
	}
	if *audit {
		rec := core.StudentRecord{Semesters: [][]string{
			{"CS21"},
			{"CS35", "CS31"},
			{"CS41"},
			{"CS40"},
			{"CS45"},
		}}
		res, err := cu.Audit(rec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "curriculum:", err)
			os.Exit(1)
		}
		fmt.Printf("sample path: %d courses, %d TCPP topics (%d core), violations: %d\n",
			res.Courses, res.TCPPTopicsSeen, res.CoreTopicsSeen, len(res.PrereqViolations))
		for _, v := range res.PrereqViolations {
			fmt.Println("  ", v)
		}
		for g, ok := range res.GroupsSatisfied {
			fmt.Printf("  group %-24v satisfied: %v\n", g, ok)
		}
		ran = true
	}
	if *coverage {
		m := cu.CoverageMatrix()
		topics := make([]string, 0, len(m))
		for tname := range m {
			topics = append(topics, tname)
		}
		sort.Strings(topics)
		fmt.Println("TCPP topic coverage:")
		for _, tname := range topics {
			fmt.Printf("  %-28s %s\n", tname, strings.Join(m[tname], " "))
		}
		if gaps := cu.CoreGaps(core.TCPPCore()); len(gaps) > 0 {
			fmt.Println("UNCOVERED core topics:", strings.Join(gaps, ", "))
		} else {
			fmt.Println("all tracked TCPP core topics are covered")
		}
		ran = true
	}
	if !ran {
		fmt.Println("curriculum: validated OK; use -table/-groups/-schedule/-audit/-coverage (see -h)")
	}
}
