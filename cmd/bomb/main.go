// Command bomb plays the CS31 binary-bomb lab: it generates a bomb for a
// variant number, feeds it answer lines from stdin (one per phase), and
// reports how far you got. With -disas it prints the listing students
// work from; with -cheat it prints the answer key (grader mode).
//
// Usage:
//
//	bomb -variant 7 -disas
//	echo -e "ans1\nans2\n..." | bomb -variant 7
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/bomb"
)

func main() {
	variant := flag.Int("variant", 1, "bomb variant number")
	disas := flag.Bool("disas", false, "print the disassembly and exit")
	cheat := flag.Bool("cheat", false, "print the answer key (grader mode)")
	flag.Parse()

	b, err := bomb.New(*variant)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bomb:", err)
		os.Exit(1)
	}
	if *disas {
		text, err := b.Disassembly()
		if err != nil {
			fmt.Fprintln(os.Stderr, "bomb:", err)
			os.Exit(1)
		}
		fmt.Print(text)
		return
	}
	if *cheat {
		for i, s := range b.Solutions() {
			fmt.Printf("phase %d: %s\n", i+1, s)
		}
		return
	}
	var inputs []string
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		inputs = append(inputs, sc.Text())
	}
	res, err := b.Run(inputs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bomb:", err)
		os.Exit(1)
	}
	fmt.Print(res.Output)
	if res.Exploded {
		fmt.Printf("exploded after defusing %d/%d phases\n", res.PhasesDefused, bomb.NumPhases)
		os.Exit(1)
	}
}
