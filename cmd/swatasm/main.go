// Command swatasm assembles and runs SWAT32 programs: the toolchain for
// the CS31 assembly unit.
//
// Usage:
//
//	swatasm -run prog.s            assemble and execute
//	swatasm -disas prog.s          assemble and disassemble
//	swatasm -trace prog.s          execute with a per-instruction trace
//	swatasm -pipeline prog.s       run the 5-stage pipeline model on the trace
//
// Input lines for sys $3 are read from stdin.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/isa"
)

func main() {
	run := flag.Bool("run", false, "assemble and execute")
	disas := flag.Bool("disas", false, "assemble and print disassembly")
	trace := flag.Bool("trace", false, "execute with instruction trace")
	pipeline := flag.Bool("pipeline", false, "run the pipeline model over the dynamic trace")
	maxSteps := flag.Int64("max-steps", 1_000_000, "instruction budget")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: swatasm [-run|-disas|-trace|-pipeline] prog.s")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "swatasm:", err)
		os.Exit(1)
	}
	prog, err := isa.Assemble(string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, "swatasm:", err)
		os.Exit(1)
	}
	if *disas {
		text, err := isa.Disassemble(prog.Code)
		if err != nil {
			fmt.Fprintln(os.Stderr, "swatasm:", err)
			os.Exit(1)
		}
		fmt.Print(text)
		return
	}

	var input []string
	if fi, err := os.Stdin.Stat(); err == nil && fi.Mode()&os.ModeCharDevice == 0 {
		sc := bufio.NewScanner(os.Stdin)
		for sc.Scan() {
			input = append(input, sc.Text())
		}
	}

	cpu := isa.NewCPU(prog)
	cpu.Input = input
	var entries []isa.TraceEntry
	if *trace || *pipeline {
		cpu.Trace = func(te isa.TraceEntry) {
			entries = append(entries, te)
			if *trace {
				fmt.Printf("%#06x: %s\n", uint32(te.PC), te.In)
			}
		}
	}
	runErr := cpu.Run(*maxSteps)
	fmt.Print(cpu.Output.String())
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "swatasm:", runErr)
		os.Exit(1)
	}
	if *run || *trace {
		fmt.Printf("[%d instructions, exit %d]\n", cpu.Steps, cpu.Exit)
	}
	if *pipeline {
		fmt.Println()
		for _, cfg := range []isa.PipelineConfig{
			{Forwarding: false, Branch: isa.StallOnBranch},
			{Forwarding: true, Branch: isa.StallOnBranch},
			{Forwarding: true, Branch: isa.PredictNotTaken},
			{Forwarding: true, Branch: isa.PredictNotTaken, Width: 2},
		} {
			st := isa.SimulatePipeline(entries, cfg)
			fmt.Println(st)
		}
	}
}
