package main

import (
	"context"
	"fmt"
	"hash/fnv"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/sockets"
	"repro/internal/wal"
)

// recoveryResult is the JSON line one recovery bench cell appends with
// -json. The ratio cells (recovery-replay-1m, rereplicate-stream-vs-keys)
// record the speedup itself as throughput_ops_s, so the baseline
// comparator's higher-is-better gate holds the line on the *ratio*, not
// just the absolute times — a regression that slows both sides equally
// is a host problem, one that erases the speedup is a code problem.
type recoveryResult struct {
	Label      string  `json:"label"`
	Seed       int64   `json:"seed"`
	Keys       int     `json:"keys"`
	ValueSize  int     `json:"value_size"`
	Workers    int     `json:"workers,omitempty"`
	DurationS  float64 `json:"duration_s"`
	Throughput float64 `json:"throughput_ops_s"`

	ConvergeMs   float64 `json:"converge_ms,omitempty"`
	SyncRounds   int64   `json:"sync_rounds,omitempty"`
	KeysRepaired int64   `json:"keys_repaired,omitempty"`
	RepairBytes  int64   `json:"repair_bytes,omitempty"`
}

// runRecoveryBench measures the two recovery fast paths against their
// slow baselines:
//
//  1. Replay: a generated multi-segment log (snapEvery 0 — the pure
//     worst case where every record must replay) is opened with
//     ReplayWorkers 1 and then with the parallel fan-out; the ratio
//     lands as cell recovery-replay-1m. A snapshotted variant of the
//     same log shows what checkpointing buys on top.
//  2. Re-replication: a durable 3-node cluster loses one node's disk
//     (kill + wipe + restart empty); anti-entropy rebuilds it first
//     with streaming disabled (key-by-key Merkle span repair) and then
//     with the WAL-streaming path; the ratio lands as cell
//     rereplicate-stream-vs-keys.
//
// The speedup floors from EXPERIMENTS E18 (replay >=3x, streaming
// >=2x) are enforced here on full runs; the replay floor only on a
// multi-core host, since a single-core runner serializes the fan-out
// and honestly measures ~1x.
func runRecoveryBench(records, keys, valueSize int, seed int64, quick bool, jsonPath string) int {
	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4 // still exercise the fan-out machinery on small hosts
	}

	fmt.Printf("recovery bench: %d-record replay log, %d-key re-replication, %dB values, seed %d\n",
		records, keys, valueSize, seed)

	serial, parallel, ok := replayPair(records, valueSize, seed, workers, 0, jsonPath)
	if !ok {
		return 1
	}
	speedup := serial.DurationS / parallel.DurationS
	ratio := recoveryResult{
		Label: "recovery-replay-1m", Seed: seed, Keys: records, ValueSize: valueSize,
		Workers: parallel.Workers, DurationS: parallel.DurationS, Throughput: speedup,
	}
	fmt.Printf("  parallel replay speedup: %.2fx (%d workers on GOMAXPROCS=%d)\n",
		speedup, parallel.Workers, runtime.GOMAXPROCS(0))
	if jsonPath != "" {
		if err := appendJSON(jsonPath, ratio); err != nil {
			fmt.Fprintln(os.Stderr, "clusterbench:", err)
			return 1
		}
	}

	// One snapshotted interval of the same log: recovery skips the
	// checkpointed prefix, so the replayed-record count (and the time)
	// must drop. This is the "several snapshot intervals" axis.
	if snap, _, ok := replayPair(records, valueSize, seed, 0, records/4, jsonPath); !ok {
		return 1
	} else if snapSpeed := serial.DurationS / snap.DurationS; true {
		fmt.Printf("  snapshot at %d records cuts serial recovery to %.0f ms (%.2fx of pure replay)\n",
			records/4, snap.DurationS*1e3, snapSpeed)
	}

	keyMode, ok := runRereplicate(keys, valueSize, seed, -1, "rereplicate-keyrepair", jsonPath)
	if !ok {
		return 1
	}
	streamMode, ok := runRereplicate(keys, valueSize, seed, 0.001, "rereplicate-stream", jsonPath)
	if !ok {
		return 1
	}
	streamSpeed := keyMode.ConvergeMs / streamMode.ConvergeMs
	streamRatio := recoveryResult{
		Label: "rereplicate-stream-vs-keys", Seed: seed, Keys: keys, ValueSize: valueSize,
		DurationS: streamMode.DurationS, Throughput: streamSpeed,
	}
	fmt.Printf("  streaming re-replication speedup: %.2fx (%.0f ms key-by-key -> %.0f ms streamed)\n",
		streamSpeed, keyMode.ConvergeMs, streamMode.ConvergeMs)
	if jsonPath != "" {
		if err := appendJSON(jsonPath, streamRatio); err != nil {
			fmt.Fprintln(os.Stderr, "clusterbench:", err)
			return 1
		}
	}

	if !quick {
		if runtime.GOMAXPROCS(0) >= 4 && speedup < 3 {
			fmt.Fprintf(os.Stderr, "clusterbench: parallel replay %.2fx on a %d-core host, want >=3x\n",
				speedup, runtime.GOMAXPROCS(0))
			return 1
		}
		if streamSpeed < 2 {
			fmt.Fprintf(os.Stderr, "clusterbench: streaming re-replication %.2fx, want >=2x over key-by-key repair\n", streamSpeed)
			return 1
		}
	}
	return 0
}

// replayPair generates one log and times wal.Open over it twice —
// serial, then with `workers` fan-out (skipped when workers == 0,
// used by the snapshot cell which only needs one timing). The two
// replays must agree on record count and final store state; a bench
// that measures a wrong answer fast measures nothing.
func replayPair(records, valueSize int, seed int64, workers, snapEvery int, jsonPath string) (serial, parallel recoveryResult, ok bool) {
	dir, err := os.MkdirTemp("", "recoverybench-wal-")
	if err != nil {
		fmt.Fprintln(os.Stderr, "clusterbench:", err)
		return serial, parallel, false
	}
	defer os.RemoveAll(dir)
	if err := wal.GenerateLog(dir, records, valueSize, seed, snapEvery); err != nil {
		fmt.Fprintln(os.Stderr, "clusterbench: generate log:", err)
		return serial, parallel, false
	}

	kind := "pure-replay"
	label := "recovery-replay-1m-serial"
	if snapEvery > 0 {
		kind = fmt.Sprintf("snapshot-every-%d", snapEvery)
		label = "recovery-replay-1m-snap"
	}
	serialSum, serialCount, elapsed, err := timeReplay(dir, 1)
	if err != nil {
		fmt.Fprintln(os.Stderr, "clusterbench: serial replay:", err)
		return serial, parallel, false
	}
	serial = recoveryResult{
		Label: label, Seed: seed, Keys: records, ValueSize: valueSize, Workers: 1,
		DurationS: elapsed.Seconds(), Throughput: float64(serialCount) / elapsed.Seconds(),
	}
	fmt.Printf("  %-24s serial:   %8.0f ms  %10.0f records/s  (%d records replayed)\n",
		kind, elapsed.Seconds()*1e3, serial.Throughput, serialCount)
	if jsonPath != "" {
		if err := appendJSON(jsonPath, serial); err != nil {
			fmt.Fprintln(os.Stderr, "clusterbench:", err)
			return serial, parallel, false
		}
	}
	if workers == 0 {
		return serial, parallel, true
	}

	parSum, parCount, elapsed, err := timeReplay(dir, workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "clusterbench: parallel replay:", err)
		return serial, parallel, false
	}
	if parCount != serialCount || parSum != serialSum {
		fmt.Fprintf(os.Stderr, "clusterbench: parallel replay diverged from serial: %d/%016x vs %d/%016x records/state\n",
			parCount, parSum, serialCount, serialSum)
		return serial, parallel, false
	}
	parallel = recoveryResult{
		Label: "recovery-replay-1m-parallel", Seed: seed, Keys: records, ValueSize: valueSize, Workers: workers,
		DurationS: elapsed.Seconds(), Throughput: float64(parCount) / elapsed.Seconds(),
	}
	fmt.Printf("  %-24s parallel: %8.0f ms  %10.0f records/s  (%d workers)\n",
		kind, elapsed.Seconds()*1e3, parallel.Throughput, workers)
	if jsonPath != "" {
		if err := appendJSON(jsonPath, parallel); err != nil {
			fmt.Fprintln(os.Stderr, "clusterbench:", err)
			return serial, parallel, false
		}
	}
	return serial, parallel, true
}

// replayStore is the bench's stand-in for the server's sharded map:
// enough real contention (per-stripe mutexes) that the parallel replay
// timing is honest, cheap enough that replay, not the store, dominates.
type replayStore struct {
	shards [64]struct {
		mu sync.Mutex
		m  map[string]string
	}
}

func newReplayStore() *replayStore {
	s := &replayStore{}
	for i := range s.shards {
		s.shards[i].m = make(map[string]string)
	}
	return s
}

func (s *replayStore) stripe(key string) int {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return int(h % uint32(len(s.shards)))
}

func (s *replayStore) apply(r *wal.Record) error {
	switch r.Kind {
	case wal.KindSet:
		sh := &s.shards[s.stripe(r.Key)]
		sh.mu.Lock()
		sh.m[r.Key] = r.Value
		sh.mu.Unlock()
	case wal.KindDel:
		sh := &s.shards[s.stripe(r.Key)]
		sh.mu.Lock()
		delete(sh.m, r.Key)
		sh.mu.Unlock()
	case wal.KindMPut:
		for _, kv := range r.Pairs {
			sh := &s.shards[s.stripe(kv.Key)]
			sh.mu.Lock()
			sh.m[kv.Key] = kv.Value
			sh.mu.Unlock()
		}
	case wal.KindMDel:
		for _, key := range r.Keys {
			sh := &s.shards[s.stripe(key)]
			sh.mu.Lock()
			delete(sh.m, key)
			sh.mu.Unlock()
		}
	}
	return nil
}

// checksum folds every key=value pair into an order-independent hash:
// serial and parallel replay must land on the same value.
func (s *replayStore) checksum() uint64 {
	var sum uint64
	for i := range s.shards {
		for k, v := range s.shards[i].m {
			h := fnv.New64a()
			h.Write([]byte(k))
			h.Write([]byte{0})
			h.Write([]byte(v))
			sum ^= h.Sum64()
		}
	}
	return sum
}

// timeReplay opens the log `replayRounds` times and keeps the fastest
// round: a shared host's scheduling noise easily doubles one replay's
// wall clock, and the minimum is the standard estimator for "what the
// code costs when the machine cooperates".
const replayRounds = 3

func timeReplay(dir string, workers int) (sum uint64, count int64, elapsed time.Duration, err error) {
	for round := 0; round < replayRounds; round++ {
		store := newReplayStore()
		start := time.Now()
		l, err := wal.Open(wal.Config{
			Dir:           dir,
			ReplayWorkers: workers,
			OnSnapshot: func(snap *wal.Snapshot) error {
				for _, kv := range snap.Pairs {
					sh := &store.shards[store.stripe(kv.Key)]
					sh.m[kv.Key] = kv.Value
				}
				return nil
			},
			OnRecord: store.apply,
		})
		if err != nil {
			return 0, 0, 0, err
		}
		d := time.Since(start)
		recovered := l.RecoveredRecords()
		if err := l.Close(); err != nil {
			return 0, 0, 0, err
		}
		if round == 0 || d < elapsed {
			elapsed = d
		}
		sum, count = store.checksum(), recovered
	}
	return sum, count, elapsed, nil
}

// runRereplicate times one disk-loss rebuild: load a durable binary
// cluster, kill one node, wipe its log, restart it empty, and run
// SyncNow passes until a quiet round. threshold -1 forces key-by-key
// Merkle span repair; a low threshold routes the near-total divergence
// onto the SYNCWAL streaming path.
func runRereplicate(keys, valueSize int, seed int64, threshold float64, label string, jsonPath string) (recoveryResult, bool) {
	var res recoveryResult
	c, err := cluster.New(cluster.Config{
		Nodes: 3, Replicas: 3, WriteQuorum: 2, ReadQuorum: 2,
		HeartbeatInterval:   25 * time.Millisecond,
		HeartbeatTimeout:    400 * time.Millisecond,
		PoolSize:            4,
		PoolTimeout:         5 * time.Second,
		DisableHints:        true,
		Durable:             true,
		Proto:               sockets.ProtoBinary,
		SyncStreamThreshold: threshold,
		DrainTimeout:        200 * time.Millisecond,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "clusterbench:", err)
		return res, false
	}
	defer c.Close()

	// Load concurrently: the durable write path group-commits, so a
	// serial loader would measure fsync latency, not load the cluster.
	rng := rand.New(rand.NewSource(seed))
	values := make([]string, keys)
	buf := make([]byte, valueSize)
	for i := range values {
		for j := range buf {
			buf[j] = 'a' + byte(rng.Intn(26))
		}
		values[i] = string(buf)
	}
	ctx := context.Background()
	const loaders = 16
	var wg sync.WaitGroup
	loadErrs := make(chan error, loaders)
	for w := 0; w < loaders; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < keys; i += loaders {
				// A loaded single-host cluster can miss a quorum deadline
				// under the fsync burst; retrying a version-stamped put is
				// safe (same value, newer version), so only a persistent
				// failure aborts the load.
				var err error
				for attempt := 0; attempt < 8; attempt++ {
					if err = c.PutCtx(ctx, fmt.Sprintf("rr-key-%d", i), values[i]); err == nil {
						break
					}
					time.Sleep(time.Duration(attempt+1) * 150 * time.Millisecond)
				}
				if err != nil {
					loadErrs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(loadErrs)
	for err := range loadErrs {
		fmt.Fprintln(os.Stderr, "clusterbench: load:", err)
		return res, false
	}

	victim := c.Nodes()[1]
	if err := c.Kill(victim); err != nil {
		fmt.Fprintln(os.Stderr, "clusterbench:", err)
		return res, false
	}
	if err := c.WipeWAL(victim); err != nil {
		fmt.Fprintln(os.Stderr, "clusterbench:", err)
		return res, false
	}
	if err := c.Restart(victim); err != nil {
		fmt.Fprintln(os.Stderr, "clusterbench:", err)
		return res, false
	}

	repairedBefore := c.AntiEntropyRepaired()
	bytesBefore := c.AntiEntropyBytes() + c.AntiEntropyStreamBytes()
	start := time.Now()
	var rounds int64
	for {
		n, err := c.SyncNow(ctx)
		if err != nil {
			fmt.Fprintln(os.Stderr, "clusterbench: sync:", err)
			return res, false
		}
		if n == 0 {
			break
		}
		rounds++
		if rounds > 64 {
			fmt.Fprintln(os.Stderr, "clusterbench: re-replication did not converge within 64 passes")
			return res, false
		}
	}
	elapsed := time.Since(start)

	res = recoveryResult{
		Label: label, Seed: seed, Keys: keys, ValueSize: valueSize,
		DurationS:    elapsed.Seconds(),
		Throughput:   float64(keys) / elapsed.Seconds(),
		ConvergeMs:   float64(elapsed.Microseconds()) / 1e3,
		SyncRounds:   rounds,
		KeysRepaired: c.AntiEntropyRepaired() - repairedBefore,
		RepairBytes:  c.AntiEntropyBytes() + c.AntiEntropyStreamBytes() - bytesBefore,
	}
	mode := "key-by-key span repair"
	if threshold >= 0 {
		mode = fmt.Sprintf("WAL streaming (%d streams)", c.AntiEntropyStreams())
	}
	fmt.Printf("  %-24s %s: %v, %d rounds, %d repairs, %d bytes (%.0f keys/s)\n",
		label, mode, elapsed.Round(time.Millisecond), res.SyncRounds, res.KeysRepaired, res.RepairBytes, res.Throughput)
	// Quiescence above is the correctness certificate (a quiet Merkle
	// pass proves every live pair's trees match, so the wiped node is
	// byte-identical again). The repaired counter is a sanity floor,
	// not an exact count: a repair whose write applied but whose
	// response was lost on a loaded host is re-certified by the next
	// pass without being re-counted, so allow 1% slack.
	if res.KeysRepaired < int64(keys)-int64(keys)/100 {
		fmt.Fprintf(os.Stderr, "clusterbench: only %d repairs for %d wiped keys — the rebuild is incomplete\n",
			res.KeysRepaired, keys)
		return res, false
	}
	if threshold >= 0 && c.AntiEntropyStreams() == 0 {
		fmt.Fprintln(os.Stderr, "clusterbench: streaming enabled but no SYNCWAL stream ran — measured the wrong path")
		return res, false
	}
	if jsonPath != "" {
		if err := appendJSON(jsonPath, res); err != nil {
			fmt.Fprintln(os.Stderr, "clusterbench:", err)
			return res, false
		}
	}
	return res, true
}
