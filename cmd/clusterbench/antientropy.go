package main

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"time"

	"repro/internal/cluster"
)

// aeResult is the JSON line one anti-entropy convergence run appends
// with -json — same file and cell convention as the workload rows, so
// the aggregator folds repeats into mean/stddev and the baseline
// comparator can hold the line on convergence time.
type aeResult struct {
	Label        string  `json:"label"`
	Seed         int64   `json:"seed"`
	Keys         int     `json:"keys"`
	ValueSize    int     `json:"value_size"`
	DurationS    float64 `json:"duration_s"`
	ConvergeMs   float64 `json:"converge_ms"`
	SyncRounds   int64   `json:"sync_rounds"`
	KeysRepaired int64   `json:"keys_repaired"`
	RepairBytes  int64   `json:"repair_bytes"`
}

// runAntiEntropy measures the Merkle-sync convergence path in
// isolation: a 3-node cluster (R=3, W=2, R=2) with hinted handoff
// DISABLED is loaded with `keys` keys, then one memory-only node is
// killed and restarted — it comes back empty, so every key is a
// divergence and anti-entropy is the only way home. The number
// reported is the wall time for SyncNow passes to reach a quiet round,
// plus the repair volume, which must equal the injected divergence
// (the diff moves only what differs).
func runAntiEntropy(keys, valueSize int, seed int64, jsonPath string) int {
	c, err := cluster.New(cluster.Config{
		Nodes: 3, Replicas: 3, WriteQuorum: 2, ReadQuorum: 2,
		HeartbeatInterval: 25 * time.Millisecond,
		HeartbeatTimeout:  150 * time.Millisecond,
		PoolSize:          4,
		PoolTimeout:       500 * time.Millisecond,
		DisableHints:      true,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "clusterbench:", err)
		return 1
	}
	defer c.Close()

	rng := rand.New(rand.NewSource(seed))
	value := make([]byte, valueSize)
	ctx := context.Background()
	fmt.Printf("anti-entropy convergence bench: %d keys x %dB, 3 nodes, hints disabled, seed %d\n",
		keys, valueSize, seed)
	for i := 0; i < keys; i++ {
		for j := range value {
			value[j] = 'a' + byte(rng.Intn(26))
		}
		if err := c.PutCtx(ctx, fmt.Sprintf("ae-key-%d", i), string(value)); err != nil {
			fmt.Fprintln(os.Stderr, "clusterbench: load:", err)
			return 1
		}
	}

	// Kill + restart: the node is memory-only, so it returns empty.
	victim := c.Nodes()[1]
	if err := c.Kill(victim); err != nil {
		fmt.Fprintln(os.Stderr, "clusterbench:", err)
		return 1
	}
	if err := c.Restart(victim); err != nil {
		fmt.Fprintln(os.Stderr, "clusterbench:", err)
		return 1
	}

	repairedBefore := c.AntiEntropyRepaired()
	bytesBefore := c.AntiEntropyBytes()
	start := time.Now()
	var rounds int64
	for {
		n, err := c.SyncNow(ctx)
		if err != nil {
			fmt.Fprintln(os.Stderr, "clusterbench: sync:", err)
			return 1
		}
		if n == 0 {
			break
		}
		rounds++
		if rounds > 64 {
			fmt.Fprintln(os.Stderr, "clusterbench: anti-entropy did not converge within 64 passes")
			return 1
		}
	}
	elapsed := time.Since(start)

	res := aeResult{
		Label:        "antientropy-converge",
		Seed:         seed,
		Keys:         keys,
		ValueSize:    valueSize,
		DurationS:    elapsed.Seconds(),
		ConvergeMs:   float64(elapsed.Microseconds()) / 1e3,
		SyncRounds:   rounds,
		KeysRepaired: c.AntiEntropyRepaired() - repairedBefore,
		RepairBytes:  c.AntiEntropyBytes() - bytesBefore,
	}
	fmt.Printf("converged in %v: %d sync rounds, %d copies rewritten, %d bytes moved (%.0f keys/s)\n",
		elapsed.Round(time.Millisecond), res.SyncRounds, res.KeysRepaired, res.RepairBytes,
		float64(res.KeysRepaired)/elapsed.Seconds())
	if res.KeysRepaired != int64(keys) {
		fmt.Fprintf(os.Stderr, "clusterbench: repaired %d copies, want exactly %d — the diff moved more (or less) than the divergence\n",
			res.KeysRepaired, keys)
		return 1
	}
	if jsonPath != "" {
		if err := appendJSON(jsonPath, res); err != nil {
			fmt.Fprintln(os.Stderr, "clusterbench:", err)
			return 1
		}
	}
	return 0
}
