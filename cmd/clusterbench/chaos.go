package main

import (
	"fmt"
	"os"
	"strings"

	"repro/internal/chaos"
	"repro/internal/sockets"
)

// runChaos executes the named scenario (or all of them) under the given
// seed and returns the process exit code: 0 when every run finished
// with zero anomalies and zero unexcused errors, 1 otherwise. Each
// failing report carries its seed and the exact replay commands.
func runChaos(scenario string, seed int64, proto sockets.Proto) int {
	var specs []chaos.Spec
	if scenario == "" {
		specs = chaos.Scenarios()
	} else {
		spec, ok := chaos.Scenario(scenario)
		if !ok {
			fmt.Fprintf(os.Stderr, "clusterbench: unknown scenario %q; have: %s\n",
				scenario, strings.Join(chaos.ScenarioNames(), ", "))
			return 2
		}
		specs = []chaos.Spec{spec}
	}

	fmt.Printf("chaos: %d scenario(s) under seed %d, %s protocol\n\n", len(specs), seed, proto)
	failures := 0
	for _, spec := range specs {
		spec.Proto = proto
		rep, err := chaos.Run(spec, seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "clusterbench: scenario %s (seed %d): %v\n", spec.Name, seed, err)
			failures++
			continue
		}
		fmt.Println(rep)
		if rep.Failed() {
			failures++
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "chaos: %d of %d scenario(s) FAILED under seed %d — replay with -chaos -seed %d\n",
			failures, len(specs), seed, seed)
		return 1
	}
	fmt.Printf("chaos: all %d scenario(s) clean under seed %d\n", len(specs), seed)
	return 0
}
