package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/wal"
)

// walResult is the JSON line one WAL microbench configuration appends
// with -json — same file and cell convention as the workload rows.
type walResult struct {
	Label          string  `json:"label"`
	Writers        int     `json:"workers"`
	DurationS      float64 `json:"duration_s"`
	Appends        int64   `json:"ops"`
	Syncs          int64   `json:"syncs"`
	Throughput     float64 `json:"throughput_ops_s"`
	AppendsPerSync float64 `json:"appends_per_sync"`
}

// runWALBench measures the group-commit win directly: the same closed
// loop of `writers` concurrent AppendSync callers, first serialized so
// every record pays its own fsync, then free-running so the commit loop
// batches whatever queued during the previous sync. Both rows land in
// the -json file; the printed ratio is the acceptance number (≥5× at 64
// writers per EXPERIMENTS E16).
func runWALBench(writers int, dur time.Duration, jsonPath string) int {
	fmt.Printf("wal group-commit bench: %d writers, %s per configuration\n\n", writers, dur)
	configs := []struct {
		label     string
		serialize bool
	}{
		{"wal-fsync-per-write", true},
		{"wal-group-commit", false},
	}
	results := make([]walResult, 0, len(configs))
	for _, cfg := range configs {
		dir, err := os.MkdirTemp("", "walbench-")
		if err != nil {
			fmt.Fprintln(os.Stderr, "clusterbench:", err)
			return 1
		}
		r, err := wal.RunGroupCommitBench(dir, writers, dur, cfg.serialize)
		os.RemoveAll(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "clusterbench: walbench:", err)
			return 1
		}
		perSync := float64(r.Appends)
		if r.Syncs > 0 {
			perSync = float64(r.Appends) / float64(r.Syncs)
		}
		res := walResult{
			Label:          cfg.label,
			Writers:        r.Writers,
			DurationS:      r.Duration.Seconds(),
			Appends:        r.Appends,
			Syncs:          r.Syncs,
			Throughput:     r.OpsPerSec(),
			AppendsPerSync: perSync,
		}
		results = append(results, res)
		fmt.Printf("%-20s %8.0f appends/s  (%d appends, %d fsyncs, %.1f appends/fsync)\n",
			cfg.label+":", res.Throughput, res.Appends, res.Syncs, res.AppendsPerSync)
		if jsonPath != "" {
			if err := appendJSON(jsonPath, res); err != nil {
				fmt.Fprintln(os.Stderr, "clusterbench:", err)
				return 1
			}
		}
	}
	if results[0].Throughput > 0 {
		fmt.Printf("\ngroup commit speedup at %d writers: %.1fx\n",
			writers, results[1].Throughput/results[0].Throughput)
	}
	return 0
}
