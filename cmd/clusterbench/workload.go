package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/sockets"
	"repro/internal/workload"
)

// workloadOpts is one workload-mode run: a distribution, a transport, a
// cache setting, and either a closed loop (qps 0: every worker issues
// its next op the moment the previous one returns) or an open loop
// (workers dispatch on a fixed arrival schedule at the offered rate and
// record how far they fall behind).
type workloadOpts struct {
	dist       workload.Dist
	theta      float64
	keys       int
	readFrac   float64
	valueSize  int
	duration   time.Duration
	workers    int
	qps        float64 // total offered rate across workers; 0 = closed loop
	cache      bool
	lease      time.Duration
	maxPending int
	poolSize   int
	nodes      int
	replicas   int
	proto      sockets.Proto
	seed       int64
	durable    bool
	jsonPath   string
	label      string
}

// workloadResult is the JSON line one run appends with -json — the raw
// material scripts/perf aggregates into BENCH_<date>.json.
type workloadResult struct {
	Label      string  `json:"label,omitempty"`
	Dist       string  `json:"dist"`
	Proto      string  `json:"proto"`
	Cache      bool    `json:"cache"`
	Durable    bool    `json:"durable,omitempty"`
	Mode       string  `json:"mode"` // "closed" or "open"
	OfferedQPS float64 `json:"offered_qps,omitempty"`
	Theta      float64 `json:"theta"`
	Keys       int     `json:"keys"`
	Workers    int     `json:"workers"`
	ReadFrac   float64 `json:"read_frac"`
	ValueSize  int     `json:"value_size"`
	MaxPending int     `json:"max_pending"`
	Seed       int64   `json:"seed"`
	DurationS  float64 `json:"duration_s"`

	Ops        int64   `json:"ops"`
	Errors     int64   `json:"errors"`
	Overloads  int64   `json:"overloads"`
	Throughput float64 `json:"throughput_ops_s"` // attempts/s
	Goodput    float64 `json:"goodput_ops_s"`    // successes/s

	ReadP50Ms   float64 `json:"read_p50_ms"`
	ReadP99Ms   float64 `json:"read_p99_ms"`
	ReadP999Ms  float64 `json:"read_p999_ms"`
	WriteP50Ms  float64 `json:"write_p50_ms"`
	WriteP99Ms  float64 `json:"write_p99_ms"`
	CacheHits   int64   `json:"cache_hits"`
	CacheMisses int64   `json:"cache_misses"`
	Sheds       int64   `json:"sheds"`
	LagMeanMs   float64 `json:"lag_mean_ms"`
	LagMaxMs    float64 `json:"lag_max_ms"`
}

func (r workloadResult) cell() string {
	if r.Label != "" {
		return r.Label
	}
	cacheStr := "nocache"
	if r.Cache {
		cacheStr = "cache"
	}
	return fmt.Sprintf("%s-%s-%s-%s", r.Dist, r.Proto, cacheStr, r.Mode)
}

const workloadOpTimeout = 2 * time.Second

// runWorkload executes one workload-mode run and returns the process
// exit code.
func runWorkload(ctx context.Context, o workloadOpts) int {
	wl, err := workload.New(workload.Config{
		Keys:     o.keys,
		Dist:     o.dist,
		Theta:    o.theta,
		ReadFrac: o.readFrac,
		ValueMin: o.valueSize,
		ValueMax: o.valueSize,
		Seed:     o.seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "clusterbench:", err)
		return 2
	}

	// Failure detection is deliberately slack here: workload mode measures
	// steady-state serving, and on a loaded single-CPU host a GC pause can
	// exceed an aggressive heartbeat timeout and trigger a spurious
	// failover mid-benchmark, which would corrupt the measurement.
	c, err := cluster.New(cluster.Config{
		Nodes:             o.nodes,
		Replicas:          o.replicas,
		HeartbeatInterval: 100 * time.Millisecond,
		HeartbeatTimeout:  600 * time.Millisecond,
		PoolSize:          o.poolSize,
		PoolTimeout:       500 * time.Millisecond,
		Proto:             o.proto,
		HotKeyCache:       o.cache,
		CacheLease:        o.lease,
		MaxPending:        o.maxPending,
		Durable:           o.durable,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "clusterbench:", err)
		return 1
	}
	defer c.Close()

	// Preload the whole keyspace so reads never miss on cold state, with
	// values of the configured size: read cost scales with the stored
	// value, so tiny preload values would understate the measured load
	// until the write mix replaced them.
	initSize := o.valueSize
	if initSize <= 0 {
		initSize = 64
	}
	initVal := strings.Repeat("x", initSize)
	for _, key := range wl.Keys() {
		if err := c.PutCtx(ctx, key, initVal); err != nil {
			fmt.Fprintln(os.Stderr, "clusterbench: preload:", err)
			return 1
		}
	}

	mode := "closed"
	if o.qps > 0 {
		mode = "open"
	}
	fmt.Printf("workload: %s keys=%d theta=%.2f readfrac=%.2f, %d workers, %s, %s loop",
		o.dist, o.keys, o.theta, o.readFrac, o.workers, o.proto, mode)
	if o.qps > 0 {
		fmt.Printf(" @ %.0f qps offered", o.qps)
	}
	fmt.Printf(", cache=%v, durable=%v", o.cache, o.durable)
	if o.cache {
		fmt.Printf(" (lease %s)", o.lease)
	}
	if o.maxPending > 0 {
		fmt.Printf(", maxpending=%d", o.maxPending)
	}
	fmt.Printf(", %s\n", o.duration)

	readHist := metrics.NewHistogram()
	writeHist := metrics.NewHistogram()
	var ops, errs, overloads atomic.Int64
	lag := workload.NewLagGauge()

	runCtx, cancel := context.WithTimeout(ctx, o.duration)
	defer cancel()
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < o.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			gen := wl.Gen(w)
			var pacer *workload.Pacer
			if o.qps > 0 {
				p, perr := workload.NewPacer(o.qps/float64(o.workers), lag)
				if perr != nil {
					return
				}
				pacer = p
			}
			for runCtx.Err() == nil {
				if pacer != nil {
					if pacer.Wait(runCtx) != nil {
						return
					}
				}
				op := gen.Next()
				opCtx, opCancel := context.WithTimeout(runCtx, workloadOpTimeout)
				opStart := time.Now()
				var err error
				switch op.Kind {
				case workload.OpWrite:
					err = c.PutCtx(opCtx, op.Key, op.Value)
				case workload.OpDelete:
					err = c.DelCtx(opCtx, op.Key)
				default:
					_, _, err = c.GetCtx(opCtx, op.Key)
				}
				d := time.Since(opStart)
				opCancel()
				if runCtx.Err() != nil && err != nil {
					return // the run window closed mid-op; not a sample
				}
				ops.Add(1)
				if err != nil {
					errs.Add(1)
					// The quorum layer reports its own failure shape, so also
					// classify by message when the typed error didn't survive
					// the wrapping.
					if errors.Is(err, sockets.ErrOverload) || strings.Contains(err.Error(), "overload") {
						overloads.Add(1)
					}
					continue
				}
				if op.Kind == workload.OpRead {
					readHist.Observe(d)
				} else {
					writeHist.Observe(d)
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	total := ops.Load()
	good := total - errs.Load()
	ls := lag.Snapshot()
	res := workloadResult{
		Label:      o.label,
		Dist:       o.dist.String(),
		Proto:      o.proto.String(),
		Cache:      o.cache,
		Durable:    o.durable,
		Mode:       mode,
		OfferedQPS: o.qps,
		Theta:      o.theta,
		Keys:       o.keys,
		Workers:    o.workers,
		ReadFrac:   o.readFrac,
		ValueSize:  o.valueSize,
		MaxPending: o.maxPending,
		Seed:       o.seed,
		DurationS:  elapsed.Seconds(),
		Ops:        total,
		Errors:     errs.Load(),
		Overloads:  overloads.Load(),
		Throughput: float64(total) / elapsed.Seconds(),
		Goodput:    float64(good) / elapsed.Seconds(),
		ReadP50Ms:  durMs(readHist.Quantile(0.50)),
		ReadP99Ms:  durMs(readHist.Quantile(0.99)),
		ReadP999Ms: durMs(readHist.Quantile(0.999)),
		WriteP50Ms: durMs(writeHist.Quantile(0.50)),
		WriteP99Ms: durMs(writeHist.Quantile(0.99)),

		CacheHits:   c.CacheHits(),
		CacheMisses: c.CacheMisses(),
		Sheds:       c.Sheds(),
		LagMeanMs:   durMs(ls.Mean),
		LagMaxMs:    durMs(ls.Max),
	}

	fmt.Printf("\n%8d ops in %v: %.0f ops/s offered-side, %.0f ops/s goodput (%d errors, %d overload)\n",
		res.Ops, elapsed.Round(time.Millisecond), res.Throughput, res.Goodput, res.Errors, res.Overloads)
	fmt.Printf("  reads : n=%d p50=%v p99=%v p999=%v\n",
		readHist.Count(), readHist.Quantile(0.50).Round(time.Microsecond),
		readHist.Quantile(0.99).Round(time.Microsecond), readHist.Quantile(0.999).Round(time.Microsecond))
	fmt.Printf("  writes: n=%d p50=%v p99=%v\n",
		writeHist.Count(), writeHist.Quantile(0.50).Round(time.Microsecond), writeHist.Quantile(0.99).Round(time.Microsecond))
	if o.cache {
		hitRate := 0.0
		if hm := res.CacheHits + res.CacheMisses; hm > 0 {
			hitRate = float64(res.CacheHits) / float64(hm)
		}
		fmt.Printf("  cache : %d hits / %d misses (%.1f%% hit rate)\n", res.CacheHits, res.CacheMisses, 100*hitRate)
	}
	if o.maxPending > 0 {
		fmt.Printf("  sheds : %d\n", res.Sheds)
	}
	if o.qps > 0 {
		fmt.Printf("  lag   : %d dispatches, mean %v, max %v", ls.Dispatches, ls.Mean.Round(time.Microsecond), ls.Max.Round(time.Microsecond))
		if ls.Mean > 5*time.Millisecond {
			fmt.Printf("  [WARN: load generator fell behind; offered rate under-delivered]")
		}
		fmt.Println()
	}

	if o.jsonPath != "" {
		if err := appendJSON(o.jsonPath, res); err != nil {
			fmt.Fprintln(os.Stderr, "clusterbench:", err)
			return 1
		}
		fmt.Printf("  appended cell %q to %s\n", res.cell(), o.jsonPath)
	}
	return 0
}

func durMs(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// appendJSON appends one result as a JSON line (the file accumulates a
// run per line; the aggregator groups them by cell).
func appendJSON(path string, res any) error {
	b, err := json.Marshal(res)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.Write(append(b, '\n'))
	return err
}
