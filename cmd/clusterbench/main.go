// Command clusterbench measures the replicated KV cluster three ways:
//
//  1. Throughput scaling: quorum SET/GET pairs through rising client
//     counts, reduced to the speedup/efficiency/Karp-Flatt table every
//     other bench in this repo prints.
//  2. Availability: a node is killed mid-run; the bench reports the
//     fraction of quorum reads and writes that still succeed, the
//     hinted-handoff volume, and the hint replay on restart.
//  3. Elasticity: a node joins a loaded cluster; the ring-metadata
//     Moves() counter certifies that only ~K/n keys relocated.
//
// It ends with the cluster health report: per-node latency percentiles
// plus the handoff/quorum counter set, and a sample of the per-node
// pool's client-side counters.
//
// With -chaos it instead runs the seeded fault-injection scenarios from
// internal/chaos and checks the recorded history for consistency
// anomalies; any failure prints the offending seed and exits nonzero.
//
// Usage:
//
//	clusterbench -nodes 4 -replicas 3 -clients 1,2,4,8 -ops 2000 -keys 400
//	clusterbench -quick        # the CI smoke configuration
//	clusterbench -chaos -seed 7              # all scenarios under seed 7
//	clusterbench -chaos -scenario deadline-storm -seed 42
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/sockets"
	"repro/internal/workload"
)

func main() {
	nodes := flag.Int("nodes", 4, "initial node count")
	replicas := flag.Int("replicas", 3, "replicas per key")
	clientsFlag := flag.String("clients", "1,2,4,8", "comma-separated concurrent client counts (must include 1)")
	ops := flag.Int("ops", 2000, "total SET/GET pairs per throughput run")
	keys := flag.Int("keys", 400, "distinct keys loaded for the availability and join phases")
	quick := flag.Bool("quick", false, "CI smoke: small ops/keys and clients 1,2")
	chaosMode := flag.Bool("chaos", false, "run the seeded chaos scenarios instead of the benches")
	scenario := flag.String("scenario", "", "with -chaos: run only this scenario (default: all)")
	seed := flag.Int64("seed", 1, "with -chaos: schedule seed; a failing run prints the seed to replay")
	protoFlag := flag.String("proto", "text", "inter-node wire protocol: text or binary (pipelined PDUs, batched migration)")
	workloadFlag := flag.String("workload", "", "run the seeded workload generator instead of the benches: uniform or zipfian")
	qps := flag.Float64("qps", 0, "with -workload: total offered rate for the open-loop schedule (0 = closed loop)")
	theta := flag.Float64("theta", 0.99, "with -workload zipfian: zipfian exponent in (0,1)")
	cacheFlag := flag.Bool("cache", false, "with -workload: enable the cluster's hot-key lease cache")
	lease := flag.Duration("lease", 50*time.Millisecond, "with -cache: cache entry lease (the bounded staleness window)")
	maxPending := flag.Int("maxpending", 0, "with -workload: per-node admission bound (0 = no shedding)")
	poolSize := flag.Int("poolsize", 4, "with -workload: client pool connections per node (overload cells need more than the admission bound)")
	durationFlag := flag.Duration("duration", 4*time.Second, "with -workload: measurement window")
	workers := flag.Int("workers", 16, "with -workload: concurrent client workers")
	readFrac := flag.Float64("readfrac", 0.95, "with -workload: fraction of ops that are reads")
	valueSize := flag.Int("valuesize", 64, "with -workload: value size in bytes (writes and preload)")
	wkeys := flag.Int("wkeys", 512, "with -workload: keyspace size")
	jsonPath := flag.String("json", "", "with -workload: append one JSON result line to this file")
	label := flag.String("label", "", "with -json: cell label for the aggregator (default: derived from dist/proto/cache/mode)")
	durable := flag.Bool("durable", false, "with -workload: give every node a write-ahead log (writes fsync before ack)")
	walBench := flag.Bool("walbench", false, "run the WAL group-commit microbench instead of the benches")
	walWriters := flag.Int("walwriters", 64, "with -walbench: concurrent append writers")
	walDur := flag.Duration("waldur", 2*time.Second, "with -walbench: measurement window per configuration")
	aeBench := flag.Bool("antientropy", false, "run the anti-entropy convergence bench: restart a memory-only node empty and time the Merkle sync that rebuilds it")
	aeKeys := flag.Int("aekeys", 10000, "with -antientropy: keys loaded (= the injected divergence)")
	recoveryBench := flag.Bool("recoverybench", false, "run the recovery benches: serial-vs-parallel WAL replay and streaming-vs-key-by-key re-replication after a wiped disk")
	replayRecords := flag.Int("replayrecords", 1_000_000, "with -recoverybench: records in the generated replay log")
	rrKeys := flag.Int("rrkeys", 100_000, "with -recoverybench: keys loaded before the disk-wipe re-replication phase")
	flag.Parse()
	proto, err := sockets.ParseProto(*protoFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "clusterbench:", err)
		os.Exit(2)
	}
	if *chaosMode {
		os.Exit(runChaos(*scenario, *seed, proto))
	}
	if *walBench {
		if *quick {
			*walDur = 500 * time.Millisecond
		}
		os.Exit(runWALBench(*walWriters, *walDur, *jsonPath))
	}
	if *aeBench {
		if *quick {
			*aeKeys = 1000
		}
		os.Exit(runAntiEntropy(*aeKeys, *valueSize, *seed, *jsonPath))
	}
	if *recoveryBench {
		if *quick {
			*replayRecords, *rrKeys = 50_000, 2_000
		}
		os.Exit(runRecoveryBench(*replayRecords, *rrKeys, *valueSize, *seed, *quick, *jsonPath))
	}
	if *workloadFlag != "" {
		dist, err := workload.ParseDist(*workloadFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "clusterbench:", err)
			os.Exit(2)
		}
		if *quick {
			*durationFlag, *wkeys, *workers = 1200*time.Millisecond, 128, 4
		}
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		os.Exit(runWorkload(ctx, workloadOpts{
			dist:       dist,
			theta:      *theta,
			keys:       *wkeys,
			readFrac:   *readFrac,
			valueSize:  *valueSize,
			duration:   *durationFlag,
			workers:    *workers,
			qps:        *qps,
			cache:      *cacheFlag,
			lease:      *lease,
			maxPending: *maxPending,
			poolSize:   *poolSize,
			nodes:      *nodes,
			replicas:   *replicas,
			proto:      proto,
			seed:       *seed,
			durable:    *durable,
			jsonPath:   *jsonPath,
			label:      *label,
		}))
	}
	if *quick {
		*ops, *keys = 300, 120
		*clientsFlag = "1,2"
	}

	clients, err := parseClients(*clientsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "clusterbench:", err)
		os.Exit(2)
	}

	// Ctrl-C cancels the sweep: quorum ops in flight abort (laggard
	// replica requests are canceled), the cluster drains through Close,
	// and the tables cover whatever completed.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fmt.Printf("cluster scalability study: %d nodes, %d replicas, quorum W=R=%d, %d SET/GET pairs per run, %s protocol\n\n",
		*nodes, *replicas, *replicas/2+1, *ops, proto)
	var ms []metrics.Measurement
	interrupted := false
	for _, nc := range clients {
		elapsed, err := throughputRun(ctx, *nodes, *replicas, nc, *ops, proto)
		if err != nil {
			if errors.Is(err, context.Canceled) {
				interrupted = true
				break
			}
			fmt.Fprintln(os.Stderr, "clusterbench:", err)
			os.Exit(1)
		}
		ms = append(ms, metrics.Measurement{Workers: nc, Elapsed: elapsed})
		fmt.Printf("%3d clients: %12v  %10.0f quorum ops/sec\n",
			nc, elapsed.Round(time.Microsecond), float64(2*(*ops))/elapsed.Seconds())
	}
	if interrupted {
		fmt.Println("\ninterrupted: reporting the runs that completed")
	}
	if len(ms) == 0 {
		fmt.Fprintln(os.Stderr, "clusterbench: interrupted before any run completed")
		os.Exit(1)
	}
	tbl, err := metrics.BuildTable(ms)
	if err != nil {
		fmt.Fprintln(os.Stderr, "clusterbench:", err)
		os.Exit(1)
	}
	fmt.Println()
	fmt.Print(tbl)

	if interrupted {
		return // the failure/elasticity phases need an uninterrupted cluster
	}
	fmt.Println()
	if err := availabilityAndJoin(ctx, *nodes, *replicas, *keys, proto); err != nil {
		fmt.Fprintln(os.Stderr, "clusterbench:", err)
		os.Exit(1)
	}
}

func parseClients(s string) ([]int, error) {
	var out []int
	baseline := false
	for _, part := range strings.Split(s, ",") {
		c, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || c < 1 {
			return nil, fmt.Errorf("bad client count %q", part)
		}
		if c == 1 {
			baseline = true
		}
		out = append(out, c)
	}
	if !baseline {
		return nil, fmt.Errorf("client counts must include 1 (the speedup baseline)")
	}
	return out, nil
}

func newCluster(nodes, replicas int, proto sockets.Proto) (*cluster.Cluster, error) {
	return cluster.New(cluster.Config{
		Nodes:             nodes,
		Replicas:          replicas,
		HeartbeatInterval: 25 * time.Millisecond,
		HeartbeatTimeout:  150 * time.Millisecond,
		PoolSize:          4,
		PoolTimeout:       500 * time.Millisecond,
		Proto:             proto,
	})
}

// throughputRun drives one measurement: nclients goroutines splitting
// ops quorum SET/GET pairs against a fresh cluster. Cancellation drains
// the workers at the next quorum-op boundary and surfaces the wrapped
// ctx error.
func throughputRun(ctx context.Context, nodes, replicas, nclients, ops int, proto sockets.Proto) (time.Duration, error) {
	c, err := newCluster(nodes, replicas, proto)
	if err != nil {
		return 0, err
	}
	defer c.Close()
	per := ops / nclients
	if per == 0 {
		per = 1
	}
	errs := make(chan error, nclients)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < nclients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				key := fmt.Sprintf("key-%d-%d", w, i%128)
				if err := c.PutCtx(ctx, key, "value"); err != nil {
					errs <- err
					return
				}
				if _, _, err := c.GetCtx(ctx, key); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	for err := range errs {
		return 0, err
	}
	return elapsed, nil
}

// availabilityAndJoin runs the failure and elasticity phases on one
// loaded cluster and prints the health report. An interrupt mid-phase
// drains the phase in flight and still prints the report, so the
// counters accumulated before Ctrl-C are not lost.
func availabilityAndJoin(ctx context.Context, nodes, replicas, keys int, proto sockets.Proto) error {
	c, err := newCluster(nodes, replicas, proto)
	if err != nil {
		return err
	}
	defer c.Close()
	phaseErr := failureAndElasticityPhases(ctx, c, nodes, replicas, keys)
	if phaseErr != nil && !errors.Is(phaseErr, context.Canceled) {
		return phaseErr
	}
	if phaseErr != nil {
		fmt.Println("\ninterrupted: the health report covers the phases that completed")
	}
	fmt.Println("cluster health report:")
	fmt.Print(c.Report())
	fmt.Println("\nclient pool counters (summed across nodes):")
	fmt.Print(c.PoolCounters())
	return nil
}

func failureAndElasticityPhases(ctx context.Context, c *cluster.Cluster, nodes, replicas, keys int) error {
	for i := 0; i < keys; i++ {
		if err := c.PutCtx(ctx, fmt.Sprintf("key-%d", i), fmt.Sprintf("val-%d", i)); err != nil {
			return err
		}
	}

	victim := c.Nodes()[1]
	fmt.Printf("availability: killing %s with %d keys loaded (%d replicas, quorum reads need %d)\n",
		victim, keys, replicas, replicas/2+1)
	if err := c.Kill(victim); err != nil {
		return err
	}
	c.Probe()
	var readOK, writeOK atomic.Int64
	for i := 0; i < keys; i++ {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("clusterbench: availability phase canceled: %w", err)
		}
		if v, ok, err := c.GetCtx(ctx, fmt.Sprintf("key-%d", i)); err == nil && ok && v == fmt.Sprintf("val-%d", i) {
			readOK.Add(1)
		}
		if err := c.PutCtx(ctx, fmt.Sprintf("key-%d", i), fmt.Sprintf("val2-%d", i)); err == nil {
			writeOK.Add(1)
		}
	}
	fmt.Printf("  quorum reads  with 1 of %d replicas down: %d/%d (%.1f%%)\n",
		replicas, readOK.Load(), keys, 100*float64(readOK.Load())/float64(keys))
	fmt.Printf("  quorum writes with 1 of %d replicas down: %d/%d (%.1f%%)\n",
		replicas, writeOK.Load(), keys, 100*float64(writeOK.Load())/float64(keys))
	hinted, _ := c.Counters().Get("cluster.hinted-writes")
	fmt.Printf("  hinted handoffs parked for %s: %.0f\n", victim, hinted)
	if err := c.Restart(victim); err != nil {
		return err
	}
	replayed, _ := c.Counters().Get("cluster.hints-replayed")
	fmt.Printf("  hints replayed on restart: %.0f\n\n", replayed)

	if err := ctx.Err(); err != nil {
		return fmt.Errorf("clusterbench: canceled before the elasticity phase: %w", err)
	}
	before := c.Moves()
	if err := c.Join("joiner"); err != nil {
		return err
	}
	moved := c.Moves() - before
	fmt.Printf("elasticity: joining a %dth node moved %d of %d keys (~K/n = %d expected)\n\n",
		nodes+1, moved, keys, keys/(nodes+1))
	return nil
}
