// Command sortbench runs the CS41 fork-join lab's scalability study on
// the work-stealing scheduler: for each worker count it sorts the same
// input on a pool of that size, then reduces the timings to the
// speedup/efficiency/Karp-Flatt table kvbench and lifebench print —
// with the scheduler's steal/task counters alongside, so load balance
// is read off the runtime instead of guessed.
//
// Usage:
//
//	sortbench -n 1048576 -workers 1,2,4,8 -algo pmsort
//	sortbench -algo samplesort              # bucket-parallel variant
//	sortbench -algo pmsort -spawn           # also time the old
//	                                        # goroutine-per-fork baseline
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/metrics"
	"repro/internal/psort"
	"repro/internal/sched"
)

func main() {
	n := flag.Int("n", 1<<20, "elements to sort (power of two required for -algo bitonic)")
	workersFlag := flag.String("workers", "1,2,4,8", "comma-separated worker counts (must include 1)")
	algo := flag.String("algo", "pmsort", "pmsort | pmsortpm | samplesort | bitonic")
	reps := flag.Int("reps", 3, "repetitions per worker count (minimum is reported)")
	spawn := flag.Bool("spawn", false, "also time the pre-scheduler goroutine-per-fork merge sort")
	flag.Parse()

	var workers []int
	hasBaseline := false
	for _, part := range strings.Split(*workersFlag, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || w < 1 {
			fmt.Fprintf(os.Stderr, "sortbench: bad worker count %q\n", part)
			os.Exit(2)
		}
		if w == 1 {
			hasBaseline = true
		}
		workers = append(workers, w)
	}
	if !hasBaseline {
		fmt.Fprintln(os.Stderr, "sortbench: worker counts must include 1 (the speedup baseline)")
		os.Exit(2)
	}

	xs := randomInts(*n, 42)
	want, _ := psort.MergeSort(xs)

	run, name := sorter(*algo)
	if run == nil {
		fmt.Fprintf(os.Stderr, "sortbench: unknown algo %q\n", *algo)
		os.Exit(2)
	}
	fmt.Printf("%s scalability study: n=%d, best of %d reps per worker count\n\n", name, *n, *reps)

	// Ctrl-C cancels the sweep between reps (and mid-run for the
	// ctx-aware sample sort): the rep in flight drains and the table
	// covers the worker counts that finished.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var ms []metrics.Measurement
	var lastStats sched.Stats
	interrupted := false
	for _, w := range workers {
		pool := sched.New(w)
		best := time.Duration(0)
		var stats sched.Stats
		for r := 0; r < *reps; r++ {
			if ctx.Err() != nil {
				interrupted = true
				break
			}
			before := pool.Stats()
			start := time.Now()
			out, err := run(ctx, pool, xs)
			elapsed := time.Since(start)
			if err != nil {
				if errors.Is(err, context.Canceled) {
					interrupted = true
					break
				}
				fmt.Fprintln(os.Stderr, "sortbench:", err)
				os.Exit(1)
			}
			if r == 0 {
				verify(out, want)
			}
			if best == 0 || elapsed < best {
				best = elapsed
				stats = pool.Stats().Sub(before)
			}
		}
		pool.Close()
		if best > 0 {
			ms = append(ms, metrics.Measurement{Workers: w, Elapsed: best})
			lastStats = stats
			fmt.Printf("%3d workers: %12v   tasks %6d  steals %5d  steal-rate %.3f\n",
				w, best.Round(time.Microsecond), stats.Tasks, stats.Steals, stats.StealRate())
		}
		if interrupted {
			break
		}
	}
	if interrupted {
		fmt.Println("\ninterrupted: reporting the runs that completed")
	}
	if len(ms) == 0 {
		fmt.Fprintln(os.Stderr, "sortbench: interrupted before any run completed")
		os.Exit(1)
	}

	if *spawn && !interrupted {
		best := time.Duration(0)
		for r := 0; r < *reps; r++ {
			start := time.Now()
			out := psort.ParallelMergeSortSpawn(xs, 0)
			elapsed := time.Since(start)
			if r == 0 {
				verify(out, want)
			}
			if best == 0 || elapsed < best {
				best = elapsed
			}
		}
		fmt.Printf("\nspawn-per-fork baseline (unbounded goroutines): %v\n", best.Round(time.Microsecond))
	}

	tbl, err := metrics.BuildTable(ms)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sortbench:", err)
		os.Exit(1)
	}
	fmt.Println()
	fmt.Print(tbl)
	fmt.Printf("\nAmdahl fit from largest run: serial fraction f = %.4f (limit %.1fx)\n",
		tbl.FitF, metrics.AmdahlLimit(tbl.FitF))
	fmt.Println("\nScheduler counters, largest run:")
	fmt.Print(lastStats.Counters())
}

// sorter maps an -algo name to a pool-parameterized sort. The context
// reaches the ctx-aware variants (sample sort); the fork-join merge
// sorts are atomic per rep and honor cancellation between reps instead.
func sorter(algo string) (func(context.Context, *sched.Pool, []int64) ([]int64, error), string) {
	switch algo {
	case "pmsort":
		return func(_ context.Context, p *sched.Pool, xs []int64) ([]int64, error) {
			return psort.ParallelMergeSortOn(p, xs, 0), nil
		}, "parallel merge sort (serial merge)"
	case "pmsortpm":
		return func(_ context.Context, p *sched.Pool, xs []int64) ([]int64, error) {
			return psort.ParallelMergeSortPMOn(p, xs, 0), nil
		}, "parallel merge sort (parallel merge)"
	case "samplesort":
		return func(ctx context.Context, p *sched.Pool, xs []int64) ([]int64, error) {
			return psort.SampleSortOnCtx(ctx, p, xs, 8*p.Workers())
		}, "sample sort"
	case "bitonic":
		return func(_ context.Context, p *sched.Pool, xs []int64) ([]int64, error) {
			return psort.BitonicSortOn(p, xs)
		}, "bitonic sorting network"
	}
	return nil, ""
}

func verify(got, want []int64) {
	if len(got) != len(want) {
		fmt.Fprintln(os.Stderr, "sortbench: output length wrong")
		os.Exit(1)
	}
	for i := range want {
		if got[i] != want[i] {
			fmt.Fprintf(os.Stderr, "sortbench: output differs from MergeSort at %d\n", i)
			os.Exit(1)
		}
	}
}

// randomInts is the xorshift generator the psort tests use.
func randomInts(n int, seed uint64) []int64 {
	if seed == 0 {
		seed = 1
	}
	xs := make([]int64, n)
	s := seed
	for i := range xs {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		xs[i] = int64(s % 1000003)
	}
	return xs
}
