// Command swatsh runs the CS31 Unix-shell lab interactively: a job-
// control shell over the simulated kernel, with pipes, redirection,
// background jobs, and the pstree builtin for inspecting the process
// hierarchy. Reads command lines from stdin.
package main

import (
	"bufio"
	"fmt"
	"os"

	"repro/internal/shell"
)

func main() {
	sh, err := shell.New()
	if err != nil {
		fmt.Fprintln(os.Stderr, "swatsh:", err)
		os.Exit(1)
	}
	sc := bufio.NewScanner(os.Stdin)
	interactive := false
	if fi, err := os.Stdin.Stat(); err == nil && fi.Mode()&os.ModeCharDevice != 0 {
		interactive = true
	}
	for {
		if interactive {
			fmt.Print("swatsh$ ")
		}
		if !sc.Scan() {
			break
		}
		out, err := sh.Run(sc.Text())
		fmt.Print(out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
		if sh.Exited() {
			break
		}
	}
}
