// Package repro's root benchmark harness regenerates every experiment in
// DESIGN.md's per-experiment index: one benchmark per Table I lab, per
// Table II / Table III topic row, the CS40/CS87 experiments, and the
// ablations. Custom metrics (miss rates, speedups, stall counts, I/Os)
// are attached with b.ReportMetric so `go test -bench=. -benchmem`
// prints the rows EXPERIMENTS.md records.
package repro

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/bits"
	"repro/internal/bomb"
	"repro/internal/classic"
	"repro/internal/clist"
	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/db"
	"repro/internal/dfs"
	"repro/internal/dsm"
	"repro/internal/iomodel"
	"repro/internal/isa"
	"repro/internal/life"
	"repro/internal/logic"
	"repro/internal/mapreduce"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/minicc"
	"repro/internal/mp"
	"repro/internal/omp"
	"repro/internal/pram"
	"repro/internal/proc"
	"repro/internal/psort"
	"repro/internal/pthread"
	"repro/internal/sched"
	"repro/internal/shell"
	"repro/internal/simd"
	"repro/internal/sockets"
)

// --- Table I: the CS31 labs ---

// BenchmarkTableI_DataRepresentation exercises the conversion and
// fixed-width arithmetic core of lab 1.
func BenchmarkTableI_DataRepresentation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		v := uint64(i) * 2654435761 % (1 << 32)
		s := bits.FormatBinary(v, 32)
		back, err := bits.ParseBinary(s)
		if err != nil || back != v {
			b.Fatal("round trip failed")
		}
		x := bits.NewInt(int64(int32(v)), 32)
		y := bits.NewInt(int64(i%1000)-500, 32)
		if _, _, err := bits.Add(x, y); err != nil {
			b.Fatal(err)
		}
		if _, _, err := bits.Mul(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableI_ALU runs the gate-level 32-bit ALU across its ops and
// reports its structural stats.
func BenchmarkTableI_ALU(b *testing.B) {
	alu := logic.NewALU(32)
	depth, err := alu.Circuit.Depth(alu.Zero)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(alu.Circuit.GateCount()), "gates")
	b.ReportMetric(float64(depth), "depth")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op := logic.ALUOp(i % 7)
		if _, _, err := alu.Run(uint64(i)*77, uint64(i)*13+5, op); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableI_BitVector runs the sieve from the bit-vector lab.
func BenchmarkTableI_BitVector(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if got := len(bits.Sieve(10000)); got != 1229 {
			b.Fatalf("π(10000) = %d", got)
		}
	}
}

// BenchmarkTableI_BinaryBomb generates and fully defuses a bomb per
// iteration (assembler + CPU under the hood).
func BenchmarkTableI_BinaryBomb(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bm, err := bomb.New(i % 16)
		if err != nil {
			b.Fatal(err)
		}
		ok, err := bm.Defused(bm.Solutions())
		if err != nil || !ok {
			b.Fatalf("defuse failed: %v", err)
		}
	}
}

// BenchmarkTableI_GameOfLife is the sequential lab's timing experiment.
func BenchmarkTableI_GameOfLife(b *testing.B) {
	g, err := life.NewGrid(256, 256, life.Torus)
	if err != nil {
		b.Fatal(err)
	}
	g.Seed(0.3, 42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Step()
	}
	b.ReportMetric(float64(g.Population()), "population")
}

// BenchmarkTableI_CList runs the append/insert/pop workload of the
// Python-lists-in-C lab.
func BenchmarkTableI_CList(b *testing.B) {
	for i := 0; i < b.N; i++ {
		l := clist.New(clist.CPython{})
		for j := 0; j < 1000; j++ {
			l.Append(int64(j))
		}
		for j := 0; j < 100; j++ {
			if err := l.Insert(j, int64(j)); err != nil {
				b.Fatal(err)
			}
		}
		for l.Len() > 0 {
			if _, err := l.Pop(-1); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkTableI_Shell runs fork/exec/wait pipelines on the simulated
// kernel.
func BenchmarkTableI_Shell(b *testing.B) {
	sh, err := shell.New()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sh.Run(`seq 20 | grep 1 | wc`); err != nil {
			b.Fatal(err)
		}
	}
	if z := sh.Kernel.ZombieCount(); z != 0 {
		b.Fatalf("leaked %d zombies", z)
	}
}

// BenchmarkTableI_ParallelLife is the headline scalability study: one
// parallel generation step per iteration at 4 threads, with the measured
// speedup attached as a metric.
func BenchmarkTableI_ParallelLife(b *testing.B) {
	for _, threads := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("threads=%d", threads), func(b *testing.B) {
			g, err := life.NewGrid(256, 256, life.Torus)
			if err != nil {
				b.Fatal(err)
			}
			g.Seed(0.3, 42)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if threads == 1 {
					g.Step()
				} else if err := g.StepNParallel(1, threads); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Table II: CS31 TCPP topic rows ---

// BenchmarkTableII_MemoryHierarchy replays the locality experiment and
// reports both miss rates.
func BenchmarkTableII_MemoryHierarchy(b *testing.B) {
	var rowMiss, colMiss float64
	for i := 0; i < b.N; i++ {
		row, _ := mem.NewCache(mem.CacheConfig{SizeBytes: 4096, BlockBytes: 64, Assoc: 1})
		col, _ := mem.NewCache(mem.CacheConfig{SizeBytes: 4096, BlockBytes: 64, Assoc: 1})
		mem.ReplayCache(row, mem.RowMajorTrace(64, 0))
		mem.ReplayCache(col, mem.ColMajorTrace(64, 0))
		rowMiss, colMiss = row.Stats().MissRate(), col.Stats().MissRate()
	}
	b.ReportMetric(100*rowMiss, "row-miss-%")
	b.ReportMetric(100*colMiss, "col-miss-%")
}

// BenchmarkTableII_Coherence runs the false-sharing experiment and
// reports the packed/padded invalidation ratio.
func BenchmarkTableII_Coherence(b *testing.B) {
	var r coherence.FalseSharingResult
	for i := 0; i < b.N; i++ {
		r = coherence.FalseSharingExperiment(coherence.MESI, 4, 64, 100)
	}
	b.ReportMetric(float64(r.PackedInvalidations), "packed-inval")
	b.ReportMetric(float64(r.PaddedInvalidations), "padded-inval")
}

// BenchmarkTableII_Schedulers compares the five schedulers on a mixed
// workload.
func BenchmarkTableII_Schedulers(b *testing.B) {
	jobs := make([]proc.Job, 30)
	for i := range jobs {
		jobs[i] = proc.Job{
			Name:     fmt.Sprintf("j%d", i),
			Arrival:  int64(i * 3),
			Burst:    int64(1 + (i*7)%20),
			Priority: i % 5,
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := proc.CompareSchedulers(jobs, 4, []int64{2, 4, 8}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableII_SyncProblems runs the producer/consumer conservation
// workload on the pthread primitives.
func BenchmarkTableII_SyncProblems(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := classic.RunProducersConsumers(4, 4, 8, 100); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableII_Pipeline measures CPI with and without forwarding on
// the dependent-chain microbenchmark.
func BenchmarkTableII_Pipeline(b *testing.B) {
	src := "main:\n  movl $0, %eax\n"
	for i := 0; i < 200; i++ {
		src += "  addl $1, %eax\n"
	}
	src += "  halt\n"
	trace, _, err := isa.TraceProgram(src, nil, 100000)
	if err != nil {
		b.Fatal(err)
	}
	var cpiFwd, cpiNoFwd float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fwd := isa.SimulatePipeline(trace, isa.PipelineConfig{Forwarding: true, Branch: isa.PredictNotTaken})
		nofwd := isa.SimulatePipeline(trace, isa.PipelineConfig{Forwarding: false, Branch: isa.PredictNotTaken})
		cpiFwd, cpiNoFwd = fwd.CPI(), nofwd.CPI()
	}
	b.ReportMetric(cpiFwd, "cpi-fwd")
	b.ReportMetric(cpiNoFwd, "cpi-nofwd")
}

// BenchmarkTableII_MessagePassing is the ping-pong latency microbenchmark
// of the distributed-basics row.
func BenchmarkTableII_MessagePassing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		err := mp.Run(2, func(c *mp.Comm) error {
			const rounds = 100
			other := 1 - c.Rank()
			for r := 0; r < rounds; r++ {
				if c.Rank() == 0 {
					if err := c.Send(other, 0, []int64{int64(r)}); err != nil {
						return err
					}
					if _, err := c.Recv(other, 0); err != nil {
						return err
					}
				} else {
					m, err := c.Recv(other, 0)
					if err != nil {
						return err
					}
					if err := c.Send(other, 0, m.Data); err != nil {
						return err
					}
				}
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table III: CS41 rows ---

// BenchmarkTableIII_PRAM runs the EREW scan and the CRCW max, reporting
// their step counts (the parallel-time separation).
func BenchmarkTableIII_PRAM(b *testing.B) {
	xs := make([]int64, 4096)
	for i := range xs {
		xs[i] = int64(i % 97)
	}
	small := xs[:64]
	var scanSteps, maxSteps int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, m, err := pram.ExclusiveScan(pram.EREW, xs)
		if err != nil {
			b.Fatal(err)
		}
		scanSteps = m.Steps()
		_, m2, err := pram.Max(pram.CRCWCommon, small)
		if err != nil {
			b.Fatal(err)
		}
		maxSteps = m2.Steps()
	}
	b.ReportMetric(float64(scanSteps), "scan-steps")
	b.ReportMetric(float64(maxSteps), "crcw-max-steps")
}

// BenchmarkTableIII_Paradigms covers divide & conquer (merge sort),
// blocking (tiled matmul), and out-of-core (external sort I/Os).
func BenchmarkTableIII_Paradigms(b *testing.B) {
	b.Run("scan", func(b *testing.B) {
		xs := make([]int64, 100000)
		for i := range xs {
			xs[i] = int64(i % 13)
		}
		for i := 0; i < b.N; i++ {
			if _, err := psort.ParallelScan(xs, 4); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("blocked-matmul", func(b *testing.B) {
		a, m := psort.NewMatrix(96), psort.NewMatrix(96)
		a.FillSequential()
		m.FillSequential()
		for i := 0; i < b.N; i++ {
			if _, err := psort.MatMulBlocked(a, m, 32); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("external-sort", func(b *testing.B) {
		var ios int64
		for i := 0; i < b.N; i++ {
			dev, _ := iomodel.NewDevice(16)
			xs := make([]int64, 20000)
			for j := range xs {
				xs[j] = int64((j * 2654435761) % 100000)
			}
			in := dev.NewFileFrom(xs)
			dev.ResetCounters()
			_, st, err := iomodel.ExternalMergeSort(in, 512, 0)
			if err != nil {
				b.Fatal(err)
			}
			ios = st.IOs
		}
		b.ReportMetric(float64(ios), "block-IOs")
	})
}

// BenchmarkTableIII_MergeSortModels runs the unifying example: one input
// measured in all three models, reporting comparisons, span, and I/Os.
func BenchmarkTableIII_MergeSortModels(b *testing.B) {
	const n = 1 << 15
	xs := make([]int64, n)
	for i := range xs {
		xs[i] = int64((i * 40503) % 65536)
	}
	var comps, span, ios int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, c := psort.MergeSort(xs)
		comps = c
		_, s, err := psort.MergeSortDAG(1024, true)
		if err != nil {
			b.Fatal(err)
		}
		span = s
		dev, _ := iomodel.NewDevice(64)
		in := dev.NewFileFrom(xs)
		dev.ResetCounters()
		_, st, err := iomodel.ExternalMergeSort(in, 4096, 0)
		if err != nil {
			b.Fatal(err)
		}
		ios = st.IOs
	}
	b.ReportMetric(float64(comps), "ram-comparisons")
	b.ReportMetric(float64(span), "parallel-span(n=1024)")
	b.ReportMetric(float64(ios), "io-transfers")
}

// --- CS40 / CS87 experiments ---

// BenchmarkCS40_Reduction compares the reduction addressing schemes.
func BenchmarkCS40_Reduction(b *testing.B) {
	xs := make([]float64, 1<<13)
	for i := range xs {
		xs[i] = float64(i % 7)
	}
	for _, scheme := range []simd.ReductionScheme{simd.Interleaved, simd.Sequential} {
		b.Run(scheme.String(), func(b *testing.B) {
			var st simd.Stats
			for i := 0; i < b.N; i++ {
				_, s, err := simd.Reduce(xs, 128, scheme)
				if err != nil {
					b.Fatal(err)
				}
				st = s
			}
			b.ReportMetric(100*st.DivergenceRate(), "divergence-%")
		})
	}
}

// BenchmarkCS87_Allreduce scales the collective across world sizes.
func BenchmarkCS87_Allreduce(b *testing.B) {
	for _, p := range []int{2, 4, 8, 16} {
		b.Run(fmt.Sprintf("ranks=%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				err := mp.Run(p, func(c *mp.Comm) error {
					_, err := c.Allreduce([]int64{int64(c.Rank())}, func(a, x int64) int64 { return a + x })
					return err
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCS87_MapReduce runs word count with a combiner.
func BenchmarkCS87_MapReduce(b *testing.B) {
	docs := make([]string, 16)
	for i := range docs {
		docs[i] = "parallel distributed computing threads barriers messages " +
			"speedup efficiency amdahl gustafson cache coherence"
	}
	for i := 0; i < b.N; i++ {
		_, _, err := mapreduce.Run(
			mapreduce.Config{Workers: 4, Reducers: 4, Combiner: mapreduce.WordCountReduce},
			docs, mapreduce.WordCountMap, mapreduce.WordCountReduce)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCS87_KVServerSharding drives the single-lock and sharded KV
// servers end-to-end with 8 concurrent clients over real loopback
// sockets. On few-core hosts the wire cost dominates and flattens the
// gap; BenchmarkShardedStoreVsSingleLock in internal/sockets isolates
// the store itself, where striping beats the global lock even on one
// core.
func BenchmarkCS87_KVServerSharding(b *testing.B) {
	for _, tc := range []struct {
		name   string
		shards int
	}{{"single-lock", 1}, {"sharded-16", 16}} {
		b.Run(tc.name, func(b *testing.B) {
			s, err := sockets.NewServerConfig("127.0.0.1:0", sockets.ServerConfig{Shards: tc.shards})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			const clients = 8
			conns := make([]*sockets.Client, clients)
			for i := range conns {
				c, err := sockets.Dial(s.Addr())
				if err != nil {
					b.Fatal(err)
				}
				defer c.Close()
				conns[i] = c
			}
			per := b.N/clients + 1
			b.ResetTimer()
			var wg sync.WaitGroup
			for i, c := range conns {
				wg.Add(1)
				go func(i int, c *sockets.Client) {
					defer wg.Done()
					for j := 0; j < per; j++ {
						key := fmt.Sprintf("k%d-%d", i, j%64)
						if j%2 == 0 {
							if err := c.Set(key, "v"); err != nil {
								b.Error(err)
								return
							}
						} else if _, _, err := c.Get(key); err != nil {
							b.Error(err)
							return
						}
					}
				}(i, c)
			}
			wg.Wait()
			b.StopTimer()
			b.ReportMetric(float64(clients*per)/b.Elapsed().Seconds(), "ops/sec")
		})
	}
}

// BenchmarkKVProto is the E14 wire-protocol study: the same SET/GET
// workload through a fixed 4-connection pool on the text protocol (one
// request per connection turn, so 64 workers queue behind 4 conns) and
// the binary protocol (every worker's request pipelined onto one shared
// connection, responses matched by correlation ID). The in-flight axis
// is the point: at 1 the protocols differ only in framing cost; at 64
// pipelining should dominate — the acceptance bar is >=2x text
// throughput at 64 in-flight ops.
func BenchmarkKVProto(b *testing.B) {
	for _, proto := range []sockets.Proto{sockets.ProtoText, sockets.ProtoBinary} {
		for _, inflight := range []int{1, 8, 64} {
			b.Run(fmt.Sprintf("%s/inflight=%d", proto, inflight), func(b *testing.B) {
				s, err := sockets.NewServerConfig("127.0.0.1:0", sockets.ServerConfig{Shards: 16})
				if err != nil {
					b.Fatal(err)
				}
				defer s.Close()
				p, err := sockets.NewPool(s.Addr(), sockets.PoolConfig{Size: 4, Proto: proto})
				if err != nil {
					b.Fatal(err)
				}
				defer p.Close()
				per := b.N/inflight + 1
				b.ResetTimer()
				var wg sync.WaitGroup
				for w := 0; w < inflight; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						for j := 0; j < per; j++ {
							key := fmt.Sprintf("k%d-%d", w, j%64)
							if j%2 == 0 {
								if err := p.Set(key, "value-payload"); err != nil {
									b.Error(err)
									return
								}
							} else if _, _, err := p.Get(key); err != nil {
								b.Error(err)
								return
							}
						}
					}(w)
				}
				wg.Wait()
				b.StopTimer()
				b.ReportMetric(float64(inflight*per)/b.Elapsed().Seconds(), "ops/sec")
			})
		}
	}
}

// BenchmarkCS87_ReplicatedKV runs a put/get workload with one failover.
func BenchmarkCS87_ReplicatedKV(b *testing.B) {
	scenario := dfs.Scenario{
		"put a 1", "put b 2", "get a 1", "crash", "get b 2", "put c 3", "get c 3",
	}
	for i := 0; i < b.N; i++ {
		if _, err := (dfs.Cluster{Replicas: 3, Heartbeat: 50_000_000}).Run(scenario); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E6: the curriculum tables themselves ---

// BenchmarkCurriculumTables regenerates Tables I-III and validates the
// prerequisite DAG.
func BenchmarkCurriculumTables(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cu, err := core.Swarthmore()
		if err != nil {
			b.Fatal(err)
		}
		for _, f := range []func() (string, error){cu.TableI, cu.TableII, cu.TableIII} {
			if _, err := f(); err != nil {
				b.Fatal(err)
			}
		}
		if _, ok := cu.ParallelEverySemester(core.Semester{Fall: false, Year: 2014}, 8); !ok {
			b.Fatal("schedule check failed")
		}
	}
}

// --- Ablations (DESIGN.md section 4) ---

// BenchmarkAblation_ParallelMerge compares serial-merge and
// parallel-merge merge sort spans via the DAG algebra plus wall clock.
func BenchmarkAblation_ParallelMerge(b *testing.B) {
	xs := make([]int64, 1<<16)
	for i := range xs {
		xs[i] = int64((i * 31) % 65536)
	}
	b.Run("serial-merge", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			psort.ParallelMergeSort(xs, 4)
		}
		_, span, _ := psort.MergeSortDAG(1<<16, false)
		b.ReportMetric(float64(span), "span")
	})
	b.Run("parallel-merge", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			psort.ParallelMergeSortPM(xs, 4)
		}
		_, span, _ := psort.MergeSortDAG(1<<16, true)
		b.ReportMetric(float64(span), "span")
	})
}

// BenchmarkSortbench is the scheduler ablation behind cmd/sortbench:
// the same merge sort through the old goroutine-per-fork runtime and
// through an 8-worker work-stealing pool, identical fork depth. The
// pool variant also reports its steal/task counters — the whole point
// of the shared runtime is that load balance becomes measurable.
func BenchmarkSortbench(b *testing.B) {
	xs := make([]int64, 1<<17)
	for i := range xs {
		xs[i] = int64((i * 2654435761) % 1000003)
	}
	const depth = 4
	b.Run("spawn-per-fork", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			psort.ParallelMergeSortSpawn(xs, depth)
		}
	})
	b.Run("sched-8workers", func(b *testing.B) {
		pool := sched.New(8)
		defer pool.Close()
		before := pool.Stats()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			psort.ParallelMergeSortOn(pool, xs, depth)
		}
		b.StopTimer()
		st := pool.Stats().Sub(before)
		b.ReportMetric(float64(st.Tasks)/float64(b.N), "tasks/op")
		b.ReportMetric(float64(st.Steals)/float64(b.N), "steals/op")
		b.ReportMetric(st.StealRate(), "steal-rate")
	})
}

// BenchmarkDAGExecute runs Brent's theorem as an experiment: a depth-8
// fork-join DAG executed on 1 and 4 workers, reporting achieved vs
// ideal speedup from the same run.
func BenchmarkDAGExecute(b *testing.B) {
	g := dag.New()
	var build func(d int) dag.Fragment
	build = func(d int) dag.Fragment {
		if d == 0 {
			return dag.Leaf(g, 1, "leaf")
		}
		return dag.Seq(dag.Par(g, build(d-1), build(d-1)), dag.Leaf(g, int64(d), "join"))
	}
	build(8)
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var rep dag.ExecReport
			for i := 0; i < b.N; i++ {
				r, err := dag.Execute(g, workers, time.Microsecond)
				if err != nil {
					b.Fatal(err)
				}
				rep = r
			}
			b.ReportMetric(rep.AchievedSpeedup, "achieved-speedup")
			b.ReportMetric(rep.IdealSpeedup, "ideal-speedup")
			b.ReportMetric(float64(rep.Sched.Steals), "steals")
		})
	}
}

// BenchmarkAblation_ReductionAddressing is the CS40 divergence ablation
// at bench granularity.
func BenchmarkAblation_ReductionAddressing(b *testing.B) {
	xs := make([]float64, 4096)
	for i := range xs {
		xs[i] = 1
	}
	var inter, seq int64
	for i := 0; i < b.N; i++ {
		_, si, err := simd.Reduce(xs, 256, simd.Interleaved)
		if err != nil {
			b.Fatal(err)
		}
		_, ss, err := simd.Reduce(xs, 256, simd.Sequential)
		if err != nil {
			b.Fatal(err)
		}
		inter, seq = si.DivergentBranches, ss.DivergentBranches
	}
	b.ReportMetric(float64(inter), "interleaved-divergent")
	b.ReportMetric(float64(seq), "sequential-divergent")
}

// BenchmarkAblation_Bcast compares linear and binomial-tree broadcast by
// root send count.
func BenchmarkAblation_Bcast(b *testing.B) {
	const p = 16
	var tree, linear int64
	for i := 0; i < b.N; i++ {
		mp.Run(p, func(c *mp.Comm) error { //nolint:errcheck
			if _, err := c.Bcast(0, []int64{1}); err != nil {
				return err
			}
			if c.Rank() == 0 {
				tree = c.Stats().Sent
			}
			return nil
		})
		mp.Run(p, func(c *mp.Comm) error { //nolint:errcheck
			if _, err := c.BcastLinear(0, []int64{1}); err != nil {
				return err
			}
			if c.Rank() == 0 {
				linear = c.Stats().Sent
			}
			return nil
		})
	}
	b.ReportMetric(float64(tree), "tree-root-sends")
	b.ReportMetric(float64(linear), "linear-root-sends")
}

// BenchmarkAblation_WritePolicy compares write-through and write-back
// downstream traffic on a write-heavy loop.
func BenchmarkAblation_WritePolicy(b *testing.B) {
	trace := make([]mem.Access, 0, 20000)
	for i := 0; i < 10000; i++ {
		trace = append(trace, mem.Access{Addr: uint64(i%64) * 8, Write: true})
		trace = append(trace, mem.Access{Addr: uint64(i%64) * 8, Write: false})
	}
	var wbTraffic, wtTraffic int64
	for i := 0; i < b.N; i++ {
		wb, _ := mem.NewCache(mem.CacheConfig{SizeBytes: 1024, BlockBytes: 64, Assoc: 2, Write: mem.WriteBack})
		wt, _ := mem.NewCache(mem.CacheConfig{SizeBytes: 1024, BlockBytes: 64, Assoc: 2, Write: mem.WriteThrough})
		mem.ReplayCache(wb, trace)
		mem.ReplayCache(wt, trace)
		wbTraffic = wb.Stats().Writebacks
		wtTraffic = wt.Stats().Writedowns
	}
	b.ReportMetric(float64(wbTraffic), "writeback-traffic")
	b.ReportMetric(float64(wtTraffic), "writethrough-traffic")
}

// BenchmarkAblation_Multiway compares 2-way and multiway external merge.
func BenchmarkAblation_Multiway(b *testing.B) {
	xs := make([]int64, 30000)
	for i := range xs {
		xs[i] = int64((i * 48271) % 100000)
	}
	for _, tc := range []struct {
		name   string
		fanout int
	}{{"two-way", 2}, {"multiway", 0}} {
		b.Run(tc.name, func(b *testing.B) {
			var ios int64
			var passes int
			for i := 0; i < b.N; i++ {
				dev, _ := iomodel.NewDevice(8)
				in := dev.NewFileFrom(xs)
				dev.ResetCounters()
				_, st, err := iomodel.ExternalMergeSort(in, 256, tc.fanout)
				if err != nil {
					b.Fatal(err)
				}
				ios, passes = st.IOs, st.MergePasses
			}
			b.ReportMetric(float64(ios), "block-IOs")
			b.ReportMetric(float64(passes), "merge-passes")
		})
	}
}

// BenchmarkAblation_LifePartitioning compares the lab's row-block
// decomposition against the strided (interleaved-row) assignment, which
// shreds spatial locality and invites false sharing at every band
// boundary on real hardware.
func BenchmarkAblation_LifePartitioning(b *testing.B) {
	for _, tc := range []struct {
		name string
		step func(g *life.Grid) error
	}{
		{"row-block", func(g *life.Grid) error { return g.StepNParallel(1, 4) }},
		{"strided", func(g *life.Grid) error { return g.StepNParallelStrided(1, 4) }},
	} {
		b.Run(tc.name, func(b *testing.B) {
			g, err := life.NewGrid(128, 128, life.Torus)
			if err != nil {
				b.Fatal(err)
			}
			g.Seed(0.3, 9)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := tc.step(g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLockPrimitives compares the educational mutex against the
// spinlock under contention (the lecture's "why not always spin").
func BenchmarkLockPrimitives(b *testing.B) {
	b.Run("mutex", func(b *testing.B) {
		mu := pthread.NewMutex(pthread.MutexNormal)
		counter := 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ths := pthread.Spawn(4, func(pthread.ID, int) {
				for j := 0; j < 200; j++ {
					mu.Lock()
					counter++
					mu.Unlock()
				}
			})
			if err := pthread.JoinAll(ths); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("spinlock", func(b *testing.B) {
		var sl pthread.SpinLock
		counter := 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ths := pthread.Spawn(4, func(pthread.ID, int) {
				for j := 0; j < 200; j++ {
					sl.Lock()
					counter++
					sl.Unlock()
				}
			})
			if err := pthread.JoinAll(ths); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAmdahlTable tabulates the law itself (cheap, but keeps the
// cross-cutting row represented in bench output).
func BenchmarkAmdahlTable(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		for _, f := range []float64{0.01, 0.05, 0.1, 0.25} {
			for _, p := range []int{2, 4, 8, 16, 64} {
				last = metrics.AmdahlSpeedup(f, p)
			}
		}
	}
	b.ReportMetric(last, "speedup(f=0.25,p=64)")
}

// BenchmarkDAGScheduling times greedy list scheduling with the Brent
// verification on a fork-join DAG.
func BenchmarkDAGScheduling(b *testing.B) {
	g := dag.New()
	var build func(d int) dag.Fragment
	build = func(d int) dag.Fragment {
		if d == 0 {
			return dag.Leaf(g, 1, "leaf")
		}
		return dag.Seq(dag.Par(g, build(d-1), build(d-1)), dag.Leaf(g, int64(d), "join"))
	}
	build(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := g.GreedySchedule(4)
		if err != nil {
			b.Fatal(err)
		}
		bound, _ := g.BrentUpperBound(4)
		if float64(s.Makespan) > bound {
			b.Fatal("Brent violated")
		}
	}
}

// BenchmarkCS75_Compiler compiles and runs the fib program through the
// whole MiniC -> SWAT32 -> CPU pipeline, with and without optimization.
func BenchmarkCS75_Compiler(b *testing.B) {
	src := `
int fib(int n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
int main() {
    print(fib(12) + 0 * 99);
    return 1 * 0;
}`
	for _, tc := range []struct {
		name     string
		optimize bool
	}{{"plain", false}, {"optimized", true}} {
		b.Run(tc.name, func(b *testing.B) {
			var steps int64
			for i := 0; i < b.N; i++ {
				out, _, st, err := minicc.Run(src, tc.optimize, 10_000_000)
				if err != nil || out != "144\n" {
					b.Fatalf("out=%q err=%v", out, err)
				}
				steps = st
			}
			b.ReportMetric(float64(steps), "dynamic-instructions")
		})
	}
}

// BenchmarkCS87_OmpSchedules compares worksharing schedules on a skewed
// loop: per-thread work imbalance is the reported metric.
func BenchmarkCS87_OmpSchedules(b *testing.B) {
	work := func(i int) int64 {
		acc := int64(0)
		reps := 10
		if i < 64 {
			reps = 500 // skewed head
		}
		for k := 0; k < reps; k++ {
			acc += int64(i * k)
		}
		return acc
	}
	for _, sched := range []omp.Schedule{omp.Static, omp.Dynamic, omp.Guided} {
		b.Run(sched.String(), func(b *testing.B) {
			var census omp.Census
			for i := 0; i < b.N; i++ {
				_, c, err := omp.ForReduce(0, 1024, omp.Config{Threads: 4, Schedule: sched, Chunk: 8},
					0, work, func(a, x int64) int64 { return a + x })
				if err != nil {
					b.Fatal(err)
				}
				census = c
			}
			b.ReportMetric(census.Imbalance(), "iter-imbalance")
		})
	}
}

// BenchmarkCS87_DSM measures the DSM protocol on the producer/consumer
// flag pattern.
func BenchmarkCS87_DSM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := dsm.Run(2, 2, 4, func(n *dsm.Node) error {
			if n.Rank() == 1 {
				if err := n.Write(0, 0, 99); err != nil {
					return err
				}
				return n.Write(1, 0, 1)
			}
			for {
				v, err := n.Read(1, 0)
				if err != nil {
					return err
				}
				if v == 1 {
					break
				}
			}
			v, err := n.Read(0, 0)
			if err != nil {
				return err
			}
			if v != 99 {
				b.Error("DSM lost the write")
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCS44_Joins compares the join algorithms the Databases course
// plans to cover, on a 20k x 20k equi-join.
func BenchmarkCS44_Joins(b *testing.B) {
	mk := func(seed uint64, tag string) db.Relation {
		s := seed
		out := make(db.Relation, 20000)
		for i := range out {
			s ^= s << 13
			s ^= s >> 7
			s ^= s << 17
			out[i] = db.Tuple{Key: int64(s % 30000), Payload: tag}
		}
		return out
	}
	l, r := mk(1, "l"), mk(2, "r")
	b.Run("hash", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			db.HashJoin(l, r)
		}
	})
	b.Run("sort-merge", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			db.SortMergeJoin(l, r)
		}
	})
	b.Run("grace-parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := db.GraceHashJoin(l, r, 16, 4); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCS44_TwoPhaseCommit runs a 3-participant transaction batch.
func BenchmarkCS44_TwoPhaseCommit(b *testing.B) {
	txns := make([]db.Txn, 10)
	for i := range txns {
		txns[i] = db.Txn{Writes: map[int]map[string]string{
			1: {fmt.Sprintf("k%d", i): "v"},
			2: {fmt.Sprintf("k%d", i): "v"},
			3: {fmt.Sprintf("k%d", i): "v"},
		}}
	}
	for i := 0; i < b.N; i++ {
		res, err := db.RunTransactions(db.TPCConfig{Participants: 3}, txns)
		if err != nil {
			b.Fatal(err)
		}
		for _, ok := range res.Committed {
			if !ok {
				b.Fatal("unexpected abort")
			}
		}
	}
}

// BenchmarkCS44_DHT measures put/get throughput plus the key-movement
// cost of a node join.
func BenchmarkCS44_DHT(b *testing.B) {
	var moved int64
	for i := 0; i < b.N; i++ {
		d, err := db.NewDHT(64)
		if err != nil {
			b.Fatal(err)
		}
		d.AddNode("a")
		d.AddNode("b")
		d.AddNode("c")
		for k := 0; k < 2000; k++ {
			d.Put(fmt.Sprintf("key-%d", k), "v")
		}
		before := d.Moves()
		d.AddNode("d")
		moved = d.Moves() - before
	}
	b.ReportMetric(float64(moved), "keys-moved-on-join")
}

// BenchmarkAblation_SharedMemTiling compares the naive and shared-memory
// tiled SIMT matrix multiplies by global-memory traffic.
func BenchmarkAblation_SharedMemTiling(b *testing.B) {
	const n, tile = 32, 8
	a := make([]float64, n*n)
	m := make([]float64, n*n)
	for i := range a {
		a[i] = float64(i % 9)
		m[i] = float64(i % 7)
	}
	for _, tc := range []struct {
		name string
		run  func() (simd.Stats, error)
	}{
		{"naive", func() (simd.Stats, error) { _, st, err := simd.MatMulNaive(a, m, n, tile); return st, err }},
		{"tiled", func() (simd.Stats, error) { _, st, err := simd.MatMulTiled(a, m, n, tile); return st, err }},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var st simd.Stats
			for i := 0; i < b.N; i++ {
				s, err := tc.run()
				if err != nil {
					b.Fatal(err)
				}
				st = s
			}
			b.ReportMetric(float64(st.GlobalAccesses), "global-accesses")
			b.ReportMetric(float64(st.GlobalTransactions), "transactions")
		})
	}
}
