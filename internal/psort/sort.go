// Package psort implements the CS41 Table III algorithm suite: merge sort
// in its sequential, fork-join parallel, and parallel-merge variants (the
// course's unifying example across models of computation), quicksort,
// sample sort, a bitonic sorting network, parallel selection, and the
// reduce/scan primitives — with comparison counting for RAM-model
// analysis and DAG builders that compute each algorithm's work and span.
package psort

import (
	"context"
	"errors"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/dag"
	"repro/internal/sched"
)

// serialCutoff is the subproblem size below which parallel variants run
// sequentially — the grain-size knob every fork-join lecture discusses.
const serialCutoff = 1 << 10

// MergeSort sorts a copy of xs with top-down merge sort and returns it
// along with the number of comparisons (the RAM-model cost measure).
func MergeSort(xs []int64) ([]int64, int64) {
	out := append([]int64(nil), xs...)
	buf := make([]int64, len(xs))
	var comparisons int64
	msort(out, buf, &comparisons)
	return out, comparisons
}

func msort(a, buf []int64, comps *int64) {
	if len(a) <= 1 {
		return
	}
	mid := len(a) / 2
	msort(a[:mid], buf[:mid], comps)
	msort(a[mid:], buf[mid:], comps)
	mergeInto(buf, a[:mid], a[mid:], comps)
	copy(a, buf[:len(a)])
}

// mergeInto merges sorted runs x and y into dst, counting comparisons.
func mergeInto(dst, x, y []int64, comps *int64) {
	i, j, k := 0, 0, 0
	for i < len(x) && j < len(y) {
		if comps != nil {
			*comps++
		}
		if x[i] <= y[j] {
			dst[k] = x[i]
			i++
		} else {
			dst[k] = y[j]
			j++
		}
		k++
	}
	for i < len(x) {
		dst[k] = x[i]
		i++
		k++
	}
	for j < len(y) {
		dst[k] = y[j]
		j++
		k++
	}
}

// defaultForkDepth sizes the fork tree for a pool: enough leaves for
// ~8 steals of headroom per worker, floored at the old default of 4.
func defaultForkDepth(p *sched.Pool) int {
	depth := 0
	for 1<<depth < 8*p.Workers() {
		depth++
	}
	if depth < 4 {
		depth = 4
	}
	return depth
}

// ParallelMergeSort sorts a copy of xs with fork-join parallel merge
// sort on the shared work-stealing pool (serial merge: span Θ(n)).
// maxDepth bounds the fork tree; 0 picks a sensible default.
func ParallelMergeSort(xs []int64, maxDepth int) []int64 {
	return ParallelMergeSortOn(sched.Default(), xs, maxDepth)
}

// ParallelMergeSortOn is ParallelMergeSort on an explicit pool — the
// worker count is the pool's, so scalability studies sweep it directly.
// Panics on a closed pool rather than silently returning unsorted data.
func ParallelMergeSortOn(pool *sched.Pool, xs []int64, maxDepth int) []int64 {
	if maxDepth <= 0 {
		maxDepth = defaultForkDepth(pool)
	}
	out := append([]int64(nil), xs...)
	buf := make([]int64, len(xs))
	if err := pool.Do(func(c *sched.Task) {
		pmsort(c, out, buf, maxDepth)
	}); err != nil {
		panic(err)
	}
	return out
}

func pmsort(c *sched.Task, a, buf []int64, depth int) {
	if len(a) <= serialCutoff || depth == 0 {
		msort(a, buf, nil)
		return
	}
	mid := len(a) / 2
	h := c.Fork(func(c2 *sched.Task) {
		pmsort(c2, a[:mid], buf[:mid], depth-1)
	})
	pmsort(c, a[mid:], buf[mid:], depth-1)
	c.Join(h)
	mergeInto(buf, a[:mid], a[mid:], nil)
	copy(a, buf[:len(a)])
}

// ParallelMergeSortSpawn is the pre-scheduler baseline kept for the
// runtime ablation: one goroutine per fork, unbounded. cmd/sortbench
// and BenchmarkSortbench race it against the pool-backed variant.
func ParallelMergeSortSpawn(xs []int64, maxDepth int) []int64 {
	if maxDepth <= 0 {
		maxDepth = 4
	}
	out := append([]int64(nil), xs...)
	buf := make([]int64, len(xs))
	pmsortSpawn(out, buf, maxDepth)
	return out
}

func pmsortSpawn(a, buf []int64, depth int) {
	if len(a) <= serialCutoff || depth == 0 {
		msort(a, buf, nil)
		return
	}
	mid := len(a) / 2
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		pmsortSpawn(a[:mid], buf[:mid], depth-1)
	}()
	pmsortSpawn(a[mid:], buf[mid:], depth-1)
	wg.Wait()
	mergeInto(buf, a[:mid], a[mid:], nil)
	copy(a, buf[:len(a)])
}

// ParallelMergeSortPM is merge sort with a *parallel merge* (recursive
// binary-search splitting), the variant whose span drops from Θ(n) to
// Θ(log²n) — the ablation CS41 analyzes with work/span algebra. Runs on
// the shared work-stealing pool.
func ParallelMergeSortPM(xs []int64, maxDepth int) []int64 {
	return ParallelMergeSortPMOn(sched.Default(), xs, maxDepth)
}

// ParallelMergeSortPMOn is ParallelMergeSortPM on an explicit pool.
// Panics on a closed pool rather than silently returning unsorted data.
func ParallelMergeSortPMOn(pool *sched.Pool, xs []int64, maxDepth int) []int64 {
	if maxDepth <= 0 {
		maxDepth = defaultForkDepth(pool)
	}
	out := append([]int64(nil), xs...)
	buf := make([]int64, len(xs))
	if err := pool.Do(func(c *sched.Task) {
		pmsortPM(c, out, buf, maxDepth)
	}); err != nil {
		panic(err)
	}
	return out
}

func pmsortPM(c *sched.Task, a, buf []int64, depth int) {
	if len(a) <= serialCutoff || depth == 0 {
		msort(a, buf, nil)
		return
	}
	mid := len(a) / 2
	h := c.Fork(func(c2 *sched.Task) {
		pmsortPM(c2, a[:mid], buf[:mid], depth-1)
	})
	pmsortPM(c, a[mid:], buf[mid:], depth-1)
	c.Join(h)
	parallelMerge(c, a[:mid], a[mid:], buf[:len(a)], depth-1)
	copy(a, buf[:len(a)])
}

// parallelMerge merges sorted x and y into dst by splitting on the median
// of the larger run and binary-searching its rank in the other.
func parallelMerge(c *sched.Task, x, y, dst []int64, depth int) {
	if len(x) < len(y) {
		x, y = y, x
	}
	if len(x) == 0 {
		return
	}
	if len(x)+len(y) <= serialCutoff || depth <= 0 {
		mergeInto(dst, x, y, nil)
		return
	}
	mx := len(x) / 2
	pivot := x[mx]
	my := sort.Search(len(y), func(i int) bool { return y[i] > pivot })
	dst[mx+my] = pivot
	h := c.Fork(func(c2 *sched.Task) {
		parallelMerge(c2, x[:mx], y[:my], dst[:mx+my], depth-1)
	})
	parallelMerge(c, x[mx+1:], y[my:], dst[mx+my+1:], depth-1)
	c.Join(h)
}

// QuickSort sorts a copy of xs with median-of-three quicksort, counting
// comparisons.
func QuickSort(xs []int64) ([]int64, int64) {
	out := append([]int64(nil), xs...)
	var comps int64
	qsort(out, &comps)
	return out, comps
}

func qsort(a []int64, comps *int64) {
	for len(a) > 12 {
		// median of three
		mid := len(a) / 2
		hi := len(a) - 1
		if a[mid] < a[0] {
			a[mid], a[0] = a[0], a[mid]
		}
		if a[hi] < a[0] {
			a[hi], a[0] = a[0], a[hi]
		}
		if a[hi] < a[mid] {
			a[hi], a[mid] = a[mid], a[hi]
		}
		pivot := a[mid]
		i, j := 0, hi
		for {
			for {
				*comps++
				if a[i] >= pivot {
					break
				}
				i++
			}
			for {
				*comps++
				if a[j] <= pivot {
					break
				}
				j--
			}
			if i >= j {
				break
			}
			a[i], a[j] = a[j], a[i]
			i++
			j--
		}
		// recurse into the smaller side, loop on the larger
		if j+1 < len(a)-j-1 {
			qsort(a[:j+1], comps)
			a = a[j+1:]
		} else {
			qsort(a[j+1:], comps)
			a = a[:j+1]
		}
	}
	// insertion sort tail
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 {
			*comps++
			if a[j] <= v {
				break
			}
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

// SampleSort sorts a copy of xs with parallel sample sort: sample
// splitters, partition into buckets, sort buckets concurrently on the
// shared work-stealing pool — the bucket-parallel pattern CS87's short
// labs use. Splitters are deduplicated and every distinct splitter
// value gets its own already-sorted "equal" bucket, so duplicate-heavy
// inputs can't collapse the partition into one giant bucket.
func SampleSort(xs []int64, p int) ([]int64, error) {
	return SampleSortOn(sched.Default(), xs, p)
}

// SampleSortOn is SampleSort on an explicit pool. It wraps
// SampleSortOnCtx with context.Background().
func SampleSortOn(pool *sched.Pool, xs []int64, p int) ([]int64, error) {
	return SampleSortOnCtx(context.Background(), pool, xs, p)
}

// SampleSortOnCtx is SampleSortOn under a caller lifetime: the bucket
// fan-out rides ParallelForCtx, so cancellation stops seeding bucket
// sorts (buckets already being sorted finish) and the wrapped ctx.Err()
// comes back instead of a partially sorted slice.
func SampleSortOnCtx(ctx context.Context, pool *sched.Pool, xs []int64, p int) ([]int64, error) {
	if p <= 0 {
		return nil, errors.New("psort: bucket count must be positive")
	}
	n := len(xs)
	if n == 0 {
		return nil, nil
	}
	if p == 1 || n < 4*p {
		out, _ := MergeSort(xs)
		return out, nil
	}
	splitters := sampleSplitters(xs, p)
	buckets := partitionBySplitters(xs, splitters)
	// Sort the range buckets (odd indices are equal-value buckets and
	// need no work); empty buckets are folded out of the task list.
	var work []int
	for i := 0; i < len(buckets); i += 2 {
		if len(buckets[i]) > 1 {
			work = append(work, i)
		}
	}
	if err := pool.ParallelForCtx(ctx, len(work), 1, func(lo, hi int) {
		for w := lo; w < hi; w++ {
			b := buckets[work[w]]
			sort.Slice(b, func(x, y int) bool { return b[x] < b[y] })
		}
	}); err != nil {
		return nil, err
	}
	out := make([]int64, 0, n)
	for _, b := range buckets {
		out = append(out, b...)
	}
	return out, nil
}

// sampleSplitters oversamples xs and returns strictly increasing
// (deduplicated) splitters — at most p-1 of them.
func sampleSplitters(xs []int64, p int) []int64 {
	n := len(xs)
	const oversample = 8
	sample := make([]int64, 0, p*oversample)
	step := n / (p * oversample)
	if step == 0 {
		step = 1
	}
	for i := 0; i < n && len(sample) < p*oversample; i += step {
		sample = append(sample, xs[i])
	}
	sort.Slice(sample, func(i, j int) bool { return sample[i] < sample[j] })
	splitters := make([]int64, 0, p-1)
	for i := 1; i < p; i++ {
		s := sample[i*len(sample)/p]
		if len(splitters) == 0 || s > splitters[len(splitters)-1] {
			splitters = append(splitters, s)
		}
	}
	return splitters
}

// partitionBySplitters splits xs into 2m+1 buckets around m strictly
// increasing splitters u_0 < ... < u_{m-1}: even index 2i holds the
// open range (u_{i-1}, u_i), odd index 2i+1 holds values equal to u_i,
// and the last even index holds values above u_{m-1}. Equal buckets
// are sorted by construction — that is the duplicate-skew defense.
func partitionBySplitters(xs, splitters []int64) [][]int64 {
	m := len(splitters)
	buckets := make([][]int64, 2*m+1)
	for _, v := range xs {
		i := sort.Search(m, func(j int) bool { return splitters[j] >= v })
		if i < m && splitters[i] == v {
			buckets[2*i+1] = append(buckets[2*i+1], v)
		} else {
			buckets[2*i] = append(buckets[2*i], v)
		}
	}
	return buckets
}

// BitonicSort sorts a copy of xs with a bitonic sorting network. The
// input length must be a power of two (the network's structural
// requirement the lecture highlights); comparators at the same depth
// run concurrently in `parallel` mode, chunked over the shared
// work-stealing pool rather than one goroutine per compare-exchange.
func BitonicSort(xs []int64, parallel bool) ([]int64, error) {
	if !parallel {
		return bitonicSort(xs, nil)
	}
	return BitonicSortOn(sched.Default(), xs)
}

// BitonicSortOn runs the parallel bitonic network on an explicit pool.
func BitonicSortOn(pool *sched.Pool, xs []int64) ([]int64, error) {
	return bitonicSort(xs, pool)
}

func bitonicSort(xs []int64, pool *sched.Pool) ([]int64, error) {
	n := len(xs)
	if n == 0 {
		return nil, nil
	}
	if n&(n-1) != 0 {
		return nil, errors.New("psort: bitonic sort requires a power-of-two length")
	}
	a := append([]int64(nil), xs...)
	for k := 2; k <= n; k *= 2 {
		for j := k / 2; j > 0; j /= 2 {
			if err := compareStage(a, j, k, pool); err != nil {
				return nil, err
			}
		}
	}
	return a, nil
}

// compareStage applies one depth of the network. In parallel mode the
// index space is chunked with ParallelFor — a stage is one bounded
// worksharing loop, not n/2 goroutines. Any chunk boundary is
// race-free: i <-> i^j is a disjoint perfect matching and each pair is
// swapped only from its lower index, so no element is touched twice.
func compareStage(a []int64, j, k int, pool *sched.Pool) error {
	n := len(a)
	body := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			l := i ^ j
			if l > i {
				up := i&k == 0
				if (up && a[i] > a[l]) || (!up && a[i] < a[l]) {
					a[i], a[l] = a[l], a[i]
				}
			}
		}
	}
	if pool == nil || n < serialCutoff {
		body(0, n)
		return nil
	}
	grain := serialCutoff
	for grain*8*pool.Workers() < n {
		grain *= 2
	}
	return pool.ParallelFor(n, grain, body)
}

// BitonicStats returns the comparator count and depth of the n-input
// bitonic network: depth = log(n)(log(n)+1)/2 stages, n/2 comparators per
// stage — the work/span of a sorting *network*.
func BitonicStats(n int) (comparators int64, depth int) {
	if n <= 1 {
		return 0, 0
	}
	lg := 0
	for 1<<uint(lg) < n {
		lg++
	}
	depth = lg * (lg + 1) / 2
	comparators = int64(depth) * int64(n/2)
	return comparators, depth
}

// Select returns the k-th smallest element (0-based) of xs using
// quickselect with median-of-medians pivoting — deterministic O(n), the
// selection row of Table III.
func Select(xs []int64, k int) (int64, error) {
	if k < 0 || k >= len(xs) {
		return 0, errors.New("psort: selection index out of range")
	}
	a := append([]int64(nil), xs...)
	for {
		if len(a) <= 12 {
			sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
			return a[k], nil
		}
		pivot := medianOfMedians(a)
		lt, eq := partition3(a, pivot)
		switch {
		case k < lt:
			a = a[:lt]
		case k < lt+eq:
			return pivot, nil
		default:
			a = a[lt+eq:]
			k -= lt + eq
		}
	}
}

func medianOfMedians(a []int64) int64 {
	medians := make([]int64, 0, (len(a)+4)/5)
	for i := 0; i < len(a); i += 5 {
		j := i + 5
		if j > len(a) {
			j = len(a)
		}
		g := append([]int64(nil), a[i:j]...)
		sort.Slice(g, func(x, y int) bool { return g[x] < g[y] })
		medians = append(medians, g[len(g)/2])
	}
	if len(medians) == 1 {
		return medians[0]
	}
	m, _ := Select(medians, len(medians)/2)
	return m
}

// partition3 three-way-partitions a around pivot in place, returning the
// sizes of the < and == regions.
func partition3(a []int64, pivot int64) (lt, eq int) {
	lo, mid, hi := 0, 0, len(a)
	for mid < hi {
		switch {
		case a[mid] < pivot:
			a[lo], a[mid] = a[mid], a[lo]
			lo++
			mid++
		case a[mid] > pivot:
			hi--
			a[mid], a[hi] = a[hi], a[mid]
		default:
			mid++
		}
	}
	return lo, mid - lo
}

// Reduce folds xs sequentially with op.
func Reduce(xs []int64, identity int64, op func(a, b int64) int64) int64 {
	acc := identity
	for _, v := range xs {
		acc = op(acc, v)
	}
	return acc
}

// ParallelReduce folds xs with p goroutine workers; op must be
// associative (the correctness condition the lecture stresses).
func ParallelReduce(xs []int64, identity int64, op func(a, b int64) int64, p int) (int64, error) {
	if p <= 0 {
		return 0, errors.New("psort: worker count must be positive")
	}
	if p > len(xs) {
		p = len(xs)
	}
	if p <= 1 {
		return Reduce(xs, identity, op), nil
	}
	partial := make([]int64, p)
	var wg sync.WaitGroup
	for w := 0; w < p; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lo, hi := w*len(xs)/p, (w+1)*len(xs)/p
			partial[w] = Reduce(xs[lo:hi], identity, op)
		}(w)
	}
	wg.Wait()
	return Reduce(partial, identity, op), nil
}

// ParallelScan computes the inclusive prefix sums of xs with the
// two-pass chunked algorithm (local scan, exclusive scan of chunk totals,
// rebase) on p workers.
func ParallelScan(xs []int64, p int) ([]int64, error) {
	if p <= 0 {
		return nil, errors.New("psort: worker count must be positive")
	}
	n := len(xs)
	out := make([]int64, n)
	if n == 0 {
		return out, nil
	}
	if p > n {
		p = n
	}
	totals := make([]int64, p)
	var wg sync.WaitGroup
	for w := 0; w < p; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lo, hi := w*n/p, (w+1)*n/p
			var acc int64
			for i := lo; i < hi; i++ {
				acc += xs[i]
				out[i] = acc
			}
			totals[w] = acc
		}(w)
	}
	wg.Wait()
	// Exclusive scan of totals (p is small: sequential).
	var acc int64
	offsets := make([]int64, p)
	for w := 0; w < p; w++ {
		offsets[w] = acc
		acc += totals[w]
	}
	for w := 1; w < p; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lo, hi := w*n/p, (w+1)*n/p
			for i := lo; i < hi; i++ {
				out[i] += offsets[w]
			}
		}(w)
	}
	wg.Wait()
	return out, nil
}

// MergeSortDAG builds the fork-join DAG of merge sort on n elements with
// either serial (cost n) or parallel (cost log²n) merges, returning work
// and span — the board algebra, machine-checked.
func MergeSortDAG(n int64, parallelMerge bool) (work, span int64, err error) {
	g := dag.New()
	var build func(n int64) dag.Fragment
	build = func(n int64) dag.Fragment {
		if n <= 1 {
			return dag.Leaf(g, 1, "base")
		}
		l := build(n / 2)
		r := build(n - n/2)
		mergeCost := n
		if parallelMerge {
			lg := int64(1)
			for v := n; v > 1; v >>= 1 {
				lg++
			}
			mergeCost = lg * lg
		}
		return dag.Seq(dag.Par(g, l, r), dag.Leaf(g, mergeCost, "merge"))
	}
	build(n)
	span, _, err = g.Span()
	if err != nil {
		return 0, 0, err
	}
	return g.Work(), span, nil
}

// Counters aggregates swap/comparison telemetry for instrumented runs.
type Counters struct {
	Comparisons atomic.Int64
}
