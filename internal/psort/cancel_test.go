package psort

import (
	"context"
	"errors"
	"testing"

	"repro/internal/sched"
)

// TestSampleSortOnCtxPreCanceled: an already-done context aborts the
// bucket fan-out and surfaces the wrapped ctx error instead of a
// partially sorted slice.
func TestSampleSortOnCtxPreCanceled(t *testing.T) {
	pool := sched.New(2)
	defer pool.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	xs := randomInts(1<<14, 7)
	out, err := SampleSortOnCtx(ctx, pool, xs, 8)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("SampleSortOnCtx on canceled ctx = %v, want wrapped context.Canceled", err)
	}
	if out != nil {
		t.Errorf("canceled sort returned a slice of %d elements", len(out))
	}
}

// TestSampleSortOnCtxBackgroundUnchanged: with a live context the ctx
// variant sorts exactly like SampleSortOn.
func TestSampleSortOnCtxBackgroundUnchanged(t *testing.T) {
	pool := sched.New(4)
	defer pool.Close()
	xs := randomInts(1<<14, 7)
	got, err := SampleSortOnCtx(context.Background(), pool, xs, 16)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := MergeSort(xs)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("differs from MergeSort at %d", i)
		}
	}
}
