package psort

import (
	"runtime"
	"sort"
	"testing"
	"time"

	"repro/internal/sched"
)

// TestMigratedSortsDeterministic: every scheduler-backed sort must
// produce MergeSort's exact output, across worker counts, including the
// retained spawn-per-fork baseline.
func TestMigratedSortsDeterministic(t *testing.T) {
	xs := randomInts(1<<14, 29)
	want, _ := MergeSort(xs)
	for _, workers := range []int{1, 2, 4, 8} {
		p := sched.New(workers)
		check := func(name string, got []int64, err error) {
			t.Helper()
			if err != nil {
				t.Fatalf("workers=%d %s: %v", workers, name, err)
			}
			if len(got) != len(want) {
				t.Fatalf("workers=%d %s: length %d", workers, name, len(got))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("workers=%d %s: mismatch at %d", workers, name, i)
				}
			}
		}
		check("pmsort", ParallelMergeSortOn(p, xs, 0), nil)
		check("pmsort-deep", ParallelMergeSortOn(p, xs, 9), nil)
		check("pmsortPM", ParallelMergeSortPMOn(p, xs, 0), nil)
		ss, err := SampleSortOn(p, xs, 8)
		check("samplesort", ss, err)
		bs, err := BitonicSortOn(p, xs)
		check("bitonic", bs, err)
		check("spawn-baseline", ParallelMergeSortSpawn(xs, 4), nil)
		p.Close()
	}
}

// TestClosedPoolSurfacesError: a closed pool must never silently yield
// unsorted output — error-returning sorts surface ErrClosed, and the
// []int64-returning merge sorts panic.
func TestClosedPoolSurfacesError(t *testing.T) {
	p := sched.New(2)
	p.Close()
	xs := randomInts(1<<12, 13)
	if _, err := SampleSortOn(p, xs, 8); err == nil {
		t.Error("SampleSortOn on closed pool: want error, got nil")
	}
	if _, err := BitonicSortOn(p, xs); err == nil {
		t.Error("BitonicSortOn on closed pool: want error, got nil")
	}
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s on closed pool: want panic", name)
			}
		}()
		f()
	}
	mustPanic("ParallelMergeSortOn", func() { ParallelMergeSortOn(p, xs, 0) })
	mustPanic("ParallelMergeSortPMOn", func() { ParallelMergeSortPMOn(p, xs, 0) })
}

// TestSampleSortDuplicateSkew is the splitter-skew regression: with 90%
// of the input equal to one value, the heavy value must land in an
// equal bucket (already sorted), so no range bucket degenerates into a
// near-full sort.
func TestSampleSortDuplicateSkew(t *testing.T) {
	const n = 100000
	xs := make([]int64, n)
	for i := range xs {
		if i%10 == 0 {
			xs[i] = int64(i % 997) // 10% varied
		} else {
			xs[i] = 7 // 90% duplicates
		}
	}
	want, _ := MergeSort(xs)
	got, err := SampleSort(xs, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("mismatch at %d", i)
		}
	}
	// White-box: the partition must isolate the heavy value.
	splitters := sampleSplitters(xs, 8)
	for i := 1; i < len(splitters); i++ {
		if splitters[i] <= splitters[i-1] {
			t.Fatalf("splitters not strictly increasing: %v", splitters)
		}
	}
	buckets := partitionBySplitters(xs, splitters)
	if len(buckets) != 2*len(splitters)+1 {
		t.Fatalf("bucket count %d for %d splitters", len(buckets), len(splitters))
	}
	maxRange := 0
	for i := 0; i < len(buckets); i += 2 {
		if len(buckets[i]) > maxRange {
			maxRange = len(buckets[i])
		}
	}
	if maxRange > n/2 {
		t.Errorf("largest range bucket holds %d of %d — duplicate skew not defused", maxRange, n)
	}
	// Equal buckets must already be sorted runs of one value.
	for i := 1; i < len(buckets); i += 2 {
		for j := 1; j < len(buckets[i]); j++ {
			if buckets[i][j] != buckets[i][0] {
				t.Fatalf("equal bucket %d holds distinct values", i)
			}
		}
	}
}

// TestSampleSortAllEqual: fully degenerate input still sorts, with the
// heavy value folded into an equal bucket.
func TestSampleSortAllEqual(t *testing.T) {
	xs := make([]int64, 50000)
	for i := range xs {
		xs[i] = 42
	}
	out, err := SampleSort(xs, 8)
	if err != nil || len(out) != len(xs) {
		t.Fatalf("err=%v len=%d", err, len(out))
	}
	for _, v := range out {
		if v != 42 {
			t.Fatal("corrupted value")
		}
	}
}

// TestParallelMergeSortBoundedGoroutines is the acceptance check: live
// goroutines stay <= workers + O(1) while sorting 10^6 int64s on a
// 4-worker pool.
func TestParallelMergeSortBoundedGoroutines(t *testing.T) {
	const n = 1_000_000
	xs := randomInts(n, 71)
	base := runtime.NumGoroutine()
	p := sched.New(4)
	defer p.Close()

	done := make(chan []int64)
	go func() { done <- ParallelMergeSortOn(p, xs, 9) }()

	peak := 0
	var out []int64
sample:
	for {
		select {
		case out = <-done:
			break sample
		default:
			if g := runtime.NumGoroutine(); g > peak {
				peak = g
			}
			time.Sleep(50 * time.Microsecond)
		}
	}
	// base + 4 workers + the sorter goroutine + slack of 2.
	if limit := base + 4 + 1 + 2; peak > limit {
		t.Errorf("goroutines peaked at %d, limit %d (baseline %d)", peak, limit, base)
	}
	if !sort.SliceIsSorted(out, func(i, j int) bool { return out[i] < out[j] }) {
		t.Fatal("output not sorted")
	}
	if !sameMultiset(out, xs) {
		t.Fatal("output lost elements")
	}
}
