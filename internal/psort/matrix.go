package psort

import (
	"errors"
	"sync"
)

// Matrix is a dense row-major n×n matrix of float64 — the Table III
// "matrix computation" workload.
type Matrix struct {
	N    int
	Data []float64
}

// NewMatrix creates an n×n zero matrix.
func NewMatrix(n int) *Matrix {
	return &Matrix{N: n, Data: make([]float64, n*n)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.N+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.N+j] = v }

// FillSequential fills the matrix with a deterministic pattern for tests.
func (m *Matrix) FillSequential() {
	for i := range m.Data {
		m.Data[i] = float64(i%7) - 3
	}
}

// MatMulNaive computes C = A·B with the i-j-k triple loop (strided B
// access: the cache-hostile baseline).
func MatMulNaive(a, b *Matrix) (*Matrix, error) {
	if a.N != b.N {
		return nil, errors.New("psort: dimension mismatch")
	}
	n := a.N
	c := NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for k := 0; k < n; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			c.Set(i, j, s)
		}
	}
	return c, nil
}

// MatMulIKJ computes C = A·B with the i-k-j loop order, which streams B
// and C rows — the one-line locality fix from the memory-hierarchy
// lecture.
func MatMulIKJ(a, b *Matrix) (*Matrix, error) {
	if a.N != b.N {
		return nil, errors.New("psort: dimension mismatch")
	}
	n := a.N
	c := NewMatrix(n)
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			aik := a.At(i, k)
			if aik == 0 {
				continue
			}
			crow := c.Data[i*n : (i+1)*n]
			brow := b.Data[k*n : (k+1)*n]
			for j := 0; j < n; j++ {
				crow[j] += aik * brow[j]
			}
		}
	}
	return c, nil
}

// MatMulBlocked computes C = A·B with square tiling — the "blocking"
// paradigm row of Table III. tile must be positive.
func MatMulBlocked(a, b *Matrix, tile int) (*Matrix, error) {
	if a.N != b.N {
		return nil, errors.New("psort: dimension mismatch")
	}
	if tile <= 0 {
		return nil, errors.New("psort: tile must be positive")
	}
	n := a.N
	c := NewMatrix(n)
	for ii := 0; ii < n; ii += tile {
		for kk := 0; kk < n; kk += tile {
			for jj := 0; jj < n; jj += tile {
				iMax := min(ii+tile, n)
				kMax := min(kk+tile, n)
				jMax := min(jj+tile, n)
				for i := ii; i < iMax; i++ {
					for k := kk; k < kMax; k++ {
						aik := a.At(i, k)
						crow := c.Data[i*n : (i+1)*n]
						brow := b.Data[k*n : (k+1)*n]
						for j := jj; j < jMax; j++ {
							crow[j] += aik * brow[j]
						}
					}
				}
			}
		}
	}
	return c, nil
}

// MatMulParallel computes C = A·B with rows distributed over p goroutine
// workers (each using the IKJ inner structure).
func MatMulParallel(a, b *Matrix, p int) (*Matrix, error) {
	if a.N != b.N {
		return nil, errors.New("psort: dimension mismatch")
	}
	if p <= 0 {
		return nil, errors.New("psort: worker count must be positive")
	}
	n := a.N
	if p > n {
		p = n
	}
	if p == 0 {
		p = 1
	}
	c := NewMatrix(n)
	var wg sync.WaitGroup
	for w := 0; w < p; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w * n / p; i < (w+1)*n/p; i++ {
				for k := 0; k < n; k++ {
					aik := a.At(i, k)
					crow := c.Data[i*n : (i+1)*n]
					brow := b.Data[k*n : (k+1)*n]
					for j := 0; j < n; j++ {
						crow[j] += aik * brow[j]
					}
				}
			}
		}(w)
	}
	wg.Wait()
	return c, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Equal compares matrices exactly.
func (m *Matrix) Equal(o *Matrix) bool {
	if m.N != o.N {
		return false
	}
	for i := range m.Data {
		if m.Data[i] != o.Data[i] {
			return false
		}
	}
	return true
}
