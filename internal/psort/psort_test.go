package psort

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func randomInts(n int, seed uint64) []int64 {
	if seed == 0 {
		seed = 1
	}
	xs := make([]int64, n)
	s := seed
	for i := range xs {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		xs[i] = int64(s % 1000003)
	}
	return xs
}

func isSorted(xs []int64) bool {
	for i := 1; i < len(xs); i++ {
		if xs[i-1] > xs[i] {
			return false
		}
	}
	return true
}

func sameMultiset(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	m := map[int64]int{}
	for _, v := range a {
		m[v]++
	}
	for _, v := range b {
		m[v]--
	}
	for _, c := range m {
		if c != 0 {
			return false
		}
	}
	return true
}

func TestAllSortsAgree(t *testing.T) {
	xs := randomInts(5000, 11)
	want := append([]int64(nil), xs...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })

	ms, comps := MergeSort(xs)
	if !isSorted(ms) || !sameMultiset(ms, xs) {
		t.Error("MergeSort broken")
	}
	if comps <= 0 {
		t.Error("MergeSort counted no comparisons")
	}
	qs, qcomps := QuickSort(xs)
	if !isSorted(qs) || !sameMultiset(qs, xs) {
		t.Error("QuickSort broken")
	}
	if qcomps <= 0 {
		t.Error("QuickSort counted no comparisons")
	}
	pm := ParallelMergeSort(xs, 3)
	if !isSorted(pm) || !sameMultiset(pm, xs) {
		t.Error("ParallelMergeSort broken")
	}
	pmm := ParallelMergeSortPM(xs, 3)
	if !isSorted(pmm) || !sameMultiset(pmm, xs) {
		t.Error("ParallelMergeSortPM broken")
	}
	ss, err := SampleSort(xs, 8)
	if err != nil || !isSorted(ss) || !sameMultiset(ss, xs) {
		t.Errorf("SampleSort broken: %v", err)
	}
	for i := range want {
		if ms[i] != want[i] || pm[i] != want[i] || pmm[i] != want[i] || ss[i] != want[i] || qs[i] != want[i] {
			t.Fatalf("disagreement at %d", i)
		}
	}
}

func TestSortsProperty(t *testing.T) {
	f := func(raw []int32) bool {
		xs := make([]int64, len(raw))
		for i, r := range raw {
			xs[i] = int64(r)
		}
		ms, _ := MergeSort(xs)
		qs, _ := QuickSort(xs)
		pm := ParallelMergeSort(xs, 2)
		ss, err := SampleSort(xs, 4)
		if err != nil {
			return false
		}
		if !isSorted(ms) || !sameMultiset(ms, xs) {
			return false
		}
		for i := range ms {
			if qs[i] != ms[i] || pm[i] != ms[i] || ss[i] != ms[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestMergeSortComparisonCountNLogN(t *testing.T) {
	// Comparisons must sit between n·log2(n)/2-ish and n·log2(n).
	for _, n := range []int{1024, 8192} {
		xs := randomInts(n, uint64(n))
		_, comps := MergeSort(xs)
		nlogn := float64(n) * math.Log2(float64(n))
		if float64(comps) > nlogn || float64(comps) < nlogn/2 {
			t.Errorf("n=%d: comparisons %d outside [%.0f, %.0f]", n, comps, nlogn/2, nlogn)
		}
	}
	// Sorted input is the best case for merge sort's merge.
	sortedIn := make([]int64, 1024)
	for i := range sortedIn {
		sortedIn[i] = int64(i)
	}
	_, compsSorted := MergeSort(sortedIn)
	_, compsRandom := MergeSort(randomInts(1024, 5))
	if compsSorted >= compsRandom {
		t.Errorf("sorted input comparisons %d should be < random %d", compsSorted, compsRandom)
	}
}

func TestBitonicSort(t *testing.T) {
	xs := randomInts(1024, 3)
	for _, par := range []bool{false, true} {
		got, err := BitonicSort(xs, par)
		if err != nil {
			t.Fatal(err)
		}
		if !isSorted(got) || !sameMultiset(got, xs) {
			t.Errorf("bitonic(parallel=%v) broken", par)
		}
	}
	if _, err := BitonicSort(randomInts(1000, 1), false); err == nil {
		t.Error("non-power-of-two must error")
	}
	if out, err := BitonicSort(nil, false); err != nil || out != nil {
		t.Error("empty input should be fine")
	}
	comparators, depth := BitonicStats(1024)
	if depth != 55 { // log=10, 10*11/2
		t.Errorf("depth = %d, want 55", depth)
	}
	if comparators != 55*512 {
		t.Errorf("comparators = %d", comparators)
	}
}

func TestSelect(t *testing.T) {
	xs := randomInts(999, 13)
	sorted := append([]int64(nil), xs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, k := range []int{0, 1, 499, 997, 998} {
		got, err := Select(xs, k)
		if err != nil {
			t.Fatal(err)
		}
		if got != sorted[k] {
			t.Errorf("Select(%d) = %d, want %d", k, got, sorted[k])
		}
	}
	if _, err := Select(xs, -1); err == nil {
		t.Error("negative k should error")
	}
	if _, err := Select(xs, len(xs)); err == nil {
		t.Error("k == n should error")
	}
}

func TestSelectProperty(t *testing.T) {
	f := func(raw []int16, kRaw uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]int64, len(raw))
		for i, r := range raw {
			xs[i] = int64(r)
		}
		k := int(kRaw) % len(xs)
		got, err := Select(xs, k)
		if err != nil {
			return false
		}
		sorted := append([]int64(nil), xs...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		return got == sorted[k]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestReduceAndParallelReduce(t *testing.T) {
	xs := randomInts(10000, 17)
	add := func(a, b int64) int64 { return a + b }
	want := Reduce(xs, 0, add)
	for _, p := range []int{1, 2, 4, 16} {
		got, err := ParallelReduce(xs, 0, add, p)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("p=%d: %d != %d", p, got, want)
		}
	}
	maxOp := func(a, b int64) int64 {
		if a > b {
			return a
		}
		return b
	}
	gotMax, _ := ParallelReduce(xs, math.MinInt64, maxOp, 4)
	wantMax := Reduce(xs, math.MinInt64, maxOp)
	if gotMax != wantMax {
		t.Errorf("max reduce: %d != %d", gotMax, wantMax)
	}
	if _, err := ParallelReduce(xs, 0, add, 0); err == nil {
		t.Error("p=0 should error")
	}
	if got, _ := ParallelReduce(nil, 42, add, 4); got != 42 {
		t.Errorf("empty reduce = %d, want identity", got)
	}
}

func TestParallelScan(t *testing.T) {
	xs := randomInts(5001, 19)
	want := make([]int64, len(xs))
	var acc int64
	for i, v := range xs {
		acc += v
		want[i] = acc
	}
	for _, p := range []int{1, 2, 3, 8} {
		got, err := ParallelScan(xs, p)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("p=%d: scan[%d] = %d, want %d", p, i, got[i], want[i])
			}
		}
	}
	if _, err := ParallelScan(xs, 0); err == nil {
		t.Error("p=0 should error")
	}
	if got, err := ParallelScan(nil, 4); err != nil || len(got) != 0 {
		t.Error("empty scan")
	}
}

func TestMergeSortDAGWorkSpan(t *testing.T) {
	// Serial merge: span Θ(n); parallel merge: span Θ(log²n) — the DAG
	// algebra must show the separation.
	workS, spanS, err := MergeSortDAG(256, false)
	if err != nil {
		t.Fatal(err)
	}
	workP, spanP, err := MergeSortDAG(256, true)
	if err != nil {
		t.Fatal(err)
	}
	if spanP >= spanS {
		t.Errorf("parallel merge span %d should beat serial %d", spanP, spanS)
	}
	// Serial-merge span ~ 2n; check the right scale.
	if spanS < 256 || spanS > 3*256 {
		t.Errorf("serial span = %d", spanS)
	}
	// Work stays Θ(n log n) in both.
	if workS <= 256*8/2 || workP <= 0 {
		t.Errorf("work: serial %d parallel %d", workS, workP)
	}
	// Parallelism grows with n much faster for the parallel merge.
	_, spanS2, _ := MergeSortDAG(1024, false)
	_, spanP2, _ := MergeSortDAG(1024, true)
	if float64(spanS2)/float64(spanS) < 3 { // ~4x for Θ(n)
		t.Errorf("serial span growth %d -> %d not linear-ish", spanS, spanS2)
	}
	if float64(spanP2)/float64(spanP) > 2 { // log² grows slowly
		t.Errorf("parallel span growth %d -> %d too fast", spanP, spanP2)
	}
}

func TestMatMulVariantsAgree(t *testing.T) {
	for _, n := range []int{1, 7, 16, 33} {
		a, b := NewMatrix(n), NewMatrix(n)
		a.FillSequential()
		for i := range b.Data {
			b.Data[i] = float64((i*31)%11) - 5
		}
		naive, err := MatMulNaive(a, b)
		if err != nil {
			t.Fatal(err)
		}
		ikj, _ := MatMulIKJ(a, b)
		blocked, _ := MatMulBlocked(a, b, 8)
		par, _ := MatMulParallel(a, b, 4)
		if !naive.Equal(ikj) || !naive.Equal(blocked) || !naive.Equal(par) {
			t.Errorf("n=%d: matmul variants disagree", n)
		}
	}
}

func TestMatMulErrors(t *testing.T) {
	a, b := NewMatrix(4), NewMatrix(5)
	if _, err := MatMulNaive(a, b); err == nil {
		t.Error("dimension mismatch should error")
	}
	c := NewMatrix(4)
	if _, err := MatMulBlocked(a, c, 0); err == nil {
		t.Error("tile 0 should error")
	}
	if _, err := MatMulParallel(a, c, 0); err == nil {
		t.Error("p=0 should error")
	}
}

func TestSampleSortEdges(t *testing.T) {
	if _, err := SampleSort(randomInts(10, 1), 0); err == nil {
		t.Error("p=0 should error")
	}
	if out, err := SampleSort(nil, 4); err != nil || out != nil {
		t.Error("empty input")
	}
	// All-equal input (degenerate splitters).
	xs := make([]int64, 1000)
	out, err := SampleSort(xs, 8)
	if err != nil || len(out) != 1000 {
		t.Errorf("all-equal sample sort: %v", err)
	}
	for _, v := range out {
		if v != 0 {
			t.Fatal("corrupted all-equal input")
		}
	}
}
