// Package shell implements the CS31 Unix-shell lab on the simulated
// kernel from internal/proc: a command-line parser (pipes, redirection,
// background jobs, sequencing), builtins (cd, pwd, exit, jobs, fg,
// history), fork/exec/waitpid process management, and the zombie/reaping
// behaviour the lab exists to teach — a background job's process stays a
// zombie until the shell reaps it at the next prompt.
package shell

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/proc"
)

// Program is a simulated executable: it maps stdin and argv to stdout and
// an exit status.
type Program func(args []string, stdin string) (stdout string, exit int)

// Shell is the interpreter state.
type Shell struct {
	Kernel  *proc.Kernel
	Self    proc.PID
	cwd     string
	history []string
	// fs is the simulated filesystem for redirections.
	fs map[string]string
	// jobs tracks background pipelines: job id -> pids + command line.
	jobs     map[int]*job
	nextJob  int
	programs map[string]Program
	exited   bool
}

type job struct {
	id   int
	pids []proc.PID
	line string
	done bool
}

// New creates a shell running as a child of init on a fresh kernel.
func New() (*Shell, error) {
	k := proc.NewKernel()
	self, err := k.Fork(proc.InitPID)
	if err != nil {
		return nil, err
	}
	if err := k.Exec(self, "swatsh"); err != nil {
		return nil, err
	}
	sh := &Shell{
		Kernel: k, Self: self, cwd: "/home/student",
		fs:   make(map[string]string),
		jobs: make(map[int]*job),
	}
	sh.programs = builtinPrograms()
	return sh, nil
}

// Exited reports whether the shell has seen the exit builtin.
func (s *Shell) Exited() bool { return s.exited }

// WriteFile seeds the simulated filesystem.
func (s *Shell) WriteFile(name, content string) { s.fs[name] = content }

// ReadFile reads from the simulated filesystem.
func (s *Shell) ReadFile(name string) (string, bool) {
	v, ok := s.fs[name]
	return v, ok
}

func builtinPrograms() map[string]Program {
	return map[string]Program{
		"echo": func(args []string, _ string) (string, int) {
			return strings.Join(args, " ") + "\n", 0
		},
		"true":  func([]string, string) (string, int) { return "", 0 },
		"false": func([]string, string) (string, int) { return "", 1 },
		"cat": func(args []string, stdin string) (string, int) {
			return stdin, 0
		},
		"wc": func(_ []string, stdin string) (string, int) {
			lines := 0
			for _, c := range stdin {
				if c == '\n' {
					lines++
				}
			}
			words := len(strings.Fields(stdin))
			return fmt.Sprintf("%d %d %d\n", lines, words, len(stdin)), 0
		},
		"rev": func(_ []string, stdin string) (string, int) {
			var out strings.Builder
			for _, line := range strings.Split(strings.TrimSuffix(stdin, "\n"), "\n") {
				r := []rune(line)
				for i, j := 0, len(r)-1; i < j; i, j = i+1, j-1 {
					r[i], r[j] = r[j], r[i]
				}
				out.WriteString(string(r))
				out.WriteByte('\n')
			}
			return out.String(), 0
		},
		"upper": func(_ []string, stdin string) (string, int) {
			return strings.ToUpper(stdin), 0
		},
		"seq": func(args []string, _ string) (string, int) {
			if len(args) != 1 {
				return "seq: usage: seq N\n", 1
			}
			n, err := strconv.Atoi(args[0])
			if err != nil || n < 0 {
				return "seq: bad count\n", 1
			}
			var b strings.Builder
			for i := 1; i <= n; i++ {
				fmt.Fprintf(&b, "%d\n", i)
			}
			return b.String(), 0
		},
		"grep": func(args []string, stdin string) (string, int) {
			if len(args) != 1 {
				return "grep: usage: grep PATTERN\n", 1
			}
			var b strings.Builder
			found := false
			for _, line := range strings.Split(strings.TrimSuffix(stdin, "\n"), "\n") {
				if strings.Contains(line, args[0]) {
					b.WriteString(line)
					b.WriteByte('\n')
					found = true
				}
			}
			if !found {
				return b.String(), 1
			}
			return b.String(), 0
		},
		"sort": func(_ []string, stdin string) (string, int) {
			lines := strings.Split(strings.TrimSuffix(stdin, "\n"), "\n")
			sort.Strings(lines)
			return strings.Join(lines, "\n") + "\n", 0
		},
	}
}

// command is one parsed simple command.
type command struct {
	argv    []string
	inFile  string
	outFile string
}

// pipeline is commands joined by '|', possibly backgrounded.
type pipeline struct {
	cmds       []command
	background bool
	text       string
}

// tokenize splits a line into words and operator tokens, honouring
// double quotes.
func tokenize(line string) ([]string, error) {
	var toks []string
	i := 0
	for i < len(line) {
		c := line[i]
		switch {
		case c == ' ' || c == '\t':
			i++
		case c == '|' || c == '<' || c == '>' || c == '&' || c == ';':
			toks = append(toks, string(c))
			i++
		case c == '"':
			j := i + 1
			for j < len(line) && line[j] != '"' {
				j++
			}
			if j == len(line) {
				return nil, errors.New("shell: unterminated quote")
			}
			toks = append(toks, line[i+1:j])
			i = j + 1
		default:
			j := i
			for j < len(line) && !strings.ContainsRune(" \t|<>&;\"", rune(line[j])) {
				j++
			}
			toks = append(toks, line[i:j])
			i = j
		}
	}
	return toks, nil
}

// parse converts a token stream into pipelines separated by ';'.
func parse(line string) ([]pipeline, error) {
	toks, err := tokenize(line)
	if err != nil {
		return nil, err
	}
	var out []pipeline
	var cur pipeline
	var cmd command
	flushCmd := func() error {
		if len(cmd.argv) == 0 && (cmd.inFile != "" || cmd.outFile != "") {
			return errors.New("shell: redirection without a command")
		}
		if len(cmd.argv) > 0 {
			cur.cmds = append(cur.cmds, cmd)
		}
		cmd = command{}
		return nil
	}
	flushPipe := func() error {
		if err := flushCmd(); err != nil {
			return err
		}
		if len(cur.cmds) > 0 {
			out = append(out, cur)
		}
		cur = pipeline{}
		return nil
	}
	for i := 0; i < len(toks); i++ {
		t := toks[i]
		switch t {
		case "|":
			if err := flushCmd(); err != nil {
				return nil, err
			}
			if len(cur.cmds) == 0 {
				return nil, errors.New("shell: pipe with no left side")
			}
		case "<", ">":
			if i+1 >= len(toks) {
				return nil, fmt.Errorf("shell: %s needs a filename", t)
			}
			i++
			if t == "<" {
				cmd.inFile = toks[i]
			} else {
				cmd.outFile = toks[i]
			}
		case "&":
			cur.background = true
			if err := flushPipe(); err != nil {
				return nil, err
			}
		case ";":
			if err := flushPipe(); err != nil {
				return nil, err
			}
		default:
			cmd.argv = append(cmd.argv, t)
		}
	}
	if err := flushPipe(); err != nil {
		return nil, err
	}
	for i := range out {
		var parts []string
		for _, c := range out[i].cmds {
			parts = append(parts, strings.Join(c.argv, " "))
		}
		out[i].text = strings.Join(parts, " | ")
	}
	return out, nil
}

// Run interprets one command line and returns its output.
func (s *Shell) Run(line string) (string, error) {
	if strings.TrimSpace(line) != "" {
		s.history = append(s.history, line)
	}
	s.reapBackground() // the "check for finished jobs at the prompt" step
	pipes, err := parse(line)
	if err != nil {
		return "", err
	}
	var out strings.Builder
	for _, p := range pipes {
		if s.exited {
			break
		}
		o, err := s.runPipeline(p)
		out.WriteString(o)
		if err != nil {
			return out.String(), err
		}
	}
	return out.String(), nil
}

func (s *Shell) runPipeline(p pipeline) (string, error) {
	// Builtins run in the shell process (no fork) when alone and in the
	// foreground — the rule the lab makes students justify.
	if len(p.cmds) == 1 && !p.background {
		if out, handled, err := s.builtin(p.cmds[0]); handled {
			return out, err
		}
	}
	var pids []proc.PID
	data := ""
	var out strings.Builder
	exitStatus := 0
	for ci, c := range p.cmds {
		prog, ok := s.programs[c.argv[0]]
		if !ok {
			return out.String(), fmt.Errorf("shell: %s: command not found", c.argv[0])
		}
		// fork + exec in the simulated kernel.
		pid, err := s.Kernel.Fork(s.Self)
		if err != nil {
			return out.String(), err
		}
		if err := s.Kernel.Exec(pid, c.argv[0]); err != nil {
			return out.String(), err
		}
		pids = append(pids, pid)
		stdin := data
		if c.inFile != "" {
			content, ok := s.fs[c.inFile]
			if !ok {
				s.Kernel.Exit(pid, 1)
				return out.String(), fmt.Errorf("shell: %s: no such file", c.inFile)
			}
			stdin = content
		}
		stdout, status := prog(c.argv[1:], stdin)
		exitStatus = status
		if c.outFile != "" {
			s.fs[c.outFile] = stdout
			data = ""
		} else {
			data = stdout
		}
		// The process "runs to completion" in the simulator.
		if err := s.Kernel.Exit(pid, status); err != nil {
			return out.String(), err
		}
		_ = ci
	}
	if p.background {
		s.nextJob++
		j := &job{id: s.nextJob, pids: pids, line: p.text}
		s.jobs[j.id] = j
		// Do NOT wait: the children stay zombies until the next prompt —
		// the observable behaviour the lab's SIGCHLD discussion explains.
		return fmt.Sprintf("[%d] %d\n", j.id, pids[len(pids)-1]), nil
	}
	// Foreground: wait for every process in the pipeline.
	for _, pid := range pids {
		if _, err := s.Kernel.WaitPID(s.Self, pid); err != nil {
			return out.String(), err
		}
	}
	out.WriteString(data)
	if exitStatus != 0 {
		return out.String(), fmt.Errorf("shell: exit status %d", exitStatus)
	}
	return out.String(), nil
}

// reapBackground waits on finished background jobs, marking them done —
// the shell's zombie hygiene.
func (s *Shell) reapBackground() []string {
	var notes []string
	for _, j := range sortedJobs(s.jobs) {
		if j.done {
			continue
		}
		alldone := true
		for _, pid := range j.pids {
			if _, err := s.Kernel.WaitPID(s.Self, pid); err != nil {
				if errors.Is(err, proc.ErrNotZombie) {
					alldone = false
				}
			}
		}
		if alldone {
			j.done = true
			notes = append(notes, fmt.Sprintf("[%d] done %s", j.id, j.line))
		}
	}
	return notes
}

func sortedJobs(m map[int]*job) []*job {
	out := make([]*job, 0, len(m))
	for _, j := range m {
		out = append(out, j)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].id < out[k].id })
	return out
}

// builtin handles shell builtins; handled=false means "not a builtin".
func (s *Shell) builtin(c command) (string, bool, error) {
	switch c.argv[0] {
	case "cd":
		if len(c.argv) != 2 {
			return "", true, errors.New("shell: cd: usage: cd DIR")
		}
		dir := c.argv[1]
		if strings.HasPrefix(dir, "/") {
			s.cwd = dir
		} else if dir == ".." {
			i := strings.LastIndex(s.cwd, "/")
			if i > 0 {
				s.cwd = s.cwd[:i]
			} else {
				s.cwd = "/"
			}
		} else {
			s.cwd = strings.TrimSuffix(s.cwd, "/") + "/" + dir
		}
		return "", true, nil
	case "pwd":
		return s.cwd + "\n", true, nil
	case "exit":
		s.exited = true
		return "", true, nil
	case "history":
		var b strings.Builder
		for i, h := range s.history {
			fmt.Fprintf(&b, "%4d  %s\n", i+1, h)
		}
		return b.String(), true, nil
	case "jobs":
		var b strings.Builder
		for _, j := range sortedJobs(s.jobs) {
			state := "Running"
			if j.done {
				state = "Done"
			}
			zombie := false
			for _, pid := range j.pids {
				if p, err := s.Kernel.Process(pid); err == nil && p.State == proc.Zombie {
					zombie = true
				}
			}
			if zombie {
				state = "Done (zombie)"
			}
			fmt.Fprintf(&b, "[%d]  %-14s %s\n", j.id, state, j.line)
		}
		return b.String(), true, nil
	case "fg":
		if len(c.argv) != 2 {
			return "", true, errors.New("shell: fg: usage: fg JOB")
		}
		id, err := strconv.Atoi(strings.TrimPrefix(c.argv[1], "%"))
		if err != nil {
			return "", true, errors.New("shell: fg: bad job id")
		}
		j, ok := s.jobs[id]
		if !ok {
			return "", true, fmt.Errorf("shell: fg: no such job %d", id)
		}
		for _, pid := range j.pids {
			s.Kernel.WaitPID(s.Self, pid) //nolint:errcheck // already reaped is fine
		}
		j.done = true
		return "", true, nil
	case "pstree":
		return s.Kernel.Tree(), true, nil
	}
	return "", false, nil
}
