package shell

import (
	"strings"
	"testing"

	"repro/internal/proc"
)

func mustShell(t *testing.T) *Shell {
	t.Helper()
	s, err := New()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestEcho(t *testing.T) {
	s := mustShell(t)
	out, err := s.Run(`echo hello world`)
	if err != nil {
		t.Fatal(err)
	}
	if out != "hello world\n" {
		t.Errorf("out = %q", out)
	}
}

func TestQuoting(t *testing.T) {
	s := mustShell(t)
	out, err := s.Run(`echo "hello   there | friend"`)
	if err != nil {
		t.Fatal(err)
	}
	if out != "hello   there | friend\n" {
		t.Errorf("out = %q", out)
	}
	if _, err := s.Run(`echo "unterminated`); err == nil {
		t.Error("unterminated quote should error")
	}
}

func TestPipeline(t *testing.T) {
	s := mustShell(t)
	out, err := s.Run(`seq 5 | rev | sort`)
	if err != nil {
		t.Fatal(err)
	}
	if out != "1\n2\n3\n4\n5\n" {
		t.Errorf("out = %q", out)
	}
	out, err = s.Run(`echo swat | upper`)
	if err != nil {
		t.Fatal(err)
	}
	if out != "SWAT\n" {
		t.Errorf("out = %q", out)
	}
	out, err = s.Run(`seq 100 | grep 9 | wc`)
	if err != nil {
		t.Fatal(err)
	}
	// 9, 19, ..., 89, 90..99: 19 lines.
	if !strings.HasPrefix(out, "19 19 ") {
		t.Errorf("wc out = %q", out)
	}
}

func TestRedirection(t *testing.T) {
	s := mustShell(t)
	if _, err := s.Run(`seq 3 > nums.txt`); err != nil {
		t.Fatal(err)
	}
	content, ok := s.ReadFile("nums.txt")
	if !ok || content != "1\n2\n3\n" {
		t.Errorf("file = %q ok=%v", content, ok)
	}
	out, err := s.Run(`rev < nums.txt`)
	if err != nil {
		t.Fatal(err)
	}
	if out != "1\n2\n3\n" {
		t.Errorf("rev out = %q", out)
	}
	if _, err := s.Run(`cat < missing.txt`); err == nil {
		t.Error("missing input file should error")
	}
	if _, err := s.Run(`> onlyredir`); err == nil {
		t.Error("redirection without command should error")
	}
}

func TestSequencing(t *testing.T) {
	s := mustShell(t)
	out, err := s.Run(`echo a; echo b; echo c`)
	if err != nil {
		t.Fatal(err)
	}
	if out != "a\nb\nc\n" {
		t.Errorf("out = %q", out)
	}
}

func TestExitStatusPropagates(t *testing.T) {
	s := mustShell(t)
	if _, err := s.Run(`false`); err == nil {
		t.Error("false should report a nonzero status")
	}
	if _, err := s.Run(`true`); err != nil {
		t.Errorf("true failed: %v", err)
	}
	if _, err := s.Run(`nosuchcmd`); err == nil || !strings.Contains(err.Error(), "not found") {
		t.Errorf("unknown command: %v", err)
	}
}

func TestBuiltinsCdPwdHistory(t *testing.T) {
	s := mustShell(t)
	out, _ := s.Run(`pwd`)
	if out != "/home/student\n" {
		t.Errorf("pwd = %q", out)
	}
	s.Run(`cd /tmp`)
	out, _ = s.Run(`pwd`)
	if out != "/tmp\n" {
		t.Errorf("after cd, pwd = %q", out)
	}
	s.Run(`cd sub`)
	out, _ = s.Run(`pwd`)
	if out != "/tmp/sub\n" {
		t.Errorf("relative cd: %q", out)
	}
	s.Run(`cd ..`)
	out, _ = s.Run(`pwd`)
	if out != "/tmp\n" {
		t.Errorf("cd ..: %q", out)
	}
	out, _ = s.Run(`history`)
	if !strings.Contains(out, "cd /tmp") || !strings.Contains(out, "pwd") {
		t.Errorf("history:\n%s", out)
	}
	if _, err := s.Run(`cd`); err == nil {
		t.Error("cd without arg should error")
	}
}

func TestExitBuiltin(t *testing.T) {
	s := mustShell(t)
	s.Run(`exit`)
	if !s.Exited() {
		t.Error("exit did not mark the shell")
	}
	out, _ := s.Run(`echo never; echo runs`)
	if out != "" {
		t.Errorf("commands ran after exit: %q", out)
	}
}

func TestBackgroundJobsLeaveZombiesUntilReaped(t *testing.T) {
	s := mustShell(t)
	out, err := s.Run(`echo bg work &`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out, "[1] ") {
		t.Errorf("job banner = %q", out)
	}
	// The background process has exited but is NOT reaped: a zombie.
	if z := s.Kernel.ZombieCount(); z != 1 {
		t.Errorf("zombies after bg job = %d, want 1", z)
	}
	// jobs shows it as a zombie.
	out, _ = s.Run(`jobs`)
	if !strings.Contains(out, "[1]") {
		t.Errorf("jobs output:\n%s", out)
	}
	// The Run call for `jobs` reaped at the prompt: zombie gone.
	if z := s.Kernel.ZombieCount(); z != 0 {
		t.Errorf("zombies after next prompt = %d, want 0", z)
	}
}

func TestFgJob(t *testing.T) {
	s := mustShell(t)
	s.Run(`seq 3 &`)
	if _, err := s.Run(`fg %1`); err != nil {
		t.Fatal(err)
	}
	if z := s.Kernel.ZombieCount(); z != 0 {
		t.Errorf("zombies after fg = %d", z)
	}
	if _, err := s.Run(`fg %9`); err == nil {
		t.Error("fg on missing job should error")
	}
	if _, err := s.Run(`fg`); err == nil {
		t.Error("fg without arg should error")
	}
}

func TestPstreeShowsShell(t *testing.T) {
	s := mustShell(t)
	out, err := s.Run(`pstree`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "init") || !strings.Contains(out, "swatsh") {
		t.Errorf("pstree:\n%s", out)
	}
}

func TestForegroundLeavesNoZombies(t *testing.T) {
	s := mustShell(t)
	for i := 0; i < 10; i++ {
		if _, err := s.Run(`seq 10 | wc`); err != nil {
			t.Fatal(err)
		}
	}
	if z := s.Kernel.ZombieCount(); z != 0 {
		t.Errorf("zombies = %d after foreground pipelines", z)
	}
	// All children of the shell reaped.
	p, _ := s.Kernel.Process(s.Self)
	if len(p.Children) != 0 {
		t.Errorf("shell still has %d children", len(p.Children))
	}
	_ = proc.InitPID
}

func TestParserErrors(t *testing.T) {
	s := mustShell(t)
	for _, bad := range []string{`| upper`, `echo x >`, `cat <`} {
		if _, err := s.Run(bad); err == nil {
			t.Errorf("Run(%q) should fail", bad)
		}
	}
	// Empty line is fine.
	if out, err := s.Run(``); err != nil || out != "" {
		t.Errorf("empty line: %q %v", out, err)
	}
}

func TestRedirectionInPipelineMiddle(t *testing.T) {
	s := mustShell(t)
	// Output redirection mid-pipeline swallows the stream (like a real
	// shell, the next stage sees empty stdin).
	out, err := s.Run(`seq 3 > f.txt | wc`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out, "0 0 0") {
		t.Errorf("out = %q", out)
	}
	if content, _ := s.ReadFile("f.txt"); content != "1\n2\n3\n" {
		t.Errorf("file = %q", content)
	}
}
