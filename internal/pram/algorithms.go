package pram

import (
	"errors"
	"fmt"
)

// This file implements the CS41 PRAM algorithms: tree-based parallel sum,
// O(1) CRCW maximum, EREW broadcast, Blelloch exclusive scan, and
// pointer-jumping list ranking. Each returns the machine so callers can
// read Steps() and Work() for the work/span discussion.

// Sum computes the sum of xs by pairwise tree reduction in ceil(log2 n)
// steps on an EREW machine (reads and writes are disjoint per step).
func Sum(v Variant, xs []int64) (int64, *Machine, error) {
	n := len(xs)
	if n == 0 {
		return 0, New(v, 1), nil
	}
	m := New(v, n)
	if err := m.Load(0, xs); err != nil {
		return 0, nil, err
	}
	for d := 1; d < n; d *= 2 {
		d := d
		// Processor i handles position 2*d*i.
		procs := (n + 2*d - 1) / (2 * d)
		err := m.Step(procs, func(c *Ctx) {
			base := 2 * d * c.Proc()
			if base+d < n {
				a := c.Read(base)
				b := c.Read(base + d)
				c.Write(base, a+b)
			}
		})
		if err != nil {
			return 0, m, err
		}
	}
	return m.Read(0), m, nil
}

// Max finds the maximum of xs in O(1) steps on a CRCW-common machine
// using n^2 processors — the classic separation example between CRCW and
// the weaker models. Returns an error on EREW/CREW machines, where the
// algorithm's concurrent writes are illegal.
func Max(v Variant, xs []int64) (int64, *Machine, error) {
	n := len(xs)
	if n == 0 {
		return 0, nil, errors.New("pram: max of empty input")
	}
	// Memory layout: [0,n) = xs, [n,2n) = loser flags, 2n = result.
	m := New(v, 2*n+1)
	if err := m.Load(0, xs); err != nil {
		return 0, nil, err
	}
	// Step 1: clear flags (n processors, exclusive).
	if err := m.Step(n, func(c *Ctx) { c.Write(n+c.Proc(), 0) }); err != nil {
		return 0, m, err
	}
	// Step 2: n^2 processors compare all pairs; concurrent common writes
	// of the value 1.
	if err := m.Step(n*n, func(c *Ctx) {
		i, j := c.Proc()/n, c.Proc()%n
		if i == j {
			return
		}
		xi, xj := c.Read(i), c.Read(j)
		if xi < xj || (xi == xj && i > j) {
			c.Write(n+i, 1)
		}
	}); err != nil {
		return 0, m, err
	}
	// Step 3: the unique non-loser writes the result.
	if err := m.Step(n, func(c *Ctx) {
		if c.Read(n+c.Proc()) == 0 {
			c.Write(2*n, c.Read(c.Proc()))
		}
	}); err != nil {
		return 0, m, err
	}
	return m.Read(2 * n), m, nil
}

// Broadcast copies the value at cell 0 to cells 0..n-1 in ceil(log2 n)
// doubling steps, legal even on EREW (every cell is read and written by
// at most one processor per step).
func Broadcast(v Variant, n int, value int64) (*Machine, error) {
	if n <= 0 {
		return nil, errors.New("pram: broadcast needs n > 0")
	}
	m := New(v, n)
	if err := m.Step(1, func(c *Ctx) { c.Write(0, value) }); err != nil {
		return m, err
	}
	for have := 1; have < n; have *= 2 {
		have := have
		procs := have
		if have*2 > n {
			procs = n - have
		}
		if err := m.Step(procs, func(c *Ctx) {
			src := c.Proc()
			dst := have + c.Proc()
			if dst < n {
				c.Write(dst, c.Read(src))
			}
		}); err != nil {
			return m, err
		}
	}
	return m, nil
}

// ExclusiveScan computes the Blelchoch-style exclusive prefix sum of xs in
// 2*log2(n) steps (upsweep + downsweep), padding to a power of two. The
// returned slice has len(xs) entries: out[i] = sum(xs[0:i]).
func ExclusiveScan(v Variant, xs []int64) ([]int64, *Machine, error) {
	n := len(xs)
	if n == 0 {
		return nil, New(v, 1), nil
	}
	size := 1
	for size < n {
		size *= 2
	}
	m := New(v, size)
	if err := m.Load(0, xs); err != nil {
		return nil, nil, err
	}
	// Upsweep: build the reduction tree in place.
	for d := 1; d < size; d *= 2 {
		d := d
		procs := size / (2 * d)
		if err := m.Step(procs, func(c *Ctx) {
			right := 2*d*(c.Proc()+1) - 1
			left := right - d
			c.Write(right, c.Read(left)+c.Read(right))
		}); err != nil {
			return nil, m, err
		}
	}
	// Clear the root.
	if err := m.Step(1, func(c *Ctx) { c.Write(size-1, 0) }); err != nil {
		return nil, m, err
	}
	// Downsweep.
	for d := size / 2; d >= 1; d /= 2 {
		d := d
		procs := size / (2 * d)
		if err := m.Step(procs, func(c *Ctx) {
			right := 2*d*(c.Proc()+1) - 1
			left := right - d
			l := c.Read(left)
			r := c.Read(right)
			c.Write(left, r)
			c.Write(right, l+r)
		}); err != nil {
			return nil, m, err
		}
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = m.Read(i)
	}
	return out, m, nil
}

// ListRank computes, for each node of a linked list given by next[]
// (next[i] == i marks the tail), its distance to the tail, via pointer
// jumping in ceil(log2 n) steps. Requires CREW or stronger (concurrent
// reads of shared next pointers).
func ListRank(v Variant, next []int) ([]int64, *Machine, error) {
	n := len(next)
	if n == 0 {
		return nil, New(v, 1), nil
	}
	for i, nx := range next {
		if nx < 0 || nx >= n {
			return nil, nil, fmt.Errorf("pram: next[%d] = %d out of range", i, nx)
		}
	}
	// Memory: [0,n) rank, [n,2n) next.
	m := New(v, 2*n)
	if err := m.Step(n, func(c *Ctx) {
		i := c.Proc()
		if next[i] == i {
			c.Write(i, 0)
		} else {
			c.Write(i, 1)
		}
		c.Write(n+i, int64(next[i]))
	}); err != nil {
		return nil, m, err
	}
	for hop := 1; hop < n; hop *= 2 {
		if err := m.Step(n, func(c *Ctx) {
			i := c.Proc()
			nx := int(c.Read(n + i))
			if nx == i {
				return
			}
			r := c.Read(i)
			rn := c.Read(nx)
			nn := c.Read(n + nx)
			c.Write(i, r+rn)
			c.Write(n+i, nn)
		}); err != nil {
			return nil, m, err
		}
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = m.Read(i)
	}
	return out, m, nil
}
