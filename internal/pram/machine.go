// Package pram implements the PRAM (parallel random-access machine)
// models from CS41 Table III: EREW, CREW, and the three CRCW
// write-resolution variants, as a synchronous stepped simulator that
// *checks* the model's access rules — a program that performs an illegal
// concurrent read or write on EREW fails loudly, which is how the model's
// distinctions become visible to students. The simulator counts steps
// (parallel time) and work (total processor-steps), the quantities the
// course's work/span analysis uses.
package pram

import (
	"errors"
	"fmt"
)

// Variant selects the PRAM memory-access rules.
type Variant int

// The PRAM variants.
const (
	EREW          Variant = iota // exclusive read, exclusive write
	CREW                         // concurrent read, exclusive write
	CRCWCommon                   // concurrent write allowed if all write the same value
	CRCWArbitrary                // one concurrent writer wins (here: lowest processor)
	CRCWPriority                 // lowest-numbered processor wins
)

// String returns the human-readable name.
func (v Variant) String() string {
	return [...]string{"EREW", "CREW", "CRCW-common", "CRCW-arbitrary", "CRCW-priority"}[v]
}

// ErrAccessViolation reports a read or write pattern the variant forbids.
var ErrAccessViolation = errors.New("pram: access violation")

// Machine is a PRAM with shared memory. All processors execute one step
// function synchronously; reads see the memory as it was when the step
// began, writes are applied when the step ends (after conflict checking).
type Machine struct {
	Variant Variant
	mem     []int64
	steps   int64
	work    int64
}

// New creates a PRAM with the given shared-memory size.
func New(v Variant, memSize int) *Machine {
	return &Machine{Variant: v, mem: make([]int64, memSize)}
}

// Load copies values into shared memory starting at base.
func (m *Machine) Load(base int, xs []int64) error {
	if base < 0 || base+len(xs) > len(m.mem) {
		return fmt.Errorf("pram: load [%d,%d) outside memory of %d", base, base+len(xs), len(m.mem))
	}
	copy(m.mem[base:], xs)
	return nil
}

// Read returns the value at addr outside of a step (host access).
func (m *Machine) Read(addr int) int64 { return m.mem[addr] }

// Steps returns the parallel time consumed so far.
func (m *Machine) Steps() int64 { return m.steps }

// Work returns the total processor-steps consumed so far.
func (m *Machine) Work() int64 { return m.work }

// Ctx is a processor's handle during one synchronous step.
type Ctx struct {
	proc   int
	m      *Machine
	reads  map[int]bool
	writes map[int]int64
}

// Proc returns the processor index.
func (c *Ctx) Proc() int { return c.proc }

// Read reads shared memory (pre-step snapshot semantics).
func (c *Ctx) Read(addr int) int64 {
	if addr < 0 || addr >= len(c.m.mem) {
		panic(fmt.Sprintf("pram: processor %d read out of range: %d", c.proc, addr))
	}
	c.reads[addr] = true
	return c.m.mem[addr]
}

// Write schedules a write to be applied at the end of the step. A
// processor writing the same address twice in one step keeps the last
// value.
func (c *Ctx) Write(addr int, v int64) {
	if addr < 0 || addr >= len(c.m.mem) {
		panic(fmt.Sprintf("pram: processor %d write out of range: %d", c.proc, addr))
	}
	c.writes[addr] = v
}

// Step executes one synchronous PRAM step on processors 0..procs-1. The
// body runs for each processor against the pre-step memory; afterwards
// the writes are checked against the variant's rules and applied. Any
// violation rolls the step back and returns ErrAccessViolation.
func (m *Machine) Step(procs int, body func(c *Ctx)) error {
	if procs <= 0 {
		return errors.New("pram: step needs at least one processor")
	}
	ctxs := make([]*Ctx, procs)
	for p := 0; p < procs; p++ {
		c := &Ctx{proc: p, m: m, reads: make(map[int]bool), writes: make(map[int]int64)}
		body(c)
		ctxs[p] = c
	}

	// Conflict detection.
	readers := make(map[int]int)   // addr -> reader count
	writers := make(map[int][]int) // addr -> processor list (ordered by proc)
	for p, c := range ctxs {
		for a := range c.reads {
			readers[a]++
		}
		for a := range c.writes {
			writers[a] = append(writers[a], p)
		}
	}
	if m.Variant == EREW {
		for a, n := range readers {
			if n > 1 {
				return fmt.Errorf("%w: %d concurrent readers of address %d on EREW", ErrAccessViolation, n, a)
			}
		}
	}
	if m.Variant == EREW || m.Variant == CREW {
		for a, ws := range writers {
			if len(ws) > 1 {
				return fmt.Errorf("%w: %d concurrent writers of address %d on %v", ErrAccessViolation, len(ws), a, m.Variant)
			}
		}
	}
	if m.Variant == CRCWCommon {
		for a, ws := range writers {
			first := ctxs[ws[0]].writes[a]
			for _, p := range ws[1:] {
				if ctxs[p].writes[a] != first {
					return fmt.Errorf("%w: CRCW-common writers disagree at address %d (%d vs %d)",
						ErrAccessViolation, a, first, ctxs[p].writes[a])
				}
			}
		}
	}
	// Concurrent reads and writes to the same address in one step: reads
	// saw the old value (snapshot), which matches the standard model.

	// Apply writes. For arbitrary/priority the lowest processor wins
	// (deterministic "arbitrary").
	for a, ws := range writers {
		m.mem[a] = ctxs[ws[0]].writes[a]
	}
	m.steps++
	m.work += int64(procs)
	return nil
}
