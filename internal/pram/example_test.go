package pram_test

import (
	"fmt"

	"repro/internal/pram"
)

// Parallel sum takes logarithmically many steps.
func Example() {
	xs := make([]int64, 64)
	for i := range xs {
		xs[i] = int64(i + 1)
	}
	total, m, err := pram.Sum(pram.EREW, xs)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("sum=%d steps=%d work=%d\n", total, m.Steps(), m.Work())
	// Output: sum=2080 steps=6 work=63
}

// The access checker is the point of the model: concurrent reads are
// illegal on EREW but fine on CREW.
func ExampleMachine_Step() {
	erew := pram.New(pram.EREW, 1)
	err := erew.Step(2, func(c *pram.Ctx) { c.Read(0) })
	fmt.Println(err != nil)

	crew := pram.New(pram.CREW, 1)
	err = crew.Step(2, func(c *pram.Ctx) { c.Read(0) })
	fmt.Println(err != nil)
	// Output:
	// true
	// false
}
