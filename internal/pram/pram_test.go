package pram

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestStepSnapshotSemantics(t *testing.T) {
	// Classic parallel swap: both processors read old values, then write —
	// legal on EREW and yields a true swap, unlike sequential semantics.
	m := New(EREW, 2)
	m.Load(0, []int64{1, 2})
	err := m.Step(2, func(c *Ctx) {
		v := c.Read(1 - c.Proc())
		c.Write(c.Proc(), v)
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Read(0) != 2 || m.Read(1) != 1 {
		t.Errorf("swap gave %d %d", m.Read(0), m.Read(1))
	}
}

func TestEREWRejectsConcurrentRead(t *testing.T) {
	m := New(EREW, 2)
	err := m.Step(2, func(c *Ctx) { c.Read(0) })
	if !errors.Is(err, ErrAccessViolation) {
		t.Errorf("concurrent read on EREW: %v", err)
	}
	// Same program is legal on CREW.
	m2 := New(CREW, 2)
	if err := m2.Step(2, func(c *Ctx) { c.Read(0) }); err != nil {
		t.Errorf("CREW concurrent read: %v", err)
	}
}

func TestCREWRejectsConcurrentWrite(t *testing.T) {
	m := New(CREW, 1)
	err := m.Step(2, func(c *Ctx) { c.Write(0, int64(c.Proc())) })
	if !errors.Is(err, ErrAccessViolation) {
		t.Errorf("concurrent write on CREW: %v", err)
	}
}

func TestCRCWCommonSemantics(t *testing.T) {
	m := New(CRCWCommon, 1)
	// Agreeing writers: legal.
	if err := m.Step(3, func(c *Ctx) { c.Write(0, 7) }); err != nil {
		t.Fatal(err)
	}
	if m.Read(0) != 7 {
		t.Errorf("common write = %d", m.Read(0))
	}
	// Disagreeing writers: violation.
	err := m.Step(2, func(c *Ctx) { c.Write(0, int64(c.Proc())) })
	if !errors.Is(err, ErrAccessViolation) {
		t.Errorf("disagreeing common write: %v", err)
	}
}

func TestCRCWPriorityLowestWins(t *testing.T) {
	m := New(CRCWPriority, 1)
	if err := m.Step(4, func(c *Ctx) { c.Write(0, int64(10+c.Proc())) }); err != nil {
		t.Fatal(err)
	}
	if m.Read(0) != 10 {
		t.Errorf("priority write = %d, want 10 (processor 0)", m.Read(0))
	}
}

func TestStepCounting(t *testing.T) {
	m := New(EREW, 4)
	m.Step(4, func(c *Ctx) { c.Write(c.Proc(), 1) })
	m.Step(2, func(c *Ctx) { c.Write(c.Proc(), 2) })
	if m.Steps() != 2 || m.Work() != 6 {
		t.Errorf("steps=%d work=%d", m.Steps(), m.Work())
	}
}

func TestSumMatchesSequential(t *testing.T) {
	f := func(xs []int64) bool {
		var want int64
		for _, x := range xs {
			want += x
		}
		got, _, err := Sum(EREW, xs)
		return err == nil && got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSumLogarithmicSteps(t *testing.T) {
	xs := make([]int64, 1024)
	for i := range xs {
		xs[i] = 1
	}
	got, m, err := Sum(EREW, xs)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1024 {
		t.Errorf("sum = %d", got)
	}
	if m.Steps() != 10 {
		t.Errorf("steps = %d, want log2(1024) = 10", m.Steps())
	}
	if m.Work() >= 2048 {
		t.Errorf("work = %d, should be O(n)", m.Work())
	}
}

func TestMaxConstantTimeOnCRCW(t *testing.T) {
	xs := []int64{3, 9, 2, 9, 5, 1, 7}
	got, m, err := Max(CRCWCommon, xs)
	if err != nil {
		t.Fatal(err)
	}
	if got != 9 {
		t.Errorf("max = %d", got)
	}
	if m.Steps() != 3 {
		t.Errorf("steps = %d, want 3 (constant)", m.Steps())
	}
	// The same algorithm violates CREW.
	if _, _, err := Max(CREW, xs); !errors.Is(err, ErrAccessViolation) {
		t.Errorf("Max on CREW should violate: %v", err)
	}
}

func TestMaxProperty(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 || len(raw) > 32 {
			return true
		}
		xs := make([]int64, len(raw))
		want := int64(raw[0])
		for i, r := range raw {
			xs[i] = int64(r)
			if int64(r) > want {
				want = int64(r)
			}
		}
		got, _, err := Max(CRCWCommon, xs)
		return err == nil && got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestBroadcastEREW(t *testing.T) {
	m, err := Broadcast(EREW, 13, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 13; i++ {
		if m.Read(i) != 42 {
			t.Errorf("cell %d = %d", i, m.Read(i))
		}
	}
	// 1 init step + ceil(log2 13) = 4 doubling steps.
	if m.Steps() != 5 {
		t.Errorf("steps = %d, want 5", m.Steps())
	}
	if _, err := Broadcast(EREW, 0, 1); err == nil {
		t.Error("n=0 should error")
	}
}

func TestExclusiveScan(t *testing.T) {
	xs := []int64{3, 1, 7, 0, 4, 1, 6, 3}
	got, m, err := ExclusiveScan(EREW, xs)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{0, 3, 4, 11, 11, 15, 16, 22}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("scan[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	// 2*log2(8) + 1 (root clear) = 7 steps.
	if m.Steps() != 7 {
		t.Errorf("steps = %d, want 7", m.Steps())
	}
}

func TestExclusiveScanNonPowerOfTwo(t *testing.T) {
	f := func(raw []int32) bool {
		if len(raw) > 64 {
			raw = raw[:64]
		}
		xs := make([]int64, len(raw))
		for i, r := range raw {
			xs[i] = int64(r)
		}
		got, _, err := ExclusiveScan(EREW, xs)
		if err != nil {
			return false
		}
		var acc int64
		for i := range xs {
			if got[i] != acc {
				return false
			}
			acc += xs[i]
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestListRank(t *testing.T) {
	// List 0 -> 1 -> 2 -> 3 -> 4 (tail 4 self-loops).
	next := []int{1, 2, 3, 4, 4}
	ranks, m, err := ListRank(CREW, next)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{4, 3, 2, 1, 0}
	for i := range want {
		if ranks[i] != want[i] {
			t.Errorf("rank[%d] = %d, want %d", i, ranks[i], want[i])
		}
	}
	// 1 init + ceil(log2 5) = 3 jumping steps.
	if m.Steps() != 4 {
		t.Errorf("steps = %d, want 4", m.Steps())
	}
	// Pointer jumping needs concurrent reads: EREW must reject it.
	if _, _, err := ListRank(EREW, next); !errors.Is(err, ErrAccessViolation) {
		t.Errorf("ListRank on EREW: %v", err)
	}
}

func TestListRankScrambled(t *testing.T) {
	// A list threaded through the array out of order:
	// order: 3 -> 0 -> 4 -> 1 -> 2(tail)
	next := []int{4, 2, 2, 0, 1}
	ranks, _, err := ListRank(CREW, next)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{3, 1, 0, 4, 2}
	for i := range want {
		if ranks[i] != want[i] {
			t.Errorf("rank[%d] = %d, want %d", i, ranks[i], want[i])
		}
	}
	if _, _, err := ListRank(CREW, []int{5}); err == nil {
		t.Error("out-of-range next should error")
	}
}

func TestLoadBounds(t *testing.T) {
	m := New(EREW, 4)
	if err := m.Load(2, []int64{1, 2, 3}); err == nil {
		t.Error("overflowing load should error")
	}
	if err := m.Step(0, nil); err == nil {
		t.Error("zero processors should error")
	}
}
