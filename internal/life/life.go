// Package life implements both Game of Life labs from CS31 Table I: the
// sequential C-programming lab (grid representation, memory layout,
// timing experiments) and the capstone parallel lab (Pthreads-style
// row-block decomposition with a barrier per generation, plus the
// scalability study students write up).
package life

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/metrics"
	"repro/internal/pthread"
)

// Topology selects the boundary behaviour of the universe.
type Topology int

// The topologies. Torus wraps both axes; Bounded treats outside as dead.
const (
	Torus Topology = iota
	Bounded
)

// String returns the human-readable name.
func (t Topology) String() string {
	if t == Torus {
		return "torus"
	}
	return "bounded"
}

// Grid is a Game of Life universe stored as a single row-major byte
// slice — the flat-2D-array layout the sequential lab teaches.
type Grid struct {
	W, H     int
	Topology Topology
	cur      []uint8
	next     []uint8
	gen      int64
}

// NewGrid creates a dead universe of w columns by h rows.
func NewGrid(w, h int, topo Topology) (*Grid, error) {
	if w <= 0 || h <= 0 {
		return nil, errors.New("life: dimensions must be positive")
	}
	return &Grid{W: w, H: h, Topology: topo, cur: make([]uint8, w*h), next: make([]uint8, w*h)}, nil
}

// Generation returns how many steps have been taken.
func (g *Grid) Generation() int64 { return g.gen }

// Set sets the cell at column x, row y.
func (g *Grid) Set(x, y int, alive bool) {
	if x < 0 || x >= g.W || y < 0 || y >= g.H {
		panic(fmt.Sprintf("life: (%d,%d) outside %dx%d", x, y, g.W, g.H))
	}
	if alive {
		g.cur[y*g.W+x] = 1
	} else {
		g.cur[y*g.W+x] = 0
	}
}

// Get reports whether the cell at (x, y) is alive.
func (g *Grid) Get(x, y int) bool {
	return g.cur[y*g.W+x] == 1
}

// Population counts live cells.
func (g *Grid) Population() int {
	n := 0
	for _, c := range g.cur {
		n += int(c)
	}
	return n
}

// neighbors counts the live neighbours of (x, y) under the topology.
func (g *Grid) neighbors(x, y int) int {
	n := 0
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			if dx == 0 && dy == 0 {
				continue
			}
			nx, ny := x+dx, y+dy
			if g.Topology == Torus {
				nx = (nx + g.W) % g.W
				ny = (ny + g.H) % g.H
			} else if nx < 0 || nx >= g.W || ny < 0 || ny >= g.H {
				continue
			}
			n += int(g.cur[ny*g.W+nx])
		}
	}
	return n
}

// stepRows computes the next state of rows [lo, hi) into the next buffer.
func (g *Grid) stepRows(lo, hi int) {
	for y := lo; y < hi; y++ {
		for x := 0; x < g.W; x++ {
			n := g.neighbors(x, y)
			alive := g.cur[y*g.W+x] == 1
			var v uint8
			if n == 3 || (alive && n == 2) {
				v = 1
			}
			g.next[y*g.W+x] = v
		}
	}
}

func (g *Grid) swap() {
	g.cur, g.next = g.next, g.cur
	g.gen++
}

// Step advances one generation sequentially.
func (g *Grid) Step() {
	g.stepRows(0, g.H)
	g.swap()
}

// StepN advances n generations sequentially.
func (g *Grid) StepN(n int) {
	for i := 0; i < n; i++ {
		g.Step()
	}
}

// StepNParallel advances n generations using `threads` pthread-style
// workers with a row-block decomposition: each worker owns a contiguous
// band of rows; a cyclic barrier separates compute from the buffer swap,
// which the barrier's serial thread performs — the exact structure of the
// CS31 parallel lab solution.
func (g *Grid) StepNParallel(n, threads int) error {
	if threads <= 0 {
		return errors.New("life: thread count must be positive")
	}
	if threads > g.H {
		threads = g.H
	}
	barrier, err := pthread.NewBarrier(threads)
	if err != nil {
		return err
	}
	ths := pthread.Spawn(threads, func(_ pthread.ID, i int) {
		lo := i * g.H / threads
		hi := (i + 1) * g.H / threads
		for gen := 0; gen < n; gen++ {
			g.stepRows(lo, hi)
			if barrier.Wait() == pthread.BarrierSerial {
				g.swap()
			}
			barrier.Wait() // no one reads cur until the swap is published
		}
	})
	return pthread.JoinAll(ths)
}

// stepRowsStrided computes the next state of rows t, t+stride, t+2*stride
// ... — the interleaved decomposition whose fine-grained row ownership
// shreds spatial locality and, on real hardware, invites false sharing at
// every band boundary. It exists as the ablation partner of the row-block
// decomposition.
func (g *Grid) stepRowsStrided(t, stride int) {
	for y := t; y < g.H; y += stride {
		g.stepRows(y, y+1)
	}
}

// StepNParallelStrided is StepNParallel with the strided (interleaved
// rows) partitioning instead of row blocks. Results are identical; the
// memory behaviour is not — which is the point of the ablation.
func (g *Grid) StepNParallelStrided(n, threads int) error {
	if threads <= 0 {
		return errors.New("life: thread count must be positive")
	}
	if threads > g.H {
		threads = g.H
	}
	barrier, err := pthread.NewBarrier(threads)
	if err != nil {
		return err
	}
	ths := pthread.Spawn(threads, func(_ pthread.ID, i int) {
		for gen := 0; gen < n; gen++ {
			g.stepRowsStrided(i, threads)
			if barrier.Wait() == pthread.BarrierSerial {
				g.swap()
			}
			barrier.Wait()
		}
	})
	return pthread.JoinAll(ths)
}

// Clone deep-copies the universe.
func (g *Grid) Clone() *Grid {
	c := &Grid{W: g.W, H: g.H, Topology: g.Topology, gen: g.gen}
	c.cur = append([]uint8(nil), g.cur...)
	c.next = make([]uint8, len(g.next))
	return c
}

// Equal compares live-cell states.
func (g *Grid) Equal(o *Grid) bool {
	if g.W != o.W || g.H != o.H {
		return false
	}
	for i := range g.cur {
		if g.cur[i] != o.cur[i] {
			return false
		}
	}
	return true
}

// String renders the universe in plaintext ('.' dead, 'O' alive).
func (g *Grid) String() string {
	var b strings.Builder
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			if g.Get(x, y) {
				b.WriteByte('O')
			} else {
				b.WriteByte('.')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Parse reads a plaintext pattern ('.' or ' ' dead; 'O', '*' or 'X'
// alive; '!' comment lines ignored) into a new bounded-size grid.
func Parse(s string, topo Topology) (*Grid, error) {
	var rows []string
	for _, ln := range strings.Split(strings.TrimRight(s, "\n"), "\n") {
		if strings.HasPrefix(strings.TrimSpace(ln), "!") {
			continue
		}
		rows = append(rows, ln)
	}
	if len(rows) == 0 {
		return nil, errors.New("life: empty pattern")
	}
	w := 0
	for _, r := range rows {
		if len(r) > w {
			w = len(r)
		}
	}
	if w == 0 {
		return nil, errors.New("life: pattern has no columns")
	}
	g, err := NewGrid(w, len(rows), topo)
	if err != nil {
		return nil, err
	}
	for y, r := range rows {
		for x, ch := range r {
			switch ch {
			case 'O', '*', 'X', 'o':
				g.Set(x, y, true)
			case '.', ' ', '_':
			default:
				return nil, fmt.Errorf("life: bad pattern char %q at (%d,%d)", ch, x, y)
			}
		}
	}
	return g, nil
}

// Place stamps a pattern grid onto g with its top-left at (x, y),
// wrapping under torus topology.
func (g *Grid) Place(p *Grid, x, y int) error {
	for py := 0; py < p.H; py++ {
		for px := 0; px < p.W; px++ {
			tx, ty := x+px, y+py
			if g.Topology == Torus {
				tx = (tx%g.W + g.W) % g.W
				ty = (ty%g.H + g.H) % g.H
			} else if tx < 0 || tx >= g.W || ty < 0 || ty >= g.H {
				return fmt.Errorf("life: pattern exceeds grid at (%d,%d)", tx, ty)
			}
			if p.Get(px, py) {
				g.Set(tx, ty, true)
			}
		}
	}
	return nil
}

// Seed fills the universe pseudo-randomly with the given live-cell
// density (0..1), deterministically from seed.
func (g *Grid) Seed(density float64, seed uint64) {
	if seed == 0 {
		seed = 1
	}
	s := seed
	threshold := uint64(density * float64(^uint64(0)>>1))
	for i := range g.cur {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		if s>>1 < threshold {
			g.cur[i] = 1
		} else {
			g.cur[i] = 0
		}
	}
}

// Well-known patterns for tests and examples.
const (
	PatternBlinker = "OOO"
	PatternBlock   = "OO\nOO"
	PatternGlider  = ".O.\n..O\nOOO"
	PatternToad    = ".OOO\nOOO."
	PatternRPent   = ".OO\nOO.\n.O."
)

// StudyResult is the outcome of the lab's scalability experiment.
type StudyResult struct {
	N           int // grid is N x N
	Generations int
	Table       metrics.ScalabilityTable
}

// ScalabilityStudy runs the parallel lab's experiment: an n×n torus
// seeded at 30% density, advanced `gens` generations at each thread
// count, timed, and reduced to the speedup/efficiency table. Thread
// counts must include 1 (the sequential baseline) — validated up front
// rather than surfacing later as an opaque table error. Every run's
// final grid is also checked against an untimed sequential reference,
// so a decomposition bug fails the study instead of silently skewing
// the table.
func ScalabilityStudy(n, gens int, threadCounts []int) (StudyResult, error) {
	if len(threadCounts) == 0 {
		return StudyResult{}, errors.New("life: no thread counts")
	}
	hasBaseline := false
	for _, tc := range threadCounts {
		if tc < 1 {
			return StudyResult{}, fmt.Errorf("life: invalid thread count %d", tc)
		}
		if tc == 1 {
			hasBaseline = true
		}
	}
	if !hasBaseline {
		return StudyResult{}, errors.New("life: thread counts must include 1 (the sequential baseline)")
	}
	ref, err := NewGrid(n, n, Torus)
	if err != nil {
		return StudyResult{}, err
	}
	ref.Seed(0.3, 42)
	ref.StepN(gens)

	var ms []metrics.Measurement
	for _, tc := range threadCounts {
		g, err := NewGrid(n, n, Torus)
		if err != nil {
			return StudyResult{}, err
		}
		g.Seed(0.3, 42)
		start := time.Now()
		if tc == 1 {
			g.StepN(gens)
		} else if err := g.StepNParallel(gens, tc); err != nil {
			return StudyResult{}, err
		}
		ms = append(ms, metrics.Measurement{Workers: tc, Elapsed: time.Since(start)})
		if !g.Equal(ref) {
			return StudyResult{}, fmt.Errorf("life: %d-thread run diverged from the sequential baseline", tc)
		}
	}
	tbl, err := metrics.BuildTable(ms)
	if err != nil {
		return StudyResult{}, err
	}
	return StudyResult{N: n, Generations: gens, Table: tbl}, nil
}
