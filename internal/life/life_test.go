package life

import (
	"strings"
	"testing"
	"testing/quick"
)

func mustGrid(t *testing.T, w, h int, topo Topology) *Grid {
	t.Helper()
	g, err := NewGrid(w, h, topo)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBlinkerOscillates(t *testing.T) {
	g := mustGrid(t, 5, 5, Bounded)
	p, err := Parse(PatternBlinker, Bounded)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Place(p, 1, 2); err != nil {
		t.Fatal(err)
	}
	start := g.Clone()
	g.Step()
	// Horizontal blinker becomes vertical.
	if !g.Get(2, 1) || !g.Get(2, 2) || !g.Get(2, 3) || g.Get(1, 2) || g.Get(3, 2) {
		t.Errorf("after 1 step:\n%s", g)
	}
	g.Step()
	if !g.Equal(start) {
		t.Errorf("blinker period 2 broken:\n%s", g)
	}
	if g.Generation() != 2 {
		t.Errorf("generation = %d", g.Generation())
	}
}

func TestBlockIsStill(t *testing.T) {
	g := mustGrid(t, 6, 6, Torus)
	p, _ := Parse(PatternBlock, Torus)
	g.Place(p, 2, 2)
	start := g.Clone()
	g.StepN(10)
	if !g.Equal(start) {
		t.Errorf("block should be a still life:\n%s", g)
	}
}

func TestGliderTranslatesOnTorus(t *testing.T) {
	// A glider moves (+1, +1) every 4 generations; on a torus it returns
	// home after 4*W generations when W == H.
	const n = 8
	g := mustGrid(t, n, n, Torus)
	p, _ := Parse(PatternGlider, Torus)
	g.Place(p, 0, 0)
	start := g.Clone()
	g.StepN(4 * n)
	if !g.Equal(start) {
		t.Errorf("glider did not return home after %d gens:\n%s", 4*n, g)
	}
	if g.Population() != 5 {
		t.Errorf("glider population = %d, want 5", g.Population())
	}
}

func TestBoundedVsTorusDiffer(t *testing.T) {
	// A glider at the edge dies in a bounded world, survives on a torus.
	mk := func(topo Topology) *Grid {
		g := mustGrid(t, 6, 6, topo)
		p, _ := Parse(PatternGlider, topo)
		g.Place(p, 3, 3)
		g.StepN(20)
		return g
	}
	torus, bounded := mk(Torus), mk(Bounded)
	if torus.Population() != 5 {
		t.Errorf("torus glider population = %d", torus.Population())
	}
	if bounded.Population() >= 5 && bounded.Equal(torus) {
		t.Error("bounded and torus evolution should diverge at the edge")
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{"", "!only a comment", "ab\ncd"} {
		if _, err := Parse(bad, Torus); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
	g, err := Parse("!comment\n.O.\nO.O", Bounded)
	if err != nil {
		t.Fatal(err)
	}
	if g.W != 3 || g.H != 2 || g.Population() != 3 {
		t.Errorf("parsed %dx%d pop %d", g.W, g.H, g.Population())
	}
}

func TestPlaceOutOfBoundsBounded(t *testing.T) {
	g := mustGrid(t, 4, 4, Bounded)
	p, _ := Parse(PatternBlock, Bounded)
	if err := g.Place(p, 3, 3); err == nil {
		t.Error("overflow placement should error on bounded grid")
	}
	gt := mustGrid(t, 4, 4, Torus)
	if err := gt.Place(p, 3, 3); err != nil {
		t.Errorf("torus placement should wrap: %v", err)
	}
	if gt.Population() != 4 {
		t.Errorf("wrapped block population = %d", gt.Population())
	}
}

func TestSeedDeterministicDensity(t *testing.T) {
	g1 := mustGrid(t, 100, 100, Torus)
	g2 := mustGrid(t, 100, 100, Torus)
	g1.Seed(0.3, 7)
	g2.Seed(0.3, 7)
	if !g1.Equal(g2) {
		t.Error("same seed should give same universe")
	}
	pop := g1.Population()
	if pop < 2300 || pop > 3700 {
		t.Errorf("density 0.3 gave population %d of 10000", pop)
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	for _, threads := range []int{2, 3, 4, 7} {
		seq := mustGrid(t, 48, 36, Torus)
		seq.Seed(0.35, 99)
		par := seq.Clone()
		seq.StepN(12)
		if err := par.StepNParallel(12, threads); err != nil {
			t.Fatal(err)
		}
		if !par.Equal(seq) {
			t.Errorf("threads=%d: parallel result diverges from sequential", threads)
		}
		if par.Generation() != seq.Generation() {
			t.Errorf("generation mismatch: %d vs %d", par.Generation(), seq.Generation())
		}
	}
}

func TestParallelMoreThreadsThanRows(t *testing.T) {
	g := mustGrid(t, 8, 3, Torus)
	g.Seed(0.5, 1)
	want := g.Clone()
	want.StepN(5)
	if err := g.StepNParallel(5, 64); err != nil {
		t.Fatal(err)
	}
	if !g.Equal(want) {
		t.Error("thread clamp broke correctness")
	}
}

func TestParallelRejectsBadThreads(t *testing.T) {
	g := mustGrid(t, 4, 4, Torus)
	if err := g.StepNParallel(1, 0); err == nil {
		t.Error("0 threads should error")
	}
}

func TestConservationProperties(t *testing.T) {
	// Property: population stays within [0, W*H]; a dead universe stays
	// dead; evolution is deterministic.
	f := func(seed uint64) bool {
		a := mustGridQ(24, 24)
		b := mustGridQ(24, 24)
		a.Seed(0.4, seed)
		b.Seed(0.4, seed)
		a.StepN(3)
		b.StepN(3)
		if !a.Equal(b) {
			return false
		}
		p := a.Population()
		return p >= 0 && p <= 24*24
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
	dead := mustGridQ(10, 10)
	dead.StepN(5)
	if dead.Population() != 0 {
		t.Error("dead universe must stay dead")
	}
}

func mustGridQ(w, h int) *Grid {
	g, err := NewGrid(w, h, Torus)
	if err != nil {
		panic(err)
	}
	return g
}

func TestStringRoundTrip(t *testing.T) {
	g := mustGrid(t, 4, 3, Bounded)
	g.Set(0, 0, true)
	g.Set(3, 2, true)
	s := g.String()
	back, err := Parse(s, Bounded)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(g) {
		t.Errorf("round trip failed:\n%s\nvs\n%s", s, back)
	}
	if strings.Count(s, "\n") != 3 {
		t.Errorf("string rows: %q", s)
	}
}

func TestScalabilityStudySmall(t *testing.T) {
	res, err := ScalabilityStudy(64, 4, []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Table.Rows) != 3 {
		t.Fatalf("rows: %+v", res.Table.Rows)
	}
	if res.Table.Rows[0].Speedup != 1 {
		t.Errorf("baseline speedup = %f", res.Table.Rows[0].Speedup)
	}
	// On a single-core container wall-clock speedup can be <= 1; the table
	// must still be well-formed (positive times everywhere).
	for _, r := range res.Table.Rows {
		if r.Elapsed <= 0 {
			t.Errorf("non-positive time at %d workers", r.Workers)
		}
	}
}

func TestRPentominoIsMethuselah(t *testing.T) {
	// The R-pentomino grows well beyond its initial 5 cells — the timing
	// experiment workload from the sequential lab.
	g := mustGrid(t, 64, 64, Torus)
	p, _ := Parse(PatternRPent, Torus)
	g.Place(p, 30, 30)
	g.StepN(100)
	if g.Population() <= 20 {
		t.Errorf("R-pentomino after 100 gens has population %d, expected growth", g.Population())
	}
}

func TestStridedPartitioningMatchesSequential(t *testing.T) {
	for _, threads := range []int{2, 3, 5, 8} {
		seq := mustGrid(t, 40, 31, Torus)
		seq.Seed(0.4, 77)
		par := seq.Clone()
		seq.StepN(9)
		if err := par.StepNParallelStrided(9, threads); err != nil {
			t.Fatal(err)
		}
		if !par.Equal(seq) {
			t.Errorf("threads=%d: strided decomposition diverges", threads)
		}
	}
	g := mustGrid(t, 4, 4, Torus)
	if err := g.StepNParallelStrided(1, 0); err == nil {
		t.Error("0 threads should error")
	}
}

func TestScalabilityStudyValidation(t *testing.T) {
	if _, err := ScalabilityStudy(16, 2, nil); err == nil {
		t.Error("empty thread counts should error")
	}
	if _, err := ScalabilityStudy(16, 2, []int{2, 4}); err == nil ||
		!strings.Contains(err.Error(), "include 1") {
		t.Errorf("missing baseline should error up front, got %v", err)
	}
	if _, err := ScalabilityStudy(16, 2, []int{1, 0}); err == nil {
		t.Error("non-positive thread count should error")
	}
	if _, err := ScalabilityStudy(16, 2, []int{1, -3}); err == nil {
		t.Error("negative thread count should error")
	}
}
