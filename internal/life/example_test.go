package life_test

import (
	"fmt"

	"repro/internal/life"
)

// A blinker oscillates with period two.
func Example() {
	g, err := life.NewGrid(5, 3, life.Bounded)
	if err != nil {
		fmt.Println(err)
		return
	}
	p, _ := life.Parse(life.PatternBlinker, life.Bounded)
	g.Place(p, 1, 1)
	fmt.Print(g)
	g.Step()
	fmt.Print(g)
	// Output:
	// .....
	// .OOO.
	// .....
	// ..O..
	// ..O..
	// ..O..
}

// The parallel engine produces the same universe as the sequential one.
func ExampleGrid_StepNParallel() {
	g, _ := life.NewGrid(64, 64, life.Torus)
	g.Seed(0.3, 42)
	ref := g.Clone()
	ref.StepN(5)
	if err := g.StepNParallel(5, 4); err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(g.Equal(ref))
	// Output: true
}
