// Package clist implements the CS31 "Python lists in C" lab: a dynamic
// array (the CPython list object) built over an explicit allocator model,
// with observable capacity-growth policy, element moves, and memory-layout
// accounting. The lab's point is that the convenient Python list is a
// contiguous C array underneath, with realloc-and-memcpy costs the
// programmer can measure; this package exposes exactly those costs.
package clist

import (
	"errors"
	"fmt"
)

// GrowthPolicy decides the new capacity when an append finds the array
// full. The lab compares doubling against fixed-increment growth to show
// why amortized-O(1) append needs geometric growth.
type GrowthPolicy interface {
	// Grow returns the new capacity for a list that has the given capacity
	// and needs room for at least need elements. The result must be >= need.
	Grow(capacity, need int) int
	// Name identifies the policy in experiment reports.
	Name() string
}

// Doubling doubles the capacity (starting from a small minimum) — the
// geometric policy that gives amortized-constant appends.
type Doubling struct{}

// Grow implements GrowthPolicy.
func (Doubling) Grow(capacity, need int) int {
	c := capacity
	if c < 4 {
		c = 4
	}
	for c < need {
		c *= 2
	}
	return c
}

// Name implements GrowthPolicy.
func (Doubling) Name() string { return "doubling" }

// FixedIncrement grows by a constant number of slots — the naive policy
// whose appends are amortized O(n).
type FixedIncrement struct{ Step int }

// Grow implements GrowthPolicy.
func (p FixedIncrement) Grow(capacity, need int) int {
	step := p.Step
	if step <= 0 {
		step = 8
	}
	c := capacity
	for c < need {
		c += step
	}
	return c
}

// Name implements GrowthPolicy.
func (p FixedIncrement) Name() string { return fmt.Sprintf("fixed+%d", p.Step) }

// CPython grows by ~1/8 over-allocation, mirroring list_resize in
// CPython's listobject.c.
type CPython struct{}

// Grow implements GrowthPolicy.
func (CPython) Grow(capacity, need int) int {
	c := capacity
	if c < need {
		c = need + (need >> 3) + 6
	}
	return c
}

// Name implements GrowthPolicy.
func (CPython) Name() string { return "cpython" }

// Stats records the allocator-visible cost of operations on a list, the
// numbers students report in the lab write-up.
type Stats struct {
	Reallocs     int   // number of buffer replacements
	ElemsCopied  int64 // elements moved by realloc or insert/remove shifting
	BytesAlloced int64 // total bytes ever requested from the allocator
	PeakBytes    int64 // high-water mark of live allocation
}

// ElemSize is the modelled element size in bytes (a C int pointer slot).
const ElemSize = 8

// List is the dynamic array. The zero value is not ready to use; call New.
type List struct {
	data   []int64
	length int
	policy GrowthPolicy
	stats  Stats
}

// New creates an empty list with the given growth policy.
func New(policy GrowthPolicy) *List {
	if policy == nil {
		policy = Doubling{}
	}
	return &List{policy: policy}
}

// ErrRange is returned for out-of-range indices.
var ErrRange = errors.New("clist: index out of range")

// Len returns the number of elements.
func (l *List) Len() int { return l.length }

// Cap returns the current capacity in elements.
func (l *List) Cap() int { return len(l.data) }

// Stats returns a copy of the accumulated cost counters.
func (l *List) Stats() Stats { return l.stats }

// ensure grows the backing array so it can hold need elements, charging
// the realloc to the stats the way the lab's malloc wrapper does.
func (l *List) ensure(need int) {
	if need <= len(l.data) {
		return
	}
	newCap := l.policy.Grow(len(l.data), need)
	if newCap < need {
		newCap = need
	}
	fresh := make([]int64, newCap)
	copy(fresh, l.data[:l.length])
	l.stats.Reallocs++
	l.stats.ElemsCopied += int64(l.length)
	l.stats.BytesAlloced += int64(newCap) * ElemSize
	if live := int64(newCap) * ElemSize; live > l.stats.PeakBytes {
		l.stats.PeakBytes = live
	}
	l.data = fresh
}

// Append adds v at the end (Python list.append).
func (l *List) Append(v int64) {
	l.ensure(l.length + 1)
	l.data[l.length] = v
	l.length++
}

// Insert places v before index i, shifting the tail right
// (Python list.insert). i == Len() appends.
func (l *List) Insert(i int, v int64) error {
	if i < 0 || i > l.length {
		return fmt.Errorf("%w: insert at %d, len %d", ErrRange, i, l.length)
	}
	l.ensure(l.length + 1)
	copy(l.data[i+1:l.length+1], l.data[i:l.length])
	l.stats.ElemsCopied += int64(l.length - i)
	l.data[i] = v
	l.length++
	return nil
}

// Get returns the element at index i, supporting Python's negative
// indexing (-1 is the last element).
func (l *List) Get(i int) (int64, error) {
	i, err := l.index(i)
	if err != nil {
		return 0, err
	}
	return l.data[i], nil
}

// Set replaces the element at index i (negative indexing allowed).
func (l *List) Set(i int, v int64) error {
	i, err := l.index(i)
	if err != nil {
		return err
	}
	l.data[i] = v
	return nil
}

func (l *List) index(i int) (int, error) {
	if i < 0 {
		i += l.length
	}
	if i < 0 || i >= l.length {
		return 0, fmt.Errorf("%w: %d, len %d", ErrRange, i, l.length)
	}
	return i, nil
}

// Pop removes and returns the element at index i (default semantics of
// Python list.pop(i)); the tail shifts left.
func (l *List) Pop(i int) (int64, error) {
	i, err := l.index(i)
	if err != nil {
		return 0, err
	}
	v := l.data[i]
	copy(l.data[i:l.length-1], l.data[i+1:l.length])
	l.stats.ElemsCopied += int64(l.length - 1 - i)
	l.length--
	return v, nil
}

// Remove deletes the first occurrence of v (Python list.remove), or
// returns an error when absent.
func (l *List) Remove(v int64) error {
	for i := 0; i < l.length; i++ {
		if l.data[i] == v {
			_, err := l.Pop(i)
			return err
		}
	}
	return fmt.Errorf("clist: value %d not in list", v)
}

// IndexOf returns the first index of v, or -1.
func (l *List) IndexOf(v int64) int {
	for i := 0; i < l.length; i++ {
		if l.data[i] == v {
			return i
		}
	}
	return -1
}

// Slice returns a copy of elements [lo, hi) (Python list[lo:hi] with
// clamping semantics).
func (l *List) Slice(lo, hi int) []int64 {
	if lo < 0 {
		lo = 0
	}
	if hi > l.length {
		hi = l.length
	}
	if lo >= hi {
		return nil
	}
	out := make([]int64, hi-lo)
	copy(out, l.data[lo:hi])
	return out
}

// Extend appends every element of other (Python list.extend).
func (l *List) Extend(other []int64) {
	l.ensure(l.length + len(other))
	copy(l.data[l.length:], other)
	l.length += len(other)
}

// Reverse reverses in place.
func (l *List) Reverse() {
	for i, j := 0, l.length-1; i < j; i, j = i+1, j-1 {
		l.data[i], l.data[j] = l.data[j], l.data[i]
	}
}

// Layout describes the memory picture of the list for the lab's "draw the
// memory diagram" exercise: a header (pointer, length, capacity) plus a
// contiguous payload.
type Layout struct {
	HeaderBytes  int
	PayloadBytes int
	WastedBytes  int // allocated but unused capacity
}

// Layout reports the current memory layout.
func (l *List) Layout() Layout {
	return Layout{
		HeaderBytes:  3 * 8, // data pointer, length, capacity
		PayloadBytes: l.length * ElemSize,
		WastedBytes:  (len(l.data) - l.length) * ElemSize,
	}
}

// AppendCost runs the lab's growth-policy experiment: append n elements to
// a fresh list under the policy and report the cost counters.
func AppendCost(policy GrowthPolicy, n int) Stats {
	l := New(policy)
	for i := 0; i < n; i++ {
		l.Append(int64(i))
	}
	return l.Stats()
}
