package clist

import (
	"testing"
	"testing/quick"
)

func TestAppendGetLen(t *testing.T) {
	l := New(Doubling{})
	for i := 0; i < 100; i++ {
		l.Append(int64(i * i))
	}
	if l.Len() != 100 {
		t.Fatalf("Len = %d", l.Len())
	}
	for i := 0; i < 100; i++ {
		v, err := l.Get(i)
		if err != nil || v != int64(i*i) {
			t.Errorf("Get(%d) = %d, %v", i, v, err)
		}
	}
	if _, err := l.Get(100); err == nil {
		t.Error("Get past end should error")
	}
}

func TestNegativeIndexing(t *testing.T) {
	l := New(nil)
	l.Extend([]int64{10, 20, 30})
	v, err := l.Get(-1)
	if err != nil || v != 30 {
		t.Errorf("Get(-1) = %d, %v", v, err)
	}
	v, _ = l.Get(-3)
	if v != 10 {
		t.Errorf("Get(-3) = %d", v)
	}
	if _, err := l.Get(-4); err == nil {
		t.Error("Get(-4) should error")
	}
	if err := l.Set(-1, 99); err != nil {
		t.Fatal(err)
	}
	if v, _ := l.Get(2); v != 99 {
		t.Errorf("Set(-1) did not stick: %d", v)
	}
}

func TestInsertPopShift(t *testing.T) {
	l := New(nil)
	l.Extend([]int64{1, 2, 4})
	if err := l.Insert(2, 3); err != nil {
		t.Fatal(err)
	}
	if got := l.Slice(0, 4); !eq(got, []int64{1, 2, 3, 4}) {
		t.Errorf("after insert: %v", got)
	}
	if err := l.Insert(4, 5); err != nil { // insert at end == append
		t.Fatal(err)
	}
	if err := l.Insert(6, 9); err == nil {
		t.Error("insert past end should error")
	}
	v, err := l.Pop(0)
	if err != nil || v != 1 {
		t.Errorf("Pop(0) = %d, %v", v, err)
	}
	v, _ = l.Pop(-1)
	if v != 5 {
		t.Errorf("Pop(-1) = %d", v)
	}
	if got := l.Slice(0, l.Len()); !eq(got, []int64{2, 3, 4}) {
		t.Errorf("after pops: %v", got)
	}
}

func TestRemoveIndexOf(t *testing.T) {
	l := New(nil)
	l.Extend([]int64{5, 6, 5, 7})
	if i := l.IndexOf(5); i != 0 {
		t.Errorf("IndexOf(5) = %d", i)
	}
	if err := l.Remove(5); err != nil {
		t.Fatal(err)
	}
	if got := l.Slice(0, l.Len()); !eq(got, []int64{6, 5, 7}) {
		t.Errorf("after remove: %v", got)
	}
	if err := l.Remove(42); err == nil {
		t.Error("removing absent value should error")
	}
}

func TestReverse(t *testing.T) {
	l := New(nil)
	l.Extend([]int64{1, 2, 3, 4, 5})
	l.Reverse()
	if got := l.Slice(0, 5); !eq(got, []int64{5, 4, 3, 2, 1}) {
		t.Errorf("reversed: %v", got)
	}
	// Reversal is an involution (property test over random contents).
	f := func(xs []int64) bool {
		l := New(nil)
		l.Extend(xs)
		l.Reverse()
		l.Reverse()
		return eq(l.Slice(0, l.Len()), xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSliceClamping(t *testing.T) {
	l := New(nil)
	l.Extend([]int64{1, 2, 3})
	if got := l.Slice(-5, 99); !eq(got, []int64{1, 2, 3}) {
		t.Errorf("clamped slice: %v", got)
	}
	if got := l.Slice(2, 1); got != nil {
		t.Errorf("empty slice: %v", got)
	}
}

func TestGrowthPolicyCosts(t *testing.T) {
	const n = 10000
	dbl := AppendCost(Doubling{}, n)
	fix := AppendCost(FixedIncrement{Step: 8}, n)
	cpy := AppendCost(CPython{}, n)

	// Doubling: O(log n) reallocs, O(n) total copies.
	if dbl.Reallocs > 20 {
		t.Errorf("doubling reallocs = %d, want ~log2(n)", dbl.Reallocs)
	}
	if dbl.ElemsCopied > 2*n {
		t.Errorf("doubling copies = %d, want < 2n", dbl.ElemsCopied)
	}
	// Fixed increment: O(n) reallocs, O(n^2) copies — the lab's punchline.
	if fix.Reallocs < n/8-1 {
		t.Errorf("fixed reallocs = %d, want ~n/8", fix.Reallocs)
	}
	if fix.ElemsCopied < int64(n)*int64(n)/20 {
		t.Errorf("fixed copies = %d, want Θ(n²)", fix.ElemsCopied)
	}
	if fix.ElemsCopied < 50*dbl.ElemsCopied {
		t.Errorf("fixed (%d) should dwarf doubling (%d)", fix.ElemsCopied, dbl.ElemsCopied)
	}
	// CPython sits between but stays amortized-linear.
	if cpy.ElemsCopied > 20*int64(n) {
		t.Errorf("cpython copies = %d, want O(n)", cpy.ElemsCopied)
	}
}

func TestStatsPeakAndLayout(t *testing.T) {
	l := New(Doubling{})
	for i := 0; i < 100; i++ {
		l.Append(int64(i))
	}
	st := l.Stats()
	if st.PeakBytes < int64(l.Cap())*ElemSize {
		t.Errorf("peak %d < live %d", st.PeakBytes, l.Cap()*ElemSize)
	}
	lay := l.Layout()
	if lay.PayloadBytes != 100*ElemSize {
		t.Errorf("payload = %d", lay.PayloadBytes)
	}
	if lay.WastedBytes != (l.Cap()-100)*ElemSize {
		t.Errorf("wasted = %d", lay.WastedBytes)
	}
	if lay.HeaderBytes == 0 {
		t.Error("header must be nonzero")
	}
}

func TestGrowPoliciesAlwaysSufficient(t *testing.T) {
	policies := []GrowthPolicy{Doubling{}, FixedIncrement{Step: 8}, FixedIncrement{}, CPython{}}
	f := func(cap8, need8 uint8) bool {
		capacity, need := int(cap8), int(need8)+1
		for _, p := range policies {
			if got := p.Grow(capacity, need); got < need {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPythonSemanticsSequence(t *testing.T) {
	// Mirror of a short Python session from the lab handout.
	l := New(CPython{})
	for _, v := range []int64{1, 2, 3} {
		l.Append(v)
	}
	_ = l.Insert(0, 0)      // [0 1 2 3]
	_, _ = l.Pop(1)         // [0 2 3]
	_ = l.Remove(3)         // [0 2]
	l.Extend([]int64{8, 9}) // [0 2 8 9]
	l.Reverse()             // [9 8 2 0]
	if got := l.Slice(0, l.Len()); !eq(got, []int64{9, 8, 2, 0}) {
		t.Errorf("session result: %v", got)
	}
}

func eq(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestModelBasedAgainstSliceOracle drives a random operation sequence
// against both the List and a plain Go slice, checking every observation
// agrees — the strongest correctness net for container code.
func TestModelBasedAgainstSliceOracle(t *testing.T) {
	type op struct {
		Kind  uint8
		Index int16
		Value int64
	}
	f := func(ops []op) bool {
		l := New(Doubling{})
		var oracle []int64
		for _, o := range ops {
			switch o.Kind % 6 {
			case 0: // append
				l.Append(o.Value)
				oracle = append(oracle, o.Value)
			case 1: // insert
				if len(oracle) == 0 {
					continue
				}
				i := int(o.Index) % (len(oracle) + 1)
				if i < 0 {
					i += len(oracle) + 1
				}
				if err := l.Insert(i, o.Value); err != nil {
					return false
				}
				oracle = append(oracle[:i], append([]int64{o.Value}, oracle[i:]...)...)
			case 2: // pop
				if len(oracle) == 0 {
					continue
				}
				i := int(o.Index) % len(oracle)
				if i < 0 {
					i += len(oracle)
				}
				got, err := l.Pop(i)
				if err != nil || got != oracle[i] {
					return false
				}
				oracle = append(oracle[:i], oracle[i+1:]...)
			case 3: // get
				if len(oracle) == 0 {
					continue
				}
				i := int(o.Index) % len(oracle)
				if i < 0 {
					i += len(oracle)
				}
				got, err := l.Get(i)
				if err != nil || got != oracle[i] {
					return false
				}
			case 4: // set
				if len(oracle) == 0 {
					continue
				}
				i := int(o.Index) % len(oracle)
				if i < 0 {
					i += len(oracle)
				}
				if err := l.Set(i, o.Value); err != nil {
					return false
				}
				oracle[i] = o.Value
			case 5: // reverse
				l.Reverse()
				for x, y := 0, len(oracle)-1; x < y; x, y = x+1, y-1 {
					oracle[x], oracle[y] = oracle[y], oracle[x]
				}
			}
			if l.Len() != len(oracle) {
				return false
			}
		}
		return eq(l.Slice(0, l.Len()), oracle)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
