// Package merkle maintains the per-node anti-entropy digest: a fixed
// array of buckets over the DHT ring-position space, where each bucket
// holds the XOR of a strong per-entry hash of every (key, value) whose
// ring position falls in the bucket's arc.
//
// XOR folding makes the digest incrementally maintainable in O(1) per
// mutation — a write XORs out the old entry's hash and XORs in the new
// one, so the tracker rides inside the server's shard-locked apply path
// without ever rescanning the store. Any contiguous bucket range folds
// to a range hash in O(range), which is what the TREE wire verb serves:
// two replicas compare a range, split it in half on mismatch, and walk
// down to individual buckets, exchanging key lists (SCAN) only for the
// arcs that actually differ.
//
// Bucketing by ring position (not by raw key hash) means a replica
// pair's shared keys — the keys whose replica arcs contain both nodes —
// occupy contiguous bucket spans, so anti-entropy between two nodes
// touches the buckets of their shared arcs and skips the rest.
package merkle

import (
	"hash/fnv"
	"sync/atomic"

	"repro/internal/db"
)

// Buckets is the fixed cluster-wide bucket count. Every node uses the
// same constant, so bucket i covers the same ring arc on every replica
// and range hashes are directly comparable.
const Buckets = 4096

// bucketShift maps a 32-bit ring position to a bucket index.
const bucketShift = 32 - 12 // log2(Buckets) == 12

// BucketOf returns the bucket whose arc contains key's ring position.
func BucketOf(key string) int {
	return int(db.RingPos(key) >> bucketShift)
}

// EntryHash is the per-entry digest folded into a bucket: a 64-bit
// FNV-1a over key, a zero separator, and the stored value, finished
// with a splitmix64 avalanche so near-identical entries (same key, one
// value byte changed) flip about half the bits they contribute.
func EntryHash(key, value string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	h.Write([]byte{0})
	h.Write([]byte(value))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Tree is one node's digest. Buckets are updated with atomic XOR
// (CAS loops) because the server's store shards lock independently:
// two mutations on different shards may land in the same bucket
// concurrently. Reads during concurrent writes see a momentary view —
// fine for anti-entropy, where a transient mismatch only costs a
// re-scan on the next round.
type Tree struct {
	buckets [Buckets]atomic.Uint64
}

// xor folds delta into bucket b.
func (t *Tree) xor(b int, delta uint64) {
	if delta == 0 {
		return
	}
	for {
		old := t.buckets[b].Load()
		if t.buckets[b].CompareAndSwap(old, old^delta) {
			return
		}
	}
}

// Apply records one store mutation: the transition of key from
// (oldValue if hadOld) to (newValue if hasNew). Deletes pass
// hasNew=false; first writes pass hadOld=false.
func (t *Tree) Apply(key, oldValue, newValue string, hadOld, hasNew bool) {
	var delta uint64
	if hadOld {
		delta ^= EntryHash(key, oldValue)
	}
	if hasNew {
		delta ^= EntryHash(key, newValue)
	}
	t.xor(BucketOf(key), delta)
}

// RangeHash folds buckets [lo, hi) into one comparable digest. Each
// bucket is mixed with its index before folding so a value "sliding"
// from bucket i to bucket j inside the range still changes the hash.
func (t *Tree) RangeHash(lo, hi int) uint64 {
	if lo < 0 {
		lo = 0
	}
	if hi > Buckets {
		hi = Buckets
	}
	var x uint64
	for i := lo; i < hi; i++ {
		b := t.buckets[i].Load()
		if b != 0 {
			x ^= mix(b + uint64(i)*0x9e3779b97f4a7c15)
		}
	}
	return x
}

// mix is a splitmix64 finalizer.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
