package merkle

import (
	"fmt"
	"math/rand"
	"testing"
)

// replica is a toy store + digest pair for driving diff walks.
type replica struct {
	store map[string]string
	tree  Tree
}

func newReplica() *replica { return &replica{store: map[string]string{}} }

func (r *replica) set(key, value string) {
	old, had := r.store[key]
	r.store[key] = value
	r.tree.Apply(key, old, value, had, true)
}

func (r *replica) del(key string) {
	old, had := r.store[key]
	if had {
		delete(r.store, key)
		r.tree.Apply(key, old, "", true, false)
	}
}

// keysIn lists the replica's keys whose bucket falls inside any span.
func (r *replica) keysIn(spans []Range) map[string]bool {
	out := map[string]bool{}
	for k := range r.store {
		b := BucketOf(k)
		for _, s := range spans {
			if b >= s.Lo && b < s.Hi {
				out[k] = true
				break
			}
		}
	}
	return out
}

func TestApplyInverts(t *testing.T) {
	r := newReplica()
	base := r.tree.RangeHash(0, Buckets)
	r.set("k1", "v1")
	r.set("k2", "v2")
	if r.tree.RangeHash(0, Buckets) == base {
		t.Fatal("writes did not change the digest")
	}
	r.set("k1", "v1b")
	r.del("k1")
	r.del("k2")
	if got := r.tree.RangeHash(0, Buckets); got != base {
		t.Fatalf("digest %d after deleting everything, want the empty digest %d", got, base)
	}
}

func TestIdenticalStoresMatchEverywhere(t *testing.T) {
	a, b := newReplica(), newReplica()
	for i := 0; i < 500; i++ {
		k, v := fmt.Sprintf("key-%04d", i), fmt.Sprintf("val-%d", i)
		a.set(k, v)
		b.set(k, v)
	}
	leaves, err := Diff(a.tree.Local(), b.tree.Local(), 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(leaves) != 0 {
		t.Fatalf("identical stores diverge in %d buckets: %v", len(leaves), leaves)
	}
}

// TestDiffFindsExactlyInjectedDivergence is the property test: inject
// random divergence into two otherwise-identical stores and assert the
// walk surfaces exactly the divergent keys — and that the bytes moved
// scale with the divergence, not the keyspace.
func TestDiffFindsExactlyInjectedDivergence(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			a, b := newReplica(), newReplica()
			const keyspace = 4000
			keys := make([]string, keyspace)
			for i := range keys {
				keys[i] = fmt.Sprintf("key-%06d", i)
				v := fmt.Sprintf("val-%d", rng.Int63())
				a.set(keys[i], v)
				b.set(keys[i], v)
			}

			// Inject divergence: changed values, keys missing on one
			// side, and keys present only on one side.
			injected := map[string]bool{}
			nDiverge := 5 + rng.Intn(25)
			for len(injected) < nDiverge {
				k := keys[rng.Intn(keyspace)]
				if injected[k] {
					continue
				}
				injected[k] = true
				switch rng.Intn(3) {
				case 0:
					a.set(k, "divergent-"+k)
				case 1:
					b.set(k, "divergent-"+k)
				case 2:
					b.del(k)
				}
			}
			for i := 0; i < 3; i++ {
				k := fmt.Sprintf("only-%d-%d", seed, i)
				injected[k] = true
				a.set(k, "fresh")
			}

			// Count hashes exchanged during the walk (the TREE traffic).
			var hashesFetched int
			counting := func(f Fetcher) Fetcher {
				return func(ranges []Range) ([]uint64, error) {
					hashesFetched += len(ranges)
					return f(ranges)
				}
			}
			leaves, err := Diff(counting(a.tree.Local()), counting(b.tree.Local()), 32)
			if err != nil {
				t.Fatal(err)
			}
			spans := Coalesce(leaves)

			// Every divergent key's bucket is surfaced, and the keys a
			// scan of those spans would exchange are exactly the
			// injected set plus their bucket cohabitants.
			exchanged := a.keysIn(spans)
			for k := range b.keysIn(spans) {
				exchanged[k] = true
			}
			for k := range injected {
				if !exchanged[k] {
					t.Fatalf("injected divergent key %q (bucket %d) not surfaced by the walk", k, BucketOf(k))
				}
			}
			// The divergent *entries* found by comparing scanned hashes
			// must equal the injected set exactly — cohabitant keys in
			// the same bucket compare equal and are filtered out.
			divergent := map[string]bool{}
			for k := range exchanged {
				av, aok := a.store[k]
				bv, bok := b.store[k]
				if aok != bok || av != bv {
					divergent[k] = true
				}
			}
			if len(divergent) != len(injected) {
				t.Fatalf("divergent set has %d keys, injected %d", len(divergent), len(injected))
			}
			for k := range injected {
				if !divergent[k] {
					t.Fatalf("injected key %q not in divergent set", k)
				}
			}

			// Traffic scales with the divergence, not the keyspace:
			// each divergent bucket costs at most the tree depth (12)
			// in hash pairs per side, plus the shared prefix of the
			// descent, and the scan touches only cohabitant keys.
			maxHashes := 2 * (len(leaves) + 2) * 16 // generous: depth*leaves plus batch slack, both sides
			if hashesFetched > maxHashes {
				t.Fatalf("walk fetched %d hashes for %d divergent buckets (bound %d)", hashesFetched, len(leaves), maxHashes)
			}
			if len(exchanged) > 16*len(injected)+32 {
				t.Fatalf("scan would exchange %d keys for %d injected divergences", len(exchanged), len(injected))
			}
			if len(exchanged) >= keyspace/4 {
				t.Fatalf("scan touches %d of %d keys — scaling with keyspace, not divergence", len(exchanged), keyspace)
			}
		})
	}
}

func TestCoalesce(t *testing.T) {
	got := Coalesce([]Range{{5, 6}, {1, 2}, {2, 3}, {6, 7}, {10, 11}})
	want := []Range{{1, 3}, {5, 7}, {10, 11}}
	if len(got) != len(want) {
		t.Fatalf("Coalesce = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Coalesce = %v, want %v", got, want)
		}
	}
}
