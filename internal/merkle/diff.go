package merkle

import "sort"

// Range is a half-open bucket span [Lo, Hi).
type Range struct {
	Lo, Hi int
}

// Fetcher returns one range hash per requested span, in order. The
// anti-entropy driver backs this with a TREE wire call; tests back it
// with a local Tree.
type Fetcher func(ranges []Range) ([]uint64, error)

// Local adapts a Tree into a Fetcher for the node's own side of a
// diff walk.
func (t *Tree) Local() Fetcher {
	return func(ranges []Range) ([]uint64, error) {
		out := make([]uint64, len(ranges))
		for i, r := range ranges {
			out[i] = t.RangeHash(r.Lo, r.Hi)
		}
		return out, nil
	}
}

// Diff walks two digests down from the full keyspace and returns the
// single buckets where they disagree. Each round compares up to batch
// spans in one fetch per side (the wire verb carries the whole batch in
// one frame), splits every mismatched span in half, and recurses; a
// mismatched span of width one is a divergent leaf. Matching spans are
// never descended into, so the number of hashes exchanged scales with
// the number of divergent arcs times the tree depth, not with the
// keyspace.
func Diff(a, b Fetcher, batch int) ([]Range, error) {
	if batch <= 0 {
		batch = 32
	}
	frontier := []Range{{0, Buckets}}
	var leaves []Range
	for len(frontier) > 0 {
		n := len(frontier)
		if n > batch {
			n = batch
		}
		round := frontier[:n]
		frontier = frontier[n:]
		ha, err := a(round)
		if err != nil {
			return nil, err
		}
		hb, err := b(round)
		if err != nil {
			return nil, err
		}
		for i, r := range round {
			if ha[i] == hb[i] {
				continue
			}
			if r.Hi-r.Lo == 1 {
				leaves = append(leaves, r)
				continue
			}
			mid := (r.Lo + r.Hi) / 2
			frontier = append(frontier, Range{r.Lo, mid}, Range{mid, r.Hi})
		}
	}
	sort.Slice(leaves, func(i, j int) bool { return leaves[i].Lo < leaves[j].Lo })
	return leaves, nil
}

// Coalesce merges adjacent or overlapping spans so a run of divergent
// buckets becomes one SCAN request instead of many.
func Coalesce(spans []Range) []Range {
	if len(spans) == 0 {
		return nil
	}
	sorted := make([]Range, len(spans))
	copy(sorted, spans)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Lo < sorted[j].Lo })
	out := sorted[:1]
	for _, r := range sorted[1:] {
		if last := &out[len(out)-1]; r.Lo <= last.Hi {
			if r.Hi > last.Hi {
				last.Hi = r.Hi
			}
		} else {
			out = append(out, r)
		}
	}
	return out
}
