package minicc

import (
	"fmt"
	"strings"

	"repro/internal/isa"
)

// Compile translates MiniC source to SWAT32 assembly. When optimize is
// true, the constant-folding / algebraic-simplification / dead-branch
// passes run first. The emitted code uses the CS31 calling convention:
// args pushed right-to-left, caller cleans the stack, %ebp frames,
// return value in %eax. The program entry calls the MiniC main and exits
// with its return value.
func Compile(src string, optimize bool) (string, error) {
	prog, err := Parse(src)
	if err != nil {
		return "", err
	}
	if optimize {
		Optimize(prog)
	}
	g := &gen{}
	g.emit("main:")
	g.emit("    call mc_main")
	g.emit("    sys $0")
	for _, f := range prog.Funcs {
		if err := g.function(f); err != nil {
			return "", err
		}
	}
	return strings.Join(g.lines, "\n") + "\n", nil
}

// gen is the code generator state.
type gen struct {
	lines  []string
	labels int
	// per-function state
	offsets map[string]int32 // variable -> %ebp offset
	nLocals int32
}

func (g *gen) emit(format string, args ...interface{}) {
	g.lines = append(g.lines, fmt.Sprintf(format, args...))
}

func (g *gen) label(prefix string) string {
	g.labels++
	return fmt.Sprintf("%s_%d", prefix, g.labels)
}

// countLocals walks a body counting declarations (block-scoped variables
// all get frame slots; MiniC has no shadowing, enforced by Check).
func countLocals(stmts []Stmt) int32 {
	var n int32
	for _, s := range stmts {
		switch v := s.(type) {
		case *DeclStmt:
			n++
		case *IfStmt:
			n += countLocals(v.Then) + countLocals(v.Else)
		case *WhileStmt:
			n += countLocals(v.Body)
		}
	}
	return n
}

func (g *gen) function(f *FuncDecl) error {
	g.offsets = make(map[string]int32)
	g.nLocals = 0
	for i, p := range f.Params {
		// First arg at 8(%ebp): saved %ebp at 0, return address below it.
		g.offsets[p] = int32(8 + 4*i)
	}
	locals := countLocals(f.Body)
	g.emit("")
	g.emit("mc_%s:", f.Name)
	g.emit("    pushl %%ebp")
	g.emit("    movl %%esp, %%ebp")
	if locals > 0 {
		g.emit("    subl $%d, %%esp", 4*locals)
	}
	if err := g.stmts(f.Body); err != nil {
		return err
	}
	// Implicit return 0 for functions that fall off the end.
	g.emit("    movl $0, %%eax")
	g.emit("    leave")
	g.emit("    ret")
	return nil
}

func (g *gen) declare(name string) int32 {
	g.nLocals++
	off := -4 * g.nLocals
	g.offsets[name] = off
	return off
}

func (g *gen) stmts(stmts []Stmt) error {
	for _, s := range stmts {
		if err := g.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (g *gen) stmt(s Stmt) error {
	switch v := s.(type) {
	case *DeclStmt:
		off := g.declare(v.Name)
		if v.Init != nil {
			if err := g.expr(v.Init); err != nil {
				return err
			}
			g.emit("    movl %%eax, %d(%%ebp)", off)
		} else {
			g.emit("    movl $0, %d(%%ebp)", off)
		}
	case *AssignStmt:
		if err := g.expr(v.Expr); err != nil {
			return err
		}
		off, ok := g.offsets[v.Name]
		if !ok {
			return fmt.Errorf("minicc: internal: unknown variable %q", v.Name)
		}
		g.emit("    movl %%eax, %d(%%ebp)", off)
	case *IfStmt:
		elseL := g.label("else")
		endL := g.label("endif")
		if err := g.expr(v.Cond); err != nil {
			return err
		}
		g.emit("    cmpl $0, %%eax")
		g.emit("    je %s", elseL)
		if err := g.stmts(v.Then); err != nil {
			return err
		}
		g.emit("    jmp %s", endL)
		g.emit("%s:", elseL)
		if err := g.stmts(v.Else); err != nil {
			return err
		}
		g.emit("%s:", endL)
	case *WhileStmt:
		topL := g.label("while")
		endL := g.label("endwhile")
		g.emit("%s:", topL)
		if err := g.expr(v.Cond); err != nil {
			return err
		}
		g.emit("    cmpl $0, %%eax")
		g.emit("    je %s", endL)
		if err := g.stmts(v.Body); err != nil {
			return err
		}
		g.emit("    jmp %s", topL)
		g.emit("%s:", endL)
	case *ReturnStmt:
		if err := g.expr(v.Expr); err != nil {
			return err
		}
		g.emit("    leave")
		g.emit("    ret")
	case *PrintStmt:
		if err := g.expr(v.Expr); err != nil {
			return err
		}
		g.emit("    sys $1")
	case *ExprStmt:
		return g.expr(v.Expr)
	default:
		return fmt.Errorf("minicc: internal: unknown statement %T", s)
	}
	return nil
}

// expr generates code leaving the value in %eax.
func (g *gen) expr(e Expr) error {
	switch v := e.(type) {
	case *IntLit:
		g.emit("    movl $%d, %%eax", v.Value)
	case *VarRef:
		off, ok := g.offsets[v.Name]
		if !ok {
			return fmt.Errorf("minicc: internal: unknown variable %q", v.Name)
		}
		g.emit("    movl %d(%%ebp), %%eax", off)
	case *Unary:
		if err := g.expr(v.X); err != nil {
			return err
		}
		switch v.Op {
		case "-":
			g.emit("    negl %%eax")
		case "!":
			t := g.label("nz")
			g.emit("    cmpl $0, %%eax")
			g.emit("    movl $1, %%eax")
			g.emit("    je %s", t)
			g.emit("    movl $0, %%eax")
			g.emit("%s:", t)
		default:
			return fmt.Errorf("minicc: internal: unary %q", v.Op)
		}
	case *Binary:
		return g.binary(v)
	case *Call:
		for i := len(v.Args) - 1; i >= 0; i-- {
			if err := g.expr(v.Args[i]); err != nil {
				return err
			}
			g.emit("    pushl %%eax")
		}
		g.emit("    call mc_%s", v.Name)
		if len(v.Args) > 0 {
			g.emit("    addl $%d, %%esp", 4*len(v.Args))
		}
	default:
		return fmt.Errorf("minicc: internal: unknown expression %T", e)
	}
	return nil
}

func (g *gen) binary(v *Binary) error {
	switch v.Op {
	case "&&":
		falseL := g.label("andf")
		endL := g.label("ande")
		if err := g.expr(v.L); err != nil {
			return err
		}
		g.emit("    cmpl $0, %%eax")
		g.emit("    je %s", falseL)
		if err := g.expr(v.R); err != nil {
			return err
		}
		g.emit("    cmpl $0, %%eax")
		g.emit("    je %s", falseL)
		g.emit("    movl $1, %%eax")
		g.emit("    jmp %s", endL)
		g.emit("%s:", falseL)
		g.emit("    movl $0, %%eax")
		g.emit("%s:", endL)
		return nil
	case "||":
		trueL := g.label("ort")
		endL := g.label("ore")
		if err := g.expr(v.L); err != nil {
			return err
		}
		g.emit("    cmpl $0, %%eax")
		g.emit("    jne %s", trueL)
		if err := g.expr(v.R); err != nil {
			return err
		}
		g.emit("    cmpl $0, %%eax")
		g.emit("    jne %s", trueL)
		g.emit("    movl $0, %%eax")
		g.emit("    jmp %s", endL)
		g.emit("%s:", trueL)
		g.emit("    movl $1, %%eax")
		g.emit("%s:", endL)
		return nil
	}

	// Arithmetic and comparisons: L on the stack, R in %ebx, L in %eax.
	if err := g.expr(v.L); err != nil {
		return err
	}
	g.emit("    pushl %%eax")
	if err := g.expr(v.R); err != nil {
		return err
	}
	g.emit("    movl %%eax, %%ebx")
	g.emit("    popl %%eax")
	switch v.Op {
	case "+":
		g.emit("    addl %%ebx, %%eax")
	case "-":
		g.emit("    subl %%ebx, %%eax")
	case "*":
		g.emit("    imull %%ebx, %%eax")
	case "/":
		g.emit("    idivl %%ebx, %%eax")
	case "%":
		g.emit("    imodl %%ebx, %%eax")
	case "==", "!=", "<", "<=", ">", ">=":
		jump := map[string]string{
			"==": "je", "!=": "jne", "<": "jl", "<=": "jle", ">": "jg", ">=": "jge",
		}[v.Op]
		t := g.label("cmp")
		g.emit("    cmpl %%ebx, %%eax")
		g.emit("    movl $1, %%eax")
		g.emit("    %s %s", jump, t)
		g.emit("    movl $0, %%eax")
		g.emit("%s:", t)
	default:
		return fmt.Errorf("minicc: internal: binary %q", v.Op)
	}
	return nil
}

// Stats reports the size effects of compilation for the optimization
// discussion.
type Stats struct {
	Instructions int // assembled instruction count
}

// CompileToProgram compiles and assembles in one step.
func CompileToProgram(src string, optimize bool) (*isa.Program, Stats, error) {
	asm, err := Compile(src, optimize)
	if err != nil {
		return nil, Stats{}, err
	}
	prog, err := isa.Assemble(asm)
	if err != nil {
		return nil, Stats{}, fmt.Errorf("minicc: generated assembly failed to assemble: %w\n%s", err, asm)
	}
	return prog, Stats{Instructions: len(prog.Code) / isa.InstrSize}, nil
}

// Run compiles and executes a MiniC program, returning its printed
// output, its exit status, and the dynamic instruction count.
func Run(src string, optimize bool, maxSteps int64) (output string, exit int32, steps int64, err error) {
	prog, _, err := CompileToProgram(src, optimize)
	if err != nil {
		return "", 0, 0, err
	}
	cpu := isa.NewCPU(prog)
	if err := cpu.Run(maxSteps); err != nil {
		return cpu.Output.String(), cpu.Exit, cpu.Steps, err
	}
	return cpu.Output.String(), cpu.Exit, cpu.Steps, nil
}
