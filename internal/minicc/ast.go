package minicc

import "fmt"

// Program is a parsed MiniC translation unit.
type Program struct {
	Funcs []*FuncDecl
}

// FuncDecl is "int name(int a, int b) { ... }".
type FuncDecl struct {
	Name   string
	Params []string
	Body   []Stmt
	Line   int
}

// Stmt is a statement node.
type Stmt interface{ stmt() }

// DeclStmt is "int x;" or "int x = expr;".
type DeclStmt struct {
	Name string
	Init Expr // nil for bare declarations
	Line int
}

// AssignStmt is "x = expr;".
type AssignStmt struct {
	Name string
	Expr Expr
	Line int
}

// IfStmt is "if (cond) {..} else {..}" (else optional).
type IfStmt struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
}

// WhileStmt is "while (cond) {..}".
type WhileStmt struct {
	Cond Expr
	Body []Stmt
}

// ReturnStmt is "return expr;".
type ReturnStmt struct {
	Expr Expr
	Line int
}

// PrintStmt is "print(expr);" — compiled to the SWAT32 print service.
type PrintStmt struct {
	Expr Expr
}

// ExprStmt is a bare expression (usually a call) followed by ';'.
type ExprStmt struct {
	Expr Expr
}

func (*DeclStmt) stmt()   {}
func (*AssignStmt) stmt() {}
func (*IfStmt) stmt()     {}
func (*WhileStmt) stmt()  {}
func (*ReturnStmt) stmt() {}
func (*PrintStmt) stmt()  {}
func (*ExprStmt) stmt()   {}

// Expr is an expression node.
type Expr interface{ expr() }

// IntLit is an integer literal.
type IntLit struct {
	Value int32
}

// VarRef reads a variable.
type VarRef struct {
	Name string
	Line int
}

// Binary is a binary operation; Op is one of + - * / % == != < <= > >=
// && ||.
type Binary struct {
	Op   string
	L, R Expr
}

// Unary is -x or !x.
type Unary struct {
	Op string
	X  Expr
}

// Call invokes a function.
type Call struct {
	Name string
	Args []Expr
	Line int
}

func (*IntLit) expr() {}
func (*VarRef) expr() {}
func (*Binary) expr() {}
func (*Unary) expr()  {}
func (*Call) expr()   {}

// String renders expressions for diagnostics.
func exprString(e Expr) string {
	switch v := e.(type) {
	case *IntLit:
		return fmt.Sprintf("%d", v.Value)
	case *VarRef:
		return v.Name
	case *Binary:
		return fmt.Sprintf("(%s %s %s)", exprString(v.L), v.Op, exprString(v.R))
	case *Unary:
		return fmt.Sprintf("(%s%s)", v.Op, exprString(v.X))
	case *Call:
		s := v.Name + "("
		for i, a := range v.Args {
			if i > 0 {
				s += ", "
			}
			s += exprString(a)
		}
		return s + ")"
	}
	return "?"
}
