// Package minicc implements the CS75 Compilers course artifact: a
// compiler for MiniC — a C subset with int variables, functions,
// arithmetic, comparisons, if/else, while, and print — targeting SWAT32
// assembly with the exact stack discipline CS31 teaches (%ebp frames,
// args pushed right-to-left, return value in %eax). It includes the
// front-end pipeline of the course project (lexer, recursive-descent
// parser producing an AST, semantic checks) and the back-end (code
// generation plus the constant-folding and algebraic-simplification
// optimizations the paper slates for the expanded CS75).
package minicc

import (
	"fmt"
	"strconv"
	"strings"
)

// TokenKind classifies lexer output.
type TokenKind int

// The token kinds.
const (
	TokEOF TokenKind = iota
	TokInt           // integer literal
	TokIdent
	TokKeyword // int, if, else, while, return, print
	TokPunct   // ( ) { } ; ,
	TokOp      // + - * / % = == != < <= > >= && || !
)

// Token is one lexeme with its source line for diagnostics.
type Token struct {
	Kind TokenKind
	Text string
	Int  int32
	Line int
}

// String returns the human-readable name.
func (t Token) String() string {
	if t.Kind == TokEOF {
		return "<eof>"
	}
	return t.Text
}

var keywords = map[string]bool{
	"int": true, "if": true, "else": true, "while": true,
	"return": true, "print": true,
}

// Lex tokenizes MiniC source. // comments run to end of line.
func Lex(src string) ([]Token, error) {
	var toks []Token
	line := 1
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c >= '0' && c <= '9':
			j := i
			for j < len(src) && src[j] >= '0' && src[j] <= '9' {
				j++
			}
			v, err := strconv.ParseInt(src[i:j], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("minicc: line %d: integer %q out of range", line, src[i:j])
			}
			toks = append(toks, Token{Kind: TokInt, Text: src[i:j], Int: int32(v), Line: line})
			i = j
		case isIdentStart(c):
			j := i
			for j < len(src) && isIdentPart(src[j]) {
				j++
			}
			word := src[i:j]
			kind := TokIdent
			if keywords[word] {
				kind = TokKeyword
			}
			toks = append(toks, Token{Kind: kind, Text: word, Line: line})
			i = j
		case strings.ContainsRune("(){};,", rune(c)):
			toks = append(toks, Token{Kind: TokPunct, Text: string(c), Line: line})
			i++
		case strings.ContainsRune("+-*/%<>=!&|", rune(c)):
			// Two-character operators first.
			if i+1 < len(src) {
				two := src[i : i+2]
				switch two {
				case "==", "!=", "<=", ">=", "&&", "||":
					toks = append(toks, Token{Kind: TokOp, Text: two, Line: line})
					i += 2
					continue
				}
			}
			if c == '&' || c == '|' {
				return nil, fmt.Errorf("minicc: line %d: unexpected %q", line, string(c))
			}
			toks = append(toks, Token{Kind: TokOp, Text: string(c), Line: line})
			i++
		default:
			return nil, fmt.Errorf("minicc: line %d: unexpected character %q", line, string(c))
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Line: line})
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}
