package minicc

// This file implements the optimization passes the paper slates for the
// expanded CS75: constant folding, algebraic simplification, and
// dead-branch elimination. Transformations only fire when provably safe:
// expressions containing calls are never discarded (calls may print).

// Optimize rewrites the program in place.
func Optimize(prog *Program) {
	for _, f := range prog.Funcs {
		f.Body = optStmts(f.Body)
	}
}

func optStmts(stmts []Stmt) []Stmt {
	var out []Stmt
	for _, s := range stmts {
		switch v := s.(type) {
		case *DeclStmt:
			if v.Init != nil {
				v.Init = optExpr(v.Init)
			}
			out = append(out, v)
		case *AssignStmt:
			v.Expr = optExpr(v.Expr)
			out = append(out, v)
		case *IfStmt:
			v.Cond = optExpr(v.Cond)
			v.Then = optStmts(v.Then)
			v.Else = optStmts(v.Else)
			if lit, ok := v.Cond.(*IntLit); ok {
				// Dead-branch elimination — but declarations in the dropped
				// branch must survive (they may be referenced later because
				// MiniC scopes variables to the function, like early C).
				if lit.Value != 0 {
					out = append(out, keepDecls(v.Else)...)
					out = append(out, v.Then...)
				} else {
					out = append(out, keepDecls(v.Then)...)
					out = append(out, v.Else...)
				}
				continue
			}
			out = append(out, v)
		case *WhileStmt:
			v.Cond = optExpr(v.Cond)
			v.Body = optStmts(v.Body)
			if lit, ok := v.Cond.(*IntLit); ok && lit.Value == 0 {
				out = append(out, keepDecls(v.Body)...)
				continue // while(0): drop, keep declarations
			}
			out = append(out, v)
		case *ReturnStmt:
			v.Expr = optExpr(v.Expr)
			out = append(out, v)
		case *PrintStmt:
			v.Expr = optExpr(v.Expr)
			out = append(out, v)
		case *ExprStmt:
			v.Expr = optExpr(v.Expr)
			if pure(v.Expr) {
				continue // a pure expression statement has no effect
			}
			out = append(out, v)
		default:
			out = append(out, s)
		}
	}
	return out
}

// keepDecls extracts the declarations (zero-initialized) from eliminated
// code so later references still have frame slots.
func keepDecls(stmts []Stmt) []Stmt {
	var out []Stmt
	for _, s := range stmts {
		switch v := s.(type) {
		case *DeclStmt:
			out = append(out, &DeclStmt{Name: v.Name, Line: v.Line})
		case *IfStmt:
			out = append(out, keepDecls(v.Then)...)
			out = append(out, keepDecls(v.Else)...)
		case *WhileStmt:
			out = append(out, keepDecls(v.Body)...)
		}
	}
	return out
}

// pure reports whether evaluating e has no side effects (no calls).
func pure(e Expr) bool {
	switch v := e.(type) {
	case *IntLit, *VarRef:
		return true
	case *Unary:
		return pure(v.X)
	case *Binary:
		return pure(v.L) && pure(v.R)
	}
	return false // Call
}

func optExpr(e Expr) Expr {
	switch v := e.(type) {
	case *Unary:
		v.X = optExpr(v.X)
		if lit, ok := v.X.(*IntLit); ok {
			switch v.Op {
			case "-":
				return &IntLit{Value: -lit.Value}
			case "!":
				if lit.Value == 0 {
					return &IntLit{Value: 1}
				}
				return &IntLit{Value: 0}
			}
		}
		return v
	case *Binary:
		v.L = optExpr(v.L)
		v.R = optExpr(v.R)
		return foldBinary(v)
	case *Call:
		for i := range v.Args {
			v.Args[i] = optExpr(v.Args[i])
		}
		return v
	}
	return e
}

func foldBinary(v *Binary) Expr {
	l, lok := v.L.(*IntLit)
	r, rok := v.R.(*IntLit)

	// Full constant folding (C semantics, wrap at 32 bits).
	if lok && rok {
		a, b := l.Value, r.Value
		switch v.Op {
		case "+":
			return &IntLit{Value: a + b}
		case "-":
			return &IntLit{Value: a - b}
		case "*":
			return &IntLit{Value: a * b}
		case "/":
			if b != 0 {
				return &IntLit{Value: a / b}
			}
		case "%":
			if b != 0 {
				return &IntLit{Value: a % b}
			}
		case "==":
			return boolLit(a == b)
		case "!=":
			return boolLit(a != b)
		case "<":
			return boolLit(a < b)
		case "<=":
			return boolLit(a <= b)
		case ">":
			return boolLit(a > b)
		case ">=":
			return boolLit(a >= b)
		case "&&":
			return boolLit(a != 0 && b != 0)
		case "||":
			return boolLit(a != 0 || b != 0)
		}
		return v
	}

	// Algebraic identities, applied only when the discarded side is pure.
	switch v.Op {
	case "+":
		if lok && l.Value == 0 {
			return v.R
		}
		if rok && r.Value == 0 {
			return v.L
		}
	case "-":
		if rok && r.Value == 0 {
			return v.L
		}
	case "*":
		if rok && r.Value == 1 {
			return v.L
		}
		if lok && l.Value == 1 {
			return v.R
		}
		if rok && r.Value == 0 && pure(v.L) {
			return &IntLit{Value: 0}
		}
		if lok && l.Value == 0 && pure(v.R) {
			return &IntLit{Value: 0}
		}
	case "/":
		if rok && r.Value == 1 {
			return v.L
		}
	case "&&":
		// 0 && X -> 0 (short-circuit makes this safe even for impure X).
		if lok && l.Value == 0 {
			return &IntLit{Value: 0}
		}
		if lok && l.Value != 0 {
			// truthy && X -> X != 0 normalized to 0/1
			return &Binary{Op: "!=", L: v.R, R: &IntLit{Value: 0}}
		}
	case "||":
		if lok && l.Value != 0 {
			return &IntLit{Value: 1}
		}
		if lok && l.Value == 0 {
			return &Binary{Op: "!=", L: v.R, R: &IntLit{Value: 0}}
		}
	}
	return v
}

func boolLit(b bool) *IntLit {
	if b {
		return &IntLit{Value: 1}
	}
	return &IntLit{Value: 0}
}
