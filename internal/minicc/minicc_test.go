package minicc

import (
	"strings"
	"testing"
	"testing/quick"
)

// run compiles and executes, failing the test on any error.
func run(t *testing.T, src string, optimize bool) (string, int32, int64) {
	t.Helper()
	out, exit, steps, err := Run(src, optimize, 5_000_000)
	if err != nil {
		t.Fatalf("run failed: %v\noutput so far: %q", err, out)
	}
	return out, exit, steps
}

func TestHelloArithmetic(t *testing.T) {
	out, exit, _ := run(t, `
int main() {
    print(6 * 7);
    print(100 / 7);
    print(100 % 7);
    print(-5);
    return 0;
}`, false)
	if out != "42\n14\n2\n-5\n" {
		t.Errorf("output = %q", out)
	}
	if exit != 0 {
		t.Errorf("exit = %d", exit)
	}
}

func TestPrecedenceAndParens(t *testing.T) {
	out, _, _ := run(t, `
int main() {
    print(2 + 3 * 4);
    print((2 + 3) * 4);
    print(10 - 4 - 3);
    print(2 * 3 % 4);
    return 0;
}`, false)
	if out != "14\n20\n3\n2\n" {
		t.Errorf("output = %q", out)
	}
}

func TestVariablesAndAssignment(t *testing.T) {
	out, _, _ := run(t, `
int main() {
    int x = 10;
    int y;
    y = x * 2;
    x = x + y;
    print(x);
    print(y);
    return 0;
}`, false)
	if out != "30\n20\n" {
		t.Errorf("output = %q", out)
	}
}

func TestControlFlow(t *testing.T) {
	out, _, _ := run(t, `
int main() {
    int i = 0;
    while (i < 5) {
        if (i % 2 == 0) {
            print(i);
        } else {
            print(-i);
        }
        i = i + 1;
    }
    return 0;
}`, false)
	if out != "0\n-1\n2\n-3\n4\n" {
		t.Errorf("output = %q", out)
	}
}

func TestElseIfChain(t *testing.T) {
	src := `
int classify(int x) {
    if (x < 0) {
        return -1;
    } else if (x == 0) {
        return 0;
    } else {
        return 1;
    }
}
int main() {
    print(classify(-5));
    print(classify(0));
    print(classify(99));
    return 0;
}`
	out, _, _ := run(t, src, false)
	if out != "-1\n0\n1\n" {
		t.Errorf("output = %q", out)
	}
}

func TestRecursionFactorialFib(t *testing.T) {
	src := `
int fact(int n) {
    if (n <= 1) { return 1; }
    return n * fact(n - 1);
}
int fib(int n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
int main() {
    print(fact(7));
    print(fib(15));
    return 0;
}`
	out, _, _ := run(t, src, false)
	if out != "5040\n610\n" {
		t.Errorf("output = %q", out)
	}
}

func TestMultipleArgsOrder(t *testing.T) {
	// Argument evaluation/passing order: f(a, b) must see a then b.
	src := `
int sub(int a, int b) { return a - b; }
int main() {
    print(sub(10, 3));
    print(sub(3, 10));
    return 0;
}`
	out, _, _ := run(t, src, false)
	if out != "7\n-7\n" {
		t.Errorf("output = %q", out)
	}
}

func TestLogicalOperatorsShortCircuit(t *testing.T) {
	// boom() would print; short-circuit must prevent that.
	src := `
int boom() { print(999); return 1; }
int main() {
    print(0 && boom());
    print(1 || boom());
    print(1 && 2);
    print(0 || 0);
    print(!5);
    print(!0);
    return 0;
}`
	out, _, _ := run(t, src, false)
	if out != "0\n1\n1\n0\n0\n1\n" {
		t.Errorf("output = %q", out)
	}
}

func TestComparisonResults(t *testing.T) {
	out, _, _ := run(t, `
int main() {
    print(3 < 5);
    print(5 < 3);
    print(5 <= 5);
    print(5 >= 6);
    print(4 == 4);
    print(4 != 4);
    print(-1 < 1);
    return 0;
}`, false)
	if out != "1\n0\n1\n0\n1\n0\n1\n" {
		t.Errorf("output = %q", out)
	}
}

func TestExitStatus(t *testing.T) {
	_, exit, _ := run(t, `int main() { return 42; }`, false)
	if exit != 42 {
		t.Errorf("exit = %d", exit)
	}
}

func TestImplicitReturnZero(t *testing.T) {
	_, exit, _ := run(t, `int main() { print(1); }`, false)
	if exit != 0 {
		t.Errorf("exit = %d", exit)
	}
}

func TestDivisionByZeroFaults(t *testing.T) {
	_, _, _, err := Run(`int main() { int z = 0; return 1 / z; }`, false, 100000)
	if err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Errorf("expected division fault, got %v", err)
	}
}

func TestSemanticErrors(t *testing.T) {
	cases := []string{
		`int f() { return 0; }`,                                                // no main
		`int main(int x) { return 0; }`,                                        // main with params
		`int main() { return x; }`,                                             // undeclared var
		`int main() { x = 1; return 0; }`,                                      // assign undeclared
		`int main() { int x; int x; return 0; }`,                               // redeclaration
		`int main() { return f(); }`,                                           // undefined function
		`int f(int a) { return a; } int main() { return f(); }`,                // arity
		`int f() { return 0; } int f() { return 1; } int main() { return 0; }`, // redefinition
		`int main(int a, int a) { return 0; }`,                                 // dup params... main has params anyway
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestSyntaxErrors(t *testing.T) {
	cases := []string{
		`int main() { print(1) }`,                     // missing ;
		`int main() { if 1 { } }`,                     // missing parens
		`int main() { int 5 = 3; }`,                   // bad declarator
		`int main() { return 1 +; }`,                  // dangling operator
		`int main() {`,                                // unterminated block
		`int main() { @ }`,                            // bad character
		`int main() { print(1 & 2); }`,                // single & not supported
		`int main() { return 99999999999999999999; }`, // literal overflow
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestOptimizedOutputIdentical(t *testing.T) {
	// The golden rule of optimization: same observable behaviour.
	srcs := []string{
		`int main() { print(2 + 3 * 4 - 1); return 0; }`,
		`
int fib(int n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
int main() {
    int i = 0;
    while (i < 10) { print(fib(i)); i = i + 1; }
    return 0;
}`,
		`
int main() {
    int x = 5;
    if (1) { print(x * 1 + 0); } else { print(0); }
    while (0) { print(42); }
    print(x * 0);
    print(0 && x);
    print(1 || x);
    return x - 0;
}`,
	}
	for _, src := range srcs {
		outPlain, exitPlain, stepsPlain := run(t, src, false)
		outOpt, exitOpt, stepsOpt := run(t, src, true)
		if outPlain != outOpt || exitPlain != exitOpt {
			t.Errorf("optimization changed behaviour:\nplain %q exit %d\nopt   %q exit %d",
				outPlain, exitPlain, outOpt, exitOpt)
		}
		if stepsOpt > stepsPlain {
			t.Errorf("optimized run executed more instructions: %d > %d", stepsOpt, stepsPlain)
		}
	}
}

func TestOptimizationShrinksCode(t *testing.T) {
	src := `
int main() {
    print(1 + 2 + 3 + 4 + 5);
    if (2 > 1) { print(10 * 10); } else { print(3 / 0); }
    while (1 == 2) { print(777); }
    return 6 * 6 - 36;
}`
	_, plain, err := CompileToProgram(src, false)
	if err != nil {
		t.Fatal(err)
	}
	_, opt, err := CompileToProgram(src, true)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Instructions >= plain.Instructions {
		t.Errorf("optimized size %d >= plain %d", opt.Instructions, plain.Instructions)
	}
	// The dead 3/0 must have been eliminated: the program runs clean.
	out, _, _ := run(t, src, true)
	if out != "15\n100\n" {
		t.Errorf("output = %q", out)
	}
}

func TestOptimizerPreservesDeclsInDeadBranches(t *testing.T) {
	// MiniC scopes variables to the function; a declaration inside an
	// eliminated branch must keep its slot.
	src := `
int main() {
    if (0) { int x = 5; } else { print(1); }
    x = 3;
    print(x);
    return 0;
}`
	out, _, _ := run(t, src, true)
	if out != "1\n3\n" {
		t.Errorf("output = %q", out)
	}
}

func TestConstantFoldingProperty(t *testing.T) {
	// Property: folding arithmetic agrees with int32 semantics.
	f := func(a, b int32, opIdx uint8) bool {
		ops := []string{"+", "-", "*", "==", "!=", "<", "<=", ">", ">="}
		op := ops[int(opIdx)%len(ops)]
		e := optExpr(&Binary{Op: op, L: &IntLit{Value: a}, R: &IntLit{Value: b}})
		lit, ok := e.(*IntLit)
		if !ok {
			return false
		}
		var want int32
		switch op {
		case "+":
			want = a + b
		case "-":
			want = a - b
		case "*":
			want = a * b
		case "==":
			want = b2i(a == b)
		case "!=":
			want = b2i(a != b)
		case "<":
			want = b2i(a < b)
		case "<=":
			want = b2i(a <= b)
		case ">":
			want = b2i(a > b)
		case ">=":
			want = b2i(a >= b)
		}
		return lit.Value == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func b2i(b bool) int32 {
	if b {
		return 1
	}
	return 0
}

func TestCompiledCodeUsesCS31Convention(t *testing.T) {
	// The emitted assembly must use the stack discipline CS31 teaches.
	asm, err := Compile(`
int add(int a, int b) { return a + b; }
int main() { return add(1, 2); }`, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"pushl %ebp", "movl %esp, %ebp", "leave", "ret",
		"call mc_add", "addl $8, %esp", "8(%ebp)", "12(%ebp)",
	} {
		if !strings.Contains(asm, want) {
			t.Errorf("assembly missing %q:\n%s", want, asm)
		}
	}
}

func TestDeepRecursionStackDiscipline(t *testing.T) {
	// 1000-deep recursion exercises frame push/pop balance.
	src := `
int down(int n) {
    if (n == 0) { return 0; }
    return down(n - 1) + 1;
}
int main() { return down(1000); }`
	_, exit, _ := run(t, src, false)
	if exit != 1000 {
		t.Errorf("exit = %d", exit)
	}
}

func TestMutualRecursion(t *testing.T) {
	src := `
int isOdd(int n) {
    if (n == 0) { return 0; }
    return isEven(n - 1);
}
int isEven(int n) {
    if (n == 0) { return 1; }
    return isOdd(n - 1);
}
int main() {
    print(isEven(10));
    print(isOdd(10));
    print(isOdd(7));
    return 0;
}`
	out, _, _ := run(t, src, false)
	if out != "1\n0\n1\n" {
		t.Errorf("output = %q", out)
	}
}

func TestComments(t *testing.T) {
	out, _, _ := run(t, `
// leading comment
int main() { // trailing
    print(1); // after statement
    return 0;
}`, false)
	if out != "1\n" {
		t.Errorf("output = %q", out)
	}
}

func TestInfiniteLoopHitsBudget(t *testing.T) {
	_, _, _, err := Run(`int main() { while (1) { } return 0; }`, false, 5000)
	if err == nil {
		t.Error("infinite loop should exhaust the step budget")
	}
}

func TestArityErrorShowsCall(t *testing.T) {
	_, err := Parse(`
int f(int a, int b) { return a + b; }
int main() { return f(1); }`)
	if err == nil || !strings.Contains(err.Error(), "f(1)") {
		t.Errorf("arity error should render the call: %v", err)
	}
}

func TestCompileSurfacesParseErrors(t *testing.T) {
	if _, err := Compile(`int main( {`, false); err == nil {
		t.Error("Compile should propagate parse errors")
	}
	if _, _, err := CompileToProgram(`nope`, true); err == nil {
		t.Error("CompileToProgram should propagate errors")
	}
	if _, _, _, err := Run(`nope`, false, 100); err == nil {
		t.Error("Run should propagate errors")
	}
}

func TestNestedBlocksAndWhileInIf(t *testing.T) {
	out, _, _ := run(t, `
int main() {
    int n = 3;
    if (n > 0) {
        int i = 0;
        while (i < n) {
            if (i == 1) { print(100); } else { print(i); }
            i = i + 1;
        }
    }
    return 0;
}`, true)
	if out != "0\n100\n2\n" {
		t.Errorf("output = %q", out)
	}
}

func TestUnaryChains(t *testing.T) {
	out, _, _ := run(t, `
int main() {
    print(--5);
    print(!!7);
    print(-(-(-1)));
    return 0;
}`, false)
	if out != "5\n1\n-1\n" {
		t.Errorf("output = %q", out)
	}
}
