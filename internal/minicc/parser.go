package minicc

import "fmt"

// Parse builds the AST with a recursive-descent parser — the structure of
// the CS75 course project's front end.
func Parse(src string) (*Program, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &Program{}
	for !p.at(TokEOF, "") {
		fn, err := p.funcDecl()
		if err != nil {
			return nil, err
		}
		prog.Funcs = append(prog.Funcs, fn)
	}
	if err := Check(prog); err != nil {
		return nil, err
	}
	return prog, nil
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) cur() Token  { return p.toks[p.pos] }
func (p *parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(kind TokenKind, text string) bool {
	t := p.cur()
	return t.Kind == kind && (text == "" || t.Text == text)
}

func (p *parser) accept(kind TokenKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind TokenKind, text string) (Token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	t := p.cur()
	want := text
	if want == "" {
		want = fmt.Sprintf("token kind %d", kind)
	}
	return Token{}, fmt.Errorf("minicc: line %d: expected %q, found %q", t.Line, want, t)
}

// funcDecl := "int" ident "(" params? ")" block
func (p *parser) funcDecl() (*FuncDecl, error) {
	if _, err := p.expect(TokKeyword, "int"); err != nil {
		return nil, err
	}
	name, err := p.expect(TokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokPunct, "("); err != nil {
		return nil, err
	}
	fn := &FuncDecl{Name: name.Text, Line: name.Line}
	if !p.at(TokPunct, ")") {
		for {
			if _, err := p.expect(TokKeyword, "int"); err != nil {
				return nil, err
			}
			pn, err := p.expect(TokIdent, "")
			if err != nil {
				return nil, err
			}
			fn.Params = append(fn.Params, pn.Text)
			if !p.accept(TokPunct, ",") {
				break
			}
		}
	}
	if _, err := p.expect(TokPunct, ")"); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

// block := "{" stmt* "}"
func (p *parser) block() ([]Stmt, error) {
	if _, err := p.expect(TokPunct, "{"); err != nil {
		return nil, err
	}
	var stmts []Stmt
	for !p.at(TokPunct, "}") {
		if p.at(TokEOF, "") {
			return nil, fmt.Errorf("minicc: unexpected end of file in block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	p.next() // }
	return stmts, nil
}

func (p *parser) stmt() (Stmt, error) {
	t := p.cur()
	switch {
	case p.at(TokKeyword, "int"):
		p.next()
		name, err := p.expect(TokIdent, "")
		if err != nil {
			return nil, err
		}
		d := &DeclStmt{Name: name.Text, Line: name.Line}
		if p.accept(TokOp, "=") {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			d.Init = e
		}
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
		return d, nil
	case p.at(TokKeyword, "if"):
		p.next()
		if _, err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		then, err := p.block()
		if err != nil {
			return nil, err
		}
		st := &IfStmt{Cond: cond, Then: then}
		if p.accept(TokKeyword, "else") {
			if p.at(TokKeyword, "if") {
				// else if: parse as a nested if inside a synthetic block.
				nested, err := p.stmt()
				if err != nil {
					return nil, err
				}
				st.Else = []Stmt{nested}
			} else {
				els, err := p.block()
				if err != nil {
					return nil, err
				}
				st.Else = els
			}
		}
		return st, nil
	case p.at(TokKeyword, "while"):
		p.next()
		if _, err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Cond: cond, Body: body}, nil
	case p.at(TokKeyword, "return"):
		p.next()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
		return &ReturnStmt{Expr: e, Line: t.Line}, nil
	case p.at(TokKeyword, "print"):
		p.next()
		if _, err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
		return &PrintStmt{Expr: e}, nil
	case t.Kind == TokIdent:
		// assignment or expression statement (call)
		if p.toks[p.pos+1].Kind == TokOp && p.toks[p.pos+1].Text == "=" {
			name := p.next()
			p.next() // =
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokPunct, ";"); err != nil {
				return nil, err
			}
			return &AssignStmt{Name: name.Text, Expr: e, Line: name.Line}, nil
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
		return &ExprStmt{Expr: e}, nil
	}
	return nil, fmt.Errorf("minicc: line %d: unexpected %q at start of statement", t.Line, t)
}

// Expression grammar with precedence climbing:
//
//	expr   := or
//	or     := and ("||" and)*
//	and    := cmp ("&&" cmp)*
//	cmp    := add (("=="|"!="|"<"|"<="|">"|">=") add)?
//	add    := mul (("+"|"-") mul)*
//	mul    := unary (("*"|"/"|"%") unary)*
//	unary  := ("-"|"!") unary | primary
//	primary:= int | ident | ident "(" args ")" | "(" expr ")"
func (p *parser) expr() (Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.at(TokOp, "||") {
		p.next()
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "||", L: l, R: r}
	}
	return l, nil
}

func (p *parser) andExpr() (Expr, error) {
	l, err := p.cmpExpr()
	if err != nil {
		return nil, err
	}
	for p.at(TokOp, "&&") {
		p.next()
		r, err := p.cmpExpr()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "&&", L: l, R: r}
	}
	return l, nil
}

func (p *parser) cmpExpr() (Expr, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	for _, op := range []string{"==", "!=", "<=", ">=", "<", ">"} {
		if p.at(TokOp, op) {
			p.next()
			r, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			return &Binary{Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) addExpr() (Expr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for p.at(TokOp, "+") || p.at(TokOp, "-") {
		op := p.next().Text
		r, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) mulExpr() (Expr, error) {
	l, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for p.at(TokOp, "*") || p.at(TokOp, "/") || p.at(TokOp, "%") {
		op := p.next().Text
		r, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) unaryExpr() (Expr, error) {
	if p.at(TokOp, "-") || p.at(TokOp, "!") {
		op := p.next().Text
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: op, X: x}, nil
	}
	return p.primary()
}

func (p *parser) primary() (Expr, error) {
	t := p.cur()
	switch {
	case t.Kind == TokInt:
		p.next()
		return &IntLit{Value: t.Int}, nil
	case t.Kind == TokIdent:
		p.next()
		if p.accept(TokPunct, "(") {
			call := &Call{Name: t.Text, Line: t.Line}
			if !p.at(TokPunct, ")") {
				for {
					a, err := p.expr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if !p.accept(TokPunct, ",") {
						break
					}
				}
			}
			if _, err := p.expect(TokPunct, ")"); err != nil {
				return nil, err
			}
			return call, nil
		}
		return &VarRef{Name: t.Text, Line: t.Line}, nil
	case p.accept(TokPunct, "("):
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, fmt.Errorf("minicc: line %d: unexpected %q in expression", t.Line, t)
}

// Check performs the semantic checks of the course project: functions
// unique and resolvable, arities match, variables declared before use,
// no redeclaration in the same function, main exists with no parameters.
func Check(prog *Program) error {
	funcs := map[string]*FuncDecl{}
	for _, f := range prog.Funcs {
		if _, dup := funcs[f.Name]; dup {
			return fmt.Errorf("minicc: line %d: function %q redefined", f.Line, f.Name)
		}
		funcs[f.Name] = f
	}
	mainFn, ok := funcs["main"]
	if !ok {
		return fmt.Errorf("minicc: no main function")
	}
	if len(mainFn.Params) != 0 {
		return fmt.Errorf("minicc: main must take no parameters")
	}
	for _, f := range prog.Funcs {
		vars := map[string]bool{}
		for _, p := range f.Params {
			if vars[p] {
				return fmt.Errorf("minicc: line %d: duplicate parameter %q", f.Line, p)
			}
			vars[p] = true
		}
		if err := checkStmts(f.Body, vars, funcs); err != nil {
			return err
		}
	}
	return nil
}

func checkStmts(stmts []Stmt, vars map[string]bool, funcs map[string]*FuncDecl) error {
	for _, s := range stmts {
		switch v := s.(type) {
		case *DeclStmt:
			if v.Init != nil {
				if err := checkExpr(v.Init, vars, funcs); err != nil {
					return err
				}
			}
			if vars[v.Name] {
				return fmt.Errorf("minicc: line %d: variable %q redeclared", v.Line, v.Name)
			}
			vars[v.Name] = true
		case *AssignStmt:
			if !vars[v.Name] {
				return fmt.Errorf("minicc: line %d: assignment to undeclared %q", v.Line, v.Name)
			}
			if err := checkExpr(v.Expr, vars, funcs); err != nil {
				return err
			}
		case *IfStmt:
			if err := checkExpr(v.Cond, vars, funcs); err != nil {
				return err
			}
			if err := checkStmts(v.Then, vars, funcs); err != nil {
				return err
			}
			if err := checkStmts(v.Else, vars, funcs); err != nil {
				return err
			}
		case *WhileStmt:
			if err := checkExpr(v.Cond, vars, funcs); err != nil {
				return err
			}
			if err := checkStmts(v.Body, vars, funcs); err != nil {
				return err
			}
		case *ReturnStmt:
			if err := checkExpr(v.Expr, vars, funcs); err != nil {
				return err
			}
		case *PrintStmt:
			if err := checkExpr(v.Expr, vars, funcs); err != nil {
				return err
			}
		case *ExprStmt:
			if err := checkExpr(v.Expr, vars, funcs); err != nil {
				return err
			}
		}
	}
	return nil
}

func checkExpr(e Expr, vars map[string]bool, funcs map[string]*FuncDecl) error {
	switch v := e.(type) {
	case *IntLit:
		return nil
	case *VarRef:
		if !vars[v.Name] {
			return fmt.Errorf("minicc: line %d: undeclared variable %q", v.Line, v.Name)
		}
	case *Binary:
		if err := checkExpr(v.L, vars, funcs); err != nil {
			return err
		}
		return checkExpr(v.R, vars, funcs)
	case *Unary:
		return checkExpr(v.X, vars, funcs)
	case *Call:
		f, ok := funcs[v.Name]
		if !ok {
			return fmt.Errorf("minicc: line %d: call to undefined function %q", v.Line, v.Name)
		}
		if len(v.Args) != len(f.Params) {
			return fmt.Errorf("minicc: line %d: %s — %q takes %d args, got %d",
				v.Line, exprString(v), v.Name, len(f.Params), len(v.Args))
		}
		for _, a := range v.Args {
			if err := checkExpr(a, vars, funcs); err != nil {
				return err
			}
		}
	}
	return nil
}
