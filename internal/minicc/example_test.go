package minicc_test

import (
	"fmt"

	"repro/internal/minicc"
)

// Compile and run a MiniC program on the SWAT32 simulator.
func Example() {
	src := `
int square(int x) { return x * x; }
int main() {
    int i = 1;
    while (i <= 4) {
        print(square(i));
        i = i + 1;
    }
    return 0;
}`
	out, exit, _, err := minicc.Run(src, true, 100000)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Print(out)
	fmt.Println("exit", exit)
	// Output:
	// 1
	// 4
	// 9
	// 16
	// exit 0
}
