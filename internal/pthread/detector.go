package pthread

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Detector maintains the wait-for graph of threads and mutexes: thread T
// waits for mutex M, mutex M is held by thread U. A cycle in this graph
// is a deadlock. Mutexes attached via WithDetector report their events;
// LockAs refuses (with ErrDeadlockDetected) to begin a wait that would
// close a cycle — the deadlock-avoidance flavour covered alongside the
// four Coffman conditions in lecture.
type Detector struct {
	mu      *Mutex
	holds   map[*Mutex]ID          // mutex -> holding thread
	waits   map[ID]*Mutex          // thread -> mutex it is blocked on
	heldSet map[ID]map[*Mutex]bool // thread -> mutexes it holds
	history []string
}

// ErrDeadlockDetected is returned by LockAs when blocking would create a
// wait-for cycle.
var ErrDeadlockDetected = errors.New("pthread: deadlock detected (wait-for cycle)")

// NewDetector creates an empty detector.
func NewDetector() *Detector {
	return &Detector{
		mu:      NewMutex(MutexNormal),
		holds:   make(map[*Mutex]ID),
		waits:   make(map[ID]*Mutex),
		heldSet: make(map[ID]map[*Mutex]bool),
	}
}

// beforeWait records that thread self is about to block on m, first
// checking whether doing so closes a cycle.
func (d *Detector) beforeWait(self ID, m *Mutex) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	// Walk holder -> its wanted mutex -> that mutex's holder ... looking
	// for self.
	seen := map[ID]bool{}
	cur, held := d.holds[m], true
	for held && !seen[cur] {
		if cur == self {
			d.history = append(d.history, fmt.Sprintf("DEADLOCK: thread %d requesting mutex held (transitively) by itself", self))
			return ErrDeadlockDetected
		}
		seen[cur] = true
		next, waiting := d.waits[cur]
		if !waiting {
			break
		}
		cur, held = d.holds[next], true
		if _, ok := d.holds[next]; !ok {
			held = false
		}
	}
	d.waits[self] = m
	return nil
}

// acquired records that self now holds m.
func (d *Detector) acquired(self ID, m *Mutex) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.waits, self)
	d.holds[m] = self
	if d.heldSet[self] == nil {
		d.heldSet[self] = make(map[*Mutex]bool)
	}
	d.heldSet[self][m] = true
}

// released records that self no longer holds m.
func (d *Detector) released(self ID, m *Mutex) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.holds[m] == self {
		delete(d.holds, m)
	}
	if hs := d.heldSet[self]; hs != nil {
		delete(hs, m)
	}
}

// Snapshot renders the current wait-for graph for debugging, with threads
// sorted for deterministic output.
func (d *Detector) Snapshot() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	var ids []int
	for id := range d.waits {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	var b strings.Builder
	for _, id := range ids {
		m := d.waits[ID(id)]
		holder, ok := d.holds[m]
		if ok {
			fmt.Fprintf(&b, "thread %d waits for mutex held by thread %d\n", id, holder)
		} else {
			fmt.Fprintf(&b, "thread %d waits for a free mutex\n", id)
		}
	}
	return b.String()
}

// History returns diagnostic lines recorded at detection time.
func (d *Detector) History() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]string(nil), d.history...)
}
