// Package pthread provides a Pthreads-style threading API over goroutines:
// explicit thread create/join/detach, mutexes with the three POSIX kinds
// (normal, error-checking, recursive), condition variables, counting
// semaphores, cyclic barriers, a readers-writer lock, and once-only
// initialization — plus a wait-for-graph deadlock detector.
//
// Every primitive is built from channels and sync/atomic rather than by
// wrapping sync.Mutex and friends: the package is the CS31/CS87 lecture
// content ("how are locks made?") in executable form, and its semantics —
// who blocks, who wakes, what errors POSIX returns — follow the pthreads
// specification closely enough that lab handouts translate line by line.
//
// Goroutines substitute for kernel threads per the reproduction plan: the
// synchronization phenomena the labs study (races, deadlock, barrier
// phases, producer/consumer scheduling) are properties of concurrent
// execution, not of the OS thread implementation.
package pthread

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// ID identifies a thread for the error-checking and recursive mutex kinds
// and for deadlock detection (pthread_self).
type ID int64

var nextID atomic.Int64

// Thread is a joinable thread of execution (pthread_t).
type Thread struct {
	id       ID
	done     chan struct{}
	err      error
	detached atomic.Bool
	joined   atomic.Bool
}

// ErrJoined is returned when a thread is joined twice or joined after
// Detach — both undefined behaviour in POSIX, made checkable here.
var ErrJoined = errors.New("pthread: thread already joined or detached")

// Create starts fn on a new thread (pthread_create). The function
// receives the thread's own ID, which the owner-aware primitives use. A
// panic inside fn is captured and surfaced as the Join error, mirroring
// how a crashing pthread takes down the lab program with a diagnosable
// message instead of silently vanishing.
func Create(fn func(self ID)) *Thread {
	t := &Thread{id: ID(nextID.Add(1)), done: make(chan struct{})}
	go func() {
		defer close(t.done)
		defer func() {
			if r := recover(); r != nil {
				t.err = fmt.Errorf("pthread: thread %d panicked: %v", t.id, r)
			}
		}()
		fn(t.id)
	}()
	return t
}

// ID returns the thread's identifier.
func (t *Thread) ID() ID { return t.id }

// Join blocks until the thread finishes (pthread_join) and returns the
// panic error if it crashed. Joining twice or after Detach errors.
func (t *Thread) Join() error {
	if t.detached.Load() || !t.joined.CompareAndSwap(false, true) {
		return ErrJoined
	}
	<-t.done
	return t.err
}

// Detach marks the thread as never-to-be-joined (pthread_detach).
func (t *Thread) Detach() { t.detached.Store(true) }

// JoinAll joins every thread and returns the first error.
func JoinAll(ts []*Thread) error {
	var first error
	for _, t := range ts {
		if err := t.Join(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Spawn creates n threads running fn(self, index) and returns them; it is
// the "create a worker per core" loop at the top of every CS31 parallel
// lab.
func Spawn(n int, fn func(self ID, i int)) []*Thread {
	ts := make([]*Thread, n)
	for i := 0; i < n; i++ {
		i := i
		ts[i] = Create(func(self ID) { fn(self, i) })
	}
	return ts
}
