package pthread

import (
	"errors"
)

// MutexKind selects the POSIX mutex behaviour.
type MutexKind int

// The mutex kinds (PTHREAD_MUTEX_NORMAL, _ERRORCHECK, _RECURSIVE).
const (
	MutexNormal MutexKind = iota
	MutexErrorCheck
	MutexRecursive
)

// Errors returned by the owner-aware mutex operations, matching the POSIX
// error conditions (EDEADLK, EPERM).
var (
	ErrDeadlk   = errors.New("pthread: relocking a held errorcheck mutex (EDEADLK)")
	ErrNotOwner = errors.New("pthread: unlock by non-owner (EPERM)")
	ErrUnlocked = errors.New("pthread: unlock of unlocked mutex (EPERM)")
)

// Mutex is a mutual-exclusion lock built on a one-slot channel (the
// channel *is* the lock cell: a successful send is an acquired lock).
// The zero value is unusable; call NewMutex.
type Mutex struct {
	kind MutexKind
	slot chan struct{}
	// meta guards owner/depth for the owner-aware kinds.
	meta     chan struct{}
	owner    ID
	depth    int
	detector *Detector
}

// NewMutex creates a mutex of the given kind.
func NewMutex(kind MutexKind) *Mutex {
	m := &Mutex{kind: kind, slot: make(chan struct{}, 1), meta: make(chan struct{}, 1)}
	m.meta <- struct{}{}
	return m
}

// WithDetector attaches a deadlock detector; LockAs/UnlockAs report their
// wait-for edges to it.
func (m *Mutex) WithDetector(d *Detector) *Mutex {
	m.detector = d
	return m
}

// Lock acquires the mutex without an owner identity (usable from code
// that has no thread ID; error-checking kinds require LockAs).
func (m *Mutex) Lock() { m.slot <- struct{}{} }

// Unlock releases an anonymously held mutex.
func (m *Mutex) Unlock() {
	select {
	case <-m.slot:
	default:
		panic("pthread: unlock of unlocked mutex")
	}
}

// TryLock attempts the lock without blocking, reporting success
// (pthread_mutex_trylock).
func (m *Mutex) TryLock() bool {
	select {
	case m.slot <- struct{}{}:
		return true
	default:
		return false
	}
}

// LockAs acquires the mutex as the given thread, enforcing the kind's
// semantics: an error-checking mutex returns ErrDeadlk on self-relock; a
// recursive mutex counts depth; a normal mutex self-deadlocks (here
// detected and returned as an error if a Detector is attached, otherwise
// it blocks forever, exactly like the real thing).
func (m *Mutex) LockAs(self ID) error {
	<-m.meta
	if m.depth > 0 && m.owner == self {
		switch m.kind {
		case MutexRecursive:
			m.depth++
			m.meta <- struct{}{}
			return nil
		case MutexErrorCheck:
			m.meta <- struct{}{}
			return ErrDeadlk
		default:
			// Normal mutex self-relock: POSIX says deadlock. Report through
			// the detector when present; otherwise block forever below.
			if m.detector != nil {
				m.meta <- struct{}{}
				return ErrDeadlk
			}
		}
	}
	m.meta <- struct{}{}

	if m.detector != nil {
		if err := m.detector.beforeWait(self, m); err != nil {
			return err
		}
	}
	m.slot <- struct{}{} // block until acquired
	<-m.meta
	m.owner = self
	m.depth = 1
	m.meta <- struct{}{}
	if m.detector != nil {
		m.detector.acquired(self, m)
	}
	return nil
}

// UnlockAs releases the mutex as the given thread, enforcing ownership.
func (m *Mutex) UnlockAs(self ID) error {
	<-m.meta
	if m.depth == 0 {
		m.meta <- struct{}{}
		return ErrUnlocked
	}
	if m.owner != self {
		m.meta <- struct{}{}
		return ErrNotOwner
	}
	if m.kind == MutexRecursive && m.depth > 1 {
		m.depth--
		m.meta <- struct{}{}
		return nil
	}
	m.depth = 0
	m.owner = 0
	m.meta <- struct{}{}
	<-m.slot
	if m.detector != nil {
		m.detector.released(self, m)
	}
	return nil
}

// Cond is a condition variable used with a Mutex (pthread_cond_t). The
// implementation hands each waiter its own channel; Signal closes one,
// Broadcast closes all — the classic "wait queue of parked threads".
type Cond struct {
	mu      *Mutex
	meta    chan struct{}
	waiters []chan struct{}
}

// NewCond creates a condition variable bound to mu.
func NewCond(mu *Mutex) *Cond {
	c := &Cond{mu: mu, meta: make(chan struct{}, 1)}
	c.meta <- struct{}{}
	return c
}

// Wait atomically releases the mutex and blocks until signalled, then
// reacquires the mutex before returning (pthread_cond_wait). The caller
// must hold the mutex. As with POSIX, spurious-wakeup-safe use requires
// the enclosing while loop.
func (c *Cond) Wait() {
	park := make(chan struct{})
	<-c.meta
	c.waiters = append(c.waiters, park)
	c.meta <- struct{}{}
	c.mu.Unlock()
	<-park
	c.mu.Lock()
}

// WaitAs is Wait for owner-aware locking.
func (c *Cond) WaitAs(self ID) error {
	park := make(chan struct{})
	<-c.meta
	c.waiters = append(c.waiters, park)
	c.meta <- struct{}{}
	if err := c.mu.UnlockAs(self); err != nil {
		return err
	}
	<-park
	return c.mu.LockAs(self)
}

// Signal wakes one waiter if any (pthread_cond_signal).
func (c *Cond) Signal() {
	<-c.meta
	if len(c.waiters) > 0 {
		close(c.waiters[0])
		c.waiters = c.waiters[1:]
	}
	c.meta <- struct{}{}
}

// Broadcast wakes every waiter (pthread_cond_broadcast).
func (c *Cond) Broadcast() {
	<-c.meta
	for _, w := range c.waiters {
		close(w)
	}
	c.waiters = nil
	c.meta <- struct{}{}
}
