package pthread

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// Semaphore is a counting semaphore (sem_t) built from a mutex and a
// condition variable — the construction proved equivalent in lecture.
type Semaphore struct {
	mu    *Mutex
	cond  *Cond
	count int
}

// NewSemaphore creates a semaphore with the given initial count.
func NewSemaphore(initial int) *Semaphore {
	if initial < 0 {
		initial = 0
	}
	mu := NewMutex(MutexNormal)
	return &Semaphore{mu: mu, cond: NewCond(mu), count: initial}
}

// Wait decrements the semaphore, blocking while the count is zero
// (sem_wait, P).
func (s *Semaphore) Wait() {
	s.mu.Lock()
	for s.count == 0 {
		s.cond.Wait()
	}
	s.count--
	s.mu.Unlock()
}

// TryWait decrements without blocking, reporting success (sem_trywait).
func (s *Semaphore) TryWait() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.count == 0 {
		return false
	}
	s.count--
	return true
}

// Post increments the semaphore and wakes a waiter (sem_post, V).
func (s *Semaphore) Post() {
	s.mu.Lock()
	s.count++
	s.cond.Signal()
	s.mu.Unlock()
}

// Value returns the current count (sem_getvalue).
func (s *Semaphore) Value() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// BarrierSerial is returned to exactly one thread per barrier cycle
// (PTHREAD_BARRIER_SERIAL_THREAD), letting labs designate a coordinator.
var BarrierSerial = errors.New("pthread: barrier serial thread")

// Barrier is a cyclic barrier for a fixed party count
// (pthread_barrier_t). It is reusable across generations, which is what
// the parallel Game of Life needs between steps.
type Barrier struct {
	mu      *Mutex
	cond    *Cond
	parties int
	waiting int
	gen     uint64
}

// NewBarrier creates a barrier for n parties. n must be positive.
func NewBarrier(n int) (*Barrier, error) {
	if n <= 0 {
		return nil, fmt.Errorf("pthread: barrier count %d must be positive", n)
	}
	mu := NewMutex(MutexNormal)
	return &Barrier{mu: mu, cond: NewCond(mu), parties: n}, nil
}

// Wait blocks until all parties arrive. The last arriver gets
// BarrierSerial; the rest get nil (pthread_barrier_wait).
func (b *Barrier) Wait() error {
	b.mu.Lock()
	gen := b.gen
	b.waiting++
	if b.waiting == b.parties {
		b.waiting = 0
		b.gen++
		b.cond.Broadcast()
		b.mu.Unlock()
		return BarrierSerial
	}
	for gen == b.gen {
		b.cond.Wait()
	}
	b.mu.Unlock()
	return nil
}

// RWPreference selects reader- or writer-preference for RWLock — the
// starvation trade-off the readers/writers lecture analyzes.
type RWPreference int

// The preferences.
const (
	PreferReaders RWPreference = iota
	PreferWriters
)

// RWLock is a readers-writer lock (pthread_rwlock_t) with selectable
// preference, built from one mutex and two condition variables.
type RWLock struct {
	mu             *Mutex
	readOK         *Cond
	writeOK        *Cond
	pref           RWPreference
	readers        int // active readers
	writer         bool
	waitingWriters int
}

// NewRWLock creates an RWLock with the given preference.
func NewRWLock(pref RWPreference) *RWLock {
	mu := NewMutex(MutexNormal)
	return &RWLock{mu: mu, readOK: NewCond(mu), writeOK: NewCond(mu), pref: pref}
}

// RLock acquires the lock for reading.
func (l *RWLock) RLock() {
	l.mu.Lock()
	for l.writer || (l.pref == PreferWriters && l.waitingWriters > 0) {
		l.readOK.Wait()
	}
	l.readers++
	l.mu.Unlock()
}

// RUnlock releases a read hold.
func (l *RWLock) RUnlock() {
	l.mu.Lock()
	l.readers--
	if l.readers < 0 {
		l.mu.Unlock()
		panic("pthread: RUnlock without RLock")
	}
	if l.readers == 0 {
		l.writeOK.Signal()
	}
	l.mu.Unlock()
}

// Lock acquires the lock for writing (exclusive).
func (l *RWLock) Lock() {
	l.mu.Lock()
	l.waitingWriters++
	for l.writer || l.readers > 0 {
		l.writeOK.Wait()
	}
	l.waitingWriters--
	l.writer = true
	l.mu.Unlock()
}

// Unlock releases the write hold.
func (l *RWLock) Unlock() {
	l.mu.Lock()
	if !l.writer {
		l.mu.Unlock()
		panic("pthread: Unlock without Lock")
	}
	l.writer = false
	if l.pref == PreferWriters && l.waitingWriters > 0 {
		l.writeOK.Signal()
	} else {
		l.readOK.Broadcast()
		l.writeOK.Signal()
	}
	l.mu.Unlock()
}

// Once runs its function exactly once across threads (pthread_once),
// implemented with an atomic state machine and a completion channel so
// latecomers block until the first caller finishes.
type Once struct {
	state atomic.Int32 // 0 new, 1 running, 2 done
	done  atomic.Pointer[chan struct{}]
}

func (o *Once) doneCh() chan struct{} {
	if p := o.done.Load(); p != nil {
		return *p
	}
	ch := make(chan struct{})
	if o.done.CompareAndSwap(nil, &ch) {
		return ch
	}
	return *o.done.Load()
}

// Do invokes fn on the first call; concurrent callers wait until fn has
// completed.
func (o *Once) Do(fn func()) {
	ch := o.doneCh()
	if o.state.CompareAndSwap(0, 1) {
		defer close(ch)
		defer o.state.Store(2)
		fn()
		return
	}
	<-ch
}

// SpinLock is a test-and-set spinlock built on atomic CAS — shown in
// lecture as the hardware foundation beneath mutexes. It burns CPU while
// contended; the mutex comparison benchmark quantifies that.
type SpinLock struct {
	state atomic.Int32
}

// Lock spins until the lock is acquired.
func (s *SpinLock) Lock() {
	for !s.state.CompareAndSwap(0, 1) {
	}
}

// TryLock attempts one CAS.
func (s *SpinLock) TryLock() bool { return s.state.CompareAndSwap(0, 1) }

// Unlock releases the lock.
func (s *SpinLock) Unlock() {
	if !s.state.CompareAndSwap(1, 0) {
		panic("pthread: unlock of unlocked spinlock")
	}
}
