package pthread

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestCreateJoin(t *testing.T) {
	var ran atomic.Bool
	th := Create(func(self ID) {
		if self == 0 {
			t.Error("thread ID must be nonzero")
		}
		ran.Store(true)
	})
	if err := th.Join(); err != nil {
		t.Fatal(err)
	}
	if !ran.Load() {
		t.Error("thread body did not run")
	}
	if err := th.Join(); !errors.Is(err, ErrJoined) {
		t.Errorf("double join: %v", err)
	}
}

func TestJoinSurfacesPanic(t *testing.T) {
	th := Create(func(ID) { panic("lab bug") })
	err := th.Join()
	if err == nil || !contains(err.Error(), "lab bug") {
		t.Errorf("Join should surface panic, got %v", err)
	}
}

func TestDetach(t *testing.T) {
	th := Create(func(ID) {})
	th.Detach()
	if err := th.Join(); !errors.Is(err, ErrJoined) {
		t.Errorf("join after detach: %v", err)
	}
}

func TestSpawnIndexes(t *testing.T) {
	const n = 8
	var mask atomic.Int64
	ts := Spawn(n, func(_ ID, i int) {
		mask.Add(1 << uint(i))
	})
	if err := JoinAll(ts); err != nil {
		t.Fatal(err)
	}
	if mask.Load() != (1<<n)-1 {
		t.Errorf("worker indexes mask = %b", mask.Load())
	}
}

func TestMutexExcludes(t *testing.T) {
	m := NewMutex(MutexNormal)
	counter := 0
	ts := Spawn(4, func(ID, int) {
		for i := 0; i < 1000; i++ {
			m.Lock()
			counter++
			m.Unlock()
		}
	})
	if err := JoinAll(ts); err != nil {
		t.Fatal(err)
	}
	if counter != 4000 {
		t.Errorf("counter = %d, want 4000 (mutex failed to exclude)", counter)
	}
}

func TestMutexTryLock(t *testing.T) {
	m := NewMutex(MutexNormal)
	if !m.TryLock() {
		t.Fatal("uncontended TryLock failed")
	}
	if m.TryLock() {
		t.Fatal("second TryLock should fail")
	}
	m.Unlock()
	if !m.TryLock() {
		t.Fatal("TryLock after unlock failed")
	}
	m.Unlock()
}

func TestMutexUnlockUnlockedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewMutex(MutexNormal).Unlock()
}

func TestErrorCheckMutex(t *testing.T) {
	m := NewMutex(MutexErrorCheck)
	if err := m.LockAs(1); err != nil {
		t.Fatal(err)
	}
	if err := m.LockAs(1); !errors.Is(err, ErrDeadlk) {
		t.Errorf("self-relock: %v, want EDEADLK", err)
	}
	if err := m.UnlockAs(2); !errors.Is(err, ErrNotOwner) {
		t.Errorf("foreign unlock: %v, want EPERM", err)
	}
	if err := m.UnlockAs(1); err != nil {
		t.Fatal(err)
	}
	if err := m.UnlockAs(1); !errors.Is(err, ErrUnlocked) {
		t.Errorf("unlock of unlocked: %v", err)
	}
}

func TestRecursiveMutex(t *testing.T) {
	m := NewMutex(MutexRecursive)
	for i := 0; i < 3; i++ {
		if err := m.LockAs(7); err != nil {
			t.Fatal(err)
		}
	}
	// Another thread cannot take it until fully released.
	acquired := make(chan struct{})
	go func() {
		if err := m.LockAs(8); err != nil {
			t.Error(err)
		}
		close(acquired)
	}()
	for i := 0; i < 3; i++ {
		select {
		case <-acquired:
			t.Fatal("recursive mutex released early")
		default:
		}
		if err := m.UnlockAs(7); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-acquired:
	case <-time.After(2 * time.Second):
		t.Fatal("waiter never acquired after full release")
	}
	if err := m.UnlockAs(8); err != nil {
		t.Fatal(err)
	}
}

func TestCondProducerConsumer(t *testing.T) {
	mu := NewMutex(MutexNormal)
	cond := NewCond(mu)
	queue := 0
	consumed := make(chan int, 100)
	cons := Create(func(ID) {
		for got := 0; got < 100; got++ {
			mu.Lock()
			for queue == 0 {
				cond.Wait()
			}
			queue--
			mu.Unlock()
			consumed <- 1
		}
	})
	prod := Create(func(ID) {
		for i := 0; i < 100; i++ {
			mu.Lock()
			queue++
			cond.Signal()
			mu.Unlock()
		}
	})
	if err := prod.Join(); err != nil {
		t.Fatal(err)
	}
	if err := cons.Join(); err != nil {
		t.Fatal(err)
	}
	if len(consumed) != 100 {
		t.Errorf("consumed %d items", len(consumed))
	}
}

func TestCondBroadcastWakesAll(t *testing.T) {
	mu := NewMutex(MutexNormal)
	cond := NewCond(mu)
	ready := false
	var woke atomic.Int32
	ts := Spawn(5, func(ID, int) {
		mu.Lock()
		for !ready {
			cond.Wait()
		}
		mu.Unlock()
		woke.Add(1)
	})
	time.Sleep(50 * time.Millisecond) // let them park
	mu.Lock()
	ready = true
	cond.Broadcast()
	mu.Unlock()
	if err := JoinAll(ts); err != nil {
		t.Fatal(err)
	}
	if woke.Load() != 5 {
		t.Errorf("woke %d of 5", woke.Load())
	}
}

func TestSemaphore(t *testing.T) {
	s := NewSemaphore(2)
	s.Wait()
	s.Wait()
	if s.TryWait() {
		t.Error("third TryWait should fail at count 0")
	}
	s.Post()
	if !s.TryWait() {
		t.Error("TryWait after Post should succeed")
	}
	if s.Value() != 0 {
		t.Errorf("value = %d", s.Value())
	}
	// Semaphore as a rendezvous: consumer blocks until producer posts.
	done := make(chan struct{})
	go func() {
		s.Wait()
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("Wait should block at zero")
	case <-time.After(20 * time.Millisecond):
	}
	s.Post()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Post did not wake waiter")
	}
}

func TestBarrierPhases(t *testing.T) {
	const parties, phases = 4, 5
	b, err := NewBarrier(parties)
	if err != nil {
		t.Fatal(err)
	}
	var serials atomic.Int32
	phase := make([]atomic.Int32, phases)
	ts := Spawn(parties, func(ID, int) {
		for p := 0; p < phases; p++ {
			phase[p].Add(1)
			if err := b.Wait(); errors.Is(err, BarrierSerial) {
				serials.Add(1)
			}
			// After the barrier, every thread must have bumped this phase.
			if got := phase[p].Load(); got != parties {
				t.Errorf("phase %d: saw %d arrivals after barrier", p, got)
			}
		}
	})
	if err := JoinAll(ts); err != nil {
		t.Fatal(err)
	}
	if serials.Load() != phases {
		t.Errorf("serial threads = %d, want one per phase (%d)", serials.Load(), phases)
	}
}

func TestBarrierRejectsNonPositive(t *testing.T) {
	if _, err := NewBarrier(0); err == nil {
		t.Error("NewBarrier(0) should error")
	}
}

func TestRWLockConcurrentReaders(t *testing.T) {
	l := NewRWLock(PreferWriters)
	var concurrent, peak atomic.Int32
	ts := Spawn(8, func(ID, int) {
		for i := 0; i < 50; i++ {
			l.RLock()
			c := concurrent.Add(1)
			for {
				p := peak.Load()
				if c <= p || peak.CompareAndSwap(p, c) {
					break
				}
			}
			concurrent.Add(-1)
			l.RUnlock()
		}
	})
	if err := JoinAll(ts); err != nil {
		t.Fatal(err)
	}
	if peak.Load() < 2 {
		t.Logf("peak concurrent readers = %d (scheduling-dependent on 1 CPU)", peak.Load())
	}
}

func TestRWLockWriterExcludes(t *testing.T) {
	l := NewRWLock(PreferWriters)
	shared := 0
	ts := Spawn(4, func(ID, int) {
		for i := 0; i < 500; i++ {
			l.Lock()
			shared++
			l.Unlock()
			l.RLock()
			_ = shared
			l.RUnlock()
		}
	})
	if err := JoinAll(ts); err != nil {
		t.Fatal(err)
	}
	if shared != 2000 {
		t.Errorf("shared = %d, want 2000", shared)
	}
}

func TestOnce(t *testing.T) {
	var o Once
	var runs atomic.Int32
	ts := Spawn(8, func(ID, int) {
		o.Do(func() {
			time.Sleep(10 * time.Millisecond)
			runs.Add(1)
		})
		// After Do returns, the init must be complete for everyone.
		if runs.Load() != 1 {
			t.Error("Do returned before init completed")
		}
	})
	if err := JoinAll(ts); err != nil {
		t.Fatal(err)
	}
	if runs.Load() != 1 {
		t.Errorf("init ran %d times", runs.Load())
	}
}

func TestSpinLock(t *testing.T) {
	var s SpinLock
	counter := 0
	ts := Spawn(4, func(ID, int) {
		for i := 0; i < 500; i++ {
			s.Lock()
			counter++
			s.Unlock()
		}
	})
	if err := JoinAll(ts); err != nil {
		t.Fatal(err)
	}
	if counter != 2000 {
		t.Errorf("counter = %d", counter)
	}
	if !s.TryLock() {
		t.Error("TryLock on free lock")
	}
	if s.TryLock() {
		t.Error("TryLock on held lock")
	}
	s.Unlock()
}

func TestSpinUnlockUnlockedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	var s SpinLock
	s.Unlock()
}

func TestDeadlockDetectorCatchesABBA(t *testing.T) {
	d := NewDetector()
	a := NewMutex(MutexNormal).WithDetector(d)
	b := NewMutex(MutexNormal).WithDetector(d)

	// Thread 1 takes A, thread 2 takes B; a rendezvous guarantees both
	// hold their first lock before requesting the other, forcing the cycle.
	got := make(chan error, 2)
	ready := make(chan struct{}, 2)
	step := make(chan struct{})
	t1 := Create(func(self ID) {
		if err := a.LockAs(self); err != nil {
			got <- err
			return
		}
		ready <- struct{}{}
		<-step
		err := b.LockAs(self)
		got <- err
		if err == nil {
			b.UnlockAs(self)
		}
		a.UnlockAs(self)
	})
	t2 := Create(func(self ID) {
		if err := b.LockAs(self); err != nil {
			got <- err
			return
		}
		ready <- struct{}{}
		<-step
		err := a.LockAs(self)
		got <- err
		if err == nil {
			a.UnlockAs(self)
		}
		b.UnlockAs(self)
	})
	<-ready
	<-ready
	close(step)
	var sawDeadlock bool
	for i := 0; i < 2; i++ {
		select {
		case err := <-got:
			if errors.Is(err, ErrDeadlockDetected) {
				sawDeadlock = true
			}
		case <-time.After(5 * time.Second):
			t.Fatal("threads hung: detector failed\n" + d.Snapshot())
		}
	}
	if !sawDeadlock {
		t.Error("ABBA pattern should trip the detector at least once")
	}
	t1.Join()
	t2.Join()
	if len(d.History()) == 0 {
		t.Error("detector history empty after detection")
	}
}

func TestDetectorSelfRelock(t *testing.T) {
	d := NewDetector()
	m := NewMutex(MutexNormal).WithDetector(d)
	errc := make(chan error, 1)
	th := Create(func(self ID) {
		if err := m.LockAs(self); err != nil {
			errc <- err
			return
		}
		errc <- m.LockAs(self) // self-deadlock, detected
		m.UnlockAs(self)
	})
	select {
	case err := <-errc:
		if !errors.Is(err, ErrDeadlk) {
			t.Errorf("self-relock: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("self-relock hung despite detector")
	}
	th.Join()
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
