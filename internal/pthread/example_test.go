package pthread_test

import (
	"fmt"

	"repro/internal/pthread"
)

// The structure of every CS31 parallel lab: spawn workers, protect the
// shared accumulator with a mutex, join.
func Example() {
	mu := pthread.NewMutex(pthread.MutexNormal)
	sum := 0
	threads := pthread.Spawn(4, func(_ pthread.ID, i int) {
		for j := 0; j < 100; j++ {
			mu.Lock()
			sum++
			mu.Unlock()
		}
	})
	if err := pthread.JoinAll(threads); err != nil {
		fmt.Println("join failed:", err)
		return
	}
	fmt.Println(sum)
	// Output: 400
}

// A cyclic barrier coordinates phased computation; exactly one thread per
// phase is told it is the serial thread.
func ExampleBarrier() {
	barrier, err := pthread.NewBarrier(3)
	if err != nil {
		fmt.Println(err)
		return
	}
	serials := make(chan int, 6)
	threads := pthread.Spawn(3, func(_ pthread.ID, i int) {
		for phase := 0; phase < 2; phase++ {
			if barrier.Wait() == pthread.BarrierSerial {
				serials <- phase
			}
		}
	})
	pthread.JoinAll(threads)
	close(serials)
	count := 0
	for range serials {
		count++
	}
	fmt.Println(count)
	// Output: 2
}

// A counting semaphore bounds concurrent entry — the lecture's sleeping
// pool of permits.
func ExampleSemaphore() {
	sem := pthread.NewSemaphore(2)
	sem.Wait()
	sem.Wait()
	fmt.Println(sem.TryWait()) // pool exhausted
	sem.Post()
	fmt.Println(sem.TryWait()) // a permit came back
	// Output:
	// false
	// true
}
