package bomb

import (
	"strings"
	"testing"
)

func TestSolutionsDefuse(t *testing.T) {
	for variant := 0; variant < 20; variant++ {
		b, err := New(variant)
		if err != nil {
			t.Fatalf("variant %d: %v", variant, err)
		}
		ok, err := b.Defused(b.Solutions())
		if err != nil {
			t.Fatalf("variant %d: %v", variant, err)
		}
		if !ok {
			res, _ := b.Run(b.Solutions())
			t.Errorf("variant %d: solutions failed at phase %d\noutput:\n%s",
				variant, res.PhasesDefused+1, res.Output)
		}
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a, err := New(7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(7)
	if err != nil {
		t.Fatal(err)
	}
	if a.Source != b.Source {
		t.Error("same variant should generate identical bombs")
	}
	c, err := New(8)
	if err != nil {
		t.Fatal(err)
	}
	if a.Source == c.Source {
		t.Error("different variants should differ")
	}
}

func TestWrongAnswersExplode(t *testing.T) {
	b, err := New(3)
	if err != nil {
		t.Fatal(err)
	}
	sol := b.Solutions()
	for phase := 0; phase < NumPhases; phase++ {
		inputs := append([]string(nil), sol...)
		inputs[phase] = "definitely wrong"
		res, err := b.Run(inputs)
		if err != nil {
			t.Fatalf("phase %d: %v", phase, err)
		}
		if !res.Exploded {
			t.Errorf("phase %d: wrong answer did not explode", phase)
		}
		if res.PhasesDefused != phase {
			t.Errorf("phase %d: defused %d phases before exploding", phase, res.PhasesDefused)
		}
	}
}

func TestMissingInputExplodes(t *testing.T) {
	b, err := New(1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.Run(b.Solutions()[:2])
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exploded || res.PhasesDefused != 2 {
		t.Errorf("truncated input: exploded=%v defused=%d", res.Exploded, res.PhasesDefused)
	}
}

func TestAlternativePalindromeAccepted(t *testing.T) {
	// Phase 4 accepts any palindrome >= 3 chars, not just the answer key.
	b, err := New(5)
	if err != nil {
		t.Fatal(err)
	}
	sol := b.Solutions()
	sol[3] = "abcba"
	ok, err := b.Defused(sol)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("alternative palindrome should defuse phase 4")
	}
	sol[3] = "ab" // too short
	ok, _ = b.Defused(sol)
	if ok {
		t.Error("2-char input should explode phase 4")
	}
	sol[3] = "abcda" // not a palindrome
	ok, _ = b.Defused(sol)
	if ok {
		t.Error("non-palindrome should explode phase 4")
	}
}

func TestPhase3AnyStringWithChecksum(t *testing.T) {
	// Any string with the right character sum defuses phase 3.
	b, err := New(2)
	if err != nil {
		t.Fatal(err)
	}
	sol := b.Solutions()
	// A permutation of the secret has the same character sum but is a
	// different string: rotate it by one character.
	secret := sol[2]
	alt := secret[1:] + secret[:1]
	if alt == secret {
		t.Skip("secret is rotation-invariant")
	}
	sol[2] = alt
	ok, err := b.Defused(sol)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		res, _ := b.Run(sol)
		t.Errorf("alternative checksum string rejected; output:\n%s", res.Output)
	}
}

func TestDisassemblyMentionsAllPhases(t *testing.T) {
	b, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	dis, err := b.Disassembly()
	if err != nil {
		t.Fatal(err)
	}
	// The listing must contain the explode service and the xor constant the
	// student needs to find.
	if !strings.Contains(dis, "sys $4") {
		t.Error("disassembly missing explode syscall")
	}
	if !strings.Contains(dis, "xor $") {
		t.Error("disassembly missing phase-5 xor")
	}
	if lines := strings.Count(dis, "\n"); lines < 80 {
		t.Errorf("disassembly suspiciously short: %d lines", lines)
	}
}

func TestBannerPrinted(t *testing.T) {
	b, err := New(11)
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Output, "variant 11") {
		t.Errorf("banner missing: %q", res.Output)
	}
	if !res.Exploded {
		t.Error("empty input must explode at the first readline")
	}
}
