// Package bomb implements the CS31 "Binary Bomb" lab on top of the SWAT32
// simulator. A bomb is a six-phase assembly program: each phase reads one
// input line and checks it against a secret predicate; any wrong answer
// executes the explode service. Students defuse it by disassembling and
// tracing the binary — exactly the Bryant & O'Hallaron exercise the paper
// imports, retargeted to SWAT32.
//
// Bombs are generated per variant number, so every student gets different
// secrets from the same phase structure.
package bomb

import (
	"fmt"
	"strings"

	"repro/internal/isa"
)

// NumPhases is the number of phases in every generated bomb.
const NumPhases = 6

// Bomb is a generated binary bomb: the assembly source, the assembled
// program, and (for graders) the secret solutions.
type Bomb struct {
	Variant   int
	Source    string
	Program   *isa.Program
	solutions [NumPhases]string
}

// rng is a tiny deterministic xorshift generator so variants are stable
// across runs without importing math/rand.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s
}

// intn returns a value in [0, n).
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

var wordPool = []string{
	"swarthmore", "pipeline", "pthreads", "speedup", "barrier",
	"amdahl", "cache", "scheduler", "parallel", "semaphore",
	"deadlock", "mutex", "registers", "overflow", "segfault",
}

var palindromePool = []string{
	"racecar", "level", "rotator", "deified", "civic", "madamimadam",
}

// New generates the bomb for a variant number. Generation is
// deterministic: the same variant always yields the same bomb.
func New(variant int) (*Bomb, error) {
	r := &rng{s: uint64(variant)*2654435761 + 88172645463325252}
	for i := 0; i < 8; i++ {
		r.next()
	}
	b := &Bomb{Variant: variant}

	// Phase 1: exact string match.
	secret1 := wordPool[r.intn(len(wordPool))]
	b.solutions[0] = secret1

	// Phase 2: six characters ascending by 2 from a random printable start.
	c0 := byte('A' + r.intn(20))
	p2 := make([]byte, 6)
	for i := range p2 {
		p2[i] = c0 + byte(2*i)
	}
	b.solutions[1] = string(p2)

	// Phase 3: character checksum must equal the sum of a secret word.
	secret3 := wordPool[r.intn(len(wordPool))]
	sum3 := 0
	for _, c := range []byte(secret3) {
		sum3 += int(c)
	}
	b.solutions[2] = secret3

	// Phase 4: any palindrome of length >= 3; the canonical solution is a
	// pool pick (graders use it; students may find another).
	b.solutions[3] = palindromePool[r.intn(len(palindromePool))]

	// Phase 5: XOR-encoded string. Key avoids producing NUL or clashing
	// with the terminator.
	key := byte(1 + r.intn(30))
	plain5 := wordPool[r.intn(len(wordPool))]
	enc := make([]int, len(plain5))
	for i := range plain5 {
		e := plain5[i] ^ key
		if e == 0 { // cannot happen for lowercase ^ key<31, but stay safe
			return nil, fmt.Errorf("bomb: phase 5 encoding produced NUL")
		}
		enc[i] = int(e)
	}
	b.solutions[4] = plain5

	// Phase 6: exactly 7 chars with parity(char i) == parity(i).
	p6 := make([]byte, 7)
	base := byte('@' + 2*r.intn(8)) // even ASCII start
	for i := range p6 {
		p6[i] = base + byte(i)
	}
	b.solutions[5] = string(p6)

	encWords := make([]string, len(enc)+1)
	for i, e := range enc {
		encWords[i] = fmt.Sprintf("%d", e)
	}
	encWords[len(enc)] = "0"

	b.Source = fmt.Sprintf(bombTemplate,
		variant,                      // banner
		secret1,                      // phase 1 secret
		int(c0),                      // phase 2 first char
		sum3,                         // phase 3 checksum
		int(key),                     // phase 5 key
		strings.Join(encWords, ", "), // phase 5 encoded bytes as words
	)
	p, err := isa.Assemble(b.Source)
	if err != nil {
		return nil, fmt.Errorf("bomb: generated source failed to assemble: %w", err)
	}
	b.Program = p
	return b, nil
}

// Solutions returns the grader's answer key, one line per phase.
func (b *Bomb) Solutions() []string {
	out := make([]string, NumPhases)
	copy(out, b.solutions[:])
	return out
}

// Disassembly returns the gdb-style listing of the bomb's code segment —
// the artifact students actually work from.
func (b *Bomb) Disassembly() (string, error) {
	return isa.Disassemble(b.Program.Code)
}

// Result reports the outcome of a defuse attempt.
type Result struct {
	PhasesDefused int
	Exploded      bool
	Output        string
}

// Run feeds the input lines to the bomb and reports how far it got. A
// missing or wrong line explodes the bomb at that phase.
func (b *Bomb) Run(inputs []string) (Result, error) {
	cpu := isa.NewCPU(b.Program)
	cpu.Input = inputs
	err := cpu.Run(2_000_000)
	res := Result{Output: cpu.Output.String()}
	res.PhasesDefused = strings.Count(res.Output, "Phase") - strings.Count(res.Output, "Phase?")
	// Count completed phases by their completion markers.
	res.PhasesDefused = 0
	for i := 1; i <= NumPhases; i++ {
		if strings.Contains(res.Output, fmt.Sprintf("Phase %d defused", i)) {
			res.PhasesDefused++
		}
	}
	if err == isa.ErrExploded {
		res.Exploded = true
		return res, nil
	}
	if err != nil {
		return res, err
	}
	return res, nil
}

// Defused reports whether inputs fully defuse the bomb.
func (b *Bomb) Defused(inputs []string) (bool, error) {
	res, err := b.Run(inputs)
	if err != nil {
		return false, err
	}
	return !res.Exploded && res.PhasesDefused == NumPhases, nil
}

// bombTemplate is the bomb program. Format arguments: variant, phase-1
// secret string, phase-2 start char, phase-3 checksum, phase-5 key,
// phase-5 encoded byte list.
const bombTemplate = `
.data
banner:  .asciz "SWAT32 binary bomb, variant %d. Answer or BOOM.\n"
msg1:    .asciz "Phase 1 defused\n"
msg2:    .asciz "Phase 2 defused\n"
msg3:    .asciz "Phase 3 defused\n"
msg4:    .asciz "Phase 4 defused\n"
msg5:    .asciz "Phase 5 defused\n"
msg6:    .asciz "Phase 6 defused\n"
done:    .asciz "Congratulations, bomb defused!\n"
secret1: .asciz "%s"
enc5:    .word %[6]s
buf:     .space 64

.text
main:
    movl $banner, %%eax
    sys $2
    call readline
    call phase1
    movl $msg1, %%eax
    sys $2
    call readline
    call phase2
    movl $msg2, %%eax
    sys $2
    call readline
    call phase3
    movl $msg3, %%eax
    sys $2
    call readline
    call phase4
    movl $msg4, %%eax
    sys $2
    call readline
    call phase5
    movl $msg5, %%eax
    sys $2
    call readline
    call phase6
    movl $msg6, %%eax
    sys $2
    movl $done, %%eax
    sys $2
    movl $0, %%eax
    sys $0

readline:
    movl $buf, %%eax
    movl $64, %%ebx
    sys $3
    cmpl $0, %%eax
    jl boom
    ret

boom:
    sys $4

# Phase 1: strcmp(buf, secret1)
phase1:
    movl $buf, %%esi
    movl $secret1, %%edi
p1_loop:
    movb 0(%%esi), %%eax
    movb 0(%%edi), %%ebx
    cmpl %%ebx, %%eax
    jne boom
    cmpl $0, %%eax
    je p1_ok
    incl %%esi
    incl %%edi
    jmp p1_loop
p1_ok:
    ret

# Phase 2: six chars, each two greater than the last, starting at a secret
phase2:
    movl $buf, %%esi
    movb 0(%%esi), %%eax
    cmpl $%[3]d, %%eax
    jne boom
    movl $5, %%ecx
p2_loop:
    movb 0(%%esi), %%eax
    movb 1(%%esi), %%ebx
    subl %%eax, %%ebx
    cmpl $2, %%ebx
    jne boom
    incl %%esi
    decl %%ecx
    cmpl $0, %%ecx
    jg p2_loop
    movb 1(%%esi), %%eax
    cmpl $0, %%eax
    jne boom
    ret

# Phase 3: character checksum equals a secret constant
phase3:
    movl $buf, %%esi
    movl $0, %%edx
p3_loop:
    movb 0(%%esi), %%eax
    cmpl $0, %%eax
    je p3_done
    addl %%eax, %%edx
    incl %%esi
    jmp p3_loop
p3_done:
    cmpl $%[4]d, %%edx
    jne boom
    cmpl $buf, %%esi
    je boom
    ret

# Phase 4: palindrome of length >= 3
phase4:
    movl $buf, %%esi
    movl %%esi, %%edi
p4_len:
    movb 0(%%edi), %%eax
    cmpl $0, %%eax
    je p4_len_done
    incl %%edi
    jmp p4_len
p4_len_done:
    movl %%edi, %%eax
    subl %%esi, %%eax
    cmpl $3, %%eax
    jl boom
    decl %%edi
p4_cmp:
    cmpl %%esi, %%edi
    jle p4_ok
    movb 0(%%esi), %%eax
    movb 0(%%edi), %%ebx
    cmpl %%ebx, %%eax
    jne boom
    incl %%esi
    decl %%edi
    jmp p4_cmp
p4_ok:
    ret

# Phase 5: XOR cipher: input ^ key must equal the encoded table
phase5:
    movl $buf, %%esi
    movl $enc5, %%edi
p5_loop:
    movl 0(%%edi), %%ebx
    cmpl $0, %%ebx
    je p5_end
    movb 0(%%esi), %%eax
    cmpl $0, %%eax
    je boom
    xorl $%[5]d, %%eax
    cmpl %%ebx, %%eax
    jne boom
    incl %%esi
    addl $4, %%edi
    jmp p5_loop
p5_end:
    movb 0(%%esi), %%eax
    cmpl $0, %%eax
    jne boom
    ret

# Phase 6: exactly 7 chars; parity of char i equals parity of i
phase6:
    movl $buf, %%esi
    movl $0, %%ecx
p6_loop:
    movb 0(%%esi), %%eax
    cmpl $0, %%eax
    je p6_done
    movl %%eax, %%ebx
    andl $1, %%ebx
    movl %%ecx, %%edx
    andl $1, %%edx
    cmpl %%edx, %%ebx
    jne boom
    incl %%esi
    incl %%ecx
    jmp p6_loop
p6_done:
    cmpl $7, %%ecx
    jne boom
    ret
`
