package db

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/mp"
)

// This file implements two-phase commit over internal/mp — the
// "distributed transactions" item of the CS44 plan. Rank 0 coordinates;
// ranks 1..N are participants holding local key-value state. Phase 1
// sends PREPARE and collects votes; phase 2 sends COMMIT or ABORT.
// Atomicity invariant: after the protocol, either every participant
// applied the transaction or none did. Vote injection lets tests force
// aborts; a "crashed" participant (never answering) is detected by the
// coordinator's timeout and treated as a NO vote.

// Txn is a distributed transaction: writes per participant (1-based rank).
type Txn struct {
	Writes map[int]map[string]string
}

// TPCConfig parameterizes a two-phase-commit run.
type TPCConfig struct {
	Participants int
	// VoteNo, when non-nil, makes participants vote NO on given txn index.
	VoteNo func(participant, txnIndex int) bool
	// CrashOnPrepare makes a participant stop responding from that txn on.
	CrashOnPrepare func(participant, txnIndex int) bool
	// TimeoutMS is the coordinator's vote-collection timeout.
	TimeoutMS int
}

// TPCResult reports a run's outcomes.
type TPCResult struct {
	Committed []bool              // per transaction
	States    []map[string]string // final state per participant (1-based -> index 0..)
}

const (
	tagPrepare = iota + 1
	tagVote
	tagDecision
	tagState
	tagShutdown
)

type prepareMsg struct {
	TxnIndex int
	Writes   map[string]string
}

type voteMsg struct {
	TxnIndex int
	Yes      bool
}

type decisionMsg struct {
	TxnIndex int
	Commit   bool
}

// RunTransactions executes the transactions in order under 2PC and
// returns per-transaction outcomes plus each participant's final state.
func RunTransactions(cfg TPCConfig, txns []Txn) (TPCResult, error) {
	if cfg.Participants < 1 {
		return TPCResult{}, errors.New("db: need at least one participant")
	}
	timeout := cfg.TimeoutMS
	if timeout <= 0 {
		timeout = 200
	}
	res := TPCResult{
		Committed: make([]bool, len(txns)),
		States:    make([]map[string]string, cfg.Participants),
	}
	err := mp.Run(cfg.Participants+1, func(c *mp.Comm) error {
		if c.Rank() == 0 {
			return coordinator(c, cfg, txns, &res)
		}
		return participant(c, cfg)
	})
	return res, err
}

func coordinator(c *mp.Comm, cfg TPCConfig, txns []Txn, res *TPCResult) error {
	n := cfg.Participants
	crashed := make([]bool, n+1)
	for ti, txn := range txns {
		// Phase 1: prepare.
		involved := make([]int, 0, n)
		for p := 1; p <= n; p++ {
			w := txn.Writes[p]
			if len(w) == 0 {
				continue
			}
			involved = append(involved, p)
			if err := c.Send(p, tagPrepare, prepareMsg{TxnIndex: ti, Writes: w}); err != nil {
				return err
			}
		}
		allYes := true
		for _, p := range involved {
			if crashed[p] {
				allYes = false
				continue
			}
			m, ok, err := c.RecvTimeout(p, tagVote, msDuration(cfg.TimeoutMS))
			if err != nil {
				return err
			}
			if !ok {
				// Silent participant: presumed crashed; vote NO.
				crashed[p] = true
				allYes = false
				continue
			}
			v := m.Data.(voteMsg)
			if v.TxnIndex != ti {
				return fmt.Errorf("db: vote for txn %d while running %d", v.TxnIndex, ti)
			}
			if !v.Yes {
				allYes = false
			}
		}
		// Phase 2: decision to every involved, live participant.
		for _, p := range involved {
			if crashed[p] {
				continue
			}
			if err := c.Send(p, tagDecision, decisionMsg{TxnIndex: ti, Commit: allYes}); err != nil {
				return err
			}
		}
		res.Committed[ti] = allYes
	}
	// Collect final states and shut down.
	for p := 1; p <= n; p++ {
		if err := c.Send(p, tagShutdown, "report"); err != nil {
			return err
		}
	}
	for p := 1; p <= n; p++ {
		if crashed[p] {
			res.States[p-1] = nil // unknown: the node is gone
			continue
		}
		m, ok, err := c.RecvTimeout(p, tagState, msDuration(cfg.TimeoutMS))
		if err != nil {
			return err
		}
		if !ok {
			res.States[p-1] = nil
			continue
		}
		res.States[p-1] = m.Data.(map[string]string)
	}
	return nil
}

func participant(c *mp.Comm, cfg TPCConfig) error {
	me := c.Rank()
	state := map[string]string{}
	staged := map[int]map[string]string{}
	crashed := false
	for {
		m, err := c.Recv(0, mp.AnyTag)
		if err != nil {
			return err
		}
		if m.Tag == tagShutdown {
			if crashed {
				return nil // a crashed node reports nothing
			}
			snapshot := make(map[string]string, len(state))
			for k, v := range state {
				snapshot[k] = v
			}
			return c.Send(0, tagState, snapshot)
		}
		if crashed {
			continue
		}
		switch m.Tag {
		case tagPrepare:
			pm := m.Data.(prepareMsg)
			if cfg.CrashOnPrepare != nil && cfg.CrashOnPrepare(me, pm.TxnIndex) {
				crashed = true
				continue // never votes: the coordinator times out
			}
			yes := true
			if cfg.VoteNo != nil && cfg.VoteNo(me, pm.TxnIndex) {
				yes = false
			}
			if yes {
				staged[pm.TxnIndex] = pm.Writes // write-ahead: staged, not applied
			}
			if err := c.Send(0, tagVote, voteMsg{TxnIndex: pm.TxnIndex, Yes: yes}); err != nil {
				return err
			}
		case tagDecision:
			dm := m.Data.(decisionMsg)
			if dm.Commit {
				for k, v := range staged[dm.TxnIndex] {
					state[k] = v
				}
			}
			delete(staged, dm.TxnIndex)
		}
	}
}

func msDuration(ms int) time.Duration {
	if ms <= 0 {
		ms = 200
	}
	return time.Duration(ms) * time.Millisecond
}
