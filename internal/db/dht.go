package db

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
)

// DHT is a consistent-hashing distributed hash table: nodes own arcs of a
// hash ring (with virtual nodes for balance); keys map to the first node
// clockwise from their hash. Adding or removing a node moves only the
// keys of the affected arcs — the ~K/n movement property that motivates
// consistent hashing in the distributed-databases lecture.
type DHT struct {
	vnodes int
	ring   []ringEntry // sorted by position
	nodes  map[string]bool
	store  map[string]map[string]string // node -> its keys
	moves  int64                        // keys migrated by topology changes
}

type ringEntry struct {
	pos  uint32
	node string
}

// NewDHT creates an empty ring with the given virtual-node count per
// physical node.
func NewDHT(vnodes int) (*DHT, error) {
	if vnodes <= 0 {
		return nil, errors.New("db: vnodes must be positive")
	}
	return &DHT{
		vnodes: vnodes,
		nodes:  make(map[string]bool),
		store:  make(map[string]map[string]string),
	}, nil
}

// RingPos is a key's position on the hash ring — the same position
// NodesFor walks from, exported so anti-entropy Merkle trees can bucket
// the keyspace by ring arc and a bucket range maps onto a contiguous
// span of replica arcs.
func RingPos(key string) uint32 { return hashString(key) }

func hashString(s string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(s))
	x := h.Sum32()
	// Raw FNV-1a of short strings with a shared prefix lands in tight
	// clusters: inputs differing only in the last digit differ by
	// exactly one multiple of the FNV prime, so a node's virtual nodes
	// ("n#0", "n#1", ...) bunch on one arc instead of spreading around
	// the ring. Finish with a murmur3-style avalanche so every input
	// bit flips about half the output bits.
	x ^= x >> 16
	x *= 0x85ebca6b
	x ^= x >> 13
	x *= 0xc2b2ae35
	x ^= x >> 16
	return x
}

// AddNode joins a node, migrating the keys that now belong to it.
func (d *DHT) AddNode(name string) error {
	if d.nodes[name] {
		return fmt.Errorf("db: node %q already present", name)
	}
	d.nodes[name] = true
	d.store[name] = make(map[string]string)
	for v := 0; v < d.vnodes; v++ {
		d.ring = append(d.ring, ringEntry{pos: hashString(fmt.Sprintf("%s#%d", name, v)), node: name})
	}
	sort.Slice(d.ring, func(i, j int) bool { return d.ring[i].pos < d.ring[j].pos })
	d.rebalance()
	return nil
}

// RemoveNode leaves a node, migrating its keys to their new owners.
func (d *DHT) RemoveNode(name string) error {
	if !d.nodes[name] {
		return fmt.Errorf("db: node %q not present", name)
	}
	if len(d.nodes) == 1 {
		return errors.New("db: cannot remove the last node")
	}
	delete(d.nodes, name)
	keep := d.ring[:0]
	for _, e := range d.ring {
		if e.node != name {
			keep = append(keep, e)
		}
	}
	d.ring = keep
	orphans := d.store[name]
	delete(d.store, name)
	for k, v := range orphans {
		owner := d.Owner(k)
		d.store[owner][k] = v
		d.moves++
	}
	d.rebalance()
	return nil
}

// rebalance moves any key whose owner changed (used after AddNode; after
// RemoveNode it is a no-op safety net).
func (d *DHT) rebalance() {
	for node, kv := range d.store {
		for k, v := range kv {
			owner := d.Owner(k)
			if owner != node {
				delete(kv, k)
				d.store[owner][k] = v
				d.moves++
			}
		}
	}
}

// Owner returns the node responsible for a key.
func (d *DHT) Owner(key string) string {
	if len(d.ring) == 0 {
		return ""
	}
	pos := hashString(key)
	i := sort.Search(len(d.ring), func(i int) bool { return d.ring[i].pos >= pos })
	if i == len(d.ring) {
		i = 0 // wrap around the ring
	}
	return d.ring[i].node
}

// NodesFor returns up to n distinct physical nodes whose arcs follow
// key's hash clockwise — the replica preference list of consistent-
// hashing stores: the first entry is the key's owner, the rest are the
// successors a cluster replicates to (duplicate virtual nodes of the
// same physical node are skipped). Fewer than n names come back when
// the ring has fewer than n physical nodes.
func (d *DHT) NodesFor(key string, n int) []string {
	if n <= 0 || len(d.ring) == 0 {
		return nil
	}
	pos := hashString(key)
	start := sort.Search(len(d.ring), func(i int) bool { return d.ring[i].pos >= pos })
	if start == len(d.ring) {
		start = 0 // wrap around the ring
	}
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for scanned := 0; scanned < len(d.ring) && len(out) < n; scanned++ {
		e := d.ring[(start+scanned)%len(d.ring)]
		if !seen[e.node] {
			seen[e.node] = true
			out = append(out, e.node)
		}
	}
	return out
}

// Put stores key = value at its owner.
func (d *DHT) Put(key, value string) error {
	owner := d.Owner(key)
	if owner == "" {
		return errors.New("db: empty ring")
	}
	d.store[owner][key] = value
	return nil
}

// Get fetches a key from its owner.
func (d *DHT) Get(key string) (string, bool) {
	owner := d.Owner(key)
	if owner == "" {
		return "", false
	}
	v, ok := d.store[owner][key]
	return v, ok
}

// Moves returns the number of keys migrated by topology changes so far.
func (d *DHT) Moves() int64 { return d.moves }

// Load returns the number of keys stored per node.
func (d *DHT) Load() map[string]int {
	out := make(map[string]int, len(d.store))
	for node, kv := range d.store {
		out[node] = len(kv)
	}
	return out
}

// Keys returns the total key count.
func (d *DHT) Keys() int {
	n := 0
	for _, kv := range d.store {
		n += len(kv)
	}
	return n
}
