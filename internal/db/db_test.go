package db

import (
	"fmt"
	"testing"
	"testing/quick"
)

func randomRelation(n int, keyRange int64, seed uint64, tag string) Relation {
	if seed == 0 {
		seed = 1
	}
	s := seed
	out := make(Relation, n)
	for i := range out {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		out[i] = Tuple{Key: int64(s % uint64(keyRange)), Payload: fmt.Sprintf("%s%d", tag, i)}
	}
	return out
}

func equalPairs(a, b []JoinPair) bool {
	if len(a) != len(b) {
		return false
	}
	ca, cb := Canon(a), Canon(b)
	for i := range ca {
		if ca[i] != cb[i] {
			return false
		}
	}
	return true
}

func TestJoinsAgreeOnFixture(t *testing.T) {
	l := Relation{{1, "a"}, {2, "b"}, {2, "c"}, {3, "d"}, {5, "e"}}
	r := Relation{{2, "x"}, {2, "y"}, {3, "z"}, {4, "w"}}
	want := NestedLoopJoin(l, r)
	// 2 appears 2x2=4 times plus 3 once: 5 pairs.
	if len(want) != 5 {
		t.Fatalf("baseline join has %d pairs", len(want))
	}
	if got := HashJoin(l, r); !equalPairs(got, want) {
		t.Errorf("HashJoin differs: %v", Canon(got))
	}
	if got := SortMergeJoin(l, r); !equalPairs(got, want) {
		t.Errorf("SortMergeJoin differs: %v", Canon(got))
	}
	got, st, err := GraceHashJoin(l, r, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !equalPairs(got, want) {
		t.Errorf("GraceHashJoin differs: %v", Canon(got))
	}
	if st.ResultPairs != 5 || st.Partitions != 4 {
		t.Errorf("stats: %+v", st)
	}
}

func TestJoinsAgreeProperty(t *testing.T) {
	f := func(seedL, seedR uint16, nL, nR uint8) bool {
		l := randomRelation(int(nL%60), 10, uint64(seedL)+1, "l")
		r := randomRelation(int(nR%60), 10, uint64(seedR)+1, "r")
		want := NestedLoopJoin(l, r)
		if !equalPairs(HashJoin(l, r), want) {
			return false
		}
		if !equalPairs(SortMergeJoin(l, r), want) {
			return false
		}
		got, _, err := GraceHashJoin(l, r, 3, 2)
		if err != nil {
			return false
		}
		return equalPairs(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestJoinEdgeCases(t *testing.T) {
	if got := HashJoin(nil, Relation{{1, "x"}}); len(got) != 0 {
		t.Errorf("empty left join: %v", got)
	}
	if got := SortMergeJoin(Relation{{1, "x"}}, nil); len(got) != 0 {
		t.Errorf("empty right join: %v", got)
	}
	if _, _, err := GraceHashJoin(nil, nil, 0, 1); err == nil {
		t.Error("0 partitions should error")
	}
	if _, _, err := GraceHashJoin(nil, nil, 4, 0); err == nil {
		t.Error("0 workers should error")
	}
}

func TestGracePartitioningBalance(t *testing.T) {
	// Uniform keys spread across partitions: the largest partition should
	// not be wildly above the mean.
	l := randomRelation(8000, 1<<30, 5, "l")
	r := randomRelation(8000, 1<<30, 6, "r")
	_, st, err := GraceHashJoin(l, r, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	mean := 8000 / 16
	if st.LargestLeft > mean*2 || st.LargestRight > mean*2 {
		t.Errorf("skewed partitions: %+v (mean %d)", st, mean)
	}
}

// --- DHT ---

func TestDHTBasics(t *testing.T) {
	d, err := NewDHT(32)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Put("k", "v"); err == nil {
		t.Error("put on empty ring should error")
	}
	if err := d.AddNode("a"); err != nil {
		t.Fatal(err)
	}
	if err := d.AddNode("a"); err == nil {
		t.Error("duplicate node should error")
	}
	d.Put("hello", "world")
	if v, ok := d.Get("hello"); !ok || v != "world" {
		t.Errorf("Get = %q %v", v, ok)
	}
	if _, ok := d.Get("missing"); ok {
		t.Error("missing key found")
	}
	if err := d.RemoveNode("a"); err == nil {
		t.Error("removing the last node should error")
	}
	if err := d.RemoveNode("ghost"); err == nil {
		t.Error("removing unknown node should error")
	}
}

func TestDHTLookupsSurviveTopologyChanges(t *testing.T) {
	d, _ := NewDHT(64)
	for _, n := range []string{"a", "b", "c"} {
		if err := d.AddNode(n); err != nil {
			t.Fatal(err)
		}
	}
	const keys = 1000
	for i := 0; i < keys; i++ {
		d.Put(fmt.Sprintf("key-%d", i), fmt.Sprintf("val-%d", i))
	}
	check := func(stage string) {
		for i := 0; i < keys; i++ {
			v, ok := d.Get(fmt.Sprintf("key-%d", i))
			if !ok || v != fmt.Sprintf("val-%d", i) {
				t.Fatalf("%s: key-%d lost (%q, %v)", stage, i, v, ok)
			}
		}
		if d.Keys() != keys {
			t.Fatalf("%s: total keys = %d", stage, d.Keys())
		}
	}
	check("initial")
	if err := d.AddNode("d"); err != nil {
		t.Fatal(err)
	}
	check("after join")
	if err := d.RemoveNode("b"); err != nil {
		t.Fatal(err)
	}
	check("after leave")
}

func TestDHTMinimalMovement(t *testing.T) {
	// Consistent hashing: adding the (n+1)-th node moves ~K/(n+1) keys,
	// not all of them.
	d, _ := NewDHT(64)
	for _, n := range []string{"a", "b", "c"} {
		d.AddNode(n)
	}
	const keys = 3000
	for i := 0; i < keys; i++ {
		d.Put(fmt.Sprintf("key-%d", i), "v")
	}
	before := d.Moves()
	d.AddNode("d")
	moved := d.Moves() - before
	expected := int64(keys / 4)
	if moved > 2*expected {
		t.Errorf("node join moved %d keys, expected ~%d (consistent hashing broken)", moved, expected)
	}
	if moved == 0 {
		t.Error("a new node must take over some keys")
	}
}

func TestDHTBalance(t *testing.T) {
	d, _ := NewDHT(128)
	nodes := []string{"n0", "n1", "n2", "n3", "n4"}
	for _, n := range nodes {
		d.AddNode(n)
	}
	const keys = 5000
	for i := 0; i < keys; i++ {
		d.Put(fmt.Sprintf("key-%d", i), "v")
	}
	load := d.Load()
	mean := keys / len(nodes)
	for n, c := range load {
		if c < mean/3 || c > mean*3 {
			t.Errorf("node %s holds %d keys (mean %d): imbalanced", n, c, mean)
		}
	}
}

func TestDHTOwnerDeterministic(t *testing.T) {
	f := func(key string) bool {
		d, _ := NewDHT(16)
		d.AddNode("x")
		d.AddNode("y")
		return d.Owner(key) == d.Owner(key)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// --- two-phase commit ---

func TestTPCAllCommit(t *testing.T) {
	txns := []Txn{
		{Writes: map[int]map[string]string{1: {"a": "1"}, 2: {"b": "2"}}},
		{Writes: map[int]map[string]string{2: {"b": "22"}, 3: {"c": "3"}}},
	}
	res, err := RunTransactions(TPCConfig{Participants: 3}, txns)
	if err != nil {
		t.Fatal(err)
	}
	for i, ok := range res.Committed {
		if !ok {
			t.Errorf("txn %d aborted unexpectedly", i)
		}
	}
	if res.States[0]["a"] != "1" || res.States[1]["b"] != "22" || res.States[2]["c"] != "3" {
		t.Errorf("states: %v", res.States)
	}
}

func TestTPCVoteNoAbortsAtomically(t *testing.T) {
	txns := []Txn{
		{Writes: map[int]map[string]string{1: {"a": "1"}, 2: {"b": "1"}}}, // commits
		{Writes: map[int]map[string]string{1: {"a": "2"}, 2: {"b": "2"}}}, // p2 votes no
		{Writes: map[int]map[string]string{1: {"a": "3"}, 2: {"b": "3"}}}, // commits
	}
	cfg := TPCConfig{
		Participants: 2,
		VoteNo: func(p, ti int) bool {
			return p == 2 && ti == 1
		},
	}
	res, err := RunTransactions(cfg, txns)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Committed[0] || res.Committed[1] || !res.Committed[2] {
		t.Fatalf("committed = %v, want [true false true]", res.Committed)
	}
	// Atomicity: txn 1's writes appear NOWHERE — including at p1, which
	// voted yes.
	if res.States[0]["a"] == "2" || res.States[1]["b"] == "2" {
		t.Errorf("aborted txn leaked writes: %v", res.States)
	}
	if res.States[0]["a"] != "3" || res.States[1]["b"] != "3" {
		t.Errorf("final states wrong: %v", res.States)
	}
}

func TestTPCCrashedParticipantAborts(t *testing.T) {
	txns := []Txn{
		{Writes: map[int]map[string]string{1: {"a": "1"}, 2: {"b": "1"}}}, // commits
		{Writes: map[int]map[string]string{1: {"a": "2"}, 2: {"b": "2"}}}, // p2 crashes
		{Writes: map[int]map[string]string{1: {"a": "3"}}},                // p1 only: commits
		{Writes: map[int]map[string]string{2: {"b": "9"}}},                // dead p2: aborts
	}
	cfg := TPCConfig{
		Participants: 2,
		TimeoutMS:    100,
		CrashOnPrepare: func(p, ti int) bool {
			return p == 2 && ti == 1
		},
	}
	res, err := RunTransactions(cfg, txns)
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{true, false, true, false}
	for i := range want {
		if res.Committed[i] != want[i] {
			t.Errorf("txn %d committed=%v, want %v", i, res.Committed[i], want[i])
		}
	}
	// Survivor p1 reflects only committed transactions.
	if res.States[0]["a"] != "3" {
		t.Errorf("p1 state: %v", res.States[0])
	}
	// Crashed p2's state is unknown.
	if res.States[1] != nil {
		t.Errorf("crashed participant reported state: %v", res.States[1])
	}
}

func TestTPCValidation(t *testing.T) {
	if _, err := RunTransactions(TPCConfig{Participants: 0}, nil); err == nil {
		t.Error("0 participants should error")
	}
	// No transactions: trivially fine.
	res, err := RunTransactions(TPCConfig{Participants: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Committed) != 0 {
		t.Errorf("committed: %v", res.Committed)
	}
}

func TestDHTNodesFor(t *testing.T) {
	d, _ := NewDHT(32)
	nodes := []string{"a", "b", "c", "d"}
	for _, n := range nodes {
		if err := d.AddNode(n); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%d", i)
		prefs := d.NodesFor(key, 3)
		if len(prefs) != 3 {
			t.Fatalf("NodesFor(%q, 3) = %v", key, prefs)
		}
		// The first preference is the owner.
		if prefs[0] != d.Owner(key) {
			t.Fatalf("NodesFor(%q)[0] = %q, Owner = %q", key, prefs[0], d.Owner(key))
		}
		// Entries are distinct physical nodes, not duplicate vnodes.
		seen := map[string]bool{}
		for _, n := range prefs {
			if seen[n] {
				t.Fatalf("NodesFor(%q) repeats node %q: %v", key, n, prefs)
			}
			seen[n] = true
		}
	}
}

func TestDHTNodesForClamps(t *testing.T) {
	d, _ := NewDHT(16)
	if got := d.NodesFor("k", 2); got != nil {
		t.Errorf("empty ring: NodesFor = %v", got)
	}
	d.AddNode("only")
	if got := d.NodesFor("k", 0); got != nil {
		t.Errorf("n=0: NodesFor = %v", got)
	}
	// Asking for more replicas than physical nodes returns all of them,
	// each exactly once.
	d.AddNode("other")
	got := d.NodesFor("k", 5)
	if len(got) != 2 || got[0] == got[1] {
		t.Errorf("NodesFor(5) over 2 nodes = %v", got)
	}
}

func TestDHTNodesForDeterministic(t *testing.T) {
	f := func(key string) bool {
		d, _ := NewDHT(16)
		d.AddNode("x")
		d.AddNode("y")
		d.AddNode("z")
		a, b := d.NodesFor(key, 2), d.NodesFor(key, 2)
		if len(a) != 2 || len(b) != 2 {
			return false
		}
		return a[0] == b[0] && a[1] == b[1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDHTMovesAccessor(t *testing.T) {
	d, _ := NewDHT(32)
	d.AddNode("a")
	if d.Moves() != 0 {
		t.Errorf("moves before any data = %d", d.Moves())
	}
	for i := 0; i < 100; i++ {
		d.Put(fmt.Sprintf("key-%d", i), "v")
	}
	if d.Moves() != 0 {
		t.Errorf("plain puts must not count as moves, got %d", d.Moves())
	}
	d.AddNode("b")
	afterJoin := d.Moves()
	if afterJoin == 0 {
		t.Error("a join that takes over arcs must move keys")
	}
	d.RemoveNode("b")
	if d.Moves() <= afterJoin {
		t.Errorf("a leave must move the orphaned keys back (moves %d -> %d)", afterJoin, d.Moves())
	}
}

// TestDHTReplicaPlacementProperty is the randomized contract check the
// replicated cluster leans on: for random node populations and 10k
// keys, NodesFor must always return the requested number of distinct
// live nodes (clamped to the population), placement must be stable
// between calls, and a join must move fewer than 2·K/n keys. Each trial
// logs its seed so a failure replays exactly.
func TestDHTReplicaPlacementProperty(t *testing.T) {
	const keys = 10_000
	for trial := 0; trial < 8; trial++ {
		seed := uint64(0x9e3779b9 + trial)
		s := seed
		next := func(n int) int { // xorshift, same generator as randomRelation
			s ^= s << 13
			s ^= s >> 7
			s ^= s << 17
			return int(s % uint64(n))
		}
		d, err := NewDHT(64 + next(64))
		if err != nil {
			t.Fatal(err)
		}
		population := 3 + next(8) // 3..10 nodes
		live := map[string]bool{}
		for i := 0; i < population; i++ {
			name := fmt.Sprintf("n%d-%d", trial, i)
			if err := d.AddNode(name); err != nil {
				t.Fatal(err)
			}
			live[name] = true
		}
		replicas := 1 + next(population+1) // 1..population+1: may exceed the ring
		for i := 0; i < keys; i++ {
			key := fmt.Sprintf("pk-%d-%d", next(1<<30), i)
			got := d.NodesFor(key, replicas)
			want := replicas
			if want > population {
				want = population
			}
			if len(got) != want {
				t.Fatalf("seed=%#x: NodesFor(%q, %d) returned %d nodes, want %d", seed, key, replicas, len(got), want)
			}
			distinct := map[string]bool{}
			for _, n := range got {
				if !live[n] {
					t.Fatalf("seed=%#x: NodesFor returned unknown node %q", seed, n)
				}
				if distinct[n] {
					t.Fatalf("seed=%#x: NodesFor(%q, %d) repeated node %q: %v", seed, key, replicas, n, got)
				}
				distinct[n] = true
			}
			if again := d.NodesFor(key, replicas); len(again) != len(got) || again[0] != got[0] {
				t.Fatalf("seed=%#x: NodesFor(%q) not stable: %v then %v", seed, key, got, again)
			}
			d.Put(key, "v") //nolint:errcheck // ring is non-empty by construction
		}
		before := d.Moves()
		if err := d.AddNode(fmt.Sprintf("joiner-%d", trial)); err != nil {
			t.Fatal(err)
		}
		moved := d.Moves() - before
		bound := int64(2 * keys / (population + 1))
		if moved >= bound {
			t.Errorf("seed=%#x: join of node %d moved %d keys, bound 2K/n = %d", seed, population+1, moved, bound)
		}
		if moved == 0 {
			t.Errorf("seed=%#x: join moved no keys", seed)
		}
	}
}
