// Package db implements the parallel/distributed database content the
// paper plans for CS44: equi-join algorithms (nested-loop baseline, hash
// join, sort-merge join, and partition-parallel Grace hash join), a
// consistent-hashing distributed hash table with node join/leave and
// minimal key movement, and two-phase commit over the message-passing
// layer with vote- and crash-injection.
package db

import (
	"errors"
	"hash/fnv"
	"sort"
	"sync"
)

// Tuple is one row of a relation: an integer join key plus a payload.
type Tuple struct {
	Key     int64
	Payload string
}

// Relation is a bag of tuples.
type Relation []Tuple

// JoinPair is one result row of an equi-join.
type JoinPair struct {
	Left, Right Tuple
}

// pairKey orders join results canonically for comparison.
func pairLess(a, b JoinPair) bool {
	if a.Left.Key != b.Left.Key {
		return a.Left.Key < b.Left.Key
	}
	if a.Left.Payload != b.Left.Payload {
		return a.Left.Payload < b.Left.Payload
	}
	return a.Right.Payload < b.Right.Payload
}

// Canon sorts a join result into canonical order (joins are bags; tests
// and callers compare canonical forms).
func Canon(pairs []JoinPair) []JoinPair {
	out := append([]JoinPair(nil), pairs...)
	sort.Slice(out, func(i, j int) bool { return pairLess(out[i], out[j]) })
	return out
}

// NestedLoopJoin is the O(|L|·|R|) baseline.
func NestedLoopJoin(l, r Relation) []JoinPair {
	var out []JoinPair
	for _, lt := range l {
		for _, rt := range r {
			if lt.Key == rt.Key {
				out = append(out, JoinPair{Left: lt, Right: rt})
			}
		}
	}
	return out
}

// HashJoin builds a hash table on the smaller relation and probes with
// the larger — the standard in-memory equi-join.
func HashJoin(l, r Relation) []JoinPair {
	build, probe, swapped := l, r, false
	if len(r) < len(l) {
		build, probe, swapped = r, l, true
	}
	table := make(map[int64][]Tuple, len(build))
	for _, t := range build {
		table[t.Key] = append(table[t.Key], t)
	}
	var out []JoinPair
	for _, p := range probe {
		for _, b := range table[p.Key] {
			if swapped {
				out = append(out, JoinPair{Left: p, Right: b})
			} else {
				out = append(out, JoinPair{Left: b, Right: p})
			}
		}
	}
	return out
}

// SortMergeJoin sorts both inputs by key and merges, handling duplicate
// key groups on both sides.
func SortMergeJoin(l, r Relation) []JoinPair {
	ls := append(Relation(nil), l...)
	rs := append(Relation(nil), r...)
	sort.SliceStable(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	sort.SliceStable(rs, func(i, j int) bool { return rs[i].Key < rs[j].Key })
	var out []JoinPair
	i, j := 0, 0
	for i < len(ls) && j < len(rs) {
		switch {
		case ls[i].Key < rs[j].Key:
			i++
		case ls[i].Key > rs[j].Key:
			j++
		default:
			key := ls[i].Key
			i2 := i
			for i2 < len(ls) && ls[i2].Key == key {
				i2++
			}
			j2 := j
			for j2 < len(rs) && rs[j2].Key == key {
				j2++
			}
			for a := i; a < i2; a++ {
				for b := j; b < j2; b++ {
					out = append(out, JoinPair{Left: ls[a], Right: rs[b]})
				}
			}
			i, j = i2, j2
		}
	}
	return out
}

// hash64 is the partitioning hash.
func hash64(k int64) uint32 {
	h := fnv.New32a()
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(k >> (8 * i))
	}
	h.Write(b[:])
	return h.Sum32()
}

// GraceStats reports the parallel join's partition balance.
type GraceStats struct {
	Partitions   int
	LargestLeft  int
	LargestRight int
	ResultPairs  int
}

// GraceHashJoin is the partition-parallel (Grace) hash join: both
// relations are hash-partitioned into `partitions` buckets on the join
// key; each bucket pair joins independently on `workers` goroutines.
// Matching keys always land in the same bucket, so the union of bucket
// joins equals the full join — the invariant the parallel-databases
// lecture proves.
func GraceHashJoin(l, r Relation, partitions, workers int) ([]JoinPair, GraceStats, error) {
	if partitions <= 0 || workers <= 0 {
		return nil, GraceStats{}, errors.New("db: partitions and workers must be positive")
	}
	lp := make([]Relation, partitions)
	rp := make([]Relation, partitions)
	for _, t := range l {
		b := int(hash64(t.Key)) % partitions
		lp[b] = append(lp[b], t)
	}
	for _, t := range r {
		b := int(hash64(t.Key)) % partitions
		rp[b] = append(rp[b], t)
	}
	st := GraceStats{Partitions: partitions}
	for b := 0; b < partitions; b++ {
		if len(lp[b]) > st.LargestLeft {
			st.LargestLeft = len(lp[b])
		}
		if len(rp[b]) > st.LargestRight {
			st.LargestRight = len(rp[b])
		}
	}
	results := make([][]JoinPair, partitions)
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for b := 0; b < partitions; b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[b] = HashJoin(lp[b], rp[b])
		}(b)
	}
	wg.Wait()
	var out []JoinPair
	for _, rs := range results {
		out = append(out, rs...)
	}
	st.ResultPairs = len(out)
	return out, st, nil
}
