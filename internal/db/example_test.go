package db_test

import (
	"fmt"

	"repro/internal/db"
)

// All join algorithms produce the same bag of pairs.
func Example() {
	students := db.Relation{{Key: 1, Payload: "ada"}, {Key: 2, Payload: "grace"}}
	grades := db.Relation{{Key: 1, Payload: "A"}, {Key: 2, Payload: "A+"}, {Key: 2, Payload: "B"}}
	pairs, _, err := db.GraceHashJoin(students, grades, 4, 2)
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, p := range db.Canon(pairs) {
		fmt.Printf("%s -> %s\n", p.Left.Payload, p.Right.Payload)
	}
	// Output:
	// ada -> A
	// grace -> A+
	// grace -> B
}

// Two-phase commit: one NO vote aborts the transaction everywhere.
func ExampleRunTransactions() {
	res, err := db.RunTransactions(db.TPCConfig{
		Participants: 2,
		VoteNo:       func(p, txn int) bool { return p == 2 && txn == 0 },
	}, []db.Txn{
		{Writes: map[int]map[string]string{1: {"x": "1"}, 2: {"y": "1"}}}, // aborted
		{Writes: map[int]map[string]string{1: {"x": "2"}, 2: {"y": "2"}}}, // commits
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("committed:", res.Committed)
	fmt.Println("p1 x:", res.States[0]["x"], "p2 y:", res.States[1]["y"])
	// Output:
	// committed: [false true]
	// p1 x: 2 p2 y: 2
}
