// Package version is the cluster's value-versioning unit: a per-key
// version vector (node → counter) plus a wall-clock tiebreak, and the
// stored-value encoding that carries it.
//
// The vector replaces the cluster-global LWW sequence: each write is
// stamped by its coordinator with the key's last-seen vector bumped in
// the coordinator's own slot, so causally ordered writes compare as
// Dominates/Dominated and only genuinely concurrent writes (two
// coordinators that never saw each other's stamps, e.g. across a
// partition) compare as Concurrent. Concurrent versions are resolved
// deterministically by Newer's total order — wall-clock
// last-writer-wins, then a lexicographic stamp comparison so two stamps
// assigned in the same nanosecond still order identically on every
// replica.
//
// Stored values keep the seed's three-part shape so the hint wrapper
// and WAL payloads nest unchanged, with the stamp in the old sequence
// slot:
//
//	"<stamp> v <value>"  live value
//	"<stamp> t"          tombstone
//
// and a stamp is the sorted vector plus the assignment wall clock:
//
//	"n0:3,n2:1@1754550000123456789"
//
// Node names therefore must not contain ':', ',', '@', or whitespace;
// the cluster rejects such names at Join time.
package version

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Ordering is the outcome of comparing two version vectors.
type Ordering int

const (
	// Equal: identical vectors — same causal history.
	Equal Ordering = iota
	// Dominates: the left vector has seen everything the right has, and more.
	Dominates
	// Dominated: the right vector has seen everything the left has, and more.
	Dominated
	// Concurrent: each side has writes the other never saw.
	Concurrent
)

// String names the ordering for logs and counters.
func (o Ordering) String() string {
	switch o {
	case Equal:
		return "equal"
	case Dominates:
		return "dominates"
	case Dominated:
		return "dominated"
	case Concurrent:
		return "concurrent"
	}
	return fmt.Sprintf("ordering(%d)", int(o))
}

// Vector is a per-key version vector: how many writes each coordinator
// has stamped onto this key's causal history.
type Vector map[string]uint64

// Version is one stamped write: the vector plus the coordinator's wall
// clock at assignment (unix nanoseconds), used only to break ties
// between concurrent vectors.
type Version struct {
	VV    Vector
	Clock int64
}

// IsZero reports whether v is the zero Version — "no write ever seen",
// which every real version dominates.
func (v Version) IsZero() bool { return len(v.VV) == 0 && v.Clock == 0 }

// Next returns the successor version a coordinator assigns: v's vector
// with node's slot bumped, stamped at clock. The receiver is not
// mutated.
func (v Version) Next(node string, clock int64) Version {
	nv := make(Vector, len(v.VV)+1)
	for n, c := range v.VV {
		nv[n] = c
	}
	nv[node]++
	return Version{VV: nv, Clock: clock}
}

// Compare relates two vectors causally. The clocks play no part: two
// versions with the same vector are Equal even if stamped at different
// times.
func Compare(a, b Vector) Ordering {
	var aAhead, bAhead bool
	for n, ac := range a {
		switch bc := b[n]; {
		case ac > bc:
			aAhead = true
		case ac < bc:
			bAhead = true
		}
	}
	for n, bc := range b {
		if bc > a[n] {
			bAhead = true
		}
	}
	switch {
	case aAhead && bAhead:
		return Concurrent
	case aAhead:
		return Dominates
	case bAhead:
		return Dominated
	}
	return Equal
}

// Compare relates v to o causally (vector comparison only).
func (v Version) Compare(o Version) Ordering { return Compare(v.VV, o.VV) }

// Newer reports whether a should replace b under the total order every
// replica resolves conflicts with: causal dominance first, then the
// wall clock, then a lexicographic comparison of the rendered stamps so
// same-nanosecond concurrent writes still pick one deterministic winner
// everywhere. Equal versions are not newer than each other.
func Newer(a, b Version) bool {
	switch Compare(a.VV, b.VV) {
	case Dominates:
		return true
	case Dominated:
		return false
	case Equal:
		return false
	}
	if a.Clock != b.Clock {
		return a.Clock > b.Clock
	}
	return a.Stamp() > b.Stamp()
}

// Merge returns the pointwise maximum of two vectors — the smallest
// vector that dominates (or equals) both inputs.
func Merge(a, b Vector) Vector {
	m := make(Vector, len(a)+len(b))
	for n, c := range a {
		m[n] = c
	}
	for n, c := range b {
		if c > m[n] {
			m[n] = c
		}
	}
	return m
}

// Stamp renders the version as "n0:3,n2:1@<clock>", components sorted
// by node name so the rendering is canonical: equal versions always
// render byte-identically.
func (v Version) Stamp() string {
	nodes := make([]string, 0, len(v.VV))
	for n := range v.VV {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	var b strings.Builder
	for i, n := range nodes {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteByte(':')
		b.WriteString(strconv.FormatUint(v.VV[n], 10))
	}
	b.WriteByte('@')
	b.WriteString(strconv.FormatInt(v.Clock, 10))
	return b.String()
}

// ParseStamp is the inverse of Stamp.
func ParseStamp(s string) (Version, error) {
	at := strings.LastIndexByte(s, '@')
	if at < 0 {
		return Version{}, fmt.Errorf("version: stamp %q has no clock", s)
	}
	clock, err := strconv.ParseInt(s[at+1:], 10, 64)
	if err != nil {
		return Version{}, fmt.Errorf("version: stamp %q has bad clock: %v", s, err)
	}
	v := Version{VV: Vector{}, Clock: clock}
	if at == 0 {
		return Version{}, fmt.Errorf("version: stamp %q has no components", s)
	}
	for _, comp := range strings.Split(s[:at], ",") {
		colon := strings.LastIndexByte(comp, ':')
		if colon <= 0 {
			return Version{}, fmt.Errorf("version: stamp %q has malformed component %q", s, comp)
		}
		n := comp[:colon]
		c, err := strconv.ParseUint(comp[colon+1:], 10, 64)
		if err != nil || c == 0 {
			return Version{}, fmt.Errorf("version: stamp %q has bad counter in %q", s, comp)
		}
		if _, dup := v.VV[n]; dup {
			return Version{}, fmt.Errorf("version: stamp %q repeats node %q", s, n)
		}
		v.VV[n] = c
	}
	return v, nil
}

// Encode renders a stored live value: "<stamp> v <value>".
func Encode(v Version, value string) string {
	return v.Stamp() + " v " + value
}

// EncodeTombstone renders a stored deletion marker: "<stamp> t".
func EncodeTombstone(v Version) string {
	return v.Stamp() + " t"
}

// Decode splits a stored value into its version, payload, and
// tombstone flag. The shape mirrors the seed's decode: three
// space-separated parts for a live value (the payload may itself
// contain spaces — only the first two splits count), two for a
// tombstone.
func Decode(raw string) (v Version, value string, deleted bool, err error) {
	parts := strings.SplitN(raw, " ", 3)
	if len(parts) < 2 {
		return Version{}, "", false, fmt.Errorf("version: undecodable value %q", raw)
	}
	v, err = ParseStamp(parts[0])
	if err != nil {
		return Version{}, "", false, err
	}
	switch parts[1] {
	case "t":
		if len(parts) != 2 {
			return Version{}, "", false, fmt.Errorf("version: tombstone %q has trailing payload", raw)
		}
		return v, "", true, nil
	case "v":
		if len(parts) != 3 {
			return Version{}, "", false, fmt.Errorf("version: value %q has no payload", raw)
		}
		return v, parts[2], false, nil
	}
	return Version{}, "", false, fmt.Errorf("version: value %q has unknown marker %q", raw, parts[1])
}
