package version

import (
	"testing"
)

func TestStampRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		v    Version
	}{
		{"single", Version{VV: Vector{"n0": 1}, Clock: 42}},
		{"multi", Version{VV: Vector{"n0": 3, "n2": 1, "n10": 7}, Clock: 1754550000123456789}},
		{"zero clock", Version{VV: Vector{"a": 9}, Clock: 0}},
		{"negative clock", Version{VV: Vector{"a": 1}, Clock: -5}},
		{"big counter", Version{VV: Vector{"x": 1<<63 + 11}, Clock: 1}},
		{"dashed node names", Version{VV: Vector{"node-1": 2, "node-2": 4}, Clock: 99}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := tc.v.Stamp()
			got, err := ParseStamp(s)
			if err != nil {
				t.Fatalf("ParseStamp(%q): %v", s, err)
			}
			if got.Clock != tc.v.Clock || Compare(got.VV, tc.v.VV) != Equal {
				t.Fatalf("round trip %q: got %+v want %+v", s, got, tc.v)
			}
			if got.Stamp() != s {
				t.Fatalf("re-stamp of %q gave %q", s, got.Stamp())
			}
		})
	}
}

func TestStampCanonical(t *testing.T) {
	// Component order is sorted regardless of map iteration order, so
	// equal versions always render byte-identically.
	v := Version{VV: Vector{"b": 2, "a": 1, "c": 3}, Clock: 7}
	want := "a:1,b:2,c:3@7"
	for i := 0; i < 32; i++ {
		if got := v.Stamp(); got != want {
			t.Fatalf("Stamp() = %q, want %q", got, want)
		}
	}
}

func TestParseStampMalformed(t *testing.T) {
	cases := []struct {
		name  string
		stamp string
	}{
		{"empty", ""},
		{"no clock", "n0:1"},
		{"no components", "@5"},
		{"bad clock", "n0:1@zebra"},
		{"clock overflow", "n0:1@99999999999999999999999999"},
		{"empty component", "n0:1,@5"},
		{"component without counter", "n0@5"},
		{"component without node", ":3@5"},
		{"bad counter", "n0:x@5"},
		{"zero counter", "n0:0@5"},
		{"negative counter", "n0:-1@5"},
		{"duplicate node", "n0:1,n0:2@5"},
		{"just separators", ",,@@"},
		{"trailing comma", "n0:1,@9"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if v, err := ParseStamp(tc.stamp); err == nil {
				t.Fatalf("ParseStamp(%q) = %+v, want error", tc.stamp, v)
			}
		})
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		name string
		a, b Vector
		want Ordering
	}{
		{"both empty", Vector{}, Vector{}, Equal},
		{"nil vs nil", nil, nil, Equal},
		{"equal single", Vector{"n0": 2}, Vector{"n0": 2}, Equal},
		{"equal multi", Vector{"n0": 2, "n1": 5}, Vector{"n1": 5, "n0": 2}, Equal},
		{"dominates by counter", Vector{"n0": 3}, Vector{"n0": 2}, Dominates},
		{"dominated by counter", Vector{"n0": 1}, Vector{"n0": 2}, Dominated},
		{"dominates by extra node", Vector{"n0": 2, "n1": 1}, Vector{"n0": 2}, Dominates},
		{"dominated by extra node", Vector{"n0": 2}, Vector{"n0": 2, "n1": 1}, Dominated},
		{"dominates empty", Vector{"n0": 1}, Vector{}, Dominates},
		{"dominated by any", Vector{}, Vector{"n9": 1}, Dominated},
		{"concurrent disjoint", Vector{"n0": 1}, Vector{"n1": 1}, Concurrent},
		{"concurrent crossed counters", Vector{"n0": 2, "n1": 1}, Vector{"n0": 1, "n1": 2}, Concurrent},
		{"concurrent extra on each side", Vector{"n0": 1, "n1": 1}, Vector{"n0": 1, "n2": 1}, Concurrent},
		{"dominates across many slots", Vector{"a": 2, "b": 2, "c": 2}, Vector{"a": 1, "b": 2, "c": 2}, Dominates},
	}
	inverse := map[Ordering]Ordering{Equal: Equal, Concurrent: Concurrent, Dominates: Dominated, Dominated: Dominates}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Compare(tc.a, tc.b); got != tc.want {
				t.Fatalf("Compare(%v, %v) = %v, want %v", tc.a, tc.b, got, tc.want)
			}
			if got := Compare(tc.b, tc.a); got != inverse[tc.want] {
				t.Fatalf("Compare(%v, %v) = %v, want %v (symmetry)", tc.b, tc.a, got, inverse[tc.want])
			}
		})
	}
}

func TestNewerTotalOrder(t *testing.T) {
	cases := []struct {
		name string
		a, b Version
		want bool // Newer(a, b)
	}{
		{"dominates wins despite older clock",
			Version{VV: Vector{"n0": 2}, Clock: 1}, Version{VV: Vector{"n0": 1}, Clock: 100}, true},
		{"dominated loses despite newer clock",
			Version{VV: Vector{"n0": 1}, Clock: 100}, Version{VV: Vector{"n0": 2}, Clock: 1}, false},
		{"equal vectors are never newer",
			Version{VV: Vector{"n0": 1}, Clock: 5}, Version{VV: Vector{"n0": 1}, Clock: 5}, false},
		{"concurrent resolves by clock",
			Version{VV: Vector{"n0": 1}, Clock: 10}, Version{VV: Vector{"n1": 1}, Clock: 5}, true},
		{"concurrent loses by clock",
			Version{VV: Vector{"n0": 1}, Clock: 5}, Version{VV: Vector{"n1": 1}, Clock: 10}, false},
		{"concurrent same clock falls back to stamp order",
			Version{VV: Vector{"n1": 1}, Clock: 7}, Version{VV: Vector{"n0": 1}, Clock: 7}, true},
		{"anything beats zero",
			Version{VV: Vector{"n0": 1}, Clock: 0}, Version{}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Newer(tc.a, tc.b); got != tc.want {
				t.Fatalf("Newer(%+v, %+v) = %v, want %v", tc.a, tc.b, got, tc.want)
			}
			// Antisymmetry: at most one direction is "newer".
			if tc.want && Newer(tc.b, tc.a) {
				t.Fatalf("both Newer(a,b) and Newer(b,a) for %+v / %+v", tc.a, tc.b)
			}
		})
	}
	// Exactly one of Newer(a,b) / Newer(b,a) holds for distinct stamps.
	a := Version{VV: Vector{"n0": 1}, Clock: 7}
	b := Version{VV: Vector{"n1": 1}, Clock: 7}
	if Newer(a, b) == Newer(b, a) {
		t.Fatalf("total order must pick exactly one winner for distinct concurrent stamps")
	}
}

func TestMerge(t *testing.T) {
	cases := []struct {
		name string
		a, b Vector
		want Vector
	}{
		{"empty with empty", Vector{}, Vector{}, Vector{}},
		{"disjoint union", Vector{"n0": 1}, Vector{"n1": 2}, Vector{"n0": 1, "n1": 2}},
		{"pointwise max", Vector{"n0": 3, "n1": 1}, Vector{"n0": 1, "n1": 4}, Vector{"n0": 3, "n1": 4}},
		{"subset", Vector{"n0": 2}, Vector{"n0": 2, "n1": 1}, Vector{"n0": 2, "n1": 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := Merge(tc.a, tc.b)
			if Compare(got, tc.want) != Equal {
				t.Fatalf("Merge(%v, %v) = %v, want %v", tc.a, tc.b, got, tc.want)
			}
			// The merge dominates-or-equals both inputs.
			for _, in := range []Vector{tc.a, tc.b} {
				if o := Compare(got, in); o != Equal && o != Dominates {
					t.Fatalf("Merge(%v, %v) = %v does not cover input %v (%v)", tc.a, tc.b, got, in, o)
				}
			}
		})
	}
}

func TestNextDominates(t *testing.T) {
	v := Version{}
	for i, node := range []string{"n0", "n0", "n1", "n2", "n0"} {
		nv := v.Next(node, int64(i+1))
		if o := nv.Compare(v); o != Dominates {
			t.Fatalf("step %d: Next version %+v does not dominate %+v (%v)", i, nv, v, o)
		}
		if !Newer(nv, v) {
			t.Fatalf("step %d: Next version not Newer than predecessor", i)
		}
		v = nv
	}
	if v.VV["n0"] != 3 || v.VV["n1"] != 1 || v.VV["n2"] != 1 {
		t.Fatalf("accumulated vector wrong: %v", v.VV)
	}
	// Next does not mutate its receiver.
	base := Version{VV: Vector{"n0": 1}, Clock: 1}
	_ = base.Next("n0", 2)
	if base.VV["n0"] != 1 {
		t.Fatalf("Next mutated its receiver: %v", base.VV)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	v := Version{VV: Vector{"n0": 3, "n1": 5}, Clock: 1234}
	cases := []struct {
		name    string
		raw     string
		value   string
		deleted bool
	}{
		{"plain value", Encode(v, "hello"), "hello", false},
		{"empty value", Encode(v, ""), "", false},
		{"value with spaces", Encode(v, "a b  c"), "a b  c", false},
		{"value resembling a tombstone", Encode(v, "t"), "t", false},
		{"value resembling an encoding", Encode(v, v.Stamp()+" v x"), v.Stamp() + " v x", false},
		{"tombstone", EncodeTombstone(v), "", true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			gv, value, deleted, err := Decode(tc.raw)
			if err != nil {
				t.Fatalf("Decode(%q): %v", tc.raw, err)
			}
			if value != tc.value || deleted != tc.deleted {
				t.Fatalf("Decode(%q) = (%q, %v), want (%q, %v)", tc.raw, value, deleted, tc.value, tc.deleted)
			}
			if gv.Compare(v) != Equal || gv.Clock != v.Clock {
				t.Fatalf("Decode(%q) version = %+v, want %+v", tc.raw, gv, v)
			}
			// Byte-identical re-encode: WAL replay depends on this.
			var re string
			if deleted {
				re = EncodeTombstone(gv)
			} else {
				re = Encode(gv, value)
			}
			if re != tc.raw {
				t.Fatalf("re-encode of %q gave %q", tc.raw, re)
			}
		})
	}
}

func TestDecodeMalformed(t *testing.T) {
	cases := []struct {
		name string
		raw  string
	}{
		{"empty", ""},
		{"one part", "oops"},
		{"bare stamp", "n0:1@5"},
		{"unknown marker", "n0:1@5 x payload"},
		{"value without payload", "n0:1@5 v"},
		{"tombstone with payload", "n0:1@5 t payload"},
		{"bad stamp", "n0@5 v payload"},
		{"legacy integer seq", "17 v payload"},
		{"legacy tombstone", "17 t"},
		{"hint wrapper", "1754550000 h n0:1@5 v payload"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if v, value, deleted, err := Decode(tc.raw); err == nil {
				t.Fatalf("Decode(%q) = (%+v, %q, %v), want error", tc.raw, v, value, deleted)
			}
		})
	}
}
