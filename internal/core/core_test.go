package core

import (
	"errors"
	"strings"
	"testing"
)

func swarthmore(t *testing.T) *Curriculum {
	t.Helper()
	cu, err := Swarthmore()
	if err != nil {
		t.Fatal(err)
	}
	return cu
}

func TestSwarthmoreValidates(t *testing.T) {
	cu := swarthmore(t)
	if err := cu.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(cu.Courses) < 9 {
		t.Errorf("courses = %d", len(cu.Courses))
	}
}

func TestPrereqCycleDetected(t *testing.T) {
	cu := New("cyclic")
	cu.Add(&Course{Code: "A", Prereqs: []string{"B"}})
	cu.Add(&Course{Code: "B", Prereqs: []string{"A"}})
	if err := cu.Validate(); !errors.Is(err, ErrPrereqCycle) {
		t.Errorf("cycle: %v", err)
	}
	cu2 := New("dangling")
	cu2.Add(&Course{Code: "A", Prereqs: []string{"MISSING"}})
	if err := cu2.Validate(); err == nil {
		t.Error("dangling prereq should fail")
	}
}

func TestDuplicateCourse(t *testing.T) {
	cu := New("x")
	if err := cu.Add(&Course{Code: "A"}); err != nil {
		t.Fatal(err)
	}
	if err := cu.Add(&Course{Code: "A"}); err == nil {
		t.Error("duplicate should error")
	}
	if err := cu.Add(&Course{}); err == nil {
		t.Error("empty code should error")
	}
}

func TestPrereqChain(t *testing.T) {
	cu := swarthmore(t)
	chain, err := cu.PrereqChain("CS87")
	if err != nil {
		t.Fatal(err)
	}
	// CS87 <- CS31, CS35 <- CS21.
	want := map[string]bool{"CS31": true, "CS35": true, "CS21": true}
	if len(chain) != len(want) {
		t.Fatalf("chain = %v", chain)
	}
	for _, c := range chain {
		if !want[c] {
			t.Errorf("unexpected prereq %s", c)
		}
	}
	if _, err := cu.PrereqChain("CS99"); err == nil {
		t.Error("unknown course should error")
	}
}

func TestCS31IsPrereqToSystemsCourses(t *testing.T) {
	// The paper's central structural change: CS31 gates the systems and
	// application courses that build on parallel topics.
	cu := swarthmore(t)
	for _, code := range []string{"CS40", "CS45", "CS75", "CS87", "CS44"} {
		chain, err := cu.PrereqChain(code)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, p := range chain {
			if p == "CS31" {
				found = true
			}
		}
		if !found {
			t.Errorf("%s should require CS31", code)
		}
	}
	// Algorithms does NOT require CS31 (per Section IV).
	chain, _ := cu.PrereqChain("CS41")
	for _, p := range chain {
		if p == "CS31" {
			t.Error("CS41 should not require CS31")
		}
	}
}

func TestTableIMatchesPaper(t *testing.T) {
	cu := swarthmore(t)
	tbl, err := cu.TableI()
	if err != nil {
		t.Fatal(err)
	}
	// All eight labs from the paper's Table I.
	for _, lab := range []string{
		"Data Representation", "Building an ALU", "Bit compare",
		"Binary Bomb", "Game of Life", "Python lists in C", "Unix Shell",
		"Parallel Game of Life",
	} {
		if !strings.Contains(tbl, lab) {
			t.Errorf("Table I missing %q", lab)
		}
	}
	if !strings.Contains(tbl, "scalability experiments") {
		t.Error("Table I missing the scalability-study goal")
	}
}

func TestTableIIMatchesPaper(t *testing.T) {
	cu := swarthmore(t)
	tbl, err := cu.TableII()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range []string{
		"The Memory Hierarchy", "Multicore and Threads", "Operating Systems",
		"Parallel Algorithms and Programming", "Other Topics Covered In-Depth",
		"Other Topics Covered",
	} {
		if !strings.Contains(tbl, row) {
			t.Errorf("Table II missing row %q", row)
		}
	}
	for _, detail := range []string{"Cache Coherence", "Amdahl's Law", "Producer-Consumer", "Message passing basics"} {
		if !strings.Contains(tbl, detail) {
			t.Errorf("Table II missing detail %q", detail)
		}
	}
}

func TestTableIIIMatchesPaper(t *testing.T) {
	cu := swarthmore(t)
	tbl, err := cu.TableIII()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range []string{
		"Parallel and Distributed Models and Complexity",
		"Algorithmic Paradigms", "Algorithmic Problems",
	} {
		if !strings.Contains(tbl, row) {
			t.Errorf("Table III missing row %q", row)
		}
	}
	for _, detail := range []string{"PRAM", "Work", "Span", "Out-of-Core", "Sorting", "Selection", "Matrix Computation"} {
		if !strings.Contains(tbl, detail) {
			t.Errorf("Table III missing detail %q", detail)
		}
	}
}

func TestCoverageMatrixAndGaps(t *testing.T) {
	cu := swarthmore(t)
	m := cu.CoverageMatrix()
	// Threads covered by at least CS31 and CS45.
	if len(m["Threads"]) < 2 {
		t.Errorf("Threads covered by %v", m["Threads"])
	}
	// Every core topic must be covered somewhere (the paper's main goal).
	gaps := cu.CoreGaps(TCPPCore())
	if len(gaps) != 0 {
		t.Errorf("core topic gaps: %v", gaps)
	}
}

func TestOfferingSchedule(t *testing.T) {
	cu := swarthmore(t)
	fall12 := Semester{Fall: true, Year: 2012}
	offered := cu.SemesterOfferings(fall12)
	has := func(code string) bool {
		for _, c := range offered {
			if c == code {
				return true
			}
		}
		return false
	}
	if !has("CS31") || !has("CS41") {
		t.Errorf("Fall 2012 offerings: %v", offered)
	}
	if has("CS40") || has("CS87") {
		t.Errorf("future courses offered early: %v", offered)
	}
	// CS40 every other year from Spring 2013: offered Spring 2013 and
	// Spring 2015, not Spring 2014.
	cs40, _ := cu.Course("CS40")
	if !cs40.OfferedIn(Semester{Fall: false, Year: 2013}) {
		t.Error("CS40 should run Spring 2013")
	}
	if cs40.OfferedIn(Semester{Fall: false, Year: 2014}) {
		t.Error("CS40 should not run Spring 2014")
	}
	if !cs40.OfferedIn(Semester{Fall: false, Year: 2015}) {
		t.Error("CS40 should run Spring 2015")
	}
}

func TestParallelEverySemesterFromSpring2014(t *testing.T) {
	// Once the full plan is phased in (Spring 2014 onward), every semester
	// must offer intro (CS31) and at least one upper-level parallel course.
	cu := swarthmore(t)
	if bad, ok := cu.ParallelEverySemester(Semester{Fall: false, Year: 2014}, 8); !ok {
		t.Errorf("parallel coverage fails at %s\n%s", bad,
			cu.ScheduleReport(Semester{Fall: false, Year: 2014}, 8))
	}
}

func TestSemesterArithmetic(t *testing.T) {
	s := Semester{Fall: true, Year: 2012}
	n := s.Next()
	if n.Fall || n.Year != 2013 {
		t.Errorf("next of Fall 2012 = %v", n)
	}
	if n.Next() != (Semester{Fall: true, Year: 2013}) {
		t.Errorf("next-next = %v", n.Next())
	}
	if s.Index() >= n.Index() {
		t.Error("index must increase")
	}
	if s.String() != "Fall 2012" || n.String() != "Spring 2013" {
		t.Errorf("strings: %s, %s", s, n)
	}
}

func TestStudentAudit(t *testing.T) {
	cu := swarthmore(t)
	// A compliant path.
	good := StudentRecord{Semesters: [][]string{
		{"CS21"},
		{"CS35", "CS31"},
		{"CS41"},
		{"CS40"},
		{"CS45"},
	}}
	res, err := cu.Audit(good)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PrereqViolations) != 0 {
		t.Errorf("violations: %v", res.PrereqViolations)
	}
	for g, ok := range res.GroupsSatisfied {
		if !ok {
			t.Errorf("group %v unsatisfied", g)
		}
	}
	if res.CoreTopicsSeen < 10 {
		t.Errorf("core topics seen = %d", res.CoreTopicsSeen)
	}

	// Taking CS40 without CS31 violates the new prerequisite.
	bad := StudentRecord{Semesters: [][]string{
		{"CS21"},
		{"CS35"},
		{"CS40"},
	}}
	res, err = cu.Audit(bad)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PrereqViolations) == 0 {
		t.Error("missing CS31 prereq not flagged")
	}
	// Same-semester prereq does not count (must be completed earlier).
	same := StudentRecord{Semesters: [][]string{
		{"CS21", "CS35"},
	}}
	res, _ = cu.Audit(same)
	if len(res.PrereqViolations) == 0 {
		t.Error("same-semester prereq should be flagged")
	}
	// Unknown course errors.
	if _, err := cu.Audit(StudentRecord{Semesters: [][]string{{"CS00"}}}); err == nil {
		t.Error("unknown course should error")
	}
}

func TestGroupsReportStarsCS31Requirers(t *testing.T) {
	cu := swarthmore(t)
	rep := cu.GroupsReport()
	if !strings.Contains(rep, "CS45*") || !strings.Contains(rep, "CS87*") {
		t.Errorf("systems courses should be starred:\n%s", rep)
	}
	if strings.Contains(rep, "CS41*") {
		t.Errorf("CS41 must not be starred:\n%s", rep)
	}
	for _, g := range []string{"Theory", "Systems", "Applications"} {
		if !strings.Contains(rep, g) {
			t.Errorf("report missing group %s:\n%s", g, rep)
		}
	}
}

func TestScheduleReport(t *testing.T) {
	cu := swarthmore(t)
	rep := cu.ScheduleReport(Semester{Fall: true, Year: 2012}, 4)
	if !strings.Contains(rep, "Fall 2012") || !strings.Contains(rep, "CS31") {
		t.Errorf("report:\n%s", rep)
	}
}

func TestWrap(t *testing.T) {
	lines := wrap("one two three four five", 9)
	for _, ln := range lines {
		if len(ln) > 9 {
			t.Errorf("line %q exceeds width", ln)
		}
	}
	if got := strings.Join(lines, " "); got != "one two three four five" {
		t.Errorf("wrap lost words: %q", got)
	}
	if got := wrap("", 10); len(got) != 1 || got[0] != "" {
		t.Errorf("wrap empty: %v", got)
	}
}
