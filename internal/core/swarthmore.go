package core

// This file encodes the curriculum the paper describes: the courses of
// Section III, the CS31 labs of Table I, the TCPP coverage rows of Tables
// II and III, the group structure of Section II.B, and the offering
// schedule of Section I.A.

// TCPPCore returns the TCPP minimal-skill-set topics referenced across
// the paper's tables (the subset this reproduction tracks).
func TCPPCore() []Topic {
	return []Topic{
		{Name: "Memory Hierarchy", Area: Architecture, Core: true},
		{Name: "Cache Organization", Area: Architecture, Core: true},
		{Name: "Cache Coherence", Area: Architecture, Core: true},
		{Name: "Multicore", Area: Architecture, Core: true},
		{Name: "SIMD", Area: Architecture, Core: true},
		{Name: "Pipelining", Area: Architecture, Core: true},
		{Name: "Shared Memory Programming", Area: Programming, Core: true},
		{Name: "Threads", Area: Programming, Core: true},
		{Name: "Synchronization", Area: Programming, Core: true},
		{Name: "Race Conditions", Area: Programming, Core: true},
		{Name: "Deadlock", Area: Programming, Core: true},
		{Name: "Critical Sections", Area: Programming, Core: true},
		{Name: "Producer-Consumer", Area: Programming, Core: true},
		{Name: "Message Passing", Area: Programming, Core: true},
		{Name: "Speedup", Area: CrossCutting, Core: true},
		{Name: "Amdahl's Law", Area: CrossCutting, Core: true},
		{Name: "Scalability", Area: CrossCutting, Core: true},
		{Name: "Work", Area: Algorithms, Core: true},
		{Name: "Span", Area: Algorithms, Core: true},
		{Name: "PRAM", Area: Algorithms, Core: true},
		{Name: "Divide and Conquer", Area: Algorithms, Core: true},
		{Name: "Scan", Area: Algorithms, Core: true},
		{Name: "Parallel Sorting", Area: Algorithms, Core: true},
		{Name: "Task Graphs", Area: Algorithms, Core: true},
	}
}

func topics(names ...string) []Topic {
	byName := map[string]Topic{}
	for _, t := range TCPPCore() {
		byName[t.Name] = t
	}
	out := make([]Topic, 0, len(names))
	for _, n := range names {
		if t, ok := byName[n]; ok {
			out = append(out, t)
			continue
		}
		out = append(out, Topic{Name: n, Area: CrossCutting})
	}
	return out
}

// Swarthmore builds the curriculum of the paper: the new CS31, the six
// affected courses, and the group requirements. Offering phases follow
// Section I.A (CS31/CS41 Fall 2012, CS40 Spring 2013, CS45 Fall 2013,
// CS75/CS87 Spring 2014).
func Swarthmore() (*Curriculum, error) {
	cu := New("Swarthmore CS (2012 revision)")
	cu.GroupRequirement[GroupTheory] = 1
	cu.GroupRequirement[GroupSystems] = 1
	cu.GroupRequirement[GroupApplications] = 1

	fall12 := Semester{Fall: true, Year: 2012}
	spring13 := Semester{Fall: false, Year: 2013}
	fall13 := Semester{Fall: true, Year: 2013}
	spring14 := Semester{Fall: false, Year: 2014}

	courses := []*Course{
		{
			Code: "CS21", Title: "Introduction to Computer Science", Level: Intro,
			FirstOffered: Semester{Fall: true, Year: 2011}, Frequency: EverySemester,
		},
		{
			Code: "CS35", Title: "Data Structures and Algorithms", Level: Intro,
			Prereqs:      []string{"CS21"},
			FirstOffered: Semester{Fall: true, Year: 2011}, Frequency: EverySemester,
		},
		{
			Code: "CS31", Title: "Introduction to Computer Systems", Level: Intro,
			Prereqs:      []string{"CS21"},
			FirstOffered: fall12, Frequency: EverySemester,
			ParallelContent: true,
			Labs:            CS31Labs(),
			Coverage:        CS31Coverage(),
		},
		{
			Code: "CS41", Title: "Algorithms", Level: UpperLevel, Group: GroupTheory,
			Prereqs:      []string{"CS35"},
			FirstOffered: fall12, Frequency: Yearly,
			ParallelContent: true,
			Coverage:        CS41Coverage(),
		},
		{
			Code: "CS46", Title: "Theory of Computation", Level: UpperLevel, Group: GroupTheory,
			Prereqs:      []string{"CS35"},
			FirstOffered: spring13, Frequency: Yearly,
		},
		{
			Code: "CS40", Title: "Computer Graphics", Level: UpperLevel, Group: GroupApplications,
			Prereqs:      []string{"CS35", "CS31"},
			FirstOffered: spring13, Frequency: EveryOtherYear,
			ParallelContent: true,
			Coverage: []Coverage{{
				MainTopic: "GPGPU Computing",
				Details: []string{"CUDA", "SIMD and stream architectures",
					"GPU memory organization", "hybrid computing", "GPU threads",
					"scheduling", "data layout", "parallel reductions", "speedups"},
				Methods: []Pedagogy{Lecture, LabAssignment, Project},
				Topics:  topics("SIMD", "Speedup", "Shared Memory Programming"),
			}},
		},
		{
			Code: "CS45", Title: "Operating Systems", Level: UpperLevel, Group: GroupSystems,
			Prereqs:      []string{"CS35", "CS31"},
			FirstOffered: fall13, Frequency: EveryOtherYear,
			ParallelContent: true,
			Coverage: []Coverage{{
				MainTopic: "Concurrency and Distributed Systems",
				Details: []string{"processes and threads", "synchronization",
					"distributed systems", "distributed file systems", "networking", "security"},
				Methods: []Pedagogy{Lecture, LabAssignment, Exam},
				Topics: topics("Threads", "Synchronization", "Deadlock",
					"Producer-Consumer", "Critical Sections"),
			}},
		},
		{
			Code: "CS75", Title: "Compilers", Level: UpperLevel, Group: GroupSystems,
			Prereqs:      []string{"CS35", "CS31"},
			FirstOffered: spring14, Frequency: EveryOtherYear,
			ParallelContent: true,
			Coverage: []Coverage{{
				MainTopic: "Optimization for Parallel Hardware",
				Details: []string{"optimization for super-scalar, multicore and SMP",
					"false sharing", "JIT and dynamic compilation", "GPGPU compilation"},
				Methods: []Pedagogy{Lecture, Project},
				Topics:  topics("Multicore", "Cache Coherence", "Pipelining"),
			}},
		},
		{
			Code: "CS87", Title: "Parallel and Distributed Computing", Level: UpperLevel, Group: GroupSystems,
			Prereqs:      []string{"CS35", "CS31"},
			FirstOffered: spring14, Frequency: EveryOtherYear,
			ParallelContent: true,
			Coverage: []Coverage{{
				MainTopic: "Parallel and Distributed Computing Survey",
				Details: []string{"memory hierarchy", "multicore and SMPs", "false sharing",
					"GPUs", "clusters, grid, P2P, cloud", "SIMD and MIMD",
					"MPI, CUDA, OpenMP, Map-Reduce", "parallel patterns, reduce and scan",
					"speedup and scalability", "fault tolerance",
					"distributed file systems", "distributed shared memory"},
				Methods: []Pedagogy{Lecture, Discussion, LabAssignment, Project},
				Topics: topics("Message Passing", "Shared Memory Programming", "SIMD",
					"Multicore", "Speedup", "Scalability", "Scan", "Memory Hierarchy"),
			}},
		},
		{
			Code: "CS44", Title: "Databases", Level: UpperLevel, Group: GroupSystems,
			Prereqs:      []string{"CS35", "CS31"},
			FirstOffered: spring14, Frequency: EveryOtherYear,
			ParallelContent: true,
			Coverage: []Coverage{{
				MainTopic: "Parallel and Distributed Databases",
				Details: []string{"parallel join algorithms", "distributed transactions",
					"distributed hash tables"},
				Methods: []Pedagogy{Lecture, LabAssignment},
				Topics:  topics("Message Passing", "Scalability"),
			}},
		},
	}
	for _, c := range courses {
		if err := cu.Add(c); err != nil {
			return nil, err
		}
	}
	if err := cu.Validate(); err != nil {
		return nil, err
	}
	_ = spring14
	return cu, nil
}

// CS31Labs returns the eight lab assignments of Table I.
func CS31Labs() []Lab {
	return []Lab{
		{
			Name:   "Data Representation",
			Topics: []string{"Binary data representation", "Binary arithmetic and operations"},
			Goals: []string{
				"understand binary representation of different C types",
				"convert between hex, decimal, binary",
				"binary arithmetic and bit-wise operations, overflow",
				"intro to C programming and gdb",
			},
		},
		{
			Name:   "Building an ALU",
			Topics: []string{"Digital Logic", "Circuits", "Executing Machine code"},
			Goals: []string{
				"to build and test circuits from basic gates",
				"understand how machine code instrs are executed",
			},
		},
		{
			Name:   "Bit compare, Bit vectors",
			Topics: []string{"Bit-wise operations", "Memory", "Assembly Code"},
			Goals: []string{
				"writing assembly code",
				"disassembling code in gdb",
				"understanding bit-wise operators and encodings",
				"C programming and debugging",
			},
		},
		{
			Name:   "Binary Bomb",
			Topics: []string{"IA32 Assembly", "The Stack", "Scope", "Functions"},
			Goals: []string{
				"reading and tracing IA32 assembly",
				"understanding C to IA32 translation",
				"practice with tools for examining binary files",
			},
		},
		{
			Name:   "Game of Life",
			Topics: []string{"C Programming", "Timing Experiments"},
			Goals: []string{
				"understand dynamic memory, C pointers",
				"writing and designing larger C programs",
				"understanding memory layout of 2D arrays",
				"learning how to add timing measurement to C code",
			},
		},
		{
			Name:   "Python lists in C",
			Topics: []string{"C pointers", "C structs", "Low-level Memory"},
			Goals: []string{
				"implementing and using C-style libraries",
				"understanding memory storage layout of different C types",
				"C operations on memory (memcpy, void *, recasting, pointers)",
			},
		},
		{
			Name:   "Unix Shell",
			Topics: []string{"Processes", "Unix Process Creation", "Signals", "Race Conditions"},
			Goals: []string{
				"understand how a Unix shell works",
				"understand processes and the process hierarchy",
				"understand signals",
				"practice using fork, exec, signal handlers",
			},
		},
		{
			Name: "Parallel Game of Life",
			Topics: []string{"Threads", "Shared Memory Programming",
				"Synchronization", "Scalability Analysis"},
			Goals: []string{
				"understanding shared memory programming",
				"understanding and solving synchronization problems",
				"pthread programming experience",
				"developing a parallel algorithm",
				"designing and carrying out scalability experiments",
				"analyzing data and explaining results in written report",
			},
		},
	}
}

// CS31Coverage returns the TCPP coverage rows of Table II.
func CS31Coverage() []Coverage {
	std := []Pedagogy{Lecture, LabAssignment, Exam, WrittenAssignment}
	return []Coverage{
		{
			MainTopic: "The Memory Hierarchy",
			Details: []string{"Storage Circuits", "RAM", "Disk",
				"Caching and Cache Organizations", "Paging", "Replacement Policies",
				"Cache Coherence"},
			Methods: std,
			Topics:  topics("Memory Hierarchy", "Cache Organization", "Cache Coherence"),
		},
		{
			MainTopic: "Multicore and Threads",
			Details: []string{"Architecture", "Buses", "Coherency",
				"Explicit Parallelism", "Threads and Threaded Programming"},
			Methods: std,
			Topics:  topics("Multicore", "Threads", "Shared Memory Programming"),
		},
		{
			MainTopic: "Operating Systems",
			Details: []string{"Overview", "Goals", "Processes", "Threads",
				"Synchronization Primitives (locks, semaphores)", "Virtual Memory",
				"Efficiency", "Mechanism/Policy and Space/Time Trade-offs"},
			Methods: std,
			Topics:  topics("Synchronization", "Threads"),
		},
		{
			MainTopic: "Parallel Algorithms and Programming",
			Details: []string{"Shared Memory Programming", "Threads", "Synchronization",
				"Deadlock", "Race Conditions", "Critical Sections", "Producer-Consumer",
				"Amdahl's Law", "Scalability", "Speed-up"},
			Methods: std,
			Topics: topics("Shared Memory Programming", "Synchronization", "Deadlock",
				"Race Conditions", "Critical Sections", "Producer-Consumer",
				"Amdahl's Law", "Scalability", "Speedup"),
		},
		{
			MainTopic: "Other Topics Covered In-Depth",
			Details: []string{"Machine Organization Topics", "Assembly programming",
				"C to IA32", "The Stack", "Function Call Mechanics"},
			Methods: std,
			Topics:  topics("Pipelining"),
		},
		{
			MainTopic: "Other Topics Covered",
			Details: []string{"Distributed Computing", "Message passing basics",
				"TCP-IP sockets", "Pipelining", "Super-scalar", "Implicit parallelism"},
			Methods: []Pedagogy{Lecture},
			Topics:  topics("Message Passing"),
		},
	}
}

// CS41Coverage returns the TCPP coverage rows of Table III.
func CS41Coverage() []Coverage {
	std := []Pedagogy{Lecture, LabExercise, Homework, Exam}
	return []Coverage{
		{
			MainTopic: "Parallel and Distributed Models and Complexity",
			Details: []string{"Asymptotic Bounds", "Time", "Memory", "Space",
				"Scalability", "PRAM", "Task graphs", "Work", "Span"},
			Methods: std,
			Topics:  topics("Scalability", "PRAM", "Task Graphs", "Work", "Span"),
		},
		{
			MainTopic: "Algorithmic Paradigms",
			Details: []string{"Divide and Conquer", "Recursion", "Scan", "Blocking",
				"Out-of-Core (I/O-Efficient) Algorithms"},
			Methods: std,
			Topics:  topics("Divide and Conquer", "Scan"),
		},
		{
			MainTopic: "Algorithmic Problems",
			Details:   []string{"Sorting", "Selection", "Matrix Computation"},
			Methods:   []Pedagogy{Lecture, LabExercise, Exam},
			Topics:    topics("Parallel Sorting"),
		},
	}
}
