package core_test

import (
	"fmt"

	"repro/internal/core"
)

// Build the paper's curriculum and interrogate its structure.
func Example() {
	cu, err := core.Swarthmore()
	if err != nil {
		fmt.Println(err)
		return
	}
	chain, _ := cu.PrereqChain("CS87")
	fmt.Println("CS87 prerequisites:", chain)
	_, ok := cu.ParallelEverySemester(core.Semester{Fall: false, Year: 2014}, 6)
	fmt.Println("parallel content every semester from Spring 2014:", ok)
	fmt.Println("uncovered core topics:", len(cu.CoreGaps(core.TCPPCore())))
	// Output:
	// CS87 prerequisites: [CS21 CS31 CS35]
	// parallel content every semester from Spring 2014: true
	// uncovered core topics: 0
}

// Audit a student path against the new requirements.
func ExampleCurriculum_Audit() {
	cu, _ := core.Swarthmore()
	res, err := cu.Audit(core.StudentRecord{Semesters: [][]string{
		{"CS21"},
		{"CS35"},
		{"CS40"}, // Graphics without CS31: violates the new prerequisite
	}})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("violations:", len(res.PrereqViolations))
	// Output: violations: 1
}
