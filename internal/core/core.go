// Package core models the paper's actual contribution: a curriculum that
// integrates the NSF/IEEE-TCPP parallel-and-distributed-computing core
// topics across an undergraduate program. It represents courses, labs,
// prerequisites, TCPP topic coverage, offering schedules, and degree
// requirements; validates the prerequisite DAG; regenerates the paper's
// Tables I, II, and III; plans multi-semester offerings (checking the
// paper's "at least one introductory and one upper-level course with
// parallel topics every semester" property); and audits student paths
// against degree requirements and TCPP exposure.
package core

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Area is a TCPP curriculum area.
type Area int

// The four NSF/IEEE-TCPP areas.
const (
	Architecture Area = iota
	Programming
	Algorithms
	CrossCutting
)

// String returns the human-readable name.
func (a Area) String() string {
	return [...]string{"Architecture", "Programming", "Algorithms", "Cross-Cutting"}[a]
}

// Topic is one TCPP curricular topic.
type Topic struct {
	Name string
	Area Area
	// Core marks topics in the TCPP "minimal skill set".
	Core bool
}

// Pedagogy is a teaching method for a topic (Table II/III third column).
type Pedagogy int

// The pedagogical methods the paper's tables list.
const (
	Lecture Pedagogy = iota
	LabAssignment
	LabExercise
	Homework
	Exam
	WrittenAssignment
	Discussion
	Project
)

// String returns the human-readable name.
func (p Pedagogy) String() string {
	return [...]string{
		"Lecture", "Lab Assignments", "Lab Exercises", "Homework",
		"Exams", "Written Assignments", "Discussion", "Projects",
	}[p]
}

// Coverage records how a course covers one topic row.
type Coverage struct {
	MainTopic string
	Details   []string
	Methods   []Pedagogy
	Topics    []Topic // the TCPP topics under this row
}

// Lab is one lab assignment (Table I rows).
type Lab struct {
	Name   string
	Topics []string
	Goals  []string
}

// Level distinguishes introductory from upper-level courses.
type Level int

// The course levels.
const (
	Intro Level = iota
	UpperLevel
)

// Group is a degree-requirement group (Section II.B).
type Group int

// The groups. GroupNone marks intro courses outside the grouping.
const (
	GroupNone Group = iota
	GroupTheory
	GroupSystems
	GroupApplications
)

// String returns the human-readable name.
func (g Group) String() string {
	return [...]string{"-", "Theory and Algorithms", "Systems", "Applications"}[g]
}

// Frequency is how often a course is offered.
type Frequency int

// The offering frequencies at a small department.
const (
	EverySemester Frequency = iota
	Yearly
	EveryOtherYear
)

// Semester is a term like {Fall, 2012}.
type Semester struct {
	Fall bool
	Year int
}

// String returns the human-readable name.
func (s Semester) String() string {
	season := "Spring"
	if s.Fall {
		season = "Fall"
	}
	return fmt.Sprintf("%s %d", season, s.Year)
}

// Next returns the following semester.
func (s Semester) Next() Semester {
	if s.Fall {
		return Semester{Fall: false, Year: s.Year + 1}
	}
	return Semester{Fall: true, Year: s.Year}
}

// Index returns a comparable ordinal (2 per year).
func (s Semester) Index() int {
	i := s.Year * 2
	if s.Fall {
		i++
	}
	return i
}

// Course is one course in the curriculum.
type Course struct {
	Code         string
	Title        string
	Level        Level
	Group        Group
	Prereqs      []string
	Coverage     []Coverage
	Labs         []Lab
	FirstOffered Semester
	Frequency    Frequency
	// ParallelContent marks courses that carry TCPP material (the paper's
	// "at least one intro and one upper-level parallel course per
	// semester" property quantifies over these).
	ParallelContent bool
}

// TCPPTopics flattens the course's covered TCPP topics.
func (c *Course) TCPPTopics() []Topic {
	var out []Topic
	for _, cov := range c.Coverage {
		out = append(out, cov.Topics...)
	}
	return out
}

// OfferedIn reports whether the course runs in the given semester under
// its frequency, phase-locked to its first offering.
func (c *Course) OfferedIn(s Semester) bool {
	if s.Index() < c.FirstOffered.Index() {
		return false
	}
	diff := s.Index() - c.FirstOffered.Index()
	switch c.Frequency {
	case EverySemester:
		return true
	case Yearly:
		return diff%2 == 0
	case EveryOtherYear:
		return diff%4 == 0
	}
	return false
}

// Curriculum is the whole program.
type Curriculum struct {
	Name    string
	Courses map[string]*Course
	// GroupRequirement: a major must take at least one course from each
	// group with a requirement > 0.
	GroupRequirement map[Group]int
}

// New creates an empty curriculum.
func New(name string) *Curriculum {
	return &Curriculum{
		Name:             name,
		Courses:          make(map[string]*Course),
		GroupRequirement: make(map[Group]int),
	}
}

// Add registers a course.
func (cu *Curriculum) Add(c *Course) error {
	if c.Code == "" {
		return errors.New("core: course needs a code")
	}
	if _, dup := cu.Courses[c.Code]; dup {
		return fmt.Errorf("core: duplicate course %s", c.Code)
	}
	cu.Courses[c.Code] = c
	return nil
}

// Course looks up a course by code.
func (cu *Curriculum) Course(code string) (*Course, error) {
	c, ok := cu.Courses[code]
	if !ok {
		return nil, fmt.Errorf("core: unknown course %s", code)
	}
	return c, nil
}

// ErrPrereqCycle reports a cyclic prerequisite structure.
var ErrPrereqCycle = errors.New("core: prerequisite cycle")

// Validate checks referential integrity and acyclicity of prerequisites.
func (cu *Curriculum) Validate() error {
	for code, c := range cu.Courses {
		for _, p := range c.Prereqs {
			if _, ok := cu.Courses[p]; !ok {
				return fmt.Errorf("core: %s requires unknown course %s", code, p)
			}
		}
	}
	// Kahn over prereq edges.
	indeg := map[string]int{}
	for code := range cu.Courses {
		indeg[code] = 0
	}
	for _, c := range cu.Courses {
		indeg[c.Code] = len(c.Prereqs)
	}
	queue := []string{}
	for code, d := range indeg {
		if d == 0 {
			queue = append(queue, code)
		}
	}
	dependents := map[string][]string{}
	for code, c := range cu.Courses {
		for _, p := range c.Prereqs {
			dependents[p] = append(dependents[p], code)
		}
	}
	seen := 0
	for len(queue) > 0 {
		code := queue[0]
		queue = queue[1:]
		seen++
		for _, d := range dependents[code] {
			indeg[d]--
			if indeg[d] == 0 {
				queue = append(queue, d)
			}
		}
	}
	if seen != len(cu.Courses) {
		return ErrPrereqCycle
	}
	return nil
}

// PrereqChain returns every (transitive) prerequisite of a course.
func (cu *Curriculum) PrereqChain(code string) ([]string, error) {
	c, err := cu.Course(code)
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	var out []string
	var walk func(*Course) error
	walk = func(c *Course) error {
		for _, p := range c.Prereqs {
			if seen[p] {
				continue
			}
			seen[p] = true
			pc, err := cu.Course(p)
			if err != nil {
				return err
			}
			out = append(out, p)
			if err := walk(pc); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(c); err != nil {
		return nil, err
	}
	sort.Strings(out)
	return out, nil
}

// CoverageMatrix maps each TCPP topic name to the courses covering it.
func (cu *Curriculum) CoverageMatrix() map[string][]string {
	m := map[string][]string{}
	for code, c := range cu.Courses {
		for _, t := range c.TCPPTopics() {
			m[t.Name] = append(m[t.Name], code)
		}
	}
	for k := range m {
		sort.Strings(m[k])
	}
	return m
}

// CoreGaps returns TCPP-core topics no course covers. Callers supply the
// canonical core-topic list (see TCPPCore).
func (cu *Curriculum) CoreGaps(core []Topic) []string {
	covered := cu.CoverageMatrix()
	var gaps []string
	for _, t := range core {
		if len(covered[t.Name]) == 0 {
			gaps = append(gaps, t.Name)
		}
	}
	sort.Strings(gaps)
	return gaps
}

// SemesterOfferings lists the courses offered in a semester.
func (cu *Curriculum) SemesterOfferings(s Semester) []string {
	var out []string
	for code, c := range cu.Courses {
		if c.OfferedIn(s) {
			out = append(out, code)
		}
	}
	sort.Strings(out)
	return out
}

// ParallelEverySemester checks the paper's scheduling goal over a window:
// every semester offers at least one introductory and one upper-level
// course with parallel content. It returns the first failing semester, or
// ok=true.
func (cu *Curriculum) ParallelEverySemester(start Semester, semesters int) (Semester, bool) {
	s := start
	for i := 0; i < semesters; i++ {
		intro, upper := false, false
		for _, code := range cu.SemesterOfferings(s) {
			c := cu.Courses[code]
			if !c.ParallelContent {
				continue
			}
			if c.Level == Intro {
				intro = true
			} else {
				upper = true
			}
		}
		if !intro || !upper {
			return s, false
		}
		s = s.Next()
	}
	return Semester{}, true
}

// StudentRecord is a student's planned or completed sequence.
type StudentRecord struct {
	// Semesters in order; each lists the course codes taken.
	Semesters [][]string
}

// AuditResult reports a degree audit.
type AuditResult struct {
	PrereqViolations []string
	GroupsSatisfied  map[Group]bool
	TCPPTopicsSeen   int
	CoreTopicsSeen   int
	Courses          int
}

// Audit checks prerequisites (a prereq must be completed in an earlier
// semester), group requirements, and TCPP exposure for a student record.
func (cu *Curriculum) Audit(rec StudentRecord) (AuditResult, error) {
	res := AuditResult{GroupsSatisfied: map[Group]bool{}}
	done := map[string]bool{}
	topicSeen := map[string]bool{}
	coreSeen := map[string]bool{}
	groupCount := map[Group]int{}

	for si, sem := range rec.Semesters {
		for _, code := range sem {
			c, err := cu.Course(code)
			if err != nil {
				return res, err
			}
			res.Courses++
			for _, p := range c.Prereqs {
				if !done[p] {
					res.PrereqViolations = append(res.PrereqViolations,
						fmt.Sprintf("%s taken in semester %d without prerequisite %s", code, si+1, p))
				}
			}
			groupCount[c.Group]++
			for _, t := range c.TCPPTopics() {
				topicSeen[t.Name] = true
				if t.Core {
					coreSeen[t.Name] = true
				}
			}
		}
		// Completion happens at semester end.
		for _, code := range sem {
			done[code] = true
		}
	}
	for g, need := range cu.GroupRequirement {
		res.GroupsSatisfied[g] = groupCount[g] >= need
	}
	res.TCPPTopicsSeen = len(topicSeen)
	res.CoreTopicsSeen = len(coreSeen)
	sort.Strings(res.PrereqViolations)
	return res, nil
}

// renderTable renders rows of columns with fixed widths, wrapping cells.
func renderTable(headers []string, widths []int, rows [][]string) string {
	var b strings.Builder
	writeRow := func(cells []string) {
		// Wrap each cell to its width, then emit line by line.
		wrapped := make([][]string, len(cells))
		height := 1
		for i, cell := range cells {
			wrapped[i] = wrap(cell, widths[i])
			if len(wrapped[i]) > height {
				height = len(wrapped[i])
			}
		}
		for ln := 0; ln < height; ln++ {
			for i := range cells {
				text := ""
				if ln < len(wrapped[i]) {
					text = wrapped[i][ln]
				}
				fmt.Fprintf(&b, "%-*s", widths[i]+2, text)
			}
			b.WriteByte('\n')
		}
	}
	writeRow(headers)
	total := 2 * len(widths)
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}

// wrap splits s into lines of at most width characters on word
// boundaries. Embedded newlines force breaks, letting callers keep list
// items whole.
func wrap(s string, width int) []string {
	var lines []string
	for _, seg := range strings.Split(s, "\n") {
		words := strings.Fields(seg)
		if len(words) == 0 {
			lines = append(lines, "")
			continue
		}
		cur := words[0]
		for _, w := range words[1:] {
			if len(cur)+1+len(w) <= width {
				cur += " " + w
			} else {
				lines = append(lines, cur)
				cur = w
			}
		}
		lines = append(lines, cur)
	}
	if len(lines) == 0 {
		return []string{""}
	}
	return lines
}
