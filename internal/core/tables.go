package core

import (
	"fmt"
	"strings"
)

// TableI renders the CS31 lab table (paper Table I) from the curriculum
// data.
func (cu *Curriculum) TableI() (string, error) {
	c, err := cu.Course("CS31")
	if err != nil {
		return "", err
	}
	rows := make([][]string, 0, len(c.Labs))
	for _, lab := range c.Labs {
		rows = append(rows, []string{
			lab.Name,
			strings.Join(lab.Topics, ",\n"),
			strings.Join(lab.Goals, "\n"),
		})
	}
	out := "TABLE I — CS31 Lab Assignments\n\n"
	out += renderTable(
		[]string{"ASSIGNMENT", "TOPIC", "GOALS"},
		[]int{26, 34, 50},
		rows,
	)
	return out, nil
}

// TableII renders the CS31 TCPP coverage table (paper Table II).
func (cu *Curriculum) TableII() (string, error) {
	return cu.coverageTable("CS31", "TABLE II — NSF/IEEE-TCPP Curricular Topics Covered in CS31")
}

// TableIII renders the CS41 TCPP coverage table (paper Table III).
func (cu *Curriculum) TableIII() (string, error) {
	return cu.coverageTable("CS41", "TABLE III — NSF/IEEE-TCPP Curricular Topics Covered in CS41")
}

func (cu *Curriculum) coverageTable(code, title string) (string, error) {
	c, err := cu.Course(code)
	if err != nil {
		return "", err
	}
	rows := make([][]string, 0, len(c.Coverage))
	for _, cov := range c.Coverage {
		methods := make([]string, len(cov.Methods))
		for i, m := range cov.Methods {
			methods[i] = m.String()
		}
		rows = append(rows, []string{
			cov.MainTopic,
			strings.Join(cov.Details, ",\n"),
			strings.Join(methods, ",\n"),
		})
	}
	out := title + "\n\n"
	out += renderTable(
		[]string{"MAIN TOPIC", "DETAILS", "PEDAGOGICAL METHODS"},
		[]int{48, 52, 26},
		rows,
	)
	return out, nil
}

// GroupsReport renders the Section II.B course grouping.
func (cu *Curriculum) GroupsReport() string {
	byGroup := map[Group][]string{}
	for code, c := range cu.Courses {
		if c.Level == UpperLevel {
			star := ""
			for _, p := range c.Prereqs {
				if p == "CS31" {
					star = "*"
				}
			}
			byGroup[c.Group] = append(byGroup[c.Group], code+star)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — upper-level groups (* requires CS31)\n", cu.Name)
	for _, g := range []Group{GroupTheory, GroupSystems, GroupApplications} {
		list := byGroup[g]
		sortStrings(list)
		fmt.Fprintf(&b, "  Group: %-24s %s\n", g.String()+":", strings.Join(list, ", "))
	}
	return b.String()
}

func sortStrings(xs []string) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// ScheduleReport renders the offerings over a window of semesters, with
// the parallel-coverage check from the paper's overview.
func (cu *Curriculum) ScheduleReport(start Semester, semesters int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Offering plan from %s:\n", start)
	s := start
	for i := 0; i < semesters; i++ {
		var par []string
		for _, code := range cu.SemesterOfferings(s) {
			if cu.Courses[code].ParallelContent {
				par = append(par, code)
			}
		}
		fmt.Fprintf(&b, "  %-12s offered: %-40s parallel: %s\n",
			s.String(), strings.Join(cu.SemesterOfferings(s), " "), strings.Join(par, " "))
		s = s.Next()
	}
	if bad, ok := cu.ParallelEverySemester(start, semesters); !ok {
		fmt.Fprintf(&b, "WARNING: %s lacks an intro or upper-level parallel course\n", bad)
	} else {
		b.WriteString("Every semester offers intro and upper-level parallel content.\n")
	}
	return b.String()
}
