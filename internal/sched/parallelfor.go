// ParallelFor: the worksharing entry point — recursive binary range
// splitting down to a grain, the same divide-and-conquer shape the
// work/span lectures analyze (span O(log(n/grain) + grain)).
package sched

import "context"

// DefaultGrain picks the grain ParallelFor uses when given grain <= 0:
// enough splits to give each worker ~8 tasks for stealing headroom,
// floored at 1.
func (p *Pool) DefaultGrain(n int) int {
	g := n / (8 * len(p.workers))
	if g < 1 {
		g = 1
	}
	return g
}

// ParallelFor runs body over [0, n) in chunks of at least grain
// elements, submitted from outside the pool. body must be safe to call
// concurrently on disjoint ranges.
func (p *Pool) ParallelFor(n, grain int, body func(lo, hi int)) error {
	if n <= 0 {
		return nil
	}
	if grain <= 0 {
		grain = p.DefaultGrain(n)
	}
	return p.Do(func(c *Task) {
		For(c, 0, n, grain, body)
	})
}

// ParallelForCtx is ParallelFor under a caller lifetime: once ctx is
// done, no further range splits fork and no unstarted chunks run — the
// loop drains whatever bodies are already executing and returns the
// wrapped ctx.Err(). Ranges are dropped, not interrupted: body is never
// killed mid-chunk, so partial results stay chunk-consistent.
func (p *Pool) ParallelForCtx(ctx context.Context, n, grain int, body func(lo, hi int)) error {
	if n <= 0 {
		return nil
	}
	if grain <= 0 {
		grain = p.DefaultGrain(n)
	}
	return p.DoCtx(ctx, func(c *Task) {
		ForCtx(ctx, c, 0, n, grain, body)
	})
}

// For is ParallelFor from inside a task body: it splits [lo, hi) on the
// current worker so nested parallel loops compose without extra pool
// round-trips.
func For(c *Task, lo, hi, grain int, body func(lo, hi int)) {
	if grain < 1 {
		grain = 1
	}
	if hi-lo <= grain {
		if hi > lo {
			body(lo, hi)
		}
		return
	}
	mid := lo + (hi-lo)/2
	right := c.Fork(func(c2 *Task) { For(c2, mid, hi, grain, body) })
	For(c, lo, mid, grain, body)
	c.Join(right)
}

// ForCtx is For with a cancellation check at every split and leaf: a
// done ctx stops the recursion before forking or running anything
// further, so a canceled parallel loop stops seeding new chunks while
// chunks already running finish normally.
func ForCtx(ctx context.Context, c *Task, lo, hi, grain int, body func(lo, hi int)) {
	if ctx.Err() != nil {
		return
	}
	if grain < 1 {
		grain = 1
	}
	if hi-lo <= grain {
		if hi > lo {
			body(lo, hi)
		}
		return
	}
	mid := lo + (hi-lo)/2
	right := c.Fork(func(c2 *Task) { ForCtx(ctx, c2, mid, hi, grain, body) })
	ForCtx(ctx, c, lo, mid, grain, body)
	c.Join(right)
}
