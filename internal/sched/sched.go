// Package sched is the shared fork-join runtime under every parallel
// lab: a work-stealing scheduler with a fixed worker pool, per-worker
// LIFO deques with random-victim FIFO stealing, a Fork/Join task API,
// ParallelFor with grain-size control, and Group for irregular task
// graphs. It exists so the CS41 work/span analyses are measured against
// a bounded runtime instead of one goroutine per fork — speedups then
// reflect the algorithm's DAG, not goroutine-scheduler churn.
//
// Counters (tasks executed, steals, steal failures, per-worker
// busy/idle time) are exported through Stats and metrics.CounterSet so
// benchmarks can report steal rates alongside speedups.
package sched

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// task is one unit of fork-join work. done flips exactly once, after fn
// (and any panic capture) has finished.
type task struct {
	fn       func(*Task)
	done     atomic.Bool
	panicVal any

	// waitMu guards waitCh, installed lazily by a parked joiner and
	// closed by run once done has flipped.
	waitMu sync.Mutex
	waitCh chan struct{}
}

// await blocks until t completes, charging the wait to w's idle time.
// The done re-check after installing the channel pairs with run's
// read-after-store: either run sees our channel and closes it, or we
// see done already set and return without blocking.
func (t *task) await(w *worker) {
	t.waitMu.Lock()
	if t.waitCh == nil {
		t.waitCh = make(chan struct{})
	}
	ch := t.waitCh
	t.waitMu.Unlock()
	if t.done.Load() {
		return
	}
	start := time.Now()
	<-ch
	w.idleNanos.Add(time.Since(start).Nanoseconds())
}

// Handle names a forked task so it can be joined.
type Handle struct{ t *task }

// Task is the execution context passed to every task body. Fork pushes
// onto the current worker's deque; Join helps (runs other tasks)
// instead of blocking, so the pool never needs more goroutines than
// workers.
type Task struct {
	w *worker
}

// Pool is a fixed set of worker goroutines sharing work by stealing.
type Pool struct {
	workers []*worker

	// inject is the external-submission queue (Do from non-worker
	// goroutines); workers drain it when their deque and steals come up
	// empty.
	injectMu sync.Mutex
	inject   []*task

	// pending counts queued-but-unstarted tasks; it gates parking so a
	// push can never be missed by a worker about to sleep.
	pending atomic.Int64

	// idleMu guards the stack of parked workers.
	idleMu sync.Mutex
	idle   []*worker

	closed atomic.Bool
	wg     sync.WaitGroup
}

type worker struct {
	pool *Pool
	id   int

	mu    sync.Mutex
	deque []*task // push/pop at tail (LIFO owner end); steal at head (FIFO)

	park chan struct{}
	rng  uint64

	// counters (atomic: read concurrently by Stats)
	tasks      atomic.Int64
	steals     atomic.Int64
	stealFails atomic.Int64
	busyNanos  atomic.Int64
	idleNanos  atomic.Int64
}

// New creates a pool of n workers; n <= 0 picks runtime.NumCPU().
func New(n int) *Pool {
	if n <= 0 {
		n = runtime.NumCPU()
	}
	p := &Pool{}
	for i := 0; i < n; i++ {
		w := &worker{
			pool: p,
			id:   i,
			park: make(chan struct{}, 1),
			rng:  uint64(i)*0x9e3779b97f4a7c15 + 1,
		}
		p.workers = append(p.workers, w)
	}
	p.wg.Add(n)
	for _, w := range p.workers {
		go w.loop()
	}
	return p
}

var defaultPool struct {
	once sync.Once
	p    *Pool
}

// Default returns the process-wide pool (runtime.NumCPU() workers),
// created on first use and never closed — the runtime the exported
// psort/mapreduce entry points run on.
func Default() *Pool {
	defaultPool.once.Do(func() { defaultPool.p = New(0) })
	return defaultPool.p
}

// Workers returns the pool size.
func (p *Pool) Workers() int { return len(p.workers) }

// ErrClosed is returned by Do on a closed pool.
var ErrClosed = errors.New("sched: pool is closed")

// Close stops the workers and waits for them to exit. Tasks already
// queued are drained first; Do after Close returns ErrClosed.
func (p *Pool) Close() {
	if p.closed.Swap(true) {
		return
	}
	p.wakeAll()
	p.wg.Wait()
}

// Do submits a root task from outside the pool and blocks until it (and
// everything it joined) completes. If the task body panics, Do
// re-panics in the caller.
func (p *Pool) Do(fn func(*Task)) error {
	if p.closed.Load() {
		return ErrClosed
	}
	done := make(chan struct{})
	var pv any
	t := &task{fn: func(c *Task) {
		// Recover here (not in the worker) so pv is written before done
		// is closed — the channel gives the caller the happens-before.
		defer func() {
			pv = recover()
			close(done)
		}()
		fn(c)
	}}
	p.injectMu.Lock()
	if p.closed.Load() {
		p.injectMu.Unlock()
		return ErrClosed
	}
	p.pending.Add(1)
	p.inject = append(p.inject, t)
	p.injectMu.Unlock()
	p.wakeOne()
	// Close may have flipped closed between the check above and our
	// append becoming visible, in which case the workers could all have
	// observed pending==0 and exited without ever seeing the task. Pull
	// it back out; if it is gone, a worker got there first and will run
	// it to completion (workers cannot exit while pending > 0).
	if p.closed.Load() && p.removeInjected(t) {
		return ErrClosed
	}
	<-done
	if pv != nil {
		panic(pv)
	}
	return nil
}

// DoCtx is Do with a caller lifetime attached. A context that is
// already done fails fast without submitting anything. Otherwise the
// root task runs — in-flight fork-join work is never abandoned, because
// task bodies own shared state — and a cancellation that happened along
// the way surfaces as a wrapped ctx.Err() once the task (and everything
// it joined) has finished. Bodies that should stop seeding work early
// observe the same ctx through ForCtx or their own checks.
func (p *Pool) DoCtx(ctx context.Context, fn func(*Task)) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("sched: task aborted before submission: %w", err)
	}
	if err := p.Do(fn); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("sched: task interrupted: %w", err)
	}
	return nil
}

// removeInjected pulls t out of the inject queue if still present,
// reporting whether it was removed.
func (p *Pool) removeInjected(t *task) bool {
	p.injectMu.Lock()
	defer p.injectMu.Unlock()
	for i, q := range p.inject {
		if q == t {
			p.inject = append(p.inject[:i], p.inject[i+1:]...)
			p.pending.Add(-1)
			return true
		}
	}
	return false
}

// Fork queues fn onto the current worker's deque (LIFO end) and returns
// a Handle to join. The depth-first order this produces is the standard
// work-first fork-join discipline: own work runs newest-first, thieves
// take the oldest (largest) subproblems.
func (c *Task) Fork(fn func(*Task)) Handle {
	t := &task{fn: fn}
	w := c.w
	w.mu.Lock()
	w.deque = append(w.deque, t)
	w.mu.Unlock()
	w.pool.pending.Add(1)
	w.pool.wakeOne()
	return Handle{t: t}
}

// joinSpinSweeps is how many consecutive empty pop/steal sweeps a
// joiner tolerates before parking on the awaited completion instead of
// burning a core on runtime.Gosched.
const joinSpinSweeps = 4

// Join waits for h, helping: while h is unfinished the worker pops its
// own deque, then steals; when no work exists anywhere it parks on the
// task's completion notification rather than spinning — live goroutines
// stay at the pool size either way. Panics from the joined task
// propagate to the joiner.
//
// Parking cannot strand the joined task: by the time a joiner parks its
// own deque is empty, and a task in any other worker's deque belongs to
// a worker that is live (workers drain their deque before parking or
// blocking in a Join of their own), so every queued task is eventually
// run and every running task closes its channel when done.
func (c *Task) Join(h Handle) {
	w := c.w
	sweeps := 0
	for !h.t.done.Load() {
		if t := w.pop(); t != nil {
			w.run(t)
			sweeps = 0
			continue
		}
		if t := w.stealOnce(); t != nil {
			w.run(t)
			sweeps = 0
			continue
		}
		sweeps++
		if sweeps < joinSpinSweeps {
			runtime.Gosched()
			continue
		}
		h.t.await(w)
		sweeps = 0
	}
	if h.t.panicVal != nil {
		panic(h.t.panicVal)
	}
}

// Group tracks a dynamic set of forked tasks — fork-join for irregular
// graphs (DAG execution) where a single Handle per child is awkward.
type Group struct {
	pending atomic.Int64
	mu      sync.Mutex
	pv      any
	// waitCh is installed lazily by a parked Wait and closed by the
	// decrement that takes pending to zero.
	waitCh chan struct{}
}

// Fork adds fn to the group and queues it on the current worker.
func (g *Group) Fork(c *Task, fn func(*Task)) {
	g.pending.Add(1)
	c.Fork(func(c2 *Task) {
		defer func() {
			if r := recover(); r != nil {
				g.mu.Lock()
				if g.pv == nil {
					g.pv = r
				}
				g.mu.Unlock()
			}
			if g.pending.Add(-1) == 0 {
				g.mu.Lock()
				ch := g.waitCh
				g.waitCh = nil
				g.mu.Unlock()
				if ch != nil {
					close(ch)
				}
			}
		}()
		fn(c2)
	})
}

// Wait helps until every task forked into the group (including tasks
// other group members forked after Wait began) has finished, parking on
// a completion notification once no work is available anywhere (see
// Join for why parking cannot strand queued group tasks). The first
// panic raised by a group task re-panics here.
func (g *Group) Wait(c *Task) {
	w := c.w
	sweeps := 0
	for g.pending.Load() > 0 {
		if t := w.pop(); t != nil {
			w.run(t)
			sweeps = 0
			continue
		}
		if t := w.stealOnce(); t != nil {
			w.run(t)
			sweeps = 0
			continue
		}
		sweeps++
		if sweeps < joinSpinSweeps {
			runtime.Gosched()
			continue
		}
		g.await(w)
		sweeps = 0
	}
	g.mu.Lock()
	pv := g.pv
	g.mu.Unlock()
	if pv != nil {
		panic(pv)
	}
}

// await parks until the group's pending count reaches zero; the
// pending re-check after installing the channel mirrors task.await. A
// transient zero (seeding forks racing early completions) at worst
// closes an uninstalled channel slot early — Wait's loop condition
// re-checks pending after every wake.
func (g *Group) await(w *worker) {
	g.mu.Lock()
	if g.waitCh == nil {
		g.waitCh = make(chan struct{})
	}
	ch := g.waitCh
	g.mu.Unlock()
	if g.pending.Load() <= 0 {
		return
	}
	start := time.Now()
	<-ch
	w.idleNanos.Add(time.Since(start).Nanoseconds())
}

// --- worker internals ---

func (w *worker) loop() {
	defer w.pool.wg.Done()
	for {
		t := w.pop()
		if t == nil {
			t = w.stealOnce()
		}
		if t == nil {
			t = w.pool.popInject()
		}
		if t != nil {
			w.run(t)
			continue
		}
		if w.pool.closed.Load() && w.pool.pending.Load() == 0 {
			return
		}
		w.parkSelf()
	}
}

// run executes t on this worker, charging busy time and capturing
// panics so a failing task body can't kill the pool.
func (w *worker) run(t *task) {
	start := time.Now()
	func() {
		defer func() {
			if r := recover(); r != nil {
				t.panicVal = r
			}
		}()
		t.fn(&Task{w: w})
	}()
	t.done.Store(true)
	// Wake a joiner parked in task.await. Reading waitCh after storing
	// done means either we see the joiner's channel, or the joiner's
	// done re-check (after installing it) sees true.
	t.waitMu.Lock()
	ch := t.waitCh
	t.waitMu.Unlock()
	if ch != nil {
		close(ch)
	}
	w.busyNanos.Add(time.Since(start).Nanoseconds())
	w.tasks.Add(1)
}

// pop takes from the LIFO (tail) end of the worker's own deque.
func (w *worker) pop() *task {
	w.mu.Lock()
	n := len(w.deque)
	if n == 0 {
		w.mu.Unlock()
		return nil
	}
	t := w.deque[n-1]
	w.deque[n-1] = nil
	w.deque = w.deque[:n-1]
	w.mu.Unlock()
	w.pool.pending.Add(-1)
	return t
}

// stealFrom takes from the FIFO (head) end of a victim's deque.
func (w *worker) stealFrom(v *worker) *task {
	v.mu.Lock()
	if len(v.deque) == 0 {
		v.mu.Unlock()
		return nil
	}
	t := v.deque[0]
	copy(v.deque, v.deque[1:])
	v.deque[len(v.deque)-1] = nil
	v.deque = v.deque[:len(v.deque)-1]
	v.mu.Unlock()
	w.pool.pending.Add(-1)
	return t
}

// stealOnce sweeps the other workers once in random-victim order,
// falling back to the inject queue; one full empty sweep counts as a
// steal failure.
func (w *worker) stealOnce() *task {
	ws := w.pool.workers
	n := len(ws)
	if n > 1 {
		// xorshift64 victim order
		w.rng ^= w.rng << 13
		w.rng ^= w.rng >> 7
		w.rng ^= w.rng << 17
		off := int(w.rng % uint64(n))
		for i := 0; i < n; i++ {
			v := ws[(off+i)%n]
			if v == w {
				continue
			}
			if t := w.stealFrom(v); t != nil {
				w.steals.Add(1)
				return t
			}
		}
	}
	if t := w.pool.popInject(); t != nil {
		return t
	}
	w.stealFails.Add(1)
	return nil
}

func (p *Pool) popInject() *task {
	p.injectMu.Lock()
	if len(p.inject) == 0 {
		p.injectMu.Unlock()
		return nil
	}
	t := p.inject[0]
	copy(p.inject, p.inject[1:])
	p.inject[len(p.inject)-1] = nil
	p.inject = p.inject[:len(p.inject)-1]
	p.injectMu.Unlock()
	p.pending.Add(-1)
	return t
}

// parkSelf registers on the idle stack and sleeps until woken. The
// pending re-check after registration closes the lost-wakeup race:
// pushers increment pending before scanning the idle stack, so either
// the pusher sees us parked, or we see its task.
func (w *worker) parkSelf() {
	p := w.pool
	p.idleMu.Lock()
	if p.pending.Load() > 0 || p.closed.Load() {
		p.idleMu.Unlock()
		return
	}
	p.idle = append(p.idle, w)
	p.idleMu.Unlock()
	start := time.Now()
	<-w.park
	w.idleNanos.Add(time.Since(start).Nanoseconds())
}

func (p *Pool) wakeOne() {
	p.idleMu.Lock()
	var w *worker
	if n := len(p.idle); n > 0 {
		w = p.idle[n-1]
		p.idle = p.idle[:n-1]
	}
	p.idleMu.Unlock()
	if w != nil {
		select {
		case w.park <- struct{}{}:
		default:
		}
	}
}

func (p *Pool) wakeAll() {
	p.idleMu.Lock()
	idle := p.idle
	p.idle = nil
	p.idleMu.Unlock()
	for _, w := range idle {
		select {
		case w.park <- struct{}{}:
		default:
		}
	}
	// Workers that were mid-scan (not yet parked) re-check closed on
	// their next loop; waking parked ones is enough for shutdown.
}

// --- counters ---

// Stats is a snapshot of the pool's counters, summed across workers.
type Stats struct {
	Workers    int
	Tasks      int64 // task bodies executed
	Steals     int64 // successful steals
	StealFails int64 // full empty sweeps
	Busy       time.Duration
	Idle       time.Duration
}

// Stats sums the per-worker counters.
func (p *Pool) Stats() Stats {
	s := Stats{Workers: len(p.workers)}
	for _, w := range p.workers {
		s.Tasks += w.tasks.Load()
		s.Steals += w.steals.Load()
		s.StealFails += w.stealFails.Load()
		s.Busy += time.Duration(w.busyNanos.Load())
		s.Idle += time.Duration(w.idleNanos.Load())
	}
	return s
}

// Sub returns s - prev, for per-run deltas against a cumulative pool.
func (s Stats) Sub(prev Stats) Stats {
	return Stats{
		Workers:    s.Workers,
		Tasks:      s.Tasks - prev.Tasks,
		Steals:     s.Steals - prev.Steals,
		StealFails: s.StealFails - prev.StealFails,
		Busy:       s.Busy - prev.Busy,
		Idle:       s.Idle - prev.Idle,
	}
}

// StealRate is steals per executed task — the load-imbalance signal the
// lecture reads off the runtime.
func (s Stats) StealRate() float64 {
	if s.Tasks == 0 {
		return 0
	}
	return float64(s.Steals) / float64(s.Tasks)
}

// Counters exports the snapshot as a metrics counter table.
func (s Stats) Counters() *metrics.CounterSet {
	cs := &metrics.CounterSet{}
	cs.Add("workers", float64(s.Workers))
	cs.Add("tasks", float64(s.Tasks))
	cs.Add("steals", float64(s.Steals))
	cs.Add("steal-fails", float64(s.StealFails))
	cs.Add("steal-rate", s.StealRate())
	cs.Add("busy-ms", float64(s.Busy)/float64(time.Millisecond))
	cs.Add("idle-ms", float64(s.Idle)/float64(time.Millisecond))
	return cs
}
