package sched

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// fib computes Fibonacci with genuine fork-join recursion — the
// canonical work-stealing smoke test.
func fib(c *Task, n int) int64 {
	if n < 2 {
		return int64(n)
	}
	if n < 10 {
		// serial cutoff
		a, b := int64(0), int64(1)
		for i := 2; i <= n; i++ {
			a, b = b, a+b
		}
		return b
	}
	var left int64
	h := c.Fork(func(c2 *Task) { left = fib(c2, n-1) })
	right := fib(c, n-2)
	c.Join(h)
	return left + right
}

func TestForkJoinFib(t *testing.T) {
	p := New(4)
	defer p.Close()
	var got int64
	if err := p.Do(func(c *Task) { got = fib(c, 25) }); err != nil {
		t.Fatal(err)
	}
	if got != 75025 {
		t.Fatalf("fib(25) = %d, want 75025", got)
	}
	st := p.Stats()
	if st.Tasks == 0 {
		t.Error("no tasks counted")
	}
	if st.Workers != 4 {
		t.Errorf("workers = %d", st.Workers)
	}
}

func TestParallelForSum(t *testing.T) {
	p := New(4)
	defer p.Close()
	const n = 100000
	xs := make([]int64, n)
	for i := range xs {
		xs[i] = int64(i)
	}
	for _, grain := range []int{0, 1, 7, 1024, n, 10 * n} {
		var sum atomic.Int64
		if err := p.ParallelFor(n, grain, func(lo, hi int) {
			var local int64
			for i := lo; i < hi; i++ {
				local += xs[i]
			}
			sum.Add(local)
		}); err != nil {
			t.Fatal(err)
		}
		if want := int64(n) * (n - 1) / 2; sum.Load() != want {
			t.Errorf("grain %d: sum = %d, want %d", grain, sum.Load(), want)
		}
	}
	if err := p.ParallelFor(0, 1, func(lo, hi int) { t.Error("body called for n=0") }); err != nil {
		t.Fatal(err)
	}
}

// TestParallelForCoverage asserts every index is visited exactly once.
func TestParallelForCoverage(t *testing.T) {
	p := New(3)
	defer p.Close()
	const n = 4097
	visits := make([]atomic.Int32, n)
	if err := p.ParallelFor(n, 64, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			visits[i].Add(1)
		}
	}); err != nil {
		t.Fatal(err)
	}
	for i := range visits {
		if v := visits[i].Load(); v != 1 {
			t.Fatalf("index %d visited %d times", i, v)
		}
	}
}

func TestGroupIrregularGraph(t *testing.T) {
	p := New(4)
	defer p.Close()
	// A diamond of forks where children fork grandchildren after Wait
	// has started — Group must account for late arrivals.
	var total atomic.Int64
	if err := p.Do(func(c *Task) {
		var g Group
		for i := 0; i < 8; i++ {
			g.Fork(c, func(c2 *Task) {
				total.Add(1)
				for j := 0; j < 4; j++ {
					g.Fork(c2, func(*Task) { total.Add(1) })
				}
			})
		}
		g.Wait(c)
	}); err != nil {
		t.Fatal(err)
	}
	if total.Load() != 8+8*4 {
		t.Fatalf("ran %d tasks, want %d", total.Load(), 8+8*4)
	}
}

func TestPanicPropagation(t *testing.T) {
	p := New(2)
	defer p.Close()
	check := func(name string, f func()) {
		defer func() {
			if r := recover(); r != "boom" {
				t.Errorf("%s: recovered %v, want boom", name, r)
			}
		}()
		f()
	}
	check("do", func() {
		p.Do(func(c *Task) { panic("boom") }) //nolint:errcheck
	})
	check("join", func() {
		p.Do(func(c *Task) { //nolint:errcheck
			h := c.Fork(func(*Task) { panic("boom") })
			c.Join(h)
		})
	})
	check("group", func() {
		p.Do(func(c *Task) { //nolint:errcheck
			var g Group
			g.Fork(c, func(*Task) { panic("boom") })
			g.Wait(c)
		})
	})
	// The pool must still work after all that.
	var ok atomic.Bool
	if err := p.Do(func(*Task) { ok.Store(true) }); err != nil {
		t.Fatal(err)
	}
	if !ok.Load() {
		t.Error("pool dead after panics")
	}
}

// TestCloseNoGoroutineLeak is the satellite leak check: after Close,
// the goroutine count returns to its pre-New baseline.
func TestCloseNoGoroutineLeak(t *testing.T) {
	settle := func() int {
		n := runtime.NumGoroutine()
		for i := 0; i < 100; i++ {
			time.Sleep(time.Millisecond)
			m := runtime.NumGoroutine()
			if m == n {
				return n
			}
			n = m
		}
		return n
	}
	base := settle()
	for round := 0; round < 3; round++ {
		p := New(8)
		var sum atomic.Int64
		if err := p.ParallelFor(10000, 16, func(lo, hi int) {
			sum.Add(int64(hi - lo))
		}); err != nil {
			t.Fatal(err)
		}
		p.Close()
	}
	after := settle()
	if after > base+1 {
		t.Fatalf("goroutines grew from %d to %d after Close", base, after)
	}
}

func TestBoundedWorkersDuringRun(t *testing.T) {
	base := runtime.NumGoroutine()
	p := New(4)
	defer p.Close()
	stop := make(chan struct{})
	peak := make(chan int, 1)
	go func() {
		max := 0
		for {
			select {
			case <-stop:
				peak <- max
				return
			default:
			}
			if n := runtime.NumGoroutine(); n > max {
				max = n
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()
	for i := 0; i < 5; i++ {
		if err := p.Do(func(c *Task) { fib(c, 24) }); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	// base + 4 workers + sampler + slack for runtime helpers.
	if max := <-peak; max > base+4+3 {
		t.Errorf("goroutines peaked at %d (baseline %d, 4 workers)", max, base)
	}
}

func TestDoAfterClose(t *testing.T) {
	p := New(1)
	p.Close()
	p.Close() // idempotent
	if err := p.Do(func(*Task) {}); err != ErrClosed {
		t.Fatalf("Do after Close = %v, want ErrClosed", err)
	}
}

// TestDoRacingClose is the lost-task regression: a Do that passed the
// closed check while Close was shutting down could enqueue a task no
// worker would ever pop, blocking forever. It must now either run the
// task (nil error) or return ErrClosed — never hang.
func TestDoRacingClose(t *testing.T) {
	for round := 0; round < 300; round++ {
		p := New(2)
		var ran atomic.Bool
		errc := make(chan error, 1)
		go func() {
			errc <- p.Do(func(*Task) { ran.Store(true) })
		}()
		runtime.Gosched()
		p.Close()
		select {
		case err := <-errc:
			if err == nil && !ran.Load() {
				t.Fatal("Do returned nil without running the task")
			}
			if err != nil && err != ErrClosed {
				t.Fatalf("unexpected error: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("Do hung against Close")
		}
	}
}

// TestJoinParksOnStolenTask: a joiner with no other work must park on
// the awaited task's completion (charged to idle time) instead of
// busy-spinning for the whole wait.
func TestJoinParksOnStolenTask(t *testing.T) {
	p := New(2)
	defer p.Close()
	before := p.Stats()
	if err := p.Do(func(c *Task) {
		started := make(chan struct{})
		h := c.Fork(func(*Task) {
			close(started)
			time.Sleep(50 * time.Millisecond)
		})
		// Wait until the other worker has stolen and started the child,
		// so the join below cannot run it inline.
		<-started
		c.Join(h)
	}); err != nil {
		t.Fatal(err)
	}
	delta := p.Stats().Sub(before)
	if delta.Idle < 20*time.Millisecond {
		t.Errorf("joiner idle = %v, want most of the 50ms wait parked", delta.Idle)
	}
}

func TestStealsHappen(t *testing.T) {
	p := New(4)
	defer p.Close()
	// Plenty of grain-1 tasks from one root: with 4 workers, the other
	// three can only get work by stealing (or draining inject).
	var n atomic.Int64
	for round := 0; round < 4; round++ {
		if err := p.ParallelFor(2048, 1, func(lo, hi int) {
			// Make tasks slow enough that thieves wake before the owner
			// finishes everything itself.
			for i := lo; i < hi; i++ {
				n.Add(1)
			}
			time.Sleep(10 * time.Microsecond)
		}); err != nil {
			t.Fatal(err)
		}
	}
	st := p.Stats()
	if st.Tasks == 0 {
		t.Fatal("no tasks recorded")
	}
	if st.Steals == 0 {
		t.Error("no steals recorded under a steal-heavy workload")
	}
	if st.Busy <= 0 {
		t.Error("busy time not recorded")
	}
}

func TestDefaultPool(t *testing.T) {
	p := Default()
	if p != Default() {
		t.Fatal("Default not a singleton")
	}
	if p.Workers() < 1 {
		t.Fatal("default pool has no workers")
	}
	var x atomic.Int64
	if err := p.Do(func(c *Task) { x.Store(7) }); err != nil {
		t.Fatal(err)
	}
	if x.Load() != 7 {
		t.Fatal("default pool did not run the task")
	}
}

func TestStatsSubAndCounters(t *testing.T) {
	p := New(2)
	defer p.Close()
	before := p.Stats()
	if err := p.ParallelFor(1000, 10, func(lo, hi int) {}); err != nil {
		t.Fatal(err)
	}
	delta := p.Stats().Sub(before)
	if delta.Tasks <= 0 {
		t.Fatalf("delta tasks = %d", delta.Tasks)
	}
	cs := delta.Counters()
	if v, ok := cs.Get("tasks"); !ok || v != float64(delta.Tasks) {
		t.Errorf("counter tasks = %v (%v)", v, ok)
	}
	if _, ok := cs.Get("steal-rate"); !ok {
		t.Error("steal-rate missing")
	}
	if delta.StealRate() < 0 {
		t.Error("negative steal rate")
	}
}
