package sched

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

// TestDoCtxFailFast: an already-done context is rejected before the
// task is ever submitted to the pool.
func TestDoCtxFailFast(t *testing.T) {
	p := New(2)
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := p.DoCtx(ctx, func(*Task) { ran = true })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("DoCtx on canceled ctx = %v, want wrapped context.Canceled", err)
	}
	if ran {
		t.Error("task ran despite pre-canceled context")
	}
}

// TestParallelForCtxStopsSeeding: cancellation partway through a
// ParallelForCtx stops new range splits from being seeded — the loop
// covers a strict prefix of the index space and reports the wrapped
// ctx error — while iterations already running finish normally.
func TestParallelForCtxStopsSeeding(t *testing.T) {
	p := New(1) // one worker: a deterministic cancel point
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	const n = 1024
	var visited atomic.Int64
	err := p.ParallelForCtx(ctx, n, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if visited.Add(1) == 5 {
				cancel()
			}
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ParallelForCtx = %v, want wrapped context.Canceled", err)
	}
	got := visited.Load()
	if got == 0 || got >= n {
		t.Errorf("visited %d of %d iterations, want a strict non-empty prefix", got, n)
	}
}

// TestParallelForCtxBackgroundUnchanged: with a live context the ctx
// variant visits every index exactly once, like ParallelFor.
func TestParallelForCtxBackgroundUnchanged(t *testing.T) {
	p := New(4)
	defer p.Close()
	const n = 4096
	marks := make([]atomic.Int32, n)
	if err := p.ParallelForCtx(context.Background(), n, 64, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			marks[i].Add(1)
		}
	}); err != nil {
		t.Fatal(err)
	}
	for i := range marks {
		if got := marks[i].Load(); got != 1 {
			t.Fatalf("index %d visited %d times", i, got)
		}
	}
}
