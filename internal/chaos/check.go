package chaos

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"
)

// The checker validates a recorded history against the consistency
// contract the cluster actually makes: a versioned register per key
// under strict quorums (W+R > Replicas), with failed operations
// indeterminate. Replicas order copies by per-key version vectors, not
// a global sequence, but the checker needs only one consequence of
// that scheme: the coordinator bumps each write's vector past every
// vector it has seen for the key, so a write that provably finished
// before another began carries a vector the later write DOMINATES —
// real-time-ordered writes are totally ordered by dominance, and a
// quorum read returns the winning version its quorum holds.
//
// The rules, per key, using only real-time operation windows [Start,
// End] and the run-unique write values:
//
//   - A successful read returning value v must match exactly one put of
//     v (values are unique). That put W is a legal source iff it could
//     have taken effect by the time the read returned — W.Start < R.End
//     — and it has not been superseded: no *successful* write W2 (put
//     or del) exists with W.End < W2.Start and W2.End < R.Start. Such a
//     W2 finished before the read began and began after the candidate
//     finished, so its version provably dominates the candidate's and
//     quorum intersection guarantees the read must have seen it.
//   - A successful read returning not-found has candidates {initial
//     state} ∪ {dels D with D.Start < R.End}; the same supersession
//     rule applies with puts as the invalidators.
//   - An operation that returned an error is indeterminate: it is a
//     valid candidate (it may have partially taken effect) but never an
//     invalidator (it cannot be proven to have happened).
//
// This is Porcupine-style single-key linearizability checking reduced
// to the versioned register: because values are unique and real-time-
// ordered writes are version-ordered, per-read validation against the
// write history is sound without state-space search. Writes whose
// windows OVERLAP may get causally concurrent (incomparable) vectors;
// the store resolves those with a deterministic tiebreak, and the
// checker is agnostic to which side wins — the supersession rule only
// fires on real-time order, where dominance is guaranteed, so either
// resolution of a genuine race is a legal observation. One deliberate
// weakening: reads are not chained to *other reads*, so a read that
// observes a partially applied (errored) write does not force later
// reads to observe it too. Read repair narrows that window — a quorum
// read asynchronously rewrites the replicas it caught lagging — but
// cannot close it; the contract under test — reads see every write
// that was *acknowledged* — is exactly what the rules above capture.

// AnomalyKind labels a consistency violation.
type AnomalyKind string

// The anomaly kinds the checker reports.
const (
	// AnomalyStale: the read's value (or not-found) was superseded by a
	// write that provably finished before the read began.
	AnomalyStale AnomalyKind = "stale-read"
	// AnomalyPhantom: the read returned a value no put ever wrote.
	AnomalyPhantom AnomalyKind = "phantom-read"
	// AnomalyFuture: the read returned a value whose put started only
	// after the read had already returned.
	AnomalyFuture AnomalyKind = "future-read"
)

// Anomaly is one consistency violation: the offending read, the
// candidate write it observed (nil for phantom reads), and the
// successful write that invalidates the observation (nil unless stale).
type Anomaly struct {
	Kind        AnomalyKind
	Key         string
	Read        Op
	Candidate   *Op
	Invalidator *Op
}

func (a Anomaly) String() string {
	s := fmt.Sprintf("%s key=%q read by worker %d -> (%q, found=%v) at +%s",
		a.Kind, a.Key, a.Read.Worker, a.Read.Value, a.Read.Found, a.Read.End.Sub(a.Read.Start))
	if a.Candidate != nil {
		s += fmt.Sprintf("; candidate %s %q", a.Candidate.Kind, a.Candidate.Value)
	}
	if a.Invalidator != nil {
		s += fmt.Sprintf("; superseded by %s %q finished %s before the read began",
			a.Invalidator.Kind, a.Invalidator.Value, a.Read.Start.Sub(a.Invalidator.End).Round(time.Microsecond))
	}
	return s
}

// ErrorBuckets classifies the errored operations of a history.
type ErrorBuckets struct {
	// Canceled: the operation's own context expired or was canceled
	// (deadline storms do this on purpose).
	Canceled int
	// Excused: the failure overlaps a scheduled disturbance — the fault
	// plan itself made the quorum unreachable.
	Excused int
	// Unexcused: the operation failed with no fault active anywhere
	// near it. Scenarios assert this stays zero: the cluster must not
	// fail requests while healthy.
	Unexcused int
}

func (b ErrorBuckets) Total() int { return b.Canceled + b.Excused + b.Unexcused }

// CheckResult is the checker's verdict on one history.
type CheckResult struct {
	Ops       int
	Anomalies []Anomaly
	Errors    ErrorBuckets
}

// Check validates a history. excuse, when non-nil, reports whether an
// errored operation's window overlaps scheduled fault activity (the
// harness derives it from the executed fault plan and the cluster's
// event stream); errored ops failing neither the context test nor
// excuse are counted Unexcused.
func Check(ops []Op, excuse func(Op) bool) CheckResult {
	return CheckWithStaleness(ops, excuse, 0)
}

// CheckWithStaleness validates a history under a bounded-staleness
// allowance: a read may legally observe any value that was current
// within `staleness` before the read began. staleness=0 is the strict
// LWW contract (Check). The hot-key lease cache runs under this
// checker with staleness = the configured lease — the cache's whole
// guarantee is that a cached read is never staler than its lease, so a
// supersessor only invalidates an observation when it finished more
// than one lease before the read started.
func CheckWithStaleness(ops []Op, excuse func(Op) bool, staleness time.Duration) CheckResult {
	res := CheckResult{Ops: len(ops)}
	byKey := map[string][]int{}
	for i, op := range ops {
		if op.Err != nil {
			switch {
			case errors.Is(op.Err, context.Canceled) || errors.Is(op.Err, context.DeadlineExceeded):
				res.Errors.Canceled++
			case excuse != nil && excuse(op):
				res.Errors.Excused++
			default:
				res.Errors.Unexcused++
			}
		}
		byKey[op.Key] = append(byKey[op.Key], i)
	}
	for key, idxs := range byKey {
		res.Anomalies = append(res.Anomalies, checkKey(key, ops, idxs, staleness)...)
	}
	return res
}

// checkKey applies the register rules to one key's operations (idxs
// index into ops, already sorted by Start). staleness pads every
// supersession test: an invalidating write only disqualifies a
// candidate when it finished more than `staleness` before the read
// began.
func checkKey(key string, ops []Op, idxs []int, staleness time.Duration) []Anomaly {
	var anomalies []Anomaly
	// successful writes (puts and dels) are the only invalidators.
	var succ []int
	for _, i := range idxs {
		if ops[i].Err == nil && (ops[i].Kind == OpPut || ops[i].Kind == OpDel) {
			succ = append(succ, i)
		}
	}
	// supersededBy returns a successful write that provably outranks the
	// candidate write window [candEnd] from the viewpoint of a read
	// starting at rStart — or nil.
	supersededBy := func(candEnd, rStart time.Time, candIdx int) *Op {
		for _, j := range succ {
			if j == candIdx {
				continue
			}
			w2 := ops[j]
			if candEnd.Before(w2.Start) && w2.End.Add(staleness).Before(rStart) {
				return &w2
			}
		}
		return nil
	}
	for _, i := range idxs {
		r := ops[i]
		if r.Kind != OpGet || r.Err != nil {
			continue
		}
		if r.Found {
			// match the unique put that produced this value.
			cand := -1
			for _, j := range idxs {
				if ops[j].Kind == OpPut && ops[j].Value == r.Value {
					cand = j
					break
				}
			}
			if cand < 0 {
				anomalies = append(anomalies, Anomaly{Kind: AnomalyPhantom, Key: key, Read: r})
				continue
			}
			w := ops[cand]
			if !w.Start.Before(r.End) {
				anomalies = append(anomalies, Anomaly{Kind: AnomalyFuture, Key: key, Read: r, Candidate: &w})
				continue
			}
			if inv := supersededBy(w.End, r.Start, cand); inv != nil {
				anomalies = append(anomalies, Anomaly{Kind: AnomalyStale, Key: key, Read: r, Candidate: &w, Invalidator: inv})
			}
			continue
		}
		// not-found: legal if the initial state or some del survives
		// supersession by a successful put.
		var newestPut *Op
		for _, j := range succ {
			if ops[j].Kind == OpPut && ops[j].End.Add(staleness).Before(r.Start) {
				if newestPut == nil || ops[j].End.After(newestPut.End) {
					w := ops[j]
					newestPut = &w
				}
			}
		}
		if newestPut == nil {
			continue // initial state: nothing was ever surely written before the read
		}
		legal := false
		for _, j := range idxs {
			d := ops[j]
			if d.Kind != OpDel || !d.Start.Before(r.End) {
				continue
			}
			if supersededByPut(d.End, r.Start, ops, succ, staleness) == nil {
				legal = true
				break
			}
		}
		if !legal {
			anomalies = append(anomalies, Anomaly{Kind: AnomalyStale, Key: key, Read: r, Invalidator: newestPut})
		}
	}
	return anomalies
}

// supersededByPut is the not-found variant of the supersession rule:
// only successful puts invalidate a delete observation.
func supersededByPut(candEnd, rStart time.Time, ops []Op, succ []int, staleness time.Duration) *Op {
	for _, j := range succ {
		w2 := ops[j]
		if w2.Kind != OpPut {
			continue
		}
		if candEnd.Before(w2.Start) && w2.End.Add(staleness).Before(rStart) {
			return &w2
		}
	}
	return nil
}

// Summary renders the verdict in one line.
func (r CheckResult) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d ops, %d anomalies, errors: %d canceled / %d excused / %d unexcused",
		r.Ops, len(r.Anomalies), r.Errors.Canceled, r.Errors.Excused, r.Errors.Unexcused)
	return b.String()
}
