package chaos

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// syn builds synthetic ops on an integer timeline (1 unit = 1ms from a
// fixed base) so the checker's rules can be pinned down exactly.
var base = time.Unix(1_700_000_000, 0)

func at(t int) time.Time { return base.Add(time.Duration(t) * time.Millisecond) }

func put(key, val string, start, end int) Op {
	return Op{Kind: OpPut, Key: key, Value: val, Start: at(start), End: at(end)}
}
func del(key string, start, end int) Op {
	return Op{Kind: OpDel, Key: key, Start: at(start), End: at(end)}
}
func get(key, val string, start, end int) Op {
	return Op{Kind: OpGet, Key: key, Value: val, Found: true, Start: at(start), End: at(end)}
}
func getMissing(key string, start, end int) Op {
	return Op{Kind: OpGet, Key: key, Start: at(start), End: at(end)}
}
func failed(op Op) Op {
	op.Err = errors.New("injected")
	return op
}

func anomalies(t *testing.T, ops ...Op) []Anomaly {
	t.Helper()
	return Check(ops, nil).Anomalies
}

func TestCheckCleanSequentialHistory(t *testing.T) {
	got := anomalies(t,
		put("k", "v1", 0, 1),
		get("k", "v1", 2, 3),
		put("k", "v2", 4, 5),
		get("k", "v2", 6, 7),
		del("k", 8, 9),
		getMissing("k", 10, 11),
		put("k", "v3", 12, 13),
		get("k", "v3", 14, 15),
	)
	if len(got) != 0 {
		t.Fatalf("clean history flagged: %v", got)
	}
}

func TestCheckStaleReadDetected(t *testing.T) {
	got := anomalies(t,
		put("k", "v1", 0, 1),
		put("k", "v2", 2, 3),
		get("k", "v1", 4, 5), // v2 finished before this read began
	)
	if len(got) != 1 || got[0].Kind != AnomalyStale {
		t.Fatalf("want one stale-read, got %v", got)
	}
	if got[0].Invalidator == nil || got[0].Invalidator.Value != "v2" {
		t.Fatalf("stale-read should name v2 as invalidator: %v", got[0])
	}
}

func TestCheckConcurrentWriteReadLegal(t *testing.T) {
	// v2's write overlaps the read: returning either value is legal.
	for _, val := range []string{"v1", "v2"} {
		got := anomalies(t,
			put("k", "v1", 0, 1),
			put("k", "v2", 2, 8),
			get("k", val, 3, 5),
		)
		if len(got) != 0 {
			t.Fatalf("concurrent read of %s flagged: %v", val, got)
		}
	}
}

func TestCheckPhantomAndFutureReads(t *testing.T) {
	got := anomalies(t,
		put("k", "v1", 0, 1),
		get("k", "never-written", 2, 3),
	)
	if len(got) != 1 || got[0].Kind != AnomalyPhantom {
		t.Fatalf("want phantom-read, got %v", got)
	}
	got = anomalies(t,
		get("k", "v1", 0, 1),
		put("k", "v1", 2, 3), // write starts after the read returned
	)
	if len(got) != 1 || got[0].Kind != AnomalyFuture {
		t.Fatalf("want future-read, got %v", got)
	}
}

func TestCheckStaleNotFound(t *testing.T) {
	// A put completed before the read began and no del can explain the
	// missing key: the acknowledged write was lost.
	got := anomalies(t,
		put("k", "v1", 0, 1),
		getMissing("k", 2, 3),
	)
	if len(got) != 1 || got[0].Kind != AnomalyStale {
		t.Fatalf("want stale-read for lost write, got %v", got)
	}
	// With an overlapping del the not-found is legal.
	got = anomalies(t,
		put("k", "v1", 0, 1),
		del("k", 2, 6),
		getMissing("k", 3, 5),
	)
	if len(got) != 0 {
		t.Fatalf("del-explained not-found flagged: %v", got)
	}
}

func TestCheckErroredOpsAreIndeterminate(t *testing.T) {
	// An errored put may have taken effect: reading its value is legal...
	got := anomalies(t,
		put("k", "v1", 0, 1),
		failed(put("k", "v2", 2, 3)),
		get("k", "v2", 4, 5),
	)
	if len(got) != 0 {
		t.Fatalf("read of indeterminate write flagged: %v", got)
	}
	// ...but it never invalidates: a later read of v1 is legal too.
	got = anomalies(t,
		put("k", "v1", 0, 1),
		failed(put("k", "v2", 2, 3)),
		get("k", "v1", 4, 5),
	)
	if len(got) != 0 {
		t.Fatalf("errored write used as invalidator: %v", got)
	}
	// An errored del can explain a not-found.
	got = anomalies(t,
		put("k", "v1", 0, 1),
		failed(del("k", 2, 3)),
		getMissing("k", 4, 5),
	)
	if len(got) != 0 {
		t.Fatalf("errored del not accepted as not-found candidate: %v", got)
	}
}

func TestCheckErrorBuckets(t *testing.T) {
	ctxErr := failed(get("k", "", 0, 1))
	ctxErr.Err = fmt.Errorf("cluster: get %q canceled: %w", "k", context.DeadlineExceeded)
	inFault := failed(put("k", "x", 10, 11))
	quiet := failed(put("k", "y", 30, 31))
	res := Check([]Op{ctxErr, inFault, quiet}, func(op Op) bool {
		return op.Start.Before(at(20)) // only the first two overlap "fault activity"
	})
	if res.Errors.Canceled != 1 || res.Errors.Excused != 1 || res.Errors.Unexcused != 1 {
		t.Fatalf("buckets = %+v, want 1/1/1", res.Errors)
	}
}
