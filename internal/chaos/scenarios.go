package chaos

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/sockets"
)

// Scenarios returns the named chaos scenarios — one per failure mode
// the cluster claims to survive. Each plan draws its victims and
// offsets from the seeded rng, so every seed is a different concrete
// schedule of the same shape. All of them must finish with zero
// anomalies and zero unexcused errors; the fault windows themselves are
// licensed to cause (excused) unavailability, never inconsistency.
func Scenarios() []Spec {
	ms := func(d int) time.Duration { return time.Duration(d) * time.Millisecond }
	pick := func(rng *rand.Rand, nodes []string) string { return nodes[rng.Intn(len(nodes))] }
	pick2 := func(rng *rand.Rand, nodes []string) (string, string) {
		a := rng.Intn(len(nodes))
		b := rng.Intn(len(nodes) - 1)
		if b >= a {
			b++
		}
		return nodes[a], nodes[b]
	}
	return []Spec{
		{
			// A node crashes and recovers, three times in a row: the
			// failure detector, hint parking, and replay cycle under
			// sustained churn.
			Name: "kill-restart-churn",
			Plan: func(rng *rand.Rand, nodes []string) []Fault {
				var plan []Fault
				at := ms(120 + rng.Intn(60))
				for cycle := 0; cycle < 3; cycle++ {
					n := pick(rng, nodes)
					down := ms(150 + rng.Intn(100))
					plan = append(plan,
						Fault{At: at, Kind: FaultKill, Node: n},
						Fault{At: at + down, Kind: FaultRestart, Node: n})
					at += down + ms(120+rng.Intn(80)) // fully recover before the next victim
				}
				return plan
			},
		},
		{
			// The victim dies again while its hint replay is still
			// crawling (its SETs are slowed through the replay window).
			// Transport-failed hints must stay parked on their holders
			// and land on the second recovery — consuming them on
			// failure would silently drop acknowledged sloppy-quorum
			// writes.
			Name: "kill-during-hint-replay",
			Plan: func(rng *rand.Rand, nodes []string) []Fault {
				n := pick(rng, nodes)
				kill := ms(130 + rng.Intn(40))
				restart := kill + ms(250+rng.Intn(60))
				return []Fault{
					{At: kill, Kind: FaultKill, Node: n},
					{At: restart - ms(20), For: ms(350), Kind: FaultSlow, Node: n, Verb: "SET", Delay: ms(25)},
					{At: restart, Kind: FaultRestart, Node: n},
					{At: restart + ms(40), Kind: FaultKill, Node: n}, // mid-replay
					{At: restart + ms(240), Kind: FaultRestart, Node: n},
				}
			},
		},
		{
			// One node crashes while a second is alive but presumed dead
			// (heartbeat blackout): keys replicated on both lose their
			// read quorum — those reads may fail (excused) but nothing
			// acknowledged may be lost once both recover. The blacked-out
			// node keeps its store, so no hint holder ever dies holding
			// the only copy.
			Name: "quorum-loss-and-recovery",
			Plan: func(rng *rand.Rand, nodes []string) []Fault {
				a, b := pick2(rng, nodes)
				kill := ms(140 + rng.Intn(40))
				return []Fault{
					{At: kill, Kind: FaultKill, Node: a},
					{At: kill + ms(30), For: ms(280 + rng.Intn(60)), Kind: FaultBlackout, Node: b},
					{At: kill + ms(400), Kind: FaultRestart, Node: a},
				}
			},
		},
		{
			// A replica turns slow on reads and writes while a deadline
			// storm tightens op budgets: quorum abort must shed the
			// laggard, canceled ops stay indeterminate, and nothing
			// canceled may masquerade as committed-then-lost.
			Name: "slow-replica-tight-deadline",
			Plan: func(rng *rand.Rand, nodes []string) []Fault {
				n := pick(rng, nodes)
				at := ms(150 + rng.Intn(50))
				return []Fault{
					{At: at, For: ms(600), Kind: FaultSlow, Node: n, Verb: "SET", Delay: ms(60)},
					{At: at, For: ms(600), Kind: FaultSlow, Node: n, Verb: "GET", Delay: ms(60)},
					{At: at + ms(200), For: ms(200), Kind: FaultDeadlineStorm, Delay: ms(30)},
				}
			},
		},
		{
			// Pure false death: the node answers every request except
			// PING. Traffic routes around it via hints; on the up
			// transition the replay must close the gap before the node
			// serves reads again.
			Name: "heartbeat-blackout",
			Plan: func(rng *rand.Rand, nodes []string) []Fault {
				n := pick(rng, nodes)
				return []Fault{
					{At: ms(180 + rng.Intn(60)), For: ms(280 + rng.Intn(80)), Kind: FaultBlackout, Node: n},
				}
			},
		},
		{
			// First-attempt connection drops on two nodes with
			// overlapping windows: the retry/backoff path absorbs every
			// drop, so the run should see no errors at all.
			Name: "conn-drop-storm",
			Plan: func(rng *rand.Rand, nodes []string) []Fault {
				a, b := pick2(rng, nodes)
				at := ms(130 + rng.Intn(50))
				return []Fault{
					{At: at, For: ms(350), Kind: FaultConnDrop, Node: a, DropEvery: 2},
					{At: at + ms(150), For: ms(350), Kind: FaultConnDrop, Node: b, DropEvery: 3},
				}
			},
		},
		{
			// Two waves of cluster-wide deadline pressure, the second
			// tight enough that most in-flight quorums cancel midway.
			// Every failure must surface as a wrapped context error.
			Name: "deadline-storm",
			Plan: func(rng *rand.Rand, nodes []string) []Fault {
				at := ms(150 + rng.Intn(60))
				return []Fault{
					{At: at, For: ms(200), Kind: FaultDeadlineStorm, Delay: ms(25)},
					{At: at + ms(350), For: ms(200), Kind: FaultDeadlineStorm, Delay: ms(6)},
				}
			},
		},
		{
			// Zipfian read traffic with the hot-key lease cache enabled
			// while nodes die and come back: cached reads must never trail
			// the newest acknowledged write by more than the lease. The
			// checker runs with the lease as its staleness allowance, so
			// any read staler than the bound — a cache entry surviving a
			// write it should have seen, a kill resurrecting a stale
			// version — is an anomaly.
			Name:        "hotkey-cache",
			HotKeyCache: true,
			ZipfTheta:   0.99,
			Keys:        16,
			Plan: func(rng *rand.Rand, nodes []string) []Fault {
				var plan []Fault
				at := ms(130 + rng.Intn(50))
				for cycle := 0; cycle < 2; cycle++ {
					n := pick(rng, nodes)
					down := ms(160 + rng.Intn(80))
					plan = append(plan,
						Fault{At: at, Kind: FaultKill, Node: n},
						Fault{At: at + down, Kind: FaultRestart, Node: n})
					at += down + ms(140+rng.Intn(60))
				}
				return plan
			},
		},
		{
			// Crash-stop faults against durable nodes: every Kill is a
			// kill -9 (no drain — the WAL's synced prefix is all that
			// survives) and every Restart recovers from snapshot + log
			// tail. Two staggered single-node crashes exercise recovery
			// racing live traffic and hint top-up; then ALL nodes die at
			// once and restart. The total outage is the part only a WAL
			// can pass — hints die with their holders, so every acked
			// write that comes back was replayed from disk.
			Name:    "crash-stop",
			Durable: true,
			Plan: func(rng *rand.Rand, nodes []string) []Fault {
				a, b := pick2(rng, nodes)
				var plan []Fault
				at := ms(130 + rng.Intn(50))
				for _, n := range []string{a, b} {
					down := ms(180 + rng.Intn(80))
					plan = append(plan,
						Fault{At: at, Kind: FaultKill, Node: n},
						Fault{At: at + down, Kind: FaultRestart, Node: n})
					at += down + ms(150+rng.Intn(60)) // let recovery + replay settle
				}
				// Total outage: no survivors, no hints, only the logs.
				at += ms(100)
				for _, n := range nodes {
					plan = append(plan, Fault{At: at, Kind: FaultKill, Node: n})
				}
				back := at + ms(150)
				for i, n := range nodes {
					plan = append(plan, Fault{At: back + ms(30*i), Kind: FaultRestart, Node: n})
				}
				return plan
			},
		},
		{
			// A node joins mid-run while an existing node drops first
			// attempts and another adds latency spikes: key migration
			// must push through the flaky network without losing or
			// duplicating anything the workload can observe.
			Name:  "partition-during-migration",
			Nodes: 5,
			Plan: func(rng *rand.Rand, nodes []string) []Fault {
				a, b := pick2(rng, nodes)
				join := ms(280 + rng.Intn(80))
				return []Fault{
					{At: join - ms(60), For: ms(400), Kind: FaultConnDrop, Node: a, DropEvery: 2},
					{At: join - ms(40), For: ms(400), Kind: FaultLatency, Node: b, Delay: ms(8)},
					{At: join, Kind: FaultJoin, Node: fmt.Sprintf("node%d", len(nodes))},
				}
			},
		},
		{
			// Partition by false death, healed by anti-entropy alone. Two
			// nodes are blacked out in overlapping windows, so the failure
			// detector routes writes around them — and with hints disabled
			// nothing is parked to replay on the up transition. Writes keep
			// landing on whatever quorums remain, so the blacked-out
			// replicas silently fall behind on different keys: a partition
			// with traffic on both sides of it. After the heal, Merkle sync
			// is the ONLY path back; the run drives it to quiescence and
			// fails unless every replica converges byte-identically with
			// zero lost acked writes (the sweep's quorum reads still check
			// the whole history).
			Name:                "heal-converge",
			DisableHints:        true,
			AntiEntropyInterval: ms(150),
			RequireConvergence:  true,
			Plan: func(rng *rand.Rand, nodes []string) []Fault {
				a, b := pick2(rng, nodes)
				at := ms(140 + rng.Intn(40))
				return []Fault{
					{At: at, For: ms(280 + rng.Intn(60)), Kind: FaultBlackout, Node: a},
					{At: at + ms(80), For: ms(280 + rng.Intn(60)), Kind: FaultBlackout, Node: b},
				}
			},
		},
		{
			// Silent disk corruption, detected in the background and
			// recovered by re-replication. One byte flips inside a sealed
			// WAL segment of a live node: the scrub must surface it
			// (RequireScrubEvent) while the node keeps serving from memory
			// — corruption of cold log bytes is not a correctness event
			// until something replays them. Then the node is killed and
			// restarted: recovery MUST refuse the corrupt log, the harness
			// wipes it (the dead-disk playbook), and the node comes back
			// empty — with hints disabled, anti-entropy streaming the
			// peers' WALs is what rebuilds it. The convergence gate plus
			// the checker's full-history sweep prove no acked write was
			// lost to either the corruption or the wipe.
			Name:                "scrub-corrupt",
			Durable:             true,
			Proto:               sockets.ProtoBinary,
			DisableHints:        true,
			AntiEntropyInterval: ms(150),
			RequireConvergence:  true,
			RequireScrubEvent:   true,
			WALSegmentBytes:     2048,
			WALScrubInterval:    ms(25),
			SyncStreamThreshold: 0.001, // tiny keyspace: make the wiped node's rebuild take the streaming path
			Plan: func(rng *rand.Rand, nodes []string) []Fault {
				n := pick(rng, nodes)
				at := ms(300 + rng.Intn(60)) // enough writes first to seal a segment on the victim
				return []Fault{
					{At: at, Kind: FaultCorrupt, Node: n},
					{At: at + ms(250), Kind: FaultKill, Node: n},
					{At: at + ms(320), Kind: FaultRestartCorrupt, Node: n},
				}
			},
		},
	}
}

// Scenario returns the named scenario.
func Scenario(name string) (Spec, bool) {
	for _, s := range Scenarios() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// ScenarioNames lists the scenario names in declaration order.
func ScenarioNames() []string {
	specs := Scenarios()
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	return names
}

// SelfTestSpec is the checker's own acceptance gate: a deliberately
// broken cluster (W=1, R=1 under 3 replicas — no quorum intersection)
// with one replica slowed on writes. Quorum abort cancels the laggard
// after the single ack, the replicas diverge, and single-answer reads
// serve stale values. A run of this spec MUST produce stale-read
// anomalies; a checker that passes it is blind.
func SelfTestSpec() Spec {
	return Spec{
		Name:               "unsafe-quorum-selftest",
		Nodes:              3,
		Replicas:           3,
		WriteQuorum:        1,
		ReadQuorum:         1,
		AllowUnsafeQuorums: true,
		Keys:               4,
		Workers:            4,
		Duration:           800 * time.Millisecond,
		Plan: func(rng *rand.Rand, nodes []string) []Fault {
			return []Fault{
				{At: 0, For: 2 * time.Second, Kind: FaultSlow, Node: nodes[rng.Intn(len(nodes))], Verb: "SET", Delay: 40 * time.Millisecond},
			}
		},
	}
}
