package chaos

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/sockets"
)

// Spec describes one chaos scenario: the cluster shape, the workload,
// and the fault plan. Zero fields take the defaults noted inline.
type Spec struct {
	Name string

	// Cluster shape (cluster.Config mirrors).
	Nodes              int // default 5
	Replicas           int // default 3
	WriteQuorum        int // default Replicas/2+1
	ReadQuorum         int // default Replicas/2+1
	AllowUnsafeQuorums bool

	HeartbeatInterval time.Duration // default 20ms
	HeartbeatTimeout  time.Duration // default 100ms
	PoolTimeout       time.Duration // default 250ms
	PoolAttempts      int           // default 2
	DrainTimeout      time.Duration // default 50ms

	// Proto selects the inter-node wire protocol (text or binary). The
	// fault surface is protocol-independent: PreHandle and PreAttempt
	// hooks see the text rendering of binary PDUs, so every scenario
	// runs unchanged on either transport.
	Proto sockets.Proto

	// Workload.
	Workers   int           // concurrent client workers (default 4)
	Keys      int           // key-space size (default 24)
	Duration  time.Duration // workload window (default 1.2s)
	OpTimeout time.Duration // per-op ctx deadline outside storms (default 1s)
	OpGapMin  time.Duration // pacing between ops (defaults 2ms..8ms)
	OpGapMax  time.Duration
	// ZipfTheta > 0 skews the workers' key picks zipfian (YCSB theta in
	// (0,1)); 0 keeps the uniform key distribution.
	ZipfTheta float64

	// HotKeyCache enables the cluster's client-side lease cache; the
	// history is then checked with CacheLease as the bounded-staleness
	// allowance instead of the strict LWW contract.
	HotKeyCache bool
	CacheLease  time.Duration // default 50ms when HotKeyCache is set

	// Durable gives every node a write-ahead log: Kill becomes kill -9
	// (Server.Crash — no drain, unsynced suffix discarded) and Restart
	// recovers the node's acked writes from its own log. This is what
	// lets a scenario kill ALL replicas of a key and still demand
	// nothing acked is lost — without it, hints on surviving nodes are
	// the only safety net, and a total outage has none.
	Durable bool
	// WALSegmentBytes shrinks durable nodes' log segments so sealed
	// segments — the corruption targets and scrub units — appear within
	// a chaos run's short window. 0 keeps the cluster default.
	WALSegmentBytes int64
	// WALScrubInterval > 0 runs each durable node's background segment
	// scrub at this period for the whole scenario.
	WALScrubInterval time.Duration
	// SyncStreamThreshold passes through to the cluster: the divergence
	// ratio at which anti-entropy re-replicates by WAL streaming instead
	// of key-by-key span repair. 0 keeps the cluster default (0.25).
	SyncStreamThreshold float64
	// RequireScrubEvent fails the run unless some node's scrub surfaced
	// an EventWALCorrupt — the proof that injected disk corruption was
	// detected in the background, not discovered at the next crash.
	RequireScrubEvent bool

	// DisableHints turns hinted handoff off: a write whose replica is
	// unreachable is simply not delivered there, and nothing is parked
	// to replay later — replicas silently diverge until read repair or
	// anti-entropy reconciles them. Heal-converge scenarios set this to
	// prove Merkle sync alone closes the gap.
	DisableHints bool
	// AntiEntropyInterval > 0 runs the cluster's background Merkle sync
	// loop at this period for the whole scenario, so repair races live
	// traffic and faults instead of only running in the epilogue.
	AntiEntropyInterval time.Duration
	// RequireConvergence adds a convergence gate after recovery: the
	// harness drives SyncNow until a full pass repairs nothing (every
	// live pair's Merkle trees match — replicas byte-identical) and
	// fails the run if repeated passes never quiet down.
	RequireConvergence bool

	// Plan builds the fault schedule from the seeded rng and the
	// initial node names. nil means a fault-free run.
	Plan func(rng *rand.Rand, nodes []string) []Fault
}

func (s Spec) withDefaults() Spec {
	if s.Nodes <= 0 {
		s.Nodes = 5
	}
	if s.Replicas <= 0 {
		s.Replicas = 3
	}
	if s.HeartbeatInterval <= 0 {
		s.HeartbeatInterval = 20 * time.Millisecond
	}
	if s.HeartbeatTimeout <= 0 {
		s.HeartbeatTimeout = 100 * time.Millisecond
	}
	if s.PoolTimeout <= 0 {
		s.PoolTimeout = 250 * time.Millisecond
	}
	if s.PoolAttempts <= 0 {
		s.PoolAttempts = 2
	}
	if s.DrainTimeout <= 0 {
		s.DrainTimeout = 50 * time.Millisecond
	}
	if s.Workers <= 0 {
		s.Workers = 4
	}
	if s.Keys <= 0 {
		s.Keys = 24
	}
	if s.Duration <= 0 {
		s.Duration = 1200 * time.Millisecond
	}
	if s.OpTimeout <= 0 {
		s.OpTimeout = time.Second
	}
	if s.OpGapMin <= 0 {
		s.OpGapMin = 2 * time.Millisecond
	}
	if s.OpGapMax < s.OpGapMin {
		s.OpGapMax = s.OpGapMin + 6*time.Millisecond
	}
	if s.HotKeyCache && s.CacheLease <= 0 {
		s.CacheLease = 50 * time.Millisecond
	}
	return s
}

// Report is the outcome of one harness run.
type Report struct {
	Scenario string
	Seed     int64
	Plan     []Fault
	Result   CheckResult
	Events   []cluster.Event
	// FaultErrors records fault applications the cluster rejected
	// (e.g. restarting a node that was not killed) — a scenario-design
	// bug, not a cluster bug.
	FaultErrors []string
	// Recovery is how long after the last fault cleared the cluster
	// took to serve a clean full-key sweep again.
	Recovery time.Duration
	// SyncRepairs counts replica copies the post-recovery anti-entropy
	// convergence gate rewrote (RequireConvergence scenarios only).
	SyncRepairs int
	// ConvergeFailure is set when the spec demanded convergence and
	// repeated sync passes never reached a quiet (zero-repair) round.
	ConvergeFailure string
	Wall            time.Duration
	Counters        *metrics.CounterSet
}

// Failed reports whether the run violated the contract: any anomaly,
// any unexcused error, a fault the scenario could not apply, or a
// demanded convergence that never settled.
func (r *Report) Failed() bool {
	return len(r.Result.Anomalies) > 0 || r.Result.Errors.Unexcused > 0 ||
		len(r.FaultErrors) > 0 || r.ConvergeFailure != ""
}

// String renders the report, including the replay line a failing run
// should be reproduced with.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos %s seed=%d: %s\n", r.Scenario, r.Seed, r.Result.Summary())
	fmt.Fprintf(&b, "recovery %s, wall %s, %d cluster events\n",
		r.Recovery.Round(time.Millisecond), r.Wall.Round(time.Millisecond), len(r.Events))
	for i, a := range r.Result.Anomalies {
		if i >= 10 {
			fmt.Fprintf(&b, "  ... %d more anomalies\n", len(r.Result.Anomalies)-10)
			break
		}
		fmt.Fprintf(&b, "  anomaly: %s\n", a)
	}
	for _, fe := range r.FaultErrors {
		fmt.Fprintf(&b, "  fault error: %s\n", fe)
	}
	if r.SyncRepairs > 0 {
		fmt.Fprintf(&b, "convergence: anti-entropy rewrote %d replica copies\n", r.SyncRepairs)
	}
	if r.ConvergeFailure != "" {
		fmt.Fprintf(&b, "  convergence failure: %s\n", r.ConvergeFailure)
	}
	if r.Failed() {
		fmt.Fprintf(&b, "replay: go test ./internal/chaos -run 'TestChaos_Scenarios/%s' -chaos.seed=%d\n", r.Scenario, r.Seed)
		fmt.Fprintf(&b, "        (or: clusterbench -chaos -scenario %s -seed %d)\n", r.Scenario, r.Seed)
	}
	return b.String()
}

// nodeFaults is the live fault state one node's hooks consult. Windows
// are absolute expiry times written by the executor and read on every
// request; an expired window is simply inert, so windowed faults need
// no tear-down step.
type nodeFaults struct {
	mu            sync.Mutex
	slowVerb      string
	slowDelay     time.Duration
	slowUntil     time.Time
	blackoutUntil time.Time
	dropEvery     int
	dropUntil     time.Time
	latencyDelay  time.Duration
	latencyUntil  time.Time
	dropSeen      int64
}

// harness is one run's shared state.
type harness struct {
	spec  Spec
	seed  int64
	start time.Time

	c    *cluster.Cluster
	hist History

	stateMu sync.Mutex
	states  map[string]*nodeFaults

	eventMu sync.Mutex
	events  []cluster.Event

	// deadline storms are global, not per node.
	stormUntil atomic.Int64 // unix nanos
	stormDelay atomic.Int64 // nanos

	// disturbed spans: while any of these covers an op's window the op's
	// failure is excused. Kill spans stay open until the matching
	// restart completes.
	distMu    sync.Mutex
	disturbed []span
	openKill  map[string]int // node -> index of its open span

	faultErrMu  sync.Mutex
	faultErrors []string
}

type span struct{ from, to time.Time }

func (h *harness) state(node string) *nodeFaults {
	h.stateMu.Lock()
	defer h.stateMu.Unlock()
	st := h.states[node]
	if st == nil {
		st = &nodeFaults{}
		h.states[node] = st
	}
	return st
}

func (h *harness) faultErr(f Fault, err error) {
	h.faultErrMu.Lock()
	h.faultErrors = append(h.faultErrors, fmt.Sprintf("%s: %v", f, err))
	h.faultErrMu.Unlock()
}

// disturb records a closed disturbance span.
func (h *harness) disturb(from, to time.Time) {
	h.distMu.Lock()
	h.disturbed = append(h.disturbed, span{from, to})
	h.distMu.Unlock()
}

// openDisturbance starts a kill span that closeDisturbance later seals.
func (h *harness) openDisturbance(node string, from time.Time) {
	h.distMu.Lock()
	h.disturbed = append(h.disturbed, span{from, time.Time{}})
	h.openKill[node] = len(h.disturbed) - 1
	h.distMu.Unlock()
}

func (h *harness) closeDisturbance(node string, to time.Time) {
	h.distMu.Lock()
	if i, ok := h.openKill[node]; ok {
		h.disturbed[i].to = to
		delete(h.openKill, node)
	}
	h.distMu.Unlock()
}

// excused reports whether op's window overlaps any disturbance span,
// padded by the recovery slack the failure detector and pools need.
func (h *harness) excused(op Op) bool {
	slack := h.spec.HeartbeatInterval + h.spec.HeartbeatTimeout + h.spec.PoolTimeout
	h.distMu.Lock()
	defer h.distMu.Unlock()
	for _, s := range h.disturbed {
		to := s.to
		if to.IsZero() { // still open: disturbance never ended
			to = op.End
		}
		if op.Start.Before(to.Add(slack)) && s.from.Add(-slack).Before(op.End) {
			return true
		}
	}
	return false
}

// Run executes one scenario under one seed and checks the history.
func Run(spec Spec, seed int64) (*Report, error) {
	spec = spec.withDefaults()
	h := &harness{
		spec:     spec,
		seed:     seed,
		states:   map[string]*nodeFaults{},
		openKill: map[string]int{},
	}

	cfg := cluster.Config{
		Nodes:               spec.Nodes,
		Replicas:            spec.Replicas,
		WriteQuorum:         spec.WriteQuorum,
		ReadQuorum:          spec.ReadQuorum,
		HeartbeatInterval:   spec.HeartbeatInterval,
		HeartbeatTimeout:    spec.HeartbeatTimeout,
		PoolTimeout:         spec.PoolTimeout,
		PoolAttempts:        spec.PoolAttempts,
		DrainTimeout:        spec.DrainTimeout,
		Proto:               spec.Proto,
		AllowUnsafeQuorums:  spec.AllowUnsafeQuorums,
		HotKeyCache:         spec.HotKeyCache,
		CacheLease:          spec.CacheLease,
		Durable:             spec.Durable, // WAL root is a cluster-owned temp dir, removed on Close
		WALSegmentBytes:     spec.WALSegmentBytes,
		WALScrubInterval:    spec.WALScrubInterval,
		SyncStreamThreshold: spec.SyncStreamThreshold,
		DisableHints:        spec.DisableHints,
		AntiEntropyInterval: spec.AntiEntropyInterval,
		// Chaos key spaces are tiny and the zipfian head is steep: a low
		// threshold gets the hot keys resident within the short workload
		// window, which is the point of the scenario.
		CacheHotThreshold: 2,
		ServerPreHandle:   h.serverPreHandle,
		PoolFailConn:      h.poolFailConn,
		PoolPreAttempt:    h.poolPreAttempt,
		EventTap: func(e cluster.Event) {
			h.eventMu.Lock()
			h.events = append(h.events, e)
			h.eventMu.Unlock()
		},
	}
	c, err := cluster.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("chaos: cluster start: %w", err)
	}
	defer c.Close()
	h.c = c

	plan := FaultPlan(spec, seed)
	h.start = time.Now()

	// Fault executor: every fault fires at its offset in its own
	// goroutine, so lifecycle faults can overlap in-flight recovery work
	// (that overlap is much of what the scenarios are probing).
	var faultWG sync.WaitGroup
	for _, f := range plan {
		faultWG.Add(1)
		go func(f Fault) {
			defer faultWG.Done()
			time.Sleep(time.Until(h.start.Add(f.At)))
			h.apply(f)
		}(f)
	}

	// Workload: spec.Workers client workers fanned out on a sched.Pool,
	// each executing its deterministic op stream until the window ends.
	pool := sched.New(spec.Workers)
	ctx, cancel := context.WithCancel(context.Background())
	runErr := pool.ParallelForCtx(ctx, spec.Workers, 1, func(lo, hi int) {
		for w := lo; w < hi; w++ {
			h.runWorker(ctx, w)
		}
	})
	cancel()
	pool.Close()
	faultWG.Wait()
	if runErr != nil {
		return nil, fmt.Errorf("chaos: workload fan-out: %w", runErr)
	}

	// Recovery: restart anything the plan left dead, then wait until a
	// full-key sweep succeeds.
	h.restartLeftovers()
	faultsDone := time.Now()
	if err := h.awaitRecovery(10 * time.Second); err != nil {
		return nil, err
	}
	recovery := time.Since(faultsDone)
	syncRepairs, convergeFailure := h.converge()
	h.verifySweep()

	// With the lease cache on, the contract is bounded staleness: a
	// cached read may trail the newest write by up to one lease, never
	// more. The checker enforces exactly that bound.
	var staleness time.Duration
	if spec.HotKeyCache {
		staleness = spec.CacheLease
	}
	res := CheckWithStaleness(h.hist.Ops(), h.excused, staleness)

	cs := c.Counters()
	cs.Add("chaos.ops", float64(res.Ops))
	cs.Add("chaos.anomalies", float64(len(res.Anomalies)))
	cs.Add("chaos.errors-canceled", float64(res.Errors.Canceled))
	cs.Add("chaos.errors-excused", float64(res.Errors.Excused))
	cs.Add("chaos.errors-unexcused", float64(res.Errors.Unexcused))
	cs.Add("chaos.sync-repairs", float64(syncRepairs))

	h.eventMu.Lock()
	events := append([]cluster.Event(nil), h.events...)
	h.eventMu.Unlock()
	if spec.RequireScrubEvent {
		seen := false
		for _, e := range events {
			if e.Type == cluster.EventWALCorrupt {
				seen = true
				break
			}
		}
		if !seen {
			h.faultErrMu.Lock()
			h.faultErrors = append(h.faultErrors, "required wal-corrupt scrub event never fired: injected corruption went undetected")
			h.faultErrMu.Unlock()
		}
	}
	return &Report{
		Scenario:        spec.Name,
		Seed:            seed,
		Plan:            plan,
		Result:          res,
		Events:          events,
		FaultErrors:     h.faultErrors,
		Recovery:        recovery,
		SyncRepairs:     syncRepairs,
		ConvergeFailure: convergeFailure,
		Wall:            time.Since(h.start),
		Counters:        cs,
	}, nil
}

// converge is the convergence gate RequireConvergence scenarios run
// between recovery and the verification sweep: repeated SyncNow passes
// until one repairs nothing. A quiet pass means every live pair's
// Merkle trees matched — all replicas hold byte-identical state — so
// the gate is the run's proof that anti-entropy alone (hints disabled)
// reconciled whatever the faults diverged. The pass cap turns an
// oscillating repair (two replicas endlessly overwriting each other —
// a tiebreak that is not a total order) into a failure, not a hang.
func (h *harness) converge() (int, string) {
	if !h.spec.RequireConvergence {
		return 0, ""
	}
	const maxPasses = 16
	total := 0
	for pass := 1; pass <= maxPasses; pass++ {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		n, err := h.c.SyncNow(ctx)
		cancel()
		if err != nil {
			return total, fmt.Sprintf("sync pass %d: %v", pass, err)
		}
		if n == 0 {
			return total, ""
		}
		total += n
	}
	return total, fmt.Sprintf("replicas still diverging after %d sync passes (%d copies rewritten)", maxPasses, total)
}

// apply executes one fault at its scheduled time.
func (h *harness) apply(f Fault) {
	now := time.Now()
	switch f.Kind {
	case FaultKill:
		h.openDisturbance(f.Node, now)
		if err := h.c.Kill(f.Node); err != nil {
			h.faultErr(f, err)
		}
	case FaultRestart:
		err := h.c.Restart(f.Node)
		h.closeDisturbance(f.Node, time.Now())
		if err != nil {
			h.faultErr(f, err)
		}
	case FaultJoin:
		err := h.c.Join(f.Node)
		h.disturb(now, time.Now())
		if err != nil {
			h.faultErr(f, err)
		}
	case FaultCorrupt:
		// Disk damage, not a lifecycle event: the node keeps serving from
		// memory, so nothing is disturbed — the scrub finding it is the
		// scenario's whole point.
		if err := h.corruptWAL(f.Node); err != nil {
			h.faultErr(f, err)
		}
	case FaultRestartCorrupt:
		// The node's log carries injected corruption: recovery MUST refuse
		// to serve rather than silently drop or mangle acked data.
		if err := h.c.Restart(f.Node); err == nil {
			h.closeDisturbance(f.Node, time.Now())
			h.faultErr(f, fmt.Errorf("restart on a corrupt log succeeded; recovery must refuse unverifiable data"))
			break
		}
		// Expected refusal. Operator playbook for a dead disk: wipe the
		// log, restart empty, let re-replication rebuild from the peers.
		if err := h.c.WipeWAL(f.Node); err != nil {
			h.faultErr(f, err)
		}
		err := h.c.Restart(f.Node)
		h.closeDisturbance(f.Node, time.Now())
		if err != nil {
			h.faultErr(f, err)
		}
	case FaultSlow:
		st := h.state(f.Node)
		st.mu.Lock()
		st.slowVerb, st.slowDelay, st.slowUntil = f.Verb, f.Delay, now.Add(f.For)
		st.mu.Unlock()
		h.disturb(now, now.Add(f.For))
	case FaultBlackout:
		st := h.state(f.Node)
		st.mu.Lock()
		st.blackoutUntil = now.Add(f.For)
		st.mu.Unlock()
		h.disturb(now, now.Add(f.For))
	case FaultConnDrop:
		st := h.state(f.Node)
		st.mu.Lock()
		st.dropEvery, st.dropUntil = f.DropEvery, now.Add(f.For)
		st.mu.Unlock()
		h.disturb(now, now.Add(f.For))
	case FaultLatency:
		st := h.state(f.Node)
		st.mu.Lock()
		st.latencyDelay, st.latencyUntil = f.Delay, now.Add(f.For)
		st.mu.Unlock()
		h.disturb(now, now.Add(f.For))
	case FaultDeadlineStorm:
		h.stormDelay.Store(int64(f.Delay))
		h.stormUntil.Store(now.Add(f.For).UnixNano())
		h.disturb(now, now.Add(f.For))
	default:
		h.faultErr(f, fmt.Errorf("unknown fault kind"))
	}
}

// corruptWAL flips one byte in the middle of the node's lowest-sequence
// sealed WAL segment. It waits (bounded) for a sealed segment to exist:
// the fault fires at a seed-chosen offset, and enough workload writes
// must land on the victim first to rotate its active segment at least
// once.
func (h *harness) corruptWAL(node string) error {
	dir, err := h.c.WALDir(node)
	if err != nil {
		return err
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		segs, err := filepath.Glob(filepath.Join(dir, "*.seg"))
		if err != nil {
			return err
		}
		sort.Strings(segs)
		// Segment names are zero-padded sequence numbers: everything
		// before the last (active) one is sealed.
		if len(segs) >= 2 {
			target := segs[0]
			data, err := os.ReadFile(target)
			if err != nil {
				return err
			}
			if len(data) > 0 {
				data[len(data)/2] ^= 0x40
				return os.WriteFile(target, data, 0o600)
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("no sealed WAL segment appeared in %s to corrupt", dir)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// serverPreHandle is the per-node server-side hook: heartbeat blackouts
// stall PING, slow windows stall matching verbs.
func (h *harness) serverPreHandle(name string) func(req string) {
	return func(req string) {
		st := h.state(name)
		st.mu.Lock()
		blackout := st.blackoutUntil
		verb, delay, slow := st.slowVerb, st.slowDelay, st.slowUntil
		st.mu.Unlock()
		now := time.Now()
		if strings.HasPrefix(req, "PING") && now.Before(blackout) {
			time.Sleep(time.Until(blackout))
			return
		}
		if verb != "" && now.Before(slow) && strings.HasPrefix(req, verb) {
			time.Sleep(delay)
		}
	}
}

// poolFailConn drops the first wire attempt of every dropEvery-th
// request to the node during a conn-drop window. Later attempts always
// pass: the drop exercises the retry path without ever forcing a write
// onto the hinted-handoff path (hints parked for a node that is up are
// only replayed on its next down/up transition, so dropping every
// attempt would open a staleness window the scenario does not intend).
func (h *harness) poolFailConn(name string) func(req, attempt int) bool {
	return func(req, attempt int) bool {
		if attempt != 1 {
			return false
		}
		st := h.state(name)
		st.mu.Lock()
		defer st.mu.Unlock()
		if st.dropEvery == 0 || !time.Now().Before(st.dropUntil) {
			return false
		}
		st.dropSeen++
		return st.dropSeen%int64(st.dropEvery) == 0
	}
}

// poolPreAttempt injects client-side latency spikes during a latency
// window; the sleep eats the attempt's deadline budget like real
// network delay.
func (h *harness) poolPreAttempt(name string) func(req string, attempt int) {
	return func(req string, attempt int) {
		st := h.state(name)
		st.mu.Lock()
		delay, until := st.latencyDelay, st.latencyUntil
		st.mu.Unlock()
		if time.Now().Before(until) {
			time.Sleep(delay)
		}
	}
}

// runWorker executes one worker's deterministic op stream until the
// workload window closes, recording every operation.
func (h *harness) runWorker(ctx context.Context, w int) {
	next := opStream(h.spec, h.seed, w)
	end := h.start.Add(h.spec.Duration)
	for {
		p := next()
		time.Sleep(p.Gap)
		if !time.Now().Before(end) || ctx.Err() != nil {
			return
		}
		deadline := h.spec.OpTimeout
		if time.Now().UnixNano() < h.stormUntil.Load() {
			deadline = time.Duration(h.stormDelay.Load())
		}
		opCtx, cancel := context.WithTimeout(ctx, deadline)
		op := Op{Worker: w, Kind: p.Kind, Key: p.Key, Value: p.Value, Start: time.Now()}
		switch p.Kind {
		case OpPut:
			op.Err = h.c.PutCtx(opCtx, p.Key, p.Value)
		case OpDel:
			op.Err = h.c.DelCtx(opCtx, p.Key)
		case OpGet:
			op.Value, op.Found, op.Err = h.c.GetCtx(opCtx, p.Key)
		}
		op.End = time.Now()
		cancel()
		h.hist.Record(op)
	}
}

// restartLeftovers restarts any node the plan killed and never brought
// back, using the event stream as ground truth.
func (h *harness) restartLeftovers() {
	h.eventMu.Lock()
	alive := map[string]bool{}
	for _, e := range h.events {
		switch e.Type {
		case cluster.EventKill:
			alive[e.Node] = false
		case cluster.EventRestart:
			alive[e.Node] = true
		}
	}
	h.eventMu.Unlock()
	for node, up := range alive {
		if up {
			continue
		}
		if err := h.c.Restart(node); err != nil {
			h.faultErr(Fault{Kind: FaultRestart, Node: node}, err)
		}
		h.closeDisturbance(node, time.Now())
	}
}

// awaitRecovery probes and sweeps until every key reads cleanly (these
// probing reads are not recorded; the recorded verification sweep runs
// after the cluster is stable).
func (h *harness) awaitRecovery(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		h.c.Probe()
		clean := true
		for i := 0; i < h.spec.Keys; i++ {
			if _, _, err := h.c.Get(fmt.Sprintf("k%02d", i)); err != nil {
				clean = false
				break
			}
		}
		if clean {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("chaos %s seed=%d: cluster did not recover within %s of the last fault",
				h.spec.Name, h.seed, timeout)
		}
		time.Sleep(h.spec.HeartbeatInterval)
	}
}

// verifySweep records one sequential read of every key after recovery;
// the checker validates these reads against the whole history, so a
// write the cluster acknowledged and then lost surfaces here as a
// stale-read anomaly even if no workload read caught it live.
func (h *harness) verifySweep() {
	for i := 0; i < h.spec.Keys; i++ {
		key := fmt.Sprintf("k%02d", i)
		ctx, cancel := context.WithTimeout(context.Background(), h.spec.OpTimeout)
		op := Op{Worker: -1, Kind: OpGet, Key: key, Start: time.Now()}
		op.Value, op.Found, op.Err = h.c.GetCtx(ctx, key)
		op.End = time.Now()
		cancel()
		h.hist.Record(op)
	}
}
