package chaos

import (
	"flag"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"repro/internal/dfs"
	"repro/internal/sockets"
	"repro/internal/testutil"
)

// -chaos.seed replays a specific schedule: a failing run prints the
// exact flag invocation to reproduce it.
var seedFlag = flag.Int64("chaos.seed", 1, "seed for the chaos scenario schedules")

// TestChaos_Scenarios runs every named scenario under the (replayable)
// seed. Faults are licensed to cause excused unavailability; any
// anomaly or unexcused error fails the test with the seed in the
// message.
func TestChaos_Scenarios(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos scenarios are multi-second integration runs")
	}
	for _, spec := range Scenarios() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			base := testutil.SettleGoroutines()
			rep, err := Run(spec, *seedFlag)
			if err != nil {
				t.Fatalf("seed=%d: %v", *seedFlag, err)
			}
			t.Logf("\n%s", rep)
			if rep.Failed() {
				t.Errorf("scenario %s failed under seed=%d — replay with -chaos.seed=%d\n%s",
					spec.Name, *seedFlag, *seedFlag, rep)
			}
			if rep.Result.Ops == 0 {
				t.Error("harness recorded no operations")
			}
			if after := testutil.SettleGoroutines(); after > base+2 {
				t.Errorf("goroutines grew %d -> %d after harness run", base, after)
			}
		})
	}
}

// TestChaos_CheckerSelfTest is the checker's acceptance gate: a cluster
// deliberately configured without quorum intersection (W=1, R=1,
// Replicas=3, one write-slowed replica) must produce stale-read
// anomalies, and the report must carry the seed that reproduces them.
// If the checker waves this cluster through, it cannot be trusted on
// the real scenarios.
func TestChaos_CheckerSelfTest(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos self-test is a multi-second integration run")
	}
	spec := SelfTestSpec()
	for attempt, seed := range []int64{*seedFlag, *seedFlag + 1, *seedFlag + 2} {
		rep, err := Run(spec, seed)
		if err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
		stale := 0
		for _, a := range rep.Result.Anomalies {
			if a.Kind == AnomalyStale {
				stale++
			}
		}
		if stale == 0 {
			t.Logf("attempt %d (seed=%d): no stale reads surfaced yet", attempt, seed)
			continue
		}
		t.Logf("checker caught %d stale reads under seed=%d", stale, seed)
		if !strings.Contains(rep.String(), "seed="+strconv.FormatInt(seed, 10)) {
			t.Errorf("report does not carry the reproducing seed:\n%s", rep)
		}
		if !strings.Contains(rep.String(), "-chaos.seed=") {
			t.Errorf("failing report lacks the replay command:\n%s", rep)
		}
		return
	}
	t.Fatalf("checker self-test: a W=1/R=1 cluster with a slow replica produced no stale-read anomalies across 3 seeds starting at %d — the checker is blind", *seedFlag)
}

// TestChaos_DeterministicSchedules: the whole derived schedule — fault
// plan and per-worker op streams — is a pure function of (spec, seed).
func TestChaos_DeterministicSchedules(t *testing.T) {
	for _, spec := range append(Scenarios(), SelfTestSpec()) {
		const seed = 42
		if a, b := FaultPlan(spec.withDefaults(), seed), FaultPlan(spec.withDefaults(), seed); !reflect.DeepEqual(a, b) {
			t.Errorf("%s: fault plan not deterministic:\n%v\n%v", spec.Name, a, b)
		}
		if a, b := ScheduleString(spec, seed), ScheduleString(spec, seed); a != b {
			t.Errorf("%s: schedule rendering not deterministic", spec.Name)
		}
		for w := 0; w < 3; w++ {
			if a, b := PreviewOps(spec, seed, w, 64), PreviewOps(spec, seed, w, 64); !reflect.DeepEqual(a, b) {
				t.Errorf("%s worker %d: op stream not deterministic", spec.Name, w)
			}
		}
		// A different seed must derive a different schedule (64 ops x 3
		// workers plus rng-drawn fault offsets cannot collide).
		if a, b := ScheduleString(spec, seed), ScheduleString(spec, seed+1); a == b {
			t.Errorf("%s: seeds %d and %d derived identical schedules", spec.Name, seed, seed+1)
		}
	}
}

// TestChaos_ScenarioRegistry: lookup and naming stay consistent.
func TestChaos_ScenarioRegistry(t *testing.T) {
	names := ScenarioNames()
	if len(names) != 12 {
		t.Fatalf("want 12 named scenarios, have %d: %v", len(names), names)
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Errorf("duplicate scenario name %q", n)
		}
		seen[n] = true
		if _, ok := Scenario(n); !ok {
			t.Errorf("Scenario(%q) not found", n)
		}
	}
	if _, ok := Scenario("no-such-scenario"); ok {
		t.Error("Scenario() found a scenario that does not exist")
	}
}

// TestChaos_DFSScenarioReuse: the seeded schedule machinery also drives
// the mp-based primary/backup store — same seed vocabulary, different
// fault-tolerance capstone.
func TestChaos_DFSScenarioReuse(t *testing.T) {
	const seed = 7
	sc := DFSScenario(seed, 40, 3)
	if len(sc) != 40 {
		t.Fatalf("scenario has %d ops, want 40", len(sc))
	}
	if !reflect.DeepEqual(sc, DFSScenario(seed, 40, 3)) {
		t.Fatal("DFSScenario not deterministic")
	}
	crashes := 0
	for _, op := range sc {
		if op == "crash" {
			crashes++
		}
	}
	if crashes > 2 {
		t.Fatalf("%d crashes exceed replicas-1", crashes)
	}
	res, err := dfs.Cluster{Replicas: 3}.Run(sc)
	if err != nil {
		t.Fatalf("dfs run of derived scenario: %v", err)
	}
	if res.Ops == 0 {
		t.Fatal("dfs scenario executed no ops")
	}
	// A failover registers when a later request detects the dead
	// primary, so a crash with no following traffic may go uncounted.
	if crashes > 0 && (res.Failovers == 0 || res.Failovers > crashes) {
		t.Errorf("failovers = %d, want 1..%d for the scripted crashes", res.Failovers, crashes)
	}
}

// TestChaos_BinaryTransport replays a lifecycle-heavy scenario with the
// inter-node pools speaking the binary protocol. The fault hooks see
// text renderings of binary PDUs, so the same schedule drives both
// transports; the linearizability contract must hold identically —
// this is the regression gate for retry dedupe under real churn, where
// a killed node's lost responses make the pool retry mutations.
func TestChaos_BinaryTransport(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos scenarios are multi-second integration runs")
	}
	var spec Spec
	for _, s := range Scenarios() {
		if s.Name == "kill-during-hint-replay" {
			spec = s
			break
		}
	}
	if spec.Name == "" {
		t.Fatal("scenario kill-during-hint-replay missing from registry")
	}
	spec.Proto = sockets.ProtoBinary
	base := testutil.SettleGoroutines()
	rep, err := Run(spec, *seedFlag)
	if err != nil {
		t.Fatalf("seed=%d: %v", *seedFlag, err)
	}
	t.Logf("\n%s", rep)
	if rep.Failed() {
		t.Errorf("binary-transport chaos failed under seed=%d\n%s", *seedFlag, rep)
	}
	if rep.Result.Ops == 0 {
		t.Error("harness recorded no operations")
	}
	if after := testutil.SettleGoroutines(); after > base+2 {
		t.Errorf("goroutines grew %d -> %d after harness run", base, after)
	}
}
