package chaos

import (
	"sort"
	"sync"
	"time"
)

// OpKind labels one client operation in a recorded history.
type OpKind string

// The operation kinds a chaos workload issues.
const (
	OpPut OpKind = "put"
	OpGet OpKind = "get"
	OpDel OpKind = "del"
)

// Op is one invocation-to-response interval observed by a client
// worker. Start is taken immediately before the cluster call and End
// immediately after, so [Start, End] brackets the operation's real-time
// window — the only ordering the checker relies on.
//
// For a put, Value is the value written (unique per run, so a read can
// be matched to exactly one write). For a get, Value and Found carry
// the response. For a del, Value is empty. A non-nil Err marks the
// outcome indeterminate: the operation may or may not have taken
// effect, and the checker treats it accordingly.
type Op struct {
	Worker int
	Kind   OpKind
	Key    string
	Value  string
	Found  bool
	Err    error
	Start  time.Time
	End    time.Time
}

// History is a concurrent-append log of operations. Workers record into
// it during the run; the checker consumes the sorted snapshot after.
type History struct {
	mu  sync.Mutex
	ops []Op
}

// Record appends one completed operation.
func (h *History) Record(op Op) {
	h.mu.Lock()
	h.ops = append(h.ops, op)
	h.mu.Unlock()
}

// Ops returns the history sorted by invocation time.
func (h *History) Ops() []Op {
	h.mu.Lock()
	out := make([]Op, len(h.ops))
	copy(out, h.ops)
	h.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// Len reports how many operations have been recorded so far.
func (h *History) Len() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.ops)
}
