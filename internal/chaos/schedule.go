// Package chaos is a seeded fault-injection harness and history-based
// consistency checker for the replicated KV cluster (internal/cluster).
//
// One int64 seed drives everything random in a run: which nodes die and
// when, how long fault windows last, and every operation each client
// worker issues (kind, key, value, pacing). The fault plan and the
// per-worker operation streams are pure functions of (Spec, seed), so a
// failing seed replays byte-for-byte — the same kills at the same
// offsets, the same workload prefix — while the checker re-validates
// whatever history the replay produces. Real TCP and real goroutine
// scheduling mean the *interleaving* still varies between runs; the
// checker is sound for any interleaving, so a seed that ever produced
// an anomaly is a seed worth keeping.
//
// The harness (harness.go) wires the plan into the cluster's fault
// hooks, runs the workload on a sched.Pool, waits out recovery, and
// hands the recorded history to the checker (check.go). The named
// scenarios (scenarios.go) cover the failure modes the cluster claims
// to survive.
package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"repro/internal/dfs"
	"repro/internal/workload"
)

// FaultKind labels one fault in a schedule.
type FaultKind string

// The fault kinds a schedule can contain.
const (
	// FaultKill crash-stops Node at At (cluster.Kill: connections cut,
	// store lost). A later FaultRestart brings it back empty; hinted
	// handoffs replay its missed writes.
	FaultKill FaultKind = "kill"
	// FaultRestart restarts a killed Node at At.
	FaultRestart FaultKind = "restart"
	// FaultSlow stalls Node's server-side handling of requests matching
	// Verb by Delay for the window [At, At+For] — a slow replica, not a
	// dead one (PING is unaffected unless Verb matches it).
	FaultSlow FaultKind = "slow"
	// FaultBlackout stalls Node's PING responses for [At, At+For]. The
	// failure detector declares the node down even though it is alive
	// and serving — the classic false-death that sloppy quorums must
	// route around and recover from without losing acknowledged writes.
	FaultBlackout FaultKind = "blackout"
	// FaultConnDrop kills the client-side connection on first attempts
	// to Node — every DropEvery-th request in [At, At+For] fails its
	// first wire attempt and takes the retry/backoff path.
	FaultConnDrop FaultKind = "conn-drop"
	// FaultLatency injects a client-side Delay before every wire attempt
	// to Node in [At, At+For]; the spike counts against the attempt's
	// deadline budget like real network delay.
	FaultLatency FaultKind = "latency"
	// FaultDeadlineStorm shrinks every worker's per-op context deadline
	// to Delay for [At, At+For], forcing mid-quorum cancellations.
	FaultDeadlineStorm FaultKind = "deadline-storm"
	// FaultJoin adds Node to the ring at At, migrating its key arcs
	// while the workload (and any overlapping faults) keep running.
	FaultJoin FaultKind = "join"
	// FaultCorrupt flips one byte inside a sealed WAL segment of the
	// (live, durable) Node at At — silent disk corruption. The node's
	// background scrub must detect it and surface an EventWALCorrupt;
	// the in-memory store is untouched, so the node keeps serving.
	FaultCorrupt FaultKind = "corrupt-wal"
	// FaultRestartCorrupt restarts a killed Node whose log was corrupted
	// by an earlier FaultCorrupt. The restart MUST fail — recovery
	// refusing to serve data it cannot verify is the contract — and the
	// harness then wipes the damaged log and restarts the node empty, so
	// re-replication rebuilds it from its peers. A restart that succeeds
	// on a corrupt log is recorded as a fault error and fails the run.
	FaultRestartCorrupt FaultKind = "restart-corrupt"
)

// Fault is one scheduled fault. At is the offset from harness start;
// For is the window length for windowed kinds (zero for point events
// like kill/restart/join).
type Fault struct {
	At        time.Duration
	For       time.Duration
	Kind      FaultKind
	Node      string
	Verb      string        // FaultSlow: request prefix to stall
	Delay     time.Duration // slow/latency stall; deadline-storm op deadline
	DropEvery int           // conn-drop: drop every n-th request's first attempt
}

func (f Fault) String() string {
	s := fmt.Sprintf("%6s +%-6s %-14s", f.At.Round(time.Millisecond), f.For.Round(time.Millisecond), f.Kind)
	if f.Node != "" {
		s += " " + f.Node
	}
	if f.Verb != "" {
		s += " verb=" + f.Verb
	}
	if f.Delay > 0 {
		s += fmt.Sprintf(" delay=%s", f.Delay)
	}
	if f.DropEvery > 0 {
		s += fmt.Sprintf(" every=%d", f.DropEvery)
	}
	return s
}

// FaultPlan expands spec's fault plan for a seed: a deterministic,
// At-sorted schedule. The same (spec, seed) always yields the same
// plan.
func FaultPlan(spec Spec, seed int64) []Fault {
	if spec.Plan == nil {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	nodes := make([]string, spec.Nodes)
	for i := range nodes {
		nodes[i] = fmt.Sprintf("node%d", i)
	}
	plan := spec.Plan(rng, nodes)
	sort.SliceStable(plan, func(i, j int) bool { return plan[i].At < plan[j].At })
	return plan
}

// OpPlan is one planned workload operation: what to issue and how long
// to pause before issuing it.
type OpPlan struct {
	Kind  OpKind
	Key   string
	Value string // puts only; unique across the run
	Gap   time.Duration
}

// opStream returns the deterministic operation generator for one
// worker. Successive calls yield the worker's planned ops; the harness
// executes the prefix that fits in the workload window. Values are
// "w<worker>-<n>" — unique across the run, which is what lets the
// checker match any read back to the one write that produced its value.
func opStream(spec Spec, seed int64, worker int) func() OpPlan {
	rng := rand.New(rand.NewSource(seed*1000003 + int64(worker)*7919 + 1))
	// ZipfTheta > 0 skews key picks: Sample is a pure function of the
	// worker's seeded uniform draws, so the stream stays a deterministic
	// function of (spec, seed, worker) — same property as uniform.
	var zipf *workload.Zipf
	if spec.ZipfTheta > 0 {
		if z, err := workload.NewZipf(spec.Keys, spec.ZipfTheta); err == nil {
			zipf = z
		}
	}
	n := 0
	return func() OpPlan {
		var keyIdx int
		if zipf != nil {
			keyIdx = zipf.Sample(rng.Float64())
		} else {
			keyIdx = rng.Intn(spec.Keys)
		}
		p := OpPlan{
			Key: fmt.Sprintf("k%02d", keyIdx),
			Gap: spec.OpGapMin + time.Duration(rng.Int63n(int64(spec.OpGapMax-spec.OpGapMin)+1)),
		}
		switch r := rng.Float64(); {
		case r < 0.45:
			p.Kind = OpPut
			p.Value = fmt.Sprintf("w%d-%d", worker, n)
		case r < 0.55:
			p.Kind = OpDel
		default:
			p.Kind = OpGet
		}
		n++
		return p
	}
}

// PreviewOps returns the first n planned operations of a worker's
// stream — the determinism tests' window into the workload.
func PreviewOps(spec Spec, seed int64, worker, n int) []OpPlan {
	spec = spec.withDefaults()
	next := opStream(spec, seed, worker)
	out := make([]OpPlan, n)
	for i := range out {
		out[i] = next()
	}
	return out
}

// ScheduleString renders the full derived schedule — fault plan plus a
// prefix of each worker's op stream — as text. Two runs of the same
// (spec, seed) must render byte-identically; the determinism test
// asserts exactly that.
func ScheduleString(spec Spec, seed int64) string {
	spec = spec.withDefaults()
	var b strings.Builder
	fmt.Fprintf(&b, "scenario %s seed %d\nfaults:\n", spec.Name, seed)
	for _, f := range FaultPlan(spec, seed) {
		fmt.Fprintf(&b, "  %s\n", f)
	}
	for w := 0; w < spec.Workers; w++ {
		fmt.Fprintf(&b, "worker %d:", w)
		for _, p := range PreviewOps(spec, seed, w, 12) {
			fmt.Fprintf(&b, " %s(%s)", p.Kind, p.Key)
		}
		b.WriteString(" ...\n")
	}
	return b.String()
}

// DFSScenario derives a deterministic scripted scenario for the
// message-passing primary/backup store (internal/dfs) from the same
// seed space the TCP harness uses — the two fault-tolerance capstones
// share one replay vocabulary. The script tracks a model map so every
// get carries the value the store must return, and it crashes the
// primary (at most replicas-1 times) at seed-chosen points.
func DFSScenario(seed int64, ops, replicas int) dfs.Scenario {
	rng := rand.New(rand.NewSource(seed ^ 0x5f3759df))
	model := map[string]string{}
	keys := []string{"alpha", "beta", "gamma", "delta"}
	crashes := replicas - 1
	if crashes > 2 {
		crashes = 2
	}
	var sc dfs.Scenario
	for i := 0; i < ops; i++ {
		k := keys[rng.Intn(len(keys))]
		switch r := rng.Float64(); {
		case crashes > 0 && r >= 0.93:
			crashes--
			sc = append(sc, "crash")
		case r < 0.5:
			v := fmt.Sprintf("v%d", i)
			model[k] = v
			sc = append(sc, fmt.Sprintf("put %s %s", k, v))
		case r < 0.8 && model[k] != "":
			sc = append(sc, fmt.Sprintf("get %s %s", k, model[k]))
		default:
			sc = append(sc, fmt.Sprintf("getmissing missing-%d", i))
		}
	}
	return sc
}
