// Package mapreduce implements the MapReduce programming model planned
// for the CS87 Hadoop lab: user map and reduce functions, hash
// partitioning into reduce buckets, optional combiners, a pool of
// concurrent workers, and worker-failure injection with task re-execution
// — the fault-tolerance mechanism that motivates the model.
package mapreduce

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"

	"repro/internal/sched"
)

// KV is one intermediate key/value pair.
type KV struct {
	Key   string
	Value string
}

// MapFunc consumes one input split and emits intermediate pairs.
type MapFunc func(split string, emit func(key, value string))

// ReduceFunc folds all values for one key into a single result.
type ReduceFunc func(key string, values []string) string

// Config parameterizes a job.
type Config struct {
	Workers  int // concurrent mappers/reducers
	Reducers int // number of reduce partitions
	// Combiner, when non-nil, pre-reduces each mapper's local output.
	Combiner ReduceFunc
	// FailTask, when non-nil, reports whether a task should fail on this
	// attempt — the fault-injection hook. Failed tasks are retried.
	FailTask func(phase string, task, attempt int) bool
	// MaxAttempts bounds retries per task (default 3).
	MaxAttempts int
}

// Stats reports a finished job.
type Stats struct {
	MapTasks     int
	ReduceTasks  int
	Retries      int
	Intermediate int // pairs after combining
}

// ErrTaskFailed is returned when a task exhausts its attempts.
var ErrTaskFailed = errors.New("mapreduce: task exceeded retry budget")

// Partition returns the reduce bucket for a key (deterministic FNV
// hash). Non-positive reducer counts clamp to one bucket instead of
// panicking on the modulo.
func Partition(key string, reducers int) int {
	if reducers < 1 {
		reducers = 1
	}
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(reducers))
}

// Run executes a job over the input splits and returns the final
// key->value results. It wraps RunCtx with context.Background().
func Run(cfg Config, inputs []string, mapf MapFunc, reducef ReduceFunc) (map[string]string, Stats, error) {
	return RunCtx(context.Background(), cfg, inputs, mapf, reducef)
}

// RunCtx is Run under a caller lifetime. Cancellation aborts the job
// mid-flight: the map and reduce fan-outs stop seeding tasks (in-flight
// tasks finish their current split), the retry ladder stops retrying,
// and the returned error wraps ctx.Err(). The Stats returned alongside
// a cancellation are the partial truth — tasks retried and intermediate
// pairs produced before the abort — so drivers can report how far the
// job got.
func RunCtx(ctx context.Context, cfg Config, inputs []string, mapf MapFunc, reducef ReduceFunc) (map[string]string, Stats, error) {
	if mapf == nil || reducef == nil {
		return nil, Stats{}, errors.New("mapreduce: map and reduce functions required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.Reducers <= 0 {
		cfg.Reducers = 4
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	st := Stats{MapTasks: len(inputs), ReduceTasks: cfg.Reducers}

	// --- map phase ---
	// buckets[r] collects pairs destined for reducer r.
	buckets := make([][]KV, cfg.Reducers)
	var bucketMu sync.Mutex
	var retries int
	var retryMu sync.Mutex

	runTask := func(phase string, id int, attemptable func() ([]KV, error)) ([]KV, error) {
		for attempt := 1; ; attempt++ {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("mapreduce: %s task %d abandoned: %w", phase, id, err)
			}
			if attempt > cfg.MaxAttempts {
				return nil, fmt.Errorf("%w: %s task %d", ErrTaskFailed, phase, id)
			}
			if cfg.FailTask != nil && cfg.FailTask(phase, id, attempt) {
				retryMu.Lock()
				retries++
				retryMu.Unlock()
				continue // the "worker died, reschedule" path
			}
			return attemptable()
		}
	}

	// Both phases fan out on a work-stealing pool of exactly
	// cfg.Workers workers — task concurrency is bounded by the pool
	// size instead of one goroutine per split racing a semaphore.
	pool := sched.New(cfg.Workers)
	defer pool.Close()

	// partialStats folds the counters accumulated so far into st, so
	// every return — canceled included — carries the partial truth.
	partialStats := func() {
		retryMu.Lock()
		st.Retries = retries
		retryMu.Unlock()
		bucketMu.Lock()
		st.Intermediate = 0
		for _, b := range buckets {
			st.Intermediate += len(b)
		}
		bucketMu.Unlock()
	}

	mapErrs := make([]error, len(inputs))
	if err := pool.ParallelForCtx(ctx, len(inputs), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			split := inputs[i]
			out, err := runTask("map", i, func() ([]KV, error) {
				var local []KV
				mapf(split, func(k, v string) { local = append(local, KV{k, v}) })
				if cfg.Combiner != nil {
					local = combine(local, cfg.Combiner)
				}
				return local, nil
			})
			if err != nil {
				mapErrs[i] = err
				continue
			}
			bucketMu.Lock()
			for _, kv := range out {
				r := Partition(kv.Key, cfg.Reducers)
				buckets[r] = append(buckets[r], kv)
			}
			bucketMu.Unlock()
		}
	}); err != nil {
		partialStats()
		return nil, st, err
	}
	partialStats()
	for _, err := range mapErrs {
		if err != nil {
			return nil, st, err
		}
	}

	// The barrier between phases is a natural abort point: nothing has
	// been reduced yet, so a cancellation here costs no wasted reducers.
	if err := ctx.Err(); err != nil {
		return nil, st, fmt.Errorf("mapreduce: job canceled between map and reduce: %w", err)
	}

	// --- reduce phase ---
	results := make(map[string]string)
	var resMu sync.Mutex
	redErrs := make([]error, cfg.Reducers)
	if err := pool.ParallelForCtx(ctx, cfg.Reducers, 1, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			out, err := runTask("reduce", r, func() ([]KV, error) {
				grouped := groupByKey(buckets[r])
				var local []KV
				for _, g := range grouped {
					local = append(local, KV{g.key, reducef(g.key, g.values)})
				}
				return local, nil
			})
			if err != nil {
				redErrs[r] = err
				continue
			}
			resMu.Lock()
			for _, kv := range out {
				results[kv.Key] = kv.Value
			}
			resMu.Unlock()
		}
	}); err != nil {
		partialStats()
		return nil, st, err
	}
	partialStats()
	for _, err := range redErrs {
		if err != nil {
			return nil, st, err
		}
	}
	return results, st, nil
}

type group struct {
	key    string
	values []string
}

// groupByKey sorts pairs by key and groups adjacent values — the shuffle
// sort.
func groupByKey(kvs []KV) []group {
	sorted := append([]KV(nil), kvs...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	var out []group
	for _, kv := range sorted {
		if len(out) > 0 && out[len(out)-1].key == kv.Key {
			out[len(out)-1].values = append(out[len(out)-1].values, kv.Value)
			continue
		}
		out = append(out, group{key: kv.Key, values: []string{kv.Value}})
	}
	return out
}

// combine applies a combiner to a mapper's local output.
func combine(kvs []KV, combiner ReduceFunc) []KV {
	var out []KV
	for _, g := range groupByKey(kvs) {
		out = append(out, KV{g.key, combiner(g.key, g.values)})
	}
	return out
}

// --- canonical jobs ---

// WordCountMap tokenizes on non-letter boundaries and emits (word, "1").
func WordCountMap(split string, emit func(k, v string)) {
	for _, w := range strings.FieldsFunc(strings.ToLower(split), func(r rune) bool {
		return !((r >= 'a' && r <= 'z') || (r >= '0' && r <= '9'))
	}) {
		emit(w, "1")
	}
}

// WordCountReduce sums the counts for one word.
func WordCountReduce(_ string, values []string) string {
	total := 0
	for _, v := range values {
		n := 0
		for _, c := range v {
			n = n*10 + int(c-'0')
		}
		total += n
	}
	return fmt.Sprintf("%d", total)
}

// InvertedIndexMap emits (word, splitID) pairs; splits are "id\tbody".
func InvertedIndexMap(split string, emit func(k, v string)) {
	parts := strings.SplitN(split, "\t", 2)
	if len(parts) != 2 {
		return
	}
	id, body := parts[0], parts[1]
	seen := map[string]bool{}
	WordCountMap(body, func(w, _ string) {
		if !seen[w] {
			seen[w] = true
			emit(w, id)
		}
	})
}

// InvertedIndexReduce joins the sorted document list for one word.
func InvertedIndexReduce(_ string, values []string) string {
	sorted := append([]string(nil), values...)
	sort.Strings(sorted)
	return strings.Join(sorted, ",")
}
