package mapreduce

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

// TestRunCtxCanceledBetweenMapAndReduce: a cancellation that lands as
// the map phase finishes must stop the job before any reduce task runs,
// return a wrapped context.Canceled, and still report the partial Stats
// — the intermediate pairs the map phase produced.
func TestRunCtxCanceledBetweenMapAndReduce(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	inputs := []string{"a a", "b b", "c c", "d d"}
	seen := 0
	mapf := func(split string, emit func(k, v string)) {
		WordCountMap(split, emit)
		seen++
		if seen == len(inputs) {
			cancel() // the last map task pulls the plug
		}
	}
	reduceRan := false
	reducef := func(k string, vs []string) string {
		reduceRan = true
		return WordCountReduce(k, vs)
	}

	// One worker makes the map order (and therefore the cancel point)
	// deterministic: every split maps before the cancel fires.
	res, st, err := RunCtx(ctx, Config{Workers: 1, Reducers: 4}, inputs, mapf, reducef)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunCtx = %v, want wrapped context.Canceled", err)
	}
	if res != nil {
		t.Errorf("canceled job returned results %v", res)
	}
	if reduceRan {
		t.Error("a reduce task ran after cancellation")
	}
	if st.Intermediate != 8 {
		t.Errorf("partial Stats.Intermediate = %d, want all 8 mapped pairs", st.Intermediate)
	}
	if st.MapTasks != len(inputs) || st.ReduceTasks != 4 {
		t.Errorf("partial Stats shape = %+v", st)
	}
}

// TestRunCtxCanceledMidMapReportsPartial: cancellation partway through
// the map fan-out abandons the unseeded splits but keeps the pairs the
// finished tasks produced in the partial Stats.
func TestRunCtxCanceledMidMapReportsPartial(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	const splits = 64
	inputs := make([]string, splits)
	for i := range inputs {
		inputs[i] = fmt.Sprintf("w%d w%d", i, i)
	}
	seen := 0
	mapf := func(split string, emit func(k, v string)) {
		WordCountMap(split, emit)
		seen++
		if seen == 3 {
			cancel()
		}
	}

	res, st, err := RunCtx(ctx, Config{Workers: 1, Reducers: 2}, inputs, mapf, WordCountReduce)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunCtx = %v, want wrapped context.Canceled", err)
	}
	if res != nil {
		t.Errorf("canceled job returned results %v", res)
	}
	if st.Intermediate == 0 || st.Intermediate >= splits {
		t.Errorf("partial Stats.Intermediate = %d, want 0 < n < %d (the finished prefix)", st.Intermediate, splits)
	}
}

// TestRunCtxBackgroundUnchanged: the ctx-less Run wrapper still runs
// whole jobs — the refactor must not change the happy path.
func TestRunCtxBackgroundUnchanged(t *testing.T) {
	res, st, err := Run(Config{Workers: 4, Reducers: 4}, []string{"a b a", "b a"}, WordCountMap, WordCountReduce)
	if err != nil {
		t.Fatal(err)
	}
	if res["a"] != "3" || res["b"] != "2" {
		t.Errorf("results = %v", res)
	}
	if st.Retries != 0 {
		t.Errorf("clean run retried %d times", st.Retries)
	}
}
