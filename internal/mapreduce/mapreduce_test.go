package mapreduce

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

var docs = []string{
	"the quick brown fox jumps over the lazy dog",
	"the dog barks and the fox runs",
	"lazy afternoons and quick decisions",
}

func TestWordCount(t *testing.T) {
	res, st, err := Run(Config{Workers: 3, Reducers: 4}, docs, WordCountMap, WordCountReduce)
	if err != nil {
		t.Fatal(err)
	}
	for word, want := range map[string]string{
		"the": "4", "dog": "2", "fox": "2", "lazy": "2", "quick": "2", "barks": "1",
	} {
		if res[word] != want {
			t.Errorf("count[%s] = %q, want %s", word, res[word], want)
		}
	}
	if st.MapTasks != 3 || st.ReduceTasks != 4 || st.Retries != 0 {
		t.Errorf("stats: %+v", st)
	}
}

func TestCombinerEquivalence(t *testing.T) {
	plain, _, err := Run(Config{Workers: 2, Reducers: 3}, docs, WordCountMap, WordCountReduce)
	if err != nil {
		t.Fatal(err)
	}
	combined, st, err := Run(Config{Workers: 2, Reducers: 3, Combiner: WordCountReduce},
		docs, WordCountMap, WordCountReduce)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != len(combined) {
		t.Fatalf("result sizes differ: %d vs %d", len(plain), len(combined))
	}
	for k, v := range plain {
		if combined[k] != v {
			t.Errorf("combiner changed %s: %s vs %s", k, v, combined[k])
		}
	}
	// The combiner must shrink intermediate traffic ("the" appears twice in
	// one doc).
	plainRun, _, _ := Run(Config{Workers: 2, Reducers: 3}, docs, WordCountMap, WordCountReduce)
	_ = plainRun
	if st.Intermediate <= 0 {
		t.Error("no intermediate accounting")
	}
	_, noComb, _ := Run(Config{Workers: 2, Reducers: 3}, docs, WordCountMap, WordCountReduce)
	if st.Intermediate >= noComb.Intermediate {
		t.Errorf("combiner intermediate %d should be < plain %d", st.Intermediate, noComb.Intermediate)
	}
}

func TestFailureInjectionRecovers(t *testing.T) {
	// Every map task fails on its first attempt; every reduce task fails
	// twice. The job must still produce correct results.
	cfg := Config{
		Workers: 2, Reducers: 3, MaxAttempts: 5,
		FailTask: func(phase string, task, attempt int) bool {
			if phase == "map" {
				return attempt == 1
			}
			return attempt <= 2
		},
	}
	res, st, err := Run(cfg, docs, WordCountMap, WordCountReduce)
	if err != nil {
		t.Fatal(err)
	}
	if res["the"] != "4" {
		t.Errorf("count after failures = %q", res["the"])
	}
	wantRetries := len(docs)*1 + 3*2
	if st.Retries != wantRetries {
		t.Errorf("retries = %d, want %d", st.Retries, wantRetries)
	}
}

func TestRetryBudgetExhausted(t *testing.T) {
	cfg := Config{
		Workers: 2, Reducers: 2, MaxAttempts: 2,
		FailTask: func(phase string, task, attempt int) bool {
			return phase == "map" && task == 0 // task 0 always fails
		},
	}
	_, _, err := Run(cfg, docs, WordCountMap, WordCountReduce)
	if !errors.Is(err, ErrTaskFailed) {
		t.Errorf("expected ErrTaskFailed, got %v", err)
	}
}

func TestInvertedIndex(t *testing.T) {
	inputs := []string{
		"d1\tparallel computing with threads",
		"d2\tdistributed computing with messages",
		"d3\tthreads and messages",
	}
	res, _, err := Run(Config{Workers: 3, Reducers: 2}, inputs, InvertedIndexMap, InvertedIndexReduce)
	if err != nil {
		t.Fatal(err)
	}
	if res["computing"] != "d1,d2" {
		t.Errorf("computing -> %q", res["computing"])
	}
	if res["threads"] != "d1,d3" {
		t.Errorf("threads -> %q", res["threads"])
	}
	if res["and"] != "d3" {
		t.Errorf("and -> %q", res["and"])
	}
}

func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	base, _, err := Run(Config{Workers: 1, Reducers: 1}, docs, WordCountMap, WordCountReduce)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4, 8} {
		for _, r := range []int{1, 3, 7} {
			res, _, err := Run(Config{Workers: w, Reducers: r}, docs, WordCountMap, WordCountReduce)
			if err != nil {
				t.Fatal(err)
			}
			if len(res) != len(base) {
				t.Fatalf("w=%d r=%d: %d keys vs %d", w, r, len(res), len(base))
			}
			for k, v := range base {
				if res[k] != v {
					t.Errorf("w=%d r=%d: %s = %q, want %q", w, r, k, res[k], v)
				}
			}
		}
	}
}

func TestPartitionStableAndInRange(t *testing.T) {
	f := func(key string, rRaw uint8) bool {
		r := int(rRaw%16) + 1
		p1 := Partition(key, r)
		p2 := Partition(key, r)
		return p1 == p2 && p1 >= 0 && p1 < r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWordCountMatchesNaive(t *testing.T) {
	f := func(words []string) bool {
		// Build a document from sanitized words.
		var clean []string
		for _, w := range words {
			w = strings.Map(func(r rune) rune {
				if (r >= 'a' && r <= 'z') || (r >= '0' && r <= '9') {
					return r
				}
				return -1
			}, strings.ToLower(w))
			if w != "" {
				clean = append(clean, w)
			}
		}
		if len(clean) == 0 {
			return true
		}
		doc := strings.Join(clean, " ")
		naive := map[string]int{}
		for _, w := range clean {
			naive[w]++
		}
		res, _, err := Run(Config{Workers: 3, Reducers: 3}, []string{doc}, WordCountMap, WordCountReduce)
		if err != nil {
			return false
		}
		if len(res) != len(naive) {
			return false
		}
		for w, n := range naive {
			if res[w] != fmt.Sprintf("%d", n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestValidation(t *testing.T) {
	if _, _, err := Run(Config{}, docs, nil, WordCountReduce); err == nil {
		t.Error("nil map func should error")
	}
	if _, _, err := Run(Config{}, docs, WordCountMap, nil); err == nil {
		t.Error("nil reduce func should error")
	}
	res, st, err := Run(Config{}, nil, WordCountMap, WordCountReduce)
	if err != nil || len(res) != 0 || st.MapTasks != 0 {
		t.Errorf("empty input: %v %v", res, err)
	}
}

func TestPartitionClampsReducers(t *testing.T) {
	// Non-positive reducer counts clamp to a single bucket instead of
	// panicking on the modulo by zero.
	for _, r := range []int{0, -1, -100} {
		if got := Partition("any-key", r); got != 0 {
			t.Errorf("Partition with %d reducers = %d, want 0", r, got)
		}
	}
	if got := Partition("key", 1); got != 0 {
		t.Errorf("Partition with 1 reducer = %d", got)
	}
	// Sanity: with several reducers the hash still spreads keys.
	seen := map[int]bool{}
	for i := 0; i < 100; i++ {
		b := Partition(fmt.Sprintf("key-%d", i), 8)
		if b < 0 || b >= 8 {
			t.Fatalf("bucket %d out of range", b)
		}
		seen[b] = true
	}
	if len(seen) < 2 {
		t.Error("FNV partitioning stopped spreading keys")
	}
}

// TestMapperConcurrencyBounded is the regression test for the
// scheduler migration: under load, concurrent mapper invocations (and
// live goroutines) must never exceed Config.Workers (+ O(1) runtime
// overhead) — the old spawn-per-split code held one goroutine per
// split alive for the whole phase.
func TestMapperConcurrencyBounded(t *testing.T) {
	const workers = 3
	const splits = 64
	inputs := make([]string, splits)
	for i := range inputs {
		inputs[i] = "alpha beta gamma delta epsilon zeta"
	}
	baseGoroutines := runtime.NumGoroutine()
	var live, peak, peakGoroutines atomic.Int64
	mapf := func(split string, emit func(k, v string)) {
		now := live.Add(1)
		for {
			p := peak.Load()
			if now <= p || peak.CompareAndSwap(p, now) {
				break
			}
		}
		if g := int64(runtime.NumGoroutine()); g > peakGoroutines.Load() {
			peakGoroutines.Store(g)
		}
		time.Sleep(time.Millisecond) // hold the slot so overlap is visible
		WordCountMap(split, emit)
		live.Add(-1)
	}
	res, st, err := Run(Config{Workers: workers, Reducers: 4}, inputs, mapf, WordCountReduce)
	if err != nil {
		t.Fatal(err)
	}
	if st.MapTasks != splits || res["alpha"] != fmt.Sprintf("%d", splits) {
		t.Fatalf("job wrong: %+v res=%v", st, res["alpha"])
	}
	if p := peak.Load(); p > workers {
		t.Errorf("mapper concurrency peaked at %d, bound %d", p, workers)
	}
	if p := peak.Load(); p < 2 {
		t.Errorf("mapper concurrency peaked at %d — load never overlapped, test is vacuous", p)
	}
	// workers pool goroutines + the caller + slack for runtime helpers.
	if g := peakGoroutines.Load(); g > int64(baseGoroutines+workers+3) {
		t.Errorf("live goroutines peaked at %d (baseline %d, workers %d)",
			g, baseGoroutines, workers)
	}
}
