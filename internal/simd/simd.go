// Package simd implements the SIMT execution model behind the CS40 CUDA
// unit: kernels launched over a grid of thread blocks, warps of lockstep
// lanes, per-block shared memory with barrier synchronization, and the
// two cost mechanisms the course's GPU lectures drill — memory coalescing
// (a warp's simultaneous global accesses merge into segment transactions)
// and branch divergence (a warp whose lanes disagree executes both paths).
//
// The simulator substitutes for physical CUDA hardware per DESIGN.md: the
// CS40 exercises (parallel reductions on large arrays, data layout,
// shared vs global memory) are about the SIMT *model*, which is
// implemented here with exact transaction and divergence accounting.
package simd

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/pthread"
)

// WarpSize is the number of lanes per warp.
const WarpSize = 32

// SegmentBytes is the size of one coalesced memory transaction.
const SegmentBytes = 128

// elemBytes is the size of one global-memory element (float64).
const elemBytes = 8

// Config parameterizes a launch.
type Config struct {
	GridDim   int // blocks
	BlockDim  int // threads per block
	SharedLen int // shared-memory floats per block
}

// Stats aggregates the cost accounting of one launch.
type Stats struct {
	Threads            int
	GlobalAccesses     int64 // individual lane loads+stores
	GlobalTransactions int64 // coalesced segment transactions
	Branches           int64 // warp-level branch decisions
	DivergentBranches  int64 // warps whose lanes disagreed
	Barriers           int64 // __syncthreads() calls (per block)
}

// CoalescingEfficiency returns accesses per transaction, normalized so
// 1.0 is perfect (a full warp served by the minimum segments).
func (s Stats) CoalescingEfficiency() float64 {
	if s.GlobalTransactions == 0 {
		return 1
	}
	ideal := float64(s.GlobalAccesses) / (SegmentBytes / elemBytes)
	if ideal < 1 {
		ideal = 1
	}
	return ideal / float64(s.GlobalTransactions)
}

// DivergenceRate returns the fraction of warp branches that diverged.
func (s Stats) DivergenceRate() float64 {
	if s.Branches == 0 {
		return 0
	}
	return float64(s.DivergentBranches) / float64(s.Branches)
}

// Device owns global memory and collects stats.
type Device struct {
	Global []float64

	mu       sync.Mutex
	accesses map[accessKey][]int // (warp, seq) -> element indices
	branches map[accessKey][]bool
	stats    Stats
}

type accessKey struct {
	block, warp, seq int
}

// NewDevice creates a device with n floats of global memory.
func NewDevice(n int) *Device {
	return &Device{
		Global:   make([]float64, n),
		accesses: make(map[accessKey][]int),
		branches: make(map[accessKey][]bool),
	}
}

// Ctx is one thread's view during kernel execution.
type Ctx struct {
	dev       *Device
	BlockIdx  int
	ThreadIdx int
	BlockDim  int
	GridDim   int
	Shared    []float64 // the block's shared memory
	barrier   *pthread.Barrier

	globalSeq int
	branchSeq int
}

// GlobalID returns blockIdx*blockDim + threadIdx.
func (c *Ctx) GlobalID() int { return c.BlockIdx*c.BlockDim + c.ThreadIdx }

func (c *Ctx) warp() int { return c.ThreadIdx / WarpSize }

// LoadGlobal reads global memory, recording the access for coalescing
// analysis.
func (c *Ctx) LoadGlobal(i int) float64 {
	c.record(i)
	return c.dev.Global[i]
}

// StoreGlobal writes global memory, recording the access.
func (c *Ctx) StoreGlobal(i int, v float64) {
	c.record(i)
	c.dev.Global[i] = v
}

func (c *Ctx) record(i int) {
	key := accessKey{block: c.BlockIdx, warp: c.warp(), seq: c.globalSeq}
	c.globalSeq++
	c.dev.mu.Lock()
	c.dev.accesses[key] = append(c.dev.accesses[key], i)
	c.dev.stats.GlobalAccesses++
	c.dev.mu.Unlock()
}

// Branch records a data-dependent branch decision; warps whose lanes
// disagree on the same (per-thread sequence numbered) branch count as
// divergent. It returns cond unchanged so it wraps naturally:
//
//	if ctx.Branch(tid%2 == 0) { ... }
func (c *Ctx) Branch(cond bool) bool {
	key := accessKey{block: c.BlockIdx, warp: c.warp(), seq: c.branchSeq}
	c.branchSeq++
	c.dev.mu.Lock()
	c.dev.branches[key] = append(c.dev.branches[key], cond)
	c.dev.mu.Unlock()
	return cond
}

// SyncThreads is the block-wide barrier (__syncthreads). Every thread of
// the block must call it the same number of times.
func (c *Ctx) SyncThreads() {
	c.dev.mu.Lock()
	c.dev.stats.Barriers++
	c.dev.mu.Unlock()
	c.barrier.Wait()
}

// Launch runs the kernel over the configured grid. Blocks execute one
// after another (a 1-SM device); threads within a block run concurrently
// and may synchronize with SyncThreads.
func (d *Device) Launch(cfg Config, kernel func(c *Ctx)) (Stats, error) {
	if cfg.GridDim <= 0 || cfg.BlockDim <= 0 {
		return Stats{}, errors.New("simd: grid and block dims must be positive")
	}
	if cfg.SharedLen < 0 {
		return Stats{}, errors.New("simd: negative shared memory")
	}
	d.stats = Stats{Threads: cfg.GridDim * cfg.BlockDim}
	d.accesses = make(map[accessKey][]int)
	d.branches = make(map[accessKey][]bool)

	for b := 0; b < cfg.GridDim; b++ {
		shared := make([]float64, cfg.SharedLen)
		bar, err := pthread.NewBarrier(cfg.BlockDim)
		if err != nil {
			return Stats{}, err
		}
		var panicErr error
		var mu sync.Mutex
		ths := pthread.Spawn(cfg.BlockDim, func(_ pthread.ID, t int) {
			ctx := &Ctx{
				dev: d, BlockIdx: b, ThreadIdx: t,
				BlockDim: cfg.BlockDim, GridDim: cfg.GridDim,
				Shared: shared, barrier: bar,
			}
			kernel(ctx)
		})
		if err := pthread.JoinAll(ths); err != nil {
			mu.Lock()
			panicErr = err
			mu.Unlock()
		}
		if panicErr != nil {
			return Stats{}, fmt.Errorf("simd: kernel failed in block %d: %w", b, panicErr)
		}
	}
	d.reduceStats()
	return d.stats, nil
}

// reduceStats folds the recorded access groups into transaction and
// divergence counts.
func (d *Device) reduceStats() {
	elemsPerSeg := SegmentBytes / elemBytes
	for _, idxs := range d.accesses {
		segs := map[int]bool{}
		for _, i := range idxs {
			segs[i/elemsPerSeg] = true
		}
		d.stats.GlobalTransactions += int64(len(segs))
	}
	for _, conds := range d.branches {
		d.stats.Branches++
		anyTrue, anyFalse := false, false
		for _, c := range conds {
			if c {
				anyTrue = true
			} else {
				anyFalse = true
			}
		}
		if anyTrue && anyFalse {
			d.stats.DivergentBranches++
		}
	}
}
