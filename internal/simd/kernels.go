package simd

import "errors"

// This file implements the CS40 lab kernels: vector addition (the
// coalescing hello-world, in coalesced and strided variants) and the
// parallel reduction whose addressing-scheme progression (interleaved ->
// sequential) is the classic NVIDIA optimization exercise the course
// assigns on "parallel reductions on large arrays".

// VecAdd computes c = a + b on the device: global memory is laid out as
// [a | b | c], each of length n. Returns the launch stats.
func VecAdd(a, b []float64, blockDim int) ([]float64, Stats, error) {
	if len(a) != len(b) {
		return nil, Stats{}, errors.New("simd: length mismatch")
	}
	n := len(a)
	if n == 0 {
		return nil, Stats{}, nil
	}
	if blockDim <= 0 {
		blockDim = 128
	}
	dev := NewDevice(3 * n)
	copy(dev.Global[:n], a)
	copy(dev.Global[n:2*n], b)
	grid := (n + blockDim - 1) / blockDim
	st, err := dev.Launch(Config{GridDim: grid, BlockDim: blockDim}, func(c *Ctx) {
		i := c.GlobalID()
		if c.Branch(i < n) {
			x := c.LoadGlobal(i)
			y := c.LoadGlobal(n + i)
			c.StoreGlobal(2*n+i, x+y)
		}
	})
	if err != nil {
		return nil, st, err
	}
	out := make([]float64, n)
	copy(out, dev.Global[2*n:])
	return out, st, nil
}

// VecAddStrided is the cache-hostile variant: thread t touches element
// t*stride mod n, destroying coalescing — the ablation partner of VecAdd.
func VecAddStrided(a, b []float64, blockDim, stride int) ([]float64, Stats, error) {
	if len(a) != len(b) {
		return nil, Stats{}, errors.New("simd: length mismatch")
	}
	n := len(a)
	if n == 0 {
		return nil, Stats{}, nil
	}
	if blockDim <= 0 {
		blockDim = 128
	}
	if stride <= 0 {
		stride = 17
	}
	dev := NewDevice(3 * n)
	copy(dev.Global[:n], a)
	copy(dev.Global[n:2*n], b)
	grid := (n + blockDim - 1) / blockDim
	st, err := dev.Launch(Config{GridDim: grid, BlockDim: blockDim}, func(c *Ctx) {
		t := c.GlobalID()
		if c.Branch(t < n) {
			i := (t * stride) % n
			x := c.LoadGlobal(i)
			y := c.LoadGlobal(n + i)
			c.StoreGlobal(2*n+i, x+y)
		}
	})
	if err != nil {
		return nil, st, err
	}
	out := make([]float64, n)
	copy(out, dev.Global[2*n:])
	return out, st, nil
}

// ReductionScheme selects the shared-memory reduction addressing pattern.
type ReductionScheme int

// The schemes, in the order the optimization deck presents them.
const (
	// Interleaved: stride doubles, active threads are those with
	// tid % (2*s) == 0 — maximal divergence within warps.
	Interleaved ReductionScheme = iota
	// Sequential: stride halves, active threads are tid < s — a
	// contiguous prefix, so whole warps retire together.
	Sequential
)

// String returns the human-readable name.
func (s ReductionScheme) String() string {
	if s == Interleaved {
		return "interleaved"
	}
	return "sequential"
}

// Reduce sums xs on the device using shared-memory tree reduction with
// the chosen scheme: each block reduces its tile into a partial sum; the
// host sums the partials (the standard two-phase pattern).
func Reduce(xs []float64, blockDim int, scheme ReductionScheme) (float64, Stats, error) {
	n := len(xs)
	if n == 0 {
		return 0, Stats{}, nil
	}
	if blockDim <= 0 || blockDim&(blockDim-1) != 0 {
		return 0, Stats{}, errors.New("simd: blockDim must be a positive power of two")
	}
	grid := (n + blockDim - 1) / blockDim
	// Layout: [input | per-block partials].
	dev := NewDevice(n + grid)
	copy(dev.Global[:n], xs)
	st, err := dev.Launch(Config{GridDim: grid, BlockDim: blockDim, SharedLen: blockDim}, func(c *Ctx) {
		tid := c.ThreadIdx
		i := c.GlobalID()
		if c.Branch(i < n) {
			c.Shared[tid] = c.LoadGlobal(i)
		} else {
			c.Shared[tid] = 0
		}
		c.SyncThreads()
		switch scheme {
		case Interleaved:
			for s := 1; s < c.BlockDim; s *= 2 {
				if c.Branch(tid%(2*s) == 0) {
					c.Shared[tid] += c.Shared[tid+s]
				}
				c.SyncThreads()
			}
		case Sequential:
			for s := c.BlockDim / 2; s > 0; s /= 2 {
				if c.Branch(tid < s) {
					c.Shared[tid] += c.Shared[tid+s]
				}
				c.SyncThreads()
			}
		}
		if tid == 0 {
			c.StoreGlobal(n+c.BlockIdx, c.Shared[0])
		}
	})
	if err != nil {
		return 0, st, err
	}
	var total float64
	for _, p := range dev.Global[n:] {
		total += p
	}
	return total, st, nil
}

// MatMulNaive computes C = A·B (n×n, row-major) with one thread per
// output element reading A's row and B's column straight from global
// memory — 2n global loads per element. Global layout: [A | B | C].
func MatMulNaive(a, b []float64, n, tile int) ([]float64, Stats, error) {
	return matMul(a, b, n, tile, false)
}

// MatMulTiled is the canonical CUDA optimization: the block stages T×T
// tiles of A and B in shared memory, cutting global loads per element
// from 2n to 2n/T — the "data layout / shared memory" exercise of CS40.
func MatMulTiled(a, b []float64, n, tile int) ([]float64, Stats, error) {
	return matMul(a, b, n, tile, true)
}

func matMul(a, b []float64, n, tile int, useShared bool) ([]float64, Stats, error) {
	if len(a) != n*n || len(b) != n*n {
		return nil, Stats{}, errors.New("simd: matrix size mismatch")
	}
	if tile <= 0 || n%tile != 0 {
		return nil, Stats{}, errors.New("simd: tile must divide n")
	}
	dev := NewDevice(3 * n * n)
	copy(dev.Global[:n*n], a)
	copy(dev.Global[n*n:2*n*n], b)
	blocksPerDim := n / tile
	grid := blocksPerDim * blocksPerDim
	blockDim := tile * tile
	sharedLen := 0
	if useShared {
		sharedLen = 2 * tile * tile
	}
	st, err := dev.Launch(Config{GridDim: grid, BlockDim: blockDim, SharedLen: sharedLen}, func(c *Ctx) {
		bx := c.BlockIdx % blocksPerDim
		by := c.BlockIdx / blocksPerDim
		tx := c.ThreadIdx % tile
		ty := c.ThreadIdx / tile
		row := by*tile + ty
		col := bx*tile + tx
		acc := 0.0
		if !useShared {
			for k := 0; k < n; k++ {
				acc += c.LoadGlobal(row*n+k) * c.LoadGlobal(n*n+k*n+col)
			}
		} else {
			aS := c.Shared[:tile*tile]
			bS := c.Shared[tile*tile:]
			for t := 0; t < blocksPerDim; t++ {
				aS[ty*tile+tx] = c.LoadGlobal(row*n + t*tile + tx)
				bS[ty*tile+tx] = c.LoadGlobal(n*n + (t*tile+ty)*n + col)
				c.SyncThreads()
				for k := 0; k < tile; k++ {
					acc += aS[ty*tile+k] * bS[k*tile+tx]
				}
				c.SyncThreads()
			}
		}
		c.StoreGlobal(2*n*n+row*n+col, acc)
	})
	if err != nil {
		return nil, st, err
	}
	out := make([]float64, n*n)
	copy(out, dev.Global[2*n*n:])
	return out, st, nil
}
