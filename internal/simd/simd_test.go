package simd

import (
	"math"
	"testing"
	"testing/quick"
)

func seqFloats(n int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i%19) - 9
	}
	return xs
}

func TestVecAddCorrect(t *testing.T) {
	a, b := seqFloats(1000), seqFloats(1000)
	for i := range b {
		b[i] *= 2
	}
	got, st, err := VecAdd(a, b, 128)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != a[i]+b[i] {
			t.Fatalf("c[%d] = %f, want %f", i, got[i], a[i]+b[i])
		}
	}
	if st.Threads != 1024 { // 8 blocks of 128
		t.Errorf("threads = %d", st.Threads)
	}
	if st.GlobalAccesses != 3000 { // 2 loads + 1 store per active thread
		t.Errorf("accesses = %d", st.GlobalAccesses)
	}
}

func TestVecAddCoalescingNearPerfect(t *testing.T) {
	a, b := seqFloats(4096), seqFloats(4096)
	_, coal, err := VecAdd(a, b, 128)
	if err != nil {
		t.Fatal(err)
	}
	if eff := coal.CoalescingEfficiency(); eff < 0.9 {
		t.Errorf("coalesced efficiency = %.3f, want ~1", eff)
	}
	_, strided, err := VecAddStrided(a, b, 128, 17)
	if err != nil {
		t.Fatal(err)
	}
	if strided.GlobalTransactions <= 4*coal.GlobalTransactions {
		t.Errorf("strided transactions %d should dwarf coalesced %d",
			strided.GlobalTransactions, coal.GlobalTransactions)
	}
	if eff := strided.CoalescingEfficiency(); eff > 0.2 {
		t.Errorf("strided efficiency = %.3f, want small", eff)
	}
}

func TestLaunchValidation(t *testing.T) {
	dev := NewDevice(10)
	if _, err := dev.Launch(Config{GridDim: 0, BlockDim: 1}, func(*Ctx) {}); err == nil {
		t.Error("grid 0 should error")
	}
	if _, err := dev.Launch(Config{GridDim: 1, BlockDim: 0}, func(*Ctx) {}); err == nil {
		t.Error("block 0 should error")
	}
	if _, err := dev.Launch(Config{GridDim: 1, BlockDim: 1, SharedLen: -1}, func(*Ctx) {}); err == nil {
		t.Error("negative shared should error")
	}
}

func TestKernelPanicReported(t *testing.T) {
	dev := NewDevice(1)
	_, err := dev.Launch(Config{GridDim: 1, BlockDim: 1}, func(c *Ctx) {
		panic("kernel bug")
	})
	if err == nil {
		t.Error("panic should surface as error")
	}
}

func TestSharedMemoryAndSync(t *testing.T) {
	// Block-wide reversal through shared memory: needs the barrier.
	const n = 64
	dev := NewDevice(2 * n)
	for i := 0; i < n; i++ {
		dev.Global[i] = float64(i)
	}
	_, err := dev.Launch(Config{GridDim: 1, BlockDim: n, SharedLen: n}, func(c *Ctx) {
		t := c.ThreadIdx
		c.Shared[t] = c.LoadGlobal(t)
		c.SyncThreads()
		c.StoreGlobal(n+t, c.Shared[n-1-t])
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if dev.Global[n+i] != float64(n-1-i) {
			t.Fatalf("reversed[%d] = %f", i, dev.Global[n+i])
		}
	}
}

func TestReduceCorrectBothSchemes(t *testing.T) {
	xs := seqFloats(10000)
	var want float64
	for _, v := range xs {
		want += v
	}
	for _, scheme := range []ReductionScheme{Interleaved, Sequential} {
		got, st, err := Reduce(xs, 128, scheme)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-6 {
			t.Errorf("%v: sum = %f, want %f", scheme, got, want)
		}
		if st.Branches == 0 {
			t.Errorf("%v: no branches recorded", scheme)
		}
	}
}

func TestReducePropertyMatchesSerial(t *testing.T) {
	f := func(raw []float32) bool {
		xs := make([]float64, len(raw))
		var want float64
		for i, r := range raw {
			v := float64(int(r) % 1000) // keep exact in float64
			xs[i] = v
			want += v
		}
		got, _, err := Reduce(xs, 64, Sequential)
		if err != nil {
			return false
		}
		return math.Abs(got-want) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestInterleavedDivergesSequentialDoesNot(t *testing.T) {
	// The deck's punchline: interleaved addressing diverges in nearly
	// every warp-stride round; sequential addressing retires whole warps.
	xs := seqFloats(8192)
	_, inter, err := Reduce(xs, 256, Interleaved)
	if err != nil {
		t.Fatal(err)
	}
	_, seq, err := Reduce(xs, 256, Sequential)
	if err != nil {
		t.Fatal(err)
	}
	if inter.DivergentBranches <= 2*seq.DivergentBranches {
		t.Errorf("interleaved divergence %d should dwarf sequential %d",
			inter.DivergentBranches, seq.DivergentBranches)
	}
	if inter.DivergenceRate() <= seq.DivergenceRate() {
		t.Errorf("divergence rate: interleaved %.3f vs sequential %.3f",
			inter.DivergenceRate(), seq.DivergenceRate())
	}
}

func TestReduceValidation(t *testing.T) {
	if _, _, err := Reduce(seqFloats(10), 100, Sequential); err == nil {
		t.Error("non-power-of-two blockDim should error")
	}
	if _, _, err := Reduce(seqFloats(10), 0, Sequential); err == nil {
		t.Error("blockDim 0 should error")
	}
	got, _, err := Reduce(nil, 64, Sequential)
	if err != nil || got != 0 {
		t.Errorf("empty reduce: %f %v", got, err)
	}
}

func TestVecAddEdge(t *testing.T) {
	if _, _, err := VecAdd([]float64{1}, []float64{1, 2}, 32); err == nil {
		t.Error("length mismatch should error")
	}
	out, _, err := VecAdd(nil, nil, 32)
	if err != nil || out != nil {
		t.Error("empty vec add")
	}
	// Non-multiple of blockDim: tail threads masked by the bounds branch.
	a, b := seqFloats(100), seqFloats(100)
	got, st, err := VecAdd(a, b, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 || got[99] != a[99]+b[99] {
		t.Error("masked tail wrong")
	}
	// The bounds branch diverges only in the warp straddling n.
	if st.DivergentBranches != 1 {
		t.Errorf("boundary divergence = %d, want 1", st.DivergentBranches)
	}
}

func TestMatMulKernelsAgree(t *testing.T) {
	const n, tile = 16, 4
	a := make([]float64, n*n)
	b := make([]float64, n*n)
	for i := range a {
		a[i] = float64(i%7) - 3
		b[i] = float64((i*5)%11) - 5
	}
	naive, stNaive, err := MatMulNaive(a, b, n, tile)
	if err != nil {
		t.Fatal(err)
	}
	tiled, stTiled, err := MatMulTiled(a, b, n, tile)
	if err != nil {
		t.Fatal(err)
	}
	// Host-side reference.
	want := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for k := 0; k < n; k++ {
				s += a[i*n+k] * b[k*n+j]
			}
			want[i*n+j] = s
		}
	}
	for i := range want {
		if naive[i] != want[i] {
			t.Fatalf("naive C[%d] = %f, want %f", i, naive[i], want[i])
		}
		if tiled[i] != want[i] {
			t.Fatalf("tiled C[%d] = %f, want %f", i, tiled[i], want[i])
		}
	}
	// The optimization claim: tiling cuts global accesses by ~tile factor.
	ratio := float64(stNaive.GlobalAccesses) / float64(stTiled.GlobalAccesses)
	if ratio < float64(tile)/2 {
		t.Errorf("tiling reduced accesses only %.1fx (naive %d, tiled %d), want ~%dx",
			ratio, stNaive.GlobalAccesses, stTiled.GlobalAccesses, tile)
	}
	if stTiled.Barriers == 0 {
		t.Error("tiled kernel must use __syncthreads")
	}
}

func TestMatMulValidation(t *testing.T) {
	if _, _, err := MatMulNaive(make([]float64, 4), make([]float64, 9), 2, 1); err == nil {
		t.Error("size mismatch should error")
	}
	if _, _, err := MatMulTiled(make([]float64, 16), make([]float64, 16), 4, 3); err == nil {
		t.Error("non-dividing tile should error")
	}
	if _, _, err := MatMulTiled(make([]float64, 16), make([]float64, 16), 4, 0); err == nil {
		t.Error("tile 0 should error")
	}
}
