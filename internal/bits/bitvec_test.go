package bits

import (
	"testing"
	"testing/quick"
)

func TestVectorBasics(t *testing.T) {
	v := NewVector(130) // spans three words
	if v.Len() != 130 {
		t.Fatalf("Len = %d", v.Len())
	}
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if v.Get(i) {
			t.Errorf("bit %d should start clear", i)
		}
		v.Set(i)
		if !v.Get(i) {
			t.Errorf("bit %d should be set", i)
		}
	}
	if v.Count() != 8 {
		t.Errorf("Count = %d, want 8", v.Count())
	}
	v.Clear(64)
	if v.Get(64) || v.Count() != 7 {
		t.Errorf("Clear(64) failed: count=%d", v.Count())
	}
	v.Flip(64)
	v.Flip(0)
	if !v.Get(64) || v.Get(0) {
		t.Error("Flip misbehaved")
	}
}

func TestVectorPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-range index")
		}
	}()
	NewVector(10).Set(10)
}

func TestVectorSetRange(t *testing.T) {
	for _, c := range []struct{ n, lo, hi int }{
		{200, 0, 200}, {200, 63, 65}, {200, 64, 128}, {200, 10, 10}, {200, 1, 199}, {64, 0, 64},
	} {
		v := NewVector(c.n)
		v.SetRange(c.lo, c.hi)
		for i := 0; i < c.n; i++ {
			want := i >= c.lo && i < c.hi
			if v.Get(i) != want {
				t.Errorf("n=%d SetRange(%d,%d): bit %d = %v, want %v", c.n, c.lo, c.hi, i, v.Get(i), want)
			}
		}
		if v.Count() != c.hi-c.lo {
			t.Errorf("SetRange(%d,%d) Count=%d", c.lo, c.hi, v.Count())
		}
	}
}

func TestVectorNextSet(t *testing.T) {
	v := NewVector(300)
	v.Set(5)
	v.Set(64)
	v.Set(299)
	if got := v.NextSet(0); got != 5 {
		t.Errorf("NextSet(0) = %d", got)
	}
	if got := v.NextSet(6); got != 64 {
		t.Errorf("NextSet(6) = %d", got)
	}
	if got := v.NextSet(65); got != 299 {
		t.Errorf("NextSet(65) = %d", got)
	}
	if got := v.NextSet(300); got != -1 {
		t.Errorf("NextSet past end = %d", got)
	}
	if got := NewVector(100).NextSet(0); got != -1 {
		t.Errorf("NextSet on empty = %d", got)
	}
}

func TestVectorSetAlgebra(t *testing.T) {
	// Property: for random bit sets, De Morgan-ish identities hold per bit.
	f := func(aw, bw [3]uint64) bool {
		a, b := NewVector(192), NewVector(192)
		copy(a.words, aw[:])
		copy(b.words, bw[:])
		u := a.Clone()
		u.Union(b)
		i := a.Clone()
		i.Intersect(b)
		d := a.Clone()
		d.Difference(b)
		for k := 0; k < 192; k++ {
			if u.Get(k) != (a.Get(k) || b.Get(k)) {
				return false
			}
			if i.Get(k) != (a.Get(k) && b.Get(k)) {
				return false
			}
			if d.Get(k) != (a.Get(k) && !b.Get(k)) {
				return false
			}
		}
		// |A| = |A∩B| + |A\B|
		return a.Count() == i.Count()+d.Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVectorEqualClone(t *testing.T) {
	a := NewVector(100)
	a.Set(3)
	a.Set(99)
	b := a.Clone()
	if !a.Equal(b) {
		t.Error("clone should be equal")
	}
	b.Flip(50)
	if a.Equal(b) {
		t.Error("modified clone should differ")
	}
	if a.Equal(NewVector(101)) {
		t.Error("different lengths are never equal")
	}
}

func TestVectorAny(t *testing.T) {
	v := NewVector(100)
	if v.Any() {
		t.Error("empty vector Any = true")
	}
	v.Set(99)
	if !v.Any() {
		t.Error("Any should see bit 99")
	}
}

func TestSieve(t *testing.T) {
	primes := Sieve(50)
	want := []int{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47}
	if len(primes) != len(want) {
		t.Fatalf("Sieve(50) = %v", primes)
	}
	for i := range want {
		if primes[i] != want[i] {
			t.Errorf("prime[%d] = %d, want %d", i, primes[i], want[i])
		}
	}
	if Sieve(1) != nil || Sieve(0) != nil {
		t.Error("Sieve below 2 should be empty")
	}
	// π(10000) = 1229
	if got := len(Sieve(10000)); got != 1229 {
		t.Errorf("π(10000) = %d, want 1229", got)
	}
}

func TestFloat32Decompose(t *testing.T) {
	cases := []struct {
		f     float32
		class Class
	}{
		{0, ClassZero},
		{1.0, ClassNormal},
		{-2.5, ClassNormal},
		{1e-44, ClassSubnormal},
		{float32(inf()), ClassInfinity},
	}
	for _, c := range cases {
		p := DecomposeFloat32(c.f)
		if p.Classify() != c.class {
			t.Errorf("class(%g) = %v, want %v", c.f, p.Classify(), c.class)
		}
		if p.Compose() != c.f {
			t.Errorf("compose(decompose(%g)) = %g", c.f, p.Compose())
		}
	}
}

func inf() float64 {
	f := 1.0
	for i := 0; i < 2000; i++ {
		f *= 2
	}
	return f
}

func TestFloat32ValueMatchesHardware(t *testing.T) {
	f := func(v float32) bool {
		p := DecomposeFloat32(v)
		c := p.Classify()
		if c == ClassNaN {
			return true // NaN compares unequal to itself
		}
		return p.Value() == float64(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodeFloat32(t *testing.T) {
	// 1.0 = 1 × 2^0
	p, inexact := EncodeFloat32(false, 1, 0)
	if inexact || p.Compose() != 1.0 {
		t.Errorf("encode 1.0: %v inexact=%v", p.Compose(), inexact)
	}
	// 0.5 = 1 × 2^-1
	p, _ = EncodeFloat32(false, 1, -1)
	if p.Compose() != 0.5 {
		t.Errorf("encode 0.5: %v", p.Compose())
	}
	// -12 = 3 × 2^2
	p, inexact = EncodeFloat32(true, 3, 2)
	if inexact || p.Compose() != -12 {
		t.Errorf("encode -12: %v", p.Compose())
	}
	// 1/10 cannot be exact: mantissa 0xCCCCCCCD-ish
	p, inexact = EncodeFloat32(false, 0xCCCCCCCCCCCCD, -55) // ~0.1
	if !inexact {
		t.Error("0.1 should be inexact")
	}
	if got := p.Compose(); got != 0.1 {
		t.Errorf("encode 0.1 = %v", got)
	}
	// zero mantissa
	p, _ = EncodeFloat32(true, 0, 5)
	if p.Compose() != 0 || p.Sign != 1 {
		t.Error("negative zero encoding")
	}
	// overflow to infinity
	p, inexact = EncodeFloat32(false, 1, 1000)
	if p.Classify() != ClassInfinity || !inexact {
		t.Error("expected overflow to infinity")
	}
	// underflow to zero
	p, inexact = EncodeFloat32(false, 1, -1000)
	if p.Classify() != ClassZero || !inexact {
		t.Error("expected underflow to zero")
	}
}

func TestUlpOrdering(t *testing.T) {
	if Ulp(1.0) >= Ulp(1e10) {
		t.Error("ulp should grow with magnitude")
	}
	if Ulp(1.5) != Ulp(1.0) {
		t.Error("same binade, same ulp")
	}
}
