package bits

import "fmt"

// Int is a fixed-width two's complement integer. Width is the number of
// bits (1..64); Bits holds the value in the low Width bits with the upper
// bits zero. The type models exactly what the data-representation lab
// teaches: the same bit pattern is both an unsigned value and a signed
// two's complement value, and arithmetic wraps with observable carry-out
// and signed-overflow flags.
type Int struct {
	Bits  uint64
	Width int
}

// NewInt builds a fixed-width integer from a (possibly negative) Go int64,
// truncating to width bits the way a C cast does.
func NewInt(v int64, width int) Int {
	return Int{Bits: uint64(v) & widthMask(width), Width: width}
}

// Uint returns the unsigned interpretation of the bit pattern.
func (x Int) Uint() uint64 { return x.Bits & widthMask(x.Width) }

// Int64 returns the signed two's complement interpretation of the bit
// pattern, produced by explicit sign extension.
func (x Int) Int64() int64 {
	v := x.Bits & widthMask(x.Width)
	if x.Width < 64 && v&(1<<uint(x.Width-1)) != 0 {
		v |= ^widthMask(x.Width) // sign-extend
	}
	return int64(v)
}

// Sign reports -1, 0, or 1 for the signed interpretation.
func (x Int) Sign() int {
	v := x.Int64()
	switch {
	case v < 0:
		return -1
	case v > 0:
		return 1
	}
	return 0
}

// String renders the value as "signed (unsigned) 0bBITS" for lab reports.
func (x Int) String() string {
	return fmt.Sprintf("%d (%du) 0b%s", x.Int64(), x.Uint(), FormatBinary(x.Bits, x.Width))
}

// MinInt and MaxInt return the representable signed range at width bits.
func MinInt(width int) int64 { return Int{Bits: 1 << uint(width-1), Width: width}.Int64() }

// MaxInt returns the largest signed value representable in width bits.
func MaxInt(width int) int64 {
	return Int{Bits: widthMask(width) >> 1, Width: width}.Int64()
}

// Flags reports the ALU condition codes produced by an arithmetic
// operation, in the style of the IA32 EFLAGS subset CS31 teaches.
type Flags struct {
	Carry    bool // unsigned overflow (carry out of the MSB)
	Overflow bool // signed overflow (result sign inconsistent with operands)
	Zero     bool // result is all zero bits
	Negative bool // MSB of result is set
}

func flagsFor(res Int, carry, overflow bool) Flags {
	return Flags{
		Carry:    carry,
		Overflow: overflow,
		Zero:     res.Uint() == 0,
		Negative: res.Sign() < 0,
	}
}

// Add performs width-bit addition of x and y (widths must match), returning
// the wrapped result and the condition flags. Signed overflow occurs when
// the operands share a sign that differs from the result's sign.
func Add(x, y Int) (Int, Flags, error) {
	if x.Width != y.Width {
		return Int{}, Flags{}, fmt.Errorf("bits: width mismatch %d vs %d", x.Width, y.Width)
	}
	w := x.Width
	full := x.Uint() + y.Uint() // cannot wrap in 64 bits for w<64; handled below for w==64
	var carry bool
	if w == 64 {
		carry = full < x.Uint()
	} else {
		carry = full > widthMask(w)
	}
	res := Int{Bits: full & widthMask(w), Width: w}
	sx, sy, sr := x.Sign() < 0, y.Sign() < 0, res.Sign() < 0
	overflow := sx == sy && sr != sx && (x.Uint() != 0 || y.Uint() != 0)
	return res, flagsFor(res, carry, overflow), nil
}

// Sub computes x - y as x + (^y + 1), exactly how the lab derives
// subtraction from two's complement negation. The carry flag follows the
// x86 convention: set when a borrow is required (unsigned x < unsigned y).
func Sub(x, y Int) (Int, Flags, error) {
	if x.Width != y.Width {
		return Int{}, Flags{}, fmt.Errorf("bits: width mismatch %d vs %d", x.Width, y.Width)
	}
	negY := Neg(y)
	res, _, err := Add(x, negY)
	if err != nil {
		return Int{}, Flags{}, err
	}
	borrow := x.Uint() < y.Uint()
	sx, sy, sr := x.Sign() < 0, y.Sign() < 0, res.Sign() < 0
	overflow := sx != sy && sr == sy
	return res, flagsFor(res, borrow, overflow), nil
}

// Neg returns the two's complement negation ^x + 1. Negating the minimum
// value wraps back to itself — the classic overflow case the lab quizzes.
func Neg(x Int) Int {
	return Int{Bits: (^x.Bits + 1) & widthMask(x.Width), Width: x.Width}
}

// Mul performs width-bit multiplication via shift-and-add, the algorithm
// students implement after the binary arithmetic lecture. The carry flag
// reports that the true product did not fit in width bits (unsigned);
// Overflow reports the same for the signed product.
func Mul(x, y Int) (Int, Flags, error) {
	if x.Width != y.Width {
		return Int{}, Flags{}, fmt.Errorf("bits: width mismatch %d vs %d", x.Width, y.Width)
	}
	w := x.Width
	var acc uint64
	var lost bool
	m := x.Uint()
	for i := 0; i < w; i++ {
		if y.Uint()&(1<<uint(i)) != 0 {
			shifted := m << uint(i)
			if w < 64 {
				if i > 0 && m>>(uint(64-i)) != 0 {
					lost = true
				}
				acc += shifted
			} else {
				if i > 0 && m>>(uint(64-i)) != 0 {
					lost = true
				}
				before := acc
				acc += shifted
				if acc < before {
					lost = true
				}
			}
		}
	}
	if w < 64 && acc > widthMask(w) {
		lost = true
	}
	res := Int{Bits: acc & widthMask(w), Width: w}
	// Signed overflow: recompute in int64 when it fits, else approximate by
	// checking that res sign-extends back to the true signed product.
	var soverflow bool
	if w <= 32 {
		true64 := x.Int64() * y.Int64()
		soverflow = true64 != res.Int64()
	} else {
		soverflow = lost
	}
	return res, flagsFor(res, lost, soverflow), nil
}

// DivMod performs signed division with truncation toward zero (the C
// semantics the course contrasts with mathematical floor division). It
// returns quotient and remainder such that q*y + r == x and |r| < |y|.
func DivMod(x, y Int) (q, r Int, err error) {
	if x.Width != y.Width {
		return Int{}, Int{}, fmt.Errorf("bits: width mismatch %d vs %d", x.Width, y.Width)
	}
	if y.Uint() == 0 {
		return Int{}, Int{}, fmt.Errorf("bits: division by zero")
	}
	a, b := x.Int64(), y.Int64()
	return NewInt(a/b, x.Width), NewInt(a%b, x.Width), nil
}

// And, Or, Xor, Not are the bitwise operators at fixed width.
func And(x, y Int) Int { return Int{Bits: (x.Bits & y.Bits) & widthMask(x.Width), Width: x.Width} }

// Or returns the bitwise OR of x and y at x's width.
func Or(x, y Int) Int { return Int{Bits: (x.Bits | y.Bits) & widthMask(x.Width), Width: x.Width} }

// Xor returns the bitwise XOR of x and y at x's width.
func Xor(x, y Int) Int { return Int{Bits: (x.Bits ^ y.Bits) & widthMask(x.Width), Width: x.Width} }

// Not returns the bitwise complement of x at its width.
func Not(x Int) Int { return Int{Bits: (^x.Bits) & widthMask(x.Width), Width: x.Width} }

// Shl shifts left by k, discarding bits shifted past the width.
func Shl(x Int, k int) Int {
	if k >= x.Width {
		return Int{Width: x.Width}
	}
	return Int{Bits: (x.Bits << uint(k)) & widthMask(x.Width), Width: x.Width}
}

// Shr performs a logical (zero-filling) right shift by k.
func Shr(x Int, k int) Int {
	if k >= x.Width {
		return Int{Width: x.Width}
	}
	return Int{Bits: (x.Bits & widthMask(x.Width)) >> uint(k), Width: x.Width}
}

// Sar performs an arithmetic (sign-replicating) right shift by k, the
// distinction the assembly unit drills (sarl vs shrl).
func Sar(x Int, k int) Int {
	if k >= x.Width {
		if x.Sign() < 0 {
			return Int{Bits: widthMask(x.Width), Width: x.Width}
		}
		return Int{Width: x.Width}
	}
	return NewInt(x.Int64()>>uint(k), x.Width)
}

// SignExtend widens x to a larger width, replicating the sign bit.
func SignExtend(x Int, width int) Int {
	if width <= x.Width {
		return Truncate(x, width)
	}
	return NewInt(x.Int64(), width)
}

// ZeroExtend widens x to a larger width, filling with zeros.
func ZeroExtend(x Int, width int) Int {
	if width <= x.Width {
		return Truncate(x, width)
	}
	return Int{Bits: x.Uint(), Width: width}
}

// Truncate narrows x to width bits, keeping the low bits (a C downcast).
func Truncate(x Int, width int) Int {
	return Int{Bits: x.Bits & widthMask(width), Width: width}
}
