package bits

import (
	"fmt"
	"math"
)

// Float32Parts decomposes an IEEE-754 single-precision bit pattern into
// its sign, biased exponent, and fraction fields — the picture drawn on
// the board in the data-representation lecture.
type Float32Parts struct {
	Sign     uint32 // 1 bit
	Exponent uint32 // 8 bits, biased by 127
	Fraction uint32 // 23 bits
}

// Class is the IEEE-754 number class of a decoded pattern.
type Class int

// The possible IEEE-754 classes.
const (
	ClassZero Class = iota
	ClassSubnormal
	ClassNormal
	ClassInfinity
	ClassNaN
)

// String returns the human-readable name.
func (c Class) String() string {
	switch c {
	case ClassZero:
		return "zero"
	case ClassSubnormal:
		return "subnormal"
	case ClassNormal:
		return "normal"
	case ClassInfinity:
		return "infinity"
	case ClassNaN:
		return "NaN"
	}
	return "unknown"
}

// DecomposeFloat32 splits the bit pattern of f into fields.
func DecomposeFloat32(f float32) Float32Parts {
	b := math.Float32bits(f)
	return Float32Parts{
		Sign:     b >> 31,
		Exponent: (b >> 23) & 0xff,
		Fraction: b & 0x7fffff,
	}
}

// Compose reassembles the fields into a float32.
func (p Float32Parts) Compose() float32 {
	b := p.Sign<<31 | (p.Exponent&0xff)<<23 | (p.Fraction & 0x7fffff)
	return math.Float32frombits(b)
}

// Classify reports which IEEE-754 class the fields denote.
func (p Float32Parts) Classify() Class {
	switch {
	case p.Exponent == 0 && p.Fraction == 0:
		return ClassZero
	case p.Exponent == 0:
		return ClassSubnormal
	case p.Exponent == 0xff && p.Fraction == 0:
		return ClassInfinity
	case p.Exponent == 0xff:
		return ClassNaN
	}
	return ClassNormal
}

// Value recomputes the numeric value from the fields by the definition
// (-1)^s × 1.f × 2^(e-127), using only integer operations plus one final
// scale — the "decode by hand" exercise.
func (p Float32Parts) Value() float64 {
	sign := 1.0
	if p.Sign == 1 {
		sign = -1.0
	}
	switch p.Classify() {
	case ClassZero:
		return sign * 0
	case ClassInfinity:
		return sign * math.Inf(1)
	case ClassNaN:
		return math.NaN()
	case ClassSubnormal:
		return sign * float64(p.Fraction) / (1 << 23) * math.Pow(2, -126)
	}
	mant := 1.0 + float64(p.Fraction)/(1<<23)
	return sign * mant * math.Pow(2, float64(p.Exponent)-127)
}

// EncodeFloat32 builds the nearest float32 pattern for a value expressed
// as sign × mantissa × 2^exp2 with integer mantissa, implementing the
// normalize-round-pack pipeline by hand. It returns the parts and whether
// rounding lost precision.
func EncodeFloat32(negative bool, mantissa uint64, exp2 int) (Float32Parts, bool) {
	if mantissa == 0 {
		var s uint32
		if negative {
			s = 1
		}
		return Float32Parts{Sign: s}, false
	}
	// Normalize: shift mantissa so its leading 1 sits at bit 23.
	lead := LeadingBit(mantissa)
	shift := lead - 23
	exp2 += shift
	var frac uint64
	inexact := false
	if shift > 0 {
		dropped := mantissa & widthMask(shift)
		frac = mantissa >> uint(shift)
		if dropped != 0 {
			inexact = true
			half := uint64(1) << uint(shift-1)
			if dropped > half || (dropped == half && frac&1 == 1) { // round to nearest even
				frac++
				if frac == 1<<24 { // rounding carried out of the mantissa
					frac >>= 1
					exp2++
				}
			}
		}
	} else {
		frac = mantissa << uint(-shift)
	}
	// After normalization the value is (frac / 2^23) × 2^(exp2+23), so the
	// unbiased exponent is exp2+23.
	e := exp2 + 23 + 127
	var s uint32
	if negative {
		s = 1
	}
	if e >= 0xff { // overflow to infinity
		return Float32Parts{Sign: s, Exponent: 0xff}, true
	}
	if e <= 0 { // subnormal or underflow: shift the hidden bit back in
		drop := uint(1 - e)
		if drop >= 25 {
			return Float32Parts{Sign: s}, true
		}
		dropped := frac & widthMask(int(drop))
		frac >>= drop
		if dropped != 0 {
			inexact = true
		}
		return Float32Parts{Sign: s, Exponent: 0, Fraction: uint32(frac) & 0x7fffff}, inexact
	}
	return Float32Parts{Sign: s, Exponent: uint32(e), Fraction: uint32(frac) & 0x7fffff}, inexact
}

// Ulp returns the gap to the next representable float32 above |f| — used
// in the lab discussion of why 0.1 + 0.2 != 0.3.
func Ulp(f float32) float64 {
	p := DecomposeFloat32(f)
	switch p.Classify() {
	case ClassNaN, ClassInfinity:
		return math.NaN()
	case ClassZero, ClassSubnormal:
		return math.Pow(2, -126-23)
	}
	return math.Pow(2, float64(p.Exponent)-127-23)
}

// FormatFloat32 renders the bit layout of f as "s|eeeeeeee|fffff..." for
// lab write-ups.
func FormatFloat32(f float32) string {
	p := DecomposeFloat32(f)
	return fmt.Sprintf("%s|%s|%s (%s)",
		FormatBinary(uint64(p.Sign), 1),
		FormatBinary(uint64(p.Exponent), 8),
		FormatBinary(uint64(p.Fraction), 23),
		p.Classify())
}
