package bits

import (
	"math"
	"testing"
	"testing/quick"
)

func TestParseBinary(t *testing.T) {
	cases := []struct {
		in   string
		want uint64
		ok   bool
	}{
		{"0", 0, true},
		{"1", 1, true},
		{"101101", 45, true},
		{"0b1111", 15, true},
		{"0B1000_0000", 128, true},
		{"", 0, false},
		{"102", 0, false},
		{"0b", 0, false},
		{"1111111111111111111111111111111111111111111111111111111111111111", ^uint64(0), true},
		{"11111111111111111111111111111111111111111111111111111111111111111", 0, false}, // 65 bits
	}
	for _, c := range cases {
		got, err := ParseBinary(c.in)
		if (err == nil) != c.ok {
			t.Errorf("ParseBinary(%q) err=%v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("ParseBinary(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestParseHex(t *testing.T) {
	cases := []struct {
		in   string
		want uint64
		ok   bool
	}{
		{"0", 0, true},
		{"ff", 255, true},
		{"0xDEADBEEF", 0xdeadbeef, true},
		{"0Xcafe_babe", 0xcafebabe, true},
		{"g", 0, false},
		{"", 0, false},
		{"ffffffffffffffff", ^uint64(0), true},
		{"1ffffffffffffffff", 0, false},
	}
	for _, c := range cases {
		got, err := ParseHex(c.in)
		if (err == nil) != c.ok {
			t.Errorf("ParseHex(%q) err=%v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("ParseHex(%q) = %#x, want %#x", c.in, got, c.want)
		}
	}
}

func TestParseDecimalOverflow(t *testing.T) {
	if _, err := ParseDecimal("18446744073709551615"); err != nil {
		t.Errorf("max uint64 should parse: %v", err)
	}
	if _, err := ParseDecimal("18446744073709551616"); err == nil {
		t.Error("expected overflow error for 2^64")
	}
	if _, err := ParseDecimal("99999999999999999999999"); err == nil {
		t.Error("expected overflow error")
	}
}

func TestFormatBinaryRoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		s := FormatBinary(uint64(v), 32)
		if len(s) != 32 {
			return false
		}
		got, err := ParseBinary(s)
		return err == nil && got == uint64(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFormatHexRoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		s := FormatHex(v, 64)
		got, err := ParseHex(s)
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConvert(t *testing.T) {
	cases := []struct {
		s, from, to string
		width       int
		want        string
		ok          bool
	}{
		{"255", "dec", "hex", 8, "ff", true},
		{"ff", "hex", "bin", 8, "11111111", true},
		{"1010", "bin", "dec", 8, "10", true},
		{"256", "dec", "hex", 8, "", false}, // does not fit
		{"10", "oct", "dec", 8, "", false},  // unknown base
		{"10", "dec", "oct", 8, "", false},
	}
	for _, c := range cases {
		got, err := Convert(c.s, c.from, c.to, c.width)
		if (err == nil) != c.ok {
			t.Errorf("Convert(%q,%s,%s) err=%v want ok=%v", c.s, c.from, c.to, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("Convert(%q,%s,%s) = %q, want %q", c.s, c.from, c.to, got, c.want)
		}
	}
}

func TestOnesCountAgainstNaive(t *testing.T) {
	f := func(v uint64) bool {
		n := 0
		for i := 0; i < 64; i++ {
			if v&(1<<uint(i)) != 0 {
				n++
			}
		}
		return OnesCount(v) == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMinBits(t *testing.T) {
	cases := []struct {
		v    uint64
		want int
	}{{0, 1}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {255, 8}, {256, 9}, {^uint64(0), 64}}
	for _, c := range cases {
		if got := MinBits(c.v); got != c.want {
			t.Errorf("MinBits(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestReverseInvolution(t *testing.T) {
	f := func(v uint32) bool {
		return Reverse(Reverse(uint64(v), 32), 32) == uint64(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRotateLeft(t *testing.T) {
	if got := RotateLeft(0b1000, 4, 1); got != 0b0001 {
		t.Errorf("RotateLeft(1000,4,1) = %04b", got)
	}
	if got := RotateLeft(0b1001, 4, 2); got != 0b0110 {
		t.Errorf("RotateLeft(1001,4,2) = %04b", got)
	}
	// rotating by the width is the identity
	f := func(v uint8, k uint8) bool {
		w := uint64(v)
		return RotateLeft(w, 8, 8) == w && RotateLeft(RotateLeft(w, 8, int(k%8)), 8, 8-int(k%8)) == w
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTwosComplementInterpretation(t *testing.T) {
	cases := []struct {
		bits  uint64
		width int
		want  int64
	}{
		{0xff, 8, -1},
		{0x80, 8, -128},
		{0x7f, 8, 127},
		{0x00, 8, 0},
		{0xffff, 16, -1},
		{0x8000_0000, 32, math.MinInt32},
		{0x7fff_ffff, 32, math.MaxInt32},
	}
	for _, c := range cases {
		x := Int{Bits: c.bits, Width: c.width}
		if got := x.Int64(); got != c.want {
			t.Errorf("Int{%#x,%d}.Int64() = %d, want %d", c.bits, c.width, got, c.want)
		}
	}
}

func TestMinMaxInt(t *testing.T) {
	if MinInt(8) != -128 || MaxInt(8) != 127 {
		t.Errorf("8-bit range: [%d,%d]", MinInt(8), MaxInt(8))
	}
	if MinInt(32) != math.MinInt32 || MaxInt(32) != math.MaxInt32 {
		t.Errorf("32-bit range: [%d,%d]", MinInt(32), MaxInt(32))
	}
}

func TestAddFlags(t *testing.T) {
	cases := []struct {
		x, y     int64
		width    int
		want     int64
		carry    bool
		overflow bool
	}{
		{100, 27, 8, 127, false, false},
		{100, 28, 8, -128, false, true}, // signed overflow, no carry
		{-1, 1, 8, 0, true, false},      // carry out, no signed overflow
		{-128, -128, 8, 0, true, true},  // both
		{-1, -1, 8, -2, true, false},    // 0xff+0xff carries
		{math.MaxInt32, 1, 32, math.MinInt32, false, true},
	}
	for _, c := range cases {
		res, fl, err := Add(NewInt(c.x, c.width), NewInt(c.y, c.width))
		if err != nil {
			t.Fatal(err)
		}
		if res.Int64() != c.want || fl.Carry != c.carry || fl.Overflow != c.overflow {
			t.Errorf("Add(%d,%d,w=%d) = %d carry=%v ovf=%v; want %d carry=%v ovf=%v",
				c.x, c.y, c.width, res.Int64(), fl.Carry, fl.Overflow, c.want, c.carry, c.overflow)
		}
	}
}

func TestAddWidthMismatch(t *testing.T) {
	if _, _, err := Add(NewInt(1, 8), NewInt(1, 16)); err == nil {
		t.Error("expected width mismatch error")
	}
}

func TestSubMatchesInt64(t *testing.T) {
	f := func(a, b int32) bool {
		res, fl, err := Sub(NewInt(int64(a), 32), NewInt(int64(b), 32))
		if err != nil {
			return false
		}
		want := int64(int32(int64(a) - int64(b))) // wrapped 32-bit result
		if res.Int64() != want {
			return false
		}
		// borrow flag: unsigned a < unsigned b
		return fl.Carry == (uint32(a) < uint32(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNegMinValueWraps(t *testing.T) {
	x := NewInt(-128, 8)
	if got := Neg(x).Int64(); got != -128 {
		t.Errorf("Neg(-128) at 8 bits = %d, want -128 (wraps)", got)
	}
	if got := Neg(NewInt(5, 8)).Int64(); got != -5 {
		t.Errorf("Neg(5) = %d", got)
	}
	if got := Neg(NewInt(0, 8)).Int64(); got != 0 {
		t.Errorf("Neg(0) = %d", got)
	}
}

func TestMulMatchesInt64(t *testing.T) {
	f := func(a, b int16) bool {
		res, fl, err := Mul(NewInt(int64(a), 16), NewInt(int64(b), 16))
		if err != nil {
			return false
		}
		true32 := int64(a) * int64(b)
		want := int64(int16(true32))
		if res.Int64() != want {
			return false
		}
		return fl.Overflow == (true32 != want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDivModTruncatesTowardZero(t *testing.T) {
	cases := []struct{ x, y, q, r int64 }{
		{7, 2, 3, 1},
		{-7, 2, -3, -1}, // C semantics, not floor
		{7, -2, -3, 1},
		{-7, -2, 3, -1},
	}
	for _, c := range cases {
		q, r, err := DivMod(NewInt(c.x, 32), NewInt(c.y, 32))
		if err != nil {
			t.Fatal(err)
		}
		if q.Int64() != c.q || r.Int64() != c.r {
			t.Errorf("DivMod(%d,%d) = %d,%d want %d,%d", c.x, c.y, q.Int64(), r.Int64(), c.q, c.r)
		}
	}
	if _, _, err := DivMod(NewInt(1, 32), NewInt(0, 32)); err == nil {
		t.Error("expected division by zero error")
	}
}

func TestShifts(t *testing.T) {
	x := NewInt(-8, 8) // 0b11111000
	if got := Shr(x, 2).Uint(); got != 0b00111110 {
		t.Errorf("Shr logical = %08b", got)
	}
	if got := Sar(x, 2).Int64(); got != -2 {
		t.Errorf("Sar arithmetic = %d, want -2", got)
	}
	if got := Shl(NewInt(1, 8), 7).Int64(); got != -128 {
		t.Errorf("Shl(1,7) = %d, want -128", got)
	}
	if got := Shl(NewInt(1, 8), 8).Uint(); got != 0 {
		t.Errorf("Shl past width = %d, want 0", got)
	}
	if got := Sar(NewInt(-1, 8), 100).Int64(); got != -1 {
		t.Errorf("Sar(-1,100) = %d, want -1", got)
	}
	if got := Sar(NewInt(1, 8), 100).Int64(); got != 0 {
		t.Errorf("Sar(1,100) = %d, want 0", got)
	}
}

func TestExtendTruncate(t *testing.T) {
	x := NewInt(-5, 8)
	if got := SignExtend(x, 32).Int64(); got != -5 {
		t.Errorf("SignExtend(-5, 32) = %d", got)
	}
	if got := ZeroExtend(x, 32).Int64(); got != 251 {
		t.Errorf("ZeroExtend(-5, 32) = %d, want 251", got)
	}
	if got := Truncate(NewInt(0x1ff, 16), 8).Uint(); got != 0xff {
		t.Errorf("Truncate = %#x", got)
	}
}

func TestXorSwapIdentityProperties(t *testing.T) {
	f := func(a, b uint32) bool {
		x, y := NewInt(int64(a), 32), NewInt(int64(b), 32)
		// XOR swap trick
		x2 := Xor(x, y)
		y2 := Xor(x2, y)
		x3 := Xor(x2, y2)
		return y2.Uint() == x.Uint() && x3.Uint() == y.Uint() &&
			And(x, Not(x)).Uint() == 0 && Or(x, Not(x)).Uint() == widthMask(32)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
