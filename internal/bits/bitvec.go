package bits

import (
	"fmt"
	"strings"
)

// Vector is the bit-vector data structure from the CS31 "bit vectors" lab:
// a growable set of bits packed into 64-bit words, supporting the set
// operations students implement with masks and shifts.
type Vector struct {
	words []uint64
	n     int // number of valid bits
}

// NewVector creates a bit vector with n bits, all zero.
func NewVector(n int) *Vector {
	if n < 0 {
		n = 0
	}
	return &Vector{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the number of bits in the vector.
func (v *Vector) Len() int { return v.n }

// Set sets bit i to 1. It panics if i is out of range, matching slice
// semantics.
func (v *Vector) Set(i int) {
	v.check(i)
	v.words[i/64] |= 1 << uint(i%64)
}

// Clear sets bit i to 0.
func (v *Vector) Clear(i int) {
	v.check(i)
	v.words[i/64] &^= 1 << uint(i%64)
}

// Flip toggles bit i.
func (v *Vector) Flip(i int) {
	v.check(i)
	v.words[i/64] ^= 1 << uint(i%64)
}

// Get reports whether bit i is set.
func (v *Vector) Get(i int) bool {
	v.check(i)
	return v.words[i/64]&(1<<uint(i%64)) != 0
}

func (v *Vector) check(i int) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bits: vector index %d out of range [0,%d)", i, v.n))
	}
}

// SetRange sets bits [lo, hi) to 1 using word-at-a-time masking rather
// than a per-bit loop — the efficiency point of the lab.
func (v *Vector) SetRange(lo, hi int) {
	if lo < 0 || hi > v.n || lo > hi {
		panic(fmt.Sprintf("bits: bad range [%d,%d) of %d", lo, hi, v.n))
	}
	for lo < hi {
		w := lo / 64
		start := uint(lo % 64)
		end := uint(64)
		if w == (hi-1)/64 {
			end = uint((hi-1)%64) + 1
		}
		var mask uint64
		if end-start == 64 {
			mask = ^uint64(0)
		} else {
			mask = ((uint64(1) << (end - start)) - 1) << start
		}
		v.words[w] |= mask
		lo = (w + 1) * 64
		if lo > hi {
			lo = hi
		}
	}
}

// Count returns the number of set bits (population count).
func (v *Vector) Count() int {
	n := 0
	for _, w := range v.words {
		n += OnesCount(w)
	}
	return n
}

// Any reports whether at least one bit is set.
func (v *Vector) Any() bool {
	for _, w := range v.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// NextSet returns the index of the first set bit at or after i, or -1.
func (v *Vector) NextSet(i int) int {
	if i < 0 {
		i = 0
	}
	for ; i < v.n; i++ {
		w := v.words[i/64] >> uint(i%64)
		if w == 0 {
			// skip the rest of this word
			i = (i/64+1)*64 - 1
			continue
		}
		if w&1 == 1 {
			return i
		}
	}
	return -1
}

// Union sets v to v ∪ o. Vectors must have equal length.
func (v *Vector) Union(o *Vector) {
	v.sameLen(o)
	for i := range v.words {
		v.words[i] |= o.words[i]
	}
}

// Intersect sets v to v ∩ o.
func (v *Vector) Intersect(o *Vector) {
	v.sameLen(o)
	for i := range v.words {
		v.words[i] &= o.words[i]
	}
}

// Difference sets v to v \ o.
func (v *Vector) Difference(o *Vector) {
	v.sameLen(o)
	for i := range v.words {
		v.words[i] &^= o.words[i]
	}
}

// Equal reports whether v and o contain the same bits.
func (v *Vector) Equal(o *Vector) bool {
	if v.n != o.n {
		return false
	}
	for i := range v.words {
		if v.words[i] != o.words[i] {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of v.
func (v *Vector) Clone() *Vector {
	w := NewVector(v.n)
	copy(w.words, v.words)
	return w
}

func (v *Vector) sameLen(o *Vector) {
	if v.n != o.n {
		panic(fmt.Sprintf("bits: vector length mismatch %d vs %d", v.n, o.n))
	}
}

// String renders the vector LSB-first as a compact diagnostic string.
func (v *Vector) String() string {
	var b strings.Builder
	for i := 0; i < v.n; i++ {
		if v.Get(i) {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

// Sieve computes the primes below n with a bit-vector sieve of
// Eratosthenes — the capstone exercise of the bit-vector lab.
func Sieve(n int) []int {
	if n < 2 {
		return nil
	}
	composite := NewVector(n)
	for p := 2; p*p < n; p++ {
		if composite.Get(p) {
			continue
		}
		for m := p * p; m < n; m += p {
			composite.Set(m)
		}
	}
	var primes []int
	for p := 2; p < n; p++ {
		if !composite.Get(p) {
			primes = append(primes, p)
		}
	}
	return primes
}
