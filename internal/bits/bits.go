// Package bits implements the CS31 "Data Representation" lab from first
// principles: conversion between binary, hexadecimal, and decimal
// representations, two's complement arithmetic with explicit carry and
// overflow detection, bit-vector operations, and IEEE-754 floating point
// encoding and decoding.
//
// Everything here is deliberately implemented at the level a student would
// build it — digit by digit, bit by bit — rather than by delegating to
// strconv, so the package doubles as an executable model of the lecture
// content (binary data representation, binary arithmetic and operations,
// overflow).
package bits

import (
	"errors"
	"fmt"
	"strings"
)

// Word is the fixed word size, in bits, used by the fixed-width helpers in
// this package. It matches the 32-bit machine model used throughout CS31.
const Word = 32

var (
	// ErrEmpty is returned when a conversion is asked to parse an empty string.
	ErrEmpty = errors.New("bits: empty input")
	// ErrDigit is returned when an input string contains a digit that is not
	// valid in the requested base.
	ErrDigit = errors.New("bits: invalid digit")
	// ErrWidth is returned when a value does not fit in the requested width.
	ErrWidth = errors.New("bits: value does not fit in width")
)

// ParseBinary parses an unsigned binary string such as "101101" or
// "0b101101" into a uint64. Underscores are permitted as visual separators.
func ParseBinary(s string) (uint64, error) {
	s = strings.TrimPrefix(strings.TrimPrefix(s, "0b"), "0B")
	s = strings.ReplaceAll(s, "_", "")
	if s == "" {
		return 0, ErrEmpty
	}
	if len(s) > 64 {
		return 0, fmt.Errorf("%w: %d bits > 64", ErrWidth, len(s))
	}
	var v uint64
	for _, c := range s {
		switch c {
		case '0':
			v = v << 1
		case '1':
			v = v<<1 | 1
		default:
			return 0, fmt.Errorf("%w: %q in binary literal", ErrDigit, c)
		}
	}
	return v, nil
}

// FormatBinary renders v as a binary string of exactly width bits,
// most-significant bit first. Width must be between 1 and 64.
func FormatBinary(v uint64, width int) string {
	if width < 1 {
		width = 1
	}
	if width > 64 {
		width = 64
	}
	b := make([]byte, width)
	for i := width - 1; i >= 0; i-- {
		b[i] = byte('0' + v&1)
		v >>= 1
	}
	return string(b)
}

// ParseHex parses an unsigned hexadecimal string such as "deadbeef" or
// "0xDEADBEEF" into a uint64.
func ParseHex(s string) (uint64, error) {
	s = strings.TrimPrefix(strings.TrimPrefix(s, "0x"), "0X")
	s = strings.ReplaceAll(s, "_", "")
	if s == "" {
		return 0, ErrEmpty
	}
	if len(s) > 16 {
		return 0, fmt.Errorf("%w: %d hex digits > 16", ErrWidth, len(s))
	}
	var v uint64
	for _, c := range s {
		d, err := hexDigit(c)
		if err != nil {
			return 0, err
		}
		v = v<<4 | uint64(d)
	}
	return v, nil
}

func hexDigit(c rune) (uint8, error) {
	switch {
	case c >= '0' && c <= '9':
		return uint8(c - '0'), nil
	case c >= 'a' && c <= 'f':
		return uint8(c-'a') + 10, nil
	case c >= 'A' && c <= 'F':
		return uint8(c-'A') + 10, nil
	}
	return 0, fmt.Errorf("%w: %q in hex literal", ErrDigit, c)
}

// FormatHex renders v as a lowercase hexadecimal string padded to the
// number of hex digits needed for width bits (width is rounded up to a
// multiple of 4).
func FormatHex(v uint64, width int) string {
	digits := (width + 3) / 4
	if digits < 1 {
		digits = 1
	}
	if digits > 16 {
		digits = 16
	}
	const tab = "0123456789abcdef"
	b := make([]byte, digits)
	for i := digits - 1; i >= 0; i-- {
		b[i] = tab[v&0xf]
		v >>= 4
	}
	return string(b)
}

// ParseDecimal parses an unsigned decimal string into a uint64, detecting
// overflow explicitly (the way the lab asks students to reason about it:
// the accumulated value must never shrink).
func ParseDecimal(s string) (uint64, error) {
	s = strings.ReplaceAll(s, "_", "")
	if s == "" {
		return 0, ErrEmpty
	}
	var v uint64
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("%w: %q in decimal literal", ErrDigit, c)
		}
		next := v*10 + uint64(c-'0')
		if next/10 < v { // multiplication or addition wrapped
			return 0, fmt.Errorf("%w: decimal overflows 64 bits", ErrWidth)
		}
		v = next
	}
	return v, nil
}

// Convert parses s in the base named by from ("bin", "hex", or "dec") and
// renders it in the base named by to, using width bits for the formatted
// output. It is the round-trip exercise from the data representation lab.
func Convert(s, from, to string, width int) (string, error) {
	var v uint64
	var err error
	switch from {
	case "bin":
		v, err = ParseBinary(s)
	case "hex":
		v, err = ParseHex(s)
	case "dec":
		v, err = ParseDecimal(s)
	default:
		return "", fmt.Errorf("bits: unknown source base %q", from)
	}
	if err != nil {
		return "", err
	}
	if width > 0 && width < 64 && v >= 1<<uint(width) {
		return "", fmt.Errorf("%w: %d needs more than %d bits", ErrWidth, v, width)
	}
	switch to {
	case "bin":
		return FormatBinary(v, width), nil
	case "hex":
		return FormatHex(v, width), nil
	case "dec":
		return fmt.Sprintf("%d", v), nil
	}
	return "", fmt.Errorf("bits: unknown target base %q", to)
}

// OnesCount returns the number of set bits in v, computed with the shift
// and mask loop students write before learning the popcount tricks.
func OnesCount(v uint64) int {
	n := 0
	for v != 0 {
		n += int(v & 1)
		v >>= 1
	}
	return n
}

// LeadingBit returns the position (0-based from the least significant end)
// of the most significant set bit of v, or -1 when v is zero.
func LeadingBit(v uint64) int {
	p := -1
	for i := 0; v != 0; i++ {
		if v&1 == 1 {
			p = i
		}
		v >>= 1
	}
	return p
}

// MinBits reports the minimum number of bits needed to represent v as an
// unsigned quantity. Zero needs one bit.
func MinBits(v uint64) int {
	if v == 0 {
		return 1
	}
	return LeadingBit(v) + 1
}

// Reverse returns v with its low width bits reversed.
func Reverse(v uint64, width int) uint64 {
	var r uint64
	for i := 0; i < width; i++ {
		r = r<<1 | (v & 1)
		v >>= 1
	}
	return r
}

// RotateLeft rotates the low width bits of v left by k positions.
func RotateLeft(v uint64, width, k int) uint64 {
	if width <= 0 || width > 64 {
		return v
	}
	mask := widthMask(width)
	v &= mask
	k %= width
	if k < 0 {
		k += width
	}
	return ((v << uint(k)) | (v >> uint(width-k))) & mask
}

func widthMask(width int) uint64 {
	if width >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(width)) - 1
}
