package mem

import (
	"fmt"
	"strings"
)

// Level pairs a cache with its hit latency in cycles, for AMAT.
type Level struct {
	Cache   *Cache
	Latency float64 // hit time of this level, cycles
	Name    string
}

// Hierarchy is a multi-level cache hierarchy in front of main memory.
// Accesses walk down on miss; write-backs and write-throughs are forwarded
// to the next level (and ultimately counted as memory traffic).
type Hierarchy struct {
	Levels      []Level
	MemLatency  float64 // main-memory access time, cycles
	MemAccesses int64   // accesses that reached main memory
}

// NewHierarchy builds a hierarchy from levels ordered L1 first.
func NewHierarchy(memLatency float64, levels ...Level) *Hierarchy {
	return &Hierarchy{Levels: levels, MemLatency: memLatency}
}

// Access performs a load or store at the top level, propagating misses and
// write traffic downward exactly once per level boundary.
func (h *Hierarchy) Access(addr uint64, write bool) {
	h.access(0, addr, write)
}

func (h *Hierarchy) access(levelIdx int, addr uint64, write bool) {
	if levelIdx >= len(h.Levels) {
		h.MemAccesses++
		return
	}
	res := h.Levels[levelIdx].Cache.Access(addr, write)
	if res.WroteBack {
		// Dirty eviction: the victim line is written to the next level.
		h.access(levelIdx+1, res.WritebackAddr, true)
	}
	if res.WroteThrough {
		h.access(levelIdx+1, addr, true)
	}
	if !res.Hit {
		// Miss fill from the next level (for write-through stores the
		// write already went down; the allocate-fill read still occurs).
		h.access(levelIdx+1, addr, false)
	}
}

// AMAT computes the average memory access time from the measured per-level
// miss rates: t1 + m1*(t2 + m2*(... + mk*tmem)).
func (h *Hierarchy) AMAT() float64 {
	amat := h.MemLatency
	for i := len(h.Levels) - 1; i >= 0; i-- {
		s := h.Levels[i].Cache.Stats()
		amat = h.Levels[i].Latency + s.MissRate()*amat
	}
	return amat
}

// Report renders a per-level summary table for lab write-ups.
func (h *Hierarchy) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %10s %10s %10s %8s %10s\n", "level", "accesses", "hits", "misses", "hit%", "writebacks")
	for _, lv := range h.Levels {
		s := lv.Cache.Stats()
		fmt.Fprintf(&b, "%-6s %10d %10d %10d %7.2f%% %10d\n",
			lv.Name, s.Accesses, s.Hits, s.Misses, 100*s.HitRate(), s.Writebacks)
	}
	fmt.Fprintf(&b, "%-6s %10d\n", "mem", h.MemAccesses)
	fmt.Fprintf(&b, "AMAT = %.2f cycles\n", h.AMAT())
	return b.String()
}

// --- address trace generators: the locality experiments ---

// Access records one memory reference of a trace.
type Access struct {
	Addr  uint64
	Write bool
}

// RowMajorTrace generates the addresses of summing an n×n matrix of
// 8-byte elements row by row (the cache-friendly traversal).
func RowMajorTrace(n int, base uint64) []Access {
	t := make([]Access, 0, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			t = append(t, Access{Addr: base + uint64(i*n+j)*8})
		}
	}
	return t
}

// ColMajorTrace generates the same references column by column — the
// traversal whose stride defeats spatial locality.
func ColMajorTrace(n int, base uint64) []Access {
	t := make([]Access, 0, n*n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			t = append(t, Access{Addr: base + uint64(i*n+j)*8})
		}
	}
	return t
}

// StrideTrace generates count references with the given byte stride.
func StrideTrace(count int, stride, base uint64) []Access {
	t := make([]Access, count)
	for i := range t {
		t[i] = Access{Addr: base + uint64(i)*stride}
	}
	return t
}

// RandomTrace generates count references uniformly over a span of bytes,
// deterministically from seed.
func RandomTrace(count int, span, base uint64, seed uint64) []Access {
	if seed == 0 {
		seed = 1
	}
	t := make([]Access, count)
	s := seed
	for i := range t {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		t[i] = Access{Addr: base + (s%span)&^7, Write: s&1 == 0}
	}
	return t
}

// Replay pushes a trace through a hierarchy.
func (h *Hierarchy) Replay(trace []Access) {
	for _, a := range trace {
		h.Access(a.Addr, a.Write)
	}
}

// ReplayCache pushes a trace through a single cache, ignoring the
// propagation results (for single-level experiments).
func ReplayCache(c *Cache, trace []Access) {
	for _, a := range trace {
		c.Access(a.Addr, a.Write)
	}
}
