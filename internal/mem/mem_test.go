package mem

import (
	"testing"
	"testing/quick"
)

func mustCache(t *testing.T, cfg CacheConfig) *Cache {
	t.Helper()
	c, err := NewCache(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidation(t *testing.T) {
	bad := []CacheConfig{
		{SizeBytes: 0, BlockBytes: 64},
		{SizeBytes: 100, BlockBytes: 64},            // not power of two
		{SizeBytes: 1024, BlockBytes: 48},           // not power of two
		{SizeBytes: 64, BlockBytes: 128},            // block > cache
		{SizeBytes: 1024, BlockBytes: 64, Assoc: 5}, // 16 lines % 5 != 0
		{SizeBytes: 1024, BlockBytes: 64, Assoc: -1},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %+v should be invalid", cfg)
		}
	}
	good := []CacheConfig{
		{SizeBytes: 1024, BlockBytes: 64, Assoc: 1},
		{SizeBytes: 1024, BlockBytes: 64, Assoc: 4},
		{SizeBytes: 1024, BlockBytes: 64, Assoc: 0}, // fully associative
		{SizeBytes: 64, BlockBytes: 64, Assoc: 1},
	}
	for _, cfg := range good {
		if err := cfg.Validate(); err != nil {
			t.Errorf("config %+v should be valid: %v", cfg, err)
		}
	}
}

func TestAddressSplitRoundTrip(t *testing.T) {
	c := mustCache(t, CacheConfig{SizeBytes: 4096, BlockBytes: 64, Assoc: 2})
	f := func(addr uint64) bool {
		p := c.Split(addr)
		if p.Offset >= 64 {
			return false
		}
		rebuilt := p.Tag<<(c.boff+c.sbits) | p.Set<<c.boff | p.Offset
		return rebuilt == addr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestColdMissThenHit(t *testing.T) {
	c := mustCache(t, CacheConfig{SizeBytes: 1024, BlockBytes: 64, Assoc: 1})
	r := c.Access(0x100, false)
	if r.Hit {
		t.Error("cold access should miss")
	}
	r = c.Access(0x100, false)
	if !r.Hit {
		t.Error("second access should hit")
	}
	// Same block, different offset: spatial locality hit.
	r = c.Access(0x13f, false)
	if !r.Hit {
		t.Error("same-block access should hit")
	}
	// Next block: miss.
	r = c.Access(0x140, false)
	if r.Hit {
		t.Error("next block should miss")
	}
	s := c.Stats()
	if s.Accesses != 4 || s.Hits != 2 || s.Misses != 2 {
		t.Errorf("stats: %+v", s)
	}
}

func TestDirectMappedConflict(t *testing.T) {
	// Two addresses that map to the same set in a direct-mapped cache
	// thrash; a 2-way cache holds both.
	dm := mustCache(t, CacheConfig{SizeBytes: 1024, BlockBytes: 64, Assoc: 1})
	tw := mustCache(t, CacheConfig{SizeBytes: 1024, BlockBytes: 64, Assoc: 2})
	a, b := uint64(0), uint64(1024) // same index, different tag
	for i := 0; i < 10; i++ {
		dm.Access(a, false)
		dm.Access(b, false)
		tw.Access(a, false)
		tw.Access(b, false)
	}
	if got := dm.Stats().Hits; got != 0 {
		t.Errorf("direct-mapped thrash should never hit, got %d hits", got)
	}
	if got := tw.Stats().Misses; got != 2 {
		t.Errorf("2-way should only cold-miss twice, got %d misses", got)
	}
}

func TestLRUvsFIFO(t *testing.T) {
	// Pattern A B A C with 2-way set: LRU evicts B for C (A stays);
	// FIFO evicts A (oldest load). A following access to A hits under LRU
	// and misses under FIFO.
	mk := func(p Replacement) *Cache {
		return mustCache(t, CacheConfig{SizeBytes: 128, BlockBytes: 64, Assoc: 2, Policy: p})
	}
	a, b, c := uint64(0), uint64(128), uint64(256)
	for _, tc := range []struct {
		policy  Replacement
		wantHit bool
	}{{LRU, true}, {FIFO, false}} {
		cc := mk(tc.policy)
		cc.Access(a, false)
		cc.Access(b, false)
		cc.Access(a, false) // A most recently used
		cc.Access(c, false) // evict per policy
		r := cc.Access(a, false)
		if r.Hit != tc.wantHit {
			t.Errorf("%v: access A hit=%v, want %v", tc.policy, r.Hit, tc.wantHit)
		}
	}
}

func TestWriteBackVsWriteThrough(t *testing.T) {
	wb := mustCache(t, CacheConfig{SizeBytes: 128, BlockBytes: 64, Assoc: 1, Write: WriteBack})
	wt := mustCache(t, CacheConfig{SizeBytes: 128, BlockBytes: 64, Assoc: 1, Write: WriteThrough})
	// Write the same block many times.
	for i := 0; i < 100; i++ {
		wb.Access(0, true)
		wt.Access(0, true)
	}
	if got := wt.Stats().Writedowns; got != 100 {
		t.Errorf("write-through should forward every store: %d", got)
	}
	if got := wb.Stats().Writebacks; got != 0 {
		t.Errorf("write-back should not have written yet: %d", got)
	}
	// Evict the dirty block: exactly one writeback.
	r := wb.Access(128, false)
	if !r.WroteBack || r.WritebackAddr != 0 {
		t.Errorf("expected writeback of block 0: %+v", r)
	}
	if got := wb.Stats().Writebacks; got != 1 {
		t.Errorf("writebacks = %d", got)
	}
	if dirty := wb.Flush(); dirty != 0 {
		t.Errorf("flush after eviction found %d dirty lines", dirty)
	}
}

func TestFullyAssociativeNoConflicts(t *testing.T) {
	// Fully associative cache with 4 lines holds any 4 blocks.
	c := mustCache(t, CacheConfig{SizeBytes: 256, BlockBytes: 64, Assoc: 0})
	addrs := []uint64{0, 1 << 10, 2 << 10, 3 << 10}
	for _, a := range addrs {
		c.Access(a, false)
	}
	for _, a := range addrs {
		if !c.Contains(a) {
			t.Errorf("block %#x should be resident", a)
		}
	}
}

func TestRowVsColMajorLocality(t *testing.T) {
	// The CS31 locality experiment: summing a 64x64 matrix of 8-byte
	// elements. Row-major enjoys spatial locality; column-major with a
	// 512-byte row stride misses far more in a small cache.
	const n = 64
	row := mustCache(t, CacheConfig{SizeBytes: 4096, BlockBytes: 64, Assoc: 1})
	col := mustCache(t, CacheConfig{SizeBytes: 4096, BlockBytes: 64, Assoc: 1})
	ReplayCache(row, RowMajorTrace(n, 0))
	ReplayCache(col, ColMajorTrace(n, 0))
	rowMR, colMR := row.Stats().MissRate(), col.Stats().MissRate()
	if rowMR > 0.2 {
		t.Errorf("row-major miss rate %.3f too high", rowMR)
	}
	if colMR < 3*rowMR {
		t.Errorf("column-major (%.3f) should miss much more than row-major (%.3f)", colMR, rowMR)
	}
}

func TestHierarchyAMAT(t *testing.T) {
	l1 := mustCache(t, CacheConfig{SizeBytes: 1024, BlockBytes: 64, Assoc: 2})
	l2 := mustCache(t, CacheConfig{SizeBytes: 16384, BlockBytes: 64, Assoc: 4})
	h := NewHierarchy(100,
		Level{Cache: l1, Latency: 1, Name: "L1"},
		Level{Cache: l2, Latency: 10, Name: "L2"},
	)
	// 32x32 matrix of 8-byte elements = 8 KiB: larger than L1, fits L2, so
	// the second pass hits in L2.
	h.Replay(RowMajorTrace(32, 0))
	h.Replay(RowMajorTrace(32, 0))
	amat := h.AMAT()
	if amat <= 1 || amat >= 100 {
		t.Errorf("AMAT = %.2f out of sensible range", amat)
	}
	if h.MemAccesses == 0 {
		t.Error("main memory must have been reached")
	}
	rep := h.Report()
	for _, want := range []string{"L1", "L2", "AMAT"} {
		if !contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
	// Bigger L2 must not make AMAT worse than no L2 at all.
	l1b := mustCache(t, CacheConfig{SizeBytes: 1024, BlockBytes: 64, Assoc: 2})
	h1 := NewHierarchy(100, Level{Cache: l1b, Latency: 1, Name: "L1"})
	h1.Replay(RowMajorTrace(32, 0))
	h1.Replay(RowMajorTrace(32, 0))
	if amat >= h1.AMAT() {
		t.Errorf("two-level AMAT %.2f should beat single-level %.2f", amat, h1.AMAT())
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		func() bool {
			for i := 0; i+len(sub) <= len(s); i++ {
				if s[i:i+len(sub)] == sub {
					return true
				}
			}
			return false
		}())
}

func TestStrideSweep(t *testing.T) {
	// Miss rate grows with stride until one miss per access past the block
	// size.
	missAt := func(stride uint64) float64 {
		c := mustCache(t, CacheConfig{SizeBytes: 1024, BlockBytes: 64, Assoc: 1})
		ReplayCache(c, StrideTrace(512, stride, 0))
		return c.Stats().MissRate()
	}
	m8, m64, m128 := missAt(8), missAt(64), missAt(128)
	if !(m8 < m64) {
		t.Errorf("stride 8 (%.3f) should miss less than stride 64 (%.3f)", m8, m64)
	}
	if m64 != 1 || m128 != 1 {
		t.Errorf("strides >= block size should miss every time: %f %f", m64, m128)
	}
}

// --- virtual memory ---

func TestVMBasicTranslation(t *testing.T) {
	vm, err := NewVM(VMConfig{PageBytes: 4096, NumPages: 16, NumFrames: 4, TLBEntries: 2, Policy: PageLRU})
	if err != nil {
		t.Fatal(err)
	}
	p1, err := vm.Translate(4096+123, false)
	if err != nil {
		t.Fatal(err)
	}
	if int(p1)%4096 != 123 {
		t.Errorf("offset not preserved: %d", p1)
	}
	// Same page again: TLB hit, same frame.
	p2, err := vm.Translate(4096+200, false)
	if err != nil {
		t.Fatal(err)
	}
	if p1/4096 != p2/4096 {
		t.Error("same page mapped to different frames")
	}
	s := vm.Stats()
	if s.PageFaults != 1 || s.TLBHits != 1 || s.TLBMisses != 1 {
		t.Errorf("stats: %+v", s)
	}
	if _, err := vm.Translate(1<<40, false); err == nil {
		t.Error("out-of-range address should error")
	}
}

func TestVMDirtyEviction(t *testing.T) {
	vm, err := NewVM(VMConfig{PageBytes: 4096, NumPages: 8, NumFrames: 2, Policy: PageFIFO})
	if err != nil {
		t.Fatal(err)
	}
	vm.Translate(0, true)      // page 0 dirty
	vm.Translate(4096, false)  // page 1 clean
	vm.Translate(8192, false)  // evicts page 0 (FIFO) -> dirty out
	vm.Translate(12288, false) // evicts page 1 -> clean
	s := vm.Stats()
	if s.Evictions != 2 || s.DirtyOuts != 1 {
		t.Errorf("stats: %+v", s)
	}
}

func TestFaultCountsClassicReference(t *testing.T) {
	// The textbook reference string 7,0,1,2,0,3,0,4,2,3,0,3,2 with 3
	// frames: hand simulation gives FIFO 10 faults and LRU 9.
	refs := []int{7, 0, 1, 2, 0, 3, 0, 4, 2, 3, 0, 3, 2}
	fifo, err := FaultCount(refs, 3, PageFIFO)
	if err != nil {
		t.Fatal(err)
	}
	lru, err := FaultCount(refs, 3, PageLRU)
	if err != nil {
		t.Fatal(err)
	}
	if fifo != 10 {
		t.Errorf("FIFO faults = %d, want 10", fifo)
	}
	if lru != 9 {
		t.Errorf("LRU faults = %d, want 9", lru)
	}
	clock, err := FaultCount(refs, 3, PageClock)
	if err != nil {
		t.Fatal(err)
	}
	if clock < lru || clock > fifo {
		t.Errorf("clock faults = %d, expected in [LRU=%d, FIFO=%d]", clock, lru, fifo)
	}
}

func TestBeladyAnomaly(t *testing.T) {
	// The classic FIFO anomaly string: more frames, more faults.
	refs := []int{1, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5}
	f3, _ := FaultCount(refs, 3, PageFIFO)
	f4, _ := FaultCount(refs, 4, PageFIFO)
	if f3 != 9 || f4 != 10 {
		t.Errorf("Belady: frames=3 -> %d (want 9), frames=4 -> %d (want 10)", f3, f4)
	}
	// LRU is a stack algorithm: never anomalous.
	l3, _ := FaultCount(refs, 3, PageLRU)
	l4, _ := FaultCount(refs, 4, PageLRU)
	if l4 > l3 {
		t.Errorf("LRU anomaly impossible: %d -> %d", l3, l4)
	}
}

func TestMoreFramesNeverHurtLRU(t *testing.T) {
	// Property: LRU fault count is monotone non-increasing in frames.
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		refs := make([]int, len(raw))
		for i, r := range raw {
			refs[i] = int(r % 8)
		}
		prev := int64(1 << 60)
		for frames := 1; frames <= 8; frames++ {
			n, err := FaultCount(refs, frames, PageLRU)
			if err != nil || n > prev {
				return false
			}
			prev = n
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestVMClockSecondChance(t *testing.T) {
	vm, err := NewVM(VMConfig{PageBytes: 4096, NumPages: 8, NumFrames: 2, Policy: PageClock})
	if err != nil {
		t.Fatal(err)
	}
	// Fill, re-reference page 0 (sets ref bit), then fault: page 1 (ref
	// cleared first... both have ref set; clock clears 0's bit, clears 1's
	// bit, wraps and evicts 0). Just check it terminates and evicts
	// something valid.
	vm.Translate(0, false)
	vm.Translate(4096, false)
	vm.Translate(0, false)
	vm.Translate(8192, false)
	if vm.Stats().Evictions != 1 {
		t.Errorf("evictions = %d", vm.Stats().Evictions)
	}
}

func TestRandomTraceDeterministic(t *testing.T) {
	a := RandomTrace(100, 1<<20, 0, 42)
	b := RandomTrace(100, 1<<20, 0, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must give same trace")
		}
	}
	c := RandomTrace(100, 1<<20, 0, 43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should differ")
	}
}

func TestAMATMonotoneInCacheSize(t *testing.T) {
	// For a fixed trace, growing L1 never increases AMAT.
	trace := RandomTrace(50000, 1<<15, 0, 99)
	prev := 1e18
	for _, size := range []int{1 << 9, 1 << 11, 1 << 13, 1 << 15, 1 << 17} {
		c := mustCache(t, CacheConfig{SizeBytes: size, BlockBytes: 64, Assoc: 2})
		h := NewHierarchy(100, Level{Cache: c, Latency: 1, Name: "L1"})
		h.Replay(trace)
		amat := h.AMAT()
		if amat > prev+1e-9 {
			t.Errorf("AMAT rose from %.3f to %.3f when cache grew to %d", prev, amat, size)
		}
		prev = amat
	}
}

func TestTLBCutsPageTableWalks(t *testing.T) {
	// Sequential access within few pages: a small TLB captures nearly all
	// translations after the first touch of each page.
	mk := func(entries int) VMStats {
		vm, err := NewVM(VMConfig{PageBytes: 4096, NumPages: 64, NumFrames: 32, TLBEntries: entries, Policy: PageLRU})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10000; i++ {
			addr := uint64((i % 8) * 4096) // 8-page working set, round robin
			if _, err := vm.Translate(addr+uint64(i%100), false); err != nil {
				t.Fatal(err)
			}
		}
		return vm.Stats()
	}
	with := mk(16)
	if rate := float64(with.TLBHits) / float64(with.Accesses); rate < 0.99 {
		t.Errorf("TLB hit rate = %.4f, want ~1 for an 8-page working set", rate)
	}
	// A 4-entry TLB thrashes on an 8-page round-robin (LRU worst case).
	small := mk(4)
	if small.TLBHits > with.TLBHits/10 {
		t.Errorf("4-entry TLB hits = %d, expected thrashing (16-entry: %d)", small.TLBHits, with.TLBHits)
	}
}
