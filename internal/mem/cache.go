// Package mem implements the CS31 memory-hierarchy unit as an executable
// model: parameterized set-associative caches (direct-mapped through fully
// associative, LRU/FIFO/random replacement, write-through or write-back
// with write-allocate), multi-level hierarchies with AMAT accounting,
// address-trace generators for the locality experiments (row-major versus
// column-major matrix traversal), and a virtual-memory simulator (page
// tables, TLB, demand paging with FIFO/LRU/Clock replacement).
package mem

import (
	"errors"
	"fmt"
)

// Replacement selects a cache line (or page) victim policy.
type Replacement int

// The replacement policies.
const (
	LRU Replacement = iota
	FIFO
	Random
)

// String returns the human-readable name.
func (r Replacement) String() string {
	switch r {
	case LRU:
		return "LRU"
	case FIFO:
		return "FIFO"
	case Random:
		return "random"
	}
	return "?"
}

// WritePolicy selects how stores interact with lower levels.
type WritePolicy int

// The write policies. Both allocate on write miss.
const (
	WriteBack WritePolicy = iota
	WriteThrough
)

// String returns the human-readable name.
func (w WritePolicy) String() string {
	if w == WriteBack {
		return "write-back"
	}
	return "write-through"
}

// CacheConfig parameterizes one cache level.
type CacheConfig struct {
	SizeBytes  int // total capacity
	BlockBytes int // line size
	Assoc      int // ways per set; 0 means fully associative
	Policy     Replacement
	Write      WritePolicy
}

// Validate checks the configuration for the power-of-two and divisibility
// constraints the address decomposition requires.
func (c CacheConfig) Validate() error {
	if c.SizeBytes <= 0 || c.BlockBytes <= 0 {
		return errors.New("mem: cache size and block size must be positive")
	}
	if !pow2(c.SizeBytes) || !pow2(c.BlockBytes) {
		return errors.New("mem: cache size and block size must be powers of two")
	}
	if c.BlockBytes > c.SizeBytes {
		return errors.New("mem: block larger than cache")
	}
	lines := c.SizeBytes / c.BlockBytes
	assoc := c.Assoc
	if assoc == 0 {
		assoc = lines
	}
	if assoc < 0 || assoc > lines || lines%assoc != 0 {
		return fmt.Errorf("mem: associativity %d incompatible with %d lines", assoc, lines)
	}
	if !pow2(lines / assoc) {
		return errors.New("mem: set count must be a power of two")
	}
	return nil
}

func pow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// CacheStats counts the events of one cache level.
type CacheStats struct {
	Accesses   int64
	Hits       int64
	Misses     int64
	Evictions  int64
	Writebacks int64 // dirty lines written down (write-back only)
	Writedowns int64 // stores forwarded down immediately (write-through)
}

// HitRate returns hits/accesses.
func (s CacheStats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// MissRate returns 1 - HitRate for nonzero access counts.
func (s CacheStats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

type line struct {
	valid bool
	dirty bool
	tag   uint64
	// lastUse and loadedAt implement LRU and FIFO with a logical clock.
	lastUse  int64
	loadedAt int64
}

// Cache is one level of set-associative cache.
type Cache struct {
	cfg   CacheConfig
	sets  [][]line
	assoc int
	nsets int
	boff  uint // block offset bits
	sbits uint // set index bits
	clock int64
	rng   uint64
	stats CacheStats
}

// NewCache builds a cache from a validated configuration.
func NewCache(cfg CacheConfig) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	lines := cfg.SizeBytes / cfg.BlockBytes
	assoc := cfg.Assoc
	if assoc == 0 {
		assoc = lines
	}
	nsets := lines / assoc
	c := &Cache{cfg: cfg, assoc: assoc, nsets: nsets, rng: 0x9e3779b97f4a7c15}
	c.sets = make([][]line, nsets)
	for i := range c.sets {
		c.sets[i] = make([]line, assoc)
	}
	for b := cfg.BlockBytes; b > 1; b >>= 1 {
		c.boff++
	}
	for s := nsets; s > 1; s >>= 1 {
		c.sbits++
	}
	return c, nil
}

// Config returns the cache's configuration.
func (c *Cache) Config() CacheConfig { return c.cfg }

// Stats returns a copy of the counters.
func (c *Cache) Stats() CacheStats { return c.stats }

// AddressParts is the tag/set/offset decomposition taught in lecture.
type AddressParts struct {
	Tag    uint64
	Set    uint64
	Offset uint64
}

// Split decomposes an address for this cache's geometry.
func (c *Cache) Split(addr uint64) AddressParts {
	return AddressParts{
		Offset: addr & ((1 << c.boff) - 1),
		Set:    (addr >> c.boff) & ((1 << c.sbits) - 1),
		Tag:    addr >> (c.boff + c.sbits),
	}
}

// AccessResult describes what one access did, for the hierarchy to act on.
type AccessResult struct {
	Hit           bool
	Evicted       bool
	WritebackAddr uint64 // valid when WroteBack
	WroteBack     bool
	WroteThrough  bool // store must also be sent down (write-through)
}

// Access performs a load (write=false) or store (write=true) of the given
// address. It returns what happened so a Hierarchy can propagate misses
// and writebacks to the next level.
func (c *Cache) Access(addr uint64, write bool) AccessResult {
	c.clock++
	c.stats.Accesses++
	p := c.Split(addr)
	set := c.sets[p.Set]

	for i := range set {
		if set[i].valid && set[i].tag == p.Tag {
			c.stats.Hits++
			set[i].lastUse = c.clock
			var res AccessResult
			res.Hit = true
			if write {
				if c.cfg.Write == WriteBack {
					set[i].dirty = true
				} else {
					c.stats.Writedowns++
					res.WroteThrough = true
				}
			}
			return res
		}
	}

	// Miss: choose a victim (write-allocate on stores too).
	c.stats.Misses++
	victim := c.pickVictim(set)
	var res AccessResult
	if set[victim].valid {
		c.stats.Evictions++
		res.Evicted = true
		if set[victim].dirty {
			c.stats.Writebacks++
			res.WroteBack = true
			res.WritebackAddr = c.reassemble(set[victim].tag, p.Set)
		}
	}
	set[victim] = line{valid: true, tag: p.Tag, lastUse: c.clock, loadedAt: c.clock}
	if write {
		if c.cfg.Write == WriteBack {
			set[victim].dirty = true
		} else {
			c.stats.Writedowns++
			res.WroteThrough = true
		}
	}
	return res
}

// Contains reports whether the address currently hits without touching
// the replacement state (a debugging probe).
func (c *Cache) Contains(addr uint64) bool {
	p := c.Split(addr)
	for _, ln := range c.sets[p.Set] {
		if ln.valid && ln.tag == p.Tag {
			return true
		}
	}
	return false
}

func (c *Cache) reassemble(tag, set uint64) uint64 {
	return tag<<(c.boff+c.sbits) | set<<c.boff
}

func (c *Cache) pickVictim(set []line) int {
	for i := range set {
		if !set[i].valid {
			return i
		}
	}
	switch c.cfg.Policy {
	case FIFO:
		best := 0
		for i := range set {
			if set[i].loadedAt < set[best].loadedAt {
				best = i
			}
		}
		return best
	case Random:
		c.rng ^= c.rng << 13
		c.rng ^= c.rng >> 7
		c.rng ^= c.rng << 17
		return int(c.rng % uint64(len(set)))
	default: // LRU
		best := 0
		for i := range set {
			if set[i].lastUse < set[best].lastUse {
				best = i
			}
		}
		return best
	}
}

// Flush invalidates every line, returning the number of dirty lines that
// a write-back cache would have written down.
func (c *Cache) Flush() int {
	dirty := 0
	for s := range c.sets {
		for i := range c.sets[s] {
			if c.sets[s][i].valid && c.sets[s][i].dirty {
				dirty++
			}
			c.sets[s][i] = line{}
		}
	}
	return dirty
}
