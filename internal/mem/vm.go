package mem

import (
	"errors"
	"fmt"
)

// This file implements the virtual-memory half of the CS31 memory unit:
// single-level page tables, a small fully associative TLB, and demand
// paging over a fixed pool of physical frames with FIFO, LRU, or Clock
// replacement. Address translation and the fault path follow the lecture
// diagrams exactly.

// PageReplacement selects the demand-paging victim policy.
type PageReplacement int

// The page replacement policies.
const (
	PageFIFO PageReplacement = iota
	PageLRU
	PageClock
)

// String returns the human-readable name.
func (p PageReplacement) String() string {
	switch p {
	case PageFIFO:
		return "FIFO"
	case PageLRU:
		return "LRU"
	case PageClock:
		return "clock"
	}
	return "?"
}

// VMConfig parameterizes the virtual memory system.
type VMConfig struct {
	PageBytes  int // page size (power of two)
	NumPages   int // virtual pages
	NumFrames  int // physical frames
	TLBEntries int // 0 disables the TLB
	Policy     PageReplacement
}

// VMStats counts translation events.
type VMStats struct {
	Accesses   int64
	TLBHits    int64
	TLBMisses  int64
	PageFaults int64
	Evictions  int64
	DirtyOuts  int64 // evicted pages that needed writing back to disk
}

// pte is a page-table entry.
type pte struct {
	present  bool
	frame    int
	dirty    bool
	ref      bool  // clock reference bit
	loadedAt int64 // FIFO
	lastUse  int64 // LRU
}

type tlbEntry struct {
	valid   bool
	vpn     int
	frame   int
	lastUse int64
}

// VM is the virtual-memory simulator.
type VM struct {
	cfg    VMConfig
	table  []pte
	tlb    []tlbEntry
	frames []int // frame -> vpn (-1 when free)
	hand   int   // clock hand
	clock  int64
	stats  VMStats
}

// NewVM builds a VM from the configuration.
func NewVM(cfg VMConfig) (*VM, error) {
	if cfg.PageBytes <= 0 || !pow2(cfg.PageBytes) {
		return nil, errors.New("mem: page size must be a positive power of two")
	}
	if cfg.NumPages <= 0 || cfg.NumFrames <= 0 {
		return nil, errors.New("mem: page and frame counts must be positive")
	}
	v := &VM{cfg: cfg}
	v.table = make([]pte, cfg.NumPages)
	v.tlb = make([]tlbEntry, cfg.TLBEntries)
	v.frames = make([]int, cfg.NumFrames)
	for i := range v.frames {
		v.frames[i] = -1
	}
	return v, nil
}

// Stats returns a copy of the counters.
func (v *VM) Stats() VMStats { return v.stats }

// Translate maps a virtual address to a physical address, simulating the
// TLB lookup, page-table walk, and (on absence) the page-fault path with
// replacement. write marks the page dirty.
func (v *VM) Translate(vaddr uint64, write bool) (uint64, error) {
	v.clock++
	v.stats.Accesses++
	vpn := int(vaddr) / v.cfg.PageBytes
	off := int(vaddr) % v.cfg.PageBytes
	if vpn < 0 || vpn >= v.cfg.NumPages {
		return 0, fmt.Errorf("mem: virtual address %#x out of range", vaddr)
	}

	// TLB probe.
	if len(v.tlb) > 0 {
		for i := range v.tlb {
			if v.tlb[i].valid && v.tlb[i].vpn == vpn {
				v.stats.TLBHits++
				v.tlb[i].lastUse = v.clock
				v.touch(vpn, write)
				return uint64(v.tlb[i].frame*v.cfg.PageBytes + off), nil
			}
		}
		v.stats.TLBMisses++
	}

	if !v.table[vpn].present {
		v.stats.PageFaults++
		if err := v.pageIn(vpn); err != nil {
			return nil2err(err)
		}
	}
	v.touch(vpn, write)
	frame := v.table[vpn].frame
	v.tlbInsert(vpn, frame)
	return uint64(frame*v.cfg.PageBytes + off), nil
}

func nil2err(err error) (uint64, error) { return 0, err }

func (v *VM) touch(vpn int, write bool) {
	v.table[vpn].lastUse = v.clock
	v.table[vpn].ref = true
	if write {
		v.table[vpn].dirty = true
	}
}

func (v *VM) tlbInsert(vpn, frame int) {
	if len(v.tlb) == 0 {
		return
	}
	victim := 0
	for i := range v.tlb {
		if !v.tlb[i].valid {
			victim = i
			break
		}
		if v.tlb[i].lastUse < v.tlb[victim].lastUse {
			victim = i
		}
	}
	v.tlb[victim] = tlbEntry{valid: true, vpn: vpn, frame: frame, lastUse: v.clock}
}

func (v *VM) tlbShootdown(vpn int) {
	for i := range v.tlb {
		if v.tlb[i].valid && v.tlb[i].vpn == vpn {
			v.tlb[i].valid = false
		}
	}
}

func (v *VM) pageIn(vpn int) error {
	// Free frame available?
	for f, owner := range v.frames {
		if owner < 0 {
			v.install(vpn, f)
			return nil
		}
	}
	// Evict per policy.
	victimFrame := v.pickPageVictim()
	victimVPN := v.frames[victimFrame]
	v.stats.Evictions++
	if v.table[victimVPN].dirty {
		v.stats.DirtyOuts++
	}
	v.table[victimVPN] = pte{}
	v.tlbShootdown(victimVPN)
	v.install(vpn, victimFrame)
	return nil
}

func (v *VM) install(vpn, frame int) {
	v.frames[frame] = vpn
	v.table[vpn] = pte{present: true, frame: frame, loadedAt: v.clock, lastUse: v.clock, ref: true}
}

func (v *VM) pickPageVictim() int {
	switch v.cfg.Policy {
	case PageLRU:
		best := 0
		for f, vpn := range v.frames {
			if v.table[vpn].lastUse < v.table[v.frames[best]].lastUse {
				best = f
			}
		}
		return best
	case PageClock:
		for {
			vpn := v.frames[v.hand]
			if !v.table[vpn].ref {
				victim := v.hand
				v.hand = (v.hand + 1) % len(v.frames)
				return victim
			}
			v.table[vpn].ref = false
			v.hand = (v.hand + 1) % len(v.frames)
		}
	default: // FIFO
		best := 0
		for f, vpn := range v.frames {
			if v.table[vpn].loadedAt < v.table[v.frames[best]].loadedAt {
				best = f
			}
		}
		return best
	}
}

// FaultCount runs a reference string (virtual page numbers) through a
// fresh VM with the given number of frames and policy, returning the
// page-fault count — the classic Belady workbook exercise.
func FaultCount(refs []int, frames int, policy PageReplacement) (int64, error) {
	maxPage := 0
	for _, r := range refs {
		if r > maxPage {
			maxPage = r
		}
	}
	vm, err := NewVM(VMConfig{
		PageBytes: 4096, NumPages: maxPage + 1, NumFrames: frames, Policy: policy,
	})
	if err != nil {
		return 0, err
	}
	for _, r := range refs {
		if _, err := vm.Translate(uint64(r)*4096, false); err != nil {
			return 0, err
		}
	}
	return vm.Stats().PageFaults, nil
}
