package metrics_test

import (
	"fmt"
	"time"

	"repro/internal/metrics"
)

// Amdahl's law: a 10% serial fraction caps speedup at 10x.
func Example() {
	for _, p := range []int{1, 2, 4, 8, 1024} {
		fmt.Printf("p=%-5d speedup=%.2f\n", p, metrics.AmdahlSpeedup(0.1, p))
	}
	fmt.Printf("limit=%.0f\n", metrics.AmdahlLimit(0.1))
	// Output:
	// p=1     speedup=1.00
	// p=2     speedup=1.82
	// p=4     speedup=3.08
	// p=8     speedup=4.71
	// p=1024  speedup=9.91
	// limit=10
}

// BuildTable converts raw timings into the lab-report scalability table.
func ExampleBuildTable() {
	tbl, err := metrics.BuildTable([]metrics.Measurement{
		{Workers: 1, Elapsed: 800 * time.Millisecond},
		{Workers: 2, Elapsed: 420 * time.Millisecond},
		{Workers: 4, Elapsed: 230 * time.Millisecond},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("4-worker speedup %.2f efficiency %.2f\n",
		tbl.Rows[2].Speedup, tbl.Rows[2].Efficiency)
	// Output: 4-worker speedup 3.48 efficiency 0.87
}
