package metrics

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"time"
)

// histBuckets is the number of exponential latency buckets: bucket i
// covers durations up to 1µs << i, so the range runs 1µs .. ~8.4s with
// the last bucket absorbing everything larger.
const histBuckets = 24

// Histogram is a concurrency-safe latency histogram with exponentially
// sized buckets — the instrument a server attaches to its request path
// so a scalability study can report tail latency alongside throughput.
// The zero value is ready to use.
type Histogram struct {
	mu     sync.Mutex
	counts [histBuckets]int64
	n      int64
	sum    time.Duration
	min    time.Duration
	max    time.Duration
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// histBucket returns the bucket index for one observation.
func histBucket(d time.Duration) int {
	b := 0
	for bound := time.Microsecond; b < histBuckets-1 && d > bound; bound <<= 1 {
		b++
	}
	return b
}

// histBound returns the inclusive upper bound of bucket i.
func histBound(i int) time.Duration { return time.Microsecond << i }

// Observe records one duration. Negative durations count as zero.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.mu.Lock()
	h.counts[histBucket(d)]++
	h.n++
	h.sum += d
	if h.n == 1 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Mean returns the average observed duration (0 when empty).
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0
	}
	return h.sum / time.Duration(h.n)
}

// Min returns the smallest observation (0 when empty).
func (h *Histogram) Min() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.min
}

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Merge folds o's observations into h — how a cluster report aggregates
// the per-verb histograms of many nodes into one tail. o's state is
// snapshotted under its own lock first, then folded in under h's, so
// the two locks are never held together and h.Merge(o) can run
// concurrently with observers on either side.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o == h {
		return
	}
	o.mu.Lock()
	counts, n, sum, min, max := o.counts, o.n, o.sum, o.min, o.max
	o.mu.Unlock()
	if n == 0 {
		return
	}
	h.mu.Lock()
	for i, c := range counts {
		h.counts[i] += c
	}
	if h.n == 0 || min < h.min {
		h.min = min
	}
	if max > h.max {
		h.max = max
	}
	h.n += n
	h.sum += sum
	h.mu.Unlock()
}

// Quantile returns an upper bound on the q-quantile (q in [0,1]) at
// bucket resolution, clamped to the observed maximum.
func (h *Histogram) Quantile(q float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return quantile(h.counts, h.n, h.max, q)
}

func quantile(counts [histBuckets]int64, n int64, max time.Duration, q float64) time.Duration {
	if n == 0 {
		return 0
	}
	q = math.Min(1, math.Max(0, q))
	target := int64(math.Ceil(q * float64(n)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += counts[i]
		if cum >= target {
			// The last bucket is unbounded; its honest bound is the max.
			if b := histBound(i); i < histBuckets-1 && b < max {
				return b
			}
			return max
		}
	}
	return max
}

// String renders the summary line and a bar per occupied bucket.
func (h *Histogram) String() string {
	h.mu.Lock()
	counts, n, sum, min, max := h.counts, h.n, h.sum, h.min, h.max
	h.mu.Unlock()
	if n == 0 {
		return "latency: no observations\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "latency: n=%d min=%v mean=%v p50=%v p95=%v p99=%v p999=%v max=%v\n",
		n, min, (sum / time.Duration(n)).Round(time.Nanosecond),
		quantile(counts, n, max, 0.50), quantile(counts, n, max, 0.95),
		quantile(counts, n, max, 0.99), quantile(counts, n, max, 0.999), max)
	lo, hi, peak := histBuckets, 0, int64(0)
	for i, c := range counts {
		if c == 0 {
			continue
		}
		if i < lo {
			lo = i
		}
		if i > hi {
			hi = i
		}
		if c > peak {
			peak = c
		}
	}
	for i := lo; i <= hi; i++ {
		bar := strings.Repeat("#", int(40*counts[i]/peak))
		fmt.Fprintf(&b, "%10s %8d |%s\n", "<="+histBound(i).String(), counts[i], bar)
	}
	return b.String()
}
