package metrics

import (
	"fmt"
	"math"
	"strings"
)

// CounterSet is an ordered name -> value table for runtime counters
// (scheduler steals, task counts, utilization) so benchmark drivers can
// print them next to the speedup tables without inventing a format each
// time.
type CounterSet struct {
	names  []string
	values map[string]float64
}

// Add appends (or overwrites) a counter, preserving first-add order.
func (c *CounterSet) Add(name string, value float64) {
	if c.values == nil {
		c.values = make(map[string]float64)
	}
	if _, ok := c.values[name]; !ok {
		c.names = append(c.names, name)
	}
	c.values[name] = value
}

// Get returns a counter's value and whether it exists.
func (c *CounterSet) Get(name string) (float64, bool) {
	v, ok := c.values[name]
	return v, ok
}

// Merge sums other's counters into c: names already present add their
// values, new names append in other's order. Aggregators (per-node pool
// counters, per-scenario chaos counters) fold many sets into one total
// with it instead of re-implementing the loop.
func (c *CounterSet) Merge(other *CounterSet) {
	for _, name := range other.names {
		prev := c.values[name] // zero when absent
		c.Add(name, prev+other.values[name])
	}
}

// Names returns the counters in insertion order.
func (c *CounterSet) Names() []string {
	return append([]string(nil), c.names...)
}

// String renders the counters as an aligned two-column table. Integral
// values print without a fraction.
func (c *CounterSet) String() string {
	width := 0
	for _, n := range c.names {
		if len(n) > width {
			width = len(n)
		}
	}
	var b strings.Builder
	for _, n := range c.names {
		v := c.values[n]
		if v == math.Trunc(v) && math.Abs(v) < 1e15 {
			fmt.Fprintf(&b, "%-*s %12d\n", width, n, int64(v))
		} else {
			fmt.Fprintf(&b, "%-*s %12.3f\n", width, n, v)
		}
	}
	return b.String()
}
