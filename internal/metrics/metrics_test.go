package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestSpeedupEfficiency(t *testing.T) {
	if s := Speedup(8*time.Second, 2*time.Second); s != 4 {
		t.Errorf("Speedup = %f", s)
	}
	if e := Efficiency(8*time.Second, 2*time.Second, 4); e != 1 {
		t.Errorf("Efficiency = %f", e)
	}
	if e := Efficiency(8*time.Second, 4*time.Second, 4); e != 0.5 {
		t.Errorf("Efficiency = %f", e)
	}
	if !math.IsNaN(Speedup(time.Second, 0)) {
		t.Error("zero tp should be NaN")
	}
}

func TestAmdahl(t *testing.T) {
	// f=0: perfect scaling.
	if s := AmdahlSpeedup(0, 8); s != 8 {
		t.Errorf("f=0, p=8: %f", s)
	}
	// f=1: no scaling.
	if s := AmdahlSpeedup(1, 64); s != 1 {
		t.Errorf("f=1: %f", s)
	}
	// The textbook example: f=0.1, p=10 -> 1/(0.1+0.09) ≈ 5.26.
	if s := AmdahlSpeedup(0.1, 10); math.Abs(s-5.263) > 0.01 {
		t.Errorf("f=0.1, p=10: %f", s)
	}
	if l := AmdahlLimit(0.1); math.Abs(l-10) > 1e-9 {
		t.Errorf("limit(0.1) = %f", l)
	}
	if !math.IsInf(AmdahlLimit(0), 1) {
		t.Error("limit(0) should be +Inf")
	}
	if !math.IsNaN(AmdahlSpeedup(-0.1, 4)) || !math.IsNaN(AmdahlSpeedup(0.5, 0)) {
		t.Error("invalid inputs should be NaN")
	}
}

func TestAmdahlMonotoneAndBounded(t *testing.T) {
	f := func(fRaw uint8, pRaw uint8) bool {
		fr := float64(fRaw%100) / 100
		p := int(pRaw%63) + 2
		s := AmdahlSpeedup(fr, p)
		sNext := AmdahlSpeedup(fr, p+1)
		// Monotone in p, bounded by p and by 1/f.
		if sNext < s-1e-12 {
			return false
		}
		if s > float64(p)+1e-9 {
			return false
		}
		if fr > 0 && s > 1/fr+1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGustafson(t *testing.T) {
	// f=0 -> p; f=1 -> 1.
	if s := GustafsonSpeedup(0, 16); s != 16 {
		t.Errorf("f=0: %f", s)
	}
	if s := GustafsonSpeedup(1, 16); s != 1 {
		t.Errorf("f=1: %f", s)
	}
	// Gustafson is always >= Amdahl for the same f, p (scaled vs fixed).
	for _, p := range []int{2, 4, 8, 32} {
		for _, fr := range []float64{0.05, 0.2, 0.5} {
			if GustafsonSpeedup(fr, p) < AmdahlSpeedup(fr, p)-1e-9 {
				t.Errorf("Gustafson < Amdahl at f=%v p=%d", fr, p)
			}
		}
	}
}

func TestKarpFlattRecoversAmdahlF(t *testing.T) {
	// If the measured speedup exactly follows Amdahl with serial fraction
	// f, Karp-Flatt must recover f.
	for _, fr := range []float64{0.01, 0.1, 0.3} {
		for _, p := range []int{2, 4, 8, 16} {
			s := AmdahlSpeedup(fr, p)
			kf, err := KarpFlatt(s, p)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(kf-fr) > 1e-9 {
				t.Errorf("KarpFlatt(Amdahl(%v), %d) = %v", fr, p, kf)
			}
		}
	}
	if _, err := KarpFlatt(2, 1); err == nil {
		t.Error("p=1 should error")
	}
	if _, err := KarpFlatt(-1, 4); err == nil {
		t.Error("negative speedup should error")
	}
}

func TestTransferModel(t *testing.T) {
	m := TransferModel{Latency: time.Millisecond, Bandwidth: 1e6} // 1 MB/s
	if got := m.Time(0); got != time.Millisecond {
		t.Errorf("zero bytes: %v", got)
	}
	// 1 MB at 1 MB/s = 1s + 1ms.
	if got := m.Time(1e6); got != time.Second+time.Millisecond {
		t.Errorf("1MB: %v", got)
	}
	// Effective bandwidth approaches β for large transfers, is tiny for
	// small ones.
	small := m.EffectiveBandwidth(10)
	large := m.EffectiveBandwidth(100e6)
	if small > 1e5 {
		t.Errorf("small transfer bandwidth %f too high", small)
	}
	if large < 0.9e6 {
		t.Errorf("large transfer bandwidth %f too low", large)
	}
}

func TestBuildTable(t *testing.T) {
	ms := []Measurement{
		{Workers: 4, Elapsed: 300 * time.Millisecond},
		{Workers: 1, Elapsed: 1000 * time.Millisecond},
		{Workers: 2, Elapsed: 550 * time.Millisecond},
		{Workers: 8, Elapsed: 200 * time.Millisecond},
	}
	tbl, err := BuildTable(ms)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 || tbl.Rows[0].Workers != 1 || tbl.Rows[3].Workers != 8 {
		t.Fatalf("rows: %+v", tbl.Rows)
	}
	if tbl.Rows[0].Speedup != 1 {
		t.Errorf("baseline speedup = %f", tbl.Rows[0].Speedup)
	}
	if got := tbl.Rows[2].Speedup; math.Abs(got-1000.0/300) > 1e-9 {
		t.Errorf("4-worker speedup = %f", got)
	}
	if !math.IsNaN(tbl.Rows[0].KarpFlatt) {
		t.Error("KarpFlatt at p=1 should be NaN")
	}
	if tbl.FitF <= 0 || tbl.FitF >= 1 {
		t.Errorf("fitted serial fraction = %f", tbl.FitF)
	}
	s := tbl.String()
	for _, want := range []string{"workers", "speedup", "karp-flatt"} {
		if !strings.Contains(s, want) {
			t.Errorf("table missing %q:\n%s", want, s)
		}
	}
}

func TestBuildTableErrors(t *testing.T) {
	if _, err := BuildTable(nil); err == nil {
		t.Error("empty should error")
	}
	if _, err := BuildTable([]Measurement{{Workers: 2, Elapsed: time.Second}}); err == nil {
		t.Error("missing baseline should error")
	}
}

func TestCurves(t *testing.T) {
	ws := []int{1, 2, 4, 8}
	a := AmdahlCurve(0.2, ws)
	g := GustafsonCurve(0.2, ws)
	if len(a) != 4 || len(g) != 4 {
		t.Fatal("curve lengths")
	}
	for i := 1; i < len(a); i++ {
		if a[i] < a[i-1] || g[i] < g[i-1] {
			t.Error("curves must be monotone")
		}
	}
	if a[3] > g[3] {
		t.Error("Gustafson should dominate at p=8")
	}
}

func TestIsoefficiency(t *testing.T) {
	overhead := func(p int) float64 { return float64(p) * math.Log2(float64(p)+1) }
	w, err := Isoefficiency(0.8, overhead, []int{2, 4, 8, 16})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(w); i++ {
		if w[i] <= w[i-1] {
			t.Error("required work must grow with p")
		}
	}
	if _, err := Isoefficiency(1.5, overhead, []int{2}); err == nil {
		t.Error("efficiency > 1 should error")
	}
}
