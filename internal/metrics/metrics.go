// Package metrics implements the performance laws and experiment
// scaffolding of the CS31 "evaluating parallel performance" unit:
// speedup, efficiency, Amdahl's and Gustafson's laws, the Karp-Flatt
// experimentally determined serial fraction, latency/bandwidth transfer
// modelling, and formatted scalability tables for lab reports.
package metrics

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Speedup returns t1/tp — how many times faster p workers ran.
func Speedup(t1, tp time.Duration) float64 {
	if tp <= 0 {
		return math.NaN()
	}
	return float64(t1) / float64(tp)
}

// Efficiency returns speedup divided by the worker count.
func Efficiency(t1, tp time.Duration, p int) float64 {
	if p <= 0 {
		return math.NaN()
	}
	return Speedup(t1, tp) / float64(p)
}

// AmdahlSpeedup predicts the speedup on p processors of a program whose
// serial fraction is f: 1 / (f + (1-f)/p).
func AmdahlSpeedup(serialFraction float64, p int) float64 {
	if p <= 0 || serialFraction < 0 || serialFraction > 1 {
		return math.NaN()
	}
	return 1 / (serialFraction + (1-serialFraction)/float64(p))
}

// AmdahlLimit is the asymptotic speedup bound 1/f as p grows without
// bound — the punchline of the lecture.
func AmdahlLimit(serialFraction float64) float64 {
	if serialFraction <= 0 {
		return math.Inf(1)
	}
	return 1 / serialFraction
}

// GustafsonSpeedup predicts scaled speedup when the problem grows with p:
// p - f*(p-1), for serial fraction f measured on the parallel system.
func GustafsonSpeedup(serialFraction float64, p int) float64 {
	if p <= 0 || serialFraction < 0 || serialFraction > 1 {
		return math.NaN()
	}
	return float64(p) - serialFraction*float64(p-1)
}

// KarpFlatt computes the experimentally determined serial fraction from a
// measured speedup s on p processors: (1/s - 1/p) / (1 - 1/p). Rising
// Karp-Flatt values across p expose overhead growth that Amdahl's fixed-f
// model cannot.
func KarpFlatt(speedup float64, p int) (float64, error) {
	if p <= 1 {
		return 0, errors.New("metrics: Karp-Flatt needs p > 1")
	}
	if speedup <= 0 {
		return 0, errors.New("metrics: speedup must be positive")
	}
	invP := 1 / float64(p)
	return (1/speedup - invP) / (1 - invP), nil
}

// FitSerialFraction inverts Amdahl's law on one measurement: given
// observed speedup at p, return the f that explains it (clamped to
// [0, 1]).
func FitSerialFraction(speedup float64, p int) float64 {
	f, err := KarpFlatt(speedup, p)
	if err != nil {
		return math.NaN()
	}
	return math.Min(1, math.Max(0, f))
}

// TransferModel is the latency+bandwidth communication cost model
// (T = α + n/β) used for the message-passing cost discussions.
type TransferModel struct {
	Latency   time.Duration // α: per-message cost
	Bandwidth float64       // β: bytes per second
}

// Time returns the modelled transfer time of n bytes.
func (m TransferModel) Time(n int64) time.Duration {
	if m.Bandwidth <= 0 {
		return m.Latency
	}
	return m.Latency + time.Duration(float64(n)/m.Bandwidth*float64(time.Second))
}

// EffectiveBandwidth returns achieved bytes/sec for an n-byte transfer —
// the half-power-point analysis from lecture.
func (m TransferModel) EffectiveBandwidth(n int64) float64 {
	t := m.Time(n)
	if t <= 0 {
		return math.Inf(1)
	}
	return float64(n) / t.Seconds()
}

// Measurement is one row of a scalability study.
type Measurement struct {
	Workers int
	Elapsed time.Duration
}

// ScalabilityTable is the artifact the Parallel Game of Life lab asks
// students to produce: measured time, speedup, efficiency, and Karp-Flatt
// serial fraction per worker count, plus the Amdahl fit.
type ScalabilityTable struct {
	Rows []Row
	// FitF is the serial fraction fitted from the largest worker count.
	FitF float64
}

// Row is one line of the table.
type Row struct {
	Workers    int
	Elapsed    time.Duration
	Speedup    float64
	Efficiency float64
	KarpFlatt  float64 // NaN for p = 1
}

// BuildTable converts raw measurements (which must include workers = 1)
// into the derived table.
func BuildTable(ms []Measurement) (ScalabilityTable, error) {
	if len(ms) == 0 {
		return ScalabilityTable{}, errors.New("metrics: no measurements")
	}
	sorted := append([]Measurement(nil), ms...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Workers < sorted[j].Workers })
	if sorted[0].Workers != 1 {
		return ScalabilityTable{}, errors.New("metrics: need a workers=1 baseline")
	}
	t1 := sorted[0].Elapsed
	var tbl ScalabilityTable
	for _, m := range sorted {
		r := Row{
			Workers:    m.Workers,
			Elapsed:    m.Elapsed,
			Speedup:    Speedup(t1, m.Elapsed),
			Efficiency: Efficiency(t1, m.Elapsed, m.Workers),
			KarpFlatt:  math.NaN(),
		}
		if m.Workers > 1 {
			if kf, err := KarpFlatt(r.Speedup, m.Workers); err == nil {
				r.KarpFlatt = kf
			}
		}
		tbl.Rows = append(tbl.Rows, r)
	}
	last := tbl.Rows[len(tbl.Rows)-1]
	if last.Workers > 1 {
		tbl.FitF = FitSerialFraction(last.Speedup, last.Workers)
	}
	return tbl, nil
}

// String renders the table in the lab-report format.
func (t ScalabilityTable) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%8s %14s %9s %11s %10s %10s\n",
		"workers", "time", "speedup", "efficiency", "karp-flatt", "amdahl(f)")
	for _, r := range t.Rows {
		kf := "-"
		if !math.IsNaN(r.KarpFlatt) {
			kf = fmt.Sprintf("%.4f", r.KarpFlatt)
		}
		fmt.Fprintf(&b, "%8d %14v %9.3f %11.3f %10s %10.3f\n",
			r.Workers, r.Elapsed.Round(time.Microsecond), r.Speedup, r.Efficiency, kf,
			AmdahlSpeedup(t.FitF, r.Workers))
	}
	return b.String()
}

// AmdahlCurve tabulates predicted speedup for each worker count — the
// figure every parallel-computing course draws.
func AmdahlCurve(serialFraction float64, workers []int) []float64 {
	out := make([]float64, len(workers))
	for i, p := range workers {
		out[i] = AmdahlSpeedup(serialFraction, p)
	}
	return out
}

// GustafsonCurve tabulates scaled speedup for each worker count.
func GustafsonCurve(serialFraction float64, workers []int) []float64 {
	out := make([]float64, len(workers))
	for i, p := range workers {
		out[i] = GustafsonSpeedup(serialFraction, p)
	}
	return out
}

// Isoefficiency reports the problem-size growth needed to hold efficiency
// constant given overhead To(p) ~ c*p*log(p) (the generic tree-reduction
// overhead): W = K * To. It returns the required work for each p with
// K = e/(1-e) for target efficiency e.
func Isoefficiency(targetEfficiency float64, overhead func(p int) float64, workers []int) ([]float64, error) {
	if targetEfficiency <= 0 || targetEfficiency >= 1 {
		return nil, errors.New("metrics: target efficiency must be in (0,1)")
	}
	k := targetEfficiency / (1 - targetEfficiency)
	out := make([]float64, len(workers))
	for i, p := range workers {
		out[i] = k * overhead(p)
	}
	return out, nil
}
