package metrics

import (
	"strings"
	"testing"
)

func TestCounterSet(t *testing.T) {
	var cs CounterSet
	cs.Add("tasks", 1024)
	cs.Add("steals", 37)
	cs.Add("steal-rate", 0.0361)
	cs.Add("tasks", 2048) // overwrite keeps position
	if got := cs.Names(); len(got) != 3 || got[0] != "tasks" || got[2] != "steal-rate" {
		t.Fatalf("names = %v", got)
	}
	if v, ok := cs.Get("tasks"); !ok || v != 2048 {
		t.Fatalf("tasks = %v, %v", v, ok)
	}
	if _, ok := cs.Get("missing"); ok {
		t.Fatal("missing key found")
	}
	s := cs.String()
	if !strings.Contains(s, "2048") || !strings.Contains(s, "0.036") {
		t.Fatalf("render: %q", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("want 3 lines, got %d: %q", len(lines), s)
	}
}

func TestCounterSetMerge(t *testing.T) {
	var a, b CounterSet
	a.Add("shared", 10)
	a.Add("only-a", 1)
	b.Add("shared", 32)
	b.Add("only-b", 5)
	a.Merge(&b)
	if v, _ := a.Get("shared"); v != 42 {
		t.Errorf("shared = %v, want 42", v)
	}
	if v, _ := a.Get("only-b"); v != 5 {
		t.Errorf("only-b = %v, want 5", v)
	}
	if got := a.Names(); len(got) != 3 || got[0] != "shared" || got[2] != "only-b" {
		t.Errorf("names after merge = %v", got)
	}
	// Merging into an empty set copies.
	var c CounterSet
	c.Merge(&a)
	if v, _ := c.Get("shared"); v != 42 {
		t.Errorf("copy-merge shared = %v", v)
	}
}
