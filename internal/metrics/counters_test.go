package metrics

import (
	"strings"
	"testing"
)

func TestCounterSet(t *testing.T) {
	var cs CounterSet
	cs.Add("tasks", 1024)
	cs.Add("steals", 37)
	cs.Add("steal-rate", 0.0361)
	cs.Add("tasks", 2048) // overwrite keeps position
	if got := cs.Names(); len(got) != 3 || got[0] != "tasks" || got[2] != "steal-rate" {
		t.Fatalf("names = %v", got)
	}
	if v, ok := cs.Get("tasks"); !ok || v != 2048 {
		t.Fatalf("tasks = %v, %v", v, ok)
	}
	if _, ok := cs.Get("missing"); ok {
		t.Fatal("missing key found")
	}
	s := cs.String()
	if !strings.Contains(s, "2048") || !strings.Contains(s, "0.036") {
		t.Fatalf("render: %q", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("want 3 lines, got %d: %q", len(lines), s)
	}
}
