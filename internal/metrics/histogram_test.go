package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Error("empty histogram should report zeros")
	}
	if !strings.Contains(h.String(), "no observations") {
		t.Errorf("empty String = %q", h.String())
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 90; i++ {
		h.Observe(10 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(5 * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("Count = %d", h.Count())
	}
	wantMean := (90*10*time.Microsecond + 10*5*time.Millisecond) / 100
	if h.Mean() != wantMean {
		t.Errorf("Mean = %v, want %v", h.Mean(), wantMean)
	}
	if h.Min() != 10*time.Microsecond || h.Max() != 5*time.Millisecond {
		t.Errorf("Min/Max = %v/%v", h.Min(), h.Max())
	}
	// p50 lands in the 10µs bucket (bound 16µs); p99 in the 5ms bucket.
	if p50 := h.Quantile(0.5); p50 < 10*time.Microsecond || p50 > 16*time.Microsecond {
		t.Errorf("p50 = %v", p50)
	}
	if p99 := h.Quantile(0.99); p99 != 5*time.Millisecond {
		t.Errorf("p99 = %v, want the clamped max", p99)
	}
	// Quantiles must be monotone in q.
	prev := time.Duration(0)
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		v := h.Quantile(q)
		if v < prev {
			t.Errorf("Quantile(%v) = %v < previous %v", q, v, prev)
		}
		prev = v
	}
	s := h.String()
	if !strings.Contains(s, "n=100") || !strings.Contains(s, "p99=") || !strings.Contains(s, "|") {
		t.Errorf("String missing fields:\n%s", s)
	}
}

func TestHistogramEdgeObservations(t *testing.T) {
	var h Histogram
	h.Observe(-time.Second) // counted as zero
	h.Observe(0)
	h.Observe(time.Hour) // beyond the last bound: absorbed, max exact
	if h.Count() != 3 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Max() != time.Hour {
		t.Errorf("Max = %v", h.Max())
	}
	if h.Quantile(1) != time.Hour {
		t.Errorf("p100 = %v, want observed max", h.Quantile(1))
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				h.Observe(time.Duration(i) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 4000 {
		t.Errorf("Count = %d, want 4000", h.Count())
	}
}
