package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Error("empty histogram should report zeros")
	}
	if !strings.Contains(h.String(), "no observations") {
		t.Errorf("empty String = %q", h.String())
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 90; i++ {
		h.Observe(10 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(5 * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("Count = %d", h.Count())
	}
	wantMean := (90*10*time.Microsecond + 10*5*time.Millisecond) / 100
	if h.Mean() != wantMean {
		t.Errorf("Mean = %v, want %v", h.Mean(), wantMean)
	}
	if h.Min() != 10*time.Microsecond || h.Max() != 5*time.Millisecond {
		t.Errorf("Min/Max = %v/%v", h.Min(), h.Max())
	}
	// p50 lands in the 10µs bucket (bound 16µs); p99 in the 5ms bucket.
	if p50 := h.Quantile(0.5); p50 < 10*time.Microsecond || p50 > 16*time.Microsecond {
		t.Errorf("p50 = %v", p50)
	}
	if p99 := h.Quantile(0.99); p99 != 5*time.Millisecond {
		t.Errorf("p99 = %v, want the clamped max", p99)
	}
	// Quantiles must be monotone in q.
	prev := time.Duration(0)
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		v := h.Quantile(q)
		if v < prev {
			t.Errorf("Quantile(%v) = %v < previous %v", q, v, prev)
		}
		prev = v
	}
	s := h.String()
	if !strings.Contains(s, "n=100") || !strings.Contains(s, "p99=") || !strings.Contains(s, "|") {
		t.Errorf("String missing fields:\n%s", s)
	}
}

func TestHistogramP999(t *testing.T) {
	h := NewHistogram()
	// 999 fast observations and one slow outlier: p99 must stay in the
	// fast bucket while p999 reaches up to the outlier — the overload
	// tail p99 alone cannot see.
	for i := 0; i < 999; i++ {
		h.Observe(10 * time.Microsecond)
	}
	h.Observe(100 * time.Millisecond)
	if p99 := h.Quantile(0.99); p99 > 16*time.Microsecond {
		t.Errorf("p99 = %v, want inside the fast bucket", p99)
	}
	if p999 := h.Quantile(0.999); p999 > 16*time.Microsecond {
		// With n=1000 the 0.999 target is the 999th observation — still
		// fast — so also check the rendered column exists and is monotone
		// against p100.
		t.Logf("p999 = %v (999th of 1000 is still fast)", p999)
	}
	if h.Quantile(1) != 100*time.Millisecond {
		t.Errorf("p100 = %v, want the outlier", h.Quantile(1))
	}
	// Push past 1/1000 outliers so p999 must include the tail.
	for i := 0; i < 9; i++ {
		h.Observe(100 * time.Millisecond)
	}
	if p999 := h.Quantile(0.999); p999 != 100*time.Millisecond {
		t.Errorf("p999 = %v, want the clamped outlier bucket", p999)
	}
	if !strings.Contains(h.String(), "p999=") {
		t.Errorf("String missing p999 column:\n%s", h.String())
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for i := 0; i < 50; i++ {
		a.Observe(10 * time.Microsecond)
	}
	for i := 0; i < 50; i++ {
		b.Observe(5 * time.Millisecond)
	}
	a.Merge(b)
	if a.Count() != 100 {
		t.Fatalf("merged Count = %d, want 100", a.Count())
	}
	wantMean := (50*10*time.Microsecond + 50*5*time.Millisecond) / 100
	if a.Mean() != wantMean {
		t.Errorf("merged Mean = %v, want %v", a.Mean(), wantMean)
	}
	if a.Min() != 10*time.Microsecond || a.Max() != 5*time.Millisecond {
		t.Errorf("merged Min/Max = %v/%v", a.Min(), a.Max())
	}
	if p99 := a.Quantile(0.99); p99 != 5*time.Millisecond {
		t.Errorf("merged p99 = %v", p99)
	}
	// b is untouched.
	if b.Count() != 50 {
		t.Errorf("source Count = %d after merge, want 50", b.Count())
	}
	// Merging empty or self is a no-op.
	before := a.Count()
	a.Merge(NewHistogram())
	a.Merge(nil)
	a.Merge(a)
	if a.Count() != before {
		t.Errorf("no-op merges changed Count to %d", a.Count())
	}
	// Merge into an empty histogram adopts min correctly.
	c := NewHistogram()
	c.Merge(a)
	if c.Min() != 10*time.Microsecond || c.Count() != before {
		t.Errorf("empty-target merge: min=%v n=%d", c.Min(), c.Count())
	}
}

func TestHistogramEdgeObservations(t *testing.T) {
	var h Histogram
	h.Observe(-time.Second) // counted as zero
	h.Observe(0)
	h.Observe(time.Hour) // beyond the last bound: absorbed, max exact
	if h.Count() != 3 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Max() != time.Hour {
		t.Errorf("Max = %v", h.Max())
	}
	if h.Quantile(1) != time.Hour {
		t.Errorf("p100 = %v, want observed max", h.Quantile(1))
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				h.Observe(time.Duration(i) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 4000 {
		t.Errorf("Count = %d, want 4000", h.Count())
	}
}
