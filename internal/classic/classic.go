// Package classic implements the classic synchronization problems from
// the CS31/CS45 curriculum on top of the pthread package: the bounded
// buffer (producer/consumer), readers/writers, dining philosophers (with
// the deadlocking naive strategy and two fixes), the sleeping barber, and
// the cigarette smokers — each with the invariant checks a lab report
// would include.
package classic

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/pthread"
)

// BoundedBuffer is the producer/consumer ring buffer built from the
// classic three-semaphore construction (empty slots, full slots, mutex).
type BoundedBuffer struct {
	slots []int64
	head  int
	tail  int
	empty *pthread.Semaphore
	full  *pthread.Semaphore
	mu    *pthread.Mutex

	// Watermarks for the invariant check.
	maxFill atomic.Int64
	fill    atomic.Int64
}

// NewBoundedBuffer creates a buffer with the given capacity.
func NewBoundedBuffer(capacity int) (*BoundedBuffer, error) {
	if capacity <= 0 {
		return nil, errors.New("classic: capacity must be positive")
	}
	return &BoundedBuffer{
		slots: make([]int64, capacity),
		empty: pthread.NewSemaphore(capacity),
		full:  pthread.NewSemaphore(0),
		mu:    pthread.NewMutex(pthread.MutexNormal),
	}, nil
}

// Put blocks until a slot is free, then deposits v.
func (b *BoundedBuffer) Put(v int64) {
	b.empty.Wait()
	b.mu.Lock()
	b.slots[b.tail] = v
	b.tail = (b.tail + 1) % len(b.slots)
	f := b.fill.Add(1)
	for {
		m := b.maxFill.Load()
		if f <= m || b.maxFill.CompareAndSwap(m, f) {
			break
		}
	}
	b.mu.Unlock()
	b.full.Post()
}

// Get blocks until an item is available, then removes and returns it.
func (b *BoundedBuffer) Get() int64 {
	b.full.Wait()
	b.mu.Lock()
	v := b.slots[b.head]
	b.head = (b.head + 1) % len(b.slots)
	b.fill.Add(-1)
	b.mu.Unlock()
	b.empty.Post()
	return v
}

// MaxFill reports the high-water mark — it must never exceed capacity.
func (b *BoundedBuffer) MaxFill() int64 { return b.maxFill.Load() }

// ProdConsResult summarizes a producer/consumer run.
type ProdConsResult struct {
	Produced  int64
	Consumed  int64
	Sum       int64 // checksum of consumed values
	MaxFill   int64
	Capacity  int
	Producers int
	Consumers int
}

// RunProducersConsumers drives p producers and c consumers, each producer
// emitting perProducer sequenced items, and verifies conservation: every
// item produced is consumed exactly once.
func RunProducersConsumers(p, c, capacity, perProducer int) (ProdConsResult, error) {
	buf, err := NewBoundedBuffer(capacity)
	if err != nil {
		return ProdConsResult{}, err
	}
	res := ProdConsResult{Capacity: capacity, Producers: p, Consumers: c}
	total := p * perProducer
	var produced, consumed, sum atomic.Int64

	prods := pthread.Spawn(p, func(_ pthread.ID, pi int) {
		for i := 0; i < perProducer; i++ {
			v := int64(pi*perProducer + i)
			buf.Put(v)
			produced.Add(1)
		}
	})
	// Consumers pull until they collectively drain `total` items: a shared
	// ticket counter decides who consumes the last item.
	var tickets atomic.Int64
	cons := pthread.Spawn(c, func(pthread.ID, int) {
		for {
			if tickets.Add(1) > int64(total) {
				return
			}
			v := buf.Get()
			consumed.Add(1)
			sum.Add(v)
		}
	})
	if err := pthread.JoinAll(prods); err != nil {
		return res, err
	}
	if err := pthread.JoinAll(cons); err != nil {
		return res, err
	}
	res.Produced = produced.Load()
	res.Consumed = consumed.Load()
	res.Sum = sum.Load()
	res.MaxFill = buf.MaxFill()
	want := int64(total) * int64(total-1) / 2
	if res.Sum != want {
		return res, fmt.Errorf("classic: checksum %d != %d — items lost or duplicated", res.Sum, want)
	}
	if res.MaxFill > int64(capacity) {
		return res, fmt.Errorf("classic: buffer overfilled: %d > %d", res.MaxFill, capacity)
	}
	return res, nil
}

// PhilosopherStrategy selects how the dining philosophers pick up forks.
type PhilosopherStrategy int

// The strategies from lecture.
const (
	// Naive: everyone grabs left fork then right fork — can deadlock.
	Naive PhilosopherStrategy = iota
	// Ordered: forks are acquired in global index order, breaking the
	// circular-wait Coffman condition.
	Ordered
	// Waiter: a semaphore admits at most n-1 philosophers to the table,
	// breaking hold-and-wait saturation.
	Waiter
)

// String returns the human-readable name.
func (s PhilosopherStrategy) String() string {
	return [...]string{"naive", "ordered", "waiter"}[s]
}

// PhilosophersResult reports a dining-philosophers run.
type PhilosophersResult struct {
	Strategy  PhilosopherStrategy
	Meals     int64
	Deadlocks int64 // naive runs detected & recovered by the detector
	Completed bool  // all philosophers finished their meals
}

// RunPhilosophers seats n philosophers who each try to eat `meals` times.
// The naive strategy runs with the deadlock detector attached, so instead
// of hanging the lab, a philosopher whose pickup would close the cycle
// backs off (dropping the held fork), and the incident is counted.
func RunPhilosophers(n, meals int, strategy PhilosopherStrategy) (PhilosophersResult, error) {
	if n < 2 {
		return PhilosophersResult{}, errors.New("classic: need at least 2 philosophers")
	}
	res := PhilosophersResult{Strategy: strategy}
	det := pthread.NewDetector()
	forks := make([]*pthread.Mutex, n)
	for i := range forks {
		forks[i] = pthread.NewMutex(pthread.MutexNormal).WithDetector(det)
	}
	var table *pthread.Semaphore
	if strategy == Waiter {
		table = pthread.NewSemaphore(n - 1)
	}
	var mealCount, deadlocks atomic.Int64

	ths := pthread.Spawn(n, func(self pthread.ID, i int) {
		left, right := forks[i], forks[(i+1)%n]
		if strategy == Ordered && i == n-1 {
			// Last philosopher reverses order (equivalently: always lock the
			// lower-indexed fork first).
			left, right = right, left
		}
		for m := 0; m < meals; {
			if table != nil {
				table.Wait()
			}
			if err := left.LockAs(self); err != nil {
				deadlocks.Add(1)
				if table != nil {
					table.Post()
				}
				continue
			}
			if err := right.LockAs(self); err != nil {
				// Back off: release the held fork and retry — the recovery
				// made possible by detection.
				deadlocks.Add(1)
				left.UnlockAs(self)
				if table != nil {
					table.Post()
				}
				continue
			}
			mealCount.Add(1)
			m++
			right.UnlockAs(self)
			left.UnlockAs(self)
			if table != nil {
				table.Post()
			}
		}
	})
	done := make(chan error, 1)
	go func() { done <- pthread.JoinAll(ths) }()
	select {
	case err := <-done:
		if err != nil {
			return res, err
		}
		res.Completed = true
	case <-time.After(30 * time.Second):
		return res, errors.New("classic: philosophers hung (detector failed?)")
	}
	res.Meals = mealCount.Load()
	res.Deadlocks = deadlocks.Load()
	if res.Meals != int64(n*meals) {
		return res, fmt.Errorf("classic: meals %d != %d", res.Meals, n*meals)
	}
	return res, nil
}
