package classic

import (
	"errors"
	"sync/atomic"

	"repro/internal/pthread"
)

// BarberResult summarizes a sleeping-barber run.
type BarberResult struct {
	Served     int64
	TurnedAway int64
	Chairs     int
}

// RunBarber simulates the sleeping barber: customers arrive, wait in a
// bounded waiting room or leave, and a single barber serves them one at a
// time. Conservation invariant: served + turned away == customers.
func RunBarber(chairs, customers int) (BarberResult, error) {
	if chairs < 0 || customers < 0 {
		return BarberResult{}, errors.New("classic: negative parameters")
	}
	res := BarberResult{Chairs: chairs}

	mu := pthread.NewMutex(pthread.MutexNormal)
	customerReady := pthread.NewSemaphore(0) // barber waits on this
	barberReady := pthread.NewSemaphore(0)   // customer waits for a haircut slot
	waiting := 0
	var served, turnedAway atomic.Int64
	remaining := customers

	barber := pthread.Create(func(pthread.ID) {
		for {
			customerReady.Wait()
			mu.Lock()
			if waiting < 0 { // poison: shop closing
				mu.Unlock()
				return
			}
			waiting--
			mu.Unlock()
			barberReady.Post() // cut hair
			served.Add(1)
		}
	})

	custs := pthread.Spawn(customers, func(pthread.ID, int) {
		mu.Lock()
		if waiting >= chairs {
			turnedAway.Add(1)
			remaining--
			mu.Unlock()
			return
		}
		waiting++
		remaining--
		mu.Unlock()
		customerReady.Post()
		barberReady.Wait()
	})
	if err := pthread.JoinAll(custs); err != nil {
		return res, err
	}
	// Close the shop: wait for the queue to drain, then poison the barber.
	for {
		mu.Lock()
		empty := waiting == 0
		mu.Unlock()
		if empty {
			break
		}
	}
	mu.Lock()
	waiting = -1000
	mu.Unlock()
	customerReady.Post()
	if err := barber.Join(); err != nil {
		return res, err
	}
	res.Served = served.Load()
	res.TurnedAway = turnedAway.Load()
	return res, nil
}

// SmokersResult summarizes a cigarette-smokers run.
type SmokersResult struct {
	Rounds   int64
	SmokedBy [3]int64 // per-smoker completions
}

// RunSmokers simulates the cigarette smokers problem with the agent
// placing two of {tobacco, paper, matches} each round and the smoker
// holding the third ingredient smoking. The deadlock-free solution uses
// pusher semantics folded into the agent (it signals the unique smoker
// directly), which is the version presented in lecture after showing why
// the naive one jams.
func RunSmokers(rounds int) (SmokersResult, error) {
	if rounds < 0 {
		return SmokersResult{}, errors.New("classic: negative rounds")
	}
	var res SmokersResult
	smokerSems := [3]*pthread.Semaphore{
		pthread.NewSemaphore(0), pthread.NewSemaphore(0), pthread.NewSemaphore(0),
	}
	agentSem := pthread.NewSemaphore(1)
	var counts [3]atomic.Int64

	// Deterministic "random" choice of which smoker goes each round.
	smokers := pthread.Spawn(3, func(_ pthread.ID, i int) {
		for {
			smokerSems[i].Wait()
			c := counts[i].Add(1)
			if c < 0 {
				return
			}
			agentSem.Post()
		}
	})
	var seed uint64 = 0x2545F4914F6CDD1D
	total := int64(0)
	chosen := make([]int, rounds)
	for r := 0; r < rounds; r++ {
		agentSem.Wait()
		seed ^= seed << 13
		seed ^= seed >> 7
		seed ^= seed << 17
		k := int(seed % 3)
		chosen[r] = k
		smokerSems[k].Post()
		total++
	}
	agentSem.Wait() // last smoker finished
	// Shut the smokers down: make their next count negative then post.
	for i := range smokerSems {
		counts[i].Store(-1 << 40)
		smokerSems[i].Post()
	}
	if err := pthread.JoinAll(smokers); err != nil {
		return res, err
	}
	res.Rounds = total
	for i := range res.SmokedBy {
		// Recover true counts from the poisoned values by recounting the
		// agent's choices.
		res.SmokedBy[i] = 0
	}
	for _, k := range chosen {
		res.SmokedBy[k]++
	}
	return res, nil
}
