package classic

import (
	"testing"
)

func TestBoundedBufferFIFOSingleThread(t *testing.T) {
	b, err := NewBoundedBuffer(4)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 4; i++ {
		b.Put(i)
	}
	for i := int64(0); i < 4; i++ {
		if v := b.Get(); v != i {
			t.Errorf("Get = %d, want %d", v, i)
		}
	}
	// Wrap-around.
	b.Put(9)
	b.Put(10)
	if b.Get() != 9 || b.Get() != 10 {
		t.Error("wrap-around order broken")
	}
}

func TestBoundedBufferRejectsBadCapacity(t *testing.T) {
	if _, err := NewBoundedBuffer(0); err == nil {
		t.Error("capacity 0 should error")
	}
}

func TestProducersConsumersConservation(t *testing.T) {
	cases := []struct{ p, c, cap, per int }{
		{1, 1, 1, 200},
		{4, 4, 8, 100},
		{8, 2, 4, 50},
		{2, 8, 2, 100},
	}
	for _, tc := range cases {
		res, err := RunProducersConsumers(tc.p, tc.c, tc.cap, tc.per)
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		want := int64(tc.p * tc.per)
		if res.Produced != want || res.Consumed != want {
			t.Errorf("%+v: produced=%d consumed=%d want %d", tc, res.Produced, res.Consumed, want)
		}
		if res.MaxFill > int64(tc.cap) {
			t.Errorf("%+v: buffer exceeded capacity: %d", tc, res.MaxFill)
		}
	}
}

func TestPhilosophersOrderedCompletes(t *testing.T) {
	res, err := RunPhilosophers(5, 20, Ordered)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.Meals != 100 {
		t.Errorf("ordered: %+v", res)
	}
	if res.Deadlocks != 0 {
		t.Errorf("ordered strategy should never deadlock, saw %d", res.Deadlocks)
	}
}

func TestPhilosophersWaiterCompletes(t *testing.T) {
	res, err := RunPhilosophers(5, 20, Waiter)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.Meals != 100 {
		t.Errorf("waiter: %+v", res)
	}
	if res.Deadlocks != 0 {
		t.Errorf("waiter strategy should never deadlock, saw %d", res.Deadlocks)
	}
}

func TestPhilosophersNaiveRecoversViaDetector(t *testing.T) {
	// The naive strategy would hang a real lab; with the detector attached
	// every philosopher still finishes (by backing off on detection).
	res, err := RunPhilosophers(5, 50, Naive)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.Meals != 250 {
		t.Errorf("naive with detection: %+v", res)
	}
	t.Logf("naive strategy: %d deadlock back-offs over 250 meals", res.Deadlocks)
}

func TestPhilosophersRejectsTinyTable(t *testing.T) {
	if _, err := RunPhilosophers(1, 1, Ordered); err == nil {
		t.Error("1 philosopher should error")
	}
}

func TestBarberConservation(t *testing.T) {
	for _, tc := range []struct{ chairs, customers int }{
		{3, 50}, {0, 20}, {10, 10}, {1, 100},
	} {
		res, err := RunBarber(tc.chairs, tc.customers)
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		if res.Served+res.TurnedAway != int64(tc.customers) {
			t.Errorf("%+v: served %d + turned away %d != %d",
				tc, res.Served, res.TurnedAway, tc.customers)
		}
		if tc.chairs == 0 && res.Served > 1 {
			// With no chairs, nearly everyone is turned away (at most a
			// customer already being... with 0 chairs, all are turned away).
			t.Errorf("0 chairs served %d", res.Served)
		}
	}
}

func TestBarberNegativeParams(t *testing.T) {
	if _, err := RunBarber(-1, 5); err == nil {
		t.Error("negative chairs should error")
	}
}

func TestSmokersAllRoundsComplete(t *testing.T) {
	res, err := RunSmokers(300)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 300 {
		t.Errorf("rounds = %d", res.Rounds)
	}
	var sum int64
	for i, c := range res.SmokedBy {
		if c == 0 {
			t.Errorf("smoker %d never smoked in 300 rounds", i)
		}
		sum += c
	}
	if sum != 300 {
		t.Errorf("per-smoker counts sum to %d", sum)
	}
}

func TestSmokersZeroRounds(t *testing.T) {
	res, err := RunSmokers(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 0 {
		t.Errorf("rounds = %d", res.Rounds)
	}
}
