package dsm

import (
	"fmt"
	"sync/atomic"
	"testing"
)

func TestSingleNodeReadWrite(t *testing.T) {
	stats, err := Run(1, 4, 8, func(n *Node) error {
		if v, err := n.Read(0, 0); err != nil || v != 0 {
			return fmt.Errorf("fresh page read = %d, %v", v, err)
		}
		if err := n.Write(1, 3, 42); err != nil {
			return err
		}
		v, err := n.Read(1, 3)
		if err != nil || v != 42 {
			return fmt.Errorf("read back = %d, %v", v, err)
		}
		// Second write to an owned page is a local hit.
		if err := n.Write(1, 4, 7); err != nil {
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	s := stats[0]
	if s.WriteFaults != 1 || s.LocalWrites != 1 {
		t.Errorf("stats: %+v", s)
	}
	if s.ReadFaults != 1 || s.LocalReads != 1 {
		t.Errorf("stats: %+v", s)
	}
}

func TestAddressValidation(t *testing.T) {
	_, err := Run(1, 2, 4, func(n *Node) error {
		if _, err := n.Read(5, 0); err == nil {
			return fmt.Errorf("page out of range accepted")
		}
		if err := n.Write(0, 9, 1); err == nil {
			return fmt.Errorf("offset out of range accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(0, 1, 1, nil); err == nil {
		t.Error("0 nodes should error")
	}
}

func TestWritePropagatesToReader(t *testing.T) {
	// Node 1 writes; node 2 reads the value after a flag handshake.
	_, err := Run(2, 2, 4, func(n *Node) error {
		const dataPage, flagPage = 0, 1
		if n.Rank() == 1 {
			if err := n.Write(dataPage, 0, 1234); err != nil {
				return err
			}
			return n.Write(flagPage, 0, 1)
		}
		// Node 2: spin on the flag, then read the data. Write-invalidate
		// guarantees the spin sees the update.
		for {
			v, err := n.Read(flagPage, 0)
			if err != nil {
				return err
			}
			if v == 1 {
				break
			}
		}
		v, err := n.Read(dataPage, 0)
		if err != nil {
			return err
		}
		if v != 1234 {
			return fmt.Errorf("SC violation: flag observed but data = %d", v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSequentialConsistencyMessagePattern(t *testing.T) {
	// Repeated rounds of the flag pattern with alternating direction.
	_, err := Run(2, 4, 2, func(n *Node) error {
		const rounds = 15
		me := n.Rank()
		for r := 1; r <= rounds; r++ {
			writer := 1 + (r % 2)
			dataPage, flagPage := 0, 1
			if me == writer {
				if err := n.Write(dataPage, 0, int64(r*100)); err != nil {
					return err
				}
				if err := n.Write(flagPage, 0, int64(r)); err != nil {
					return err
				}
			} else {
				for {
					v, err := n.Read(flagPage, 0)
					if err != nil {
						return err
					}
					if v >= int64(r) {
						break
					}
				}
				v, err := n.Read(dataPage, 0)
				if err != nil {
					return err
				}
				if v < int64(r*100) {
					return fmt.Errorf("round %d: data %d lags flag", r, v)
				}
			}
			// Round barrier through a third page: both bump their slot.
			if err := n.Write(2, me-1, int64(r)); err != nil {
				return err
			}
			for {
				other, err := n.Read(2, 2-me)
				if err != nil {
					return err
				}
				if other >= int64(r) {
					break
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestOwnershipMigration(t *testing.T) {
	// Three nodes write the same page in turn; each sees the previous
	// writer's value (single-writer invariant + transfer carries data).
	_, err := Run(3, 1, 4, func(n *Node) error {
		me := int64(n.Rank())
		// Token passing: node r waits until cell 0 == r-1, then writes r.
		for {
			v, err := n.Read(0, 0)
			if err != nil {
				return err
			}
			if v == me-1 {
				break
			}
			if v > me-1 {
				return nil // our turn already passed (only for rank 1 edge)
			}
		}
		prev, err := n.Read(0, 1)
		if err != nil {
			return err
		}
		if me > 1 && prev != (me-1)*10 {
			return fmt.Errorf("node %d: prev marker = %d, want %d", me, prev, (me-1)*10)
		}
		if err := n.Write(0, 1, me*10); err != nil {
			return err
		}
		return n.Write(0, 0, me)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestStatsAccounting(t *testing.T) {
	stats, err := Run(2, 1, 2, func(n *Node) error {
		if n.Rank() == 1 {
			if err := n.Write(0, 0, 5); err != nil { // write fault (cold)
				return err
			}
			// Wait until node 2 has read (it bumps word 1 via its own write).
			for {
				v, err := n.Read(0, 1) // may fault after transfer
				if err != nil {
					return err
				}
				if v == 9 {
					return nil
				}
			}
		}
		// Node 2: read node 1's page (read fault, copy), then write
		// (ownership transfer).
		for {
			v, err := n.Read(0, 0)
			if err != nil {
				return err
			}
			if v == 5 {
				break
			}
		}
		return n.Write(0, 1, 9)
	})
	if err != nil {
		t.Fatal(err)
	}
	n1, n2 := stats[0], stats[1]
	if n1.WriteFaults < 1 || n2.ReadFaults < 1 || n2.WriteFaults != 1 {
		t.Errorf("stats: n1=%+v n2=%+v", n1, n2)
	}
	if n1.Served < 1 {
		t.Errorf("node 1 should have served its page: %+v", n1)
	}
	if n1.Invalidated < 1 {
		t.Errorf("node 1 should have lost its copy: %+v", n1)
	}
}

func TestManyNodesDisjointPages(t *testing.T) {
	// Nodes working on disjoint pages never interfere: all writes are one
	// cold fault then local.
	const nodes = 6
	stats, err := Run(nodes, nodes, 8, func(n *Node) error {
		page := n.Rank() - 1
		for i := 0; i < 100; i++ {
			if err := n.Write(page, i%8, int64(i)); err != nil {
				return err
			}
		}
		for off := 0; off < 8; off++ {
			if _, err := n.Read(page, off); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range stats {
		if s.WriteFaults != 1 {
			t.Errorf("node %d write faults = %d, want 1 (cold only)", i+1, s.WriteFaults)
		}
		if s.LocalWrites != 99 {
			t.Errorf("node %d local writes = %d", i+1, s.LocalWrites)
		}
		if s.Invalidated != 0 {
			t.Errorf("node %d invalidations = %d on disjoint pages", i+1, s.Invalidated)
		}
	}
}

func TestContendedCounterNeedsNoLostInvalidations(t *testing.T) {
	// Two nodes hammer the same page (not the same word). DSM guarantees
	// coherence per write; the final state must contain both nodes' last
	// values.
	var done atomic.Int32
	_, err := Run(2, 1, 4, func(n *Node) error {
		me := n.Rank()
		for i := 0; i < 50; i++ {
			if err := n.Write(0, me-1, int64(i)); err != nil {
				return err
			}
		}
		// After both finish, each verifies the other's final value.
		done.Add(1)
		for done.Load() < 2 { //nolint:staticcheck // spin is fine in tests
		}
		v, err := n.Read(0, 2-me)
		if err != nil {
			return err
		}
		if v != 49 {
			return fmt.Errorf("node %d sees other's counter = %d, want 49", me, v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
