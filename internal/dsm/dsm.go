// Package dsm implements the "distributed shared memory" topic of CS87:
// an IVY-style page-based DSM with write-invalidate coherence over the
// message-passing layer. Pages live on whichever node last wrote them;
// readers obtain read-only copies; a write invalidates every copy and
// transfers ownership. A central manager (rank 0) serializes transactions,
// giving sequential consistency — which the tests demonstrate with the
// classic message-passing-through-shared-memory pattern (write data,
// write flag; the reader spins on the flag and must then see the data).
//
// Each node runs two goroutines: the application and a service loop that
// answers copy/transfer/invalidate requests against the local page cache,
// so a node can serve pages while its own application is blocked — the
// structural point the DSM lecture makes about why DSM needs a protocol
// processor.
package dsm

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/mp"
)

// Message tags.
const (
	tagCtl   = iota + 1 // app -> manager requests, manager -> app grants
	tagServe            // manager -> node service loop commands
	tagPage             // page data to a requesting app
	tagAck              // acks to the manager
	tagDone             // shutdown coordination
)

type request struct {
	Kind string // "read", "write", "done"
	Page int
	From int
}

type serveCmd struct {
	Kind string // "copy", "transfer", "inval", "stop"
	Page int
	To   int
}

type pageData struct {
	Page  int
	Words []int64
	Owned bool
}

// pageState is a node-local cache state.
type pageState int

const (
	invalid pageState = iota
	readonly
	owned
)

// Stats counts DSM protocol events at one node.
type Stats struct {
	ReadFaults  int64
	WriteFaults int64
	LocalReads  int64
	LocalWrites int64
	Invalidated int64 // copies this node lost
	Served      int64 // copy/transfer requests this node answered
}

// Node is one application's handle on the shared address space.
type Node struct {
	comm      *mp.Comm
	pageWords int
	numPages  int

	mu    sync.Mutex
	cache map[int]*cacheEntry
	stats Stats
}

type cacheEntry struct {
	state pageState
	words []int64
}

// Rank returns the node's rank (1-based; 0 is the manager).
func (n *Node) Rank() int { return n.comm.Rank() }

// Stats returns this node's protocol counters.
func (n *Node) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

func (n *Node) checkAddr(page, offset int) error {
	if page < 0 || page >= n.numPages {
		return fmt.Errorf("dsm: page %d out of range [0,%d)", page, n.numPages)
	}
	if offset < 0 || offset >= n.pageWords {
		return fmt.Errorf("dsm: offset %d out of range [0,%d)", offset, n.pageWords)
	}
	return nil
}

// Read returns the word at (page, offset), faulting in a read-only copy
// when the page is not cached.
func (n *Node) Read(page, offset int) (int64, error) {
	if err := n.checkAddr(page, offset); err != nil {
		return 0, err
	}
	n.mu.Lock()
	if e, ok := n.cache[page]; ok && e.state != invalid {
		v := e.words[offset]
		n.stats.LocalReads++
		n.mu.Unlock()
		return v, nil
	}
	n.stats.ReadFaults++
	n.mu.Unlock()

	if err := n.comm.Send(0, tagCtl, request{Kind: "read", Page: page, From: n.Rank()}); err != nil {
		return 0, err
	}
	m, err := n.comm.Recv(mp.AnySource, tagPage)
	if err != nil {
		return 0, err
	}
	pd := m.Data.(pageData)
	n.mu.Lock()
	st := readonly
	if pd.Owned {
		st = owned
	}
	n.cache[page] = &cacheEntry{state: st, words: append([]int64(nil), pd.Words...)}
	v := n.cache[page].words[offset]
	n.mu.Unlock()
	if err := n.comm.Send(0, tagAck, page); err != nil {
		return 0, err
	}
	return v, nil
}

// Write stores v at (page, offset), acquiring ownership (and invalidating
// every other copy) when the page is not owned locally.
func (n *Node) Write(page, offset int, v int64) error {
	if err := n.checkAddr(page, offset); err != nil {
		return err
	}
	n.mu.Lock()
	if e, ok := n.cache[page]; ok && e.state == owned {
		e.words[offset] = v
		n.stats.LocalWrites++
		n.mu.Unlock()
		return nil
	}
	n.stats.WriteFaults++
	n.mu.Unlock()

	if err := n.comm.Send(0, tagCtl, request{Kind: "write", Page: page, From: n.Rank()}); err != nil {
		return err
	}
	m, err := n.comm.Recv(mp.AnySource, tagPage)
	if err != nil {
		return err
	}
	pd := m.Data.(pageData)
	n.mu.Lock()
	n.cache[page] = &cacheEntry{state: owned, words: append([]int64(nil), pd.Words...)}
	n.cache[page].words[offset] = v
	n.mu.Unlock()
	return n.comm.Send(0, tagAck, page)
}

// serviceLoop answers protocol requests against the local cache until a
// stop command arrives.
func (n *Node) serviceLoop() error {
	for {
		m, err := n.comm.Recv(0, tagServe)
		if err != nil {
			return err
		}
		cmd := m.Data.(serveCmd)
		switch cmd.Kind {
		case "stop":
			return nil
		case "copy":
			n.mu.Lock()
			e := n.cache[cmd.Page]
			if e == nil || e.state == invalid {
				n.mu.Unlock()
				return fmt.Errorf("dsm: node %d asked to copy un-held page %d", n.Rank(), cmd.Page)
			}
			words := append([]int64(nil), e.words...)
			e.state = readonly // owner downgrades alongside the new reader
			n.stats.Served++
			n.mu.Unlock()
			if err := n.comm.Send(cmd.To, tagPage, pageData{Page: cmd.Page, Words: words}); err != nil {
				return err
			}
		case "transfer":
			n.mu.Lock()
			e := n.cache[cmd.Page]
			if e == nil || e.state == invalid {
				n.mu.Unlock()
				return fmt.Errorf("dsm: node %d asked to transfer un-held page %d", n.Rank(), cmd.Page)
			}
			words := append([]int64(nil), e.words...)
			e.state = invalid
			n.stats.Served++
			n.stats.Invalidated++
			n.mu.Unlock()
			if err := n.comm.Send(cmd.To, tagPage, pageData{Page: cmd.Page, Words: words, Owned: true}); err != nil {
				return err
			}
		case "inval":
			n.mu.Lock()
			if e := n.cache[cmd.Page]; e != nil && e.state != invalid {
				e.state = invalid
				n.stats.Invalidated++
			}
			n.mu.Unlock()
			if err := n.comm.Send(0, tagAck, cmd.Page); err != nil {
				return err
			}
		default:
			return fmt.Errorf("dsm: unknown service command %q", cmd.Kind)
		}
	}
}

// directory is the manager's per-page record.
type directory struct {
	owner   int // 0 = unowned (page is zero-filled)
	copyset map[int]bool
}

// manager serializes every transaction: one read or write completes
// (requester acked) before the next is served — the property that makes
// the memory sequentially consistent.
func manager(comm *mp.Comm, numNodes, numPages, pageWords int) error {
	dirs := make([]directory, numPages)
	for i := range dirs {
		dirs[i].copyset = map[int]bool{}
	}
	doneCount := 0
	for doneCount < numNodes {
		m, err := comm.Recv(mp.AnySource, tagCtl)
		if err != nil {
			return err
		}
		req := m.Data.(request)
		switch req.Kind {
		case "done":
			doneCount++
			continue
		case "read":
			d := &dirs[req.Page]
			if d.owner == req.From {
				return fmt.Errorf("dsm: owner %d read-faulted on its own page %d (protocol bug)", req.From, req.Page)
			}
			if d.owner == 0 {
				// Unowned: the page is conceptually zero-filled.
				words := make([]int64, pageWords)
				if err := comm.Send(req.From, tagPage, pageData{Page: req.Page, Words: words}); err != nil {
					return err
				}
			} else {
				if err := comm.Send(d.owner, tagServe, serveCmd{Kind: "copy", Page: req.Page, To: req.From}); err != nil {
					return err
				}
				d.copyset[d.owner] = true
			}
			d.copyset[req.From] = true
			if _, err := comm.Recv(req.From, tagAck); err != nil {
				return err
			}
		case "write":
			d := &dirs[req.Page]
			// Invalidate every copy except the writer's own.
			for c := range d.copyset {
				if c == req.From || c == d.owner {
					continue
				}
				if err := comm.Send(c, tagServe, serveCmd{Kind: "inval", Page: req.Page}); err != nil {
					return err
				}
				if _, err := comm.Recv(c, tagAck); err != nil {
					return err
				}
			}
			if d.owner == 0 {
				words := make([]int64, pageWords)
				if err := comm.Send(req.From, tagPage, pageData{Page: req.Page, Words: words, Owned: true}); err != nil {
					return err
				}
			} else {
				// Transfer from the current owner — including the upgrade
				// case (owner == requester, holding the page read-only after
				// serving copies): the self-transfer is safe because the
				// service loop and the application are separate goroutines.
				if err := comm.Send(d.owner, tagServe, serveCmd{Kind: "transfer", Page: req.Page, To: req.From}); err != nil {
					return err
				}
			}
			d.owner = req.From
			d.copyset = map[int]bool{}
			if _, err := comm.Recv(req.From, tagAck); err != nil {
				return err
			}
		default:
			return fmt.Errorf("dsm: unknown request %q", req.Kind)
		}
	}
	// Release every service loop, then every app.
	for r := 1; r <= numNodes; r++ {
		if err := comm.Send(r, tagServe, serveCmd{Kind: "stop"}); err != nil {
			return err
		}
		if err := comm.Send(r, tagDone, "bye"); err != nil {
			return err
		}
	}
	return nil
}

// Run starts a DSM cluster of numNodes application nodes sharing numPages
// pages of pageWords words each, runs app on every node concurrently, and
// returns the per-node stats (indexed 0..numNodes-1 for ranks 1..N).
func Run(numNodes, numPages, pageWords int, app func(n *Node) error) ([]Stats, error) {
	if numNodes < 1 || numPages < 1 || pageWords < 1 {
		return nil, errors.New("dsm: nodes, pages, and page size must be positive")
	}
	stats := make([]Stats, numNodes)
	err := mp.Run(numNodes+1, func(comm *mp.Comm) error {
		if comm.Rank() == 0 {
			return manager(comm, numNodes, numPages, pageWords)
		}
		n := &Node{comm: comm, pageWords: pageWords, numPages: numPages, cache: map[int]*cacheEntry{}}
		svcErr := make(chan error, 1)
		go func() { svcErr <- n.serviceLoop() }()
		appErr := app(n)
		if err := comm.Send(0, tagCtl, request{Kind: "done", From: comm.Rank()}); err != nil {
			return err
		}
		if _, err := comm.Recv(0, tagDone); err != nil {
			return err
		}
		if err := <-svcErr; err != nil {
			return err
		}
		stats[comm.Rank()-1] = n.Stats()
		return appErr
	})
	return stats, err
}
