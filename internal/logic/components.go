package logic

import "fmt"

// HalfAdder wires a half adder over inputs a and b, returning the sum and
// carry wires: sum = a XOR b, carry = a AND b.
func HalfAdder(c *Circuit, a, b Wire) (sum, carry Wire) {
	return c.Xor(a, b), c.And(a, b)
}

// FullAdder wires a full adder over a, b, and carry-in, built from two
// half adders and an OR — the construction drawn in the lab handout.
func FullAdder(c *Circuit, a, b, cin Wire) (sum, carry Wire) {
	s1, c1 := HalfAdder(c, a, b)
	s2, c2 := HalfAdder(c, s1, cin)
	return s2, c.Or(c1, c2)
}

// RippleCarryAdder wires an n-bit ripple-carry adder. Bit slices are
// little-endian: a[0] is the least significant bit. It returns the sum
// bits and the carry-out of the most significant full adder.
func RippleCarryAdder(c *Circuit, a, b []Wire, cin Wire) (sum []Wire, cout Wire) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("logic: adder width mismatch %d vs %d", len(a), len(b)))
	}
	sum = make([]Wire, len(a))
	carry := cin
	for i := range a {
		sum[i], carry = FullAdder(c, a[i], b[i], carry)
	}
	return sum, carry
}

// Mux2 wires a 2-to-1 multiplexer: out = sel ? b : a.
func Mux2(c *Circuit, sel, a, b Wire) Wire {
	return c.Or(c.And(c.Not(sel), a), c.And(sel, b))
}

// MuxN wires a 2^k-to-1 multiplexer over the given data wires using k
// select lines (sel[0] is the least significant select bit). len(data)
// must be a power of two equal to 2^len(sel).
func MuxN(c *Circuit, sel []Wire, data []Wire) Wire {
	if len(data) != 1<<uint(len(sel)) {
		panic(fmt.Sprintf("logic: mux needs %d data wires for %d selects, got %d",
			1<<uint(len(sel)), len(sel), len(data)))
	}
	if len(sel) == 0 {
		return data[0]
	}
	half := len(data) / 2
	lo := MuxN(c, sel[:len(sel)-1], data[:half])
	hi := MuxN(c, sel[:len(sel)-1], data[half:])
	return Mux2(c, sel[len(sel)-1], lo, hi)
}

// Decoder wires a k-to-2^k decoder: exactly one output is high, selected
// by the binary value on sel (sel[0] least significant).
func Decoder(c *Circuit, sel []Wire) []Wire {
	n := 1 << uint(len(sel))
	outs := make([]Wire, n)
	notSel := make([]Wire, len(sel))
	for i, s := range sel {
		notSel[i] = c.Not(s)
	}
	for v := 0; v < n; v++ {
		terms := make([]Wire, len(sel))
		for i := range sel {
			if v&(1<<uint(i)) != 0 {
				terms[i] = sel[i]
			} else {
				terms[i] = notSel[i]
			}
		}
		if len(terms) == 1 {
			outs[v] = c.Gate(BUF, terms[0])
		} else {
			outs[v] = c.Gate(AND, terms...)
		}
	}
	return outs
}

// EqualComparator wires an n-bit equality comparator: out is high when
// a == b bitwise, built from XNORs feeding an AND tree.
func EqualComparator(c *Circuit, a, b []Wire) Wire {
	if len(a) != len(b) {
		panic("logic: comparator width mismatch")
	}
	eqs := make([]Wire, len(a))
	for i := range a {
		eqs[i] = c.Xnor(a[i], b[i])
	}
	if len(eqs) == 1 {
		return c.Gate(BUF, eqs[0])
	}
	return c.Gate(AND, eqs...)
}

// ALUOp selects the operation an ALU performs, matching the opcode table
// in the lab handout.
type ALUOp int

// The ALU operations.
const (
	ALUAnd ALUOp = iota
	ALUOr
	ALUAdd
	ALUSub
	ALUXor
	ALUNor
	ALUSlt // set-on-less-than (signed): result = 1 if a < b else 0
)

// String returns the human-readable name.
func (op ALUOp) String() string {
	return [...]string{"AND", "OR", "ADD", "SUB", "XOR", "NOR", "SLT"}[op]
}

// ALU is an n-bit arithmetic-logic unit built entirely from gates. Its
// inputs are two n-bit operands and three op-select lines; its outputs
// are the n-bit result plus the four condition flags CS31 teaches.
type ALU struct {
	Circuit *Circuit
	A, B    []Wire // operand inputs, little-endian
	Op      []Wire // 3 select lines, little-endian
	Result  []Wire
	Zero    Wire
	Neg     Wire
	Carry   Wire // carry-out of the adder (borrow for SUB, x86 convention inverted at Run)
	Ovf     Wire // signed overflow of the adder
	width   int
}

// NewALU builds an n-bit ALU. The construction mirrors the classic MIPS
// datapath figure: one shared adder whose B input is XORed with the
// subtract line (two's complement via inverted operand + carry-in), and a
// final operation multiplexer per bit.
func NewALU(width int) *ALU {
	c := New()
	a := c.Inputs(width)
	b := c.Inputs(width)
	op := c.Inputs(3)

	// subtract line: high for SUB (op=3) and SLT (op=6).
	// op encodings: 011 = SUB, 110 = SLT.
	isSub := c.And(op[0], c.And(op[1], c.Not(op[2])))
	isSlt := c.And(c.Not(op[0]), c.And(op[1], op[2]))
	subLine := c.Or(isSub, isSlt)

	bEff := make([]Wire, width)
	for i := range bEff {
		bEff[i] = c.Xor(b[i], subLine)
	}
	sum, cout := RippleCarryAdder(c, a, bEff, subLine)

	// Signed overflow: carry into MSB != carry out of MSB. Recompute the
	// carry into the MSB as FullAdder majority over the (width-1) prefix: we
	// can recover it as sum[msb] XOR a[msb] XOR bEff[msb].
	msb := width - 1
	carryIntoMSB := c.Xor(sum[msb], c.Xor(a[msb], bEff[msb]))
	ovf := c.Xor(carryIntoMSB, cout)

	// SLT result: 1 when (a-b) is negative, corrected for overflow:
	// less = sum[msb] XOR ovf.
	less := c.Xor(sum[msb], ovf)

	and := make([]Wire, width)
	or := make([]Wire, width)
	xor := make([]Wire, width)
	nor := make([]Wire, width)
	for i := 0; i < width; i++ {
		and[i] = c.And(a[i], b[i])
		or[i] = c.Or(a[i], b[i])
		xor[i] = c.Xor(a[i], b[i])
		nor[i] = c.Nor(a[i], b[i])
	}
	zero := c.Const(false)
	result := make([]Wire, width)
	for i := 0; i < width; i++ {
		sltBit := zero
		if i == 0 {
			sltBit = less
		}
		// 8-way mux over op (op=7 unused, wired to zero).
		result[i] = MuxN(c, op, []Wire{
			and[i], // 000 AND
			or[i],  // 001 OR
			sum[i], // 010 ADD
			sum[i], // 011 SUB (adder already in subtract mode)
			xor[i], // 100 XOR
			nor[i], // 101 NOR
			sltBit, // 110 SLT
			zero,   // 111 unused
		})
	}

	// Zero flag: NOR over all result bits.
	zeroFlag := c.Gate(NOR, result...)
	if width == 1 {
		zeroFlag = c.Not(result[0])
	}

	return &ALU{
		Circuit: c, A: a, B: b, Op: op,
		Result: result,
		Zero:   zeroFlag,
		Neg:    c.Gate(BUF, result[msb]),
		Carry:  c.Gate(BUF, cout),
		Ovf:    c.Gate(BUF, ovf),
		width:  width,
	}
}

// ALUFlags holds the decoded condition-flag outputs of a Run.
type ALUFlags struct {
	Zero, Negative, Carry, Overflow bool
}

// Run drives the ALU with concrete operand values and an operation,
// evaluating the underlying gate network. For SUB and SLT, the Carry flag
// follows the x86 borrow convention (set when unsigned a < unsigned b).
func (u *ALU) Run(a, b uint64, op ALUOp) (uint64, ALUFlags, error) {
	in := make(map[Wire]bool, 2*u.width+3)
	for i := 0; i < u.width; i++ {
		in[u.A[i]] = a&(1<<uint(i)) != 0
		in[u.B[i]] = b&(1<<uint(i)) != 0
	}
	for i := 0; i < 3; i++ {
		in[u.Op[i]] = int(op)&(1<<uint(i)) != 0
	}
	vals, err := u.Circuit.Evaluate(in)
	if err != nil {
		return 0, ALUFlags{}, err
	}
	var res uint64
	for i := 0; i < u.width; i++ {
		if vals[u.Result[i]] {
			res |= 1 << uint(i)
		}
	}
	carry := vals[u.Carry]
	if op == ALUSub || op == ALUSlt {
		carry = !carry // adder carry-out means "no borrow" in subtract mode
	}
	fl := ALUFlags{
		Zero:     vals[u.Zero],
		Negative: vals[u.Neg],
		Carry:    carry,
		Overflow: vals[u.Ovf],
	}
	if op != ALUAdd && op != ALUSub && op != ALUSlt {
		fl.Carry, fl.Overflow = false, false // logic ops clear arithmetic flags
	}
	return res, fl, nil
}

// Width returns the operand width in bits.
func (u *ALU) Width() int { return u.width }
