// Package logic implements the CS31 "Building an ALU" lab: a gate-level
// digital logic simulator. Circuits are built from primitive gates wired
// together, evaluated by topological propagation, and composed into the
// standard combinational building blocks (adders, multiplexers, decoders)
// up to a complete N-bit ALU with condition flags, plus the sequential
// elements (latches, flip-flops, registers, RAM) used in the storage
// lectures.
package logic

import (
	"errors"
	"fmt"
)

// Wire identifies a single boolean signal inside a Circuit.
type Wire int

// GateKind enumerates the primitive gates available to circuits.
type GateKind int

// The primitive gate kinds. BUF copies its input; it exists so named
// outputs can alias internal wires without special cases.
const (
	AND GateKind = iota
	OR
	NOT
	NAND
	NOR
	XOR
	XNOR
	BUF
)

// String returns the human-readable name.
func (k GateKind) String() string {
	switch k {
	case AND:
		return "AND"
	case OR:
		return "OR"
	case NOT:
		return "NOT"
	case NAND:
		return "NAND"
	case NOR:
		return "NOR"
	case XOR:
		return "XOR"
	case XNOR:
		return "XNOR"
	case BUF:
		return "BUF"
	}
	return "?"
}

type gate struct {
	kind GateKind
	in   []Wire
	out  Wire
}

// Circuit is a combinational network of gates. Wires are created with
// Input or as gate outputs; Evaluate propagates values in topological
// order. Circuits are cheap to build and deterministic to evaluate.
type Circuit struct {
	gates    []gate
	nwires   int
	inputs   []Wire
	driver   map[Wire]int // wire -> gate index driving it
	order    []int        // cached topological order of gate indices
	dirty    bool
	constant map[Wire]bool // wires pinned to constants
}

// New creates an empty circuit.
func New() *Circuit {
	return &Circuit{driver: make(map[Wire]int), constant: make(map[Wire]bool), dirty: true}
}

// Input allocates a primary input wire whose value is supplied at
// evaluation time.
func (c *Circuit) Input() Wire {
	w := Wire(c.nwires)
	c.nwires++
	c.inputs = append(c.inputs, w)
	return w
}

// Inputs allocates n primary input wires.
func (c *Circuit) Inputs(n int) []Wire {
	ws := make([]Wire, n)
	for i := range ws {
		ws[i] = c.Input()
	}
	return ws
}

// Const allocates a wire pinned to the value v.
func (c *Circuit) Const(v bool) Wire {
	w := Wire(c.nwires)
	c.nwires++
	c.constant[w] = v
	return w
}

// Gate adds a primitive gate over the given input wires and returns its
// output wire. NOT and BUF take one input; every other kind takes two or
// more (multi-input gates are the natural reading of the schematic form).
func (c *Circuit) Gate(kind GateKind, in ...Wire) Wire {
	switch kind {
	case NOT, BUF:
		if len(in) != 1 {
			panic(fmt.Sprintf("logic: %v takes exactly 1 input, got %d", kind, len(in)))
		}
	default:
		if len(in) < 2 {
			panic(fmt.Sprintf("logic: %v takes at least 2 inputs, got %d", kind, len(in)))
		}
	}
	for _, w := range in {
		if int(w) >= c.nwires || w < 0 {
			panic(fmt.Sprintf("logic: unknown wire %d", w))
		}
	}
	out := Wire(c.nwires)
	c.nwires++
	c.gates = append(c.gates, gate{kind: kind, in: append([]Wire(nil), in...), out: out})
	c.driver[out] = len(c.gates) - 1
	c.dirty = true
	return out
}

// And adds a two-input AND gate and returns its output wire.
func (c *Circuit) And(a, b Wire) Wire { return c.Gate(AND, a, b) }

// Or adds a two-input OR gate and returns its output wire.
func (c *Circuit) Or(a, b Wire) Wire { return c.Gate(OR, a, b) }

// Not adds an inverter and returns its output wire.
func (c *Circuit) Not(a Wire) Wire { return c.Gate(NOT, a) }

// Nand adds a two-input NAND gate and returns its output wire.
func (c *Circuit) Nand(a, b Wire) Wire { return c.Gate(NAND, a, b) }

// Nor adds a two-input NOR gate and returns its output wire.
func (c *Circuit) Nor(a, b Wire) Wire { return c.Gate(NOR, a, b) }

// Xor adds a two-input XOR gate and returns its output wire.
func (c *Circuit) Xor(a, b Wire) Wire { return c.Gate(XOR, a, b) }

// Xnor adds a two-input XNOR gate and returns its output wire.
func (c *Circuit) Xnor(a, b Wire) Wire { return c.Gate(XNOR, a, b) }

// GateCount returns the number of primitive gates in the circuit,
// excluding BUFs (which are wiring, not logic).
func (c *Circuit) GateCount() int {
	n := 0
	for _, g := range c.gates {
		if g.kind != BUF {
			n++
		}
	}
	return n
}

// ErrCycle is returned when a combinational circuit contains a feedback
// loop (which requires a sequential element to be meaningful).
var ErrCycle = errors.New("logic: combinational cycle detected")

// topoSort computes (and caches) a topological order of the gates using
// Kahn's algorithm over wire dependencies.
func (c *Circuit) topoSort() error {
	if !c.dirty {
		return nil
	}
	indeg := make([]int, len(c.gates))
	dependents := make(map[int][]int) // gate -> gates consuming its output
	for gi, g := range c.gates {
		for _, w := range g.in {
			if di, ok := c.driver[w]; ok {
				indeg[gi]++
				dependents[di] = append(dependents[di], gi)
			}
		}
	}
	queue := make([]int, 0, len(c.gates))
	for gi := range c.gates {
		if indeg[gi] == 0 {
			queue = append(queue, gi)
		}
	}
	order := make([]int, 0, len(c.gates))
	for len(queue) > 0 {
		gi := queue[0]
		queue = queue[1:]
		order = append(order, gi)
		for _, d := range dependents[gi] {
			indeg[d]--
			if indeg[d] == 0 {
				queue = append(queue, d)
			}
		}
	}
	if len(order) != len(c.gates) {
		return ErrCycle
	}
	c.order = order
	c.dirty = false
	return nil
}

// Evaluate computes the value of every wire given an assignment of the
// primary inputs. Missing inputs default to false. It returns the full
// wire-value vector, indexable by Wire.
func (c *Circuit) Evaluate(in map[Wire]bool) ([]bool, error) {
	if err := c.topoSort(); err != nil {
		return nil, err
	}
	vals := make([]bool, c.nwires)
	for w, v := range c.constant {
		vals[w] = v
	}
	for w, v := range in {
		if int(w) >= c.nwires {
			return nil, fmt.Errorf("logic: unknown input wire %d", w)
		}
		vals[w] = v
	}
	for _, gi := range c.order {
		g := c.gates[gi]
		vals[g.out] = evalGate(g.kind, g.in, vals)
	}
	return vals, nil
}

func evalGate(kind GateKind, in []Wire, vals []bool) bool {
	switch kind {
	case NOT:
		return !vals[in[0]]
	case BUF:
		return vals[in[0]]
	case AND, NAND:
		r := true
		for _, w := range in {
			r = r && vals[w]
		}
		if kind == NAND {
			return !r
		}
		return r
	case OR, NOR:
		r := false
		for _, w := range in {
			r = r || vals[w]
		}
		if kind == NOR {
			return !r
		}
		return r
	case XOR, XNOR:
		r := false
		for _, w := range in {
			r = r != vals[w]
		}
		if kind == XNOR {
			return !r
		}
		return r
	}
	panic("logic: unknown gate kind")
}

// Depth returns the propagation depth (longest gate chain) from any
// primary input or constant to the given wire — the quantity that bounds
// the circuit's clock rate in the lecture on circuit timing. BUF gates
// contribute no depth.
func (c *Circuit) Depth(w Wire) (int, error) {
	if err := c.topoSort(); err != nil {
		return 0, err
	}
	depth := make([]int, c.nwires)
	for _, gi := range c.order {
		g := c.gates[gi]
		d := 0
		for _, in := range g.in {
			if depth[in] > d {
				d = depth[in]
			}
		}
		if g.kind != BUF {
			d++
		}
		depth[g.out] = d
	}
	if int(w) >= c.nwires || w < 0 {
		return 0, fmt.Errorf("logic: unknown wire %d", w)
	}
	return depth[w], nil
}

// TruthTable enumerates all 2^n assignments of the given input wires and
// returns the value of out for each, in binary counting order (inputs[0]
// is the most significant position). It is how the lab asks students to
// check a built circuit against its specification.
func (c *Circuit) TruthTable(inputs []Wire, out Wire) ([]bool, error) {
	n := len(inputs)
	if n > 20 {
		return nil, fmt.Errorf("logic: truth table over %d inputs is too large", n)
	}
	rows := 1 << uint(n)
	table := make([]bool, rows)
	assign := make(map[Wire]bool, n)
	for r := 0; r < rows; r++ {
		for i, w := range inputs {
			assign[w] = r&(1<<uint(n-1-i)) != 0
		}
		vals, err := c.Evaluate(assign)
		if err != nil {
			return nil, err
		}
		table[r] = vals[out]
	}
	return table, nil
}
