package logic

import (
	"testing"
	"testing/quick"

	"repro/internal/bits"
)

func TestPrimitiveGateTruthTables(t *testing.T) {
	cases := []struct {
		kind GateKind
		want []bool // rows 00,01,10,11
	}{
		{AND, []bool{false, false, false, true}},
		{OR, []bool{false, true, true, true}},
		{NAND, []bool{true, true, true, false}},
		{NOR, []bool{true, false, false, false}},
		{XOR, []bool{false, true, true, false}},
		{XNOR, []bool{true, false, false, true}},
	}
	for _, cse := range cases {
		c := New()
		a, b := c.Input(), c.Input()
		out := c.Gate(cse.kind, a, b)
		table, err := c.TruthTable([]Wire{a, b}, out)
		if err != nil {
			t.Fatal(err)
		}
		for i, want := range cse.want {
			if table[i] != want {
				t.Errorf("%v row %02b = %v, want %v", cse.kind, i, table[i], want)
			}
		}
	}
	// NOT
	c := New()
	a := c.Input()
	out := c.Not(a)
	table, _ := c.TruthTable([]Wire{a}, out)
	if !table[0] || table[1] {
		t.Errorf("NOT table = %v", table)
	}
}

func TestGateArityPanics(t *testing.T) {
	c := New()
	a := c.Input()
	for _, f := range []func(){
		func() { c.Gate(NOT, a, a) },
		func() { c.Gate(AND, a) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected arity panic")
				}
			}()
			f()
		}()
	}
}

func TestCycleDetection(t *testing.T) {
	// Build a ring oscillator by manually wiring a gate to read its own
	// output: the Gate API doesn't allow forward references, so we wire
	// output->input through the internal structures by creating a gate whose
	// input is a later gate's output. Simplest: a := NOT(b), b := NOT(a) is
	// impossible through the API; instead we check the error path via a
	// hand-constructed circuit.
	c := New()
	in := c.Input()
	w1 := c.Not(in)
	// Manually create feedback: rewire gate 0's input to its own output.
	c.gates[0].in[0] = w1
	c.dirty = true
	if _, err := c.Evaluate(nil); err != ErrCycle {
		t.Errorf("expected ErrCycle, got %v", err)
	}
}

func TestHalfAndFullAdder(t *testing.T) {
	c := New()
	a, b, cin := c.Input(), c.Input(), c.Input()
	sum, carry := FullAdder(c, a, b, cin)
	for v := 0; v < 8; v++ {
		av, bv, cv := v&4 != 0, v&2 != 0, v&1 != 0
		vals, err := c.Evaluate(map[Wire]bool{a: av, b: bv, cin: cv})
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, x := range []bool{av, bv, cv} {
			if x {
				n++
			}
		}
		if vals[sum] != (n%2 == 1) || vals[carry] != (n >= 2) {
			t.Errorf("full adder (%v,%v,%v): sum=%v carry=%v", av, bv, cv, vals[sum], vals[carry])
		}
	}
}

func TestRippleCarryAdderMatchesArithmetic(t *testing.T) {
	c := New()
	a := c.Inputs(16)
	b := c.Inputs(16)
	cin := c.Const(false)
	sum, cout := RippleCarryAdder(c, a, b, cin)
	f := func(x, y uint16) bool {
		in := make(map[Wire]bool)
		for i := 0; i < 16; i++ {
			in[a[i]] = x&(1<<uint(i)) != 0
			in[b[i]] = y&(1<<uint(i)) != 0
		}
		vals, err := c.Evaluate(in)
		if err != nil {
			return false
		}
		var got uint32
		for i := 0; i < 16; i++ {
			if vals[sum[i]] {
				got |= 1 << uint(i)
			}
		}
		if vals[cout] {
			got |= 1 << 16
		}
		return got == uint32(x)+uint32(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMux(t *testing.T) {
	c := New()
	sel := c.Inputs(2)
	data := c.Inputs(4)
	out := MuxN(c, sel, data)
	for s := 0; s < 4; s++ {
		for d := 0; d < 16; d++ {
			in := map[Wire]bool{
				sel[0]: s&1 != 0, sel[1]: s&2 != 0,
			}
			for i := 0; i < 4; i++ {
				in[data[i]] = d&(1<<uint(i)) != 0
			}
			vals, err := c.Evaluate(in)
			if err != nil {
				t.Fatal(err)
			}
			if vals[out] != (d&(1<<uint(s)) != 0) {
				t.Errorf("mux sel=%d data=%04b: got %v", s, d, vals[out])
			}
		}
	}
}

func TestDecoder(t *testing.T) {
	c := New()
	sel := c.Inputs(3)
	outs := Decoder(c, sel)
	if len(outs) != 8 {
		t.Fatalf("decoder outputs = %d", len(outs))
	}
	for s := 0; s < 8; s++ {
		in := map[Wire]bool{}
		for i := 0; i < 3; i++ {
			in[sel[i]] = s&(1<<uint(i)) != 0
		}
		vals, err := c.Evaluate(in)
		if err != nil {
			t.Fatal(err)
		}
		for o := 0; o < 8; o++ {
			if vals[outs[o]] != (o == s) {
				t.Errorf("decoder sel=%d out[%d]=%v", s, o, vals[outs[o]])
			}
		}
	}
}

func TestEqualComparator(t *testing.T) {
	c := New()
	a := c.Inputs(8)
	b := c.Inputs(8)
	eq := EqualComparator(c, a, b)
	f := func(x, y uint8) bool {
		in := map[Wire]bool{}
		for i := 0; i < 8; i++ {
			in[a[i]] = x&(1<<uint(i)) != 0
			in[b[i]] = y&(1<<uint(i)) != 0
		}
		vals, err := c.Evaluate(in)
		if err != nil {
			return false
		}
		return vals[eq] == (x == y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestALUAgainstBitsPackage cross-validates the gate-level ALU against the
// arithmetic in internal/bits — two independent implementations of the
// same CS31 content must agree bit-for-bit, flags included.
func TestALUAgainstBitsPackage(t *testing.T) {
	alu := NewALU(16)
	f := func(x, y uint16, opRaw uint8) bool {
		op := ALUOp(opRaw % 7)
		got, fl, err := alu.Run(uint64(x), uint64(y), op)
		if err != nil {
			return false
		}
		xi := bits.Int{Bits: uint64(x), Width: 16}
		yi := bits.Int{Bits: uint64(y), Width: 16}
		var want uint64
		var wantC, wantO bool
		switch op {
		case ALUAnd:
			want = bits.And(xi, yi).Uint()
		case ALUOr:
			want = bits.Or(xi, yi).Uint()
		case ALUXor:
			want = bits.Xor(xi, yi).Uint()
		case ALUNor:
			want = bits.Not(bits.Or(xi, yi)).Uint()
		case ALUAdd:
			r, flb, _ := bits.Add(xi, yi)
			want, wantC, wantO = r.Uint(), flb.Carry, flb.Overflow
		case ALUSub:
			r, flb, _ := bits.Sub(xi, yi)
			want, wantC, wantO = r.Uint(), flb.Carry, flb.Overflow
		case ALUSlt:
			if xi.Int64() < yi.Int64() {
				want = 1
			}
		}
		if got != want {
			t.Logf("op=%v x=%d y=%d got=%#x want=%#x", op, x, y, got, want)
			return false
		}
		if op == ALUAdd || op == ALUSub {
			if fl.Carry != wantC || fl.Overflow != wantO {
				t.Logf("op=%v x=%d y=%d flags got C=%v O=%v want C=%v O=%v", op, x, y, fl.Carry, fl.Overflow, wantC, wantO)
				return false
			}
			if fl.Zero != (want == 0) || fl.Negative != (want&0x8000 != 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestALUStats(t *testing.T) {
	alu := NewALU(32)
	gates := alu.Circuit.GateCount()
	if gates == 0 {
		t.Fatal("ALU has no gates")
	}
	d, err := alu.Circuit.Depth(alu.Result[31])
	if err != nil {
		t.Fatal(err)
	}
	// A 32-bit ripple-carry chain should dominate: depth must grow with
	// width but stay bounded (sanity window).
	if d < 32 || d > 400 {
		t.Errorf("ALU result depth = %d, outside sanity window", d)
	}
	// The zero flag NORs every result bit, so it must sit at least one
	// level past the deepest result bit.
	maxRes := 0
	for _, w := range alu.Result {
		dr, _ := alu.Circuit.Depth(w)
		if dr > maxRes {
			maxRes = dr
		}
	}
	dz, _ := alu.Circuit.Depth(alu.Zero)
	if dz <= maxRes {
		t.Errorf("zero flag depth %d should exceed deepest result bit %d", dz, maxRes)
	}
}

func TestSRLatch(t *testing.T) {
	var l SRLatch
	if q, err := l.Apply(true, false); err != nil || !q {
		t.Errorf("set: q=%v err=%v", q, err)
	}
	if q, err := l.Apply(false, false); err != nil || !q {
		t.Errorf("hold: q=%v err=%v", q, err)
	}
	if q, err := l.Apply(false, true); err != nil || q {
		t.Errorf("reset: q=%v err=%v", q, err)
	}
	if _, err := l.Apply(true, true); err == nil {
		t.Error("forbidden state should error")
	}
}

func TestRegisterAndCounter(t *testing.T) {
	r := NewRegister(8)
	r.Clock(0xab, true)
	if r.Value() != 0xab {
		t.Errorf("register = %#x", r.Value())
	}
	r.Clock(0xff, false) // write disabled: holds
	if r.Value() != 0xab {
		t.Errorf("register after disabled write = %#x", r.Value())
	}
	r.Clock(0x1ff, true) // truncates to width
	if r.Value() != 0xff {
		t.Errorf("register truncation = %#x", r.Value())
	}

	c := NewCounter(4)
	for i := 0; i < 17; i++ {
		c.Clock(true)
	}
	if c.Value() != 1 { // wraps at 16
		t.Errorf("counter = %d, want 1", c.Value())
	}
	c.Clock(false)
	if c.Value() != 1 {
		t.Error("disabled clock should hold")
	}
	c.Load(9)
	if c.Value() != 9 {
		t.Errorf("after load, counter = %d", c.Value())
	}
}

func TestRAM(t *testing.T) {
	m := NewRAM(16, 8)
	if m.Size() != 16 {
		t.Fatalf("size = %d", m.Size())
	}
	if _, err := m.Clock(0, 0x5a, true); err != nil {
		t.Fatal(err)
	}
	v, err := m.Clock(0, 0, false)
	if err != nil || v != 0x5a {
		t.Errorf("read back %#x err=%v", v, err)
	}
	if _, err := m.Clock(16, 0, false); err == nil {
		t.Error("expected out-of-range error")
	}
	if _, err := m.Clock(-1, 0, false); err == nil {
		t.Error("expected out-of-range error")
	}
	// width truncation
	m.Clock(3, 0x1ff, true)
	v, _ = m.Clock(3, 0, false)
	if v != 0xff {
		t.Errorf("width truncation: %#x", v)
	}
}

func TestDepthOfInputIsZero(t *testing.T) {
	c := New()
	a := c.Input()
	d, err := c.Depth(a)
	if err != nil || d != 0 {
		t.Errorf("input depth = %d err=%v", d, err)
	}
	out := c.And(a, c.Not(a))
	d, _ = c.Depth(out)
	if d != 2 {
		t.Errorf("AND(NOT) depth = %d, want 2", d)
	}
}
