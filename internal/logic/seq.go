package logic

import "fmt"

// This file implements the sequential (stateful) elements from the storage
// circuits lecture: the SR latch, the clocked D flip-flop, multi-bit
// registers, a counter, and a small word-addressed RAM. They are modelled
// behaviourally at the level of latched state plus a clock edge, which is
// how the course presents them after the gate-level SR-latch derivation.

// SRLatch is a set-reset latch. Set and Reset are level inputs; Q is the
// stored bit. Driving both high is the forbidden state and is reported as
// an error rather than modelled as metastability.
type SRLatch struct {
	q bool
}

// Apply drives the latch inputs and returns the new stored value.
func (l *SRLatch) Apply(set, reset bool) (bool, error) {
	switch {
	case set && reset:
		return l.q, fmt.Errorf("logic: SR latch forbidden state (S=R=1)")
	case set:
		l.q = true
	case reset:
		l.q = false
	}
	return l.q, nil
}

// Q returns the currently stored bit.
func (l *SRLatch) Q() bool { return l.q }

// DFlipFlop is a positive-edge-triggered D flip-flop: the input D is
// captured into Q on each Clock call.
type DFlipFlop struct {
	q bool
}

// Clock presents a rising clock edge with input d, returning the new Q.
func (f *DFlipFlop) Clock(d bool) bool {
	f.q = d
	return f.q
}

// Q returns the currently stored bit.
func (f *DFlipFlop) Q() bool { return f.q }

// Register is an n-bit clocked register with a write-enable, built from D
// flip-flops.
type Register struct {
	ffs []DFlipFlop
}

// NewRegister creates an n-bit register initialized to zero.
func NewRegister(n int) *Register {
	return &Register{ffs: make([]DFlipFlop, n)}
}

// Width returns the register width in bits.
func (r *Register) Width() int { return len(r.ffs) }

// Clock presents a clock edge. When writeEnable is high the low Width bits
// of d are captured; otherwise the register retains its value.
func (r *Register) Clock(d uint64, writeEnable bool) uint64 {
	if writeEnable {
		for i := range r.ffs {
			r.ffs[i].Clock(d&(1<<uint(i)) != 0)
		}
	}
	return r.Value()
}

// Value returns the currently stored value.
func (r *Register) Value() uint64 {
	var v uint64
	for i := range r.ffs {
		if r.ffs[i].Q() {
			v |= 1 << uint(i)
		}
	}
	return v
}

// Counter is an n-bit counter register that increments on each enabled
// clock, wrapping at 2^n — the program-counter model.
type Counter struct {
	reg   *Register
	width int
}

// NewCounter creates an n-bit counter starting at zero.
func NewCounter(n int) *Counter {
	return &Counter{reg: NewRegister(n), width: n}
}

// Clock advances the counter when enable is high and returns the new value.
func (c *Counter) Clock(enable bool) uint64 {
	if enable {
		next := c.reg.Value() + 1
		if c.width < 64 {
			next &= (1 << uint(c.width)) - 1
		}
		c.reg.Clock(next, true)
	}
	return c.reg.Value()
}

// Load sets the counter to v on the next clock (a jump).
func (c *Counter) Load(v uint64) {
	if c.width < 64 {
		v &= (1 << uint(c.width)) - 1
	}
	c.reg.Clock(v, true)
}

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.reg.Value() }

// RAM is a word-addressed random-access memory built from registers, with
// the one-read-or-write-per-clock interface of the storage lecture.
type RAM struct {
	words []uint64
	width int
}

// NewRAM creates a RAM with the given number of words of width bits each.
func NewRAM(words, width int) *RAM {
	return &RAM{words: make([]uint64, words), width: width}
}

// Size returns the number of words.
func (m *RAM) Size() int { return len(m.words) }

// Clock performs one memory cycle: when write is high, data is stored at
// addr; the value at addr (after any write) is returned on the read port.
func (m *RAM) Clock(addr int, data uint64, write bool) (uint64, error) {
	if addr < 0 || addr >= len(m.words) {
		return 0, fmt.Errorf("logic: RAM address %d out of range [0,%d)", addr, len(m.words))
	}
	if write {
		if m.width < 64 {
			data &= (1 << uint(m.width)) - 1
		}
		m.words[addr] = data
	}
	return m.words[addr], nil
}
