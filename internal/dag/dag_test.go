package dag

import (
	"errors"
	"testing"
	"testing/quick"
)

// diamond builds the classic 4-node diamond: a -> b, a -> c, b -> d, c -> d.
func diamond(t *testing.T) (*Graph, [4]Task) {
	t.Helper()
	g := New()
	a := g.AddTask(1, "a")
	b := g.AddTask(3, "b")
	c := g.AddTask(5, "c")
	d := g.AddTask(2, "d")
	for _, e := range [][2]Task{{a, b}, {a, c}, {b, d}, {c, d}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return g, [4]Task{a, b, c, d}
}

func TestWorkSpanDiamond(t *testing.T) {
	g, ts := diamond(t)
	if w := g.Work(); w != 11 {
		t.Errorf("work = %d, want 11", w)
	}
	span, path, err := g.Span()
	if err != nil {
		t.Fatal(err)
	}
	if span != 8 { // a(1) + c(5) + d(2)
		t.Errorf("span = %d, want 8", span)
	}
	if len(path) != 3 || path[0] != ts[0] || path[1] != ts[2] || path[2] != ts[3] {
		t.Errorf("critical path = %v", path)
	}
	par, err := g.Parallelism()
	if err != nil {
		t.Fatal(err)
	}
	if par < 1.37 || par > 1.38 { // 11/8
		t.Errorf("parallelism = %f", par)
	}
}

func TestCycleDetected(t *testing.T) {
	g := New()
	a := g.AddTask(1, "a")
	b := g.AddTask(1, "b")
	g.AddEdge(a, b)
	g.AddEdge(b, a)
	if _, err := g.TopoOrder(); !errors.Is(err, ErrCycle) {
		t.Errorf("cycle: %v", err)
	}
	if _, _, err := g.Span(); !errors.Is(err, ErrCycle) {
		t.Errorf("span on cycle: %v", err)
	}
	if err := g.AddEdge(a, a); err == nil {
		t.Error("self edge should error")
	}
	if err := g.AddEdge(a, Task(99)); err == nil {
		t.Error("unknown task should error")
	}
}

func TestGreedyScheduleDiamond(t *testing.T) {
	g, _ := diamond(t)
	for _, p := range []int{1, 2, 4} {
		s, err := g.GreedySchedule(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Validate(s); err != nil {
			t.Errorf("p=%d: invalid schedule: %v", p, err)
		}
		span, _, _ := g.Span()
		if s.Makespan < span {
			t.Errorf("p=%d: makespan %d beats the span %d (impossible)", p, s.Makespan, span)
		}
		bound, _ := g.BrentUpperBound(p)
		if float64(s.Makespan) > bound+1e-9 {
			t.Errorf("p=%d: makespan %d violates Brent bound %.1f", p, s.Makespan, bound)
		}
	}
	// One processor: makespan == work.
	s1, _ := g.GreedySchedule(1)
	if s1.Makespan != g.Work() {
		t.Errorf("p=1 makespan %d != work %d", s1.Makespan, g.Work())
	}
	// Many processors: makespan == span.
	s8, _ := g.GreedySchedule(8)
	span, _, _ := g.Span()
	if s8.Makespan != span {
		t.Errorf("p=8 makespan %d != span %d", s8.Makespan, span)
	}
}

func TestGreedyRejectsBadP(t *testing.T) {
	g, _ := diamond(t)
	if _, err := g.GreedySchedule(0); err == nil {
		t.Error("p=0 should error")
	}
	if _, err := g.BrentUpperBound(0); err == nil {
		t.Error("Brent p=0 should error")
	}
}

// randomDAG builds a layered random DAG from quick-check bytes.
func randomDAG(costs []uint8, edges []uint16) *Graph {
	g := New()
	n := len(costs)
	for i, c := range costs {
		g.AddTask(int64(c%13)+1, "")
		_ = i
	}
	for _, e := range edges {
		if n < 2 {
			break
		}
		from := int(e>>8) % n
		to := int(e&0xff) % n
		if from < to { // forward edges only: guaranteed acyclic
			g.AddEdge(Task(from), Task(to))
		}
	}
	return g
}

func TestBrentBoundProperty(t *testing.T) {
	f := func(costs []uint8, edges []uint16, pRaw uint8) bool {
		if len(costs) == 0 || len(costs) > 40 {
			return true
		}
		g := randomDAG(costs, edges)
		p := int(pRaw%8) + 1
		s, err := g.GreedySchedule(p)
		if err != nil {
			return false
		}
		if g.Validate(s) != nil {
			return false
		}
		span, _, err := g.Span()
		if err != nil {
			return false
		}
		bound := float64(g.Work())/float64(p) + float64(span)
		// Greedy is work-conserving: lower bounds too.
		lower := float64(g.Work()) / float64(p)
		if float64(s.Makespan) < float64(span) || float64(s.Makespan) < lower-1e9 {
			return false
		}
		return float64(s.Makespan) <= bound+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestMoreProcessorsNeverSlower(t *testing.T) {
	f := func(costs []uint8, edges []uint16) bool {
		if len(costs) == 0 || len(costs) > 30 {
			return true
		}
		g := randomDAG(costs, edges)
		prev := int64(1 << 62)
		for p := 1; p <= 6; p++ {
			s, err := g.GreedySchedule(p)
			if err != nil {
				return false
			}
			// Greedy scheduling anomalies are possible in general DAG
			// scheduling with unit release; for this deterministic greedy on
			// identical processors, allow tiny anomalies but not gross ones.
			if s.Makespan > prev+prev/4 {
				return false
			}
			if s.Makespan < prev {
				prev = s.Makespan
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestForkJoinComposition(t *testing.T) {
	// work = 1+2+3+4, span(par(2,3,4)) = 4, plus seq head 1: span 5.
	g := New()
	head := Leaf(g, 1, "head")
	p := Par(g, Leaf(g, 2, "x"), Leaf(g, 3, "y"), Leaf(g, 4, "z"))
	frag := Seq(head, p)
	_ = frag
	if w := g.Work(); w != 10 {
		t.Errorf("work = %d, want 10", w)
	}
	span, _, err := g.Span()
	if err != nil {
		t.Fatal(err)
	}
	if span != 5 {
		t.Errorf("span = %d, want 5 (1 + max(2,3,4))", span)
	}
}

func TestNestedForkJoinMergeSortShape(t *testing.T) {
	// Model parallel merge sort's recursion on n=8 with unit leaf costs
	// and merge cost = subproblem size: T1 = sum of merges = n log n-ish,
	// span = chain of merges = 8 + 4 + 2 + 1.
	g := New()
	var build func(n int64) Fragment
	build = func(n int64) Fragment {
		if n <= 1 {
			return Leaf(g, 1, "base")
		}
		left := build(n / 2)
		right := build(n / 2)
		merge := Leaf(g, n, "merge")
		return Seq(Par(g, left, right), merge)
	}
	root := build(8)
	_ = root
	span, _, err := g.Span()
	if err != nil {
		t.Fatal(err)
	}
	// span = 1 (leaf) + 2 + 4 + 8 (merges) = 15
	if span != 15 {
		t.Errorf("merge-sort span = %d, want 15", span)
	}
	// work = 8 leaves + merges (8 + 2*4 + 4*2) = 8 + 24 = 32
	if w := g.Work(); w != 32 {
		t.Errorf("merge-sort work = %d, want 32", w)
	}
	par, _ := g.Parallelism()
	if par <= 1 {
		t.Errorf("parallelism = %f", par)
	}
}
