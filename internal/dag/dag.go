// Package dag implements the task-graph model from CS41 Table III: DAGs
// of tasks with costs, work (T1) and span (T∞) computation, the critical
// path, parallelism T1/T∞, greedy list scheduling onto P processors with
// verification of Brent's bound T_P ≤ T1/P + T∞, and series/parallel
// composition helpers that mirror fork-join program structure.
package dag

import (
	"errors"
	"fmt"
	"sort"
)

// Task identifies a node in the graph.
type Task int

// Graph is a DAG of tasks with non-negative costs.
type Graph struct {
	cost  []int64
	succ  [][]Task
	pred  [][]Task
	label []string
}

// New creates an empty graph.
func New() *Graph { return &Graph{} }

// AddTask adds a task with the given cost and label, returning its id.
func (g *Graph) AddTask(cost int64, label string) Task {
	if cost < 0 {
		cost = 0
	}
	g.cost = append(g.cost, cost)
	g.succ = append(g.succ, nil)
	g.pred = append(g.pred, nil)
	g.label = append(g.label, label)
	return Task(len(g.cost) - 1)
}

// AddEdge adds a dependency: from must complete before to starts.
func (g *Graph) AddEdge(from, to Task) error {
	if !g.valid(from) || !g.valid(to) {
		return fmt.Errorf("dag: unknown task in edge %d -> %d", from, to)
	}
	if from == to {
		return fmt.Errorf("dag: self edge on task %d", from)
	}
	g.succ[from] = append(g.succ[from], to)
	g.pred[to] = append(g.pred[to], from)
	return nil
}

func (g *Graph) valid(t Task) bool { return t >= 0 && int(t) < len(g.cost) }

// Size returns the number of tasks.
func (g *Graph) Size() int { return len(g.cost) }

// Cost returns the cost of task t.
func (g *Graph) Cost(t Task) int64 { return g.cost[t] }

// Label returns the label of task t.
func (g *Graph) Label(t Task) string { return g.label[t] }

// ErrCycle is returned when the graph is not acyclic.
var ErrCycle = errors.New("dag: cycle detected")

// TopoOrder returns a topological order, or ErrCycle.
func (g *Graph) TopoOrder() ([]Task, error) {
	n := len(g.cost)
	indeg := make([]int, n)
	for _, ps := range g.pred {
		_ = ps
	}
	for t := 0; t < n; t++ {
		indeg[t] = len(g.pred[t])
	}
	queue := make([]Task, 0, n)
	for t := 0; t < n; t++ {
		if indeg[t] == 0 {
			queue = append(queue, Task(t))
		}
	}
	order := make([]Task, 0, n)
	for len(queue) > 0 {
		t := queue[0]
		queue = queue[1:]
		order = append(order, t)
		for _, s := range g.succ[t] {
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if len(order) != n {
		return nil, ErrCycle
	}
	return order, nil
}

// Work returns T1: the total cost of all tasks.
func (g *Graph) Work() int64 {
	var w int64
	for _, c := range g.cost {
		w += c
	}
	return w
}

// Span returns T∞ (the critical-path cost) and one critical path.
func (g *Graph) Span() (int64, []Task, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return 0, nil, err
	}
	n := len(g.cost)
	finish := make([]int64, n)
	via := make([]Task, n)
	for i := range via {
		via[i] = -1
	}
	var best Task = -1
	var span int64
	for _, t := range order {
		f := g.cost[t]
		for _, p := range g.pred[t] {
			if finish[p]+g.cost[t] > f {
				f = finish[p] + g.cost[t]
				via[t] = p
			}
		}
		finish[t] = f
		if f > span || best == -1 {
			span, best = f, t
		}
	}
	// Reconstruct the path.
	var path []Task
	for t := best; t != -1; t = via[t] {
		path = append(path, t)
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return span, path, nil
}

// Parallelism returns T1/T∞ — the maximum useful processor count.
func (g *Graph) Parallelism() (float64, error) {
	span, _, err := g.Span()
	if err != nil {
		return 0, err
	}
	if span == 0 {
		return 0, nil
	}
	return float64(g.Work()) / float64(span), nil
}

// ScheduleEntry records one task's placement in a schedule.
type ScheduleEntry struct {
	Task      Task
	Processor int
	Start     int64
	Finish    int64
}

// Schedule is the outcome of list scheduling onto P processors.
type Schedule struct {
	P        int
	Makespan int64
	Entries  []ScheduleEntry
}

// BrentUpperBound returns T1/P + T∞, the greedy-scheduling guarantee.
func (g *Graph) BrentUpperBound(p int) (float64, error) {
	if p <= 0 {
		return 0, errors.New("dag: processors must be positive")
	}
	span, _, err := g.Span()
	if err != nil {
		return 0, err
	}
	return float64(g.Work())/float64(p) + float64(span), nil
}

// GreedySchedule runs greedy (work-conserving) list scheduling on P
// identical processors: whenever a processor is free and a task is ready,
// it runs. Ties go to the lowest task id — deterministic.
func (g *Graph) GreedySchedule(p int) (Schedule, error) {
	if p <= 0 {
		return Schedule{}, errors.New("dag: processors must be positive")
	}
	if _, err := g.TopoOrder(); err != nil {
		return Schedule{}, err
	}
	n := len(g.cost)
	remainingPreds := make([]int, n)
	for t := 0; t < n; t++ {
		remainingPreds[t] = len(g.pred[t])
	}
	ready := make([]Task, 0, n)
	for t := 0; t < n; t++ {
		if remainingPreds[t] == 0 {
			ready = append(ready, Task(t))
		}
	}
	procFree := make([]int64, p) // time each processor becomes free
	sched := Schedule{P: p}
	running := make([]ScheduleEntry, 0, p) // tasks in flight, sorted by finish
	done := 0
	var now int64

	for done < n {
		// Start as many ready tasks as idle processors allow at time `now`.
		sort.Slice(ready, func(i, j int) bool { return ready[i] < ready[j] })
		for len(ready) > 0 {
			// Find an idle processor at `now`.
			proc := -1
			for i := range procFree {
				if procFree[i] <= now {
					proc = i
					break
				}
			}
			if proc == -1 {
				break
			}
			t := ready[0]
			ready = ready[1:]
			e := ScheduleEntry{Task: t, Processor: proc, Start: now, Finish: now + g.cost[t]}
			procFree[proc] = e.Finish
			running = append(running, e)
			sched.Entries = append(sched.Entries, e)
		}
		if len(running) == 0 {
			return Schedule{}, errors.New("dag: scheduler stuck (internal error)")
		}
		// Advance to the earliest finish; retire everything finishing then.
		sort.Slice(running, func(i, j int) bool { return running[i].Finish < running[j].Finish })
		now = running[0].Finish
		for len(running) > 0 && running[0].Finish <= now {
			e := running[0]
			running = running[1:]
			done++
			if e.Finish > sched.Makespan {
				sched.Makespan = e.Finish
			}
			for _, s := range g.succ[e.Task] {
				remainingPreds[s]--
				if remainingPreds[s] == 0 {
					ready = append(ready, s)
				}
			}
		}
	}
	return sched, nil
}

// Validate checks that a schedule respects dependencies and processor
// exclusivity — used by tests and by the Brent verification bench.
func (g *Graph) Validate(s Schedule) error {
	finish := make(map[Task]int64, len(s.Entries))
	start := make(map[Task]int64, len(s.Entries))
	byProc := make(map[int][]ScheduleEntry)
	for _, e := range s.Entries {
		finish[e.Task] = e.Finish
		start[e.Task] = e.Start
		if e.Finish-e.Start != g.cost[e.Task] {
			return fmt.Errorf("dag: task %d scheduled for %d, cost %d", e.Task, e.Finish-e.Start, g.cost[e.Task])
		}
		byProc[e.Processor] = append(byProc[e.Processor], e)
	}
	if len(s.Entries) != len(g.cost) {
		return fmt.Errorf("dag: schedule has %d entries for %d tasks", len(s.Entries), len(g.cost))
	}
	for t := range g.cost {
		for _, p := range g.pred[t] {
			if finish[p] > start[Task(t)] {
				return fmt.Errorf("dag: task %d starts at %d before predecessor %d finishes at %d",
					t, start[Task(t)], p, finish[p])
			}
		}
	}
	for proc, es := range byProc {
		sort.Slice(es, func(i, j int) bool { return es[i].Start < es[j].Start })
		for i := 1; i < len(es); i++ {
			if es[i].Start < es[i-1].Finish {
				return fmt.Errorf("dag: processor %d overlap: task %d and %d", proc, es[i-1].Task, es[i].Task)
			}
		}
	}
	return nil
}

// --- series/parallel composition: the fork-join calculus ---

// Fragment is a sub-DAG with a single entry and exit, supporting the
// series (;) and parallel (||) composition used to analyze fork-join
// programs on the board.
type Fragment struct {
	g           *Graph
	entry, exit Task
}

// Leaf creates a single-task fragment in g.
func Leaf(g *Graph, cost int64, label string) Fragment {
	t := g.AddTask(cost, label)
	return Fragment{g: g, entry: t, exit: t}
}

// Seq composes fragments in series: a then b.
func Seq(a, b Fragment) Fragment {
	a.g.AddEdge(a.exit, b.entry)
	return Fragment{g: a.g, entry: a.entry, exit: b.exit}
}

// Par composes fragments in parallel between zero-cost fork and join
// nodes.
func Par(g *Graph, frags ...Fragment) Fragment {
	fork := g.AddTask(0, "fork")
	join := g.AddTask(0, "join")
	for _, f := range frags {
		g.AddEdge(fork, f.entry)
		g.AddEdge(f.exit, join)
	}
	return Fragment{g: g, entry: fork, exit: join}
}
