package dag

import (
	"context"
	"errors"
	"math"
	"sync/atomic"
	"time"

	"repro/internal/sched"
)

// ExecReport is the result of actually running a task graph on the
// work-stealing scheduler — the lecture's Brent's-theorem board algebra
// turned into a measurement.
type ExecReport struct {
	Workers int
	Elapsed time.Duration
	Work    int64 // T1 in cost units
	Span    int64 // T∞ in cost units
	Tasks   int64 // tasks executed (== g.Size())

	// Parallelism is T1/T∞, the maximum useful worker count.
	Parallelism float64
	// IdealSpeedup is the greedy-scheduling ideal on this worker count:
	// T1 / max(T1/P, T∞), i.e. min(P, parallelism).
	IdealSpeedup float64
	// AchievedSpeedup is predicted-serial-time / measured wall time,
	// where predicted serial time is Work * unit.
	AchievedSpeedup float64

	// Sched holds the pool's counters for the run (steals, busy/idle).
	Sched sched.Stats
}

// Execute runs g on a fresh pool of `workers` workers. Each task
// busy-spins for cost*unit (the simulated grain), tasks become ready
// when their last predecessor finishes, and ready tasks are forked onto
// the scheduler — so the measured makespan includes real stealing and
// load-balancing effects. Returns ErrCycle for cyclic graphs. It wraps
// ExecuteCtx with context.Background().
func Execute(g *Graph, workers int, unit time.Duration) (ExecReport, error) {
	return ExecuteCtx(context.Background(), g, workers, unit)
}

// ExecuteCtx is Execute under a caller lifetime: once ctx is done, no
// newly-ready task is forked (tasks already running finish their spin),
// the graph drains, and the wrapped ctx.Err() comes back alongside a
// partial report — Tasks says how deep into the graph the run got.
func ExecuteCtx(ctx context.Context, g *Graph, workers int, unit time.Duration) (ExecReport, error) {
	if workers <= 0 {
		return ExecReport{}, errors.New("dag: workers must be positive")
	}
	if unit < 0 {
		return ExecReport{}, errors.New("dag: unit must be non-negative")
	}
	if _, err := g.TopoOrder(); err != nil {
		return ExecReport{}, err
	}
	span, _, err := g.Span()
	if err != nil {
		return ExecReport{}, err
	}
	rep := ExecReport{
		Workers: workers,
		Work:    g.Work(),
		Span:    span,
	}
	n := g.Size()
	if n == 0 {
		return rep, nil
	}

	pool := sched.New(workers)
	defer pool.Close()

	remaining := make([]atomic.Int32, n)
	for t := 0; t < n; t++ {
		remaining[t].Store(int32(len(g.pred[t])))
	}
	var tasksRun atomic.Int64

	var runTask func(c *sched.Task, grp *sched.Group, t Task)
	runTask = func(c *sched.Task, grp *sched.Group, t Task) {
		spin(time.Duration(g.cost[t]) * unit)
		tasksRun.Add(1)
		for _, s := range g.succ[t] {
			if remaining[s].Add(-1) == 0 {
				if ctx.Err() != nil {
					continue // canceled: stop releasing successors
				}
				s := s
				grp.Fork(c, func(c2 *sched.Task) { runTask(c2, grp, s) })
			}
		}
	}

	start := time.Now()
	err = pool.DoCtx(ctx, func(c *sched.Task) {
		var grp sched.Group
		// Seed only the true roots (initial indegree zero). Checking
		// remaining==0 here instead would race with running tasks: a
		// task whose predecessors finish mid-loop reaches zero and gets
		// forked both here and by runTask's Add(-1)==0 path, running
		// twice and releasing its successors early.
		for t := 0; t < n; t++ {
			if ctx.Err() != nil {
				break
			}
			if len(g.pred[t]) == 0 {
				t := Task(t)
				grp.Fork(c, func(c2 *sched.Task) { runTask(c2, &grp, t) })
			}
		}
		grp.Wait(c)
	})
	rep.Elapsed = time.Since(start)
	rep.Tasks = tasksRun.Load()
	rep.Sched = pool.Stats()
	if err != nil {
		return rep, err
	}

	if span > 0 {
		rep.Parallelism = float64(rep.Work) / float64(span)
		rep.IdealSpeedup = math.Min(float64(workers), rep.Parallelism)
	}
	if unit > 0 && rep.Elapsed > 0 {
		serial := time.Duration(rep.Work) * unit
		rep.AchievedSpeedup = float64(serial) / float64(rep.Elapsed)
	}
	return rep, nil
}

// spin burns CPU for d — simulated work must occupy a worker, not
// sleep, or the makespan would not exercise the scheduler at all.
func spin(d time.Duration) {
	if d <= 0 {
		return
	}
	start := time.Now()
	for time.Since(start) < d {
		for i := 0; i < 64; i++ {
			_ = i * i
		}
	}
}
