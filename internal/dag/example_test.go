package dag_test

import (
	"fmt"

	"repro/internal/dag"
)

// Fork-join composition computes work and span the way CS41 does on the
// board: seq(a, par(b, c)) has work a+b+c and span a+max(b,c).
func Example() {
	g := dag.New()
	frag := dag.Seq(dag.Leaf(g, 2, "setup"), dag.Par(g,
		dag.Leaf(g, 10, "left"),
		dag.Leaf(g, 6, "right"),
	))
	_ = frag
	span, _, err := g.Span()
	if err != nil {
		fmt.Println(err)
		return
	}
	par, _ := g.Parallelism()
	fmt.Printf("work=%d span=%d parallelism=%.2f\n", g.Work(), span, par)
	// Output: work=18 span=12 parallelism=1.50
}

// Greedy scheduling respects Brent's bound T_P <= T1/P + Tinf.
func ExampleGraph_GreedySchedule() {
	g := dag.New()
	dag.Par(g,
		dag.Leaf(g, 4, "a"), dag.Leaf(g, 4, "b"),
		dag.Leaf(g, 4, "c"), dag.Leaf(g, 4, "d"),
	)
	s, err := g.GreedySchedule(2)
	if err != nil {
		fmt.Println(err)
		return
	}
	bound, _ := g.BrentUpperBound(2)
	fmt.Println(s.Makespan <= int64(bound))
	fmt.Println("makespan:", s.Makespan)
	// Output:
	// true
	// makespan: 8
}
