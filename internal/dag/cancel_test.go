package dag

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestExecuteCtxCanceledMidGraph: canceling a running graph execution
// stops successors from being released; the run drains, reports the
// wrapped ctx error, and the partial report shows a strict prefix of
// the graph executed.
func TestExecuteCtxCanceledMidGraph(t *testing.T) {
	g := New()
	// A 200-task chain at 2ms per task: ~400ms serial makespan, so a
	// 50ms cancel must land mid-graph with wide margins on both sides.
	const chain = 200
	prev := g.AddTask(1, "t0")
	for i := 1; i < chain; i++ {
		n := g.AddTask(1, "t")
		g.AddEdge(prev, n)
		prev = n
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	rep, err := ExecuteCtx(ctx, g, 2, 2*time.Millisecond)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ExecuteCtx = %v, want wrapped context.Canceled", err)
	}
	if rep.Tasks == 0 || rep.Tasks >= chain {
		t.Errorf("partial report ran %d of %d tasks, want a strict non-empty prefix", rep.Tasks, chain)
	}
}

// TestExecuteCtxPreCanceled: a context that is already done aborts
// before any task runs.
func TestExecuteCtxPreCanceled(t *testing.T) {
	g := New()
	g.AddTask(1, "only")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := ExecuteCtx(ctx, g, 2, time.Millisecond)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ExecuteCtx on canceled ctx = %v, want wrapped context.Canceled", err)
	}
	if rep.Tasks != 0 {
		t.Errorf("pre-canceled run executed %d tasks", rep.Tasks)
	}
}
