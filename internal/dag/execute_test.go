package dag

import (
	"testing"
	"time"
)

// forkJoinGraph builds a depth-d binary fork-join DAG with leaf cost 1
// and join cost d at each level.
func forkJoinGraph(d int) *Graph {
	g := New()
	var build func(d int) Fragment
	build = func(d int) Fragment {
		if d == 0 {
			return Leaf(g, 1, "leaf")
		}
		return Seq(Par(g, build(d-1), build(d-1)), Leaf(g, int64(d), "join"))
	}
	build(d)
	return g
}

func TestExecuteRunsEveryTaskOnce(t *testing.T) {
	g := forkJoinGraph(6)
	rep, err := Execute(g, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tasks != int64(g.Size()) {
		t.Fatalf("ran %d of %d tasks", rep.Tasks, g.Size())
	}
	if rep.Work != g.Work() {
		t.Errorf("work %d != %d", rep.Work, g.Work())
	}
	span, _, _ := g.Span()
	if rep.Span != span {
		t.Errorf("span %d != %d", rep.Span, span)
	}
	if rep.Sched.Tasks < int64(g.Size()) {
		t.Errorf("scheduler ran %d tasks for %d graph nodes", rep.Sched.Tasks, g.Size())
	}
}

// TestExecuteRespectsDependencies hammers a layered DAG repeatedly
// (and under -race in CI) so missed-dependency forks or double-forks
// would show up as lost or duplicated tasks.
func TestExecuteRespectsDependencies(t *testing.T) {
	g := New()
	// Layered random-ish DAG: 6 layers of 4, each task depends on two
	// tasks of the previous layer.
	const layers, width = 6, 4
	ids := make([][]Task, layers)
	for l := 0; l < layers; l++ {
		ids[l] = make([]Task, width)
		for w := 0; w < width; w++ {
			ids[l][w] = g.AddTask(int64(1+(l*width+w)%3), "t")
			if l > 0 {
				g.AddEdge(ids[l-1][w], ids[l][w])               //nolint:errcheck
				g.AddEdge(ids[l-1][(w+1)%width], ids[l][w])     //nolint:errcheck
			}
		}
	}
	for i := 0; i < 10; i++ {
		rep, err := Execute(g, 4, 10*time.Microsecond)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Tasks != int64(g.Size()) {
			t.Fatalf("round %d: ran %d of %d", i, rep.Tasks, g.Size())
		}
	}
}

// TestExecuteWideLayersExactlyOnce is the double-fork regression: with
// zero-cost tasks, layer-1 tasks finish while the seed loop is still
// scanning, so a seed condition of remaining==0 (instead of initial
// indegree zero) forked layer-2 tasks twice — a 60k-node graph executed
// ~80k task bodies and released successors before all predecessors ran.
func TestExecuteWideLayersExactlyOnce(t *testing.T) {
	g := New()
	const width = 20000
	top := make([]Task, width)
	for i := range top {
		top[i] = g.AddTask(1, "top")
	}
	for i := 0; i < width; i++ {
		b := g.AddTask(1, "bot")
		g.AddEdge(top[i], b) //nolint:errcheck
	}
	// The double-fork is a race; several rounds make a regression
	// reliably visible (the racy seed lost >1 in 5 runs of a round).
	for round := 0; round < 6; round++ {
		rep, err := Execute(g, 8, 0)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Tasks != int64(g.Size()) {
			t.Fatalf("round %d: ran %d tasks for graph of %d", round, rep.Tasks, g.Size())
		}
	}
}

func TestExecuteSpeedupReport(t *testing.T) {
	g := forkJoinGraph(5)
	rep, err := Execute(g, 4, 50*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Parallelism <= 1 {
		t.Errorf("parallelism = %f", rep.Parallelism)
	}
	if rep.IdealSpeedup <= 0 || rep.IdealSpeedup > 4 {
		t.Errorf("ideal speedup = %f", rep.IdealSpeedup)
	}
	if rep.AchievedSpeedup <= 0 {
		t.Errorf("achieved speedup = %f", rep.AchievedSpeedup)
	}
	// Wall time can never beat the critical path.
	if min := time.Duration(rep.Span) * 50 * time.Microsecond; rep.Elapsed < min {
		t.Errorf("elapsed %v below span lower bound %v", rep.Elapsed, min)
	}
	// One worker: achieved speedup can't meaningfully exceed 1.
	rep1, err := Execute(g, 1, 50*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if rep1.AchievedSpeedup > 1.3 {
		t.Errorf("1-worker achieved speedup %f > 1", rep1.AchievedSpeedup)
	}
	if rep1.IdealSpeedup != 1 {
		t.Errorf("1-worker ideal speedup = %f", rep1.IdealSpeedup)
	}
}

func TestExecuteErrors(t *testing.T) {
	g := New()
	a := g.AddTask(1, "a")
	b := g.AddTask(1, "b")
	g.AddEdge(a, b) //nolint:errcheck
	g.AddEdge(b, a) //nolint:errcheck
	if _, err := Execute(g, 2, 0); err != ErrCycle {
		t.Errorf("cycle: %v", err)
	}
	ok := New()
	ok.AddTask(1, "x")
	if _, err := Execute(ok, 0, 0); err == nil {
		t.Error("workers=0 should error")
	}
	if _, err := Execute(ok, 2, -time.Second); err == nil {
		t.Error("negative unit should error")
	}
	empty := New()
	rep, err := Execute(empty, 2, 0)
	if err != nil || rep.Tasks != 0 {
		t.Errorf("empty graph: %v %+v", err, rep)
	}
}

func TestExecuteGroupLateForks(t *testing.T) {
	// A long chain: every task forks its successor after Wait started —
	// the Group late-arrival path.
	g := New()
	prev := g.AddTask(1, "head")
	for i := 0; i < 50; i++ {
		next := g.AddTask(1, "link")
		g.AddEdge(prev, next) //nolint:errcheck
		prev = next
	}
	rep, err := Execute(g, 3, time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tasks != 51 {
		t.Fatalf("chain ran %d tasks", rep.Tasks)
	}
	if rep.Parallelism != 1 {
		t.Errorf("chain parallelism = %f, want 1", rep.Parallelism)
	}
}
