package dfs

import (
	"strings"
	"testing"
	"time"
)

func fastCluster(replicas int) Cluster {
	return Cluster{Replicas: replicas, Heartbeat: 150 * time.Millisecond}
}

func TestBasicPutGet(t *testing.T) {
	res, err := fastCluster(3).Run(Scenario{
		"put a 1",
		"put b 2",
		"get a 1",
		"get b 2",
		"getmissing c",
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failovers != 0 {
		t.Errorf("failovers = %d", res.Failovers)
	}
	if res.FinalState["a"] != "1" || res.FinalState["b"] != "2" {
		t.Errorf("final state: %v", res.FinalState)
	}
}

func TestSingleReplica(t *testing.T) {
	res, err := fastCluster(1).Run(Scenario{
		"put x 9",
		"get x 9",
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 2 {
		t.Errorf("ops = %d", res.Ops)
	}
}

func TestPrimaryFailover(t *testing.T) {
	res, err := fastCluster(3).Run(Scenario{
		"put a 1",
		"put b 2",
		"crash",   // kill primary (rank 1)
		"get a 1", // must survive via backup promotion
		"get b 2",
		"put c 3", // writes continue on the new primary
		"get c 3",
	})
	if err != nil {
		t.Fatalf("%v\ntrace:\n%s", err, strings.Join(res.Trace, "\n"))
	}
	if res.Failovers != 1 {
		t.Errorf("failovers = %d, want 1", res.Failovers)
	}
	if len(res.FinalState) != 3 {
		t.Errorf("final state: %v", res.FinalState)
	}
}

func TestDoubleFailover(t *testing.T) {
	res, err := fastCluster(3).Run(Scenario{
		"put k v1",
		"crash",
		"get k v1",
		"put k v2",
		"crash",
		"get k v2", // survives two failovers on the last replica
		"put last 1",
		"get last 1",
	})
	if err != nil {
		t.Fatalf("%v\ntrace:\n%s", err, strings.Join(res.Trace, "\n"))
	}
	if res.Failovers != 2 {
		t.Errorf("failovers = %d, want 2", res.Failovers)
	}
}

func TestBackupCrashDoesNotBlockWrites(t *testing.T) {
	res, err := fastCluster(3).Run(Scenario{
		"put a 1",
		"crashbackup 0", // kill the first backup
		"put b 2",       // primary must not hang waiting for a dead backup
		"get a 1",
		"get b 2",
		"crash", // now kill the primary: remaining backup takes over
		"get a 1",
		"get b 2",
	})
	if err != nil {
		t.Fatalf("%v\ntrace:\n%s", err, strings.Join(res.Trace, "\n"))
	}
	if res.Failovers != 1 {
		t.Errorf("failovers = %d, want 1", res.Failovers)
	}
}

func TestAllReplicasFailing(t *testing.T) {
	_, err := fastCluster(2).Run(Scenario{
		"put a 1",
		"crash",
		"get a 1", // forces failover to the last replica
		"crash",   // kills it too
		"get a 1",
	})
	if err == nil || !strings.Contains(err.Error(), "all replicas failed") {
		t.Errorf("expected total failure, got %v", err)
	}
}

func TestScenarioValidation(t *testing.T) {
	if _, err := fastCluster(0).Run(nil); err == nil {
		t.Error("0 replicas should error")
	}
	if _, err := fastCluster(2).Run(Scenario{"frobnicate"}); err == nil {
		t.Error("unknown op should error")
	}
	if _, err := fastCluster(2).Run(Scenario{"put onlykey"}); err == nil {
		t.Error("malformed put should error")
	}
}

func TestOverwriteVisibleAfterFailover(t *testing.T) {
	res, err := fastCluster(2).Run(Scenario{
		"put k old",
		"put k new",
		"crash",
		"get k new", // the overwrite, not the original, must survive
	})
	if err != nil {
		t.Fatalf("%v\ntrace:\n%s", err, strings.Join(res.Trace, "\n"))
	}
	if res.FinalState["k"] != "new" {
		t.Errorf("final = %v", res.FinalState)
	}
}
