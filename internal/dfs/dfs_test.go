package dfs

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/mp"
	"repro/internal/testutil"
)

func fastCluster(replicas int) Cluster {
	// A short AckTimeout keeps writes through a dead backup fast without
	// making failure detection (Heartbeat) hair-trigger.
	return Cluster{Replicas: replicas, Heartbeat: 150 * time.Millisecond, AckTimeout: 50 * time.Millisecond}
}

func TestTimeoutDefaults(t *testing.T) {
	// Zero-valued knobs fill in: Heartbeat from DefaultHeartbeat,
	// AckTimeout from Heartbeat. Observable as a plain run succeeding.
	res, err := Cluster{Replicas: 2}.Run(Scenario{
		"put k v",
		"get k v",
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 2 {
		t.Errorf("ops = %d", res.Ops)
	}
}

func TestAckTimeoutBoundsDeadBackupWait(t *testing.T) {
	// Drive a primary's PUT directly against a backup that never acks:
	// the wait must be bounded by AckTimeout, not the (much larger)
	// failure-detection Heartbeat.
	c := Cluster{Replicas: 2, Heartbeat: 5 * time.Second, AckTimeout: 50 * time.Millisecond}
	var elapsed time.Duration
	var reply string
	err := mp.Run(2, func(comm *mp.Comm) error {
		if comm.Rank() == 1 {
			return nil // the dead backup: never acks a replicate
		}
		store := map[string]string{}
		backups := []int{1}
		start := time.Now()
		reply, _ = c.applyRequest(context.Background(), comm, "PUT k v", store, &backups)
		elapsed = time.Since(start)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if reply != "OK" {
		t.Fatalf("PUT through a dead backup replied %q", reply)
	}
	if elapsed < c.AckTimeout {
		t.Errorf("PUT returned in %v, before the %v ack timeout elapsed", elapsed, c.AckTimeout)
	}
	if elapsed > c.Heartbeat/2 {
		t.Errorf("PUT took %v: dead-backup wait not bounded by AckTimeout %v", elapsed, c.AckTimeout)
	}
}

func TestBasicPutGet(t *testing.T) {
	res, err := fastCluster(3).Run(Scenario{
		"put a 1",
		"put b 2",
		"get a 1",
		"get b 2",
		"getmissing c",
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failovers != 0 {
		t.Errorf("failovers = %d", res.Failovers)
	}
	if res.FinalState["a"] != "1" || res.FinalState["b"] != "2" {
		t.Errorf("final state: %v", res.FinalState)
	}
}

func TestSingleReplica(t *testing.T) {
	res, err := fastCluster(1).Run(Scenario{
		"put x 9",
		"get x 9",
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 2 {
		t.Errorf("ops = %d", res.Ops)
	}
}

func TestPrimaryFailover(t *testing.T) {
	// Crashed ranks must unwind their goroutines, not park forever —
	// checked against a settled baseline after the run.
	leakBase := testutil.SettleGoroutines()
	defer testutil.CheckNoGoroutineLeak(t, leakBase, 2)
	res, err := fastCluster(3).Run(Scenario{
		"put a 1",
		"put b 2",
		"crash",   // kill primary (rank 1)
		"get a 1", // must survive via backup promotion
		"get b 2",
		"put c 3", // writes continue on the new primary
		"get c 3",
	})
	if err != nil {
		t.Fatalf("%v\ntrace:\n%s", err, strings.Join(res.Trace, "\n"))
	}
	if res.Failovers != 1 {
		t.Errorf("failovers = %d, want 1", res.Failovers)
	}
	if len(res.FinalState) != 3 {
		t.Errorf("final state: %v", res.FinalState)
	}
}

func TestDoubleFailover(t *testing.T) {
	res, err := fastCluster(3).Run(Scenario{
		"put k v1",
		"crash",
		"get k v1",
		"put k v2",
		"crash",
		"get k v2", // survives two failovers on the last replica
		"put last 1",
		"get last 1",
	})
	if err != nil {
		t.Fatalf("%v\ntrace:\n%s", err, strings.Join(res.Trace, "\n"))
	}
	if res.Failovers != 2 {
		t.Errorf("failovers = %d, want 2", res.Failovers)
	}
}

func TestBackupCrashDoesNotBlockWrites(t *testing.T) {
	res, err := fastCluster(3).Run(Scenario{
		"put a 1",
		"crashbackup 0", // kill the first backup
		"put b 2",       // primary must not hang waiting for a dead backup
		"get a 1",
		"get b 2",
		"crash", // now kill the primary: remaining backup takes over
		"get a 1",
		"get b 2",
	})
	if err != nil {
		t.Fatalf("%v\ntrace:\n%s", err, strings.Join(res.Trace, "\n"))
	}
	if res.Failovers != 1 {
		t.Errorf("failovers = %d, want 1", res.Failovers)
	}
}

func TestAllReplicasFailing(t *testing.T) {
	_, err := fastCluster(2).Run(Scenario{
		"put a 1",
		"crash",
		"get a 1", // forces failover to the last replica
		"crash",   // kills it too
		"get a 1",
	})
	if err == nil || !strings.Contains(err.Error(), "all replicas failed") {
		t.Errorf("expected total failure, got %v", err)
	}
}

func TestScenarioValidation(t *testing.T) {
	if _, err := fastCluster(0).Run(nil); err == nil {
		t.Error("0 replicas should error")
	}
	if _, err := fastCluster(2).Run(Scenario{"frobnicate"}); err == nil {
		t.Error("unknown op should error")
	}
	if _, err := fastCluster(2).Run(Scenario{"put onlykey"}); err == nil {
		t.Error("malformed put should error")
	}
}

func TestOverwriteVisibleAfterFailover(t *testing.T) {
	res, err := fastCluster(2).Run(Scenario{
		"put k old",
		"put k new",
		"crash",
		"get k new", // the overwrite, not the original, must survive
	})
	if err != nil {
		t.Fatalf("%v\ntrace:\n%s", err, strings.Join(res.Trace, "\n"))
	}
	if res.FinalState["k"] != "new" {
		t.Errorf("final = %v", res.FinalState)
	}
}
