package dfs

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestRunCtxPreCanceled: an already-canceled context aborts the
// scenario before any operation runs, the replicas are still released
// (mp.Run returns), and the error wraps context.Canceled.
func TestRunCtxPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := fastCluster(2)
	res, err := c.RunCtx(ctx, Scenario{"put k v", "get k v"})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunCtx on canceled ctx = %v, want wrapped context.Canceled", err)
	}
	if res.Ops != 0 {
		t.Errorf("pre-canceled scenario ran %d ops", res.Ops)
	}
}

// TestRunCtxDeadlineBoundsFailoverWait: with the primary crashed and a
// context deadline far shorter than the heartbeat, the client's reply
// wait is truncated to the context budget — the run ends with a wrapped
// DeadlineExceeded instead of sitting out a multi-second heartbeat and
// declaring a spurious failover.
func TestRunCtxDeadlineBoundsFailoverWait(t *testing.T) {
	c := Cluster{Replicas: 2, Heartbeat: 5 * time.Second}
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := c.RunCtx(ctx, Scenario{"put k v", "crash", "get k v"})
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("RunCtx = %v, want wrapped DeadlineExceeded", err)
	}
	if elapsed >= c.Heartbeat {
		t.Errorf("run took %v: the reply wait was not bounded by the ctx deadline", elapsed)
	}
	if res.Failovers != 0 {
		t.Errorf("context-truncated wait triggered %d spurious failovers", res.Failovers)
	}
}

// TestRunCtxBackgroundUnchanged: the ctx-less Run wrapper still drives
// whole scenarios, failover included.
func TestRunCtxBackgroundUnchanged(t *testing.T) {
	c := fastCluster(3)
	res, err := c.Run(Scenario{"put k v", "crash", "get k v"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failovers != 1 {
		t.Errorf("failovers = %d, want 1", res.Failovers)
	}
}
