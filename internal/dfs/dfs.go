// Package dfs implements the distributed-systems capstone of the CS87/
// CS45 coverage: a replicated key-value store built on the message-
// passing layer (internal/mp) with primary/backup replication,
// heartbeat-timeout failure detection, and failover by backup promotion.
// It exercises the fault-tolerance, distributed-file-system, and
// consistency topics the paper lists for those courses.
//
// Topology: rank 0 is the client/driver; ranks 1..R are replicas. Rank 1
// starts as primary. Writes go to the primary, which synchronously
// replicates to all live backups before acknowledging (read-your-writes
// at any replica that acked). A crashed replica simply stops answering;
// the client detects the silence via heartbeat timeout and promotes the
// next live replica.
package dfs

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/mp"
)

// Message tags.
const (
	tagRequest   = iota + 1 // client -> replica commands
	tagReply                // replica -> client
	tagReplicate            // primary -> backup
	tagRepAck               // backup -> primary
)

// command payloads are strings: "PUT k v", "GET k", "PING", "CRASH",
// "PROMOTE", "STOP". Replies: "OK", "VALUE v", "NOTFOUND", "PONG",
// "NOTPRIMARY".

// DefaultHeartbeat is the failure-detection timeout used when a Cluster
// does not set one — the same knob internal/cluster exposes for its TCP
// nodes, kept here so both layers tune failover speed the same way.
const DefaultHeartbeat = 250 * time.Millisecond

// Cluster drives a replicated store inside an mp world.
type Cluster struct {
	Replicas int
	// Heartbeat is the failure-detection timeout: how long the client
	// waits for a primary's reply before declaring it dead and
	// promoting a backup. Defaults to DefaultHeartbeat.
	Heartbeat time.Duration
	// AckTimeout bounds how long the primary waits for a backup's
	// replication ack before treating that backup as crashed and moving
	// on. Defaults to Heartbeat, but tests (and latency-sensitive
	// callers) can set it lower: a dead backup then delays writes by
	// AckTimeout instead of a full Heartbeat.
	AckTimeout time.Duration
}

// Result summarizes a scenario run.
type Result struct {
	Ops        int
	Failovers  int
	FinalState map[string]string // the surviving primary's store
	Trace      []string
}

// Scenario is a scripted sequence of client actions executed against the
// cluster. Supported ops:
//
//	put <key> <value>
//	get <key> <want>        (fails the run when the value differs)
//	getmissing <key>        (expects NOTFOUND)
//	crash                   (kill the current primary)
//	crashbackup <idx>       (kill the idx-th backup, 0-based among live backups)
type Scenario []string

// Run executes the scenario. It returns an error if any expectation
// fails or the cluster loses data it acknowledged. It wraps RunCtx
// with context.Background().
func (c Cluster) Run(scenario Scenario) (Result, error) {
	return c.RunCtx(context.Background(), scenario)
}

// RunCtx is Run under a caller lifetime. The client checks ctx between
// scripted operations and before every retry of a round trip, and every
// timed wait in the protocol — the client's reply wait and the primary's
// replication-ack wait — is bounded by min(its configured timeout, the
// context's remaining budget). On cancellation the run drains (replicas
// are always released with STOP), the partial Result accumulated so far
// is returned, and the error wraps ctx.Err().
func (c Cluster) RunCtx(ctx context.Context, scenario Scenario) (Result, error) {
	if c.Replicas < 1 {
		return Result{}, errors.New("dfs: need at least one replica")
	}
	if c.Heartbeat <= 0 {
		c.Heartbeat = DefaultHeartbeat
	}
	if c.AckTimeout <= 0 {
		c.AckTimeout = c.Heartbeat
	}
	res := Result{}
	world := c.Replicas + 1
	var runErr error

	err := mp.Run(world, func(comm *mp.Comm) error {
		if comm.Rank() == 0 {
			err := c.client(ctx, comm, scenario, &res)
			// Always release the replicas.
			for r := 1; r < world; r++ {
				comm.Send(r, tagRequest, "STOP") //nolint:errcheck // shutdown best effort
			}
			runErr = err
			return nil
		}
		return c.replica(ctx, comm)
	})
	if err != nil {
		return res, err
	}
	return res, runErr
}

// boundTimeout caps a protocol timeout by the context's remaining
// budget, so no timed wait can outlive the caller's deadline. A done
// context yields a non-positive duration, which RecvTimeout treats as
// an immediate poll.
func boundTimeout(ctx context.Context, d time.Duration) time.Duration {
	if dl, ok := ctx.Deadline(); ok {
		if rem := time.Until(dl); rem < d {
			return rem
		}
	}
	return d
}

// client is the driver: it tracks the current primary and live set,
// performs scripted operations, and fails over on heartbeat timeout.
func (c Cluster) client(ctx context.Context, comm *mp.Comm, scenario Scenario, res *Result) error {
	primary := 1
	live := make([]int, c.Replicas)
	for i := range live {
		live[i] = i + 1
	}
	shadow := map[string]string{} // acknowledged writes (the oracle)

	trace := func(format string, args ...interface{}) {
		res.Trace = append(res.Trace, fmt.Sprintf(format, args...))
	}
	removeLive := func(rank int) {
		for i, r := range live {
			if r == rank {
				live = append(live[:i], live[i+1:]...)
				return
			}
		}
	}
	// roundTrip sends a command to the primary, failing over on timeout.
	var roundTrip func(cmd string) (string, error)
	roundTrip = func(cmd string) (string, error) {
		for {
			if err := ctx.Err(); err != nil {
				return "", fmt.Errorf("dfs: %s aborted: %w", strings.Fields(cmd)[0], err)
			}
			if err := comm.Send(primary, tagRequest, cmd); err != nil {
				return "", err
			}
			wait := boundTimeout(ctx, c.Heartbeat)
			m, ok, err := comm.RecvTimeout(primary, tagReply, wait)
			if err != nil {
				return "", err
			}
			if !ok {
				// Silence is only a death verdict when the full heartbeat
				// elapsed; a context-truncated wait proves nothing about
				// the primary and must not trigger a spurious failover.
				if cerr := ctx.Err(); cerr != nil {
					return "", fmt.Errorf("dfs: %s canceled awaiting primary %d: %w",
						strings.Fields(cmd)[0], primary, cerr)
				}
				if wait < c.Heartbeat {
					// The wait was cut short by the ctx deadline, which is
					// now at most scheduling jitter away even if Err() has
					// not flipped yet.
					return "", fmt.Errorf("dfs: %s canceled awaiting primary %d: %w",
						strings.Fields(cmd)[0], primary, context.DeadlineExceeded)
				}
			}
			if ok {
				return m.Data.(string), nil
			}
			// Primary silent: declare it dead, promote the next live backup.
			trace("timeout from primary %d: failing over", primary)
			removeLive(primary)
			if len(live) == 0 {
				return "", errors.New("dfs: all replicas failed")
			}
			primary = live[0]
			res.Failovers++
			peers := append([]int(nil), live[1:]...)
			if err := comm.Send(primary, tagRequest, promoteCmd(peers)); err != nil {
				return "", err
			}
			if m, ok, err := comm.RecvTimeout(primary, tagReply, c.Heartbeat); err != nil || !ok || m.Data.(string) != "OK" {
				return "", fmt.Errorf("dfs: promotion of %d failed (%v, ok=%v)", primary, err, ok)
			}
			trace("promoted replica %d (backups %v)", primary, peers)
		}
	}

	// Initialize the first primary's backup list.
	if err := comm.Send(primary, tagRequest, promoteCmd(live[1:])); err != nil {
		return err
	}
	if m, err := comm.Recv(primary, tagReply); err != nil || m.Data.(string) != "OK" {
		return fmt.Errorf("dfs: initial promotion failed: %v", err)
	}

	for _, op := range scenario {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("dfs: scenario canceled after %d ops: %w", res.Ops, err)
		}
		res.Ops++
		fields := strings.Fields(op)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "put":
			if len(fields) != 3 {
				return fmt.Errorf("dfs: bad op %q", op)
			}
			reply, err := roundTrip("PUT " + fields[1] + " " + fields[2])
			if err != nil {
				return err
			}
			if reply != "OK" {
				return fmt.Errorf("dfs: PUT reply %q", reply)
			}
			shadow[fields[1]] = fields[2]
			trace("put %s=%s via %d", fields[1], fields[2], primary)
		case "get":
			if len(fields) != 3 {
				return fmt.Errorf("dfs: bad op %q", op)
			}
			reply, err := roundTrip("GET " + fields[1])
			if err != nil {
				return err
			}
			want := "VALUE " + fields[2]
			if reply != want {
				return fmt.Errorf("dfs: GET %s = %q, want %q (acknowledged data lost)", fields[1], reply, want)
			}
		case "getmissing":
			reply, err := roundTrip("GET " + fields[1])
			if err != nil {
				return err
			}
			if reply != "NOTFOUND" {
				return fmt.Errorf("dfs: GET missing %s = %q", fields[1], reply)
			}
		case "crash":
			trace("crashing primary %d", primary)
			if err := comm.Send(primary, tagRequest, "CRASH"); err != nil {
				return err
			}
		case "crashbackup":
			if len(fields) != 2 || len(live) < 2 {
				return fmt.Errorf("dfs: bad crashbackup %q (live %v)", op, live)
			}
			idx := int(fields[1][0] - '0')
			backups := live[1:]
			if idx < 0 || idx >= len(backups) {
				return fmt.Errorf("dfs: no backup %d", idx)
			}
			victim := backups[idx]
			trace("crashing backup %d", victim)
			if err := comm.Send(victim, tagRequest, "CRASH"); err != nil {
				return err
			}
			removeLive(victim)
			// Tell the primary its peer set shrank.
			reply, err := roundTrip(promoteCmd(live[1:]))
			if err != nil {
				return err
			}
			if reply != "OK" {
				return fmt.Errorf("dfs: reconfigure reply %q", reply)
			}
		default:
			return fmt.Errorf("dfs: unknown op %q", op)
		}
	}

	// Final audit: every acknowledged write must be readable.
	keys := make([]string, 0, len(shadow))
	for k := range shadow {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	res.FinalState = map[string]string{}
	for _, k := range keys {
		reply, err := roundTrip("GET " + k)
		if err != nil {
			return err
		}
		if reply != "VALUE "+shadow[k] {
			return fmt.Errorf("dfs: audit: %s = %q, want %q", k, reply, shadow[k])
		}
		res.FinalState[k] = shadow[k]
	}
	return nil
}

func promoteCmd(backups []int) string {
	parts := make([]string, len(backups))
	for i, b := range backups {
		parts[i] = fmt.Sprintf("%d", b)
	}
	return "PROMOTE " + strings.Join(parts, ",")
}

// replica is the server loop: it applies PUTs (replicating when primary),
// answers GETs, and plays dead after CRASH.
func (c Cluster) replica(ctx context.Context, comm *mp.Comm) error {
	store := map[string]string{}
	var backups []int
	crashed := false
	for {
		m, err := comm.Recv(mp.AnySource, mp.AnyTag)
		if err != nil {
			return err
		}
		cmd, _ := m.Data.(string)
		if cmd == "STOP" {
			return nil
		}
		if crashed {
			continue // dead replicas answer nothing (but still drain STOP above)
		}
		switch m.Tag {
		case tagReplicate:
			fields := strings.SplitN(cmd, " ", 3)
			if len(fields) == 3 && fields[0] == "PUT" {
				store[fields[1]] = fields[2]
			}
			if err := comm.Send(m.Source, tagRepAck, "ACK"); err != nil {
				return err
			}
		case tagRequest:
			reply, die := c.applyRequest(ctx, comm, cmd, store, &backups)
			if die {
				crashed = true
				continue
			}
			if reply != "" {
				if err := comm.Send(m.Source, tagReply, reply); err != nil {
					return err
				}
			}
		}
	}
}

// applyRequest handles one client command at a replica; die=true means
// the replica should play dead from now on.
func (c Cluster) applyRequest(ctx context.Context, comm *mp.Comm, cmd string, store map[string]string, backups *[]int) (string, bool) {
	fields := strings.SplitN(cmd, " ", 3)
	switch fields[0] {
	case "PING":
		return "PONG", false
	case "CRASH":
		return "", true
	case "PROMOTE":
		*backups = nil
		if len(fields) > 1 && fields[1] != "" {
			for _, part := range strings.Split(fields[1], ",") {
				if part == "" {
					continue
				}
				n := 0
				for _, ch := range part {
					n = n*10 + int(ch-'0')
				}
				*backups = append(*backups, n)
			}
		}
		return "OK", false
	case "PUT":
		if len(fields) != 3 {
			return "ERR", false
		}
		store[fields[1]] = fields[2]
		// Synchronous replication to every configured backup.
		for _, b := range *backups {
			if err := comm.Send(b, tagReplicate, cmd); err != nil {
				return "ERR", false
			}
			// A crashed backup never acks; time out and drop it from the
			// peer set (the client reconfigures authoritative membership).
			// The wait is also bounded by the run's context, so a primary
			// mid-replication can't hold a canceled run hostage for a
			// full AckTimeout per dead backup.
			if _, ok, _ := comm.RecvTimeout(b, tagRepAck, boundTimeout(ctx, c.AckTimeout)); !ok {
				continue
			}
		}
		return "OK", false
	case "GET":
		if len(fields) != 2 {
			return "ERR", false
		}
		if v, ok := store[fields[1]]; ok {
			return "VALUE " + v, false
		}
		return "NOTFOUND", false
	}
	return "ERR", false
}
