// Package proc implements the operating-systems process model behind the
// CS31 Unix-shell lab and the Table II "Operating Systems" topic row: a
// simulated kernel with process control blocks, fork/exec/exit/waitpid
// semantics (including zombies and orphan reparenting to init), POSIX-
// style signals with handlers and default actions, and a family of CPU
// schedulers (FCFS, SJF, RR, priority, MLFQ) evaluated by the turnaround/
// waiting/response metrics the course compares.
package proc

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// PID identifies a process.
type PID int

// InitPID is the PID of the init process, created with every kernel and
// the adoptive parent of orphans.
const InitPID PID = 1

// State is a process lifecycle state.
type State int

// The process states from the lecture's state diagram.
const (
	Ready State = iota
	Running
	Blocked
	Zombie
	Dead // reaped; PCB slot retained for inspection
)

// String returns the human-readable name.
func (s State) String() string {
	return [...]string{"ready", "running", "blocked", "zombie", "dead"}[s]
}

// Signal numbers (subset of POSIX).
type Signal int

// The supported signals.
const (
	SIGHUP  Signal = 1
	SIGINT  Signal = 2
	SIGKILL Signal = 9
	SIGUSR1 Signal = 10
	SIGSEGV Signal = 11
	SIGTERM Signal = 15
	SIGCHLD Signal = 17
	SIGCONT Signal = 18
	SIGSTOP Signal = 19
	SIGTSTP Signal = 20
)

// String returns the human-readable name.
func (s Signal) String() string {
	names := map[Signal]string{
		SIGHUP: "SIGHUP", SIGINT: "SIGINT", SIGKILL: "SIGKILL", SIGUSR1: "SIGUSR1",
		SIGSEGV: "SIGSEGV", SIGTERM: "SIGTERM", SIGCHLD: "SIGCHLD", SIGCONT: "SIGCONT",
		SIGSTOP: "SIGSTOP", SIGTSTP: "SIGTSTP",
	}
	if n, ok := names[s]; ok {
		return n
	}
	return fmt.Sprintf("SIG%d", int(s))
}

// Process is a process control block.
type Process struct {
	PID      PID
	Parent   PID
	Name     string
	State    State
	Exit     int
	Children []PID
	Stopped  bool

	handlers map[Signal]func(*Kernel, *Process, Signal)
	pending  []Signal
}

// Kernel is the simulated operating system: a process table plus the
// fork/exec/wait/signal services the shell calls.
type Kernel struct {
	procs   map[PID]*Process
	nextPID PID
	// Reaped records (pid, exit status) pairs observed by waits, for tests.
	Log []string
}

// NewKernel boots a kernel with the init process.
func NewKernel() *Kernel {
	k := &Kernel{procs: make(map[PID]*Process), nextPID: InitPID}
	initProc := &Process{PID: InitPID, Parent: 0, Name: "init", State: Running,
		handlers: make(map[Signal]func(*Kernel, *Process, Signal))}
	k.procs[InitPID] = initProc
	k.nextPID = InitPID + 1
	return k
}

// Errors returned by the process services.
var (
	ErrNoSuchProcess = errors.New("proc: no such process (ESRCH)")
	ErrNoChildren    = errors.New("proc: no children to wait for (ECHILD)")
	ErrNotZombie     = errors.New("proc: child has not exited (would block)")
)

// Process returns the PCB for pid.
func (k *Kernel) Process(pid PID) (*Process, error) {
	p, ok := k.procs[pid]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNoSuchProcess, pid)
	}
	return p, nil
}

// Fork creates a child of parent, returning the child's PID. The child
// inherits the parent's name with a "+" suffix until exec.
func (k *Kernel) Fork(parent PID) (PID, error) {
	pp, err := k.Process(parent)
	if err != nil {
		return 0, err
	}
	if pp.State == Zombie || pp.State == Dead {
		return 0, fmt.Errorf("proc: process %d cannot fork in state %v", parent, pp.State)
	}
	pid := k.nextPID
	k.nextPID++
	child := &Process{
		PID: pid, Parent: parent, Name: pp.Name + "+", State: Ready,
		handlers: make(map[Signal]func(*Kernel, *Process, Signal)),
	}
	// Signal dispositions are inherited across fork (but not pending sets).
	for s, h := range pp.handlers {
		child.handlers[s] = h
	}
	k.procs[pid] = child
	pp.Children = append(pp.Children, pid)
	return pid, nil
}

// Exec replaces the process image: the name changes, handlers reset to
// default (exec clears them in POSIX).
func (k *Kernel) Exec(pid PID, name string) error {
	p, err := k.Process(pid)
	if err != nil {
		return err
	}
	if p.State == Zombie || p.State == Dead {
		return fmt.Errorf("proc: exec on %v process", p.State)
	}
	p.Name = name
	p.handlers = make(map[Signal]func(*Kernel, *Process, Signal))
	return nil
}

// Exit terminates the process: it becomes a zombie holding its status
// until the parent waits; its children are reparented to init; the
// parent gets SIGCHLD.
func (k *Kernel) Exit(pid PID, status int) error {
	p, err := k.Process(pid)
	if err != nil {
		return err
	}
	if pid == InitPID {
		return errors.New("proc: init does not exit")
	}
	if p.State == Zombie || p.State == Dead {
		return nil
	}
	p.State = Zombie
	p.Exit = status
	// Reparent children to init (orphans).
	initProc := k.procs[InitPID]
	for _, c := range p.Children {
		if cp, ok := k.procs[c]; ok && cp.State != Dead {
			cp.Parent = InitPID
			initProc.Children = append(initProc.Children, c)
		}
	}
	p.Children = nil
	// Notify the parent.
	if _, ok := k.procs[p.Parent]; ok {
		k.Kill(p.Parent, SIGCHLD) //nolint:errcheck // parent may be racing to exit
	}
	return nil
}

// Wait reaps any zombie child of pid (like waitpid(-1, WNOHANG)): it
// returns the child's PID and exit status, ErrNotZombie when children
// exist but none has exited, or ErrNoChildren.
func (k *Kernel) Wait(pid PID) (PID, int, error) {
	p, err := k.Process(pid)
	if err != nil {
		return 0, 0, err
	}
	if len(p.Children) == 0 {
		return 0, 0, ErrNoChildren
	}
	for i, c := range p.Children {
		cp := k.procs[c]
		if cp != nil && cp.State == Zombie {
			cp.State = Dead
			p.Children = append(p.Children[:i], p.Children[i+1:]...)
			k.Log = append(k.Log, fmt.Sprintf("reap %d status %d", c, cp.Exit))
			return c, cp.Exit, nil
		}
	}
	return 0, 0, ErrNotZombie
}

// WaitPID reaps a specific zombie child.
func (k *Kernel) WaitPID(pid, child PID) (int, error) {
	p, err := k.Process(pid)
	if err != nil {
		return 0, err
	}
	for i, c := range p.Children {
		if c != child {
			continue
		}
		cp := k.procs[c]
		if cp.State != Zombie {
			return 0, ErrNotZombie
		}
		cp.State = Dead
		p.Children = append(p.Children[:i], p.Children[i+1:]...)
		k.Log = append(k.Log, fmt.Sprintf("reap %d status %d", c, cp.Exit))
		return cp.Exit, nil
	}
	return 0, ErrNoChildren
}

// Handle installs a signal handler. SIGKILL and SIGSTOP cannot be caught.
func (k *Kernel) Handle(pid PID, sig Signal, fn func(*Kernel, *Process, Signal)) error {
	p, err := k.Process(pid)
	if err != nil {
		return err
	}
	if sig == SIGKILL || sig == SIGSTOP {
		return fmt.Errorf("proc: %v cannot be caught (EINVAL)", sig)
	}
	p.handlers[sig] = fn
	return nil
}

// Kill delivers a signal: handlers run immediately (the simulator has no
// asynchronous delivery point); otherwise the default action applies —
// termination for most signals, stop/continue for SIGSTOP/SIGCONT, ignore
// for SIGCHLD.
func (k *Kernel) Kill(pid PID, sig Signal) error {
	p, err := k.Process(pid)
	if err != nil {
		return err
	}
	if p.State == Zombie || p.State == Dead {
		return nil // signal to a zombie is a no-op
	}
	p.pending = append(p.pending, sig)
	switch {
	case sig == SIGKILL:
		return k.Exit(pid, 128+int(sig))
	case sig == SIGSTOP:
		p.Stopped = true
		return nil
	case sig == SIGCONT:
		p.Stopped = false
		return nil
	default:
		if h, ok := p.handlers[sig]; ok {
			h(k, p, sig)
			return nil
		}
		if sig == SIGCHLD || sig == SIGCONT {
			return nil // default: ignore
		}
		return k.Exit(pid, 128+int(sig))
	}
}

// Pending returns the signals delivered to pid so far (diagnostics).
func (k *Kernel) Pending(pid PID) []Signal {
	if p, ok := k.procs[pid]; ok {
		return append([]Signal(nil), p.pending...)
	}
	return nil
}

// Alive reports whether pid exists and has not exited.
func (k *Kernel) Alive(pid PID) bool {
	p, ok := k.procs[pid]
	return ok && p.State != Zombie && p.State != Dead
}

// Tree renders the process hierarchy as an indented listing (pstree).
func (k *Kernel) Tree() string {
	var b strings.Builder
	var walk func(pid PID, depth int)
	walk = func(pid PID, depth int) {
		p := k.procs[pid]
		status := p.State.String()
		if p.Stopped {
			status = "stopped"
		}
		fmt.Fprintf(&b, "%s%d %s [%s]\n", strings.Repeat("  ", depth), p.PID, p.Name, status)
		kids := append([]PID(nil), p.Children...)
		sort.Slice(kids, func(i, j int) bool { return kids[i] < kids[j] })
		for _, c := range kids {
			walk(c, depth+1)
		}
	}
	walk(InitPID, 0)
	return b.String()
}

// ZombieCount counts un-reaped zombies (the lab's leak check).
func (k *Kernel) ZombieCount() int {
	n := 0
	for _, p := range k.procs {
		if p.State == Zombie {
			n++
		}
	}
	return n
}
