package proc

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Job is one workload unit for the scheduler comparison: it arrives, needs
// Burst units of CPU, and (for the priority scheduler) carries a priority
// where lower values are more urgent.
type Job struct {
	Name     string
	Arrival  int64
	Burst    int64
	Priority int
}

// JobMetrics reports per-job outcomes.
type JobMetrics struct {
	Job        Job
	Start      int64 // first time on CPU
	Completion int64
	Turnaround int64 // completion - arrival
	Waiting    int64 // turnaround - burst
	Response   int64 // start - arrival
}

// SchedResult is a full scheduling outcome.
type SchedResult struct {
	Algorithm     string
	Jobs          []JobMetrics
	AvgTurnaround float64
	AvgWaiting    float64
	AvgResponse   float64
	ContextSwitch int64 // number of dispatch decisions that changed the job
}

func finalize(name string, jobs []JobMetrics, switches int64) SchedResult {
	res := SchedResult{Algorithm: name, Jobs: jobs, ContextSwitch: switches}
	for _, j := range jobs {
		res.AvgTurnaround += float64(j.Turnaround)
		res.AvgWaiting += float64(j.Waiting)
		res.AvgResponse += float64(j.Response)
	}
	n := float64(len(jobs))
	if n > 0 {
		res.AvgTurnaround /= n
		res.AvgWaiting /= n
		res.AvgResponse /= n
	}
	return res
}

func validateJobs(jobs []Job) error {
	if len(jobs) == 0 {
		return errors.New("proc: no jobs")
	}
	for _, j := range jobs {
		if j.Burst <= 0 {
			return fmt.Errorf("proc: job %q burst must be positive", j.Name)
		}
		if j.Arrival < 0 {
			return fmt.Errorf("proc: job %q arrival must be non-negative", j.Name)
		}
	}
	return nil
}

// FCFS runs first-come-first-served (non-preemptive, arrival order).
func FCFS(jobs []Job) (SchedResult, error) {
	if err := validateJobs(jobs); err != nil {
		return SchedResult{}, err
	}
	order := append([]Job(nil), jobs...)
	sort.SliceStable(order, func(i, j int) bool { return order[i].Arrival < order[j].Arrival })
	var now int64
	out := make([]JobMetrics, 0, len(order))
	for _, j := range order {
		if now < j.Arrival {
			now = j.Arrival
		}
		m := JobMetrics{Job: j, Start: now, Completion: now + j.Burst}
		m.Turnaround = m.Completion - j.Arrival
		m.Waiting = m.Turnaround - j.Burst
		m.Response = m.Start - j.Arrival
		out = append(out, m)
		now = m.Completion
	}
	return finalize("FCFS", out, int64(len(order))), nil
}

// SJF runs shortest-job-first (non-preemptive).
func SJF(jobs []Job) (SchedResult, error) {
	if err := validateJobs(jobs); err != nil {
		return SchedResult{}, err
	}
	return pickNext("SJF", jobs, func(a, b Job) bool {
		if a.Burst != b.Burst {
			return a.Burst < b.Burst
		}
		return a.Arrival < b.Arrival
	})
}

// PrioritySched runs non-preemptive priority scheduling (lower value =
// higher priority).
func PrioritySched(jobs []Job) (SchedResult, error) {
	if err := validateJobs(jobs); err != nil {
		return SchedResult{}, err
	}
	return pickNext("priority", jobs, func(a, b Job) bool {
		if a.Priority != b.Priority {
			return a.Priority < b.Priority
		}
		return a.Arrival < b.Arrival
	})
}

// pickNext is the shared non-preemptive engine: at each completion, choose
// among arrived jobs by less().
func pickNext(name string, jobs []Job, less func(a, b Job) bool) (SchedResult, error) {
	pending := append([]Job(nil), jobs...)
	var now int64
	out := make([]JobMetrics, 0, len(jobs))
	for len(pending) > 0 {
		// Earliest arrival if nothing has arrived yet.
		bestArr := pending[0].Arrival
		for _, j := range pending {
			if j.Arrival < bestArr {
				bestArr = j.Arrival
			}
		}
		if now < bestArr {
			now = bestArr
		}
		// Choose among arrived.
		bi := -1
		for i, j := range pending {
			if j.Arrival > now {
				continue
			}
			if bi == -1 || less(j, pending[bi]) {
				bi = i
			}
		}
		j := pending[bi]
		pending = append(pending[:bi], pending[bi+1:]...)
		m := JobMetrics{Job: j, Start: now, Completion: now + j.Burst}
		m.Turnaround = m.Completion - j.Arrival
		m.Waiting = m.Turnaround - j.Burst
		m.Response = m.Start - j.Arrival
		out = append(out, m)
		now = m.Completion
	}
	return finalize(name, out, int64(len(jobs))), nil
}

// SRTF runs preemptive shortest-remaining-time-first: a new arrival with
// less remaining work than the running job preempts it. It is optimal for
// average turnaround — the comparison point the scheduler lecture builds
// toward.
func SRTF(jobs []Job) (SchedResult, error) {
	if err := validateJobs(jobs); err != nil {
		return SchedResult{}, err
	}
	type live struct {
		job       Job
		remaining int64
		started   bool
		start     int64
	}
	pending := make([]*live, len(jobs))
	for i, j := range jobs {
		pending[i] = &live{job: j, remaining: j.Burst}
	}
	sort.SliceStable(pending, func(i, j int) bool { return pending[i].job.Arrival < pending[j].job.Arrival })

	var now int64
	var switches int64
	var lastRun *live
	done := 0
	out := make([]JobMetrics, 0, len(jobs))
	for done < len(jobs) {
		// Pick the arrived job with the least remaining time.
		var best *live
		var nextArrival int64 = -1
		for _, l := range pending {
			if l.remaining == 0 {
				continue
			}
			if l.job.Arrival > now {
				if nextArrival < 0 || l.job.Arrival < nextArrival {
					nextArrival = l.job.Arrival
				}
				continue
			}
			if best == nil || l.remaining < best.remaining {
				best = l
			}
		}
		if best == nil {
			now = nextArrival // idle until the next arrival
			continue
		}
		if best != lastRun {
			switches++
			lastRun = best
		}
		if !best.started {
			best.started = true
			best.start = now
		}
		// Run until completion or the next arrival, whichever first.
		runUntil := now + best.remaining
		if nextArrival >= 0 && nextArrival < runUntil {
			runUntil = nextArrival
		}
		best.remaining -= runUntil - now
		now = runUntil
		if best.remaining == 0 {
			m := JobMetrics{Job: best.job, Start: best.start, Completion: now}
			m.Turnaround = m.Completion - best.job.Arrival
			m.Waiting = m.Turnaround - best.job.Burst
			m.Response = best.start - best.job.Arrival
			out = append(out, m)
			done++
		}
	}
	return finalize("SRTF", out, switches), nil
}

// RoundRobin runs preemptive round-robin with the given quantum.
func RoundRobin(jobs []Job, quantum int64) (SchedResult, error) {
	if err := validateJobs(jobs); err != nil {
		return SchedResult{}, err
	}
	if quantum <= 0 {
		return SchedResult{}, errors.New("proc: quantum must be positive")
	}
	return mlfqEngine("RR", jobs, []int64{quantum}, false)
}

// MLFQ runs a multi-level feedback queue with the given per-level quanta
// (level 0 highest priority). A job that exhausts its quantum is demoted;
// the bottom level is round-robin.
func MLFQ(jobs []Job, quanta []int64) (SchedResult, error) {
	if err := validateJobs(jobs); err != nil {
		return SchedResult{}, err
	}
	if len(quanta) == 0 {
		return SchedResult{}, errors.New("proc: MLFQ needs at least one level")
	}
	for _, q := range quanta {
		if q <= 0 {
			return SchedResult{}, errors.New("proc: quanta must be positive")
		}
	}
	return mlfqEngine("MLFQ", jobs, quanta, true)
}

type rrJob struct {
	job       Job
	remaining int64
	level     int
	started   bool
	start     int64
}

// mlfqEngine simulates multi-level queues; with demote=false and one
// level it degenerates to round-robin.
func mlfqEngine(name string, jobs []Job, quanta []int64, demote bool) (SchedResult, error) {
	arrivals := make([]*rrJob, len(jobs))
	for i, j := range jobs {
		arrivals[i] = &rrJob{job: j, remaining: j.Burst}
	}
	sort.SliceStable(arrivals, func(i, j int) bool { return arrivals[i].job.Arrival < arrivals[j].job.Arrival })

	queues := make([][]*rrJob, len(quanta))
	var now int64
	next := 0 // next arrival index
	out := make([]JobMetrics, 0, len(jobs))
	var switches int64
	var lastJob *rrJob

	admit := func(t int64) {
		for next < len(arrivals) && arrivals[next].job.Arrival <= t {
			queues[0] = append(queues[0], arrivals[next])
			next++
		}
	}
	admit(now)
	for len(out) < len(jobs) {
		// Find the highest non-empty queue.
		qi := -1
		for i := range queues {
			if len(queues[i]) > 0 {
				qi = i
				break
			}
		}
		if qi == -1 {
			// Idle until the next arrival.
			now = arrivals[next].job.Arrival
			admit(now)
			continue
		}
		j := queues[qi][0]
		queues[qi] = queues[qi][1:]
		if j != lastJob {
			switches++
			lastJob = j
		}
		if !j.started {
			j.started = true
			j.start = now
		}
		q := quanta[qi]
		run := q
		if j.remaining < run {
			run = j.remaining
		}
		now += run
		j.remaining -= run
		admit(now) // arrivals during the slice join level 0
		if j.remaining == 0 {
			m := JobMetrics{Job: j.job, Start: j.start, Completion: now}
			m.Turnaround = m.Completion - j.job.Arrival
			m.Waiting = m.Turnaround - j.job.Burst
			m.Response = j.start - j.job.Arrival
			out = append(out, m)
			continue
		}
		level := qi
		if demote && level < len(queues)-1 {
			level++
		}
		j.level = level
		queues[level] = append(queues[level], j)
	}
	return finalize(name, out, switches), nil
}

// CompareSchedulers runs every scheduler on the same workload and renders
// the comparison table from the OS unit.
func CompareSchedulers(jobs []Job, quantum int64, mlfq []int64) (string, []SchedResult, error) {
	var results []SchedResult
	for _, run := range []func() (SchedResult, error){
		func() (SchedResult, error) { return FCFS(jobs) },
		func() (SchedResult, error) { return SJF(jobs) },
		func() (SchedResult, error) { return SRTF(jobs) },
		func() (SchedResult, error) { return PrioritySched(jobs) },
		func() (SchedResult, error) { return RoundRobin(jobs, quantum) },
		func() (SchedResult, error) { return MLFQ(jobs, mlfq) },
	} {
		r, err := run()
		if err != nil {
			return "", nil, err
		}
		results = append(results, r)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %12s %12s %12s %10s\n", "algorithm", "turnaround", "waiting", "response", "switches")
	for _, r := range results {
		fmt.Fprintf(&b, "%-10s %12.2f %12.2f %12.2f %10d\n",
			r.Algorithm, r.AvgTurnaround, r.AvgWaiting, r.AvgResponse, r.ContextSwitch)
	}
	return b.String(), results, nil
}
