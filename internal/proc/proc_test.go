package proc

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestForkExecExitWait(t *testing.T) {
	k := NewKernel()
	child, err := k.Fork(InitPID)
	if err != nil {
		t.Fatal(err)
	}
	if child == InitPID {
		t.Fatal("child got init's PID")
	}
	if err := k.Exec(child, "ls"); err != nil {
		t.Fatal(err)
	}
	p, _ := k.Process(child)
	if p.Name != "ls" || p.Parent != InitPID {
		t.Errorf("child: %+v", p)
	}
	// Wait before exit: would block.
	if _, _, err := k.Wait(InitPID); !errors.Is(err, ErrNotZombie) {
		t.Errorf("wait on running child: %v", err)
	}
	if err := k.Exit(child, 3); err != nil {
		t.Fatal(err)
	}
	if k.ZombieCount() != 1 {
		t.Errorf("zombies = %d", k.ZombieCount())
	}
	got, status, err := k.Wait(InitPID)
	if err != nil || got != child || status != 3 {
		t.Errorf("Wait = %d, %d, %v", got, status, err)
	}
	if k.ZombieCount() != 0 {
		t.Error("zombie not reaped")
	}
	// Second wait: no children.
	if _, _, err := k.Wait(InitPID); !errors.Is(err, ErrNoChildren) {
		t.Errorf("wait with no children: %v", err)
	}
}

func TestOrphanReparenting(t *testing.T) {
	k := NewKernel()
	parent, _ := k.Fork(InitPID)
	grandchild, _ := k.Fork(parent)
	if err := k.Exit(parent, 0); err != nil {
		t.Fatal(err)
	}
	gp, _ := k.Process(grandchild)
	if gp.Parent != InitPID {
		t.Errorf("orphan parent = %d, want init", gp.Parent)
	}
	// Init can reap the orphan after it exits.
	k.Exit(grandchild, 7)
	// Reap parent zombie first (it is also init's child).
	reaped := map[PID]int{}
	for i := 0; i < 2; i++ {
		pid, status, err := k.Wait(InitPID)
		if err != nil {
			t.Fatalf("wait %d: %v", i, err)
		}
		reaped[pid] = status
	}
	if reaped[parent] != 0 || reaped[grandchild] != 7 {
		t.Errorf("reaped: %v", reaped)
	}
}

func TestWaitPIDSpecific(t *testing.T) {
	k := NewKernel()
	a, _ := k.Fork(InitPID)
	b, _ := k.Fork(InitPID)
	k.Exit(b, 9)
	if _, err := k.WaitPID(InitPID, a); !errors.Is(err, ErrNotZombie) {
		t.Errorf("waitpid on running child: %v", err)
	}
	status, err := k.WaitPID(InitPID, b)
	if err != nil || status != 9 {
		t.Errorf("waitpid(b) = %d, %v", status, err)
	}
	if _, err := k.WaitPID(InitPID, b); !errors.Is(err, ErrNoChildren) {
		t.Errorf("waitpid reaped child: %v", err)
	}
}

func TestSignalsDefaultAndHandled(t *testing.T) {
	k := NewKernel()
	victim, _ := k.Fork(InitPID)
	// Default SIGTERM: terminates.
	if err := k.Kill(victim, SIGTERM); err != nil {
		t.Fatal(err)
	}
	if k.Alive(victim) {
		t.Error("SIGTERM default should terminate")
	}
	vp, _ := k.Process(victim)
	if vp.Exit != 128+int(SIGTERM) {
		t.Errorf("exit status = %d", vp.Exit)
	}

	// Handled SIGUSR1: survives and runs the handler.
	tough, _ := k.Fork(InitPID)
	var caught []Signal
	k.Handle(tough, SIGUSR1, func(_ *Kernel, _ *Process, s Signal) {
		caught = append(caught, s)
	})
	if err := k.Kill(tough, SIGUSR1); err != nil {
		t.Fatal(err)
	}
	if !k.Alive(tough) || len(caught) != 1 || caught[0] != SIGUSR1 {
		t.Errorf("handler: alive=%v caught=%v", k.Alive(tough), caught)
	}

	// SIGKILL cannot be caught.
	if err := k.Handle(tough, SIGKILL, func(*Kernel, *Process, Signal) {}); err == nil {
		t.Error("catching SIGKILL should error")
	}
	k.Kill(tough, SIGKILL)
	if k.Alive(tough) {
		t.Error("SIGKILL must terminate")
	}
}

func TestStopContinue(t *testing.T) {
	k := NewKernel()
	p, _ := k.Fork(InitPID)
	k.Kill(p, SIGSTOP)
	pp, _ := k.Process(p)
	if !pp.Stopped || !k.Alive(p) {
		t.Error("SIGSTOP should stop, not kill")
	}
	k.Kill(p, SIGCONT)
	if pp.Stopped {
		t.Error("SIGCONT should resume")
	}
}

func TestSIGCHLDDefaultIgnored(t *testing.T) {
	k := NewKernel()
	parent, _ := k.Fork(InitPID)
	child, _ := k.Fork(parent)
	k.Exit(child, 0)
	if !k.Alive(parent) {
		t.Error("SIGCHLD default must not kill the parent")
	}
	found := false
	for _, s := range k.Pending(parent) {
		if s == SIGCHLD {
			found = true
		}
	}
	if !found {
		t.Error("parent should have received SIGCHLD")
	}
}

func TestTreeRendering(t *testing.T) {
	k := NewKernel()
	sh, _ := k.Fork(InitPID)
	k.Exec(sh, "sh")
	ls, _ := k.Fork(sh)
	k.Exec(ls, "ls")
	tree := k.Tree()
	if !strings.Contains(tree, "init") || !strings.Contains(tree, "sh") || !strings.Contains(tree, "ls") {
		t.Errorf("tree:\n%s", tree)
	}
	// ls must be indented deeper than sh.
	lines := strings.Split(tree, "\n")
	var shIndent, lsIndent int
	for _, ln := range lines {
		trimmed := strings.TrimLeft(ln, " ")
		if strings.Contains(trimmed, " sh ") {
			shIndent = len(ln) - len(trimmed)
		}
		if strings.Contains(trimmed, " ls ") {
			lsIndent = len(ln) - len(trimmed)
		}
	}
	if lsIndent <= shIndent {
		t.Errorf("ls indent %d should exceed sh %d:\n%s", lsIndent, shIndent, tree)
	}
}

func TestErrorPaths(t *testing.T) {
	k := NewKernel()
	if _, err := k.Fork(999); !errors.Is(err, ErrNoSuchProcess) {
		t.Errorf("fork from nowhere: %v", err)
	}
	if err := k.Exit(InitPID, 0); err == nil {
		t.Error("init exit should error")
	}
	p, _ := k.Fork(InitPID)
	k.Exit(p, 0)
	if _, err := k.Fork(p); err == nil {
		t.Error("zombie fork should error")
	}
	if err := k.Exec(p, "x"); err == nil {
		t.Error("zombie exec should error")
	}
	if err := k.Kill(p, SIGTERM); err != nil {
		t.Errorf("signal to zombie should be a no-op: %v", err)
	}
}

// --- schedulers ---

// The classic 3-job workbook example.
var textbookJobs = []Job{
	{Name: "A", Arrival: 0, Burst: 24, Priority: 3},
	{Name: "B", Arrival: 0, Burst: 3, Priority: 1},
	{Name: "C", Arrival: 0, Burst: 3, Priority: 2},
}

func TestFCFSTextbook(t *testing.T) {
	r, err := FCFS(textbookJobs)
	if err != nil {
		t.Fatal(err)
	}
	// FCFS order A,B,C: completions 24,27,30; avg waiting (0+24+27)/3 = 17.
	if r.AvgWaiting != 17 {
		t.Errorf("FCFS avg waiting = %f, want 17", r.AvgWaiting)
	}
}

func TestSJFTextbook(t *testing.T) {
	r, err := SJF(textbookJobs)
	if err != nil {
		t.Fatal(err)
	}
	// SJF order B,C,A: waits 0,3,6 -> avg 3.
	if r.AvgWaiting != 3 {
		t.Errorf("SJF avg waiting = %f, want 3", r.AvgWaiting)
	}
	if r.AvgWaiting >= 17 {
		t.Error("SJF must beat FCFS on this workload")
	}
}

func TestPriorityOrder(t *testing.T) {
	r, err := PrioritySched(textbookJobs)
	if err != nil {
		t.Fatal(err)
	}
	// Priority order B(1), C(2), A(3): same as SJF here.
	if r.Jobs[0].Job.Name != "B" || r.Jobs[1].Job.Name != "C" || r.Jobs[2].Job.Name != "A" {
		t.Errorf("priority order: %v %v %v", r.Jobs[0].Job.Name, r.Jobs[1].Job.Name, r.Jobs[2].Job.Name)
	}
}

func TestRoundRobinTextbook(t *testing.T) {
	// The OSTEP example: 3 jobs of 5 at t=0, quantum 1: responses 0,1,2.
	jobs := []Job{
		{Name: "A", Arrival: 0, Burst: 5},
		{Name: "B", Arrival: 0, Burst: 5},
		{Name: "C", Arrival: 0, Burst: 5},
	}
	r, err := RoundRobin(jobs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.AvgResponse != 1 {
		t.Errorf("RR avg response = %f, want 1", r.AvgResponse)
	}
	// FCFS response: (0+5+10)/3 = 5.
	f, _ := FCFS(jobs)
	if f.AvgResponse != 5 {
		t.Errorf("FCFS avg response = %f", f.AvgResponse)
	}
	if r.AvgResponse >= f.AvgResponse {
		t.Error("RR must beat FCFS on response time")
	}
	// All 15 units of work are done by t=15.
	for _, j := range r.Jobs {
		if j.Completion > 15 {
			t.Errorf("job %s completes at %d", j.Job.Name, j.Completion)
		}
	}
}

func TestRRConservation(t *testing.T) {
	jobs := []Job{
		{Name: "x", Arrival: 0, Burst: 7},
		{Name: "y", Arrival: 2, Burst: 4},
		{Name: "z", Arrival: 4, Burst: 1},
		{Name: "w", Arrival: 30, Burst: 2}, // idle gap before w
	}
	r, err := RoundRobin(jobs, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Jobs) != 4 {
		t.Fatalf("completed %d jobs", len(r.Jobs))
	}
	for _, j := range r.Jobs {
		if j.Turnaround < j.Job.Burst {
			t.Errorf("job %s turnaround %d < burst %d", j.Job.Name, j.Turnaround, j.Job.Burst)
		}
		if j.Waiting != j.Turnaround-j.Job.Burst {
			t.Errorf("job %s waiting inconsistent", j.Job.Name)
		}
	}
}

func TestMLFQDemotesLongJobs(t *testing.T) {
	// A long CPU hog plus short interactive jobs arriving later: MLFQ's
	// short jobs should finish far sooner than under FCFS.
	jobs := []Job{
		{Name: "hog", Arrival: 0, Burst: 100},
		{Name: "i1", Arrival: 10, Burst: 2},
		{Name: "i2", Arrival: 30, Burst: 2},
	}
	m, err := MLFQ(jobs, []int64{2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	f, _ := FCFS(jobs)
	var mShort, fShort int64
	for i := range m.Jobs {
		if m.Jobs[i].Job.Name != "hog" {
			mShort += m.Jobs[i].Turnaround
		}
		if f.Jobs[i].Job.Name != "hog" {
			fShort += f.Jobs[i].Turnaround
		}
	}
	if mShort >= fShort {
		t.Errorf("MLFQ short-job turnaround %d should beat FCFS %d", mShort, fShort)
	}
}

func TestSchedulerValidation(t *testing.T) {
	if _, err := FCFS(nil); err == nil {
		t.Error("empty jobs should error")
	}
	if _, err := RoundRobin(textbookJobs, 0); err == nil {
		t.Error("quantum 0 should error")
	}
	if _, err := MLFQ(textbookJobs, nil); err == nil {
		t.Error("no MLFQ levels should error")
	}
	if _, err := MLFQ(textbookJobs, []int64{0}); err == nil {
		t.Error("zero quantum level should error")
	}
	if _, err := SJF([]Job{{Name: "bad", Burst: 0}}); err == nil {
		t.Error("zero burst should error")
	}
}

func TestCompareSchedulersTable(t *testing.T) {
	table, results, err := CompareSchedulers(textbookJobs, 2, []int64{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 6 {
		t.Fatalf("results: %d", len(results))
	}
	for _, want := range []string{"FCFS", "SJF", "SRTF", "priority", "RR", "MLFQ"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %s:\n%s", want, table)
		}
	}
}

func TestSRTFPreempts(t *testing.T) {
	// The textbook SRTF example: long job at 0, short arrivals preempt.
	jobs := []Job{
		{Name: "A", Arrival: 0, Burst: 8},
		{Name: "B", Arrival: 1, Burst: 4},
		{Name: "C", Arrival: 2, Burst: 1},
	}
	r, err := SRTF(jobs)
	if err != nil {
		t.Fatal(err)
	}
	// Timeline: A[0,1) B[1,2) C[2,3) B[3,6) A[6,13).
	byName := map[string]JobMetrics{}
	for _, m := range r.Jobs {
		byName[m.Job.Name] = m
	}
	if byName["C"].Completion != 3 {
		t.Errorf("C completes at %d, want 3", byName["C"].Completion)
	}
	if byName["B"].Completion != 6 {
		t.Errorf("B completes at %d, want 6", byName["B"].Completion)
	}
	if byName["A"].Completion != 13 {
		t.Errorf("A completes at %d, want 13", byName["A"].Completion)
	}
}

func TestSRTFOptimalTurnaround(t *testing.T) {
	// SRTF never loses to any non-preemptive scheduler on avg turnaround.
	jobs := []Job{
		{Name: "w", Arrival: 0, Burst: 20, Priority: 1},
		{Name: "x", Arrival: 3, Burst: 2, Priority: 2},
		{Name: "y", Arrival: 5, Burst: 6, Priority: 0},
		{Name: "z", Arrival: 6, Burst: 1, Priority: 3},
	}
	srtf, err := SRTF(jobs)
	if err != nil {
		t.Fatal(err)
	}
	for _, other := range []func([]Job) (SchedResult, error){FCFS, SJF, PrioritySched} {
		o, err := other(jobs)
		if err != nil {
			t.Fatal(err)
		}
		if srtf.AvgTurnaround > o.AvgTurnaround+1e-9 {
			t.Errorf("SRTF %.2f worse than %s %.2f", srtf.AvgTurnaround, o.Algorithm, o.AvgTurnaround)
		}
	}
	// And against RR at several quanta.
	for _, q := range []int64{1, 2, 4} {
		o, err := RoundRobin(jobs, q)
		if err != nil {
			t.Fatal(err)
		}
		if srtf.AvgTurnaround > o.AvgTurnaround+1e-9 {
			t.Errorf("SRTF %.2f worse than RR(q=%d) %.2f", srtf.AvgTurnaround, q, o.AvgTurnaround)
		}
	}
}

func TestSRTFIdleGap(t *testing.T) {
	jobs := []Job{
		{Name: "a", Arrival: 0, Burst: 2},
		{Name: "b", Arrival: 10, Burst: 2},
	}
	r, err := SRTF(jobs)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range r.Jobs {
		if m.Job.Name == "b" && m.Start != 10 {
			t.Errorf("b starts at %d, want 10", m.Start)
		}
	}
	if _, err := SRTF(nil); err == nil {
		t.Error("empty jobs should error")
	}
}

// TestSchedulerInvariantsProperty checks, on random workloads, that every
// scheduler conserves jobs, keeps turnaround >= burst, and never starts a
// job before it arrives.
func TestSchedulerInvariantsProperty(t *testing.T) {
	type rawJob struct {
		Arrival uint8
		Burst   uint8
		Prio    uint8
	}
	schedulers := []struct {
		name string
		run  func([]Job) (SchedResult, error)
	}{
		{"FCFS", FCFS},
		{"SJF", SJF},
		{"SRTF", SRTF},
		{"priority", PrioritySched},
		{"RR", func(j []Job) (SchedResult, error) { return RoundRobin(j, 3) }},
		{"MLFQ", func(j []Job) (SchedResult, error) { return MLFQ(j, []int64{2, 4}) }},
	}
	f := func(raw []rawJob) bool {
		if len(raw) == 0 || len(raw) > 20 {
			return true
		}
		jobs := make([]Job, len(raw))
		var totalBurst int64
		for i, r := range raw {
			jobs[i] = Job{
				Name:     string(rune('a' + i%26)),
				Arrival:  int64(r.Arrival % 50),
				Burst:    int64(r.Burst%9) + 1,
				Priority: int(r.Prio % 4),
			}
			totalBurst += jobs[i].Burst
		}
		for _, s := range schedulers {
			res, err := s.run(jobs)
			if err != nil {
				return false
			}
			if len(res.Jobs) != len(jobs) {
				return false
			}
			var lastCompletion int64
			for _, m := range res.Jobs {
				if m.Turnaround < m.Job.Burst {
					return false
				}
				if m.Start < m.Job.Arrival {
					return false
				}
				if m.Waiting < 0 || m.Response < 0 {
					return false
				}
				if m.Completion > lastCompletion {
					lastCompletion = m.Completion
				}
			}
			// Total CPU time delivered >= total burst (makespan sanity).
			if lastCompletion < totalBurst/int64(len(jobs)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
