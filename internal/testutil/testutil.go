// Package testutil holds the test helpers that had been copy-pasted
// across the networked packages' test suites: goroutine-leak detection
// (settle the count, compare against a baseline) and KV test-server
// bring-up on an ephemeral loopback port with cleanup registered.
//
// It deliberately imports only internal/sockets, so every package above
// sockets (cluster, chaos, dfs, the root integration tests) can use it.
// The sockets package's own in-package tests cannot — importing
// testutil from `package sockets` test files would be an import cycle —
// which is why sockets keeps a local startServer and its external-
// package tests (package sockets_test) use testutil instead.
package testutil

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/sockets"
)

// SettleGoroutines waits for the goroutine count to stop moving and
// returns it — the leak-check baseline pattern. Background goroutines
// from a just-closed server or pool need a few scheduler ticks to
// unwind; sampling until two consecutive readings agree filters that
// shutdown transient out of the measurement.
func SettleGoroutines() int {
	n := runtime.NumGoroutine()
	for i := 0; i < 100; i++ {
		time.Sleep(time.Millisecond)
		m := runtime.NumGoroutine()
		if m == n {
			return n
		}
		n = m
	}
	return n
}

// CheckNoGoroutineLeak fails tb when the settled goroutine count has
// grown more than slack above base (a SettleGoroutines reading taken
// before the code under test ran).
func CheckNoGoroutineLeak(tb testing.TB, base, slack int) {
	tb.Helper()
	if after := SettleGoroutines(); after > base+slack {
		tb.Errorf("goroutines grew from %d to %d (leak; slack %d)", base, after, slack)
	}
}

// StartKV boots a sockets KV server on an ephemeral loopback port
// ("127.0.0.1:0", so parallel test runs never collide on a port) and
// registers its shutdown with tb.Cleanup.
func StartKV(tb testing.TB, cfg sockets.ServerConfig) *sockets.Server {
	tb.Helper()
	s, err := sockets.NewServerConfig("127.0.0.1:0", cfg)
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { s.Close() })
	return s
}
