// Package omp implements the OpenMP-style worksharing constructs from the
// CS87 short labs: parallel-for over an index range with static, static-
// chunked, dynamic, and guided schedules; reductions; named critical
// sections; and a per-thread iteration census that makes load (im)balance
// measurable — the property the scheduling lecture compares across
// schedules.
package omp

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Schedule selects how iterations map to threads (schedule(...) clause).
type Schedule int

// The schedules.
const (
	// Static splits the range into one contiguous block per thread.
	Static Schedule = iota
	// StaticChunk deals fixed-size chunks round-robin (schedule(static,k)).
	StaticChunk
	// Dynamic hands out fixed-size chunks from a shared counter on demand.
	Dynamic
	// Guided hands out geometrically shrinking chunks (remaining/threads,
	// floored at the chunk size).
	Guided
)

// String returns the human-readable name, or "unknown" for values
// outside the defined schedules (For rejects those with an error; the
// name must not panic on them either).
func (s Schedule) String() string {
	names := [...]string{"static", "static-chunk", "dynamic", "guided"}
	if s < 0 || int(s) >= len(names) {
		return "unknown"
	}
	return names[s]
}

// Config parameterizes a parallel-for.
type Config struct {
	Threads  int
	Schedule Schedule
	Chunk    int // chunk size for StaticChunk/Dynamic, minimum for Guided
}

// Census reports who executed what, for the load-balance analysis.
type Census struct {
	PerThread []int64 // iterations executed by each thread
	Chunks    []int64 // chunks claimed by each thread
}

// Imbalance returns max/mean of per-thread iteration counts (1.0 is
// perfectly balanced).
func (c Census) Imbalance() float64 {
	if len(c.PerThread) == 0 {
		return 1
	}
	var sum, max int64
	for _, n := range c.PerThread {
		sum += n
		if n > max {
			max = n
		}
	}
	if sum == 0 {
		return 1
	}
	mean := float64(sum) / float64(len(c.PerThread))
	return float64(max) / mean
}

// For executes body(thread, i) for every i in [lo, hi) using the
// configured schedule. thread is the executing worker's index
// (omp_get_thread_num()); iterations within one thread run in ascending
// order per chunk.
func For(lo, hi int, cfg Config, body func(thread, i int)) (Census, error) {
	if cfg.Threads <= 0 {
		return Census{}, errors.New("omp: thread count must be positive")
	}
	if hi < lo {
		return Census{}, fmt.Errorf("omp: bad range [%d,%d)", lo, hi)
	}
	chunk := cfg.Chunk
	if chunk <= 0 {
		chunk = 1
	}
	n := hi - lo
	census := Census{
		PerThread: make([]int64, cfg.Threads),
		Chunks:    make([]int64, cfg.Threads),
	}
	if n == 0 {
		return census, nil
	}

	var wg sync.WaitGroup
	switch cfg.Schedule {
	case Static:
		for t := 0; t < cfg.Threads; t++ {
			wg.Add(1)
			go func(t int) {
				defer wg.Done()
				start := lo + t*n/cfg.Threads
				end := lo + (t+1)*n/cfg.Threads
				if end > start {
					census.Chunks[t]++
				}
				for i := start; i < end; i++ {
					body(t, i)
					census.PerThread[t]++
				}
			}(t)
		}
	case StaticChunk:
		for t := 0; t < cfg.Threads; t++ {
			wg.Add(1)
			go func(t int) {
				defer wg.Done()
				for base := lo + t*chunk; base < hi; base += cfg.Threads * chunk {
					end := base + chunk
					if end > hi {
						end = hi
					}
					census.Chunks[t]++
					for i := base; i < end; i++ {
						body(t, i)
						census.PerThread[t]++
					}
				}
			}(t)
		}
	case Dynamic:
		var next atomic.Int64
		next.Store(int64(lo))
		for t := 0; t < cfg.Threads; t++ {
			wg.Add(1)
			go func(t int) {
				defer wg.Done()
				for {
					base := int(next.Add(int64(chunk))) - chunk
					if base >= hi {
						return
					}
					end := base + chunk
					if end > hi {
						end = hi
					}
					census.Chunks[t]++
					for i := base; i < end; i++ {
						body(t, i)
						census.PerThread[t]++
					}
				}
			}(t)
		}
	case Guided:
		var mu sync.Mutex
		nextIdx := lo
		claim := func() (int, int) {
			mu.Lock()
			defer mu.Unlock()
			remaining := hi - nextIdx
			if remaining <= 0 {
				return 0, 0
			}
			size := remaining / cfg.Threads
			if size < chunk {
				size = chunk
			}
			if size > remaining {
				size = remaining
			}
			base := nextIdx
			nextIdx += size
			return base, base + size
		}
		for t := 0; t < cfg.Threads; t++ {
			wg.Add(1)
			go func(t int) {
				defer wg.Done()
				for {
					base, end := claim()
					if base == end {
						return
					}
					census.Chunks[t]++
					for i := base; i < end; i++ {
						body(t, i)
						census.PerThread[t]++
					}
				}
			}(t)
		}
	default:
		return Census{}, fmt.Errorf("omp: unknown schedule %d", cfg.Schedule)
	}
	wg.Wait()
	return census, nil
}

// ForReduce is For with a reduction clause: each thread folds its
// iterations into a private accumulator seeded with identity; the
// partials combine in thread order at the join, so the result is
// deterministic for associative-commutative operators.
func ForReduce(lo, hi int, cfg Config, identity int64,
	body func(i int) int64, combine func(a, b int64) int64) (int64, Census, error) {
	if cfg.Threads <= 0 {
		return 0, Census{}, errors.New("omp: thread count must be positive")
	}
	partials := make([]int64, cfg.Threads)
	for t := range partials {
		partials[t] = identity
	}
	census, err := For(lo, hi, cfg, func(t, i int) {
		partials[t] = combine(partials[t], body(i))
	})
	if err != nil {
		return 0, census, err
	}
	acc := identity
	for _, p := range partials {
		acc = combine(acc, p)
	}
	return acc, census, nil
}

// Critical returns the named critical-section lock (omp critical(name)).
// The same name always yields the same mutex.
func Critical(name string) *sync.Mutex {
	criticalMu.Lock()
	defer criticalMu.Unlock()
	if m, ok := criticals[name]; ok {
		return m
	}
	m := &sync.Mutex{}
	criticals[name] = m
	return m
}

var (
	criticalMu sync.Mutex
	criticals  = map[string]*sync.Mutex{}
)

// AtomicAdd is the "#pragma omp atomic" increment.
func AtomicAdd(target *int64, delta int64) { atomic.AddInt64(target, delta) }
