package omp_test

import (
	"fmt"

	"repro/internal/omp"
)

// A parallel-for with a sum reduction — the OpenMP hello-world.
func Example() {
	sum, _, err := omp.ForReduce(1, 11, omp.Config{Threads: 4, Schedule: omp.Dynamic, Chunk: 2},
		0,
		func(i int) int64 { return int64(i * i) },
		func(a, b int64) int64 { return a + b })
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(sum) // 1+4+...+100
	// Output: 385
}
