package omp

import (
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

var allSchedules = []Schedule{Static, StaticChunk, Dynamic, Guided}

func TestEveryIterationExactlyOnce(t *testing.T) {
	for _, sched := range allSchedules {
		for _, tc := range []struct{ lo, hi, threads, chunk int }{
			{0, 100, 4, 1},
			{0, 100, 4, 7},
			{5, 6, 3, 2},     // single iteration
			{10, 10, 2, 4},   // empty range
			{0, 1000, 16, 3}, // more threads than sensible
			{-50, 50, 4, 8},  // negative lo
		} {
			n := tc.hi - tc.lo
			counts := make([]int32, max(n, 0))
			census, err := For(tc.lo, tc.hi, Config{Threads: tc.threads, Schedule: sched, Chunk: tc.chunk},
				func(_, i int) {
					atomic.AddInt32(&counts[i-tc.lo], 1)
				})
			if err != nil {
				t.Fatalf("%v %+v: %v", sched, tc, err)
			}
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("%v %+v: iteration %d ran %d times", sched, tc, tc.lo+i, c)
				}
			}
			var total int64
			for _, p := range census.PerThread {
				total += p
			}
			if total != int64(max(n, 0)) {
				t.Errorf("%v %+v: census total %d != %d", sched, tc, total, n)
			}
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestCoverageProperty(t *testing.T) {
	f := func(nRaw uint16, threadsRaw, chunkRaw, schedRaw uint8) bool {
		n := int(nRaw % 500)
		threads := int(threadsRaw%8) + 1
		chunk := int(chunkRaw%16) + 1
		sched := allSchedules[int(schedRaw)%len(allSchedules)]
		var sum atomic.Int64
		_, err := For(0, n, Config{Threads: threads, Schedule: sched, Chunk: chunk}, func(_, i int) {
			sum.Add(int64(i))
		})
		if err != nil {
			return false
		}
		return sum.Load() == int64(n)*int64(n-1)/2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestValidation(t *testing.T) {
	if _, err := For(0, 10, Config{Threads: 0}, func(_, _ int) {}); err == nil {
		t.Error("0 threads should error")
	}
	if _, err := For(10, 0, Config{Threads: 2}, func(_, _ int) {}); err == nil {
		t.Error("reversed range should error")
	}
	if _, err := For(0, 10, Config{Threads: 2, Schedule: Schedule(99)}, func(_, _ int) {}); err == nil {
		t.Error("unknown schedule should error")
	}
}

func TestThreadIndexInRange(t *testing.T) {
	for _, sched := range allSchedules {
		const threads = 4
		var bad atomic.Int32
		_, err := For(0, 200, Config{Threads: threads, Schedule: sched, Chunk: 3}, func(tid, _ int) {
			if tid < 0 || tid >= threads {
				bad.Add(1)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if bad.Load() != 0 {
			t.Errorf("%v: %d iterations saw an out-of-range thread id", sched, bad.Load())
		}
	}
}

func TestReduceSumAndMax(t *testing.T) {
	for _, sched := range allSchedules {
		got, _, err := ForReduce(1, 1001, Config{Threads: 4, Schedule: sched, Chunk: 8}, 0,
			func(i int) int64 { return int64(i) },
			func(a, b int64) int64 { return a + b })
		if err != nil {
			t.Fatal(err)
		}
		if got != 500500 {
			t.Errorf("%v: sum = %d", sched, got)
		}
		gotMax, _, err := ForReduce(0, 100, Config{Threads: 3, Schedule: sched}, -1<<62,
			func(i int) int64 { return int64((i * 37) % 89) },
			func(a, b int64) int64 {
				if a > b {
					return a
				}
				return b
			})
		if err != nil {
			t.Fatal(err)
		}
		if gotMax != 88 {
			t.Errorf("%v: max = %d", sched, gotMax)
		}
	}
	if _, _, err := ForReduce(0, 10, Config{Threads: 0}, 0, nil, nil); err == nil {
		t.Error("0 threads should error")
	}
}

func TestDynamicBalancesSkewedWork(t *testing.T) {
	// Iterations 0..49 are heavy, 50..399 trivial. Static assigns the
	// heavy prefix to thread 0; dynamic spreads it. Compare per-thread
	// *work* (weighted iterations), which is what wall-clock imbalance
	// follows.
	const threads = 4
	weight := func(i int) int64 {
		if i < 50 {
			return 100
		}
		return 1
	}
	workOf := func(sched Schedule) []int64 {
		work := make([]int64, threads)
		_, err := For(0, 400, Config{Threads: threads, Schedule: sched, Chunk: 4}, func(t, i int) {
			// Simulate the cost so dynamic's on-demand claiming matters.
			if weight(i) > 1 {
				time.Sleep(50 * time.Microsecond)
			}
			atomic.AddInt64(&work[t], weight(i))
		})
		if err != nil {
			panic(err)
		}
		return work
	}
	imbalance := func(work []int64) float64 {
		var sum, maxW int64
		for _, w := range work {
			sum += w
			if w > maxW {
				maxW = w
			}
		}
		return float64(maxW) / (float64(sum) / float64(len(work)))
	}
	static := imbalance(workOf(Static))
	dynamic := imbalance(workOf(Dynamic))
	// Static puts all 50 heavy iterations on thread 0: imbalance ~3.7.
	if static < 2 {
		t.Errorf("static imbalance = %.2f, expected heavy skew", static)
	}
	if dynamic >= static {
		t.Errorf("dynamic imbalance %.2f should beat static %.2f", dynamic, static)
	}
}

func TestGuidedClaimsFewerChunksThanDynamic(t *testing.T) {
	// Guided's shrinking chunks mean fewer scheduler interactions than
	// dynamic with the same minimum chunk.
	const n = 10000
	chunksOf := func(sched Schedule) int64 {
		census, err := For(0, n, Config{Threads: 4, Schedule: sched, Chunk: 2}, func(_, _ int) {})
		if err != nil {
			panic(err)
		}
		var total int64
		for _, c := range census.Chunks {
			total += c
		}
		return total
	}
	g, d := chunksOf(Guided), chunksOf(Dynamic)
	if g >= d {
		t.Errorf("guided chunks %d should be < dynamic %d", g, d)
	}
	if d != n/2 {
		t.Errorf("dynamic chunks = %d, want %d", d, n/2)
	}
}

func TestCriticalSection(t *testing.T) {
	counter := 0
	_, err := For(0, 1000, Config{Threads: 8, Schedule: Dynamic, Chunk: 16}, func(_, _ int) {
		mu := Critical("counter")
		mu.Lock()
		counter++
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	if counter != 1000 {
		t.Errorf("counter = %d", counter)
	}
	if Critical("counter") != Critical("counter") {
		t.Error("same name must give same lock")
	}
	if Critical("a") == Critical("b") {
		t.Error("different names must differ")
	}
}

func TestAtomicAdd(t *testing.T) {
	var total int64
	_, err := For(0, 5000, Config{Threads: 8, Schedule: StaticChunk, Chunk: 64}, func(_, _ int) {
		AtomicAdd(&total, 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if total != 5000 {
		t.Errorf("total = %d", total)
	}
}

func TestImbalanceMetric(t *testing.T) {
	c := Census{PerThread: []int64{10, 10, 10, 10}}
	if got := c.Imbalance(); got != 1 {
		t.Errorf("balanced imbalance = %f", got)
	}
	c = Census{PerThread: []int64{40, 0, 0, 0}}
	if got := c.Imbalance(); got != 4 {
		t.Errorf("worst imbalance = %f", got)
	}
	if got := (Census{}).Imbalance(); got != 1 {
		t.Errorf("empty imbalance = %f", got)
	}
	if got := (Census{PerThread: []int64{0, 0}}).Imbalance(); got != 1 {
		t.Errorf("zero-work imbalance = %f", got)
	}
}

func TestScheduleStringUnknown(t *testing.T) {
	// Out-of-range schedules must name themselves, not panic — For
	// already returns a proper error for them.
	for _, s := range []Schedule{Schedule(-1), Schedule(4), Schedule(99)} {
		if got := s.String(); got != "unknown" {
			t.Errorf("Schedule(%d).String() = %q, want \"unknown\"", int(s), got)
		}
	}
	if got := Guided.String(); got != "guided" {
		t.Errorf("Guided.String() = %q", got)
	}
}
