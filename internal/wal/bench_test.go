package wal

import (
	"fmt"
	"testing"
)

func BenchmarkAppendSync(b *testing.B) {
	for _, writers := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("writers=%d", writers), func(b *testing.B) {
			l, err := Open(Config{Dir: b.TempDir()})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			b.SetParallelism(writers) // RunParallel spawns writers*GOMAXPROCS goroutines
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				r := &Record{Kind: KindSet, Key: "bench", Value: "0123456789abcdef"}
				for pb.Next() {
					if err := l.AppendSync(r); err != nil {
						b.Error(err)
						return
					}
				}
			})
			if s := l.Syncs(); s > 0 {
				b.ReportMetric(float64(l.Appends())/float64(s), "appends/sync")
			}
		})
	}
}
