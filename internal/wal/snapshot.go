package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

const (
	snapName    = "snapshot"
	snapTmpName = "snapshot.tmp"
	snapMagic   = "walsnp01"
)

// DedupeEntry is one completed retry-dedupe recording carried by a
// snapshot: the (client, correlation) identity plus the encoded
// response to replay, so a mutation acked just before a crash stays
// exactly-once when its retry arrives after the restart.
type DedupeEntry struct {
	Client uint64
	ID     uint64
	Resp   []byte
}

// Snapshot is the compacted state a log owner persists between
// snapshots: the full store contents plus the dedupe recordings still
// inside the retry horizon. Everything else is reconstructed by
// replaying the segment tail over it.
type Snapshot struct {
	Pairs  []KV
	Dedupe []DedupeEntry
}

// writeSnapshotFile persists one snapshot atomically: full payload into
// a tmp file, fsync, rename over the live name. A crash mid-write
// leaves the tmp (removed on the next Open) and the previous snapshot
// intact; there is no state in which a half-written snapshot is ever
// loaded. tail is the first segment sequence NOT covered — replay
// starts there.
func writeSnapshotFile(dir string, tail uint64, snap *Snapshot) error {
	payload := binary.AppendUvarint(nil, tail)
	payload = binary.AppendUvarint(payload, uint64(len(snap.Pairs)))
	for _, kv := range snap.Pairs {
		payload = appendString(payload, kv.Key)
		payload = appendString(payload, kv.Value)
	}
	payload = binary.AppendUvarint(payload, uint64(len(snap.Dedupe)))
	for _, e := range snap.Dedupe {
		payload = binary.AppendUvarint(payload, e.Client)
		payload = binary.AppendUvarint(payload, e.ID)
		payload = appendString(payload, string(e.Resp))
	}
	buf := append([]byte(snapMagic), payload...)
	var crc [4]byte
	binary.BigEndian.PutUint32(crc[:], crc32.Checksum(payload, castagnoli))
	buf = append(buf, crc[:]...)

	tmp := filepath.Join(dir, snapTmpName)
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, snapName))
}

// loadSnapshotFile reads the snapshot back, verifying magic and CRC.
// A missing file returns (0, nil, nil): recovery then replays every
// segment from the beginning. Any malformed byte is ErrCorrupt — the
// atomic write protocol means a bad snapshot is bit rot, not a tear.
func loadSnapshotFile(path string) (tail uint64, snap *Snapshot, err error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return 0, nil, nil
	}
	if err != nil {
		return 0, nil, err
	}
	if len(data) < len(snapMagic)+4 || string(data[:len(snapMagic)]) != snapMagic {
		return 0, nil, fmt.Errorf("%w: snapshot header", ErrCorrupt)
	}
	payload := data[len(snapMagic) : len(data)-4]
	want := binary.BigEndian.Uint32(data[len(data)-4:])
	if crc32.Checksum(payload, castagnoli) != want {
		return 0, nil, fmt.Errorf("%w: snapshot CRC mismatch", ErrCorrupt)
	}
	c := &cursor{buf: payload}
	if tail, err = c.uvarint(); err != nil {
		return 0, nil, err
	}
	snap = &Snapshot{}
	n, err := c.count()
	if err != nil {
		return 0, nil, err
	}
	snap.Pairs = make([]KV, 0, n)
	for i := 0; i < n; i++ {
		var kv KV
		if kv.Key, err = c.key(); err != nil {
			return 0, nil, err
		}
		if kv.Value, err = c.str(); err != nil {
			return 0, nil, err
		}
		snap.Pairs = append(snap.Pairs, kv)
	}
	if n, err = c.count(); err != nil {
		return 0, nil, err
	}
	snap.Dedupe = make([]DedupeEntry, 0, n)
	for i := 0; i < n; i++ {
		var e DedupeEntry
		if e.Client, err = c.uvarint(); err != nil {
			return 0, nil, err
		}
		if e.ID, err = c.uvarint(); err != nil {
			return 0, nil, err
		}
		s, err := c.str()
		if err != nil {
			return 0, nil, err
		}
		e.Resp = []byte(s)
		snap.Dedupe = append(snap.Dedupe, e)
	}
	if len(c.buf) != 0 {
		return 0, nil, fmt.Errorf("%w: %d trailing snapshot bytes", ErrCorrupt, len(c.buf))
	}
	return tail, snap, nil
}
