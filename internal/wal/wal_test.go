package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// openCollecting opens dir and gathers whatever recovery produces.
func openCollecting(t *testing.T, dir string) (*Log, *Snapshot, []*Record) {
	t.Helper()
	var snap *Snapshot
	var recs []*Record
	l, err := Open(Config{
		Dir: dir,
		OnSnapshot: func(s *Snapshot) error {
			snap = s
			return nil
		},
		OnRecord: func(r *Record) error {
			recs = append(recs, r)
			return nil
		},
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l, snap, recs
}

func TestWAL_AppendReplayRoundtrip(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := openCollecting(t, dir)
	want := []*Record{
		{Kind: KindSet, Client: 7, ID: 1, Key: "a", Value: "1"},
		{Kind: KindDel, Client: 7, ID: 2, Key: "a"},
		{Kind: KindMPut, Client: 9, ID: 3, Pairs: []KV{{"x", "10"}, {"y", "20"}}},
		{Kind: KindMDel, Client: 9, ID: 4, Keys: []string{"x", "y"}},
		{Kind: KindSet, Key: "text-proto", Value: "no dedupe identity"},
	}
	for _, r := range want {
		if err := l.AppendSync(r); err != nil {
			t.Fatalf("AppendSync: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, snap, got := openCollecting(t, dir)
	defer l2.Close()
	if snap != nil {
		t.Fatalf("unexpected snapshot on first recovery")
	}
	if len(got) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(got), len(want))
	}
	for i, r := range got {
		if fmt.Sprintf("%+v", r) != fmt.Sprintf("%+v", want[i]) {
			t.Fatalf("record %d: got %+v want %+v", i, r, want[i])
		}
	}
	if n := l2.RecoveredRecords(); n != int64(len(want)) {
		t.Fatalf("RecoveredRecords = %d, want %d", n, len(want))
	}
}

// TestWAL_GroupCommitBatches drives many concurrent writers and checks
// the commit loop coalesced their fsyncs: with 64 writers racing, the
// sync count must come in well under one per append.
func TestWAL_GroupCommitBatches(t *testing.T) {
	l, _, _ := openCollecting(t, t.TempDir())
	defer l.Close()

	const writers, perWriter = 64, 20
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				r := &Record{Kind: KindSet, Client: uint64(w + 1), ID: uint64(i + 1),
					Key: fmt.Sprintf("k%d", w), Value: "v"}
				if err := l.AppendSync(r); err != nil {
					t.Errorf("AppendSync: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	appends, syncs := l.Appends(), l.Syncs()
	if appends != writers*perWriter {
		t.Fatalf("Appends = %d, want %d", appends, writers*perWriter)
	}
	// Worst case is one sync per append (fully serialized scheduler);
	// any real run with 64 racing writers batches far better. Require
	// at least 2x amortization to catch a broken group commit without
	// flaking on slow machines.
	if syncs*2 > appends {
		t.Fatalf("group commit not batching: %d syncs for %d appends", syncs, appends)
	}
	t.Logf("group commit: %d appends, %d syncs (%.1f appends/sync)",
		appends, syncs, float64(appends)/float64(syncs))
}

func TestWAL_RotateSnapshotRecovery(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := openCollecting(t, dir)

	state := map[string]string{}
	for i := 0; i < 50; i++ {
		k, v := fmt.Sprintf("k%03d", i), fmt.Sprintf("v%d", i)
		state[k] = v
		if err := l.AppendSync(&Record{Kind: KindSet, Key: k, Value: v}); err != nil {
			t.Fatalf("AppendSync: %v", err)
		}
	}

	// Snapshot protocol: rotate, then persist state captured after the
	// rotation under the returned tail.
	tail, err := l.Rotate()
	if err != nil {
		t.Fatalf("Rotate: %v", err)
	}
	snap := &Snapshot{}
	for k, v := range state {
		snap.Pairs = append(snap.Pairs, KV{k, v})
	}
	if err := l.WriteSnapshot(tail, snap); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	if got := l.Segments(); got != 1 {
		t.Fatalf("Segments after snapshot = %d, want 1", got)
	}

	// A post-snapshot suffix that must replay on top.
	for i := 0; i < 10; i++ {
		k := fmt.Sprintf("post%02d", i)
		state[k] = "s"
		if err := l.AppendSync(&Record{Kind: KindSet, Key: k, Value: "s"}); err != nil {
			t.Fatalf("AppendSync: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, gotSnap, recs := openCollecting(t, dir)
	defer l2.Close()
	if gotSnap == nil {
		t.Fatal("expected snapshot on recovery")
	}
	if !l2.SnapshotLoaded() {
		t.Fatal("SnapshotLoaded = false")
	}
	if len(gotSnap.Pairs) != 50 {
		t.Fatalf("snapshot pairs = %d, want 50", len(gotSnap.Pairs))
	}
	if len(recs) != 10 {
		t.Fatalf("tail records = %d, want 10", len(recs))
	}
	rebuilt := map[string]string{}
	for _, kv := range gotSnap.Pairs {
		rebuilt[kv.Key] = kv.Value
	}
	for _, r := range recs {
		rebuilt[r.Key] = r.Value
	}
	if len(rebuilt) != len(state) {
		t.Fatalf("rebuilt %d keys, want %d", len(rebuilt), len(state))
	}
	for k, v := range state {
		if rebuilt[k] != v {
			t.Fatalf("rebuilt[%q] = %q, want %q", k, rebuilt[k], v)
		}
	}
}

// TestWAL_SizeTriggeredRotation checks the loop seals segments on its
// own once the active file outgrows SegmentBytes.
func TestWAL_SizeTriggeredRotation(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Config{Dir: dir, SegmentBytes: 256})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 40; i++ {
		r := &Record{Kind: KindSet, Key: fmt.Sprintf("key%02d", i), Value: "0123456789abcdef"}
		if err := l.AppendSync(r); err != nil {
			t.Fatalf("AppendSync: %v", err)
		}
	}
	if got := l.Segments(); got < 3 {
		t.Fatalf("Segments = %d, want >= 3 after writing past the size threshold repeatedly", got)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	_, _, recs := openCollecting(t, dir)
	if len(recs) != 40 {
		t.Fatalf("recovered %d records across rotated segments, want 40", len(recs))
	}
}

// TestWAL_CrashLosesOnlyUnacked is the durability contract: after
// Crash, every AppendSync that returned nil is replayed, and the
// truncated tail means nothing else is.
func TestWAL_CrashLosesOnlyUnacked(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := openCollecting(t, dir)

	const acked = 30
	for i := 0; i < acked; i++ {
		if err := l.AppendSync(&Record{Kind: KindSet, Key: fmt.Sprintf("k%02d", i), Value: "v"}); err != nil {
			t.Fatalf("AppendSync: %v", err)
		}
	}
	if err := l.Crash(); err != nil {
		t.Fatalf("Crash: %v", err)
	}
	if err := l.AppendSync(&Record{Kind: KindSet, Key: "late", Value: "v"}); !errors.Is(err, ErrCrashed) {
		t.Fatalf("AppendSync after Crash = %v, want ErrCrashed", err)
	}

	_, _, recs := openCollecting(t, dir)
	if len(recs) != acked {
		t.Fatalf("recovered %d records, want exactly the %d acked", len(recs), acked)
	}
}

func TestWAL_ClosedErrors(t *testing.T) {
	l, _, _ := openCollecting(t, t.TempDir())
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := l.AppendSync(&Record{Kind: KindSet, Key: "k", Value: "v"}); !errors.Is(err, ErrClosed) {
		t.Fatalf("AppendSync after Close = %v, want ErrClosed", err)
	}
	if _, err := l.Rotate(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Rotate after Close = %v, want ErrClosed", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestWAL_LeftoverSnapshotTmpRemoved: a crash mid-snapshot leaves the
// tmp file; Open must discard it and recover from the previous state.
func TestWAL_LeftoverSnapshotTmpRemoved(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := openCollecting(t, dir)
	if err := l.AppendSync(&Record{Kind: KindSet, Key: "k", Value: "v"}); err != nil {
		t.Fatalf("AppendSync: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	tmp := filepath.Join(dir, snapTmpName)
	if err := os.WriteFile(tmp, []byte("half-written garbage"), 0o644); err != nil {
		t.Fatalf("plant tmp: %v", err)
	}

	l2, snap, recs := openCollecting(t, dir)
	defer l2.Close()
	if snap != nil {
		t.Fatal("tmp file must not be loaded as a snapshot")
	}
	if len(recs) != 1 {
		t.Fatalf("recovered %d records, want 1", len(recs))
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("leftover tmp not removed: %v", err)
	}
}

// TestWAL_OversizedRecordRejected: a record too big for replay to ever
// accept must be refused at append time with ErrTooLarge — writing and
// fsyncing it would make every subsequent Open fail with ErrCorrupt,
// bricking the node's log. The log stays fully usable afterwards.
func TestWAL_OversizedRecordRejected(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := openCollecting(t, dir)
	big := &Record{Kind: KindSet, Key: "k", Value: string(make([]byte, MaxRecord+1))}
	if err := l.AppendSync(big); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("AppendSync(oversized) = %v, want ErrTooLarge", err)
	}
	if err := l.AppendSync(&Record{Kind: KindSet, Key: "k", Value: "small"}); err != nil {
		t.Fatalf("AppendSync after rejected oversize: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	l2, _, recs := openCollecting(t, dir) // replay must not see poisoned bytes
	defer l2.Close()
	if len(recs) != 1 || recs[0].Value != "small" {
		t.Fatalf("recovered %+v, want just the small record", recs)
	}
}

// TestWAL_RotateFailureDoesNotDoubleClose: when rotation closes the old
// active segment but cannot open the next (a directory planted at the
// next segment path forces EISDIR), Close must surface the latched root
// cause — not a spurious "file already closed" from re-closing the old
// segment.
func TestWAL_RotateFailureDoesNotDoubleClose(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := openCollecting(t, dir)
	if err := l.AppendSync(&Record{Kind: KindSet, Key: "k", Value: "v"}); err != nil {
		t.Fatalf("AppendSync: %v", err)
	}
	// Fresh log: active segment is 00000001.seg, so rotation opens
	// 00000002.seg next. A directory there makes OpenFile fail.
	if err := os.Mkdir(filepath.Join(dir, "00000002.seg"), 0o755); err != nil {
		t.Fatalf("Mkdir: %v", err)
	}
	if _, err := l.Rotate(); err == nil {
		t.Fatal("Rotate succeeded opening a directory as a segment")
	}
	if err := l.AppendSync(&Record{Kind: KindSet, Key: "k", Value: "v2"}); err == nil {
		t.Fatal("AppendSync succeeded after latched rotation failure")
	}
	err := l.Close()
	if err == nil {
		t.Fatal("Close = nil, want the latched rotation error")
	}
	if errors.Is(err, os.ErrClosed) {
		t.Fatalf("Close = %v: double-closed the old segment instead of surfacing the root cause", err)
	}
}
