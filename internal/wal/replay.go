package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"repro/internal/sched"
)

// replayStripes is the partition width of parallel replay. Records are
// routed to a stripe by an FNV-1a hash of their key, so two records for
// the same key always land on the same stripe and are applied in log
// order by the same worker. 64 stripes keeps per-stripe skew low at any
// plausible worker count without making the fan-out bookkeeping
// expensive.
const replayStripes = 64

// replaySeg is one loaded segment awaiting replay: the file path (for
// error messages and tail truncation) and its full contents.
type replaySeg struct {
	path string
	data []byte
}

// replaySegments replays the loaded segments in log order through fn
// and returns each segment's valid byte count (so the caller can
// truncate a torn tail) plus the total record count. workers <= 1 is
// the classic serial scan; workers > 1 runs the three-phase parallel
// replay below. Both paths enforce identical corruption semantics: a
// torn frame is tolerated (and truncated) only at the tail of the last
// segment, and every other malformed byte fails the whole replay with
// ErrCorrupt.
func replaySegments(segs []replaySeg, workers int, fn func(*Record) error) ([]int64, int64, error) {
	if workers > 1 && len(segs) > 0 {
		return replayParallel(segs, workers, fn)
	}
	valids := make([]int64, len(segs))
	var recs int64
	for i, s := range segs {
		valid, n, err := replaySegment(s.data, i == len(segs)-1, fn)
		if err != nil {
			return nil, 0, fmt.Errorf("wal: replay %s: %w", s.path, err)
		}
		valids[i] = valid
		recs += int64(n)
	}
	return valids, recs, nil
}

// frameRef locates one frame inside a loaded segment: which segment,
// and the payload bounds within it. The slice of frameRefs across all
// segments is the global log order.
type frameRef struct {
	seg      int
	off, end int // payload bytes are data[off:end]
}

// replayParallel is the fan-out replay: (A) a serial frame-boundary
// scan (varint headers only — no CRC, no decode) that also finds the
// torn tail exactly where the serial path would; (B) a parallel pass
// that CRC-verifies and decodes every frame, so all corruption is
// detected before any record is applied; (C) a parallel apply pass
// partitioned by key stripe. Phase C splits the log into runs at every
// record whose keys span more than one stripe (an MPUT/MDEL batch):
// such a record is applied alone, as a barrier, because its replayed
// response can depend on the state of several stripes at once. Within
// a run, each stripe's records are applied in log order by one worker,
// so for any single key the apply order is exactly the serial order.
func replayParallel(segs []replaySeg, workers int, fn func(*Record) error) ([]int64, int64, error) {
	valids := make([]int64, len(segs))
	var frames []frameRef
	for i, s := range segs {
		off := 0
		for off < len(s.data) {
			end, err := scanFrame(s.data[off:])
			if errors.Is(err, errTorn) {
				if i == len(segs)-1 {
					break // the crash's final, never-acked record
				}
				return nil, 0, fmt.Errorf("wal: replay %s: %w: torn frame inside a sealed segment at offset %d", s.path, ErrCorrupt, off)
			}
			if err != nil {
				return nil, 0, fmt.Errorf("wal: replay %s: %w at offset %d", s.path, err, off)
			}
			frames = append(frames, frameRef{seg: i, off: off, end: off + end})
			off += end
		}
		valids[i] = int64(off)
	}
	if len(frames) == 0 {
		return valids, 0, nil
	}

	pool := sched.New(workers)
	defer pool.Close()

	// Phase B: verify and decode everything up front. Corruption must
	// fail Open before fn sees a single record, exactly like the serial
	// scan, so a poisoned log never half-applies.
	recs := make([]Record, len(frames))
	var decMu sync.Mutex
	decErrAt, decErr := len(frames), error(nil)
	grain := pool.DefaultGrain(len(frames))
	pool.ParallelFor(len(frames), grain, func(lo, hi int) { //nolint:errcheck // pool is private and open
		for i := lo; i < hi; i++ {
			f := frames[i]
			payload, _, err := readFrame(segs[f.seg].data[f.off:f.end])
			if err == nil {
				err = decodeRecordInto(payload, &recs[i])
			}
			if err != nil {
				decMu.Lock()
				if i < decErrAt {
					decErrAt, decErr = i, err
				}
				decMu.Unlock()
				return
			}
		}
	})
	if decErr != nil {
		f := frames[decErrAt]
		if errors.Is(decErr, errTorn) {
			// scanFrame accepted the bounds, so the bytes are all here;
			// a short read inside them is structural corruption.
			decErr = fmt.Errorf("%w: truncated frame", ErrCorrupt)
		}
		return nil, 0, fmt.Errorf("wal: replay %s: %w at offset %d", segs[f.seg].path, decErr, f.off)
	}
	if fn == nil {
		return valids, int64(len(recs)), nil
	}

	// Phase C: apply by stripe, run by run.
	var applyMu sync.Mutex
	applyErrAt, applyErr := len(recs), error(nil)
	perStripe := make([][]int, replayStripes)
	flush := func() error {
		defer func() {
			for s := range perStripe {
				perStripe[s] = perStripe[s][:0]
			}
		}()
		pool.ParallelFor(replayStripes, 1, func(lo, hi int) { //nolint:errcheck
			for s := lo; s < hi; s++ {
				for _, idx := range perStripe[s] {
					if err := fn(&recs[idx]); err != nil {
						applyMu.Lock()
						if idx < applyErrAt {
							applyErrAt, applyErr = idx, err
						}
						applyMu.Unlock()
						return
					}
				}
			}
		})
		return applyErr
	}
	for i := range recs {
		s := recordStripe(&recs[i])
		if s < 0 { // spans stripes: barrier — drain, apply alone
			if err := flush(); err != nil {
				break
			}
			if err := fn(&recs[i]); err != nil {
				applyMu.Lock()
				if i < applyErrAt {
					applyErrAt, applyErr = i, err
				}
				applyMu.Unlock()
				break
			}
			continue
		}
		perStripe[s] = append(perStripe[s], i)
	}
	if applyErr == nil {
		flush() //nolint:errcheck // applyErr is latched inside
	}
	if applyErr != nil {
		return nil, 0, applyErr
	}
	return valids, int64(len(recs)), nil
}

// scanFrame bounds-checks one frame header at the head of data and
// returns the full frame length, without touching the CRC or payload.
// Its error contract mirrors readFrame exactly: errTorn when the bytes
// simply stop mid-frame, ErrCorrupt for anything full bytes cannot
// explain.
func scanFrame(data []byte) (n int, err error) {
	ln, un := binary.Uvarint(data)
	if un == 0 {
		return 0, errTorn
	}
	if un < 0 {
		return 0, fmt.Errorf("%w: overlong length header", ErrCorrupt)
	}
	if ln == 0 {
		return 0, fmt.Errorf("%w: zero-length record", ErrCorrupt)
	}
	if ln > MaxRecord {
		return 0, fmt.Errorf("%w: length header %d exceeds %d", ErrCorrupt, ln, MaxRecord)
	}
	if uint64(len(data)-un) < 4+ln {
		return 0, errTorn
	}
	return un + 4 + int(ln), nil
}

// recordStripe routes a record to its apply stripe: the FNV-1a hash of
// its key, or -1 when a batch record's keys land on more than one
// stripe (the caller then applies it as a barrier).
func recordStripe(r *Record) int {
	switch r.Kind {
	case KindSet, KindDel:
		return stripeOf(r.Key)
	case KindMPut:
		if len(r.Pairs) == 0 {
			return 0
		}
		s := stripeOf(r.Pairs[0].Key)
		for _, kv := range r.Pairs[1:] {
			if stripeOf(kv.Key) != s {
				return -1
			}
		}
		return s
	case KindMDel:
		if len(r.Keys) == 0 {
			return 0
		}
		s := stripeOf(r.Keys[0])
		for _, k := range r.Keys[1:] {
			if stripeOf(k) != s {
				return -1
			}
		}
		return s
	}
	return 0
}

// stripeOf is FNV-1a over the key, mod replayStripes — the same
// allocation-free hash the sockets store uses for shard routing.
func stripeOf(key string) int {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return int(h % replayStripes)
}
