package wal

import (
	"fmt"
	"os"
	"path/filepath"
)

// Scrub re-reads every sealed segment and the snapshot file and
// re-verifies their CRCs — the background defense against bit rot that
// write-time checksums cannot give: a frame that was durable and valid
// when fsynced can still decay on the platter, and without scrubbing
// the first reader to notice is the next crash recovery, at the worst
// possible moment. One call is one full pass; the owner runs it on a
// low-priority timer.
//
// A sealed segment is immutable from the moment it is sealed, so any
// decode failure — torn frame included — is corruption, reported with
// the segment path. A segment or snapshot that vanishes mid-pass was
// pruned by a concurrent snapshot write and is skipped, not counted.
// The pass always visits everything before returning; the error is the
// first corruption found. ScrubbedSegments and ScrubErrors accumulate
// across passes.
func (l *Log) Scrub() (segments int, err error) {
	l.mu.Lock()
	if l.closed || l.crashed {
		l.mu.Unlock()
		return 0, l.stateErrLocked()
	}
	sealed := append([]uint64(nil), l.sealed...)
	l.mu.Unlock()

	for _, seq := range sealed {
		path := l.segPath(seq)
		data, rerr := os.ReadFile(path)
		if os.IsNotExist(rerr) {
			continue // pruned under us by a snapshot write
		}
		if rerr == nil {
			_, _, rerr = replaySegment(data, false, nil)
		}
		if rerr != nil {
			l.scrubErrs.Add(1)
			if err == nil {
				err = fmt.Errorf("wal: scrub %s: %w", path, rerr)
			}
			continue
		}
		segments++
		l.scrubSegs.Add(1)
	}

	snapPath := filepath.Join(l.dir, snapName)
	if _, _, serr := loadSnapshotFile(snapPath); serr != nil {
		l.scrubErrs.Add(1)
		if err == nil {
			err = fmt.Errorf("wal: scrub %s: %w", snapPath, serr)
		}
	}
	return segments, err
}

// ScrubbedSegments and ScrubErrors are the cumulative scrub counters:
// how many sealed segments have re-verified clean across all passes,
// and how many corruption findings the passes have surfaced.
func (l *Log) ScrubbedSegments() int64 { return l.scrubSegs.Load() }
func (l *Log) ScrubErrors() int64      { return l.scrubErrs.Load() }
