package wal

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// BenchResult is one measured durability configuration, exported so
// cmd/clusterbench can emit group-commit comparisons as bench grid
// rows.
type BenchResult struct {
	Writers  int
	Appends  int64
	Syncs    int64
	Duration time.Duration
}

// OpsPerSec is the acked-append throughput.
func (r BenchResult) OpsPerSec() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.Appends) / r.Duration.Seconds()
}

// RunGroupCommitBench drives `writers` goroutines, each issuing
// AppendSync in a closed loop for roughly `dur`, against a fresh log
// in dir. serialize=true holds a global mutex across each append so
// every record pays its own fsync — the no-group-commit baseline the
// batched number is compared against.
func RunGroupCommitBench(dir string, writers int, dur time.Duration, serialize bool) (BenchResult, error) {
	l, err := Open(Config{Dir: dir})
	if err != nil {
		return BenchResult{}, err
	}
	defer l.Close()

	var serial sync.Mutex
	var stop atomic.Bool
	var wg sync.WaitGroup
	errc := make(chan error, writers)
	start := time.Now()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := &Record{Kind: KindSet, Client: uint64(w + 1), Key: fmt.Sprintf("bench-%03d", w), Value: "0123456789abcdef"}
			for i := 0; !stop.Load(); i++ {
				r.ID = uint64(i + 1)
				var err error
				if serialize {
					serial.Lock()
					err = l.AppendSync(r)
					serial.Unlock()
				} else {
					err = l.AppendSync(r)
				}
				if err != nil {
					errc <- err
					return
				}
			}
		}(w)
	}
	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errc:
		return BenchResult{}, err
	default:
	}
	return BenchResult{Writers: writers, Appends: l.Appends(), Syncs: l.Syncs(), Duration: elapsed}, nil
}
