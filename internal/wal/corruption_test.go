package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// seg builds a valid segment image from records.
func seg(recs ...*Record) []byte {
	var buf []byte
	for _, r := range recs {
		buf = appendFrame(buf, r.encode(nil))
	}
	return buf
}

func rec(i int) *Record {
	return &Record{Kind: KindSet, Client: 1, ID: uint64(i), Key: fmt.Sprintf("k%d", i), Value: "v"}
}

// TestReplaySegment_CorruptionMatrix is the table the issue asks for:
// each mutation of a valid segment, with whether replay must tolerate
// it (torn tail, truncated away) or fail loudly (ErrCorrupt).
func TestReplaySegment_CorruptionMatrix(t *testing.T) {
	cases := []struct {
		name    string
		build   func() (data []byte, last bool)
		wantErr bool // ErrCorrupt expected
		recs    int  // records replayed before the verdict
	}{
		{
			name: "clean segment",
			build: func() ([]byte, bool) {
				return seg(rec(1), rec(2), rec(3)), true
			},
			recs: 3,
		},
		{
			name: "truncated tail record tolerated on last segment",
			build: func() ([]byte, bool) {
				data := seg(rec(1), rec(2))
				return data[:len(data)-3], true // shear the final frame
			},
			recs: 1,
		},
		{
			name: "truncated tail record fatal on sealed segment",
			build: func() ([]byte, bool) {
				data := seg(rec(1), rec(2))
				return data[:len(data)-3], false
			},
			wantErr: true,
			recs:    1,
		},
		{
			name: "length header alone at tail tolerated",
			build: func() ([]byte, bool) {
				data := seg(rec(1))
				return append(data, 0x05), true // 5-byte frame announced, nothing behind it
			},
			recs: 1,
		},
		{
			name: "bit-flipped CRC fails loudly",
			build: func() ([]byte, bool) {
				data := seg(rec(1), rec(2))
				// Flip a bit inside the second frame's payload.
				data[len(data)-2] ^= 0x40
				return data, true
			},
			wantErr: true,
			recs:    1,
		},
		{
			name: "oversized length header fails loudly",
			build: func() ([]byte, bool) {
				data := seg(rec(1))
				return append(binary.AppendUvarint(nil, MaxRecord+1), data...), true
			},
			wantErr: true,
		},
		{
			name: "overlong varint length fails loudly",
			build: func() ([]byte, bool) {
				// 11 continuation bytes: no valid uvarint, but not a tear.
				bad := []byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01}
				return bad, true
			},
			wantErr: true,
		},
		{
			name: "zero-length record fails loudly",
			build: func() ([]byte, bool) {
				return []byte{0x00}, true
			},
			wantErr: true,
		},
		{
			name: "zero-length key fails loudly",
			build: func() ([]byte, bool) {
				r := &Record{Kind: KindSet, Key: "", Value: "v"}
				return appendFrame(nil, r.encode(nil)), true
			},
			wantErr: true,
		},
		{
			name: "unknown kind fails loudly",
			build: func() ([]byte, bool) {
				payload := []byte{0x7f, 0x00, 0x00}
				return appendFrame(nil, payload), true
			},
			wantErr: true,
		},
		{
			name: "mid-segment torn write fails loudly even on last segment",
			build: func() ([]byte, bool) {
				// A sheared frame followed by more valid frames: an
				// interior hole, not a tail tear. The shear swallows the
				// next frame's bytes as payload, so the CRC screams.
				torn := seg(rec(1))
				torn = torn[:len(torn)-2]
				return append(torn, seg(rec(2), rec(3))...), true
			},
			wantErr: true,
		},
		{
			name: "trailing payload bytes fail loudly",
			build: func() ([]byte, bool) {
				r := rec(1)
				payload := append(r.encode(nil), 0xEE)
				return appendFrame(nil, payload), true
			},
			wantErr: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data, last := tc.build()
			var got int
			valid, recs, err := replaySegment(data, last, func(*Record) error { got++; return nil })
			if tc.wantErr {
				if !errors.Is(err, ErrCorrupt) {
					t.Fatalf("err = %v, want ErrCorrupt", err)
				}
			} else {
				if err != nil {
					t.Fatalf("err = %v, want nil", err)
				}
				if valid > int64(len(data)) {
					t.Fatalf("valid %d > len %d", valid, len(data))
				}
			}
			if recs != tc.recs || got != tc.recs {
				t.Fatalf("replayed %d records (callback %d), want %d", recs, got, tc.recs)
			}
		})
	}
}

// TestOpen_InteriorCorruptionFailsLoudly plants a bit flip in a sealed
// segment on disk and checks Open refuses to serve around it.
func TestOpen_InteriorCorruptionFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Config{Dir: dir, SegmentBytes: 128})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 20; i++ {
		if err := l.AppendSync(rec(i)); err != nil {
			t.Fatalf("AppendSync: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Corrupt the first (sealed) segment.
	path := filepath.Join(dir, "00000001.seg")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read segment: %v", err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("write corrupt segment: %v", err)
	}

	if _, err := Open(Config{Dir: dir}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open over corrupt sealed segment = %v, want ErrCorrupt", err)
	}
}

// TestOpen_TornTailTruncatedOnDisk checks the torn suffix is physically
// removed so the next incarnation appends to a clean boundary.
func TestOpen_TornTailTruncatedOnDisk(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 5; i++ {
		if err := l.AppendSync(rec(i)); err != nil {
			t.Fatalf("AppendSync: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Shear the last frame on disk.
	path := filepath.Join(dir, "00000001.seg")
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatalf("stat: %v", err)
	}
	if err := os.Truncate(path, fi.Size()-3); err != nil {
		t.Fatalf("truncate: %v", err)
	}

	l2, _, recs := openCollecting(t, dir)
	defer l2.Close()
	if len(recs) != 4 {
		t.Fatalf("recovered %d records, want 4 (torn 5th dropped)", len(recs))
	}
	fi, err = os.Stat(path)
	if err != nil {
		t.Fatalf("stat after recovery: %v", err)
	}
	if want := int64(len(seg(rec(0), rec(1), rec(2), rec(3)))); fi.Size() != want {
		t.Fatalf("segment size after truncation = %d, want %d", fi.Size(), want)
	}
}

func TestLoadSnapshotFile_Corruption(t *testing.T) {
	dir := t.TempDir()
	snap := &Snapshot{Pairs: []KV{{"a", "1"}}, Dedupe: []DedupeEntry{{Client: 1, ID: 2, Resp: []byte("ok")}}}
	if err := writeSnapshotFile(dir, 3, snap); err != nil {
		t.Fatalf("writeSnapshotFile: %v", err)
	}
	path := filepath.Join(dir, snapName)

	tail, got, err := loadSnapshotFile(path)
	if err != nil || tail != 3 || len(got.Pairs) != 1 || len(got.Dedupe) != 1 {
		t.Fatalf("roundtrip: tail=%d snap=%+v err=%v", tail, got, err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	for _, tc := range []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"bit flip", func(b []byte) []byte { b = append([]byte(nil), b...); b[len(b)/2] ^= 0x10; return b }},
		{"bad magic", func(b []byte) []byte { b = append([]byte(nil), b...); b[0] ^= 0xFF; return b }},
		{"truncated", func(b []byte) []byte { return b[:len(b)-5] }},
		{"trailing bytes", func(b []byte) []byte {
			// Valid CRC over an extended payload but trailing garbage
			// after the parsed structure: rebuild with an extra byte.
			payload := append(append([]byte(nil), b[len(snapMagic):len(b)-4]...), 0xAB)
			out := append([]byte(snapMagic), payload...)
			var crc [4]byte
			binary.BigEndian.PutUint32(crc[:], crc32.Checksum(payload, castagnoli))
			return append(out, crc[:]...)
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if err := os.WriteFile(path, tc.mutate(data), 0o644); err != nil {
				t.Fatalf("write: %v", err)
			}
			if _, _, err := loadSnapshotFile(path); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("err = %v, want ErrCorrupt", err)
			}
		})
	}
}
