package wal

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

// TestSyncWAL_DumpStreamsEverything drives DumpChunk over a live log —
// snapshot, sealed segments, and the active segment's synced prefix —
// with a chunk budget small enough to force many cursor round-trips,
// and checks the decoded stream folds to exactly the log owner's state,
// dedupe entries included.
func TestSyncWAL_DumpStreamsEverything(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	want := map[string]string{}
	put := func(k, v string) {
		if err := l.AppendSync(&Record{Kind: KindSet, Client: 7, ID: uint64(len(want) + 1), Key: k, Value: v}); err != nil {
			t.Fatal(err)
		}
		want[k] = v
	}
	for i := 0; i < 30; i++ {
		put(fmt.Sprintf("seg1-%d", i), fmt.Sprintf("v%d", i))
	}
	tail, err := l.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	snapPairs := make([]KV, 0, len(want))
	for k, v := range want {
		snapPairs = append(snapPairs, KV{Key: k, Value: v})
	}
	wantDedupe := []DedupeEntry{{Client: 7, ID: 99, Resp: []byte("OK")}}
	if err := l.WriteSnapshot(tail, &Snapshot{Pairs: snapPairs, Dedupe: wantDedupe}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		put(fmt.Sprintf("seg2-%d", i), fmt.Sprintf("w%d", i))
	}
	if _, err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		put(fmt.Sprintf("act-%d", i), fmt.Sprintf("a%d", i)) // stays in the active segment
	}

	got := map[string]string{}
	var gotDedupe []DedupeEntry
	cur, chunks := uint64(0), 0
	for {
		blob, next, done, skipped, err := l.DumpChunk(cur, 128)
		if err != nil {
			t.Fatalf("DumpChunk(%d): %v", cur, err)
		}
		if skipped != 0 {
			t.Fatalf("no frame here exceeds the budget, yet %d skipped", skipped)
		}
		items, err := DecodeStream(blob)
		if err != nil {
			t.Fatalf("DecodeStream: %v", err)
		}
		for _, it := range items {
			switch {
			case it.Dedupe != nil:
				gotDedupe = append(gotDedupe, *it.Dedupe)
			case it.Rec.Kind == KindSet:
				got[it.Rec.Key] = it.Rec.Value
			default:
				t.Fatalf("unexpected record kind %d in dump", it.Rec.Kind)
			}
		}
		chunks++
		if done {
			break
		}
		cur = next
		if chunks > 10000 {
			t.Fatal("dump did not terminate")
		}
	}
	if chunks < 5 {
		t.Fatalf("budget of 128 bytes should force many chunks, got %d", chunks)
	}
	if len(got) != len(want) {
		t.Fatalf("stream folded to %d keys, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("key %q = %q, want %q", k, got[k], v)
		}
	}
	if len(gotDedupe) != 1 || gotDedupe[0].Client != 7 || gotDedupe[0].ID != 99 || !bytes.Equal(gotDedupe[0].Resp, []byte("OK")) {
		t.Fatalf("dedupe entries did not ride along: %+v", gotDedupe)
	}
}

// TestSyncWAL_StaleCursorAfterPrune: a cursor pointing into a segment
// that a snapshot has since pruned must fail with ErrStaleCursor so the
// coordinator restarts the dump instead of shipping a hole.
func TestSyncWAL_StaleCursorAfterPrune(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 10; i++ {
		if err := l.AppendSync(&Record{Kind: KindSet, Key: fmt.Sprintf("k%d", i), Value: "v"}); err != nil {
			t.Fatal(err)
		}
	}
	tail, err := l.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	cur := uint64(1) << 32 // mid-dump: cursor into segment 1
	if _, _, _, _, err := l.DumpChunk(cur, 1<<20); err != nil {
		t.Fatalf("segment 1 should still be dumpable: %v", err)
	}
	if err := l.WriteSnapshot(tail, &Snapshot{}); err != nil { // prunes segment 1
		t.Fatal(err)
	}
	if _, _, _, _, err := l.DumpChunk(cur, 1<<20); !errors.Is(err, ErrStaleCursor) {
		t.Fatalf("want ErrStaleCursor, got %v", err)
	}
}

// TestSyncWAL_StreamCodecRejectsCorruption: every mangling of a valid
// stream chunk must surface as ErrCorrupt, never as a short or silently
// wrong decode.
func TestSyncWAL_StreamCodecRejectsCorruption(t *testing.T) {
	var blob []byte
	blob = AppendStreamRecord(blob, &Record{Kind: KindSet, Client: 1, ID: 2, Key: "k", Value: "v"})
	blob = AppendStreamDedupe(blob, DedupeEntry{Client: 3, ID: 4, Resp: []byte("OK 1")})
	blob = AppendStreamRecord(blob, &Record{Kind: KindMDel, Keys: []string{"a", "b"}})

	if items, err := DecodeStream(blob); err != nil || len(items) != 3 {
		t.Fatalf("clean stream: items=%d err=%v", len(items), err)
	}
	t.Run("truncated", func(t *testing.T) {
		if _, err := DecodeStream(blob[:len(blob)-1]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("want ErrCorrupt, got %v", err)
		}
	})
	t.Run("bitflip", func(t *testing.T) {
		for i := 0; i < len(blob); i++ {
			mut := append([]byte(nil), blob...)
			mut[i] ^= 0x10
			if _, err := DecodeStream(mut); err == nil {
				// A flip may still parse if it lands in a length header
				// and re-frames to valid CRCs — astronomically unlikely;
				// a clean parse of mutated bytes here is a real bug.
				t.Fatalf("flip at %d decoded cleanly", i)
			}
		}
	})
}

// FuzzSyncWALFrame fuzzes the receiver-side stream decoder: arbitrary
// bytes must never panic, and whatever decodes cleanly must re-encode
// to the identical byte stream (the decoder accepts only canonical
// encodings).
func FuzzSyncWALFrame(f *testing.F) {
	var seed []byte
	seed = AppendStreamRecord(seed, &Record{Kind: KindSet, Client: 9, ID: 1, Key: "key", Value: "value"})
	seed = AppendStreamDedupe(seed, DedupeEntry{Client: 2, ID: 7, Resp: []byte("OK 3")})
	f.Add(seed)
	f.Add(AppendStreamRecord(nil, &Record{Kind: KindMPut, Pairs: []KV{{Key: "a", Value: "1"}, {Key: "b", Value: "2"}}}))
	f.Add(AppendStreamRecord(nil, &Record{Kind: KindDel, Key: "gone"}))
	f.Add([]byte{0x00})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		items, err := DecodeStream(data)
		if err != nil {
			return
		}
		reencode := func(items []StreamItem) []byte {
			var re []byte
			for _, it := range items {
				switch {
				case it.Rec != nil:
					re = AppendStreamRecord(re, it.Rec)
				case it.Dedupe != nil:
					re = AppendStreamDedupe(re, *it.Dedupe)
				default:
					t.Fatal("item with neither record nor dedupe entry")
				}
			}
			return re
		}
		// The encoder's output must be a fixed point: whatever the
		// decoder accepted, encoding it and decoding again yields the
		// same items and the same bytes. (The input itself may be a
		// non-minimal varint spelling, so it is not compared directly.)
		re := reencode(items)
		items2, err := DecodeStream(re)
		if err != nil {
			t.Fatalf("re-encoded stream failed to decode: %v", err)
		}
		if !bytes.Equal(re, reencode(items2)) {
			t.Fatalf("codec is not a fixed point:\n in: %x\nout: %x", re, reencode(items2))
		}
	})
}
