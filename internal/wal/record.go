package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// MaxRecord bounds one record's encoded payload. It sits just above the
// sockets frame limit (1 MiB) so any mutation the server can admit fits
// one record, while a forged length header read back from a corrupt
// segment fails loudly instead of asking for a gigabyte.
const MaxRecord = 1<<20 + 1<<10

// castagnoli is the CRC32C polynomial table every frame and snapshot
// checksum uses (hardware-accelerated on every platform we run on).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt tags every loud decode failure: CRC mismatches, forged
// length headers, truncation anywhere but the tail of the last segment.
// Replay fails the whole Open on it — serving from a log with an
// interior hole would silently resurrect pre-hole state as current.
var ErrCorrupt = errors.New("wal: corrupt record")

// errTorn marks a frame sheared off by a crash mid-write: the length
// header or payload stops at end-of-data. Tolerated (and truncated
// away) at the tail of the last segment only — everywhere else a short
// frame means a hole, which is ErrCorrupt.
var errTorn = errors.New("wal: torn record")

// Kind tags one logged mutation, mirroring the mutating verbs of the
// wire protocol.
type Kind uint8

const (
	KindSet Kind = iota + 1
	KindDel
	KindMPut
	KindMDel
)

// KV is one key/value pair in a KindMPut record or a snapshot.
type KV struct {
	Key, Value string
}

// Record is one logged mutation. Client and ID carry the binary
// protocol's retry-dedupe identity ((client ID, correlation ID)) so
// exactly-once for retried mutations survives a restart; text-protocol
// mutations log Client 0 (no dedupe identity — the text protocol is
// at-least-once by design).
type Record struct {
	Kind   Kind
	Client uint64
	ID     uint64
	Key    string   // KindSet, KindDel
	Value  string   // KindSet
	Keys   []string // KindMDel
	Pairs  []KV     // KindMPut
}

// appendString appends a uvarint length header and the raw bytes — the
// wire package's framing idiom.
func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// encode appends the record's payload (unframed) to dst.
func (r *Record) encode(dst []byte) []byte {
	dst = append(dst, byte(r.Kind))
	dst = binary.AppendUvarint(dst, r.Client)
	dst = binary.AppendUvarint(dst, r.ID)
	switch r.Kind {
	case KindSet:
		dst = appendString(dst, r.Key)
		dst = appendString(dst, r.Value)
	case KindDel:
		dst = appendString(dst, r.Key)
	case KindMPut:
		dst = binary.AppendUvarint(dst, uint64(len(r.Pairs)))
		for _, kv := range r.Pairs {
			dst = appendString(dst, kv.Key)
			dst = appendString(dst, kv.Value)
		}
	case KindMDel:
		dst = binary.AppendUvarint(dst, uint64(len(r.Keys)))
		for _, k := range r.Keys {
			dst = appendString(dst, k)
		}
	}
	return dst
}

// appendFrame frames one payload for the segment file: uvarint length,
// 4-byte big-endian CRC32C of the payload, payload bytes.
func appendFrame(dst, payload []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	var crc [4]byte
	binary.BigEndian.PutUint32(crc[:], crc32.Checksum(payload, castagnoli))
	dst = append(dst, crc[:]...)
	return append(dst, payload...)
}

// readFrame decodes one frame from the head of data. It returns errTorn
// when data simply stops mid-frame (the caller decides whether that is
// a tolerable tail tear or an interior hole) and ErrCorrupt for
// everything that full bytes cannot explain: a forged or oversized
// length header, a zero-length record, a checksum mismatch.
func readFrame(data []byte) (payload []byte, n int, err error) {
	ln, un := binary.Uvarint(data)
	if un == 0 {
		return nil, 0, errTorn // length header sheared off
	}
	if un < 0 {
		return nil, 0, fmt.Errorf("%w: overlong length header", ErrCorrupt)
	}
	if ln == 0 {
		return nil, 0, fmt.Errorf("%w: zero-length record", ErrCorrupt)
	}
	if ln > MaxRecord {
		return nil, 0, fmt.Errorf("%w: length header %d exceeds %d", ErrCorrupt, ln, MaxRecord)
	}
	rest := data[un:]
	if uint64(len(rest)) < 4+ln {
		return nil, 0, errTorn // CRC or payload sheared off
	}
	payload = rest[4 : 4+ln]
	if want := binary.BigEndian.Uint32(rest[:4]); crc32.Checksum(payload, castagnoli) != want {
		return nil, 0, fmt.Errorf("%w: CRC mismatch", ErrCorrupt)
	}
	return payload, un + 4 + int(ln), nil
}

// cursor is a bounds-checked reader over one record payload — the same
// defensive-decode idiom as the wire package's cursor, reimplemented
// here because bytes read back from disk face bit rot the network
// decoder never sees.
type cursor struct{ buf []byte }

func (c *cursor) byte() (byte, error) {
	if len(c.buf) == 0 {
		return 0, fmt.Errorf("%w: truncated payload", ErrCorrupt)
	}
	b := c.buf[0]
	c.buf = c.buf[1:]
	return b, nil
}

func (c *cursor) uvarint() (uint64, error) {
	v, n := binary.Uvarint(c.buf)
	if n <= 0 {
		return 0, fmt.Errorf("%w: bad varint", ErrCorrupt)
	}
	c.buf = c.buf[n:]
	return v, nil
}

func (c *cursor) str() (string, error) {
	n, err := c.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(len(c.buf)) {
		return "", fmt.Errorf("%w: string of %d overruns payload", ErrCorrupt, n)
	}
	s := string(c.buf[:n])
	c.buf = c.buf[n:]
	return s, nil
}

// key reads a string and rejects the empty key no store path can ever
// have written — in a record read back from disk it means corruption.
func (c *cursor) key() (string, error) {
	s, err := c.str()
	if err != nil {
		return "", err
	}
	if s == "" {
		return "", fmt.Errorf("%w: zero-length key", ErrCorrupt)
	}
	return s, nil
}

// count reads an element count, capped by the bytes that remain: every
// element costs at least one byte, so a bigger count is a forged
// header, and allocation stays bounded by the payload size.
func (c *cursor) count() (int, error) {
	n, err := c.uvarint()
	if err != nil {
		return 0, err
	}
	if n > uint64(len(c.buf)) {
		return 0, fmt.Errorf("%w: count %d overruns payload", ErrCorrupt, n)
	}
	return int(n), nil
}

// decodeRecord parses one framed payload back into a Record, rejecting
// trailing bytes so the frame length and the payload structure must
// agree exactly.
func decodeRecord(payload []byte) (*Record, error) {
	r := &Record{}
	if err := decodeRecordInto(payload, r); err != nil {
		return nil, err
	}
	return r, nil
}

// decodeRecordInto decodes into caller-owned storage. Parallel replay
// decodes a whole log into one flat []Record, so the per-record header
// allocation matters at the million-record scale.
func decodeRecordInto(payload []byte, r *Record) error {
	c := &cursor{buf: payload}
	kb, err := c.byte()
	if err != nil {
		return err
	}
	r.Kind = Kind(kb)
	if r.Client, err = c.uvarint(); err != nil {
		return err
	}
	if r.ID, err = c.uvarint(); err != nil {
		return err
	}
	switch r.Kind {
	case KindSet:
		if r.Key, err = c.key(); err != nil {
			return err
		}
		if r.Value, err = c.str(); err != nil {
			return err
		}
	case KindDel:
		if r.Key, err = c.key(); err != nil {
			return err
		}
	case KindMPut:
		n, err := c.count()
		if err != nil {
			return err
		}
		r.Pairs = make([]KV, 0, n)
		for i := 0; i < n; i++ {
			var kv KV
			if kv.Key, err = c.key(); err != nil {
				return err
			}
			if kv.Value, err = c.str(); err != nil {
				return err
			}
			r.Pairs = append(r.Pairs, kv)
		}
	case KindMDel:
		n, err := c.count()
		if err != nil {
			return err
		}
		r.Keys = make([]string, 0, n)
		for i := 0; i < n; i++ {
			k, err := c.key()
			if err != nil {
				return err
			}
			r.Keys = append(r.Keys, k)
		}
	default:
		return fmt.Errorf("%w: unknown record kind %d", ErrCorrupt, kb)
	}
	if len(c.buf) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(c.buf))
	}
	return nil
}

// replaySegment decodes frames from data until the end, invoking fn per
// record. A frame that simply stops at end-of-data is a torn write:
// tolerated when last (this is the newest segment — the tear is the
// crash's final, never-acked record) and returned as valid < len(data)
// so the caller truncates it away; fatal otherwise, because a short
// frame in a sealed segment is an interior hole. Every other decode
// failure is ErrCorrupt regardless of position.
func replaySegment(data []byte, last bool, fn func(*Record) error) (valid int64, recs int, err error) {
	off := 0
	for off < len(data) {
		payload, n, err := readFrame(data[off:])
		if errors.Is(err, errTorn) {
			if last {
				return int64(off), recs, nil
			}
			return int64(off), recs, fmt.Errorf("%w: torn frame inside a sealed segment at offset %d", ErrCorrupt, off)
		}
		if err != nil {
			return int64(off), recs, fmt.Errorf("%w at offset %d", err, off)
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			return int64(off), recs, fmt.Errorf("%w at offset %d", err, off)
		}
		if fn != nil {
			if err := fn(rec); err != nil {
				return int64(off), recs, err
			}
		}
		off += n
		recs++
	}
	return int64(off), recs, nil
}
