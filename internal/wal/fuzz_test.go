package wal

import (
	"errors"
	"testing"
)

// FuzzReplaySegment throws arbitrary bytes at the segment replayer —
// the same adversarial posture as wire's FuzzDecodeFrame, because a
// segment read back from disk is exactly as untrusted as a network
// peer. Replay must never panic, never allocate unboundedly, and must
// classify every input as clean, torn tail, or ErrCorrupt.
func FuzzReplaySegment(f *testing.F) {
	f.Add([]byte{}, true)
	f.Add(seg(rec(1)), true)
	f.Add(seg(rec(1), rec(2), rec(3)), false)
	f.Add(seg(&Record{Kind: KindMPut, Client: 3, ID: 9, Pairs: []KV{{"a", "1"}, {"b", "2"}}}), true)
	f.Add(seg(&Record{Kind: KindMDel, Client: 3, ID: 10, Keys: []string{"a", "b"}}), true)
	torn := seg(rec(1), rec(2))
	f.Add(torn[:len(torn)-3], true)
	f.Add([]byte{0x05}, true)
	f.Add([]byte{0x00}, true)
	f.Add([]byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01}, true)

	f.Fuzz(func(t *testing.T, data []byte, last bool) {
		var recs int
		valid, n, err := replaySegment(data, last, func(r *Record) error {
			recs++
			if r.Kind < KindSet || r.Kind > KindMDel {
				t.Fatalf("replayed record with invalid kind %d", r.Kind)
			}
			return nil
		})
		if valid < 0 || valid > int64(len(data)) {
			t.Fatalf("valid offset %d out of range [0,%d]", valid, len(data))
		}
		if n != recs {
			t.Fatalf("returned record count %d != callback count %d", n, recs)
		}
		if err == nil && last && valid < int64(len(data)) {
			// Tolerated tear: re-replaying the truncated prefix must be
			// clean and reproduce the same records (what Open relies on
			// after it truncates the file).
			valid2, n2, err2 := replaySegment(data[:valid], last, nil)
			if err2 != nil || valid2 != valid || n2 != n {
				t.Fatalf("truncated prefix not clean: valid=%d n=%d err=%v", valid2, n2, err2)
			}
		}
		if err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("error escaping classification: %v", err)
		}
	})
}

// FuzzDecodeRecord exercises the payload decoder beneath the framing.
func FuzzDecodeRecord(f *testing.F) {
	f.Add(rec(1).encode(nil))
	f.Add((&Record{Kind: KindMPut, Pairs: []KV{{"k", "v"}}}).encode(nil))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, payload []byte) {
		r, err := decodeRecord(payload)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("error escaping classification: %v", err)
			}
			return
		}
		// A decodable record must re-encode to the exact same payload
		// (the frame length and structure agree byte for byte).
		if got := r.encode(nil); string(got) != string(payload) {
			t.Fatalf("re-encode mismatch:\n got %x\nwant %x", got, payload)
		}
	})
}
