package wal

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
)

// randomRecord draws one record with a small keyspace (so replay sees
// plenty of per-key overwrites) and a mix of every kind, including
// multi-key batches that span stripes.
func randomRecord(rng *rand.Rand) *Record {
	key := func() string { return fmt.Sprintf("k%02d", rng.Intn(40)) }
	r := &Record{Client: uint64(rng.Intn(3)), ID: uint64(rng.Intn(1 << 16))}
	switch n := rng.Intn(10); {
	case n < 7:
		r.Kind, r.Key, r.Value = KindSet, key(), fmt.Sprintf("v%d", rng.Int63())
	case n < 8:
		r.Kind, r.Key = KindDel, key()
	case n < 9:
		r.Kind = KindMPut
		for i := 0; i < 2+rng.Intn(3); i++ {
			r.Pairs = append(r.Pairs, KV{Key: key(), Value: fmt.Sprintf("mv%d", rng.Int63())})
		}
	default:
		r.Kind = KindMDel
		for i := 0; i < 2+rng.Intn(2); i++ {
			r.Keys = append(r.Keys, key())
		}
	}
	return r
}

// genDir synthesizes a multi-segment log directory: optional snapshot,
// several sealed-shaped segments, and optionally a torn frame at the
// tail of the newest one. Returns the records written to segments the
// snapshot does not cover (i.e., what replay must deliver).
func genDir(t *testing.T, dir string, rng *rand.Rand) []*Record {
	t.Helper()
	tail := uint64(1)
	if rng.Intn(2) == 0 {
		tail = uint64(1 + rng.Intn(2))
		snap := &Snapshot{}
		for i := 0; i < rng.Intn(20); i++ {
			snap.Pairs = append(snap.Pairs, KV{Key: fmt.Sprintf("k%02d", i), Value: "snapval"})
		}
		if err := writeSnapshotFile(dir, tail, snap); err != nil {
			t.Fatal(err)
		}
	}
	nseg := 1 + rng.Intn(4)
	var live []*Record
	for seq := uint64(1); seq <= uint64(nseg); seq++ {
		var buf []byte
		for i := 0; i < 5+rng.Intn(60); i++ {
			r := randomRecord(rng)
			buf = AppendStreamRecord(buf, r)
			if seq >= tail {
				live = append(live, r)
			}
		}
		if seq == uint64(nseg) && rng.Intn(2) == 0 {
			frame := AppendStreamRecord(nil, randomRecord(rng))
			buf = append(buf, frame[:1+rng.Intn(len(frame)-1)]...) // torn tail
		}
		path := filepath.Join(dir, fmt.Sprintf("%08d.seg", seq))
		if err := os.WriteFile(path, buf, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return live
}

// replayModel is a concurrency-safe fold of a replayed record stream:
// final store contents plus the last record kind per dedupe identity.
// A single mutex is deliberate — the model must be order-sensitive per
// key, not fast.
type replayModel struct {
	mu     sync.Mutex
	store  map[string]string
	dedupe map[[2]uint64]Kind
}

func newReplayModel() *replayModel {
	return &replayModel{store: map[string]string{}, dedupe: map[[2]uint64]Kind{}}
}

func (m *replayModel) apply(r *Record) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	switch r.Kind {
	case KindSet:
		m.store[r.Key] = r.Value
	case KindDel:
		delete(m.store, r.Key)
	case KindMPut:
		for _, kv := range r.Pairs {
			m.store[kv.Key] = kv.Value
		}
	case KindMDel:
		for _, k := range r.Keys {
			delete(m.store, k)
		}
	}
	if r.Client != 0 {
		m.dedupe[[2]uint64{r.Client, r.ID}] = r.Kind
	}
	return nil
}

func (m *replayModel) equal(o *replayModel) bool {
	if len(m.store) != len(o.store) || len(m.dedupe) != len(o.dedupe) {
		return false
	}
	for k, v := range m.store {
		if o.store[k] != v {
			return false
		}
	}
	for k, v := range m.dedupe {
		if o.dedupe[k] != v {
			return false
		}
	}
	return true
}

// segSizes is the post-recovery on-disk layout: name → size for every
// segment file. Serial and parallel recovery must truncate identically.
func segSizes(t *testing.T, dir string) map[string]int64 {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	sizes := map[string]int64{}
	for _, e := range ents {
		if filepath.Ext(e.Name()) != ".seg" {
			continue
		}
		info, err := e.Info()
		if err != nil {
			t.Fatal(err)
		}
		sizes[e.Name()] = info.Size()
	}
	return sizes
}

// TestParallelReplay_EquivalenceProperty replays identical randomized
// multi-segment logs (snapshots, batch records, torn tails included)
// serially and in parallel, and requires identical store contents,
// dedupe tables, replayed-record counts, and truncated file sizes.
func TestParallelReplay_EquivalenceProperty(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			dirSerial, dirPar := t.TempDir(), t.TempDir()
			genDir(t, dirSerial, rand.New(rand.NewSource(seed)))
			genDir(t, dirPar, rand.New(rand.NewSource(seed)))

			open := func(dir string, workers int) (*replayModel, *Log) {
				m := newReplayModel()
				l, err := Open(Config{Dir: dir, ReplayWorkers: workers, OnRecord: m.apply, OnSnapshot: func(s *Snapshot) error {
					for _, kv := range s.Pairs {
						m.store[kv.Key] = kv.Value
					}
					return nil
				}})
				if err != nil {
					t.Fatalf("open %s (workers=%d): %v", dir, workers, err)
				}
				return m, l
			}
			ms, ls := open(dirSerial, 1)
			mp, lp := open(dirPar, 8)
			defer ls.Close()
			defer lp.Close()

			if !ms.equal(mp) {
				t.Fatalf("parallel replay state diverged from serial\nserial: %d keys %d dedupe\nparallel: %d keys %d dedupe",
					len(ms.store), len(ms.dedupe), len(mp.store), len(mp.dedupe))
			}
			if ls.RecoveredRecords() != lp.RecoveredRecords() {
				t.Fatalf("recovered record counts diverged: serial %d parallel %d", ls.RecoveredRecords(), lp.RecoveredRecords())
			}
			ss, sp := segSizes(t, dirSerial), segSizes(t, dirPar)
			var names []string
			for name := range ss {
				names = append(names, name)
			}
			sort.Strings(names)
			if len(ss) != len(sp) {
				t.Fatalf("segment counts diverged: serial %v parallel %v", ss, sp)
			}
			for _, name := range names {
				if ss[name] != sp[name] {
					t.Fatalf("truncated sizes diverged at %s: serial %d parallel %d", name, ss[name], sp[name])
				}
			}
		})
	}
}

// TestParallelReplay_TornTailTruncated checks the parallel path honors
// the serial tear contract: a frame sheared off at the tail of the
// newest segment is truncated away, and replay delivers everything
// before it.
func TestParallelReplay_TornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	var buf []byte
	for i := 0; i < 10; i++ {
		buf = AppendStreamRecord(buf, &Record{Kind: KindSet, Key: fmt.Sprintf("k%d", i), Value: "v"})
	}
	whole := len(buf)
	frame := AppendStreamRecord(nil, &Record{Kind: KindSet, Key: "torn", Value: "never-acked"})
	buf = append(buf, frame[:len(frame)-3]...)
	path := filepath.Join(dir, "00000001.seg")
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var got int
	l, err := Open(Config{Dir: dir, ReplayWorkers: 4, OnRecord: func(r *Record) error {
		mu.Lock()
		got++
		mu.Unlock()
		if r.Key == "torn" {
			t.Error("torn record must not replay")
		}
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if got != 10 {
		t.Fatalf("replayed %d records, want 10", got)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() != int64(whole) {
		t.Fatalf("torn tail not truncated: size %d want %d", info.Size(), whole)
	}
}

// TestParallelReplay_InteriorCorruptionFails checks both a torn frame
// inside a sealed segment and a flipped payload byte fail the parallel
// open loudly with ErrCorrupt, before any record is applied from the
// poisoned region.
func TestParallelReplay_InteriorCorruptionFails(t *testing.T) {
	mk := func(t *testing.T) (string, []byte) {
		dir := t.TempDir()
		var buf []byte
		for i := 0; i < 20; i++ {
			buf = AppendStreamRecord(buf, &Record{Kind: KindSet, Key: fmt.Sprintf("k%d", i), Value: "v"})
		}
		return dir, buf
	}
	t.Run("torn-sealed", func(t *testing.T) {
		dir, buf := mk(t)
		if err := os.WriteFile(filepath.Join(dir, "00000001.seg"), buf[:len(buf)-2], 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "00000002.seg"), buf, 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := Open(Config{Dir: dir, ReplayWorkers: 4})
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("want ErrCorrupt for torn sealed segment, got %v", err)
		}
	})
	t.Run("flipped-byte", func(t *testing.T) {
		dir, buf := mk(t)
		buf[len(buf)/3] ^= 0x40
		if err := os.WriteFile(filepath.Join(dir, "00000001.seg"), buf, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "00000002.seg"), AppendStreamRecord(nil, &Record{Kind: KindSet, Key: "x", Value: "y"}), 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := Open(Config{Dir: dir, ReplayWorkers: 4})
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("want ErrCorrupt for flipped byte, got %v", err)
		}
	})
}
