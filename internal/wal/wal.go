// Package wal is the per-node durability layer: a segmented,
// append-only write-ahead log with group commit. Records are framed
// with a uvarint length header and a CRC32C checksum (the wire
// package's framing idioms, hardened for disk), fsyncs are batched
// across concurrent writers on a self-clocking commit loop (the same
// amortization pattern as the coalescing frame writer in
// internal/sockets/coalesce.go), and periodic compacted snapshots
// truncate the segment history so recovery replays a snapshot plus a
// short log tail instead of the whole write history.
//
// The durability contract: when AppendSync returns nil the record is on
// disk and fsynced, and will be replayed by the next Open of the same
// directory. AppendSync splits into Begin (a non-blocking commit-queue
// reservation) and Ticket.Wait (the fsync wait) for callers that must
// establish log order under their own locks — see Begin. A crash (simulated by Crash, which truncates the active
// segment back to its last-synced byte — the strictest reading of
// kill -9) loses exactly the suffix whose AppendSync never returned.
// Recovery tolerates one torn frame at the tail of the newest segment
// (the crash's final, never-acked write) and fails loudly on any other
// malformed byte — serving around an interior hole would silently
// resurrect stale state.
package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
)

// Errors returned by log operations.
var (
	ErrClosed   = errors.New("wal: log closed")
	ErrCrashed  = errors.New("wal: log crashed")
	ErrTooLarge = errors.New("wal: record exceeds MaxRecord")
)

// Config parameterizes Open.
type Config struct {
	// Dir is the log directory (created if missing). One directory is
	// one node's log; Open replays whatever a previous incarnation left
	// there before accepting appends.
	Dir string
	// SegmentBytes is the size past which the commit loop seals the
	// active segment and starts the next (default 4 MiB). Bounding
	// segment size bounds what a single replay pass must buffer.
	SegmentBytes int64
	// OnSnapshot, when non-nil, receives the recovered snapshot (if one
	// exists) before any record replay.
	OnSnapshot func(*Snapshot) error
	// OnRecord, when non-nil, receives every replayed record in log
	// order, after OnSnapshot.
	OnRecord func(*Record) error
	// ReplayWorkers sets the replay fan-out for Open: 0 or 1 replays the
	// segment tail serially; n > 1 verifies and decodes frames in
	// parallel and applies records across n workers partitioned by key
	// stripe (per-key apply order still equals log order — see
	// replay.go). With n > 1, OnRecord must be safe for concurrent calls
	// from multiple goroutines. OnSnapshot is always called once,
	// serially, before any record.
	ReplayWorkers int
}

// entry is one queued unit of work for the commit loop: either a
// framed record with its waiter's ticket, or a rotation marker.
type entry struct {
	frame []byte
	t     *ticket
	rot   *rotReq
}

// ticket is one AppendSync waiter; done closes when the record's batch
// has been written and fsynced (err nil) or abandoned (err set).
type ticket struct {
	err  error
	done chan struct{}
}

// rotReq is one Rotate waiter; seq carries back the new active
// segment's sequence (the snapshot tail).
type rotReq struct {
	seq  uint64
	err  error
	done chan struct{}
}

// Log is one open write-ahead log.
type Log struct {
	dir      string
	segBytes int64

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []entry
	closed  bool
	crashed bool
	err     error // latched first I/O failure; everything after fails with it

	// Segment state. active/actSeq/written/durable are owned by the
	// commit loop while it runs (and read by Crash/Close only after the
	// loop has exited); sealed is shared under mu between the loop
	// (rotation appends) and WriteSnapshot (pruning).
	active  *os.File
	actSeq  uint64
	written int64
	durable int64
	sealed  []uint64

	done chan struct{} // closed when the commit loop exits

	appends          atomic.Int64
	syncs            atomic.Int64
	scrubSegs        atomic.Int64
	scrubErrs        atomic.Int64
	recoveredRecords int64
	snapshotLoaded   bool
}

// Open replays the directory's snapshot and segment tail into the
// configured callbacks, truncates a torn tail frame if the last crash
// left one, and starts the commit loop on a fresh segment. Recovery
// never appends to an old segment, so "torn tail" can only ever
// describe the newest file.
func Open(cfg Config) (*Log, error) {
	if cfg.Dir == "" {
		return nil, errors.New("wal: Config.Dir required")
	}
	if cfg.SegmentBytes <= 0 {
		cfg.SegmentBytes = 4 << 20
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	l := &Log{dir: cfg.Dir, segBytes: cfg.SegmentBytes, done: make(chan struct{})}
	l.cond = sync.NewCond(&l.mu)

	// A tmp left behind is a snapshot write the crash interrupted; the
	// segments it meant to compact are all still here, so drop it.
	os.Remove(filepath.Join(cfg.Dir, snapTmpName))

	tail := uint64(1)
	snapTail, snap, err := loadSnapshotFile(filepath.Join(cfg.Dir, snapName))
	if err != nil {
		return nil, err
	}
	if snap != nil {
		l.snapshotLoaded = true
		tail = snapTail
		if cfg.OnSnapshot != nil {
			if err := cfg.OnSnapshot(snap); err != nil {
				return nil, err
			}
		}
	}

	seqs, err := l.listSegments()
	if err != nil {
		return nil, err
	}
	maxSeq := tail - 1
	var segs []replaySeg
	for _, seq := range seqs {
		path := l.segPath(seq)
		if seq < tail {
			// Covered by the snapshot; a crash between the snapshot
			// rename and the prune left it behind.
			os.Remove(path)
			continue
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		segs = append(segs, replaySeg{path: path, data: data})
		if seq > maxSeq {
			maxSeq = seq
		}
		l.sealed = append(l.sealed, seq)
	}
	valids, recs, err := replaySegments(segs, cfg.ReplayWorkers, cfg.OnRecord)
	if err != nil {
		return nil, err
	}
	l.recoveredRecords = recs
	for i, s := range segs {
		if valids[i] < int64(len(s.data)) {
			if err := os.Truncate(s.path, valids[i]); err != nil {
				return nil, err
			}
		}
	}

	l.actSeq = maxSeq + 1
	f, err := os.OpenFile(l.segPath(l.actSeq), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	l.active = f
	if err := l.syncDir(); err != nil {
		f.Close()
		return nil, err
	}
	go l.loop()
	return l, nil
}

func (l *Log) segPath(seq uint64) string {
	return filepath.Join(l.dir, fmt.Sprintf("%08d.seg", seq))
}

// listSegments returns the directory's segment sequences, ascending.
func (l *Log) listSegments() ([]uint64, error) {
	ents, err := os.ReadDir(l.dir)
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, e := range ents {
		var seq uint64
		if n, _ := fmt.Sscanf(e.Name(), "%d.seg", &seq); n == 1 && e.Name() == fmt.Sprintf("%08d.seg", seq) {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// syncDir fsyncs the log directory so segment creates, prunes, and the
// snapshot rename are themselves durable, not just the file contents.
func (l *Log) syncDir() error {
	d, err := os.Open(l.dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// Ticket is one reserved position in the commit queue — the handle a
// Begin caller holds between enqueueing a record and its covering
// fsync.
type Ticket struct{ t *ticket }

// Wait blocks until the ticket's record is durable — written and
// fsynced — and returns the append's outcome. Multiple goroutines may
// Wait on the same ticket; a nil ticket (no reservation made) is
// trivially done.
func (tk *Ticket) Wait() error {
	if tk == nil {
		return nil
	}
	<-tk.t.done
	return tk.t.err
}

// Begin reserves the record's position in the commit queue and returns
// without waiting for durability. It never touches the disk — just a
// mutex-guarded enqueue — which is what lets a caller reserve log order
// while still holding the lock that ordered the corresponding state
// change: apply, Begin, unlock, then Wait off-lock. Because apply and
// reservation sit in one critical section, log order provably equals
// apply order for any two records touching the same key, so replay
// reconstructs the pre-crash state rather than a plausible reordering
// of it.
//
// A record whose encoded payload exceeds MaxRecord fails with
// ErrTooLarge before reaching the queue: writing it would fsync bytes
// every subsequent Open must reject as corrupt, bricking the log.
func (l *Log) Begin(rec *Record) *Ticket {
	payload := rec.encode(nil)
	if len(payload) > MaxRecord {
		return failedTicket(fmt.Errorf("%w: payload of %d exceeds %d", ErrTooLarge, len(payload), MaxRecord))
	}
	frame := appendFrame(nil, payload)
	t := &ticket{done: make(chan struct{})}
	l.mu.Lock()
	if err := l.stateErrLocked(); err != nil {
		l.mu.Unlock()
		return failedTicket(err)
	}
	l.queue = append(l.queue, entry{frame: frame, t: t})
	l.mu.Unlock()
	l.cond.Signal()
	return &Ticket{t: t}
}

// failedTicket is a pre-resolved ticket for appends rejected before
// they reach the queue.
func failedTicket(err error) *Ticket {
	t := &ticket{err: err, done: make(chan struct{})}
	close(t.done)
	return &Ticket{t: t}
}

// AppendSync logs one record and blocks until it is durable — written
// and fsynced. Concurrency is what makes this fast: while one fsync is
// in flight, every record that arrives queues behind it and rides the
// next flush, so under N concurrent writers up to N fsyncs collapse
// into one (the group commit). A lone writer degrades to one fsync per
// record — the price of durability with nobody to share it with.
func (l *Log) AppendSync(rec *Record) error {
	return l.Begin(rec).Wait()
}

// Rotate seals the active segment and opens the next, serialized with
// appends through the commit queue: every record enqueued before the
// Rotate call lands in a pre-rotation segment. It returns the new
// active segment's sequence — the snapshot tail. State captured after
// Rotate returns therefore covers every sealed segment below that
// tail, provided the owner applies each record's effects before
// enqueueing it (the server does; see DESIGN.md §8).
func (l *Log) Rotate() (uint64, error) {
	r := &rotReq{done: make(chan struct{})}
	l.mu.Lock()
	if err := l.stateErrLocked(); err != nil {
		l.mu.Unlock()
		return 0, err
	}
	l.queue = append(l.queue, entry{rot: r})
	l.mu.Unlock()
	l.cond.Signal()
	<-r.done
	return r.seq, r.err
}

// stateErrLocked maps the log's terminal states to their errors.
// Caller holds l.mu.
func (l *Log) stateErrLocked() error {
	switch {
	case l.err != nil:
		return l.err
	case l.crashed:
		return ErrCrashed
	case l.closed:
		return ErrClosed
	}
	return nil
}

// WriteSnapshot atomically persists a compacted snapshot covering every
// segment below tail, then prunes those segments. Sound because every
// flush fsyncs before its waiters are released and rotation only
// happens between flushes: a sealed segment is fully durable, and
// state captured after the Rotate that returned tail reflects every
// record in it. Replaying the surviving suffix over the snapshot is a
// sequence of overwrites in log order, so the overlap is idempotent.
func (l *Log) WriteSnapshot(tail uint64, snap *Snapshot) error {
	if err := writeSnapshotFile(l.dir, tail, snap); err != nil {
		return err
	}
	if err := l.syncDir(); err != nil {
		return err
	}
	l.mu.Lock()
	var prune []uint64
	keep := l.sealed[:0]
	for _, seq := range l.sealed {
		if seq < tail {
			prune = append(prune, seq)
		} else {
			keep = append(keep, seq)
		}
	}
	l.sealed = keep
	l.mu.Unlock()
	for _, seq := range prune {
		os.Remove(l.segPath(seq))
	}
	return nil
}

// Close drains the queue — every record already accepted is flushed
// and fsynced — then stops the loop and closes the active segment.
func (l *Log) Close() error {
	l.mu.Lock()
	already := l.closed || l.crashed
	l.closed = true
	l.mu.Unlock()
	l.cond.Signal()
	<-l.done
	if already {
		return nil
	}
	if l.active == nil {
		// A failed rotation already closed the old segment and never got
		// a new one open; surface the latched root cause instead of a
		// spurious double-close error.
		return l.latched()
	}
	return l.active.Close()
}

// Crash simulates kill -9: queued and in-flight appends fail with
// ErrCrashed, and the active segment is truncated back to its last
// fsynced byte — discarding exactly the suffix whose AppendSync never
// returned. Durable (acked) records are untouched; the next Open
// replays them. This is deliberately harsher than a real process kill
// (the page cache would usually save unsynced writes); testing against
// the worst case is the point.
func (l *Log) Crash() error {
	l.mu.Lock()
	if l.closed || l.crashed {
		l.mu.Unlock()
		return nil
	}
	l.crashed = true
	l.mu.Unlock()
	l.cond.Signal()
	<-l.done
	if l.active != nil { // nil after a failed rotation already closed it
		l.active.Close()
	}
	return os.Truncate(l.segPath(l.actSeq), l.durable)
}

// Appends and Syncs expose the group-commit ratio: appends/syncs is
// how many acked records each fsync amortized.
func (l *Log) Appends() int64 { return l.appends.Load() }
func (l *Log) Syncs() int64   { return l.syncs.Load() }

// RecoveredRecords is how many log-tail records Open replayed (not
// counting snapshot contents).
func (l *Log) RecoveredRecords() int64 { return l.recoveredRecords }

// SnapshotLoaded reports whether Open recovered from a snapshot.
func (l *Log) SnapshotLoaded() bool { return l.snapshotLoaded }

// Segments is the live segment-file count (sealed plus active) — what
// snapshot truncation keeps bounded.
func (l *Log) Segments() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.sealed) + 1
}

// loop is the commit loop: it drains whatever has accumulated in the
// queue and services the batch — the self-clocking batching of
// sockets' frameWriter, with fsync as the syscall being amortized.
func (l *Log) loop() {
	defer close(l.done)
	for {
		l.mu.Lock()
		for len(l.queue) == 0 && !l.closed && !l.crashed {
			l.cond.Wait()
		}
		if l.crashed {
			q := l.queue
			l.queue = nil
			l.mu.Unlock()
			failBatch(q, ErrCrashed) // the never-acked suffix
			return
		}
		if l.closed && len(l.queue) == 0 {
			l.mu.Unlock()
			return
		}
		batch := l.queue
		l.queue = nil
		l.mu.Unlock()
		l.run(batch)
	}
}

// run services one dequeued batch in arrival order: frames between
// rotation markers are flushed as one write+fsync group; each marker
// then seals the segment. A size-triggered rotation rides the end of
// the batch.
func (l *Log) run(batch []entry) {
	start := 0
	for i, e := range batch {
		if e.rot == nil {
			continue
		}
		l.flush(batch[start:i])
		e.rot.seq, e.rot.err = l.rotate()
		close(e.rot.done)
		start = i + 1
	}
	l.flush(batch[start:])
	if l.written > l.segBytes {
		l.rotate() //nolint:errcheck // failure latches in l.err; the next batch fails with it
	}
}

// flush is the group commit: one Write and one Sync for however many
// frames the batch accumulated, then every waiter is released at once.
func (l *Log) flush(es []entry) {
	if len(es) == 0 {
		return
	}
	if err := l.latched(); err != nil {
		failBatch(es, err)
		return
	}
	size := 0
	for _, e := range es {
		size += len(e.frame)
	}
	buf := make([]byte, 0, size)
	for _, e := range es {
		buf = append(buf, e.frame...)
	}
	if _, err := l.active.Write(buf); err != nil {
		l.latch(err)
		failBatch(es, err)
		return
	}
	l.written += int64(len(buf))
	if err := l.active.Sync(); err != nil {
		l.latch(err)
		failBatch(es, err)
		return
	}
	l.durable = l.written
	l.syncs.Add(1)
	l.appends.Add(int64(len(es)))
	for _, e := range es {
		close(e.t.done)
	}
}

// rotate seals the active segment and opens the next. Every flush
// syncs before releasing waiters, so the sealed file is durable in
// full the moment it is sealed.
func (l *Log) rotate() (uint64, error) {
	if err := l.latched(); err != nil {
		return 0, err
	}
	// Past this point the old active file is closed either way: clear
	// l.active so a failure below doesn't leave Close/Crash double-closing
	// it (the "file already closed" error would mask the latched root
	// cause). The old segment was fully flushed before this rotation ran,
	// so durable still describes it correctly for Crash's truncate.
	err := l.active.Close()
	l.active = nil
	if err != nil {
		l.latch(err)
		return 0, err
	}
	l.mu.Lock()
	l.sealed = append(l.sealed, l.actSeq)
	next := l.actSeq + 1
	l.mu.Unlock()
	f, err := os.OpenFile(l.segPath(next), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		l.latch(err)
		return 0, err
	}
	if err := l.syncDir(); err != nil {
		l.latch(err)
		f.Close()
		return 0, err
	}
	l.mu.Lock()
	l.active, l.actSeq, l.written, l.durable = f, next, 0, 0
	l.mu.Unlock()
	return next, nil
}

func (l *Log) latch(err error) {
	l.mu.Lock()
	if l.err == nil {
		l.err = err
	}
	l.mu.Unlock()
}

func (l *Log) latched() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// failBatch releases a batch's waiters with err.
func failBatch(es []entry, err error) {
	for _, e := range es {
		if e.rot != nil {
			e.rot.err = err
			close(e.rot.done)
			continue
		}
		e.t.err = err
		close(e.t.done)
	}
}
