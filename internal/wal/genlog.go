package wal

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
)

// GenerateLog synthesizes a recovery workload on disk — the directory a
// crashed node would leave behind — without paying a live server's
// fsync-per-batch cost, so recovery benchmarks measure replay, not log
// construction. It simulates a server that snapshotted every snapEvery
// records: the snapshot holds the folded state of every record before
// the last snapshot point, and the records after it land in 4 MiB
// segment files for Open to replay. snapEvery <= 0 writes no snapshot —
// every record goes to segments (the pure-replay worst case).
//
// Records are KindSet with dedupe identities, keys drawn from a keyspace
// half the record count (so replay exercises overwrites, not just
// inserts), and valueSize random bytes per value, all derived from seed.
func GenerateLog(dir string, records, valueSize int, seed int64, snapEvery int) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(seed))
	keyspace := records / 2
	if keyspace < 1 {
		keyspace = 1
	}
	val := make([]byte, valueSize)
	mkRecord := func(i int) *Record {
		rng.Read(val)
		return &Record{
			Kind:   KindSet,
			Client: uint64(1 + i%64),
			ID:     uint64(i + 1),
			Key:    fmt.Sprintf("key%08d", rng.Intn(keyspace)),
			Value:  string(val),
		}
	}

	snapCovered := 0
	seq := uint64(1)
	if snapEvery > 0 && snapEvery < records {
		snapCovered = (records / snapEvery) * snapEvery
		if snapCovered == records {
			snapCovered -= snapEvery
		}
		state := make(map[string]string, keyspace)
		var order []string
		for i := 0; i < snapCovered; i++ {
			r := mkRecord(i)
			if _, ok := state[r.Key]; !ok {
				order = append(order, r.Key)
			}
			state[r.Key] = r.Value
		}
		snap := &Snapshot{Pairs: make([]KV, 0, len(order))}
		for _, k := range order {
			snap.Pairs = append(snap.Pairs, KV{Key: k, Value: state[k]})
		}
		if err := writeSnapshotFile(dir, seq, snap); err != nil {
			return err
		}
	}

	const segBytes = 4 << 20
	var buf []byte
	flush := func() error {
		if len(buf) == 0 {
			return nil
		}
		path := filepath.Join(dir, fmt.Sprintf("%08d.seg", seq))
		if err := os.WriteFile(path, buf, 0o644); err != nil {
			return err
		}
		seq++
		buf = buf[:0]
		return nil
	}
	for i := snapCovered; i < records; i++ {
		buf = AppendStreamRecord(buf, mkRecord(i))
		if len(buf) > segBytes {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	return flush()
}
