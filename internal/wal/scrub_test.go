package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// scrubLog builds a live log with two sealed segments and a snapshot,
// the full surface one scrub pass must cover.
func scrubLog(t *testing.T, dir string) *Log {
	t.Helper()
	l, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := l.AppendSync(&Record{Kind: KindSet, Key: fmt.Sprintf("k%d", i), Value: "v"}); err != nil {
			t.Fatal(err)
		}
		if i == 3 {
			if _, err := l.Rotate(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := writeSnapshotFile(dir, 1, &Snapshot{Pairs: []KV{{Key: "s", Value: "v"}}}); err != nil {
		t.Fatal(err)
	}
	return l
}

func TestScrub_CleanLogPasses(t *testing.T) {
	dir := t.TempDir()
	l := scrubLog(t, dir)
	defer l.Close()
	segs, err := l.Scrub()
	if err != nil {
		t.Fatalf("scrub of a clean log failed: %v", err)
	}
	if segs != 2 {
		t.Fatalf("scrubbed %d segments, want 2", segs)
	}
	if l.ScrubbedSegments() != 2 || l.ScrubErrors() != 0 {
		t.Fatalf("counters = (%d, %d), want (2, 0)", l.ScrubbedSegments(), l.ScrubErrors())
	}
}

func TestScrub_DetectsSegmentFlip(t *testing.T) {
	dir := t.TempDir()
	l := scrubLog(t, dir)
	defer l.Close()
	path := filepath.Join(dir, "00000001.seg")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	segs, err := l.Scrub()
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
	if segs != 1 {
		t.Fatalf("clean segments = %d, want 1 (the unflipped one)", segs)
	}
	if l.ScrubErrors() != 1 {
		t.Fatalf("ScrubErrors = %d, want 1", l.ScrubErrors())
	}
	// The error names the corrupt file — the operator's first question.
	if got := err.Error(); !strings.Contains(got, path) {
		t.Fatalf("error %q does not name %s", got, path)
	}
}

func TestScrub_DetectsSnapshotRot(t *testing.T) {
	dir := t.TempDir()
	l := scrubLog(t, dir)
	defer l.Close()
	path := filepath.Join(dir, snapName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-6] ^= 0x80 // inside the payload, not the CRC footer
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Scrub(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt for snapshot rot, got %v", err)
	}
	if l.ScrubErrors() != 1 {
		t.Fatalf("ScrubErrors = %d, want 1", l.ScrubErrors())
	}
}

func TestScrub_ClosedLogRefuses(t *testing.T) {
	dir := t.TempDir()
	l := scrubLog(t, dir)
	l.Close()
	if _, err := l.Scrub(); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
}
