// The SYNCWAL stream format: how one node's durable history travels to
// a peer as raw CRC-checked frames instead of key-by-key scans.
//
// A stream is a concatenation of the same uvarint-length + CRC32C
// frames the segment files use. Record frames are copied out of sealed
// segments verbatim — same payload bytes, same checksum, no re-encode —
// so the receiver re-verifies the exact bits that were fsynced at the
// source. Snapshot contents are synthesized into KindSet record frames,
// and dedupe entries ride in the same framing under a reserved kind
// byte that no Record can carry, so the retry-dedupe identities of
// acked mutations survive re-replication too.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// streamDedupeKind is the payload tag for a dedupe entry inside a
// stream frame. Record kinds occupy 1..4; this sits far outside any
// value decodeRecord will ever accept, so a frame's first payload byte
// unambiguously routes it.
const streamDedupeKind = 0xFA

// ErrStaleCursor means a DumpChunk cursor named a segment that has
// since been compacted into a snapshot: the chunks already shipped may
// predate that snapshot, so the only consistent move is to restart the
// dump from zero.
var ErrStaleCursor = errors.New("wal: stale dump cursor")

// StreamItem is one decoded stream frame: exactly one of Rec or Dedupe
// is set.
type StreamItem struct {
	Rec    *Record
	Dedupe *DedupeEntry
}

// AppendStreamRecord frames one record onto dst.
func AppendStreamRecord(dst []byte, r *Record) []byte {
	return appendFrame(dst, r.encode(nil))
}

// AppendStreamDedupe frames one dedupe entry onto dst.
func AppendStreamDedupe(dst []byte, e DedupeEntry) []byte {
	p := []byte{streamDedupeKind}
	p = binary.AppendUvarint(p, e.Client)
	p = binary.AppendUvarint(p, e.ID)
	p = appendString(p, string(e.Resp))
	return appendFrame(dst, p)
}

// DecodeStream walks a stream chunk and decodes every frame. Unlike
// segment replay there is no tolerable tear: the bytes arrived over a
// connection that delivered them whole, so anything short or mismatched
// is ErrCorrupt and the caller must discard the chunk.
func DecodeStream(data []byte) ([]StreamItem, error) {
	var items []StreamItem
	off := 0
	for off < len(data) {
		payload, n, err := readFrame(data[off:])
		if errors.Is(err, errTorn) {
			return nil, fmt.Errorf("%w: truncated stream frame at offset %d", ErrCorrupt, off)
		}
		if err != nil {
			return nil, fmt.Errorf("%w at stream offset %d", err, off)
		}
		if payload[0] == streamDedupeKind {
			c := &cursor{buf: payload[1:]}
			var e DedupeEntry
			if e.Client, err = c.uvarint(); err != nil {
				return nil, err
			}
			if e.ID, err = c.uvarint(); err != nil {
				return nil, err
			}
			s, err := c.str()
			if err != nil {
				return nil, err
			}
			if len(c.buf) != 0 {
				return nil, fmt.Errorf("%w: %d trailing dedupe bytes", ErrCorrupt, len(c.buf))
			}
			e.Resp = []byte(s)
			items = append(items, StreamItem{Dedupe: &e})
		} else {
			rec, err := decodeRecord(payload)
			if err != nil {
				return nil, err
			}
			items = append(items, StreamItem{Rec: rec})
		}
		off += n
	}
	return items, nil
}

// DumpChunk produces the next chunk of a full-log dump: the snapshot
// first (synthesized frames), then every segment in sequence order —
// sealed ones byte-for-byte, and finally the active segment's
// currently-readable valid prefix, so everything fsynced at the moment
// of the walk is included. The cursor is opaque to callers: pass 0 to
// start and the returned next thereafter; done reports the walk has
// passed the end of the active segment.
//
// The dump takes no locks across calls and copies no state up front, so
// a log owner keeps serving appends, rotations, and snapshots while
// being dumped. The price is that a snapshot write can prune a segment
// between chunks; the next DumpChunk then fails with ErrStaleCursor and
// the caller restarts from zero. Frames the receiver applies twice are
// harmless — the consumer applies them version-conditionally.
//
// A frame too large for maxBytes is skipped rather than shipped (the
// count comes back in skipped); the caller's follow-up Merkle pass
// repairs those keys. maxBytes is a soft target: at least one frame is
// emitted per call when one fits.
func (l *Log) DumpChunk(cur uint64, maxBytes int) (blob []byte, next uint64, done bool, skipped int, err error) {
	if maxBytes <= 0 {
		return nil, 0, false, 0, errors.New("wal: DumpChunk maxBytes must be positive")
	}
	l.mu.Lock()
	if serr := l.stateErrLocked(); serr != nil {
		l.mu.Unlock()
		return nil, 0, false, 0, serr
	}
	sealed := append([]uint64(nil), l.sealed...)
	act := l.actSeq
	l.mu.Unlock()

	seq := cur >> 32
	off := int(cur & 0xffffffff)

	if seq == 0 {
		blob, next, skipped, err = l.dumpSnapshot(off, maxBytes, sealed, act)
		return blob, next, false, skipped, err
	}

	data, rerr := os.ReadFile(l.segPath(seq))
	if os.IsNotExist(rerr) {
		return nil, 0, false, 0, ErrStaleCursor
	}
	if rerr != nil {
		return nil, 0, false, 0, rerr
	}
	tolerant := seq >= act // the active segment may end mid-write
	for off < len(data) {
		payload, n, ferr := readFrame(data[off:])
		if errors.Is(ferr, errTorn) {
			if tolerant {
				break // end of the fsynced prefix
			}
			return nil, 0, false, 0, fmt.Errorf("wal: dump %s: %w: torn frame inside a sealed segment at offset %d", l.segPath(seq), ErrCorrupt, off)
		}
		if ferr != nil {
			return nil, 0, false, 0, fmt.Errorf("wal: dump %s: %w at offset %d", l.segPath(seq), ferr, off)
		}
		_ = payload
		if len(blob)+n > maxBytes {
			if n > maxBytes {
				off += n
				skipped++
				continue
			}
			return blob, seq<<32 | uint64(off), false, skipped, nil
		}
		blob = append(blob, data[off:off+n]...)
		off += n
	}
	if ns, ok := nextSeqAfter(seq, sealed, act); ok {
		return blob, ns << 32, false, skipped, nil
	}
	return blob, 0, true, skipped, nil
}

// dumpSnapshot emits snapshot contents from item index off: pairs
// first, then dedupe entries. When the snapshot is exhausted (or
// absent) the cursor advances to the first segment.
func (l *Log) dumpSnapshot(off, maxBytes int, sealed []uint64, act uint64) (blob []byte, next uint64, skipped int, err error) {
	_, snap, err := loadSnapshotFile(filepath.Join(l.dir, snapName))
	if err != nil {
		return nil, 0, 0, err
	}
	first, _ := nextSeqAfter(0, sealed, act) // the active segment always exists
	if snap == nil {
		return nil, first << 32, 0, nil
	}
	total := len(snap.Pairs) + len(snap.Dedupe)
	var frame []byte
	for ; off < total; off++ {
		if off < len(snap.Pairs) {
			kv := snap.Pairs[off]
			frame = AppendStreamRecord(frame[:0], &Record{Kind: KindSet, Key: kv.Key, Value: kv.Value})
		} else {
			frame = AppendStreamDedupe(frame[:0], snap.Dedupe[off-len(snap.Pairs)])
		}
		if len(blob)+len(frame) > maxBytes {
			if len(frame) > maxBytes {
				skipped++
				continue
			}
			return blob, uint64(off), skipped, nil
		}
		blob = append(blob, frame...)
	}
	return blob, first << 32, skipped, nil
}

// nextSeqAfter is the smallest live segment sequence greater than seq,
// considering sealed segments and the active one.
func nextSeqAfter(seq uint64, sealed []uint64, act uint64) (uint64, bool) {
	best, ok := uint64(0), false
	for _, s := range sealed {
		if s > seq && (!ok || s < best) {
			best, ok = s, true
		}
	}
	if act > seq && (!ok || act < best) {
		best, ok = act, true
	}
	return best, ok
}
