package coherence

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestMSIBasicTransitions(t *testing.T) {
	s := NewSystem(MSI, 2, 64)
	s.Read(0, 0)
	if got := s.StateOf(0, 0); got != Shared {
		t.Errorf("MSI read miss -> %v, want S", got)
	}
	s.Write(0, 0)
	if got := s.StateOf(0, 0); got != Modified {
		t.Errorf("after write -> %v, want M", got)
	}
	// Core 1 reads: core 0 flushes and downgrades to S.
	s.Read(1, 8) // same block
	if got := s.StateOf(0, 0); got != Shared {
		t.Errorf("owner after remote read -> %v, want S", got)
	}
	if got := s.StateOf(1, 0); got != Shared {
		t.Errorf("reader -> %v, want S", got)
	}
	if s.Bus().Flushes != 1 {
		t.Errorf("flushes = %d, want 1", s.Bus().Flushes)
	}
	// Core 1 writes: core 0 invalidated.
	s.Write(1, 8)
	if got := s.StateOf(0, 0); got != Invalid {
		t.Errorf("after remote write -> %v, want I", got)
	}
	if s.Bus().Invalidation != 1 {
		t.Errorf("invalidations = %d, want 1", s.Bus().Invalidation)
	}
}

func TestMESIExclusiveSilentUpgrade(t *testing.T) {
	s := NewSystem(MESI, 2, 64)
	s.Read(0, 0)
	if got := s.StateOf(0, 0); got != Exclusive {
		t.Errorf("sole reader -> %v, want E", got)
	}
	before := s.Bus()
	s.Write(0, 0) // E -> M silently
	after := s.Bus()
	if got := s.StateOf(0, 0); got != Modified {
		t.Errorf("E write -> %v, want M", got)
	}
	if before != after {
		t.Errorf("E->M upgrade must be silent: %+v -> %+v", before, after)
	}
	// Under MSI the same sequence costs an upgrade transaction.
	m := NewSystem(MSI, 2, 64)
	m.Read(0, 0)
	m.Write(0, 0)
	if m.Bus().BusUpgr != 1 {
		t.Errorf("MSI read-then-write should cost BusUpgr, got %+v", m.Bus())
	}
}

func TestMESISecondReaderShares(t *testing.T) {
	s := NewSystem(MESI, 3, 64)
	s.Read(0, 0)
	s.Read(1, 0)
	if s.StateOf(0, 0) != Shared || s.StateOf(1, 0) != Shared {
		t.Errorf("states: %v %v, want S S", s.StateOf(0, 0), s.StateOf(1, 0))
	}
	// One memory read for the first fetch; the second can also come from
	// memory in this model but must not flush.
	if s.Bus().Flushes != 0 {
		t.Errorf("clean sharing should not flush: %+v", s.Bus())
	}
}

func TestWriteInvalidatesAllSharers(t *testing.T) {
	s := NewSystem(MSI, 4, 64)
	for c := 0; c < 4; c++ {
		s.Read(c, 0)
	}
	s.Write(0, 0)
	for c := 1; c < 4; c++ {
		if got := s.StateOf(c, 0); got != Invalid {
			t.Errorf("core %d after remote write: %v", c, got)
		}
	}
	if s.Bus().Invalidation != 3 {
		t.Errorf("invalidations = %d, want 3", s.Bus().Invalidation)
	}
}

func TestCoherenceMissCounting(t *testing.T) {
	s := NewSystem(MSI, 2, 64)
	s.Read(0, 0)  // cold miss (not coherence)
	s.Write(1, 0) // invalidates core 0
	s.Read(0, 0)  // coherence miss
	if got := s.Core(0).CoherenceMisses; got != 1 {
		t.Errorf("coherence misses = %d, want 1", got)
	}
	if got := s.Core(1).CoherenceMisses; got != 0 {
		t.Errorf("core 1 coherence misses = %d, want 0", got)
	}
}

func TestPingPong(t *testing.T) {
	// Two cores alternately writing the same block: every write after the
	// first invalidates the other's copy.
	s := NewSystem(MESI, 2, 64)
	const rounds = 50
	for i := 0; i < rounds; i++ {
		s.Write(0, 0)
		s.Write(1, 0)
	}
	inv := s.Bus().Invalidation
	if inv < 2*rounds-2 {
		t.Errorf("ping-pong invalidations = %d, want ~%d", inv, 2*rounds)
	}
	if s.Bus().Flushes < 2*rounds-2 {
		t.Errorf("dirty transfers = %d, want ~%d", s.Bus().Flushes, 2*rounds)
	}
}

func TestFalseSharingExperiment(t *testing.T) {
	for _, p := range []Protocol{MSI, MESI} {
		r := FalseSharingExperiment(p, 4, 64, 100)
		if r.PackedInvalidations <= 10*r.PaddedInvalidations {
			t.Errorf("%v: packed %d vs padded %d invalidations — false sharing should dominate",
				p, r.PackedInvalidations, r.PaddedInvalidations)
		}
		if r.PackedBusOps <= r.PaddedBusOps {
			t.Errorf("%v: packed bus ops %d should exceed padded %d", p, r.PackedBusOps, r.PaddedBusOps)
		}
		// Padded layout after warm-up: each core owns its block forever.
		if r.PaddedInvalidations != 0 {
			t.Errorf("%v: padded invalidations = %d, want 0", p, r.PaddedInvalidations)
		}
	}
}

func TestInvariantSingleWriterMultipleReaders(t *testing.T) {
	// Property: after any access sequence, a block is either Modified or
	// Exclusive in at most one cache, and if so, Invalid everywhere else.
	type op struct {
		Core  uint8
		Addr  uint8
		Write bool
	}
	f := func(ops []op) bool {
		s := NewSystem(MESI, 4, 64)
		for _, o := range ops {
			core := int(o.Core) % 4
			addr := uint64(o.Addr % 8 * 64)
			if o.Write {
				s.Write(core, addr)
			} else {
				s.Read(core, addr)
			}
		}
		for blk := uint64(0); blk < 8; blk++ {
			owners, sharers := 0, 0
			for c := 0; c < 4; c++ {
				switch s.StateOf(c, blk*64) {
				case Modified, Exclusive:
					owners++
				case Shared:
					sharers++
				}
			}
			if owners > 1 || (owners == 1 && sharers > 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestReport(t *testing.T) {
	s := NewSystem(MESI, 2, 64)
	s.Read(0, 0)
	s.Write(1, 0)
	rep := s.Report()
	for _, want := range []string{"MESI", "core 0", "core 1", "bus:"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestBlockGranularity(t *testing.T) {
	// Addresses within one block share coherence state; across blocks are
	// independent.
	s := NewSystem(MSI, 2, 64)
	s.Write(0, 0)
	s.Write(0, 63) // same block: hit
	if got := s.Core(0).WriteHits; got != 1 {
		t.Errorf("same-block write hits = %d, want 1", got)
	}
	s.Write(0, 64) // next block: miss
	if got := s.Core(0).WriteHits; got != 1 {
		t.Errorf("cross-block write should miss: hits = %d", got)
	}
}

func TestMESINeverMoreBusOpsThanMSI(t *testing.T) {
	// On any access sequence, MESI's silent E->M upgrade can only remove
	// bus transactions relative to MSI.
	type op struct {
		Core  uint8
		Addr  uint8
		Write bool
	}
	f := func(ops []op) bool {
		run := func(p Protocol) int64 {
			s := NewSystem(p, 3, 64)
			for _, o := range ops {
				core := int(o.Core) % 3
				addr := uint64(o.Addr%8) * 64
				if o.Write {
					s.Write(core, addr)
				} else {
					s.Read(core, addr)
				}
			}
			b := s.Bus()
			return b.BusRd + b.BusRdX + b.BusUpgr
		}
		return run(MESI) <= run(MSI)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
