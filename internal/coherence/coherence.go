// Package coherence implements the cache-coherence content of CS31's
// multicore unit: a bus-based snooping simulator for the MSI and MESI
// protocols over N per-core caches, with counters for the invalidation
// and bus traffic that make false sharing visible. Caches are modelled
// per coherence state only (infinite capacity), which isolates coherence
// misses from capacity misses — the separation the lecture draws.
package coherence

import (
	"fmt"
	"strings"
)

// State is the coherence state of one block in one cache.
type State int

// The MESI states. MSI uses the subset {Invalid, Shared, Modified}.
const (
	Invalid State = iota
	Shared
	Exclusive // MESI only: clean and only copy
	Modified
)

// String returns the human-readable name.
func (s State) String() string {
	return [...]string{"I", "S", "E", "M"}[s]
}

// Protocol selects MSI or MESI.
type Protocol int

// The protocols.
const (
	MSI Protocol = iota
	MESI
)

// String returns the human-readable name.
func (p Protocol) String() string {
	if p == MSI {
		return "MSI"
	}
	return "MESI"
}

// BusStats counts bus transactions — the shared-medium traffic that
// limits multicore scaling in the lecture's bandwidth discussion.
type BusStats struct {
	BusRd        int64 // read requests on the bus
	BusRdX       int64 // read-for-ownership (write misses)
	BusUpgr      int64 // upgrades S->M (invalidate-only)
	Invalidation int64 // lines invalidated in remote caches
	Flushes      int64 // dirty data supplied by an owner cache
	MemReads     int64 // blocks served by memory
}

// CoreStats counts per-core access outcomes.
type CoreStats struct {
	Reads, Writes   int64
	ReadHits        int64
	WriteHits       int64
	CoherenceMisses int64 // misses on blocks this core once held (invalidated)
}

// System is a snooping-bus multiprocessor: NumCores caches kept coherent
// under the chosen protocol, with a shared block size for the false
// sharing experiments.
type System struct {
	Protocol   Protocol
	BlockBytes int
	caches     []map[uint64]State
	everHeld   []map[uint64]bool
	bus        BusStats
	cores      []CoreStats
}

// NewSystem creates a coherent system of n cores.
func NewSystem(protocol Protocol, n, blockBytes int) *System {
	if blockBytes <= 0 {
		blockBytes = 64
	}
	s := &System{Protocol: protocol, BlockBytes: blockBytes}
	s.caches = make([]map[uint64]State, n)
	s.everHeld = make([]map[uint64]bool, n)
	for i := range s.caches {
		s.caches[i] = make(map[uint64]State)
		s.everHeld[i] = make(map[uint64]bool)
	}
	s.cores = make([]CoreStats, n)
	return s
}

// NumCores returns the number of cores.
func (s *System) NumCores() int { return len(s.caches) }

// Bus returns the accumulated bus statistics.
func (s *System) Bus() BusStats { return s.bus }

// Core returns the statistics of core i.
func (s *System) Core(i int) CoreStats { return s.cores[i] }

// StateOf reports the coherence state of the block containing addr in
// core i's cache.
func (s *System) StateOf(core int, addr uint64) State {
	return s.caches[core][s.block(addr)]
}

func (s *System) block(addr uint64) uint64 { return addr / uint64(s.BlockBytes) }

// Read performs a load by core on addr, driving the protocol transitions.
func (s *System) Read(core int, addr uint64) {
	b := s.block(addr)
	st := s.caches[core][b]
	s.cores[core].Reads++
	if st != Invalid {
		s.cores[core].ReadHits++
		return
	}
	if s.everHeld[core][b] {
		s.cores[core].CoherenceMisses++
	}
	// Read miss: BusRd. Owners downgrade M->S (flushing), E->S.
	s.bus.BusRd++
	shared := false
	for other := range s.caches {
		if other == core {
			continue
		}
		switch s.caches[other][b] {
		case Modified:
			s.bus.Flushes++
			s.caches[other][b] = Shared
			shared = true
		case Exclusive:
			s.caches[other][b] = Shared
			shared = true
		case Shared:
			shared = true
		}
	}
	if !shared {
		s.bus.MemReads++
		if s.Protocol == MESI {
			s.caches[core][b] = Exclusive
			s.everHeld[core][b] = true
			return
		}
	}
	s.caches[core][b] = Shared
	s.everHeld[core][b] = true
}

// Write performs a store by core on addr.
func (s *System) Write(core int, addr uint64) {
	b := s.block(addr)
	st := s.caches[core][b]
	s.cores[core].Writes++
	switch st {
	case Modified:
		s.cores[core].WriteHits++
		return
	case Exclusive:
		// MESI silent upgrade: no bus traffic.
		s.cores[core].WriteHits++
		s.caches[core][b] = Modified
		return
	case Shared:
		// Upgrade: invalidate other sharers without a data transfer.
		s.bus.BusUpgr++
		s.invalidateOthers(core, b)
		s.caches[core][b] = Modified
		s.cores[core].WriteHits++ // data already present; upgrade only
		return
	default: // Invalid: read-for-ownership
		if s.everHeld[core][b] {
			s.cores[core].CoherenceMisses++
		}
		s.bus.BusRdX++
		supplied := false
		for other := range s.caches {
			if other == core {
				continue
			}
			if s.caches[other][b] == Modified {
				s.bus.Flushes++
				supplied = true
			}
		}
		if !supplied {
			s.bus.MemReads++
		}
		s.invalidateOthers(core, b)
		s.caches[core][b] = Modified
		s.everHeld[core][b] = true
	}
}

func (s *System) invalidateOthers(core int, b uint64) {
	for other := range s.caches {
		if other == core {
			continue
		}
		if s.caches[other][b] != Invalid {
			s.caches[other][b] = Invalid
			s.bus.Invalidation++
		}
	}
}

// Report renders bus and per-core summaries.
func (s *System) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s, %d cores, %dB blocks\n", s.Protocol, len(s.caches), s.BlockBytes)
	fmt.Fprintf(&b, "bus: rd=%d rdx=%d upgr=%d inval=%d flush=%d mem=%d\n",
		s.bus.BusRd, s.bus.BusRdX, s.bus.BusUpgr, s.bus.Invalidation, s.bus.Flushes, s.bus.MemReads)
	for i, cs := range s.cores {
		fmt.Fprintf(&b, "core %d: reads=%d (hits %d) writes=%d (hits %d) coherence-misses=%d\n",
			i, cs.Reads, cs.ReadHits, cs.Writes, cs.WriteHits, cs.CoherenceMisses)
	}
	return b.String()
}

// FalseSharingResult compares the bus traffic of two layouts of a
// per-core counter array: packed (all counters in one block — false
// sharing) versus padded (one counter per block).
type FalseSharingResult struct {
	PackedInvalidations int64
	PaddedInvalidations int64
	PackedBusOps        int64
	PaddedBusOps        int64
}

// FalseSharingExperiment simulates `iters` rounds of every core
// incrementing its own counter. Packed layout places the counters 8 bytes
// apart (sharing a block); padded places them blockBytes apart. This is
// the CS75/CS87 false-sharing exercise the paper names.
func FalseSharingExperiment(protocol Protocol, cores, blockBytes, iters int) FalseSharingResult {
	run := func(stride uint64) (int64, int64) {
		sys := NewSystem(protocol, cores, blockBytes)
		for it := 0; it < iters; it++ {
			for c := 0; c < cores; c++ {
				addr := uint64(c) * stride
				sys.Read(c, addr)
				sys.Write(c, addr)
			}
		}
		bus := sys.Bus()
		ops := bus.BusRd + bus.BusRdX + bus.BusUpgr
		return bus.Invalidation, ops
	}
	var r FalseSharingResult
	r.PackedInvalidations, r.PackedBusOps = run(8)
	r.PaddedInvalidations, r.PaddedBusOps = run(uint64(blockBytes))
	return r
}
