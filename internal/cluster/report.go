package cluster

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/metrics"
	"repro/internal/sockets"
)

// Counters exports the cluster-wide counters as a metrics.CounterSet:
// request totals, quorum failures, hinted-handoff traffic, failure-
// detector transitions, and migration volume.
func (c *Cluster) Counters() *metrics.CounterSet {
	cs := &metrics.CounterSet{}
	cs.Add("cluster.puts", float64(c.puts.Load()))
	cs.Add("cluster.gets", float64(c.gets.Load()))
	cs.Add("cluster.dels", float64(c.dels.Load()))
	cs.Add("cluster.quorum-failures", float64(c.quorumFailures.Load()))
	cs.Add("cluster.ops-canceled", float64(c.opsCanceled.Load()))
	cs.Add("cluster.hinted-writes", float64(c.hintedWrites.Load()))
	cs.Add("cluster.hints-replayed", float64(c.hintsReplayed.Load()))
	cs.Add("hints.expired", float64(c.hintsExpired.Load()))
	cs.Add("hints.concurrent", float64(c.hintsConcurrent.Load()))
	cs.Add("readrepair.writes", float64(c.readRepairs.Load()))
	cs.Add("antientropy.syncs", float64(c.aeSyncs.Load()))
	cs.Add("antientropy.ranges", float64(c.aeRanges.Load()))
	cs.Add("antientropy.keys-repaired", float64(c.aeKeysRepaired.Load()))
	cs.Add("antientropy.bytes", float64(c.aeBytesMoved.Load()))
	cs.Add("antientropy.streams", float64(c.aeStreams.Load()))
	cs.Add("antientropy.stream-bytes", float64(c.aeStreamBytes.Load()))
	cs.Add("cluster.down-events", float64(c.downEvents.Load()))
	cs.Add("cluster.up-events", float64(c.upEvents.Load()))
	cs.Add("cluster.keys-migrated", float64(c.keysMigrated.Load()))
	cs.Add("cluster.ring-moves", float64(c.Moves()))
	cs.Add("cluster.sheds", float64(c.Sheds()))
	if c.cache != nil {
		cs.Add("cache.hits", float64(c.cache.hits.Load()))
		cs.Add("cache.misses", float64(c.cache.misses.Load()))
		cs.Add("cache.admissions", float64(c.cache.admissions.Load()))
		cs.Add("cache.write-throughs", float64(c.cache.writeThrus.Load()))
		cs.Add("cache.expiries", float64(c.cache.expiries.Load()))
		cs.Add("cache.evictions", float64(c.cache.evictions.Load()))
	}
	return cs
}

// CacheHits and CacheMisses expose the hot-key cache counters (0 when
// the cache is disabled) — what the benches use to report hit rate.
func (c *Cluster) CacheHits() int64   { return c.cache.Hits() }
func (c *Cluster) CacheMisses() int64 { return c.cache.Misses() }

// Sheds sums every node server's admission-control shed count. Safe
// for dead nodes (the counters are atomics that survive server Close);
// counts from pre-kill incarnations are lost with the old server, so
// this is a floor under churn.
func (c *Cluster) Sheds() int64 {
	c.topoMu.RLock()
	nodes := make([]*node, 0, len(c.order))
	for _, name := range c.order {
		nodes = append(nodes, c.nodes[name])
	}
	c.topoMu.RUnlock()
	var total int64
	for _, n := range nodes {
		total += n.server().Shed()
	}
	return total
}

// PoolCounters sums the client-side sockets.Pool counters across every
// node's pool: requests, attempts, retries, failed attempts, and
// injected FailConn faults. Reading is safe even for dead nodes — the
// counters are plain atomics that survive pool Close.
func (c *Cluster) PoolCounters() *metrics.CounterSet {
	c.topoMu.RLock()
	nodes := make([]*node, 0, len(c.order))
	for _, name := range c.order {
		nodes = append(nodes, c.nodes[name])
	}
	c.topoMu.RUnlock()

	sum := &metrics.CounterSet{}
	for _, n := range nodes {
		sum.Merge(n.client().Counters())
	}
	return sum
}

// Report renders the cluster health table: one row per node (state,
// server-side request/error counts, latency percentiles, stored keys —
// replicas and parked hints included) followed by the cluster counters.
func (c *Cluster) Report() string {
	c.topoMu.RLock()
	nodes := make([]*node, 0, len(c.order))
	for _, name := range c.order {
		nodes = append(nodes, c.nodes[name])
	}
	c.topoMu.RUnlock()

	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %-21s %-5s %9s %7s %10s %10s %10s %6s %6s\n",
		"node", "addr", "state", "requests", "errors", "p50", "p99", "p999", "shed", "keys")
	for _, n := range nodes {
		state := "up"
		if n.killed.Load() {
			state = "dead"
		} else if n.down.Load() {
			state = "down"
		}
		srv := n.server()
		st := srv.Stats()
		h := srv.Latency()
		keys := "-"
		if state == "up" {
			if k, err := n.client().Count(); err == nil {
				keys = fmt.Sprintf("%d", k)
			}
		}
		fmt.Fprintf(&b, "%-8s %-21s %-5s %9d %7d %10v %10v %10v %6d %6s\n",
			n.name, n.address(), state, st.Requests, st.Errors,
			h.Quantile(0.50).Round(time.Microsecond), h.Quantile(0.99).Round(time.Microsecond),
			h.Quantile(0.999).Round(time.Microsecond), srv.Shed(), keys)
	}

	// Per-verb tail table: each verb's histograms merged across nodes,
	// so a hot verb's overload tail (p999) is visible even when the
	// aggregate latency line looks healthy.
	var verbLines []string
	for _, verb := range sockets.Verbs() {
		merged := metrics.NewHistogram()
		for _, n := range nodes {
			if h := n.server().VerbLatency(verb); h != nil {
				merged.Merge(h)
			}
		}
		if merged.Count() == 0 {
			continue
		}
		verbLines = append(verbLines, fmt.Sprintf("%-6s %9d %10v %10v %10v %10v",
			verb, merged.Count(),
			merged.Quantile(0.50).Round(time.Microsecond), merged.Quantile(0.99).Round(time.Microsecond),
			merged.Quantile(0.999).Round(time.Microsecond), merged.Max().Round(time.Microsecond)))
	}
	if len(verbLines) > 0 {
		fmt.Fprintf(&b, "\n%-6s %9s %10s %10s %10s %10s\n", "verb", "n", "p50", "p99", "p999", "max")
		for _, line := range verbLines {
			b.WriteString(line)
			b.WriteString("\n")
		}
	}

	b.WriteString("\n")
	b.WriteString(c.Counters().String())
	return b.String()
}
