package cluster

import (
	"context"
	"strings"
	"time"

	"repro/internal/merkle"
	"repro/internal/sockets"
	"repro/internal/sockets/wire"
	"repro/internal/version"
)

// Anti-entropy is the background convergence path: hinted handoff and
// read repair fix the divergence the cluster *observes*, but a replica
// that silently missed writes — hints disabled, hints expired, or a
// partition nobody read across — stays wrong forever without an active
// sweep. Each node maintains a Merkle digest over its keyspace (4096
// buckets keyed by ring position, see internal/merkle); a sync pass
// walks every live node pair down the mismatched subtrees with TREE
// requests, lists only the divergent buckets' keys with SCAN, and
// repairs each differing key with a version-conditional SETV of the
// newer side's bytes. Matching subtrees are never descended into and
// values only move for keys that actually differ, so the traffic
// scales with the divergence, not the keyspace.

// readRepair is the quorum read's background write-back: the winning
// encoded value is pushed version-conditionally to the replicas the
// read observed stale. Racing writes are safe — a replica that moved
// on to a newer version just reports the repair stale and keeps what
// it has.
func (c *Cluster) readRepair(key, raw string, stale []*node) {
	for _, n := range stale {
		if n.down.Load() {
			continue
		}
		ctx, cancel := context.WithTimeout(c.ctx, c.cfg.PoolTimeout)
		code, err := n.client().SetVCtx(ctx, key, raw)
		cancel()
		if err == nil && sockets.SetVAppliedCode(code) {
			c.readRepairs.Add(1)
		}
	}
}

// antiEntropyLoop runs SyncNow at the configured interval until the
// cluster closes.
func (c *Cluster) antiEntropyLoop() {
	defer c.hbWG.Done()
	t := time.NewTicker(c.cfg.AntiEntropyInterval)
	defer t.Stop()
	for {
		select {
		case <-c.ctx.Done():
			return
		case <-t.C:
			c.SyncNow(c.ctx) //nolint:errcheck // periodic: a failed pass retries next tick
		}
	}
}

// SyncNow runs one synchronous anti-entropy pass over every unordered
// pair of live nodes and returns how many key copies it repaired
// (version-conditional writes that applied). A converged cluster
// returns 0, which is what benches and tests loop on to measure
// time-to-convergence deterministically instead of sleeping. The first
// transport error is returned after the remaining pairs have been
// tried — one unreachable node must not stop the others from
// converging.
func (c *Cluster) SyncNow(ctx context.Context) (int, error) {
	if c.closed.Load() {
		return 0, ErrClosed
	}
	c.topoMu.RLock()
	live := make([]*node, 0, len(c.order))
	for _, name := range c.order {
		if n := c.nodes[name]; n != nil && !n.down.Load() && !n.killed.Load() {
			live = append(live, n)
		}
	}
	c.topoMu.RUnlock()

	repaired := 0
	var firstErr error
	for i := 0; i < len(live); i++ {
		for j := i + 1; j < len(live); j++ {
			if err := ctx.Err(); err != nil {
				return repaired, err
			}
			n, err := c.syncPair(ctx, live[i], live[j])
			repaired += n
			if err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return repaired, firstErr
}

// syncPair converges one node pair: Merkle diff walk, then a batched
// scan-and-repair over the divergent bucket spans.
func (c *Cluster) syncPair(ctx context.Context, a, b *node) (int, error) {
	// pace throttles every request after a pass's first, so a large
	// repair cannot monopolize the nodes it is repairing. Diff calls
	// the fetchers sequentially from this goroutine, so the shared
	// counter needs no lock.
	reqs := 0
	pace := func() error {
		reqs++
		if reqs == 1 || c.cfg.AntiEntropyWait <= 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(c.cfg.AntiEntropyWait):
			return nil
		}
	}
	fetch := func(n *node) merkle.Fetcher {
		return func(ranges []merkle.Range) ([]uint64, error) {
			if err := pace(); err != nil {
				return nil, err
			}
			return n.client().TreeCtx(ctx, toSpans(ranges))
		}
	}
	leaves, err := merkle.Diff(fetch(a), fetch(b), c.cfg.AntiEntropyBatch)
	if err != nil {
		return 0, err
	}
	c.aeSyncs.Add(1)
	if len(leaves) == 0 {
		return 0, nil
	}
	c.aeRanges.Add(int64(len(leaves)))

	repaired := 0
	if c.streamEligible(leaves) {
		n, serr := c.streamSync(ctx, a, b, pace)
		repaired += n
		if serr == nil {
			// Re-diff after the stream: the bulk moved as raw frames, so
			// the span walk below covers only the remainder — keys the
			// stream's source never had, frames the dump skipped, and
			// writes that raced in. On a stream error the original leaves
			// stand and the Merkle path repairs everything the slow way.
			if fresh, derr := merkle.Diff(fetch(a), fetch(b), c.cfg.AntiEntropyBatch); derr == nil {
				leaves = fresh
			}
		}
		if len(leaves) == 0 {
			return repaired, nil
		}
	}

	// Batch the coalesced spans by total bucket width, not span count:
	// near-total divergence coalesces thousands of dirty leaves into a
	// handful of giant spans, and scanning one of those in a single
	// round trip returns every key it covers — past ~80k keys that is
	// a larger frame than the wire allows. Width-bounded batches keep
	// each SCAN's reply proportional to keyspace/Buckets × batch.
	for _, batch := range batchSpansByWidth(toSpans(merkle.Coalesce(leaves)), c.cfg.AntiEntropyBatch) {
		if err := pace(); err != nil {
			return repaired, err
		}
		n, err := c.repairSpans(ctx, a, b, batch)
		repaired += n
		if err != nil {
			return repaired, err
		}
	}
	return repaired, nil
}

// batchSpansByWidth splits spans into batches whose total bucket width
// is at most budget, cutting spans wider than the budget. Order is
// preserved, so the repair still walks the keyspace once, low to high.
func batchSpansByWidth(spans []wire.Span, budget int) [][]wire.Span {
	if budget < 1 {
		budget = 1
	}
	var batches [][]wire.Span
	var cur []wire.Span
	width := 0
	for _, s := range spans {
		lo := s.Lo
		for lo < s.Hi {
			hi := s.Hi
			if int(hi-lo) > budget-width {
				hi = lo + uint32(budget-width)
			}
			cur = append(cur, wire.Span{Lo: lo, Hi: hi})
			width += int(hi - lo)
			lo = hi
			if width == budget {
				batches = append(batches, cur)
				cur, width = nil, 0
			}
		}
	}
	if len(cur) > 0 {
		batches = append(batches, cur)
	}
	return batches
}

// repairSpans scans one batch of divergent bucket spans on both nodes
// and repairs every key that differs. The scans return (key, entry
// hash) pairs sorted by key, so a single merge-join classifies each
// key as missing on one side or present on both with different bytes;
// values are then fetched only for those keys and the newer version is
// pushed to the other side.
func (c *Cluster) repairSpans(ctx context.Context, a, b *node, spans []wire.Span) (int, error) {
	ea, err := a.client().ScanCtx(ctx, spans)
	if err != nil {
		return 0, err
	}
	eb, err := b.client().ScanCtx(ctx, spans)
	if err != nil {
		return 0, err
	}

	var toB, toA, conflict []string
	i, j := 0, 0
	for i < len(ea) || j < len(eb) {
		switch {
		case j >= len(eb) || (i < len(ea) && ea[i].Key < eb[j].Key):
			toB = append(toB, ea[i].Key)
			i++
		case i >= len(ea) || eb[j].Key < ea[i].Key:
			toA = append(toA, eb[j].Key)
			j++
		default:
			if ea[i].Hash != eb[j].Hash {
				conflict = append(conflict, ea[i].Key)
			}
			i++
			j++
		}
	}
	if len(toB)+len(toA)+len(conflict) == 0 {
		return 0, nil
	}

	valsA, err := c.fetchRaw(ctx, a, append(append([]string(nil), toB...), conflict...))
	if err != nil {
		return 0, err
	}
	valsB, err := c.fetchRaw(ctx, b, append(append([]string(nil), toA...), conflict...))
	if err != nil {
		return 0, err
	}

	repaired := 0
	for _, k := range toB {
		if raw, ok := valsA[k]; ok && c.pushRepair(ctx, b, k, raw) {
			repaired++
		}
	}
	for _, k := range toA {
		if raw, ok := valsB[k]; ok && c.pushRepair(ctx, a, k, raw) {
			repaired++
		}
	}
	for _, k := range conflict {
		ra, okA := valsA[k]
		rb, okB := valsB[k]
		switch {
		case okA && okB:
			va, _, _, errA := version.Decode(ra)
			vb, _, _, errB := version.Decode(rb)
			switch {
			case errA != nil && errB != nil:
				// Neither side decodes: nothing trustworthy to copy.
			case errA != nil:
				if c.pushRepair(ctx, a, k, rb) {
					repaired++
				}
			case errB != nil:
				if c.pushRepair(ctx, b, k, ra) {
					repaired++
				}
			case version.Newer(va, vb):
				if c.pushRepair(ctx, b, k, ra) {
					repaired++
				}
			case version.Newer(vb, va):
				if c.pushRepair(ctx, a, k, rb) {
					repaired++
				}
			}
		case okA:
			if c.pushRepair(ctx, b, k, ra) {
				repaired++
			}
		case okB:
			if c.pushRepair(ctx, a, k, rb) {
				repaired++
			}
		}
	}
	return repaired, nil
}

// fetchRawChunk bounds one bulk read: both the request (keys) and the
// reply (values) must fit a wire frame whatever the span batching let
// through, so a scan that surfaced many keys reads them in slices.
const fetchRawChunk = 128

// fetchRaw bulk-reads the given keys' stored bytes from one node. Keys
// deleted between the scan and the fetch are simply absent from the
// result — the next pass re-evaluates them.
func (c *Cluster) fetchRaw(ctx context.Context, n *node, keys []string) (map[string]string, error) {
	out := make(map[string]string, len(keys))
	for len(keys) > 0 {
		chunk := keys
		if len(chunk) > fetchRawChunk {
			chunk = keys[:fetchRawChunk]
		}
		keys = keys[len(chunk):]
		vals, found, err := n.client().MGetCtx(ctx, chunk...)
		if err != nil {
			return nil, err
		}
		for i, k := range chunk {
			if found[i] {
				out[k] = vals[i]
			}
		}
	}
	return out, nil
}

// pushRepair version-conditionally writes one key's bytes to dst,
// counting it only if dst is actually a replica of the key under the
// current placement (a node can legitimately hold keys it no longer
// replicates — vacated copies awaiting cleanup — and those must not be
// spread further) and the write applied.
func (c *Cluster) pushRepair(ctx context.Context, dst *node, key, raw string) bool {
	if strings.HasPrefix(key, hintMark) || !c.replicaFor(key, dst.name) {
		return false
	}
	code, err := dst.client().SetVCtx(ctx, key, raw)
	if err != nil || !sockets.SetVAppliedCode(code) {
		return false
	}
	c.aeKeysRepaired.Add(1)
	c.aeBytesMoved.Add(int64(len(key) + len(raw)))
	return true
}

// replicaFor reports whether the named node is one of key's replicas
// under the placement every other path uses — the pre-change ring
// while a migration window is open.
func (c *Cluster) replicaFor(key, name string) bool {
	c.topoMu.RLock()
	defer c.topoMu.RUnlock()
	ring := c.ring
	if c.prevRing != nil {
		ring = c.prevRing
	}
	for _, n := range ring.NodesFor(key, c.cfg.Replicas) {
		if n == name {
			return true
		}
	}
	return false
}

// toSpans converts merkle bucket ranges into wire spans.
func toSpans(ranges []merkle.Range) []wire.Span {
	spans := make([]wire.Span, len(ranges))
	for i, r := range ranges {
		spans[i] = wire.Span{Lo: uint32(r.Lo), Hi: uint32(r.Hi)}
	}
	return spans
}

// ReadRepairs reports how many stale replica copies quorum reads have
// rewritten.
func (c *Cluster) ReadRepairs() int64 { return c.readRepairs.Load() }

// AntiEntropyRepaired reports how many key copies anti-entropy passes
// have pushed to a diverged replica.
func (c *Cluster) AntiEntropyRepaired() int64 { return c.aeKeysRepaired.Load() }

// AntiEntropyBytes reports the approximate repair payload volume —
// key plus encoded value bytes for every applied repair.
func (c *Cluster) AntiEntropyBytes() int64 { return c.aeBytesMoved.Load() }
