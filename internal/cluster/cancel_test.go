package cluster

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/testutil"
)

// slowConfig returns a test config whose named nodes stall `verb`
// requests (SET/GET) for `delay` before answering. PING is never
// delayed, so the failure detector keeps seeing the node as up — the
// stall models a slow replica, not a dead one.
func slowConfig(nodes int, slow map[string]bool, verb string, delay time.Duration) Config {
	cfg := testConfig(nodes)
	cfg.ServerPreHandle = func(name string) func(req string) {
		if !slow[name] {
			return nil
		}
		return func(req string) {
			if strings.HasPrefix(req, verb) {
				time.Sleep(delay)
			}
		}
	}
	return cfg
}

// TestGetCancelMidQuorumPromptNoLeak is the read-side acceptance test:
// with every replica stalled, a canceled quorum Get must return a
// wrapped context.Canceled well within one PoolTimeout of the cancel,
// and tearing the cluster down afterwards must leak no goroutines —
// the laggard replica reads were woken and joined, not abandoned.
func TestGetCancelMidQuorumPromptNoLeak(t *testing.T) {
	base := testutil.SettleGoroutines()

	const stall = 2 * time.Second
	cfg := slowConfig(3, map[string]bool{"node0": true, "node1": true, "node2": true}, "GET", stall)
	cfg.Replicas = 3
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put("k", "v"); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { _, _, err := c.GetCtx(ctx, "k"); errc <- err }()
	time.Sleep(50 * time.Millisecond) // let the fan-out block in the stalled replicas
	cancelAt := time.Now()
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("GetCtx = %v, want wrapped context.Canceled", err)
		}
		if elapsed := time.Since(cancelAt); elapsed > cfg.PoolTimeout {
			t.Errorf("canceled Get returned after %v, want under one PoolTimeout (%v)", elapsed, cfg.PoolTimeout)
		}
	case <-time.After(stall):
		t.Fatal("canceled Get still blocked after the full replica stall: cancellation did not propagate")
	}
	if got, _ := c.Counters().Get("cluster.ops-canceled"); got != 1 {
		t.Errorf("cluster.ops-canceled = %v, want 1", got)
	}

	c.Close()
	if after := testutil.SettleGoroutines(); after > base {
		t.Errorf("goroutines grew %d -> %d after canceled Get and Close", base, after)
	}
}

// TestPutQuorumAbortsSlowReplica is the write-side acceptance test: a
// quorum write against 3 replicas with one slow node must complete in
// about the time the quorum majority takes — the laggard's request is
// canceled the moment the quorum is reached, not awaited.
func TestPutQuorumAbortsSlowReplica(t *testing.T) {
	const stall = 2 * time.Second
	cfg := slowConfig(3, map[string]bool{"node2": true}, "SET", stall)
	cfg.Replicas = 3 // W = 2: the two fast replicas form the quorum
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	start := time.Now()
	if err := c.Put("hot", "v"); err != nil {
		t.Fatalf("Put with one slow replica = %v", err)
	}
	elapsed := time.Since(start)
	if elapsed > cfg.PoolTimeout {
		t.Errorf("quorum Put took %v, want ~quorum time (well under the %v stall and the %v pool timeout)",
			elapsed, stall, cfg.PoolTimeout)
	}
	// The quorum majority really did commit: the value reads back.
	if v, ok, err := c.Get("hot"); err != nil || !ok || v != "v" {
		t.Errorf("read-back after early-return Put = (%q, %v, %v)", v, ok, err)
	}
}

// TestPutCtxAbortedBeforeFanOut: an already-canceled context must be
// rejected before any replica traffic.
func TestPutCtxAbortedBeforeFanOut(t *testing.T) {
	c := startCluster(t, testConfig(3))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := c.PutCtx(ctx, "k", "v"); !errors.Is(err, context.Canceled) {
		t.Errorf("PutCtx on canceled ctx = %v, want wrapped context.Canceled", err)
	}
	if _, _, err := c.GetCtx(ctx, "k"); !errors.Is(err, context.Canceled) {
		t.Errorf("GetCtx on canceled ctx = %v, want wrapped context.Canceled", err)
	}
}
