package cluster

import (
	"context"
	"fmt"
	"strings"
	"sync"
)

// move is one key whose replica set changed on a topology change.
type move struct {
	key      string
	old, new []string
}

// Join adds a fresh node to the ring and migrates the keys whose
// replica sets now include it — the ~K/n arc move, fanned out on the
// sched pool. The name must be unique, non-empty, and free of
// whitespace and '~' (it appears inside hint keys).
func (c *Cluster) Join(name string) error {
	if c.closed.Load() {
		return ErrClosed
	}
	if name == "" || strings.ContainsAny(name, " \t\n\r~") {
		return fmt.Errorf("cluster: bad node name %q", name)
	}
	fresh, err := c.startNode(name)
	if err != nil {
		return err
	}
	c.topoMu.Lock()
	if _, exists := c.nodes[name]; exists {
		c.topoMu.Unlock()
		fresh.client().Close()
		fresh.server().Close()
		return fmt.Errorf("cluster: node %q already present", name)
	}
	before := c.replicaSetsLocked()
	c.ring.AddNode(name) //nolint:errcheck // uniqueness checked above
	c.nodes[name] = fresh
	c.order = append(c.order, name)
	moves := c.movesSinceLocked(before)
	byName := c.nodeSnapshotLocked()
	c.topoMu.Unlock()
	return c.migrate(c.ctx, moves, byName)
}

// Leave removes a node gracefully: the ring shrinks first, the keys it
// owned migrate to their new replicas (the leaving node itself is still
// serving as a copy source), then its server shuts down.
func (c *Cluster) Leave(name string) error {
	if c.closed.Load() {
		return ErrClosed
	}
	c.topoMu.Lock()
	leaving, ok := c.nodes[name]
	if !ok {
		c.topoMu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownNode, name)
	}
	if len(c.order)-1 < c.cfg.Replicas {
		c.topoMu.Unlock()
		return fmt.Errorf("cluster: cannot drop below %d nodes (%d replicas per key)", c.cfg.Replicas, c.cfg.Replicas)
	}
	before := c.replicaSetsLocked()
	byName := c.nodeSnapshotLocked() // includes the leaving node as a source
	if err := c.ring.RemoveNode(name); err != nil {
		c.topoMu.Unlock()
		return err
	}
	delete(c.nodes, name)
	for i, n := range c.order {
		if n == name {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
	moves := c.movesSinceLocked(before)
	c.topoMu.Unlock()
	err := c.migrate(c.ctx, moves, byName)
	leaving.client().Close()
	leaving.server().Close()
	return err
}

// replicaSetsLocked snapshots every tracked key's replica set.
func (c *Cluster) replicaSetsLocked() map[string][]string {
	out := make(map[string][]string, len(c.keys))
	for key := range c.keys {
		out[key] = c.ring.NodesFor(key, c.cfg.Replicas)
	}
	return out
}

// movesSinceLocked diffs the current placement against a snapshot.
func (c *Cluster) movesSinceLocked(before map[string][]string) []move {
	var out []move
	for key, old := range before {
		now := c.ring.NodesFor(key, c.cfg.Replicas)
		if !sameNodes(old, now) {
			out = append(out, move{key: key, old: old, new: now})
		}
	}
	return out
}

// nodeSnapshotLocked captures the name -> node table for use off-lock.
func (c *Cluster) nodeSnapshotLocked() map[string]*node {
	out := make(map[string]*node, len(c.nodes))
	for name, n := range c.nodes {
		out[name] = n
	}
	return out
}

func sameNodes(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// subtract returns the names in a but not in b.
func subtract(a, b []string) []string {
	var out []string
	for _, x := range a {
		found := false
		for _, y := range b {
			if x == y {
				found = true
				break
			}
		}
		if !found {
			out = append(out, x)
		}
	}
	return out
}

// migrate copies each moved key from a live old replica to its new
// homes, one sched task per key so big migrations use every worker,
// then bulk-deletes the vacated copies per node in one MDEL each. The
// fan-out rides ParallelForCtx on the cluster context: Close stops
// seeding per-key tasks and aborts the in-flight copies, so a shutdown
// never waits out a large migration.
func (c *Cluster) migrate(ctx context.Context, moves []move, byName map[string]*node) error {
	if len(moves) == 0 {
		return nil
	}
	var delMu sync.Mutex
	dels := make(map[string][]string) // node -> keys to clear

	err := c.sched.ParallelForCtx(ctx, len(moves), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if ctx.Err() != nil {
				return
			}
			m := moves[i]
			var raw string
			var ok bool
			for _, src := range m.old {
				n := byName[src]
				if n == nil || n.down.Load() {
					continue
				}
				if v, found, err := n.client().GetCtx(ctx, m.key); err == nil {
					raw, ok = v, found
					break
				}
			}
			if !ok {
				continue // never written, or no live source: nothing to move
			}
			for _, dst := range subtract(m.new, m.old) {
				n := byName[dst]
				if n == nil || n.down.Load() {
					continue
				}
				if n.client().SetCtx(ctx, m.key, raw) == nil {
					c.keysMigrated.Add(1)
				}
			}
			if gone := subtract(m.old, m.new); len(gone) > 0 {
				delMu.Lock()
				for _, g := range gone {
					dels[g] = append(dels[g], m.key)
				}
				delMu.Unlock()
			}
		}
	})
	for name, keys := range dels {
		if n := byName[name]; n != nil && !n.down.Load() {
			n.client().MDelCtx(ctx, keys...) //nolint:errcheck // vacated copies; best effort
		}
	}
	return err
}
