package cluster

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/db"
	"repro/internal/sockets"
	"repro/internal/version"
)

// Topology changes run in three phases so quorum intersection never
// breaks across the change:
//
//  1. Window open (under topoMu): the pre-change ring is snapshotted
//     into prevRing and placement keeps quorums on it; concurrent
//     writes double-write to the new ring's replicas and mark their
//     keys dirty.
//  2. Copy (concurrent with traffic): every moved key's newest version
//     — the winning version vector across all live old replicas, so a
//     quorum-aborted laggard can never be mistaken for the truth — is
//     copied to its new homes.
//  3. Cutover (under topoMu, in-flight ops drained): keys written
//     during the copy are re-copied, then the window drops and
//     placement flips to the new ring atomically. Only now are vacated
//     copies deleted and (for Leave) the departing node shut down.
//
// The write pause in phase 3 lasts only as long as the dirty re-copy —
// the price of reads staying quorum-consistent through the change.

// move is one key whose replica set changed on a topology change.
type move struct {
	key      string
	old, new []string
}

// Join adds a fresh node to the ring and migrates the keys whose
// replica sets now include it — the ~K/n arc move, fanned out on the
// sched pool. The name must be unique, non-empty, and free of
// whitespace, '~' (it appears inside hint keys), and the version
// stamp's delimiters ':', ',' and '@' (it appears inside version
// vectors — see internal/version).
func (c *Cluster) Join(name string) error {
	if c.closed.Load() {
		return ErrClosed
	}
	if name == "" || strings.ContainsAny(name, " \t\n\r~:,@") {
		return fmt.Errorf("cluster: bad node name %q", name)
	}
	c.topoChange.Lock()
	defer c.topoChange.Unlock()
	fresh, err := c.startNode(name)
	if err != nil {
		return err
	}
	c.topoMu.Lock()
	if _, exists := c.nodes[name]; exists {
		c.topoMu.Unlock()
		fresh.client().Close()
		fresh.server().Close()
		return fmt.Errorf("cluster: node %q already present", name)
	}
	prev, err := c.snapshotRingLocked()
	if err != nil {
		c.topoMu.Unlock()
		fresh.client().Close()
		fresh.server().Close()
		return err
	}
	prevOrder := append([]string(nil), c.order...)
	before := c.replicaSetsLocked()
	c.ring.AddNode(name) //nolint:errcheck // uniqueness checked above
	c.nodes[name] = fresh
	c.order = append(c.order, name)
	c.prevRing, c.prevOrder, c.dirty = prev, prevOrder, make(map[string]struct{})
	moves := c.movesSinceLocked(before)
	byName := c.nodeSnapshotLocked()
	c.topoMu.Unlock()

	err = c.migrate(c.ctx, moves, byName)
	c.cutover(moves, byName, "")
	c.cleanupVacated(moves, byName)
	c.emit(EventJoin, name, fmt.Sprintf("%d keys moved", len(moves)))
	return err
}

// Leave removes a node gracefully: the ring shrinks, the keys it owned
// migrate to their new replicas, and through the whole window the
// leaving node keeps serving — it is still a quorum member of the old
// placement and a copy source — until the cutover drops it.
func (c *Cluster) Leave(name string) error {
	if c.closed.Load() {
		return ErrClosed
	}
	c.topoChange.Lock()
	defer c.topoChange.Unlock()
	c.topoMu.Lock()
	leaving, ok := c.nodes[name]
	if !ok {
		c.topoMu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownNode, name)
	}
	if len(c.order)-1 < c.cfg.Replicas {
		c.topoMu.Unlock()
		return fmt.Errorf("cluster: cannot drop below %d nodes (%d replicas per key)", c.cfg.Replicas, c.cfg.Replicas)
	}
	prev, err := c.snapshotRingLocked()
	if err != nil {
		c.topoMu.Unlock()
		return err
	}
	prevOrder := append([]string(nil), c.order...)
	before := c.replicaSetsLocked()
	if err := c.ring.RemoveNode(name); err != nil {
		c.topoMu.Unlock()
		return err
	}
	// c.nodes keeps the leaving member through the window (the old
	// placement still routes to it); only order — the new topology —
	// drops it now.
	for i, n := range c.order {
		if n == name {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
	c.prevRing, c.prevOrder, c.dirty = prev, prevOrder, make(map[string]struct{})
	moves := c.movesSinceLocked(before)
	byName := c.nodeSnapshotLocked() // includes the leaving node as a source
	c.topoMu.Unlock()

	err = c.migrate(c.ctx, moves, byName)
	c.cutover(moves, byName, name)
	c.cleanupVacated(moves, byName)
	leaving.client().Close()
	leaving.server().Close()
	c.emit(EventLeave, name, fmt.Sprintf("%d keys moved", len(moves)))
	return err
}

// snapshotRingLocked clones the current topology into a fresh ring for
// use as the migration window's placement authority.
func (c *Cluster) snapshotRingLocked() (*db.DHT, error) {
	prev, err := db.NewDHT(c.cfg.VNodes)
	if err != nil {
		return nil, err
	}
	for _, name := range c.order {
		if err := prev.AddNode(name); err != nil {
			return nil, err
		}
	}
	return prev, nil
}

// cutover closes the migration window. Under the exclusive topology
// lock new operations block; the in-flight ones are drained, the keys
// written during the copy phase are re-copied from their old replicas
// (newest version across all live sources), and placement flips to the
// new ring. dropNode, when non-empty, is the leaving member to remove
// from the node table inside the same critical section.
func (c *Cluster) cutover(moves []move, byName map[string]*node, dropNode string) {
	moved := make(map[string]move, len(moves))
	for _, m := range moves {
		moved[m.key] = m
	}
	c.topoMu.Lock()
	defer c.topoMu.Unlock()
	c.inflight.Wait()
	wants := make(map[string][]string)
	for key := range c.dirty {
		if m, ok := moved[key]; ok {
			wants[key] = m.old
		}
		// Keys not in moved: placement unchanged, the normal write path
		// covered them.
	}
	for key, raw := range c.newestCopies(c.ctx, wants, byName) {
		for _, dst := range subtract(moved[key].new, moved[key].old) {
			if n := byName[dst]; n != nil && !n.down.Load() {
				// Version-conditional: the bulk copy phase may have raced a
				// double-write onto this destination, and the re-copy must
				// never regress it to something older.
				n.client().SetVCtx(c.ctx, key, raw) //nolint:errcheck // repaired again by anti-entropy at worst
			}
		}
	}
	c.prevRing, c.prevOrder, c.dirty = nil, nil, nil
	if dropNode != "" {
		delete(c.nodes, dropNode)
	}
}

// newestCopies bulk-reads a set of keys (each with its own source
// replica list) and resolves every key's winning raw value locally —
// causal dominance first, deterministic tiebreak for concurrent
// histories. Consulting every live source guards against trusting a
// copy a quorum-abort cancellation left behind; doing it with one MGET
// per source instead of one GET per (key, source) is what keeps a
// migration's read amplification at O(sources) round trips per chunk
// rather than O(keys × sources). Keys with no live source or no
// decodable copy are simply absent from the result.
func (c *Cluster) newestCopies(ctx context.Context, wants map[string][]string, byName map[string]*node) map[string]string {
	keysBySrc := make(map[string][]string)
	for key, srcs := range wants {
		for _, src := range srcs {
			if n := byName[src]; n != nil && !n.down.Load() {
				keysBySrc[src] = append(keysBySrc[src], key)
			}
		}
	}
	type candidate struct {
		ver version.Version
		raw string
	}
	best := make(map[string]candidate, len(wants))
	for src, keys := range keysBySrc {
		if ctx.Err() != nil {
			break
		}
		vals, found, err := byName[src].client().MGetCtx(ctx, keys...)
		if err != nil {
			continue // a dead source just contributes nothing
		}
		for i, key := range keys {
			if !found[i] {
				continue
			}
			ver, _, _, err := version.Decode(vals[i])
			if err != nil {
				continue
			}
			if b, ok := best[key]; !ok || version.Newer(ver, b.ver) {
				best[key] = candidate{ver: ver, raw: vals[i]}
			}
		}
	}
	out := make(map[string]string, len(best))
	for key, b := range best {
		out[key] = b.raw
	}
	return out
}

// replicaSetsLocked snapshots every tracked key's replica set.
func (c *Cluster) replicaSetsLocked() map[string][]string {
	out := make(map[string][]string, len(c.keys))
	for key := range c.keys {
		out[key] = c.ring.NodesFor(key, c.cfg.Replicas)
	}
	return out
}

// movesSinceLocked diffs the current placement against a snapshot.
func (c *Cluster) movesSinceLocked(before map[string][]string) []move {
	var out []move
	for key, old := range before {
		now := c.ring.NodesFor(key, c.cfg.Replicas)
		if !sameNodes(old, now) {
			out = append(out, move{key: key, old: old, new: now})
		}
	}
	return out
}

// nodeSnapshotLocked captures the name -> node table for use off-lock.
func (c *Cluster) nodeSnapshotLocked() map[string]*node {
	out := make(map[string]*node, len(c.nodes))
	for name, n := range c.nodes {
		out[name] = n
	}
	return out
}

func sameNodes(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// subtract returns the names in a but not in b.
func subtract(a, b []string) []string {
	var out []string
	for _, x := range a {
		found := false
		for _, y := range b {
			if x == y {
				found = true
				break
			}
		}
		if !found {
			out = append(out, x)
		}
	}
	return out
}

// migrateChunk is how many moved keys one sched task gathers before
// flushing: large enough that a destination receives a meaty MPUT
// batch, small enough that big migrations still spread across workers.
const migrateChunk = 32

// migrate copies each moved key to its new homes, in chunks fanned out
// on the sched pool. Each copy carries the newest version across all
// live old replicas. Within a chunk the copies are gathered per
// destination and shipped as one MPUT batch — on the binary protocol a
// single pipelined PDU per destination instead of a SET round-trip per
// key; on text the pool degrades it to sequential SETs, so behavior is
// unchanged. The fan-out rides ParallelForCtx on the cluster context:
// Close stops seeding chunks and aborts the in-flight copies, so a
// shutdown never waits out a large migration. Vacated copies are NOT
// deleted here — reads still quorum on the old placement until the
// cutover.
func (c *Cluster) migrate(ctx context.Context, moves []move, byName map[string]*node) error {
	if len(moves) == 0 {
		return nil
	}
	return c.sched.ParallelForCtx(ctx, len(moves), migrateChunk, func(lo, hi int) {
		// One bulk read per live source covers the whole chunk; the
		// winning version per key is resolved locally from the answers.
		wants := make(map[string][]string, hi-lo)
		for i := lo; i < hi; i++ {
			wants[moves[i].key] = moves[i].old
		}
		raws := c.newestCopies(ctx, wants, byName)
		batches := make(map[string][]sockets.KV)
		for i := lo; i < hi; i++ {
			if ctx.Err() != nil {
				return
			}
			m := moves[i]
			raw, ok := raws[m.key]
			if !ok {
				continue // never written, or no live source: nothing to move
			}
			for _, dst := range subtract(m.new, m.old) {
				if n := byName[dst]; n != nil && !n.down.Load() {
					batches[dst] = append(batches[dst], sockets.KV{Key: m.key, Value: raw})
				}
			}
		}
		for dst, pairs := range batches {
			if ctx.Err() != nil {
				return
			}
			if byName[dst].client().MPutCtx(ctx, pairs) == nil {
				c.keysMigrated.Add(int64(len(pairs)))
			}
		}
	})
}

// cleanupVacated bulk-deletes the copies the cutover left behind on
// nodes that no longer replicate a key, one MDEL per node.
func (c *Cluster) cleanupVacated(moves []move, byName map[string]*node) {
	dels := make(map[string][]string)
	for _, m := range moves {
		for _, g := range subtract(m.old, m.new) {
			dels[g] = append(dels[g], m.key)
		}
	}
	for name, keys := range dels {
		if n := byName[name]; n != nil && !n.down.Load() {
			n.client().MDelCtx(c.ctx, keys...) //nolint:errcheck // vacated copies; best effort
		}
	}
}
