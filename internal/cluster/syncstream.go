package cluster

import (
	"context"
	"strings"

	"repro/internal/merkle"
	"repro/internal/sockets"
	"repro/internal/version"
	"repro/internal/wal"
)

// WAL-streaming re-replication: when a pair sync's Merkle diff reports
// near-total divergence — a node restarted empty after disk loss, or a
// fresh replica — walking the tree and repairing key by key does one
// SCAN merge-join plus one SETV-sized payload per differing key, with
// the coordinator decoding versions in between. Streaming skips all of
// that: the fuller node's whole durable history (snapshot + segments,
// already CRC-framed on disk) ships as a few big SYNCWAL chunks, the
// coordinator filters each chunk down to the frames the receiver should
// own, and the receiver folds them in through the same version-
// conditional SETV apply path every repair uses. Version stamps,
// tombstones, and dedupe recordings all ride along because they are
// simply bytes in the log. The follow-up Merkle pass then covers
// whatever the stream could not: keys only the thinner node had,
// oversized frames the dump skipped, and writes that raced the stream.

// streamEligible reports whether a pair sync should re-replicate by
// streaming the WAL instead of span-repairing key by key: the
// divergence ratio is at or past the configured threshold, and the
// transport can carry it (durable nodes for the dump, binary pools for
// the SYNCWAL verb).
func (c *Cluster) streamEligible(leaves []merkle.Range) bool {
	thr := c.cfg.SyncStreamThreshold
	if thr < 0 || !c.cfg.Durable || c.cfg.Proto != sockets.ProtoBinary {
		return false
	}
	return float64(len(leaves)) >= thr*float64(merkle.Buckets)
}

// streamSync re-replicates one diverged pair by WAL streaming: the
// node holding more keys is the source (divergence this deep almost
// always means the other side lost state), its log is pulled chunk by
// chunk, filtered, and pushed to the destination. Returns how many
// frames the destination actually applied — version-conditional, so
// frames the destination already has (or has newer versions of) count
// zero and convergence loops still terminate. pace is the caller's
// per-request throttle, shared so a stream honors AntiEntropyWait like
// any other repair traffic.
func (c *Cluster) streamSync(ctx context.Context, a, b *node, pace func() error) (int, error) {
	if err := pace(); err != nil {
		return 0, err
	}
	na, err := a.client().CountCtx(ctx)
	if err != nil {
		return 0, err
	}
	if err := pace(); err != nil {
		return 0, err
	}
	nb, err := b.client().CountCtx(ctx)
	if err != nil {
		return 0, err
	}
	src, dst := a, b
	if nb > na {
		src, dst = b, a
	}

	applied := 0
	restarted := false
	var cur uint64
	for {
		if err := pace(); err != nil {
			return applied, err
		}
		chunk, next, done, err := src.client().SyncWALDumpCtx(ctx, cur)
		if err != nil {
			// A snapshot on the source pruned a segment mid-dump: the
			// cursor is stale and the only consistent move is to restart
			// from zero. Re-applied frames are harmless (version-
			// conditional); a second staleness means the source is
			// snapshotting faster than we can stream, so fall back to the
			// Merkle path rather than loop.
			if strings.Contains(err.Error(), "stale dump cursor") && !restarted {
				restarted, cur = true, 0
				continue
			}
			return applied, err
		}
		filtered, err := c.filterStream(chunk, dst.name)
		if err != nil {
			return applied, err
		}
		if len(filtered) > 0 {
			if err := pace(); err != nil {
				return applied, err
			}
			n, err := dst.client().SyncWALApplyCtx(ctx, filtered)
			if err != nil {
				return applied, err
			}
			applied += n
			c.aeStreamBytes.Add(int64(len(filtered)))
		}
		if done {
			break
		}
		cur = next
	}
	c.aeStreams.Add(1)
	c.aeKeysRepaired.Add(int64(applied))
	return applied, nil
}

// filterStream decodes one dump chunk and re-frames only what the
// destination should ingest: dedupe recordings (per-client retry
// identities, replica-agnostic), and Set payloads — MPut pairs
// flattened to single Sets — for keys the destination actually
// replicates, skipping parked hints (per-holder scratch state) and
// anything without a version stamp (the receiver applies via SETV,
// which needs one; unstamped bytes can't be resolved against what the
// receiver may already hold). Raw Del/MDel records are dropped too:
// cluster deletes are versioned tombstone Sets, so a bare delete frame
// could only have come from outside the cluster's write path, and
// blindly erasing the receiver's copy could destroy a newer version.
func (c *Cluster) filterStream(chunk []byte, dstName string) ([]byte, error) {
	if len(chunk) == 0 {
		return nil, nil
	}
	items, err := wal.DecodeStream(chunk)
	if err != nil {
		return nil, err
	}
	keep := func(key, value string) bool {
		if strings.HasPrefix(key, hintMark) || !c.replicaFor(key, dstName) {
			return false
		}
		_, _, _, err := version.Decode(value)
		return err == nil
	}
	var out []byte
	for _, it := range items {
		switch {
		case it.Dedupe != nil:
			out = wal.AppendStreamDedupe(out, *it.Dedupe)
		case it.Rec.Kind == wal.KindSet:
			if keep(it.Rec.Key, it.Rec.Value) {
				out = wal.AppendStreamRecord(out, it.Rec)
			}
		case it.Rec.Kind == wal.KindMPut:
			for _, kv := range it.Rec.Pairs {
				if keep(kv.Key, kv.Value) {
					out = wal.AppendStreamRecord(out, &wal.Record{Kind: wal.KindSet, Key: kv.Key, Value: kv.Value})
				}
			}
		}
	}
	return out, nil
}

// AntiEntropyStreams reports how many WAL-streaming re-replications
// anti-entropy passes have completed.
func (c *Cluster) AntiEntropyStreams() int64 { return c.aeStreams.Load() }

// AntiEntropyStreamBytes reports the filtered frame bytes those
// streams shipped.
func (c *Cluster) AntiEntropyStreamBytes() int64 { return c.aeStreamBytes.Load() }
