// Package cluster is the distributed-storage capstone made real: a
// replicated key-value cluster of N live sockets.Server nodes on real
// TCP ports, routed by a smart client. It composes the layers the
// courses build one by one — the consistent-hash ring with virtual
// nodes (db.DHT.NodesFor) picks R replicas per key, writes and reads go
// through per-node sockets.Pool clients under W/R quorums (W+R > N so
// read and write sets intersect), heartbeat probes mark silent nodes
// down and route around them, writes that miss a dead replica leave
// hinted handoffs on the next live node and replay them on recovery,
// and node join/leave migrates only the ~K/n keys whose arcs moved,
// fanned out in parallel on a sched.Pool.
//
// Values carry a per-key version vector (internal/version) stamped by
// the write's coordinator, so quorum reads resolve divergent replicas
// causally — a replica that merely missed writes is Dominated, and only
// genuinely concurrent histories fall back to the deterministic
// wall-clock tiebreak. Reads that observe stale replicas repair them in
// the background (read repair), and a Merkle-tree anti-entropy loop
// (antientropy.go) lets replicas that diverged silently — with hints
// disabled or expired — find and exchange exactly the keys that differ.
// The db.DHT doubles as the ring metadata, so its Moves() counter
// certifies the minimal-movement property on every topology change.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/db"
	"repro/internal/sched"
	"repro/internal/sockets"
	"repro/internal/version"
)

// Config parameterizes a Cluster. The zero value gets the defaults
// noted per field.
type Config struct {
	// Nodes is the initial node count (default 3).
	Nodes int
	// Replicas is how many distinct nodes hold each key (default
	// min(3, Nodes)).
	Replicas int
	// WriteQuorum (W) and ReadQuorum (R) are how many replica acks a
	// write/read needs. Defaults are majorities (Replicas/2 + 1); New
	// rejects configurations without W+R > Replicas, the overlap that
	// makes a quorum read see the newest quorum write.
	WriteQuorum int
	ReadQuorum  int
	// VNodes is the virtual-node count per node on the ring (default 64).
	VNodes int
	// HeartbeatInterval is the probe period of the failure detector;
	// HeartbeatTimeout is the per-probe deadline after which a node is
	// declared down (defaults 50ms and 250ms).
	HeartbeatInterval time.Duration
	HeartbeatTimeout  time.Duration
	// Workers sizes the sched.Pool that fans out key migration on
	// join/leave (default: runtime.NumCPU()).
	Workers int
	// PoolSize, PoolTimeout, and PoolAttempts parameterize each node's
	// sockets.Pool client (defaults 2 connections, 500ms, 2 attempts).
	PoolSize     int
	PoolTimeout  time.Duration
	PoolAttempts int
	// Proto selects the inter-node client protocol: sockets.ProtoText
	// (the zero value, line-oriented) or sockets.ProtoBinary (pipelined
	// PDUs with batched MGET/MPUT for migration and hint replay).
	// Servers always speak both; this only switches what the pools dial.
	Proto sockets.Proto
	// ServerShards is each node's store-stripe count (default 8).
	ServerShards int
	// DrainTimeout bounds how long a killed or closed node's server
	// waits for in-flight requests before hard-closing them (default 1s;
	// chaos tests shrink it so Kill is near-instant).
	DrainTimeout time.Duration

	// HotKeyCache enables the client-side hot-key read cache: a small
	// sharded LRU holding only keys whose observed read rate crosses
	// CacheHotThreshold, each entry leased for CacheLease. A cache hit
	// answers a Get without any replica round trip; the price is a
	// bounded staleness window — a cached read can lag a concurrent
	// write by strictly less than the lease (see cache.go and DESIGN.md
	// §7 for why the lease bounds it). Off by default: correctness
	// first, the flag is the experiment.
	HotKeyCache bool
	// CacheLease is the per-entry lease and therefore the staleness
	// bound (default 50ms).
	CacheLease time.Duration
	// CacheSize is the cache's total entry budget across its shards
	// (default 4096).
	CacheSize int
	// CacheHotThreshold is how many quorum reads within one CacheWindow
	// admit a key to the cache (default 4). 1 caches on first read.
	CacheHotThreshold int
	// CacheWindow is the admission-rate window (default 1s).
	CacheWindow time.Duration

	// MaxPending is each node server's admission bound: past this many
	// admitted-but-unanswered requests the node sheds new arrivals with
	// an overload response instead of queueing (sockets.ErrOverload on
	// the client after exhausted retries). 0 = no shedding (default).
	MaxPending int

	// Durable gives every node a write-ahead log (internal/wal): each
	// node fsyncs mutations — batched by the group committer — before
	// acking, Kill takes kill -9 semantics (Server.Crash: acked writes
	// survive on disk, unacked ones may vanish), and Restart recovers
	// the node's pre-crash state from its own log instead of coming
	// back empty. Off by default: the memory-only cluster is the
	// availability baseline the durability overhead is measured against.
	Durable bool
	// WALRoot is where durable nodes keep their logs, one subdirectory
	// per node name, reused across Restart. Empty with Durable set uses
	// a temporary directory that Close removes.
	WALRoot string
	// WALSnapshotEvery passes through to each node's
	// sockets.ServerConfig (default 10000 mutations per snapshot).
	WALSnapshotEvery int
	// WALSegmentBytes passes through to each durable node's log segment
	// cap (default 4 MiB). Recovery and chaos tests shrink it so sealed
	// segments — the units scrubbing checks and SYNCWAL streams — appear
	// after a handful of writes.
	WALSegmentBytes int64
	// WALScrubInterval, when positive on a durable cluster, runs each
	// node's background segment scrub at this period: sealed segments and
	// the snapshot are re-read and CRC-checked, and the first corruption
	// found surfaces as an EventWALCorrupt on the EventTap. Zero disables
	// scrubbing.
	WALScrubInterval time.Duration
	// SyncStreamThreshold is the divergence ratio (divergent Merkle
	// leaves / total buckets) at or above which an anti-entropy pair sync
	// switches from key-by-key span repair to WAL streaming: the fuller
	// node's whole log — snapshot plus segments — ships as raw CRC-framed
	// chunks (SYNCWAL) and the receiver folds them in version-
	// conditionally. Near-total divergence (a node restarted after disk
	// loss) is where per-key scans are slowest and streaming shines;
	// light divergence stays on the Merkle path, which moves only the
	// keys that differ. 0 means the 0.25 default; negative disables
	// streaming. Streaming needs Durable and the binary protocol.
	SyncStreamThreshold float64
	// HintTTL bounds how long a hinted handoff stays parked before the
	// age sweep drops it (counted in hints.expired) — the cap on hint~
	// keyspace growth when a destination never comes back. Default 30s;
	// negative disables expiry.
	HintTTL time.Duration

	// DisableHints turns hinted handoff off entirely: a write that
	// cannot reach a replica directly simply misses it (the quorum can
	// still succeed on the replicas it did reach), and nothing is parked
	// for replay. With hints off, anti-entropy is the only mechanism
	// that brings a recovered replica back in sync — which is exactly
	// the configuration the heal-converge chaos scenario runs to prove
	// anti-entropy converges on its own.
	DisableHints bool
	// AntiEntropyInterval, when positive, runs a background Merkle-tree
	// sync pass (SyncNow) over every live node pair at this period. Zero
	// leaves anti-entropy manual: tests and benches call SyncNow
	// directly so convergence is deterministic instead of slept-for.
	AntiEntropyInterval time.Duration
	// AntiEntropyBatch caps how many Merkle spans one TREE or SCAN
	// request carries during a sync pass (default 64): smaller batches
	// bound per-request work on the remote node, larger ones cut round
	// trips.
	AntiEntropyBatch int
	// AntiEntropyWait is an optional pause between successive batched
	// requests inside one sync pass (default 0) — a throttle so a large
	// repair cannot monopolize the nodes it is repairing.
	AntiEntropyWait time.Duration

	// ServerPreHandle, when non-nil, supplies each named node's
	// sockets.ServerConfig.PreHandle — the fault-injection surface that
	// makes a replica deliberately slow (the quorum-abort laggard) or
	// stalls its PING responses (a heartbeat blackout). It is consulted
	// again on Restart, so an injected fault can outlive one server
	// incarnation.
	ServerPreHandle func(name string) func(req string)
	// PoolFailConn, when non-nil, supplies each named node's client-pool
	// FailConn hook: connection drops injected on the request path.
	PoolFailConn func(name string) func(req, attempt int) bool
	// PoolPreAttempt, when non-nil, supplies each named node's client-
	// pool PreAttempt hook: client-side latency spikes.
	PoolPreAttempt func(name string) func(req string, attempt int)
	// EventTap, when non-nil, observes lifecycle events (kills,
	// restarts, failure-detector transitions, hint replays, topology
	// changes) with timestamps. Chaos checkers use the stream to excuse
	// unavailability the fault schedule itself caused. The tap is called
	// synchronously from cluster internals: keep it fast and never call
	// back into the cluster from it.
	EventTap func(Event)

	// AllowUnsafeQuorums skips the W+R > Replicas validation. A cluster
	// built this way loses the read-your-quorum-writes overlap and WILL
	// serve stale reads under concurrency — that is its only purpose:
	// the chaos linearizability checker's self-test runs one to prove
	// the checker catches the anomalies. Never set it otherwise.
	AllowUnsafeQuorums bool
}

// EventType labels a cluster lifecycle event.
type EventType string

// The lifecycle events delivered to Config.EventTap.
const (
	EventKill       EventType = "kill"        // Kill crash-stopped the node
	EventRestart    EventType = "restart"     // Restart brought it back on a fresh port; Detail reports "recovered N keys" (N > 0 only for durable nodes, which replay their WAL)
	EventDown       EventType = "down"        // failure detector marked it down
	EventUp         EventType = "up"          // failure detector marked it up again
	EventHintReplay EventType = "hint-replay" // hinted handoffs replayed onto the node
	EventJoin       EventType = "join"        // node joined the ring
	EventLeave      EventType = "leave"       // node left the ring
	// EventWALCorrupt reports that a durable node's background scrub
	// found a corrupt frame in its own log; Detail carries the error,
	// which names the damaged file. Fired at most once per server
	// incarnation.
	EventWALCorrupt EventType = "wal-corrupt"
)

// Event is one timestamped cluster lifecycle transition.
type Event struct {
	Time time.Time
	Type EventType
	Node string
	// Detail carries event-specific context (e.g. the hint count on a
	// replay, the moved-key count on a join).
	Detail string
}

// Errors the cluster operations return.
var (
	ErrClosed      = errors.New("cluster: closed")
	ErrNoQuorum    = errors.New("cluster: quorum not reached")
	ErrUnknownNode = errors.New("cluster: unknown node")
	ErrReservedKey = errors.New("cluster: keys must not start with the hint prefix")
)

// hintMark prefixes hinted-handoff keys: hint~<destNode>~<origKey>.
const hintMark = "hint~"

func hintKey(dest, key string) string { return hintMark + dest + "~" + key }

// node is one cluster member: a live server plus the pooled client the
// router uses to reach it. srv/pool/addr swap on Kill/Restart under mu;
// down is owned by the failure detector.
type node struct {
	name string

	mu   sync.Mutex
	srv  *sockets.Server
	pool *sockets.Pool
	addr string

	down   atomic.Bool
	killed atomic.Bool

	// epoch counts the node's lifetime transitions: Kill and Restart
	// each bump it. A heartbeat probe records the epoch it started
	// under and discards its verdict if the epoch moved while it was in
	// flight — a probe of the previous incarnation (its connection cut
	// by Kill, or its port already re-assigned by Restart) must not
	// overwrite the fresh incarnation's up/down state.
	epoch atomic.Int64
}

// client returns the node's current pooled client.
func (n *node) client() *sockets.Pool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.pool
}

// address returns the node's current listen address.
func (n *node) address() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.addr
}

// server returns the node's current server (still readable for stats
// after a kill).
func (n *node) server() *sockets.Server {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.srv
}

// Cluster runs the nodes and routes requests to them.
type Cluster struct {
	cfg Config

	// topoMu guards the ring, the tracked key table, and the membership
	// tables. Request paths hold it only to compute placement; all
	// network traffic happens outside it.
	//
	// keys maps each tracked key to its last-seen version vector — the
	// causal history this client has stamped onto the key so far. The
	// next write bumps the coordinator's slot in that vector under the
	// same exclusive lock that computes placement, so writes from this
	// client to one key always dominate their predecessors; concurrent
	// (incomparable) vectors only arise across clients or from injected
	// divergence.
	topoMu sync.RWMutex
	ring   *db.DHT
	keys   map[string]version.Vector
	nodes  map[string]*node
	order  []string // join order, for stable iteration and reports

	// Migration-window state, guarded by topoMu. While prevRing is
	// non-nil a topology change is copying keys: quorum placement stays
	// on the pre-change topology (prevRing/prevOrder), so every quorum
	// keeps intersecting the quorums of earlier writes; writes
	// additionally double-write (best effort) to the next ring's new
	// replicas and land their key in dirty. The locked cutover re-copies
	// the dirty keys and drops the window — only then does placement see
	// the new ring. Without this, a read placed on the new ring could
	// miss a write the old ring's quorum acknowledged moments earlier.
	prevRing  *db.DHT
	prevOrder []string
	dirty     map[string]struct{}
	// inflight counts ops that have taken their placement and are still
	// fanning out; the cutover waits for them so its re-copy reads
	// final, not mid-write, state.
	inflight sync.WaitGroup
	// topoChange serializes Join/Leave end to end.
	topoChange sync.Mutex

	sched *sched.Pool

	// cache is the hot-key read cache; nil unless Config.HotKeyCache.
	// Every method is nil-safe, so call sites need no guard.
	cache *hotCache

	// ctx is the cluster lifetime: canceled by Close, it interrupts the
	// heartbeat loop mid-probe, aborts hint replay and key migration,
	// and bounds every background network wait.
	ctx    context.Context
	cancel context.CancelFunc
	hbWG   sync.WaitGroup
	closed atomic.Bool

	puts            atomic.Int64
	gets            atomic.Int64
	dels            atomic.Int64
	quorumFailures  atomic.Int64
	opsCanceled     atomic.Int64
	hintedWrites    atomic.Int64
	hintsReplayed   atomic.Int64
	hintsExpired    atomic.Int64
	hintsConcurrent atomic.Int64 // hint replays that met a concurrent stored version
	downEvents      atomic.Int64
	upEvents        atomic.Int64
	keysMigrated    atomic.Int64
	readRepairs     atomic.Int64 // stale replicas rewritten by quorum reads

	// Anti-entropy accounting (see antientropy.go): pair syncs run,
	// divergent leaf ranges walked, keys repaired, and the approximate
	// bytes moved doing it — what proves the Merkle exchange scales with
	// divergence, not keyspace.
	aeSyncs        atomic.Int64
	aeRanges       atomic.Int64
	aeKeysRepaired atomic.Int64
	aeBytesMoved   atomic.Int64
	// WAL-streaming re-replication accounting (syncstream.go): full-log
	// streams completed and the filtered frame bytes shipped doing it.
	aeStreams     atomic.Int64
	aeStreamBytes atomic.Int64

	// walRoot is the durable cluster's log directory; walTemp marks it
	// cluster-owned (created by New, removed by Close).
	walRoot string
	walTemp bool
}

// New starts a cluster of cfg.Nodes servers named node0..nodeN-1 and
// its background failure detector.
func New(cfg Config) (*Cluster, error) {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 3
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 3
		if cfg.Replicas > cfg.Nodes {
			cfg.Replicas = cfg.Nodes
		}
	}
	if cfg.WriteQuorum <= 0 {
		cfg.WriteQuorum = cfg.Replicas/2 + 1
	}
	if cfg.ReadQuorum <= 0 {
		cfg.ReadQuorum = cfg.Replicas/2 + 1
	}
	if cfg.VNodes <= 0 {
		cfg.VNodes = 64
	}
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = 50 * time.Millisecond
	}
	if cfg.HeartbeatTimeout <= 0 {
		cfg.HeartbeatTimeout = 250 * time.Millisecond
	}
	if cfg.PoolSize <= 0 {
		cfg.PoolSize = 2
	}
	if cfg.PoolTimeout <= 0 {
		cfg.PoolTimeout = 500 * time.Millisecond
	}
	if cfg.PoolAttempts <= 0 {
		cfg.PoolAttempts = 2
	}
	if cfg.ServerShards <= 0 {
		cfg.ServerShards = 8
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = time.Second
	}
	if cfg.CacheLease <= 0 {
		cfg.CacheLease = 50 * time.Millisecond
	}
	if cfg.CacheSize <= 0 {
		cfg.CacheSize = 4096
	}
	if cfg.CacheHotThreshold <= 0 {
		cfg.CacheHotThreshold = 4
	}
	if cfg.CacheWindow <= 0 {
		cfg.CacheWindow = time.Second
	}
	if cfg.HintTTL == 0 {
		cfg.HintTTL = 30 * time.Second
	}
	if cfg.AntiEntropyBatch <= 0 {
		cfg.AntiEntropyBatch = 64
	}
	if cfg.SyncStreamThreshold == 0 {
		cfg.SyncStreamThreshold = 0.25
	}
	if cfg.Replicas > cfg.Nodes {
		return nil, fmt.Errorf("cluster: %d replicas need at least that many nodes (have %d)", cfg.Replicas, cfg.Nodes)
	}
	if cfg.WriteQuorum > cfg.Replicas || cfg.ReadQuorum > cfg.Replicas {
		return nil, fmt.Errorf("cluster: quorums W=%d R=%d cannot exceed %d replicas", cfg.WriteQuorum, cfg.ReadQuorum, cfg.Replicas)
	}
	if cfg.WriteQuorum+cfg.ReadQuorum <= cfg.Replicas && !cfg.AllowUnsafeQuorums {
		return nil, fmt.Errorf("cluster: W=%d + R=%d must exceed %d replicas for read/write overlap", cfg.WriteQuorum, cfg.ReadQuorum, cfg.Replicas)
	}

	ring, err := db.NewDHT(cfg.VNodes)
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		cfg:   cfg,
		ring:  ring,
		keys:  make(map[string]version.Vector),
		nodes: make(map[string]*node),
		sched: sched.New(cfg.Workers),
	}
	if cfg.HotKeyCache {
		c.cache = newHotCache(cfg.CacheSize, cfg.CacheLease, cfg.CacheHotThreshold, cfg.CacheWindow)
	}
	if cfg.Durable {
		c.walRoot = cfg.WALRoot
		if c.walRoot == "" {
			dir, err := os.MkdirTemp("", "cluster-wal-")
			if err != nil {
				return nil, err
			}
			c.walRoot, c.walTemp = dir, true
		}
	}
	c.ctx, c.cancel = context.WithCancel(context.Background())
	for i := 0; i < cfg.Nodes; i++ {
		name := fmt.Sprintf("node%d", i)
		n, err := c.startNode(name)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.ring.AddNode(name) //nolint:errcheck // names are unique by construction
		c.nodes[name] = n
		c.order = append(c.order, name)
	}
	c.hbWG.Add(1)
	go c.heartbeatLoop()
	if cfg.AntiEntropyInterval > 0 {
		c.hbWG.Add(1)
		go c.antiEntropyLoop()
	}
	return c, nil
}

// startNode boots one server plus its pooled client, consulting the
// per-node fault hooks so an injected fault persists across Restart.
func (c *Cluster) startNode(name string) (*node, error) {
	scfg := sockets.ServerConfig{
		Shards:       c.cfg.ServerShards,
		DrainTimeout: c.cfg.DrainTimeout,
		MaxPending:   c.cfg.MaxPending,
		// Hints are per-holder state, not replicated data: leaving them
		// in the Merkle digest would make any node holding parked hints
		// look permanently divergent from its peers.
		SyncExcludePrefix: hintMark,
	}
	if c.cfg.Durable {
		// Per-node directory, stable across Restart: recovery replays
		// whatever this node's previous incarnation logged there.
		scfg.WALDir = filepath.Join(c.walRoot, name)
		scfg.WALSnapshotEvery = c.cfg.WALSnapshotEvery
		scfg.WALSegmentBytes = c.cfg.WALSegmentBytes
		scfg.WALScrubInterval = c.cfg.WALScrubInterval
		scfg.WALScrubCorrupt = func(err error) {
			c.emit(EventWALCorrupt, name, err.Error())
		}
	}
	if c.cfg.ServerPreHandle != nil {
		scfg.PreHandle = c.cfg.ServerPreHandle(name)
	}
	srv, err := sockets.NewServerConfig("127.0.0.1:0", scfg)
	if err != nil {
		return nil, err
	}
	pool, err := sockets.NewPool(srv.Addr(), c.poolConfig(name))
	if err != nil {
		srv.Close()
		return nil, err
	}
	return &node{name: name, srv: srv, pool: pool, addr: srv.Addr()}, nil
}

func (c *Cluster) poolConfig(name string) sockets.PoolConfig {
	pcfg := sockets.PoolConfig{
		Size:        c.cfg.PoolSize,
		MaxAttempts: c.cfg.PoolAttempts,
		Timeout:     c.cfg.PoolTimeout,
		Proto:       c.cfg.Proto,
	}
	if c.cfg.PoolFailConn != nil {
		pcfg.FailConn = c.cfg.PoolFailConn(name)
	}
	if c.cfg.PoolPreAttempt != nil {
		pcfg.PreAttempt = c.cfg.PoolPreAttempt(name)
	}
	return pcfg
}

// emit delivers one lifecycle event to the configured tap.
func (c *Cluster) emit(t EventType, node, detail string) {
	if c.cfg.EventTap != nil {
		c.cfg.EventTap(Event{Time: time.Now(), Type: t, Node: node, Detail: detail})
	}
}

// Close cancels the cluster context — interrupting an in-progress
// heartbeat probe, hint replay, or migration instead of waiting out
// their timeouts — then stops the node servers and clients and the
// migration pool.
func (c *Cluster) Close() {
	if c.closed.Swap(true) {
		return
	}
	c.cancel()
	c.hbWG.Wait()
	c.topoMu.Lock()
	nodes := make([]*node, 0, len(c.nodes))
	for _, n := range c.nodes {
		nodes = append(nodes, n)
	}
	c.topoMu.Unlock()
	for _, n := range nodes {
		n.client().Close()
		n.server().Close()
	}
	c.sched.Close()
	if c.walTemp {
		os.RemoveAll(c.walRoot)
	}
}

// Nodes returns the member names in join order.
func (c *Cluster) Nodes() []string {
	c.topoMu.RLock()
	defer c.topoMu.RUnlock()
	return append([]string(nil), c.order...)
}

// Moves reports how many keys topology changes have migrated so far —
// the ring-metadata counter that certifies the ~K/n movement property.
func (c *Cluster) Moves() int64 {
	c.topoMu.RLock()
	defer c.topoMu.RUnlock()
	return c.ring.Moves()
}

func (c *Cluster) validateKey(key string) error {
	if strings.HasPrefix(key, hintMark) {
		return fmt.Errorf("%w: %q", ErrReservedKey, key)
	}
	// Apply the wire protocol's key rules before the key reaches the
	// ring metadata, so a rejected key can't leave placement state.
	if key == "" || strings.ContainsAny(key, " \t\n\r") {
		return fmt.Errorf("%w: %q", sockets.ErrBadKey, key)
	}
	return nil
}

// Stored values carry a version stamp and a kind marker — see
// internal/version for the encoding ("<stamp> v <value>" for live
// values, "<stamp> t" for delete tombstones). Tombstones ride the same
// quorum/hint/migration/anti-entropy machinery as writes, so a delete
// wins or loses against concurrent puts by the version total order
// exactly like an overwrite — without them, a replica that missed the
// DEL would resurrect the key on the next quorum read.

// placement is the routing decision for one key: its replica set, the
// fallback nodes hints can land on, and — during a migration window —
// the next topology's new replicas that writes double-write to.
type placement struct {
	replicas  []*node
	fallbacks []*node
	extras    []*node
}

// place computes a key's placement under the topology lock and
// registers the operation as in flight; the caller must Done
// c.inflight when the fan-out finishes.
func (c *Cluster) place(key string) placement {
	c.topoMu.RLock()
	defer c.topoMu.RUnlock()
	c.inflight.Add(1)
	return c.placeLocked(key)
}

func (c *Cluster) placeLocked(key string) placement {
	ring, order := c.ring, c.order
	if c.prevRing != nil {
		ring, order = c.prevRing, c.prevOrder
	}
	prefs := ring.NodesFor(key, len(order))
	var p placement
	for i, name := range prefs {
		n := c.nodes[name]
		if n == nil {
			continue
		}
		if i < c.cfg.Replicas {
			p.replicas = append(p.replicas, n)
		} else {
			p.fallbacks = append(p.fallbacks, n)
		}
	}
	if c.prevRing != nil {
		for _, name := range c.ring.NodesFor(key, c.cfg.Replicas) {
			n := c.nodes[name]
			if n == nil {
				continue
			}
			isOld := false
			for _, r := range p.replicas {
				if r == n {
					isOld = true
					break
				}
			}
			if !isOld {
				p.extras = append(p.extras, n)
			}
		}
	}
	return p
}

// Put stores key = value on a write quorum of its replicas with no
// caller deadline. It wraps PutCtx with context.Background().
func (c *Cluster) Put(key, value string) error {
	return c.PutCtx(context.Background(), key, value)
}

// PutCtx stores key = value on a write quorum of its replicas under
// ctx. Replicas that are down (or fail mid-write) receive hinted
// handoffs on the next live fallback node; a hinted write counts toward
// the (sloppy) quorum. The replica fan-out runs under a per-op context
// that is canceled the moment W acks arrive, so a slow replica costs
// the write nothing beyond quorum time — its in-flight request is
// abandoned, not waited out. ErrNoQuorum reports a write that fewer
// than W replicas acknowledged; a canceled or expired ctx surfaces as
// an error wrapping ctx.Err().
func (c *Cluster) PutCtx(ctx context.Context, key, value string) error {
	ver, err := c.writeQuorum(ctx, "put", key, func(v version.Version) string { return version.Encode(v, value) })
	if err == nil {
		c.puts.Add(1)
		// Write-through before returning: a caller that saw this Put
		// complete must read its own write, cached or not.
		c.cache.writeThrough(key, ver, value, false)
	}
	return err
}

// Del removes key with no caller deadline. It wraps DelCtx with
// context.Background().
func (c *Cluster) Del(key string) error {
	return c.DelCtx(context.Background(), key)
}

// DelCtx removes key by writing a delete tombstone to a write quorum of
// its replicas — the same fan-out, hinting, and version-resolution
// rules as PutCtx, so a delete racing a put resolves by the version
// order instead of resurrecting on the next read. Deleting a missing
// key is not an error (the tombstone simply becomes the newest
// version).
func (c *Cluster) DelCtx(ctx context.Context, key string) error {
	ver, err := c.writeQuorum(ctx, "del", key, version.EncodeTombstone)
	if err == nil {
		c.dels.Add(1)
		// Cached tombstone: a hot key that was just deleted keeps
		// absorbing reads as cached not-founds instead of re-fanning out.
		c.cache.writeThrough(key, ver, "", true)
	}
	return err
}

// writeQuorum is the shared quorum-write core under PutCtx and DelCtx:
// it stamps the write with the key's next version vector, encodes the
// payload, and fans out to the key's replicas until W acks arrive.
//
// The version is assigned inside the same exclusive topology-lock
// critical section that computes placement: the key's last-seen vector
// is bumped in the coordinator's slot (the first live replica — the
// node this client writes on behalf of) and written back, so every
// write this client issues to a key causally dominates its
// predecessors no matter how their network fan-outs interleave.
func (c *Cluster) writeQuorum(ctx context.Context, op, key string, payload func(v version.Version) string) (version.Version, error) {
	var zero version.Version
	if c.closed.Load() {
		return zero, ErrClosed
	}
	if err := c.validateKey(key); err != nil {
		return zero, err
	}
	if err := ctx.Err(); err != nil {
		c.opsCanceled.Add(1)
		return zero, fmt.Errorf("cluster: %s %q aborted: %w", op, key, err)
	}

	c.topoMu.Lock()
	if err := c.ring.Put(key, ""); err != nil {
		c.topoMu.Unlock()
		return zero, err
	}
	p := c.placeLocked(key)
	if len(p.replicas) == 0 {
		c.topoMu.Unlock()
		c.quorumFailures.Add(1)
		return zero, fmt.Errorf("%w: no replicas for %q", ErrNoQuorum, key)
	}
	coord := p.replicas[0].name
	for _, r := range p.replicas {
		if !r.down.Load() {
			coord = r.name
			break
		}
	}
	ver := version.Version{VV: c.keys[key]}.Next(coord, time.Now().UnixNano())
	c.keys[key] = ver.VV
	if c.prevRing != nil {
		c.dirty[key] = struct{}{}
	}
	c.inflight.Add(1)
	c.topoMu.Unlock()
	defer c.inflight.Done()
	enc := payload(ver)

	// During a migration window, also land the write on the next
	// topology's new replicas. Best effort on the cluster lifetime (the
	// per-op context cancels at quorum, which would starve these): a
	// miss here is repaired by the cutover's dirty-key re-copy.
	for _, extra := range p.extras {
		go func(n *node) {
			ectx, ecancel := context.WithTimeout(c.ctx, c.cfg.PoolTimeout)
			defer ecancel()
			n.client().SetVCtx(ectx, key, enc) //nolint:errcheck // see above
		}(extra)
	}

	opCtx, cancel := context.WithCancel(ctx)
	defer cancel() // reached with quorum: the laggards' requests abort now
	acks := make(chan bool, len(p.replicas))
	for _, target := range p.replicas {
		go func(target *node) {
			acks <- c.writeReplica(opCtx, key, enc, target, p.fallbacks)
		}(target)
	}
	got := 0
	for pending := len(p.replicas); pending > 0; pending-- {
		select {
		case ok := <-acks:
			if ok {
				got++
			}
		case <-ctx.Done():
			c.opsCanceled.Add(1)
			return zero, fmt.Errorf("cluster: %s %q canceled at %d/%d write acks: %w",
				op, key, got, c.cfg.WriteQuorum, ctx.Err())
		}
		if got >= c.cfg.WriteQuorum {
			return ver, nil
		}
	}
	c.quorumFailures.Add(1)
	return zero, fmt.Errorf("%w: %d/%d write acks for %q", ErrNoQuorum, got, c.cfg.WriteQuorum, key)
}

// writeReplica lands one replica's copy: directly when the node is
// healthy, as a hinted handoff on the first live fallback when not
// (unless hints are disabled). Direct writes go through SETV — the
// version-conditional set — so a delayed or retried fan-out can never
// regress a replica that already absorbed a newer version; any SETV
// that round-trips counts as an ack, because afterwards the replica
// provably stores a version at least as new as this write's. ctx is
// the per-op fan-out context; once it is canceled (quorum reached or
// caller gone) the remaining network attempts abort.
func (c *Cluster) writeReplica(ctx context.Context, key, enc string, target *node, fallbacks []*node) bool {
	if !target.down.Load() {
		if _, err := target.client().SetVCtx(ctx, key, enc); err == nil {
			return true
		}
	}
	if ctx.Err() != nil {
		return false // canceled: don't burn fallbacks on a dead op
	}
	if c.cfg.DisableHints {
		return false // the miss stands until anti-entropy repairs it
	}
	hk := hintKey(target.name, key)
	// Hints carry their birth time so the TTL sweep can age them out;
	// replay unwraps before applying. The wrapper rides a plain SET —
	// hint keys are per-holder scratch state, not versioned data.
	henc := hintEncode(enc)
	for _, f := range fallbacks {
		if f.down.Load() {
			continue
		}
		if err := f.client().SetCtx(ctx, hk, henc); err == nil {
			c.hintedWrites.Add(1)
			return true
		}
		if ctx.Err() != nil {
			return false
		}
	}
	return false
}

// Get reads key from a read quorum of its replicas with no caller
// deadline. It wraps GetCtx with context.Background().
func (c *Cluster) Get(key string) (value string, found bool, err error) {
	return c.GetCtx(context.Background(), key)
}

// GetCtx reads key from a read quorum of its replicas under ctx and
// returns the newest version seen: causal dominance decides when the
// replicas' version vectors are comparable, the deterministic
// wall-clock tiebreak when they are concurrent. Replies are consumed
// as they arrive; the R-th answer resolves the read and cancels the
// stragglers — quorum intersection (W+R > Replicas) already guarantees
// the newest quorum write is among any R distinct replica answers.
// Replicas observed holding a missing or older version are repaired in
// the background (read repair): the winning encoded value is written
// back to them version-conditionally, so the next read finds them
// converged. found is false when a quorum agrees the key does not
// exist; ErrNoQuorum reports fewer than R reachable replicas; a
// canceled or expired ctx surfaces as an error wrapping ctx.Err().
func (c *Cluster) GetCtx(ctx context.Context, key string) (value string, found bool, err error) {
	if c.closed.Load() {
		return "", false, ErrClosed
	}
	if err := c.validateKey(key); err != nil {
		return "", false, err
	}
	if err := ctx.Err(); err != nil {
		c.opsCanceled.Add(1)
		return "", false, fmt.Errorf("cluster: get %q aborted: %w", key, err)
	}
	if v, ok, hit := c.cache.lookup(key); hit {
		// Hot-key fast path: the lease is live, so this answer lags any
		// concurrent write by strictly less than the lease. No replica
		// round trips at all.
		c.gets.Add(1)
		return v, ok, nil
	}
	// The lease of whatever this read caches is anchored HERE, before
	// the fan-out: any write that could make the result stale must
	// finish after this instant (quorum intersection would surface an
	// earlier one), which is what bounds cached staleness by the lease.
	readStart := time.Now()
	p := c.place(key)
	defer c.inflight.Done()
	c.gets.Add(1)

	type resp struct {
		node    *node
		ver     version.Version
		raw     string // the stored bytes, for read repair
		value   string
		found   bool // some version (value or tombstone) exists
		deleted bool // that version is a tombstone
		err     error
	}
	opCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	resps := make(chan resp, len(p.replicas))
	for _, n := range p.replicas {
		go func(n *node) {
			if n.down.Load() {
				resps <- resp{node: n, err: fmt.Errorf("cluster: node %s is down", n.name)}
				return
			}
			raw, ok, err := n.client().GetCtx(opCtx, key)
			if err != nil {
				resps <- resp{node: n, err: err}
				return
			}
			if !ok {
				resps <- resp{node: n} // a valid "not here" answer
				return
			}
			ver, v, deleted, err := version.Decode(raw)
			if err != nil {
				resps <- resp{node: n, err: err}
				return
			}
			resps <- resp{node: n, ver: ver, raw: raw, value: v, found: true, deleted: deleted}
		}(n)
	}

	answered := 0
	var best resp
	got := make([]resp, 0, len(p.replicas))
	for pending := len(p.replicas); pending > 0; pending-- {
		select {
		case r := <-resps:
			if r.err != nil {
				continue
			}
			answered++
			got = append(got, r)
			if r.found && (!best.found || version.Newer(r.ver, best.ver)) {
				best = r
			}
		case <-ctx.Done():
			c.opsCanceled.Add(1)
			return "", false, fmt.Errorf("cluster: get %q canceled at %d/%d read answers: %w",
				key, answered, c.cfg.ReadQuorum, ctx.Err())
		}
		if answered >= c.cfg.ReadQuorum {
			// Read repair: every answered replica holding something other
			// than the winning version (nothing at all, a dominated
			// version, or a concurrent one that lost the tiebreak) gets
			// the winner written back asynchronously. SETV makes the
			// write-back safe to race with anything: a replica that moved
			// on to a newer version in the meantime just reports stale.
			if best.found {
				var stale []*node
				for _, r := range got {
					if !r.found || r.ver.Compare(best.ver) != version.Equal {
						stale = append(stale, r.node)
					}
				}
				if len(stale) > 0 {
					go c.readRepair(key, best.raw, stale)
				}
			}
			c.cache.observe(key, readStart, best.ver, best.value, best.found && !best.deleted)
			// A newest-version tombstone means the key is deleted: the
			// quorum agrees it existed, and that its last write removed it.
			if best.deleted {
				return "", false, nil
			}
			return best.value, best.found, nil
		}
	}
	c.quorumFailures.Add(1)
	return "", false, fmt.Errorf("%w: %d/%d read answers for %q", ErrNoQuorum, answered, c.cfg.ReadQuorum, key)
}

// lookup resolves a node by name.
func (c *Cluster) lookup(name string) (*node, error) {
	c.topoMu.RLock()
	defer c.topoMu.RUnlock()
	n, ok := c.nodes[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownNode, name)
	}
	return n, nil
}

// Kill crash-stops a node's server and client — the fault-injection
// hook. The ring is unchanged; the failure detector (or an explicit
// Probe) notices the silence and routes around it. Bumping the node
// epoch first invalidates any probe already in flight against the dying
// incarnation, so its verdict cannot race the kill. On a durable
// cluster Kill is kill -9: Server.Crash cuts every connection with no
// drain and truncates the node's log to its last fsynced byte, so
// exactly the acked writes survive into the next Restart.
func (c *Cluster) Kill(name string) error {
	n, err := c.lookup(name)
	if err != nil {
		return err
	}
	if n.killed.Swap(true) {
		return fmt.Errorf("cluster: node %q already killed", name)
	}
	n.epoch.Add(1)
	n.client().Close()
	if c.cfg.Durable {
		n.server().Crash() //nolint:errcheck // the node is being killed; the listener error is noise
	} else {
		n.server().Close()
	}
	c.emit(EventKill, name, "")
	return nil
}

// WALDir returns the named durable node's log directory — where its
// segments, snapshot, and any injected corruption live.
func (c *Cluster) WALDir(name string) (string, error) {
	if _, err := c.lookup(name); err != nil {
		return "", err
	}
	if !c.cfg.Durable {
		return "", fmt.Errorf("cluster: node %q has no WAL (cluster is not durable)", name)
	}
	return filepath.Join(c.walRoot, name), nil
}

// WipeWAL deletes a killed node's entire log directory — the disk-loss
// fault: the next Restart comes back empty (or, if the log was merely
// corrupt, no longer refuses to start) and hint replay plus
// anti-entropy re-replication must rebuild the node from its peers.
// Refused while the node is live, whose server owns the directory.
func (c *Cluster) WipeWAL(name string) error {
	n, err := c.lookup(name)
	if err != nil {
		return err
	}
	if !c.cfg.Durable {
		return fmt.Errorf("cluster: node %q has no WAL (cluster is not durable)", name)
	}
	if !n.killed.Load() {
		return fmt.Errorf("cluster: refusing to wipe live node %q's WAL", name)
	}
	return os.RemoveAll(filepath.Join(c.walRoot, name))
}

// Restart brings a killed node back on a fresh port, then probes it so
// hinted handoffs replay before Restart returns. A memory-only node
// returns empty (the process model: in-memory state dies with the
// process) and leans on hint replay and re-replication for everything;
// a durable node first replays its own WAL — snapshot plus log tail —
// so every write it acked before the kill is already served locally,
// and hint replay only tops up the post-crash suffix it missed while
// dead. The EventRestart payload records the recovered key count. The
// epoch bump after the swap discards any straggling probe of the dead
// incarnation: the old probe's failure verdict, arriving after the
// restart, would otherwise mark the fresh node down until the next
// heartbeat.
func (c *Cluster) Restart(name string) error {
	n, err := c.lookup(name)
	if err != nil {
		return err
	}
	if !n.killed.Load() {
		return fmt.Errorf("cluster: node %q is not killed", name)
	}
	fresh, err := c.startNode(name)
	if err != nil {
		return err
	}
	n.mu.Lock()
	n.srv, n.pool, n.addr = fresh.srv, fresh.pool, fresh.addr
	n.mu.Unlock()
	n.epoch.Add(1)
	n.killed.Store(false)
	c.emit(EventRestart, name, fmt.Sprintf("recovered %d keys", fresh.srv.RecoveredKeys()))
	c.probeNode(n)
	// The node may never have been marked down (killed and restarted
	// between probes) yet still have hints parked from failed direct
	// writes; replay is idempotent, so sweep again unconditionally.
	c.replayHints(c.ctx, n)
	return nil
}
